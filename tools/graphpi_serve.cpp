// graphpi_serve: the long-running pattern-matching query service.
//
//   graphpi_serve --graph <spec> [options]     serve a full graph
//   graphpi_serve --shards <prefix> [options]  serve reassembled shards
//
// Loads the data graph ONCE, then answers concurrent queries over
// newline-delimited JSON on a local TCP socket (protocol:
// src/service/protocol.h, docs/SERVICE.md). Planning is memoized per
// canonical pattern and generated-backend kernels come from the
// process-wide JIT cache, so repeated queries skip both costs. A bounded
// admission queue sheds excess load with an immediate structured
// rejection; GET /metrics on the same port serves the Prometheus
// exposition of the engine's metrics registry. SIGTERM/SIGINT drain
// in-flight queries under a deadline before exiting.
#include <csignal>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "api/graphpi.h"
#include "service/server.h"
#include "support/parse.h"

namespace {

using namespace graphpi;

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage() {
  std::cerr <<
      R"(usage: graphpi_serve (--graph <spec> | --shards <prefix>) [options]
graph spec: edge-list path, GPS1 snapshot, or dataset:NAME[:SCALE];
--shards serves the per-node snapshot set "<prefix>.shard<k>-of-<n>.gps"
(io/shard_snapshot.h) with the distributed backend, no full graph in
memory.
options:
  --port N            TCP port on 127.0.0.1 (default 0 = ephemeral; the
                      chosen port is printed on stdout)
  --workers N         query worker threads (default 2)
  --queue N           admission queue capacity (default 64); a request
                      arriving with the queue full is shed immediately
  --max-line BYTES    longest accepted request line (default 65536)
  --drain-ms MS       shutdown drain deadline (default 5000)
  --max-timeout-ms MS largest per-query timeout accepted (default 3.6e6)
  --max-threads N     largest per-query thread count accepted (default 256)
  --allow-debug       enable {"cmd":"sleep"} (deterministic load tests)
  --dist-exec MODE    shards mode: lockstep|async (default lockstep)
  --dist-workers N    shards mode, async: workers per node (default 1)
  --dist-task-depth N shards mode: task cut depth (default 1)
The server answers one JSON object per request line; see docs/SERVICE.md
for the wire protocol. SIGTERM/SIGINT drain and exit.
)";
  return 2;
}

/// Structured usage error for a malformed flag value: prints the
/// message and exits with the usage status via exception-free flow.
struct ArgError {
  std::string message;
};

const char* need_value(int argc, char** argv, int& i) {
  if (i + 1 >= argc)
    throw ArgError{std::string(argv[i]) + " expects a value"};
  return argv[++i];
}

int int_arg(int argc, char** argv, int& i, long min_value, long max_value) {
  const char* flag = argv[i];
  const char* text = need_value(argc, argv, i);
  const auto parsed = support::parse_number<long>(text);
  if (!parsed.has_value() || *parsed < min_value || *parsed > max_value)
    throw ArgError{std::string(flag) + " expects an integer in [" +
                   std::to_string(min_value) + ", " +
                   std::to_string(max_value) + "], got '" + text + "'"};
  return static_cast<int>(*parsed);
}

double ms_arg(int argc, char** argv, int& i, double max_value) {
  const char* flag = argv[i];
  const char* text = need_value(argc, argv, i);
  const auto parsed = support::parse_number<double>(text);
  if (!parsed.has_value() || !(*parsed >= 0.0) || *parsed > max_value)
    throw ArgError{std::string(flag) + " expects milliseconds in [0, " +
                   std::to_string(max_value) + "], got '" + text + "'"};
  return *parsed;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  std::string graph_spec;
  std::string shards_prefix;
  service::ServiceConfig config;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--graph") {
        graph_spec = need_value(argc, argv, i);
      } else if (arg == "--shards") {
        shards_prefix = need_value(argc, argv, i);
      } else if (arg == "--port") {
        config.port = int_arg(argc, argv, i, 0, 65535);
      } else if (arg == "--workers") {
        config.workers = int_arg(argc, argv, i, 1, 256);
      } else if (arg == "--queue") {
        config.queue_capacity = static_cast<std::size_t>(
            int_arg(argc, argv, i, 1, 1 << 20));
      } else if (arg == "--max-line") {
        config.max_line_bytes = static_cast<std::size_t>(
            int_arg(argc, argv, i, 64, 1 << 24));
      } else if (arg == "--drain-ms") {
        config.drain_timeout_ms = ms_arg(argc, argv, i, 3.6e6);
      } else if (arg == "--max-timeout-ms") {
        config.limits.max_timeout_ms = ms_arg(argc, argv, i, 8.64e7);
      } else if (arg == "--max-threads") {
        config.limits.max_threads = int_arg(argc, argv, i, 1, 4096);
      } else if (arg == "--allow-debug") {
        config.limits.allow_debug_commands = true;
      } else if (arg == "--dist-exec") {
        const std::string mode = need_value(argc, argv, i);
        if (mode == "lockstep") config.dist_exec = dist::ExecMode::kLockstep;
        else if (mode == "async") config.dist_exec = dist::ExecMode::kAsync;
        else throw ArgError{"--dist-exec expects lockstep|async, got '" +
                            mode + "'"};
      } else if (arg == "--dist-workers") {
        config.dist_workers = int_arg(argc, argv, i, 1, 64);
      } else if (arg == "--dist-task-depth") {
        config.dist_task_depth = int_arg(argc, argv, i, 1, 8);
      } else if (arg == "--help" || arg == "-h") {
        return usage();
      } else {
        throw ArgError{"unknown flag: " + arg};
      }
    }
    if (graph_spec.empty() == shards_prefix.empty())
      throw ArgError{"exactly one of --graph / --shards is required"};
  } catch (const ArgError& e) {
    std::cerr << "graphpi_serve: " << e.message << "\n";
    return usage();
  }

  try {
    // The loaded graph/shards must outlive the server: declared first,
    // destroyed last.
    std::optional<Graph> graph;
    std::optional<dist::ShardedGraph> shards;
    std::optional<service::Server> server;
    if (!graph_spec.empty()) {
      graph = service::load_graph(graph_spec);
      std::cerr << "graphpi_serve: loaded " << graph->vertex_count()
                << " vertices / " << graph->edge_count() << " edges from "
                << graph_spec << "\n";
      server.emplace(*graph, config);
    } else {
      shards = io::load_shard_snapshots(shards_prefix);
      std::cerr << "graphpi_serve: loaded " << shards->nodes()
                << " shards covering " << shards->vertex_count()
                << " vertices from " << shards_prefix << "\n";
      server.emplace(*shards, config);
    }
    server->start();
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    // The one line scripts parse: the chosen port, on stdout.
    std::cout << "graphpi_serve listening on 127.0.0.1:" << server->port()
              << std::endl;
    while (g_stop == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::cerr << "graphpi_serve: signal received, draining (deadline "
              << config.drain_timeout_ms << " ms)\n";
    server->shutdown();
    const service::ServerStats stats = server->stats();
    std::cerr << "graphpi_serve: served " << stats.served << "/"
              << stats.requests << " requests (" << stats.shed << " shed, "
              << stats.errors << " rejected) over " << stats.connections
              << " connections\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "graphpi_serve: " << e.what() << "\n";
    return 1;
  }
}
