#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file (graphpi_cli --trace-json).

Checks the subset of the trace-event format the engine emits: complete
("ph": "X") events with microsecond timestamps, so the file loads in
chrome://tracing and Perfetto. Exits nonzero with a diagnostic on the
first violation.

Usage: validate_trace.py <trace.json> [--require-span NAME]...
"""
import json
import sys


def fail(msg):
    sys.exit(f"validate_trace: {msg}")


def main(argv):
    if len(argv) < 2:
        fail("usage: validate_trace.py <trace.json> [--require-span NAME]...")
    path = argv[1]
    required = set()
    i = 2
    while i < len(argv):
        if argv[i] == "--require-span" and i + 1 < len(argv):
            required.add(argv[i + 1])
            i += 2
        else:
            fail(f"unknown argument: {argv[i]}")

    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path} is not valid JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a 'traceEvents' array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("'traceEvents' must be an array")
    if not events:
        fail("trace contains no events")

    names = set()
    for idx, e in enumerate(events):
        where = f"traceEvents[{idx}]"
        for key, typ in (("name", str), ("cat", str), ("ph", str),
                         ("pid", int), ("tid", int),
                         ("ts", (int, float)), ("dur", (int, float))):
            if key not in e:
                fail(f"{where}: missing '{key}'")
            if not isinstance(e[key], typ):
                fail(f"{where}: '{key}' has wrong type {type(e[key]).__name__}")
        if e["ph"] != "X":
            fail(f"{where}: expected complete event ph='X', got {e['ph']!r}")
        if e["ts"] < 0 or e["dur"] < 0:
            fail(f"{where}: negative timestamp or duration")
        if not isinstance(e.get("args"), dict) or "depth" not in e["args"]:
            fail(f"{where}: missing args.depth")
        names.add(e["name"])

    missing = required - names
    if missing:
        fail(f"required spans absent: {sorted(missing)} (got {sorted(names)})")

    print(f"validate_trace: OK — {len(events)} events, "
          f"{len(names)} distinct spans: {', '.join(sorted(names))}")


if __name__ == "__main__":
    main(sys.argv)
