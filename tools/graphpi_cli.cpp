// graphpi — command-line front end.
//
// Subcommands:
//   stats <graph>                     structural statistics + analysis
//   count <graph> <pattern> [opts]    count embeddings (GraphPi pipeline)
//   list  <graph> <pattern> [limit]   print embeddings (up to limit)
//   plan  <graph> <pattern>           show the selected configuration
//   gen   <pattern> [out.cpp]         emit the generated C++ kernel
//   make  <kind> <n> <m> <seed> <out> write a synthetic graph
//   save  <graph> <out.gps> [opts]    write a compressed snapshot (io/)
//   load  <snapshot> [--verify]       map + decode a snapshot, print stats
//
// <graph> is an edge-list path, a GPS1 snapshot (sniffed by magic), or
// "dataset:NAME[:SCALE]" for the synthetic stand-ins
// (e.g. dataset:wiki_vote:0.2).
// <pattern> is a named pattern (triangle, rectangle, house, pentagon,
// hourglass, cycle6tri, p1..p6, cliqueK, cycleK, pathK, starK) or
// "N:ADJSTRING" (e.g. 5:0111010011100011100001100).
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "api/graphpi.h"
#include "codegen/codegen.h"
#include "core/automorphism.h"
#include "engine/jit.h"
#include "graph/analysis.h"
#include "service/server.h"
#include "support/parse.h"
#include "support/table.h"
#include "support/timer.h"

namespace {

using namespace graphpi;

/// Malformed flag value; main() prints it and exits with the usage
/// status instead of letting atoi-style parsing truncate silently.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

long long int_flag(const std::string& flag, const char* text,
                   long long min_value, long long max_value) {
  const auto parsed = support::parse_number<long long>(text);
  if (!parsed.has_value() || *parsed < min_value || *parsed > max_value)
    throw UsageError(flag + " expects an integer in [" +
                     std::to_string(min_value) + ", " +
                     std::to_string(max_value) + "], got '" +
                     std::string(text) + "'");
  return *parsed;
}

std::uint64_t u64_flag(const std::string& flag, const char* text) {
  const auto parsed = support::parse_number<std::uint64_t>(text);
  if (!parsed.has_value())
    throw UsageError(flag + " expects a non-negative integer, got '" +
                     std::string(text) + "'");
  return *parsed;
}

double ms_flag(const std::string& flag, const char* text) {
  constexpr double kMaxMs = 8.64e7;  // 24 hours
  const auto parsed = support::parse_number<double>(text);
  if (!parsed.has_value() || !(*parsed >= 0.0) || *parsed > kMaxMs)
    throw UsageError(flag + " expects milliseconds in [0, 8.64e7], got '" +
                     std::string(text) + "'");
  return *parsed;
}

double rate_flag(const std::string& flag, const char* text) {
  const auto parsed = support::parse_number<double>(text);
  if (!parsed.has_value() || !(*parsed >= 0.0) || *parsed > 1.0)
    throw UsageError(flag + " expects a probability in [0, 1], got '" +
                     std::string(text) + "'");
  return *parsed;
}

int usage() {
  std::cerr <<
      R"(usage: graphpi <command> [args]
  stats <graph>
  count <graph> <pattern> [--no-iep] [--parallel] [--nodes N]
        [--partition hash|range] [--exec lockstep|async] [--dist-workers W]
        [--mailbox CAP] [--task-depth D] [--threads T]
        [--backend serial|parallel|generated] [--emit <file.cpp>]
        [--timeout-ms X] [--budget N] [--poll-stride S]
        [--metrics-json <file>] [--trace-json <file>]
        [--fault-drop P] [--fault-duplicate P] [--fault-reorder P]
        [--fault-corrupt P] [--fault-seed S]
  list  <graph> <pattern> [limit]
  plan  <graph> <pattern>
  gen   <pattern> [out.cpp] [--no-iep]
  make  <er|powerlaw|clustered> <n> <m> <seed> <out>
  save  <graph> <out.gps> [--block-vertices N] [--no-reorder]
  load  <snapshot.gps> [--verify]
graph:   path to an edge list or GPS1 snapshot, or dataset:NAME[:SCALE]
pattern: triangle|rectangle|house|pentagon|hourglass|cycle6tri|
         tailed_triangle|p1..p6|clique<K>|cycle<K>|path<K>|star<K>|
         N:ADJSTRING
--backend generated runs the plan through the self-compiling kernel cache
(emit -> system compiler -> dlopen; falls back to the interpreter when no
compiler is found). Generated kernels run their root loop in parallel;
--threads caps the worker count for both the parallel and generated
backends (default: all cores). --emit writes the generated C++ kernel for
the planned configuration without requiring that backend.
--timeout-ms / --budget bound the run (any backend): on expiry the count
is a best-effort partial and a "status:" line reports why it stopped and
how many root units completed. --fault-* inject seeded deterministic
faults into the distributed backend's channel (probability per message);
the reliability layer recovers them, so counts are unchanged while the
stats line reports the injected/recovered event tallies.
--metrics-json writes the delta of the engine metrics registry across the
run (counters, gauges, latency histograms) as JSON; --trace-json writes
the run's trace spans in Chrome trace-event format (open in
chrome://tracing or Perfetto).
save writes a compressed, mmap-able snapshot (docs/FORMAT.md): vertices
are relabeled in descending degree order first (counts are unchanged;
--no-reorder keeps the input labeling) and adjacency is stored as
delta-varint blocks that load back through the SIMD decode kernels.
Any <graph> argument accepts a snapshot path directly.
)";
  return 2;
}

// Shared with graphpi_serve: GPS1-sniffing graph loader (hardened
// dataset SCALE parsing) and the strict pattern-spec parser.
Graph parse_graph(const std::string& spec) { return service::load_graph(spec); }

Pattern parse_pattern(const std::string& spec) {
  return patterns::parse_spec(spec);
}

int cmd_stats(const std::string& graph_spec) {
  const Graph g = parse_graph(graph_spec);
  const auto cores = core_decomposition(g);
  const auto comps = connected_components(g);
  support::Table table({"metric", "value"});
  table.add("vertices", g.vertex_count());
  table.add("edges", g.edge_count());
  table.add("max degree", g.max_degree());
  table.add("triangles", g.triangle_count());
  table.add("global clustering", global_clustering_coefficient(g));
  table.add("avg local clustering", average_local_clustering(g));
  table.add("degeneracy", cores.degeneracy);
  table.add("components", comps.count);
  table.add("largest component", comps.largest());
  table.print();
  return 0;
}

int cmd_count(const std::string& graph_spec, const std::string& pattern_spec,
              int argc, char** argv) {
  MatchOptions options;
  std::string emit_path;
  std::string metrics_path;
  std::string trace_path;
  dist::FaultPlan::Rates fault_rates;
  std::uint64_t fault_seed = dist::FaultPlan{}.seed;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-iep") options.use_iep = false;
    if (arg == "--parallel") options.backend = Backend::kParallel;
    if (arg == "--nodes" && i + 1 < argc) {
      options.backend = Backend::kDistributed;
      options.nodes = static_cast<int>(int_flag(arg, argv[++i], 1, 1024));
    }
    if (arg == "--task-depth" && i + 1 < argc)
      options.task_depth = static_cast<int>(int_flag(arg, argv[++i], 1, 8));
    if (arg == "--threads" && i + 1 < argc)
      options.threads = static_cast<int>(int_flag(arg, argv[++i], 0, 4096));
    if (arg == "--partition" && i + 1 < argc) {
      if (!dist::parse_partition(argv[++i], options.partition)) {
        std::cerr << "unknown partition strategy: " << argv[i] << "\n";
        return 2;
      }
    }
    if (arg == "--exec" && i + 1 < argc) {
      if (!dist::parse_exec_mode(argv[++i], options.dist_exec)) {
        std::cerr << "unknown exec mode: " << argv[i] << "\n";
        return 2;
      }
    }
    if (arg == "--dist-workers" && i + 1 < argc)
      options.dist_workers = static_cast<int>(int_flag(arg, argv[++i], 1, 64));
    if (arg == "--mailbox" && i + 1 < argc)
      options.dist_mailbox_capacity =
          static_cast<int>(int_flag(arg, argv[++i], 0, 1 << 24));
    if (arg == "--backend" && i + 1 < argc) {
      const std::string backend = argv[++i];
      if (backend == "serial") {
        options.backend = Backend::kSerial;
      } else if (backend == "parallel") {
        options.backend = Backend::kParallel;
      } else if (backend == "generated") {
        options.backend = Backend::kGenerated;
      } else {
        std::cerr << "unknown backend: " << backend << "\n";
        return 2;
      }
    }
    if (arg == "--emit" && i + 1 < argc) emit_path = argv[++i];
    if (arg == "--metrics-json" && i + 1 < argc) metrics_path = argv[++i];
    if (arg == "--trace-json" && i + 1 < argc) trace_path = argv[++i];
    if (arg == "--timeout-ms" && i + 1 < argc)
      options.timeout_ms = ms_flag(arg, argv[++i]);
    if (arg == "--budget" && i + 1 < argc)
      options.work_budget = u64_flag(arg, argv[++i]);
    if (arg == "--poll-stride" && i + 1 < argc)
      options.poll_stride =
          static_cast<std::uint32_t>(int_flag(arg, argv[++i], 0, 1 << 20));
    if (arg == "--fault-drop" && i + 1 < argc)
      fault_rates.drop = rate_flag(arg, argv[++i]);
    if (arg == "--fault-duplicate" && i + 1 < argc)
      fault_rates.duplicate = rate_flag(arg, argv[++i]);
    if (arg == "--fault-reorder" && i + 1 < argc)
      fault_rates.reorder = rate_flag(arg, argv[++i]);
    if (arg == "--fault-corrupt" && i + 1 < argc)
      fault_rates.corrupt = rate_flag(arg, argv[++i]);
    if (arg == "--fault-seed" && i + 1 < argc)
      fault_seed = u64_flag(arg, argv[++i]);
  }
  options.faults = dist::FaultPlan::uniform(fault_seed, fault_rates.drop,
                                            fault_rates.duplicate,
                                            fault_rates.reorder,
                                            fault_rates.corrupt);
  // Baseline before graph loading so the delta covers io.snapshot.*
  // counters when <graph> is a snapshot file.
  const support::metrics::Snapshot metrics_before =
      metrics_path.empty() ? support::metrics::Snapshot{}
                           : GraphPi::metrics_snapshot();
  const Graph g = parse_graph(graph_spec);
  const Pattern p = parse_pattern(pattern_spec);
  const GraphPi engine(g);
  const Configuration config = engine.plan(p, options);
  if (!emit_path.empty()) {
    std::ofstream out(emit_path);
    if (!out) {
      std::cerr << "cannot write " << emit_path << "\n";
      return 1;
    }
    const std::string source = codegen::generate_source(config);
    out << source;
    // Diagnostic on stderr: stdout stays parseable (first line = count).
    std::cerr << "emitted " << source.size() << " bytes of generated kernel"
              << " to " << emit_path << "\n";
  }
  dist::ClusterStats stats;
  if (options.backend == Backend::kDistributed) options.cluster_stats = &stats;
  if (options.backend == Backend::kGenerated && !jit::compiler_available())
    std::cerr << "note: no system compiler found; running the interpreter\n";
  const bool bounded = options.timeout_ms > 0.0 || options.work_budget != 0;
  support::trace::TraceBuffer trace_buf;
  if (!trace_path.empty()) options.trace_sink = &trace_buf;
  support::RunReport report;
  support::Timer t;
  const Count n = engine.count(config, options, bounded ? &report : nullptr);
  std::cout << n << " embeddings in " << t.elapsed_seconds() << "s\n";
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::cerr << "cannot write " << metrics_path << "\n";
      return 1;
    }
    out << GraphPi::metrics_snapshot().diff(metrics_before).to_json() << "\n";
    std::cerr << "wrote metrics delta to " << metrics_path << "\n";
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot write " << trace_path << "\n";
      return 1;
    }
    out << trace_buf.to_chrome_json() << "\n";
    std::cerr << "wrote " << trace_buf.events().size() << " trace spans to "
              << trace_path << "\n";
  }
  if (bounded)
    std::cout << "status: " << support::to_string(report.status)
              << " (completed " << report.completed_roots << " roots)\n";
  if (options.backend == Backend::kDistributed) {
    std::cout << "sharded run: " << options.nodes << " nodes ("
              << dist::to_string(options.partition) << ", "
              << dist::to_string(options.dist_exec) << "), tasks "
              << stats.total_tasks << ", messages " << stats.messages << " ("
              << stats.bytes << " B), shipped candidate vertices "
              << stats.shipped_set_vertices << "\n";
    if (options.dist_exec == dist::ExecMode::kAsync)
      std::cout << "async runtime: " << options.dist_workers
                << " workers/node, " << stats.flushes << " flushes, "
                << stats.coalesced_payloads << " continuations in "
                << stats.coalesced_frames << " batch frames, "
                << stats.mailbox_stalls << " mailbox stalls (high water "
                << stats.mailbox_high_water << ")\n";
    if (options.faults.active())
      std::cout << "fault injection: dropped " << stats.injected_drops
                << ", duplicated " << stats.injected_duplicates
                << ", reordered " << stats.injected_reorders << ", corrupted "
                << stats.injected_corruptions << "; recovered via "
                << stats.retransmits << " retransmits, "
                << stats.corrupt_frames_detected << " CRC rejects, "
                << stats.duplicates_suppressed << " dedups\n";
  }
  if (options.backend == Backend::kGenerated) {
    const auto cache = jit::KernelCache::instance().stats();
    std::cout << "kernel cache: " << cache.compiles << " compiled, "
              << cache.memory_hits << " memory hits, " << cache.disk_hits
              << " disk hits (" << jit::KernelCache::instance().cache_dir()
              << ", " << active_isa() << " kernels)\n";
  }
  return 0;
}

int cmd_list(const std::string& graph_spec, const std::string& pattern_spec,
             std::uint64_t limit) {
  const Graph g = parse_graph(graph_spec);
  const Pattern p = parse_pattern(pattern_spec);
  const GraphPi engine(g);
  std::uint64_t shown = 0, total = 0;
  engine.find_all(p, [&](std::span<const VertexId> emb) {
    ++total;
    if (shown < limit) {
      ++shown;
      for (std::size_t i = 0; i < emb.size(); ++i)
        std::cout << (i ? " " : "") << emb[i];
      std::cout << "\n";
    }
  });
  std::cout << "# " << total << " embeddings (" << shown << " shown)\n";
  return 0;
}

int cmd_plan(const std::string& graph_spec, const std::string& pattern_spec) {
  const Graph g = parse_graph(graph_spec);
  const Pattern p = parse_pattern(pattern_spec);
  PlanningStats diag;
  const Configuration config =
      GraphPi(g).plan(p, MatchOptions{}, &diag);
  std::cout << "pattern:        " << p.to_string() << "\n"
            << "|Aut|:          " << automorphism_count(p) << "\n"
            << "configuration:  " << config.to_string() << "\n"
            << "predicted cost: " << config.predicted_cost << "\n"
            << "schedules:      " << diag.schedules_total << " -> "
            << diag.schedules_phase1 << " -> " << diag.schedules_efficient
            << "\n"
            << "restr sets:     " << diag.restriction_sets << "\n"
            << "combos scored:  " << diag.configurations_evaluated << "\n"
            << "planning time:  " << diag.planning_seconds << "s\n";
  return 0;
}

int cmd_gen(const std::string& pattern_spec, const char* out_path,
            bool use_iep) {
  const Pattern p = parse_pattern(pattern_spec);
  const Graph g = datasets::load("wiki_vote", 0.1);
  MatchOptions options;
  // The plan-IR generator emits IEP leaves inline, so IEP plans are
  // standalone-compilable too (the pre-IR generator could not).
  options.use_iep = use_iep;
  const Configuration config = GraphPi(g).plan(p, options);
  const std::string source = codegen::generate_standalone(config);
  if (out_path == nullptr) {
    std::cout << source;
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << source;
    std::cout << "wrote " << source.size() << " bytes to " << out_path
              << "\n";
  }
  return 0;
}

int cmd_save(const std::string& graph_spec, const std::string& out_path,
             int argc, char** argv) {
  io::SnapshotOptions snapshot_options;
  bool reorder = true;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--block-vertices" && i + 1 < argc)
      snapshot_options.block_vertices =
          static_cast<std::uint32_t>(int_flag(arg, argv[++i], 1, 1 << 24));
    if (arg == "--no-reorder") reorder = false;
  }
  Graph g = parse_graph(graph_spec);
  if (reorder) g = g.reorder_by_degree();
  snapshot_options.degree_ordered = reorder;
  support::Timer t;
  io::save_snapshot(g, out_path, snapshot_options);
  const double seconds = t.elapsed_seconds();
  // Reopen through the validated reader so the numbers we print are the
  // file's own (and a broken write fails loudly right here).
  const io::MappedSnapshot snap(out_path);
  const io::SnapshotInfo& info = snap.info();
  const double bits_per_slot =
      info.slot_count > 0 ? 8.0 * static_cast<double>(info.payload_bytes) /
                                static_cast<double>(info.slot_count)
                          : 0.0;
  std::cout << "wrote " << info.file_bytes << " bytes (" << g.vertex_count()
            << " vertices, " << g.edge_count() << " edges, "
            << info.block_count << " blocks, " << bits_per_slot
            << " bits/slot" << (reorder ? ", degree-ordered" : "") << ") to "
            << out_path << " in " << seconds << "s\n";
  return 0;
}

int cmd_load(const std::string& path, bool verify) {
  support::Timer t_open;
  const io::MappedSnapshot snap(path);
  const double open_seconds = t_open.elapsed_seconds();
  support::Timer t_decode;
  const Graph g = snap.decode_graph();
  const double decode_seconds = t_decode.elapsed_seconds();
  const io::SnapshotInfo& info = snap.info();
  support::Table table({"metric", "value"});
  table.add("vertices", info.vertex_count);
  table.add("edges", g.edge_count());
  table.add("blocks", info.block_count);
  table.add("block vertices", info.block_vertices);
  table.add("degree ordered", info.degree_ordered ? "yes" : "no");
  table.add("file bytes", info.file_bytes);
  table.add("payload bytes", info.payload_bytes);
  if (info.has_triangles) table.add("triangles (cached)", info.triangle_count);
  table.add("map seconds", open_seconds);
  table.add("decode seconds", decode_seconds);
  if (decode_seconds > 0.0)
    table.add("decode GB/s", static_cast<double>(info.payload_bytes) /
                                 decode_seconds / 1e9);
  table.print();
  std::cout << "kernels: " << active_isa() << "\n";
  if (verify) {
    if (!g.validate()) {
      std::cerr << "snapshot FAILED full CSR validation\n";
      return 1;
    }
    std::cout << "validate: ok (sorted, symmetric, loop-free)\n";
  }
  return 0;
}

int cmd_make(const std::string& kind, VertexId n, std::uint64_t m,
             std::uint64_t seed, const std::string& out) {
  Graph g;
  if (kind == "er") {
    g = erdos_renyi(n, m, seed);
  } else if (kind == "powerlaw") {
    g = power_law(n, m, 2.3, seed);
  } else if (kind == "clustered") {
    g = clustered_power_law(n, m, 2.3, 0.4, seed);
  } else {
    std::cerr << "unknown generator kind: " << kind << "\n";
    return 2;
  }
  save_edge_list(g, out);
  std::cout << "wrote " << g.vertex_count() << " vertices / "
            << g.edge_count() << " edges to " << out << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
#ifdef SIGPIPE
  // Piping into `head` must truncate the output, not kill the process:
  // with SIGPIPE ignored the write fails with EPIPE, ostream badbit set,
  // and we exit normally.
  std::signal(SIGPIPE, SIG_IGN);
#endif
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "stats" && argc >= 3) return cmd_stats(argv[2]);
    if (cmd == "count" && argc >= 4)
      return cmd_count(argv[2], argv[3], argc - 4, argv + 4);
    if (cmd == "list" && argc >= 4)
      return cmd_list(argv[2], argv[3],
                      argc > 4 ? u64_flag("list limit", argv[4]) : 20);
    if (cmd == "plan" && argc >= 4) return cmd_plan(argv[2], argv[3]);
    if (cmd == "gen" && argc >= 3) {
      bool use_iep = true;
      const char* out = nullptr;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--no-iep") == 0) {
          use_iep = false;
        } else {
          out = argv[i];
        }
      }
      return cmd_gen(argv[2], out, use_iep);
    }
    if (cmd == "save" && argc >= 4)
      return cmd_save(argv[2], argv[3], argc - 4, argv + 4);
    if (cmd == "load" && argc >= 3)
      return cmd_load(argv[2],
                      argc > 3 && std::strcmp(argv[3], "--verify") == 0);
    if (cmd == "make" && argc >= 7)
      return cmd_make(
          argv[2],
          static_cast<VertexId>(int_flag("make n", argv[3], 0, 0xffffffffLL)),
          u64_flag("make m", argv[4]), u64_flag("make seed", argv[5]),
          argv[6]);
  } catch (const UsageError& e) {
    std::cerr << "graphpi: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "graphpi: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
