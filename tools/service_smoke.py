#!/usr/bin/env python3
"""End-to-end smoke of graphpi_serve against the real binary.

    service_smoke.py <graphpi_serve> <graphpi_cli>

Asserts, in order:
  1. correctness under concurrency — 8 client threads pipeline pattern
     queries (serial + generated backends) and every served count must
     equal `graphpi_cli count` on the same graph/pattern;
  2. /metrics — an HTTP GET returns Prometheus text with nonzero
     graphpi_service_* series;
  3. shedding — a workers=1/queue=2 server behind a parked sleep job
     rejects an over-capacity burst with {"status":"shed"} and a
     nonzero shed counter;
  4. drain — SIGTERM with a query in flight still answers it, prints
     the drain banner on stderr, and exits 0.

Exits nonzero with a message on the first violated assertion.
"""

import json
import re
import signal
import socket
import subprocess
import sys
import threading
import time

GRAPH = "dataset:wiki_vote:0.3"
PATTERNS = ["triangle", "pentagon", "house"]


def fail(msg):
    sys.exit(f"service_smoke: FAIL: {msg}")


def cli_count(cli, pattern, backend="serial"):
    out = subprocess.run(
        [cli, "count", GRAPH, pattern, "--backend", backend],
        capture_output=True, text=True, check=True).stdout
    return int(out.split()[0])


class Server:
    """graphpi_serve child on an ephemeral port."""

    def __init__(self, binary, *extra_flags):
        self.proc = subprocess.Popen(
            [binary, "--graph", GRAPH, *extra_flags],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        line = self.proc.stdout.readline()
        m = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
        if not m:
            self.proc.kill()
            fail(f"no listening banner, got: {line!r}")
        self.port = int(m.group(1))

    def connect(self):
        return Conn(self.port)

    def stop(self, expect_drain=False):
        self.proc.send_signal(signal.SIGTERM)
        try:
            self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            fail("server did not exit within 30s of SIGTERM")
        stderr = self.proc.stderr.read()
        if self.proc.returncode != 0:
            fail(f"server exit code {self.proc.returncode}; stderr:\n{stderr}")
        if expect_drain and "draining" not in stderr:
            fail(f"no drain banner in stderr:\n{stderr}")
        return stderr


class Conn:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=60)
        self.file = self.sock.makefile("r", encoding="utf-8")

    def send(self, obj):
        self.sock.sendall((json.dumps(obj) + "\n").encode())

    def recv(self):
        line = self.file.readline()
        if not line:
            fail("connection closed mid-conversation")
        return json.loads(line)

    def close(self):
        self.sock.close()


def check_concurrent(server, expected):
    n_threads, rounds = 8, 3
    errors = []

    def client(tid):
        try:
            conn = server.connect()
            for r in range(rounds):
                for i, pattern in enumerate(PATTERNS):
                    backend = "generated" if (tid + r + i) % 2 else "serial"
                    conn.send({"id": f"{tid}-{r}-{pattern}",
                               "pattern": pattern, "backend": backend})
            for _ in range(rounds * len(PATTERNS)):
                resp = conn.recv()
                pattern = resp["id"].rsplit("-", 1)[1]
                if resp.get("status") != "ok":
                    errors.append(f"{resp['id']}: {resp}")
                elif resp["count"] != expected[pattern]:
                    errors.append(f"{resp['id']}: count {resp['count']} != "
                                  f"{expected[pattern]}")
            conn.close()
        except Exception as e:  # noqa: BLE001 — surfaced via `errors`
            errors.append(f"client {tid}: {e!r}")

    threads = [threading.Thread(target=client, args=(t,))
               for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        fail("concurrent phase:\n  " + "\n  ".join(errors[:10]))
    print(f"service_smoke: {n_threads} clients x {rounds * len(PATTERNS)} "
          "queries, all counts exact")


def check_metrics(server):
    with socket.create_connection(("127.0.0.1", server.port), timeout=30) as s:
        s.sendall(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        body = b""
        while chunk := s.recv(65536):
            body += chunk
    text = body.decode()
    if "200 OK" not in text:
        fail(f"/metrics did not return 200:\n{text[:500]}")
    m = re.search(r"^graphpi_service_requests (\d+)", text, re.M)
    if not m or int(m.group(1)) == 0:
        fail(f"graphpi_service_requests missing or zero:\n{text[:500]}")
    print(f"service_smoke: /metrics OK ({m.group(0)})")


def check_shedding(binary):
    server = Server(binary, "--workers", "1", "--queue", "2", "--allow-debug")
    try:
        conn = server.connect()
        conn.send({"id": "park", "cmd": "sleep", "ms": 1000})
        time.sleep(0.2)  # let the worker pick the sleep up
        burst = 12
        for i in range(burst):
            conn.send({"id": f"b{i}", "pattern": "house"})
        statuses = [conn.recv().get("status") for _ in range(burst + 1)]
        conn.close()
        shed = statuses.count("shed")
        ok = statuses.count("ok")
        if shed == 0:
            fail(f"over-capacity burst shed nothing: {statuses}")
        if shed + ok != burst + 1:
            fail(f"unexpected statuses in burst: {statuses}")
        print(f"service_smoke: burst of {burst} -> {shed} shed, {ok} served")
    finally:
        server.stop()


def check_drain(binary):
    server = Server(binary, "--workers", "1", "--allow-debug")
    conn = server.connect()
    conn.send({"id": "slow", "cmd": "sleep", "ms": 800})
    conn.send({"id": "q", "pattern": "rectangle"})
    time.sleep(0.2)
    server.proc.send_signal(signal.SIGTERM)
    r1, r2 = conn.recv(), conn.recv()
    if not any(r.get("pong") for r in (r1, r2)):
        fail(f"in-flight sleep not answered during drain: {r1} / {r2}")
    if not any(r.get("status") == "ok" for r in (r1, r2)):
        fail(f"queued query not served during drain: {r1} / {r2}")
    conn.close()
    stderr = server.stop(expect_drain=True)
    print("service_smoke: SIGTERM drained in-flight queries "
          f"({stderr.strip().splitlines()[-1]})")


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    serve_bin, cli = sys.argv[1], sys.argv[2]
    expected = {p: cli_count(cli, p) for p in PATTERNS}
    # Generated backend must agree with the CLI too (shared kernel cache).
    if cli_count(cli, "pentagon", "generated") != expected["pentagon"]:
        fail("cli generated != serial, environment broken")
    print(f"service_smoke: expected counts {expected}")

    # Queue sized above the whole pipelined burst (8 clients x 9
    # queries): this phase asserts correctness under concurrency;
    # shedding has its own phase with a deliberately tiny queue.
    server = Server(serve_bin, "--workers", "2", "--queue", "256")
    try:
        check_concurrent(server, expected)
        check_metrics(server)
    finally:
        server.stop()
    check_shedding(serve_bin)
    check_drain(serve_bin)
    print("service_smoke: PASS")


if __name__ == "__main__":
    main()
