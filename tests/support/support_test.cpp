// Support utilities: deterministic RNG streams, bounded sampling, the
// table formatter, and invariant checks.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "support/check.h"
#include "support/rng.h"
#include "support/table.h"
#include "support/timer.h"

namespace graphpi::support {
namespace {

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto x = a.next();
    EXPECT_EQ(x, b.next());
    EXPECT_NE(x, c.next());  // astronomically unlikely to collide
  }
}

TEST(Rng, XoshiroStreamsReproducible) {
  Xoshiro256StarStar a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BoundedIsInRangeAndRoughlyUniform) {
  Xoshiro256StarStar rng(123);
  constexpr std::uint64_t kBound = 10;
  std::uint64_t histogram[kBound] = {};
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const auto v = rng.bounded(kBound);
    ASSERT_LT(v, kBound);
    histogram[v]++;
  }
  for (auto h : histogram) {
    EXPECT_GT(h, kSamples / kBound * 0.9);
    EXPECT_LT(h, kSamples / kBound * 1.1);
  }
  EXPECT_EQ(rng.bounded(1), 0u);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256StarStar rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink += std::sqrt(i);
  EXPECT_GT(t.elapsed_seconds(), 0.0);
  EXPECT_GT(t.elapsed_nanos(), 0u);
  const double before = t.elapsed_seconds();
  t.reset();
  EXPECT_LE(t.elapsed_seconds(), before);
}

TEST(Table, FormatsAlignedColumns) {
  Table table({"name", "value"});
  table.add("alpha", 1);
  table.add("beta", 2.5);
  table.add_row({"gamma"});  // short row padded
  std::ostringstream oss;
  table.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("2.500"), std::string::npos);
  EXPECT_NE(out.find("| gamma |       |"), std::string::npos);
}

TEST(Check, ThrowsWithContext) {
  try {
    GRAPHPI_CHECK_MSG(1 == 2, "math still works");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math still works"), std::string::npos);
  }
  EXPECT_NO_THROW(GRAPHPI_CHECK(2 + 2 == 4));
}

}  // namespace
}  // namespace graphpi::support
