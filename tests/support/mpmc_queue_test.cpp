// BoundedMpmcQueue: the mailbox contract the async distributed runtime
// leans on — capacity refusal vs force pushes, close semantics, the
// abortable timed waits, the high-water mark, and multi-threaded
// conservation of items.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "support/exec_control.h"
#include "support/mpmc_queue.h"

namespace graphpi::support {
namespace {

using namespace std::chrono_literals;

TEST(MpmcQueue, CapacityRefusesTryPushButNeverForcePush) {
  BoundedMpmcQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // at capacity
  q.force_push(4);              // protocol traffic is never refused
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.high_water(), 3u);
  int out = 0;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 1);
  q.force_push_front(0);  // reorder delivery jumps the queue
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 0);
}

TEST(MpmcQueue, UnboundedNeverRefuses) {
  BoundedMpmcQueue<int> q(0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(q.try_push(int{i}));
  EXPECT_EQ(q.size(), 1000u);
  EXPECT_EQ(q.high_water(), 1000u);
}

TEST(MpmcQueue, CloseWakesWaitersDropsPushesDrainsPops) {
  BoundedMpmcQueue<int> q(0);
  q.force_push(7);
  std::thread closer([&q] {
    std::this_thread::sleep_for(5ms);
    q.close();
  });
  int out = 0;
  // The queued item is still poppable...
  ASSERT_TRUE(q.pop_wait(out, 1s));
  EXPECT_EQ(out, 7);
  // ...then the close wakes the empty wait with false, promptly.
  EXPECT_FALSE(q.pop_wait(out, 10s));
  closer.join();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.try_push(1));
  q.force_push(2);  // dropped
  EXPECT_TRUE(q.empty());
}

TEST(MpmcQueue, PopWaitTimesOut) {
  BoundedMpmcQueue<int> q(0);
  int out = 0;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_wait(out, 20ms));
  EXPECT_GE(std::chrono::steady_clock::now() - start, 20ms);
}

TEST(MpmcQueue, ArmedControlAbortsWaitWithinSlices) {
  std::atomic<bool> cancel{false};
  ExecControl control;
  control.set_cancel_flag(&cancel);
  BoundedMpmcQueue<int> q(0);
  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(5ms);
    cancel.store(true);
  });
  int out = 0;
  const auto start = std::chrono::steady_clock::now();
  // Without the sliced control checks this would block the full 10s.
  EXPECT_FALSE(q.pop_wait(out, 10s, &control));
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);
  canceller.join();
}

TEST(MpmcQueue, WaitNonemptyDoesNotPop) {
  BoundedMpmcQueue<int> q(0);
  std::thread producer([&q] {
    std::this_thread::sleep_for(5ms);
    q.force_push(42);
  });
  ASSERT_TRUE(q.wait_nonempty(5s));
  EXPECT_EQ(q.size(), 1u);
  int out = 0;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 42);
  producer.join();
}

TEST(MpmcQueue, ManyProducersManyConsumersConserveItems) {
  // 4 producers push 4 disjoint ranges; 4 consumers drain with pop_wait.
  // Every item must arrive exactly once (sum + count check).
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  BoundedMpmcQueue<int> q(64);  // small bound: producers must retry
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c)
    threads.emplace_back([&] {
      int v = 0;
      while (q.pop_wait(v, 1s)) {
        sum.fetch_add(v);
        popped.fetch_add(1);
      }
    });
  for (int p = 0; p < kProducers; ++p)
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = p * kPerProducer + i;
        while (!q.try_push(int{item})) std::this_thread::yield();
      }
    });
  for (std::size_t t = kConsumers; t < threads.size(); ++t) threads[t].join();
  while (!q.empty()) std::this_thread::yield();
  q.close();
  for (int c = 0; c < kConsumers; ++c) threads[static_cast<std::size_t>(c)].join();
  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
  EXPECT_LE(q.high_water(), 64u + kProducers);  // force paths unused here
}

}  // namespace
}  // namespace graphpi::support
