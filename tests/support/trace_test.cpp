// Trace spans: RAII recording, nesting depths, ring wraparound, and the
// Chrome trace-event export (support/trace.h).
#include "support/trace.h"

#include <gtest/gtest.h>

#include <string>

#include "support/metrics.h"

namespace graphpi::support::trace {
namespace {

/// Spans only record when the metrics layer is enabled; force it on for
/// the duration of each test and restore after.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = metrics::enabled();
    metrics::set_enabled(true);
  }
  void TearDown() override {
    set_active_sink(nullptr);
    metrics::set_enabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(TraceTest, SpanRecordsIntoActiveSink) {
  TraceBuffer buf;
  const ScopedSink sink(&buf);
  { const Span span("unit.outer"); }
  const auto events = buf.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "unit.outer");
  EXPECT_EQ(events[0].depth, 0u);
}

TEST_F(TraceTest, NestedSpansTrackDepthAndCloseInnerFirst) {
  TraceBuffer buf;
  const ScopedSink sink(&buf);
  {
    const Span outer("unit.outer");
    {
      const Span mid("unit.mid");
      const Span inner("unit.inner");
    }
  }
  const auto events = buf.events();
  ASSERT_EQ(events.size(), 3u);
  // Spans record on close: innermost first.
  EXPECT_STREQ(events[0].name, "unit.inner");
  EXPECT_EQ(events[0].depth, 2u);
  EXPECT_STREQ(events[1].name, "unit.mid");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_STREQ(events[2].name, "unit.outer");
  EXPECT_EQ(events[2].depth, 0u);
  // The outer span encloses the inner one.
  EXPECT_LE(events[2].start_ns, events[0].start_ns);
  EXPECT_GE(events[2].start_ns + events[2].dur_ns,
            events[0].start_ns + events[0].dur_ns);
}

TEST_F(TraceTest, RingWrapsKeepingMostRecent) {
  TraceBuffer buf(4);
  const ScopedSink sink(&buf);
  for (int i = 0; i < 10; ++i) {
    const Span span(i < 6 ? "unit.old" : "unit.new");
  }
  EXPECT_EQ(buf.total_recorded(), 10u);
  EXPECT_EQ(buf.dropped(), 6u);
  const auto events = buf.events();
  ASSERT_EQ(events.size(), 4u);
  for (const Event& e : events) EXPECT_STREQ(e.name, "unit.new");
}

TEST_F(TraceTest, NullScopedSinkLeavesCurrentSinkInPlace) {
  TraceBuffer buf;
  const ScopedSink outer(&buf);
  {
    const ScopedSink inner(nullptr);
    EXPECT_EQ(active_sink(), &buf);
    const Span span("unit.through_null");
  }
  EXPECT_EQ(buf.events().size(), 1u);
}

TEST_F(TraceTest, NoSinkMeansNoRecording) {
  set_active_sink(nullptr);
  const Span span("unit.unsunk");  // must not crash
  SUCCEED();
}

TEST_F(TraceTest, ChromeJsonShape) {
  TraceBuffer buf;
  const ScopedSink sink(&buf);
  {
    const Span outer("unit.json");
    const Span inner("unit.json_inner");
  }
  const std::string json = buf.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"unit.json\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"graphpi\""), std::string::npos);
  EXPECT_NE(json.find("\"depth\":1"), std::string::npos);
}

TEST_F(TraceTest, ClearResetsRetainedEvents) {
  TraceBuffer buf;
  const ScopedSink sink(&buf);
  { const Span span("unit.cleared"); }
  buf.clear();
  EXPECT_TRUE(buf.events().empty());
}

TEST_F(TraceTest, DisabledMetricsSuppressSpans) {
  TraceBuffer buf;
  const ScopedSink sink(&buf);
  metrics::set_enabled(false);
  { const Span span("unit.disabled"); }
  metrics::set_enabled(true);
  EXPECT_TRUE(buf.events().empty());
}

}  // namespace
}  // namespace graphpi::support::trace
