// Metrics registry: counters, gauges, histogram percentiles, snapshots,
// diffs, and the JSON / Prometheus exports (support/metrics.h).
#include "support/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

namespace graphpi::support::metrics {
namespace {

TEST(MetricsCounter, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

// Concurrent increments must conserve the total — the whole point of the
// relaxed fetch_add. Runs under the TSan job (support\. filter).
TEST(MetricsCounter, ConcurrentIncrementsConserveTotal) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsGauge, SetAddRecordMax) {
  Gauge g;
  g.set(5);
  EXPECT_EQ(g.value(), 5);
  g.add(-2);
  EXPECT_EQ(g.value(), 3);
  g.record_max(10);
  EXPECT_EQ(g.value(), 10);
  g.record_max(7);  // smaller: no change
  EXPECT_EQ(g.value(), 10);
}

TEST(MetricsHistogram, BucketBoundsAreGeometric) {
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(0), 1e-3);
  for (int i = 1; i < Histogram::kBucketCount; ++i)
    EXPECT_DOUBLE_EQ(Histogram::bucket_bound(i),
                     2.0 * Histogram::bucket_bound(i - 1));
}

TEST(MetricsHistogram, CountAndSum) {
  Histogram h;
  h.observe(1.0);
  h.observe(2.0);
  h.observe(4.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.sum(), 7.0, 1e-6);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

// A known distribution: 100 observations at 1..100 ms. Geometric buckets
// cap the relative error of a percentile estimate at the bucket width
// (a factor of 2), so assert the estimates land within [p/2, 2p].
TEST(MetricsHistogram, PercentilesTrackKnownDistribution) {
  Registry::instance().reset();
  Histogram& h = metric_histogram("test.percentiles_ms");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const Snapshot snap = Registry::instance().snapshot();
  const HistogramSnapshot& hs = snap.histograms.at("test.percentiles_ms");
  EXPECT_EQ(hs.count, 100u);
  EXPECT_NEAR(hs.sum, 5050.0, 1.0);
  const double p50 = hs.p50();
  const double p90 = hs.p90();
  const double p99 = hs.p99();
  EXPECT_GE(p50, 25.0);
  EXPECT_LE(p50, 100.0);
  EXPECT_GE(p90, 45.0);
  EXPECT_LE(p90, 180.0);
  EXPECT_GE(p99, 49.5);
  EXPECT_LE(p99, 198.0);
  // Percentiles are monotone in q.
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
}

TEST(MetricsHistogram, PercentileOfEmptyIsZero) {
  HistogramSnapshot hs;
  hs.buckets.assign(Histogram::kBucketCount, 0);
  EXPECT_DOUBLE_EQ(hs.percentile(50.0), 0.0);
}

TEST(MetricsRegistry, HandlesAreStableAndNamed) {
  Counter& a = metric_counter("test.stable");
  Counter& b = metric_counter("test.stable");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(Registry::instance().snapshot().counter_or("test.stable"), 3u);
}

TEST(MetricsSnapshot, DiffIsolatesOneInterval) {
  Counter& c = metric_counter("test.diff");
  c.inc(10);
  const Snapshot before = Registry::instance().snapshot();
  c.inc(7);
  const Snapshot delta = Registry::instance().snapshot().diff(before);
  EXPECT_EQ(delta.counter_or("test.diff"), 7u);
  // Names absent from the baseline keep their full value.
  Counter& fresh = metric_counter("test.diff_fresh");
  fresh.inc(5);
  EXPECT_EQ(Registry::instance().snapshot().diff(before).counter_or(
                "test.diff_fresh"),
            5u);
}

TEST(MetricsSnapshot, JsonExportContainsInstruments) {
  Registry::instance().reset();
  metric_counter("test.json_counter").inc(2);
  metric_gauge("test.json_gauge").set(-4);
  metric_histogram("test.json_histo_ms").observe(1.5);
  const std::string json = Registry::instance().snapshot().to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\":2"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_gauge\":-4"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_histo_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

TEST(MetricsSnapshot, PrometheusExportSanitizesNames) {
  Registry::instance().reset();
  metric_counter("test.prom.counter").inc(9);
  metric_histogram("test.prom_ms").observe(3.0);
  const std::string text = Registry::instance().snapshot().to_prometheus();
  EXPECT_NE(text.find("graphpi_test_prom_counter 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE graphpi_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("graphpi_test_prom_ms_count 1"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

TEST(MetricsEnabled, SwitchGatesNothingButTimedInstruments) {
  const bool was = enabled();
  set_enabled(false);
  EXPECT_FALSE(enabled());
  // Counters stay live regardless of the switch.
  Counter& c = metric_counter("test.always_on");
  const std::uint64_t before = c.value();
  c.inc();
  EXPECT_EQ(c.value(), before + 1);
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(was);
}

}  // namespace
}  // namespace graphpi::support::metrics
