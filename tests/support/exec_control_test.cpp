// Unit tests for the bounded-execution primitives (support/exec_control.h):
// check() precedence, deadline/budget semantics, stride rounding, and the
// PollGate stride-gating/stickiness the backends rely on.
#include "support/exec_control.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace graphpi::support {
namespace {

TEST(ExecControl, DefaultIsUnarmed) {
  const ExecControl control;
  EXPECT_FALSE(control.armed());
  EXPECT_FALSE(control.has_deadline());
  EXPECT_EQ(control.check(~std::uint64_t{0}), RunStatus::kOk);
  EXPECT_EQ(control.poll_stride(), ExecControl::kDefaultPollStride);
}

TEST(ExecControl, CancelFlagWins) {
  std::atomic<bool> cancel{false};
  ExecControl control;
  control.set_cancel_flag(&cancel);
  control.set_root_budget(1);
  control.arm_deadline_ms(-1.0);  // already expired
  EXPECT_TRUE(control.armed());
  // Precedence: cancel > deadline > budget.
  EXPECT_EQ(control.check(100), RunStatus::kTimeout);
  cancel.store(true);
  EXPECT_EQ(control.check(100), RunStatus::kCancelled);
}

TEST(ExecControl, DeadlineExpires) {
  ExecControl control;
  control.arm_deadline_ms(5.0);
  EXPECT_TRUE(control.has_deadline());
  EXPECT_EQ(control.check(0), RunStatus::kOk);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(control.check(0), RunStatus::kTimeout);
}

TEST(ExecControl, BudgetEnforcedAtThreshold) {
  ExecControl control;
  control.set_root_budget(128);
  EXPECT_EQ(control.check(127), RunStatus::kOk);
  EXPECT_EQ(control.check(128), RunStatus::kBudget);
  EXPECT_EQ(control.check(129), RunStatus::kBudget);
}

TEST(ExecControl, StrideRoundsUpToPowerOfTwo) {
  ExecControl control;
  control.set_poll_stride(1);
  EXPECT_EQ(control.poll_stride(), 1u);
  EXPECT_EQ(control.poll_mask(), 0u);
  control.set_poll_stride(3);
  EXPECT_EQ(control.poll_stride(), 4u);
  control.set_poll_stride(64);
  EXPECT_EQ(control.poll_stride(), 64u);
  control.set_poll_stride(65);
  EXPECT_EQ(control.poll_stride(), 128u);
  control.set_poll_stride(0);  // restores the default
  EXPECT_EQ(control.poll_stride(), ExecControl::kDefaultPollStride);
}

TEST(PollGate, UnarmedControlNeverStops) {
  const ExecControl control;  // default: unarmed
  PollGate gate(&control);
  for (int i = 0; i < 1000; ++i)
    EXPECT_EQ(gate.completed_unit(), RunStatus::kOk);
  EXPECT_EQ(gate.done(), 1000u);

  PollGate null_gate(nullptr);
  EXPECT_EQ(null_gate.completed_unit(), RunStatus::kOk);
}

TEST(PollGate, PollsOnlyAtStrideBoundaries) {
  // A budget of 1 root trips at the FIRST poll; with stride 16 that poll
  // happens at unit 16, so the overshoot is bounded by one stride.
  ExecControl control;
  control.set_root_budget(1);
  control.set_poll_stride(16);
  PollGate gate(&control);
  for (int i = 1; i <= 15; ++i)
    EXPECT_EQ(gate.completed_unit(), RunStatus::kOk) << "unit " << i;
  EXPECT_EQ(gate.completed_unit(), RunStatus::kBudget);  // unit 16
}

TEST(PollGate, StatusIsSticky) {
  std::atomic<bool> cancel{true};
  ExecControl control;
  control.set_cancel_flag(&cancel);
  control.set_poll_stride(1);
  PollGate gate(&control);
  EXPECT_EQ(gate.completed_unit(), RunStatus::kCancelled);
  cancel.store(false);  // un-setting the flag does not resurrect the run
  EXPECT_EQ(gate.completed_unit(), RunStatus::kCancelled);
  EXPECT_EQ(gate.status(), RunStatus::kCancelled);
}

TEST(RunReport, MergeAddsRootsFirstNonOkWins) {
  RunReport a{RunStatus::kOk, 100};
  a.merge(RunReport{RunStatus::kOk, 50});
  EXPECT_EQ(a.status, RunStatus::kOk);
  EXPECT_EQ(a.completed_roots, 150u);
  EXPECT_TRUE(a.complete());
  a.merge(RunReport{RunStatus::kTimeout, 7});
  EXPECT_EQ(a.status, RunStatus::kTimeout);
  EXPECT_EQ(a.completed_roots, 157u);
  a.merge(RunReport{RunStatus::kBudget, 1});  // first non-ok sticks
  EXPECT_EQ(a.status, RunStatus::kTimeout);
  EXPECT_FALSE(a.complete());
}

TEST(RunStatus, ToString) {
  EXPECT_STREQ(to_string(RunStatus::kOk), "ok");
  EXPECT_STREQ(to_string(RunStatus::kTimeout), "timeout");
  EXPECT_STREQ(to_string(RunStatus::kCancelled), "cancelled");
  EXPECT_STREQ(to_string(RunStatus::kBudget), "budget");
}

}  // namespace
}  // namespace graphpi::support
