// The performance-prediction model (Section IV-C): statistics, filter
// probabilities, and ranking quality on real workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/configuration.h"
#include "core/pattern_library.h"
#include "core/perf_model.h"
#include "core/restriction.h"
#include "engine/matcher.h"
#include "graph/generators.h"
#include "support/timer.h"

namespace graphpi {
namespace {

TEST(GraphStats, ProbabilitiesMatchDefinitions) {
  const Graph g = clustered_power_law(500, 2500, 2.3, 0.4, 21);
  const GraphStats s = GraphStats::of(g);
  EXPECT_DOUBLE_EQ(s.vertices, g.vertex_count());
  EXPECT_DOUBLE_EQ(s.edges, g.edge_count());
  EXPECT_DOUBLE_EQ(s.p1(), 2.0 * s.edges / (s.vertices * s.vertices));
  EXPECT_DOUBLE_EQ(s.p2(),
                   s.triangles * s.vertices / (4.0 * s.edges * s.edges));
  EXPECT_DOUBLE_EQ(s.average_degree(), 2.0 * s.edges / s.vertices);
  // Cardinality chain: m=0 -> |V|, m=1 -> avg degree, m>=2 shrinks by p2.
  EXPECT_DOUBLE_EQ(s.expected_cardinality(0), s.vertices);
  EXPECT_DOUBLE_EQ(s.expected_cardinality(1), s.average_degree());
  EXPECT_GT(s.expected_cardinality(2), s.expected_cardinality(3));
}

TEST(FilterProbabilities, PaperExampleHalvesFirstLoop) {
  // Figure 5(b): restriction id(A) > id(B) checked in the second loop
  // filters n!/2 of the relative orders; the paper states f = 1/2.
  const Pattern house = patterns::house();
  const Schedule sched({0, 1, 2, 3, 4});  // A,B,C,D,E
  const RestrictionSet rs{{0, 1}};        // id(A) > id(B), checked at depth 1
  const auto f = filter_probabilities(house, sched, rs);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_DOUBLE_EQ(f[1], 0.5);
  EXPECT_DOUBLE_EQ(f[2], 0.0);
}

TEST(FilterProbabilities, SequentialFiltering) {
  // Chain id(0)>id(1), id(1)>id(2) on a triangle with schedule 0,1,2:
  // depth 1 filters 1/2; of the survivors, ranks with 1>2 ... among orders
  // with r0>r1, exactly 1/3 also have r1>r2 (the single total order), so
  // depth 2 filters 2/3.
  const Pattern tri = patterns::clique(3);
  const Schedule sched({0, 1, 2});
  const RestrictionSet rs{{0, 1}, {1, 2}};
  const auto f = filter_probabilities(tri, sched, rs);
  EXPECT_DOUBLE_EQ(f[1], 0.5);
  EXPECT_NEAR(f[2], 2.0 / 3.0, 1e-12);
}

TEST(FilterProbabilities, NoRestrictionsMeansNoFiltering) {
  const Pattern p = patterns::rectangle();
  const auto f = filter_probabilities(p, Schedule({0, 1, 2, 3}), {});
  for (double v : f) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(PerfModel, CostIsPositiveAndFiniteAcrossConfigs) {
  const Graph g = clustered_power_law(300, 1500, 2.3, 0.4, 31);
  const GraphStats stats = GraphStats::of(g);
  const Pattern p = patterns::house();
  const auto schedules = generate_schedules(p);
  const auto sets = generate_restriction_sets(p);
  for (const auto& sched : schedules.efficient)
    for (const auto& rs : sets) {
      const double c = predict_total_cost(p, sched, rs, stats);
      EXPECT_GT(c, 0.0);
      EXPECT_TRUE(std::isfinite(c));
    }
}

TEST(PerfModel, RestrictionsReducePredictedCost) {
  // Adding a restriction can only prune the search, and the model must
  // reflect that.
  const Graph g = erdos_renyi(400, 2400, 41);
  const GraphStats stats = GraphStats::of(g);
  const Pattern p = patterns::rectangle();
  const Schedule sched = generate_schedules(p).efficient.front();
  const auto rs = generate_restriction_sets(p).front();
  EXPECT_LT(predict_total_cost(p, sched, rs, stats),
            predict_total_cost(p, sched, {}, stats));
}

TEST(PerfModel, RankingCorrelatesWithRealRuntime) {
  // The model is a *relative* predictor (Section IV-C). Check that on a
  // real workload the model-selected schedule is within a small factor of
  // the oracle (Figure 11's claim: 32% slower on average), using work
  // counts via actual timing on a modest graph.
  const Graph g = clustered_power_law(800, 6000, 2.25, 0.5, 51);
  const GraphStats stats = GraphStats::of(g);
  const Pattern p = patterns::house();
  const auto schedules = generate_schedules(p);
  const auto sets = generate_restriction_sets(p);

  double best_time = 1e100, selected_time = 0.0, worst_time = 0.0;
  double best_cost = 1e100;
  for (const auto& sched : schedules.efficient) {
    // Model-best restriction set for this schedule.
    const Configuration config =
        best_configuration_for_schedule(p, sched, sets, stats);
    support::Timer t;
    (void)Matcher(g, config).count();
    const double secs = t.elapsed_seconds();
    best_time = std::min(best_time, secs);
    worst_time = std::max(worst_time, secs);
    if (config.predicted_cost < best_cost) {
      best_cost = config.predicted_cost;
      selected_time = secs;
    }
  }
  // The selected schedule must be much closer to the oracle than to the
  // worst case; allow generous slack for timing noise on a busy machine.
  EXPECT_LT(selected_time, best_time * 8 + 1e-3)
      << "best " << best_time << " selected " << selected_time << " worst "
      << worst_time;
}

TEST(PerfModel, LoopOverheadOptionChangesAbsoluteNotSign) {
  const Graph g = erdos_renyi(200, 900, 61);
  const GraphStats stats = GraphStats::of(g);
  const Pattern p = patterns::rectangle();
  const Schedule sched = generate_schedules(p).efficient.front();
  const auto rs = generate_restriction_sets(p).front();
  PerfModelOptions heavy;
  heavy.loop_overhead = 10.0;
  EXPECT_GT(predict_total_cost(p, sched, rs, stats, heavy),
            predict_total_cost(p, sched, rs, stats, PerfModelOptions{}));
}

}  // namespace
}  // namespace graphpi
