// Linear-extension counting: the O(2^n n) bitmask DP (restriction.cpp)
// cross-checked against a brute-force permutation filter, plus known
// closed forms. The DP underpins Algorithm 1's validation, the model's
// filter probabilities and the IEP overcount factor, so it gets its own
// suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/restriction.h"
#include "support/rng.h"

namespace graphpi {
namespace {

/// Reference implementation: filter all n! rank assignments.
std::uint64_t brute_force_le(int n, const RestrictionSet& rs) {
  std::vector<int> ranks(static_cast<std::size_t>(n));
  std::iota(ranks.begin(), ranks.end(), 0);
  std::uint64_t count = 0;
  do {
    bool ok = true;
    for (const auto& r : rs)
      if (ranks[r.greater] <= ranks[r.smaller]) {
        ok = false;
        break;
      }
    if (ok) ++count;
  } while (std::next_permutation(ranks.begin(), ranks.end()));
  return count;
}

TEST(LinearExtensions, ClosedForms) {
  // Empty poset: n!.
  EXPECT_EQ(linear_extension_count(4, {}), 24u);
  EXPECT_EQ(linear_extension_count(8, {}), 40320u);
  // Total chain: 1.
  EXPECT_EQ(linear_extension_count(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}}),
            1u);
  // One relation halves.
  EXPECT_EQ(linear_extension_count(6, {{2, 5}}), 360u);
  // Two independent relations quarter.
  EXPECT_EQ(linear_extension_count(6, {{0, 1}, {2, 3}}), 180u);
  // A "V" (0>1, 0>2): orders where 0 is above both = n!/3 for n=3.
  EXPECT_EQ(linear_extension_count(3, {{0, 1}, {0, 2}}), 2u);
  // Contradiction: zero.
  EXPECT_EQ(linear_extension_count(3, {{0, 1}, {1, 0}}), 0u);
  EXPECT_EQ(linear_extension_count(4, {{0, 1}, {1, 2}, {2, 0}}), 0u);
}

class LeRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(LeRandomTest, DpMatchesBruteForceOnRandomPosets) {
  const int n = GetParam();
  support::Xoshiro256StarStar rng(static_cast<std::uint64_t>(n) * 7919);
  for (int round = 0; round < 30; ++round) {
    RestrictionSet rs;
    const int relations = static_cast<int>(rng.bounded(6));
    for (int r = 0; r < relations; ++r) {
      const auto a = static_cast<PatternVertex>(rng.bounded(n));
      auto b = static_cast<PatternVertex>(rng.bounded(n));
      if (a == b) b = static_cast<PatternVertex>((b + 1) % n);
      rs.push_back({a, b});
    }
    EXPECT_EQ(linear_extension_count(n, rs), brute_force_le(n, rs))
        << "n=" << n << " " << to_string(rs);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LeRandomTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7));

TEST(LinearExtensions, DuplicateRelationsAreIdempotent) {
  const RestrictionSet once{{0, 1}};
  const RestrictionSet twice{{0, 1}, {0, 1}};
  EXPECT_EQ(linear_extension_count(4, once),
            linear_extension_count(4, twice));
}

TEST(LinearExtensions, TransitivityIsImplicit) {
  // {0>1, 1>2} already implies 0>2; adding it must not change the count.
  const RestrictionSet implicit_rs{{0, 1}, {1, 2}};
  const RestrictionSet explicit_rs{{0, 1}, {1, 2}, {0, 2}};
  EXPECT_EQ(linear_extension_count(5, implicit_rs),
            linear_extension_count(5, explicit_rs));
}

}  // namespace
}  // namespace graphpi
