// Plan IR compilation: the flat steps must mirror exactly what the
// configuration's schedule, pattern and restrictions imply.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/configuration.h"
#include "core/pattern_library.h"
#include "core/plan.h"
#include "graph/generators.h"
#include "test_util.h"

namespace graphpi {
namespace {

GraphStats test_stats() { return GraphStats::of(erdos_renyi(60, 240, 1)); }

TEST(Plan, StepsMirrorScheduleAndPattern) {
  for (const Pattern& p : testing::assorted_patterns()) {
    for (bool use_iep : {false, true}) {
      PlannerOptions opt;
      opt.use_iep = use_iep;
      const Configuration config = plan_configuration(p, test_stats(), opt);
      const Plan plan = compile_plan(config);

      ASSERT_EQ(plan.size(), p.size()) << p.to_string();
      EXPECT_EQ(plan.pattern, config.pattern);
      EXPECT_EQ(plan.iep.k, config.iep.k);
      const int expected_outer =
          config.iep.k > 0 ? p.size() - config.iep.k : p.size();
      EXPECT_EQ(plan.outer_depth, expected_outer);

      bool any_multi_pred = false;
      for (int d = 0; d < plan.size(); ++d) {
        const PlanStep& step = plan.steps[static_cast<std::size_t>(d)];
        EXPECT_EQ(step.pattern_vertex, config.schedule.vertex_at(d));
        // Predecessors: exactly the earlier-scheduled pattern neighbors.
        std::vector<int> expected_preds;
        for (int e = 0; e < d; ++e)
          if (p.has_edge(config.schedule.vertex_at(e),
                         config.schedule.vertex_at(d)))
            expected_preds.push_back(e);
        EXPECT_EQ(step.predecessor_depths, expected_preds)
            << p.to_string() << " depth " << d;
        any_multi_pred |= expected_preds.size() >= 2;
        // Kind: IEP suffix past outer_depth, counting leaf only at the
        // last step of a plain plan.
        if (d >= plan.outer_depth) {
          EXPECT_EQ(step.kind, PlanStep::Kind::kIepSuffix);
        } else if (config.iep.k == 0 && d == plan.size() - 1) {
          EXPECT_EQ(step.kind, PlanStep::Kind::kCountLeaf);
        } else {
          EXPECT_EQ(step.kind, PlanStep::Kind::kExtend);
        }
      }
      EXPECT_EQ(plan.wants_hub_index, any_multi_pred);
      EXPECT_EQ(plan.leaf_depth(),
                plan.iep_active() ? plan.outer_depth : plan.size() - 1);
    }
  }
}

TEST(Plan, RestrictionsBecomeBoundsAtTheLaterDepth) {
  for (const Pattern& p :
       {patterns::rectangle(), patterns::house(), patterns::clique(4)}) {
    const Configuration config =
        plan_configuration(p, test_stats(), PlannerOptions{});
    const Plan plan = compile_plan(config);

    std::size_t bounds_seen = 0;
    for (int d = 0; d < plan.size(); ++d) {
      const PlanStep& step = plan.steps[static_cast<std::size_t>(d)];
      for (int b : step.upper_bound_depths) {
        // id(vertex at b) > id(vertex at d) with b scheduled earlier.
        EXPECT_LT(b, d);
        EXPECT_TRUE(std::any_of(
            config.restrictions.begin(), config.restrictions.end(),
            [&](const Restriction& r) {
              return config.schedule.depth_of(r.greater) == b &&
                     config.schedule.depth_of(r.smaller) == d;
            }));
        ++bounds_seen;
      }
      for (int b : step.lower_bound_depths) {
        EXPECT_LT(b, d);
        EXPECT_TRUE(std::any_of(
            config.restrictions.begin(), config.restrictions.end(),
            [&](const Restriction& r) {
              return config.schedule.depth_of(r.greater) == d &&
                     config.schedule.depth_of(r.smaller) == b;
            }));
        ++bounds_seen;
      }
    }
    EXPECT_EQ(bounds_seen, config.restrictions.size()) << p.to_string();
  }
}

TEST(Plan, ToStringNamesEveryDepth) {
  const Configuration config =
      plan_configuration(patterns::house(), test_stats(), PlannerOptions{});
  const std::string s = compile_plan(config).to_string();
  EXPECT_NE(s.find("plan n=5"), std::string::npos);
  for (int d = 0; d < 5; ++d)
    EXPECT_NE(s.find("d" + std::to_string(d)), std::string::npos);
}

}  // namespace
}  // namespace graphpi
