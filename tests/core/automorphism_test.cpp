// Automorphism group enumeration: known group orders and group axioms.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/automorphism.h"
#include "core/pattern_library.h"

namespace graphpi {
namespace {

using patterns::clique;
using patterns::cycle;
using patterns::path;
using patterns::star;

TEST(Automorphism, KnownGroupOrders) {
  EXPECT_EQ(automorphism_count(clique(3)), 6u);
  EXPECT_EQ(automorphism_count(clique(4)), 24u);
  EXPECT_EQ(automorphism_count(clique(5)), 120u);
  EXPECT_EQ(automorphism_count(clique(6)), 720u);
  // Section II-B: "For a 7-clique pattern, each embedding has 5,040
  // automorphisms."
  EXPECT_EQ(automorphism_count(clique(7)), 5040u);
}

TEST(Automorphism, DihedralGroupsOfCycles) {
  // Aut(C_n) is the dihedral group of order 2n.
  for (int n = 3; n <= 8; ++n)
    EXPECT_EQ(automorphism_count(cycle(n)), static_cast<std::size_t>(2 * n))
        << "cycle " << n;
}

TEST(Automorphism, StarFixesCenter) {
  // Aut(S_n) permutes the n-1 leaves freely: (n-1)!.
  EXPECT_EQ(automorphism_count(star(4)), 6u);    // 3!
  EXPECT_EQ(automorphism_count(star(5)), 24u);   // 4!
  EXPECT_EQ(automorphism_count(star(6)), 120u);  // 5!
}

TEST(Automorphism, PathHasMirrorOnly) {
  for (int n = 2; n <= 8; ++n)
    EXPECT_EQ(automorphism_count(path(n)), 2u) << "path " << n;
}

TEST(Automorphism, RectangleHasOrderEight) {
  // Figure 4(c) lists exactly 8 permutations for the rectangle.
  EXPECT_EQ(automorphism_count(patterns::rectangle()), 8u);
}

TEST(Automorphism, HouseHasMirrorOnly) {
  EXPECT_EQ(automorphism_count(patterns::house()), 2u);
}

TEST(Automorphism, EveryAutomorphismPreservesEdges) {
  for (int idx = 1; idx <= 6; ++idx) {
    const Pattern p = patterns::evaluation_pattern(idx);
    for (const auto& a : automorphisms(p)) {
      for (auto [u, v] : p.edges())
        EXPECT_TRUE(p.has_edge(a(u), a(v)))
            << "P" << idx << " " << a.to_string();
    }
  }
}

TEST(Automorphism, FormsAGroup) {
  const Pattern p = patterns::cycle_6_tri();
  const auto auts = automorphisms(p);
  // Closure under composition and inverse; contains identity.
  EXPECT_TRUE(std::any_of(auts.begin(), auts.end(),
                          [](const Permutation& a) { return a.is_identity(); }));
  for (const auto& a : auts) {
    EXPECT_TRUE(std::find(auts.begin(), auts.end(), a.inverse()) != auts.end());
    for (const auto& b : auts) {
      EXPECT_TRUE(std::find(auts.begin(), auts.end(), a.compose(b)) !=
                  auts.end());
    }
  }
}

TEST(Automorphism, SortedAndDeduplicated) {
  const auto auts = automorphisms(patterns::rectangle());
  EXPECT_TRUE(std::is_sorted(auts.begin(), auts.end()));
  EXPECT_TRUE(std::adjacent_find(auts.begin(), auts.end()) == auts.end());
}

}  // namespace
}  // namespace graphpi
