// The 2-phase computation-avoid schedule generator (Section IV-B).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/pattern_library.h"
#include "core/schedule.h"

namespace graphpi {
namespace {

TEST(Schedule, PositionsInvertOrder) {
  const Schedule s({2, 0, 3, 1});
  EXPECT_EQ(s.vertex_at(0), 2);
  EXPECT_EQ(s.depth_of(2), 0);
  EXPECT_EQ(s.depth_of(1), 3);
  EXPECT_EQ(s.to_string(), "2->0->3->1");
}

TEST(Schedule, RejectsNonPermutations) {
  EXPECT_THROW(Schedule({0, 0, 1}), std::logic_error);
  EXPECT_THROW(Schedule({0, 1, 5}), std::logic_error);
}

TEST(Schedule, PrefixConnectivityPaperExample) {
  // Section IV-B phase 1: for the House (Figure 5(a), our vertices
  // 0=A,1=B,2=C,3=D,4=E with rectangle 0-2-4-1 and roof 3): searching
  // C(2), D(3) first then E(4) is inefficient because E is adjacent to
  // neither C nor D.
  const Pattern house = patterns::house();
  EXPECT_FALSE(Schedule({2, 3, 4, 0, 1}).prefix_connected(house));
  EXPECT_TRUE(Schedule({0, 1, 2, 3, 4}).prefix_connected(house));
}

TEST(Schedule, IndependentSuffixLength) {
  const Pattern house = patterns::house();
  // 3 (roof D) and 4 (E) are non-adjacent; 2 (C) is adjacent to 4.
  EXPECT_EQ(Schedule({0, 1, 2, 3, 4}).independent_suffix_length(house), 2);
  EXPECT_EQ(Schedule({0, 1, 3, 2, 4}).independent_suffix_length(house), 1);
}

TEST(ScheduleGen, AllPhase1SchedulesAreConnected) {
  for (int i = 1; i <= 6; ++i) {
    const Pattern p = patterns::evaluation_pattern(i);
    const auto result = generate_schedules(p);
    EXPECT_FALSE(result.efficient.empty()) << "P" << i;
    for (const auto& s : result.phase1)
      EXPECT_TRUE(s.prefix_connected(p)) << "P" << i << " " << s.to_string();
    for (const auto& s : result.efficient)
      EXPECT_EQ(s.independent_suffix_length(p), result.k)
          << "P" << i << " " << s.to_string();
  }
}

TEST(ScheduleGen, EliminatesStrictly) {
  // Phase filtering must reduce the n! space for symmetric patterns.
  const Pattern p = patterns::house();
  const auto result = generate_schedules(p);
  EXPECT_LT(result.phase1.size(), 120u);     // some fail phase 1
  EXPECT_LT(result.efficient.size(), result.phase1.size());  // and phase 2
}

TEST(ScheduleGen, HousePhase2UsesK2) {
  // Section IV-B phase 2: "the vertex D is not connected to E ... and
  // therefore k = 2 for this pattern".
  EXPECT_EQ(generate_schedules(patterns::house()).k, 2);
}

TEST(ScheduleGen, RectangleFallsBackToK1) {
  // The rectangle's max independent set is 2 ({A,C} or {B,D}), but any
  // schedule ending in such a pair starts with the other pair, which is
  // unconnected and fails phase 1. The generator must degrade to k = 1
  // rather than produce an empty set.
  const Pattern rect = patterns::rectangle();
  EXPECT_EQ(rect.max_independent_set_size(), 2);
  const auto result = generate_schedules(rect);
  EXPECT_EQ(result.k, 1);
  EXPECT_FALSE(result.efficient.empty());
}

TEST(ScheduleGen, CliqueKeepsAllConnectedSchedules) {
  // Every schedule of a clique is prefix-connected and has suffix k = 1.
  const auto result = generate_schedules(patterns::clique(4));
  EXPECT_EQ(result.phase1.size(), 24u);
  EXPECT_EQ(result.efficient.size(), 24u);
  EXPECT_EQ(result.k, 1);
}

TEST(ScheduleGen, Cycle6TriKeepsIndependentTripleLast) {
  // Figure 6: D, E, F (our 3, 4, 5) are pairwise non-adjacent; efficient
  // schedules end with a permutation of them.
  const auto result = generate_schedules(patterns::cycle_6_tri());
  EXPECT_EQ(result.k, 3);
  for (const auto& s : result.efficient) {
    std::vector<int> suffix{s.vertex_at(3), s.vertex_at(4), s.vertex_at(5)};
    std::sort(suffix.begin(), suffix.end());
    EXPECT_EQ(suffix, (std::vector<int>{3, 4, 5})) << s.to_string();
  }
}

TEST(ScheduleGen, AllSchedulesCountsFactorial) {
  EXPECT_EQ(all_schedules(patterns::rectangle()).size(), 24u);
  EXPECT_EQ(all_schedules(patterns::house()).size(), 120u);
}

}  // namespace
}  // namespace graphpi
