// Configuration planning pipeline: IEP admissibility, selection
// consistency, diagnostics.
#include <gtest/gtest.h>

#include "core/configuration.h"
#include "core/pattern_library.h"
#include "graph/generators.h"

namespace graphpi {
namespace {

GraphStats test_stats() {
  return GraphStats::of(clustered_power_law(300, 1500, 2.3, 0.4, 3));
}

TEST(Planner, SelectsValidatedConfiguration) {
  const GraphStats stats = test_stats();
  for (int i = 1; i <= 6; ++i) {
    const Pattern p = patterns::evaluation_pattern(i);
    const Configuration config =
        plan_configuration(p, stats, PlannerOptions{});
    EXPECT_EQ(config.schedule.size(), p.size());
    EXPECT_TRUE(config.schedule.prefix_connected(p));
    EXPECT_TRUE(validate_restriction_set(p, config.restrictions));
    EXPECT_EQ(config.iep.k, 0) << "IEP off by default";
  }
}

TEST(Planner, IepRequestAttachesValidPlan) {
  const GraphStats stats = test_stats();
  PlannerOptions planner;
  planner.use_iep = true;
  for (int i = 1; i <= 6; ++i) {
    const Pattern p = patterns::evaluation_pattern(i);
    const Configuration config = plan_configuration(p, stats, planner);
    ASSERT_GT(config.iep.k, 0) << "P" << i;
    EXPECT_TRUE(validate_iep_plan(p, config.schedule, config.iep));
    EXPECT_GE(config.iep.divisor, 1u);
    // The IEP suffix must be independent in the pattern.
    EXPECT_LE(config.iep.k,
              config.schedule.independent_suffix_length(p));
  }
}

TEST(Planner, IepSelectionPrefersAdmissibleCombos) {
  // Patterns where not every restriction set admits IEP (rectangle,
  // pentagon) must still end up with a valid plan.
  const GraphStats stats = test_stats();
  PlannerOptions planner;
  planner.use_iep = true;
  for (const auto& p : {patterns::rectangle(), patterns::pentagon(),
                        patterns::hourglass(), patterns::clique(4)}) {
    const Configuration config = plan_configuration(p, stats, planner);
    EXPECT_GT(config.iep.k, 0) << p.to_string();
    EXPECT_TRUE(validate_iep_plan(p, config.schedule, config.iep))
        << p.to_string();
  }
}

TEST(Planner, SelectedCostIsMinimumOverCombos) {
  const GraphStats stats = test_stats();
  const Pattern p = patterns::house();
  const Configuration best = plan_configuration(p, stats, PlannerOptions{});
  const auto schedules = generate_schedules(p);
  const auto sets = generate_restriction_sets(p);
  for (const auto& sched : schedules.efficient)
    for (const auto& rs : sets)
      EXPECT_GE(predict_total_cost(p, sched, rs, stats) * (1 + 1e-12),
                best.predicted_cost);
}

TEST(Planner, BestForScheduleRespectsTheSchedule) {
  const GraphStats stats = test_stats();
  const Pattern p = patterns::rectangle();
  const auto sets = generate_restriction_sets(p);
  for (const auto& sched : generate_schedules(p).efficient) {
    const Configuration config =
        best_configuration_for_schedule(p, sched, sets, stats);
    EXPECT_EQ(config.schedule, sched);
    // The returned set must be one of the candidates.
    EXPECT_NE(std::find(sets.begin(), sets.end(), config.restrictions),
              sets.end());
  }
}

TEST(Planner, DiagnosticsAreConsistent) {
  const GraphStats stats = test_stats();
  PlanningStats diag;
  (void)plan_configuration(patterns::cycle_6_tri(), stats, PlannerOptions{},
                           &diag);
  EXPECT_EQ(diag.schedules_total, 720u);
  EXPECT_LE(diag.schedules_efficient, diag.schedules_phase1);
  EXPECT_LE(diag.schedules_phase1, diag.schedules_total);
  EXPECT_EQ(diag.configurations_evaluated,
            diag.schedules_efficient * diag.restriction_sets);
}

TEST(Planner, DeterministicAcrossRuns) {
  const GraphStats stats = test_stats();
  const Configuration a =
      plan_configuration(patterns::evaluation_pattern(2), stats);
  const Configuration b =
      plan_configuration(patterns::evaluation_pattern(2), stats);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.restrictions, b.restrictions);
  EXPECT_DOUBLE_EQ(a.predicted_cost, b.predicted_cost);
}

TEST(Planner, StatsShiftCanChangeSelection) {
  // The whole point of data-aware planning: different graph statistics
  // may select different configurations. Verify the machinery responds
  // to statistics at all (cost values must differ).
  const Pattern p = patterns::house();
  GraphStats sparse{10000, 20000, 500};     // low clustering
  GraphStats dense{10000, 200000, 5000000};  // heavy clustering
  const Configuration a = plan_configuration(p, sparse);
  const Configuration b = plan_configuration(p, dense);
  EXPECT_NE(a.predicted_cost, b.predicted_cost);
}

}  // namespace
}  // namespace graphpi
