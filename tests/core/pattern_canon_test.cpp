// Canonical forms and isomorphism.
#include <gtest/gtest.h>

#include "core/pattern_canon.h"
#include "core/pattern_library.h"

namespace graphpi {
namespace {

TEST(Canon, RelabelInvariance) {
  const Pattern p = patterns::house();
  const std::vector<std::vector<int>> relabelings = {
      {4, 3, 2, 1, 0}, {1, 0, 3, 2, 4}, {2, 4, 0, 1, 3}};
  const std::string canon = canonical_string(p);
  for (const auto& m : relabelings) {
    EXPECT_EQ(canonical_string(p.relabeled(m)), canon);
  }
  // Canonical form reconstructs an isomorphic pattern.
  EXPECT_TRUE(isomorphic(canonical_form(p), p));
}

TEST(Canon, DistinguishesNonIsomorphic) {
  EXPECT_NE(canonical_string(patterns::rectangle()),
            canonical_string(patterns::path(4)));
  EXPECT_NE(canonical_string(patterns::house()),
            canonical_string(patterns::hourglass()));
  EXPECT_FALSE(isomorphic(patterns::rectangle(), patterns::path(4)));
  EXPECT_FALSE(isomorphic(patterns::clique(4), patterns::cycle(4)));
}

TEST(Canon, IsomorphicPairs) {
  // The same structure written with different labelings.
  const Pattern a(4, std::vector<std::pair<int, int>>{
                         {0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const Pattern b(4, std::vector<std::pair<int, int>>{
                         {0, 2}, {2, 1}, {1, 3}, {3, 0}});
  EXPECT_TRUE(isomorphic(a, b));
  const auto mapping = find_isomorphism(a, b);
  ASSERT_EQ(mapping.size(), 4u);
  // The mapping must carry edges of b onto edges of a.
  for (auto [u, v] : b.edges())
    EXPECT_TRUE(a.has_edge(mapping[static_cast<std::size_t>(u)],
                           mapping[static_cast<std::size_t>(v)]));
}

TEST(Canon, FindIsomorphismFailsCleanly) {
  EXPECT_TRUE(find_isomorphism(patterns::clique(4), patterns::cycle(4))
                  .empty());
  EXPECT_TRUE(
      find_isomorphism(patterns::clique(3), patterns::clique(4)).empty());
}

TEST(Canon, MotifCensusAgreesWithCanonDedup) {
  // connected_motifs deduplicates with its own brute-force check; the
  // canonical strings of its output must be pairwise distinct.
  for (int k : {3, 4}) {
    const auto motifs = patterns::connected_motifs(k);
    std::set<std::string> canon;
    for (const auto& m : motifs)
      EXPECT_TRUE(canon.insert(canonical_string(m)).second);
  }
}

}  // namespace
}  // namespace graphpi
