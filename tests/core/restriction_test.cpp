// Algorithm 1 (2-cycle based automorphism elimination): correctness of
// no_conflict, multiplicity of generated sets, and the K_n validation
// property for every set of every pattern.
#include <gtest/gtest.h>

#include <set>

#include "core/automorphism.h"
#include "core/pattern_library.h"
#include "core/restriction.h"
#include "test_util.h"

namespace graphpi {
namespace {

TEST(NoConflict, IdentityAlwaysSurvivesConsistentSets) {
  const Permutation id(4);
  EXPECT_TRUE(no_conflict(id, {}));
  EXPECT_TRUE(no_conflict(id, {{0, 1}}));
  EXPECT_TRUE(no_conflict(id, {{0, 1}, {1, 2}, {2, 3}}));
}

TEST(NoConflict, ContradictorySetEliminatesIdentity) {
  const Permutation id(3);
  EXPECT_FALSE(no_conflict(id, {{0, 1}, {1, 0}}));
}

TEST(NoConflict, TwoCycleEliminatedByItsRestriction) {
  // Permutation (0 1): restriction id(0) > id(1) forces a contradiction
  // between the embedding and its automorphic copy.
  const Permutation swap01(std::vector<int>{1, 0, 2, 3});
  EXPECT_FALSE(no_conflict(swap01, {{0, 1}}));
}

TEST(NoConflict, PaperRoundOneExample) {
  // Figure 4(d): after {id(B)>id(D), id(A)>id(C)} (B=1, D=3, A=0, C=2),
  // the 4-rotation (A,D,C,B) — permutation 2 — is eliminated.
  // (A,D,C,B) maps A->D, D->C, C->B, B->A, i.e. images [3, 0, 1, 2].
  const Permutation rotation(std::vector<int>{3, 0, 1, 2});
  const RestrictionSet rs{{1, 3}, {0, 2}};
  EXPECT_FALSE(no_conflict(rotation, rs));
}

TEST(LinearExtensions, ChainAndEmpty) {
  EXPECT_EQ(linear_extension_count(3, {}), 6u);
  // Total order 0>1>2: exactly one compatible ranking.
  EXPECT_EQ(linear_extension_count(3, {{0, 1}, {1, 2}}), 1u);
  // Single restriction halves the orderings.
  EXPECT_EQ(linear_extension_count(4, {{2, 3}}), 12u);
}

class RestrictionGenTest
    : public ::testing::TestWithParam<std::tuple<const char*, Pattern>> {};

TEST_P(RestrictionGenTest, AllGeneratedSetsEliminateAllAutomorphisms) {
  const Pattern& p = std::get<1>(GetParam());
  const auto sets = generate_restriction_sets(p);
  ASSERT_FALSE(sets.empty());
  const auto group = automorphisms(p);
  for (const auto& rs : sets) {
    // Exactly the identity survives.
    EXPECT_EQ(surviving_permutations(group, rs), 1u) << to_string(rs);
    // And the K_n validation (Algorithm 1's `validate`) passes.
    EXPECT_TRUE(validate_restriction_set(p, rs)) << to_string(rs);
  }
}

TEST_P(RestrictionGenTest, GeneratedSetsAreDistinct) {
  const auto sets = generate_restriction_sets(std::get<1>(GetParam()));
  std::set<RestrictionSet> canon;
  for (auto rs : sets) {
    std::sort(rs.begin(), rs.end());
    EXPECT_TRUE(canon.insert(rs).second) << "duplicate set " << to_string(rs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, RestrictionGenTest,
    ::testing::Values(
        std::make_tuple("triangle", patterns::clique(3)),
        std::make_tuple("rectangle", patterns::rectangle()),
        std::make_tuple("house", patterns::house()),
        std::make_tuple("pentagon", patterns::pentagon()),
        std::make_tuple("hourglass", patterns::hourglass()),
        std::make_tuple("cycle6tri", patterns::cycle_6_tri()),
        std::make_tuple("clique4", patterns::clique(4)),
        std::make_tuple("clique5", patterns::clique(5)),
        std::make_tuple("clique6", patterns::clique(6)),
        std::make_tuple("star5", patterns::star(5)),
        std::make_tuple("path5", patterns::path(5)),
        std::make_tuple("cycle6", patterns::cycle(6)),
        std::make_tuple("P2", patterns::evaluation_pattern(2)),
        std::make_tuple("P3", patterns::evaluation_pattern(3)),
        std::make_tuple("P4", patterns::evaluation_pattern(4))),
    [](const auto& info) { return std::get<0>(info.param); });

TEST(RestrictionGen, SymmetricPatternsYieldMultipleSets) {
  // The paper's key claim: unlike GraphZero, multiple different sets are
  // generated, giving the model choices.
  EXPECT_GT(generate_restriction_sets(patterns::rectangle()).size(), 1u);
  EXPECT_GT(generate_restriction_sets(patterns::house()).size(), 1u);
  EXPECT_GT(generate_restriction_sets(patterns::clique(4)).size(), 1u);
}

TEST(RestrictionGen, AsymmetricPatternNeedsNoRestrictions) {
  // A pattern with trivial automorphism group: empty set suffices.
  // 6-vertex asymmetric tree: path 0-1-2-3 with extra leaves 4 on 1, 5 on
  // 2 plus edge making it asymmetric.
  const Pattern p(6, {{0, 1}, {1, 2}, {2, 3}, {1, 4}, {2, 5}, {4, 5}, {3, 5}});
  if (automorphism_count(p) == 1) {
    const auto sets = generate_restriction_sets(p);
    ASSERT_EQ(sets.size(), 1u);
    EXPECT_TRUE(sets.front().empty());
  }
}

TEST(RestrictionGen, GroupsWithoutTwoCyclesUseOrbitMaxFallback) {
  // Beyond-paper extension: the Z3 rotation group (automorphisms of a
  // directed triangle) has no 2-cycles at all, so Algorithm 1's branching
  // dead-ends; the orbit-max fallback must still produce valid sets.
  const std::vector<Permutation> z3 = {
      Permutation(3),                          // identity
      Permutation(std::vector<int>{1, 2, 0}),  // (0 1 2)
      Permutation(std::vector<int>{2, 0, 1}),  // (0 2 1)
  };
  const auto sets = generate_restriction_sets_for_group(3, z3);
  ASSERT_FALSE(sets.empty());
  for (const auto& rs : sets) {
    EXPECT_EQ(surviving_permutations(z3, rs), 1u) << to_string(rs);
    // K_3 validation for this group: LE * |group| == 3!.
    EXPECT_EQ(linear_extension_count(3, rs) * 3, 6u) << to_string(rs);
  }
}

TEST(RestrictionGen, Z5RotationGroup) {
  // Same fallback exercised on a 5-cycle rotation group (order 5).
  std::vector<Permutation> z5;
  std::vector<int> images(5);
  for (int shift = 0; shift < 5; ++shift) {
    for (int i = 0; i < 5; ++i) images[i] = (i + shift) % 5;
    z5.emplace_back(images);
  }
  const auto sets = generate_restriction_sets_for_group(5, z5);
  ASSERT_FALSE(sets.empty());
  for (const auto& rs : sets) {
    EXPECT_EQ(surviving_permutations(z5, rs), 1u);
    EXPECT_EQ(linear_extension_count(5, rs) * 5, 120u);
  }
}

TEST(RestrictionGen, SevenCliqueTerminates) {
  // |Aut| = 5040; generation must stay fast (Table III's worst pattern
  // costs 2.53 s including everything else).
  RestrictionGenOptions options;
  options.max_sets = 8;
  const auto sets = generate_restriction_sets(patterns::clique(7), options);
  EXPECT_EQ(sets.size(), 8u);
  for (const auto& rs : sets)
    EXPECT_TRUE(validate_restriction_set(patterns::clique(7), rs));
}

}  // namespace
}  // namespace graphpi
