// Pattern representation and the named pattern library.
#include <gtest/gtest.h>

#include "core/pattern.h"
#include "core/pattern_library.h"

namespace graphpi {
namespace {

TEST(Pattern, EdgeListConstruction) {
  const Pattern p(4, std::vector<std::pair<int, int>>{{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(p.size(), 4);
  EXPECT_EQ(p.edge_count(), 3);
  EXPECT_TRUE(p.has_edge(0, 1));
  EXPECT_TRUE(p.has_edge(1, 0));
  EXPECT_FALSE(p.has_edge(0, 2));
  EXPECT_EQ(p.degree(1), 2);
  EXPECT_TRUE(p.connected());
}

TEST(Pattern, AdjacencyStringRoundTrip) {
  const Pattern house = patterns::house();
  const Pattern rebuilt(house.size(), house.adjacency_string());
  EXPECT_EQ(rebuilt, house);
}

TEST(Pattern, RejectsMalformedInput) {
  using E = std::vector<std::pair<int, int>>;
  EXPECT_THROW(Pattern(3, E{{0, 0}}), std::logic_error);        // loop
  EXPECT_THROW(Pattern(3, E{{0, 1}, {1, 0}}), std::logic_error);  // dup
  EXPECT_THROW(Pattern(3, E{{0, 5}}), std::logic_error);        // range
  EXPECT_THROW(Pattern(9, E{}), std::logic_error);              // too big
  EXPECT_THROW(Pattern(3, std::string("010")), std::logic_error);  // n*n
  EXPECT_THROW(Pattern(2, std::string("1001")), std::logic_error)
      << "diagonal must be zero";
  EXPECT_THROW(Pattern(2, std::string("0100")), std::logic_error)
      << "asymmetric matrix";
  EXPECT_NO_THROW(Pattern(2, std::string("0110")));  // the single edge
}

TEST(Pattern, ConnectivityDetection) {
  using E = std::vector<std::pair<int, int>>;
  EXPECT_FALSE(Pattern(4, E{{0, 1}, {2, 3}}).connected());
  EXPECT_TRUE(Pattern(4, E{{0, 1}, {1, 2}, {2, 3}}).connected());
  EXPECT_FALSE(Pattern(3, E{{0, 1}}).connected());  // isolated vertex
}

TEST(Pattern, MaxIndependentSet) {
  EXPECT_EQ(patterns::clique(5).max_independent_set_size(), 1);
  EXPECT_EQ(patterns::rectangle().max_independent_set_size(), 2);
  EXPECT_EQ(patterns::house().max_independent_set_size(), 2);
  // Figure 6: Cycle-6-Tri has k = 3.
  EXPECT_EQ(patterns::cycle_6_tri().max_independent_set_size(), 3);
  EXPECT_EQ(patterns::star(6).max_independent_set_size(), 5);
  EXPECT_EQ(patterns::cycle(6).max_independent_set_size(), 3);
}

TEST(Pattern, RelabelPreservesStructure) {
  const Pattern p = patterns::house();
  const std::vector<int> mapping{4, 3, 2, 1, 0};
  const Pattern q = p.relabeled(mapping);
  EXPECT_EQ(q.edge_count(), p.edge_count());
  for (auto [u, v] : p.edges()) {
    // mapping: new index i corresponds to old mapping[i]; so old (u,v)
    // appears as (pos(u), pos(v)) where pos inverts mapping.
    auto pos = [&mapping](int old) {
      for (std::size_t i = 0; i < mapping.size(); ++i)
        if (mapping[i] == old) return static_cast<int>(i);
      return -1;
    };
    EXPECT_TRUE(q.has_edge(pos(u), pos(v)));
  }
}

TEST(PatternLibrary, EvaluationPatternSizes) {
  // Figure 7 patterns: 5, 6, 6, 6, 7, 7 vertices.
  const int expected_sizes[] = {5, 6, 6, 6, 7, 7};
  for (int i = 1; i <= 6; ++i) {
    const Pattern p = patterns::evaluation_pattern(i);
    EXPECT_EQ(p.size(), expected_sizes[i - 1]) << "P" << i;
    EXPECT_TRUE(p.connected()) << "P" << i;
    EXPECT_EQ(patterns::evaluation_pattern_name(i),
              "P" + std::to_string(i));
  }
  EXPECT_THROW(patterns::evaluation_pattern(0), std::logic_error);
  EXPECT_THROW(patterns::evaluation_pattern(7), std::logic_error);
}

TEST(PatternLibrary, P4TopFourContainsRectangle) {
  // Section V-C: "the number of rectangles (i.e., the subpattern formed by
  // the top 4 vertices of P4)". Our P4 must contain an induced 4-cycle.
  const Pattern p4 = patterns::evaluation_pattern(4);
  bool found = false;
  for (int a = 0; a < p4.size() && !found; ++a)
    for (int b = 0; b < p4.size() && !found; ++b)
      for (int c = 0; c < p4.size() && !found; ++c)
        for (int d = 0; d < p4.size() && !found; ++d) {
          if (a == b || a == c || a == d || b == c || b == d || c == d)
            continue;
          found = p4.has_edge(a, b) && p4.has_edge(b, c) &&
                  p4.has_edge(c, d) && p4.has_edge(d, a) &&
                  !p4.has_edge(a, c) && !p4.has_edge(b, d);
        }
  EXPECT_TRUE(found);
}

TEST(PatternLibrary, MotifCensusSizes) {
  // Known counts of connected graphs up to isomorphism.
  EXPECT_EQ(patterns::connected_motifs(3).size(), 2u);
  EXPECT_EQ(patterns::connected_motifs(4).size(), 6u);
  EXPECT_EQ(patterns::connected_motifs(5).size(), 21u);
}

TEST(PatternLibrary, HouseMatchesFigure5) {
  const Pattern h = patterns::house();
  EXPECT_EQ(h.size(), 5);
  EXPECT_EQ(h.edge_count(), 6);
  EXPECT_EQ(h.max_independent_set_size(), 2);
}

}  // namespace
}  // namespace graphpi
