// PlanForest trie construction: prefix sharing, branch grouping, suffix
// set dedup and the invariant-leaf memo analysis.
#include <gtest/gtest.h>

#include "core/configuration.h"
#include "core/pattern_library.h"
#include "core/plan.h"
#include "core/plan_forest.h"
#include "graph/generators.h"

namespace graphpi {
namespace {

GraphStats test_stats() { return GraphStats::of(erdos_renyi(60, 240, 1)); }

Plan plan_of(const Pattern& p, bool use_iep = true) {
  PlannerOptions opt;
  opt.use_iep = use_iep;
  return compile_plan(plan_configuration(p, test_stats(), opt));
}

std::vector<Plan> motif_plans(int k) {
  std::vector<Plan> plans;
  for (const Pattern& p : patterns::connected_motifs(k))
    plans.push_back(plan_of(p));
  return plans;
}

TEST(PlanForest, IdenticalPlansCollapseToOneChain) {
  const Plan plan = plan_of(patterns::house());
  const PlanForest forest({plan, plan});

  // A single chain of leaf_depth edges, both terminals at its end.
  EXPECT_EQ(forest.stats().plans, 2u);
  EXPECT_EQ(forest.stats().nodes,
            static_cast<std::size_t>(plan.leaf_depth()) + 1);
  EXPECT_EQ(forest.stats().extensions,
            static_cast<std::size_t>(plan.leaf_depth()));
  EXPECT_EQ(forest.stats().shared_steps,
            static_cast<std::size_t>(plan.leaf_depth()));
  const auto& nodes = forest.nodes();
  std::size_t terminals = 0;
  for (const auto& node : nodes)
    terminals += node.count_leaves.size() + node.iep_leaves.size();
  EXPECT_EQ(terminals, 2u);
}

TEST(PlanForest, MotifForestSharesTheOuterLoops) {
  const PlanForest forest(motif_plans(4));
  const auto& s = forest.stats();
  EXPECT_EQ(s.plans, 6u);
  // All six depth-0 loops collapse into one root extension, and every
  // depth-1 loop is N(v0): five+ steps saved at minimum.
  ASSERT_EQ(forest.root().extensions.size(), 1u);
  EXPECT_EQ(forest.root().extensions[0].mask, forest.all_plans_mask());
  EXPECT_GE(s.shared_steps, 5u);
  // The 4-motif IEP leaves reuse each other's suffix sets.
  EXPECT_GE(s.shared_suffix_sets, 1u);
}

TEST(PlanForest, BranchMasksPartitionEachExtension) {
  const PlanForest forest(motif_plans(4));
  for (const auto& node : forest.nodes()) {
    for (const auto& ext : node.extensions) {
      ASSERT_FALSE(ext.branches.empty());
      PlanForest::PlanMask joined = 0;
      for (const auto& branch : ext.branches) {
        // Branches are disjoint plan groups with distinct bounds.
        EXPECT_EQ(joined & branch.mask, 0u);
        joined |= branch.mask;
      }
      EXPECT_EQ(joined, ext.mask);
      EXPECT_EQ(forest.nodes()[static_cast<std::size_t>(ext.child)].depth,
                node.depth + 1);
    }
  }
}

TEST(PlanForest, SuffixDefsAreDeduplicatedPerNode) {
  // The 4-star's three suffix sets are all N(v0): one definition serves
  // every S_i of the leaf.
  const Plan star = plan_of(patterns::star(4));
  ASSERT_GT(star.iep.k, 1) << "star should plan with a multi-vertex suffix";
  const PlanForest forest({star});
  std::size_t defs = 0;
  for (const auto& node : forest.nodes()) defs += node.suffix_defs.size();
  EXPECT_EQ(defs, 1u);
  EXPECT_EQ(forest.stats().shared_suffix_sets,
            static_cast<std::size_t>(star.iep.k) - 1);
}

TEST(PlanForest, RectangleLeafIsMemoized) {
  // The planner's rectangle (k = 1 IEP after a wedge prefix) is the
  // canonical invariant leaf: its set reads depths {0, 2} under a
  // depth-3 node, skipping the wedge midpoint.
  const Plan rect = plan_of(patterns::rectangle());
  ASSERT_EQ(rect.iep.k, 1) << "rectangle should plan with a k=1 suffix";
  const PlanForest forest({rect});
  EXPECT_EQ(forest.stats().memoized_leaves, 1u);
  bool found = false;
  for (const auto& node : forest.nodes())
    for (const auto& leaf : node.iep_leaves)
      if (leaf.memo_id >= 0) {
        found = true;
        EXPECT_LT(static_cast<int>(leaf.memo_key_depths.size()), node.depth);
      }
  EXPECT_TRUE(found);
}

TEST(PlanForest, RejectsOversizedBatches) {
  std::vector<Plan> plans(PlanForest::kMaxPlans + 1,
                          plan_of(patterns::clique(3)));
  EXPECT_THROW(PlanForest{std::move(plans)}, std::logic_error);
}

}  // namespace
}  // namespace graphpi
