// Permutation algebra: cycles, 2-cycles, composition, inversion.
#include <gtest/gtest.h>

#include "core/permutation.h"

namespace graphpi {
namespace {

TEST(Permutation, IdentityProperties) {
  const Permutation id(5);
  EXPECT_TRUE(id.is_identity());
  EXPECT_EQ(id.order(), 1);
  EXPECT_EQ(id.cycles().size(), 5u);
  EXPECT_TRUE(id.two_cycles().empty());
}

TEST(Permutation, RejectsNonBijections) {
  EXPECT_THROW(Permutation(std::vector<int>{0, 0, 1}), std::logic_error);
  EXPECT_THROW(Permutation(std::vector<int>{0, 3}), std::logic_error);
}

TEST(Permutation, CycleDecomposition) {
  // (A)(B,D)(C) from Figure 4(b): images A->A, B->D, C->C, D->B.
  const Permutation p(std::vector<int>{0, 3, 2, 1});
  const auto cycles = p.cycles();
  ASSERT_EQ(cycles.size(), 3u);
  EXPECT_EQ(cycles[0], std::vector<int>{0});
  EXPECT_EQ(cycles[1], (std::vector<int>{1, 3}));
  EXPECT_EQ(cycles[2], std::vector<int>{2});
  EXPECT_EQ(p.to_string(), "(0)(1 3)(2)");
  EXPECT_EQ(p.order(), 2);
}

TEST(Permutation, TwoCyclesOnlyReportGenuineTranspositions) {
  // 4-rotation (0 1 2 3): no 2-cycles in its disjoint decomposition.
  const Permutation rot(std::vector<int>{1, 2, 3, 0});
  EXPECT_TRUE(rot.two_cycles().empty());
  EXPECT_EQ(rot.order(), 4);

  // Double transposition (0 2)(1 3): two 2-cycles.
  const Permutation dbl(std::vector<int>{2, 3, 0, 1});
  const auto tc = dbl.two_cycles();
  ASSERT_EQ(tc.size(), 2u);
  EXPECT_EQ(tc[0], std::make_pair(0, 2));
  EXPECT_EQ(tc[1], std::make_pair(1, 3));
}

TEST(Permutation, ComposeAndInverse) {
  const Permutation a(std::vector<int>{1, 2, 0});  // (0 1 2)
  const Permutation b(std::vector<int>{1, 0, 2});  // (0 1)
  const Permutation ab = a.compose(b);
  // (a∘b)(x) = a(b(x)): 0->a(1)=2, 1->a(0)=1, 2->a(2)=0.
  EXPECT_EQ(ab(0), 2);
  EXPECT_EQ(ab(1), 1);
  EXPECT_EQ(ab(2), 0);
  EXPECT_TRUE(a.compose(a.inverse()).is_identity());
  EXPECT_TRUE(a.inverse().compose(a).is_identity());
}

TEST(Permutation, OrderOfMixedCycles) {
  // (0 1)(2 3 4): lcm(2, 3) = 6.
  const Permutation p(std::vector<int>{1, 0, 3, 4, 2});
  EXPECT_EQ(p.order(), 6);
}

}  // namespace
}  // namespace graphpi
