// Property tests pinning every vectorized / size-only / bitmap kernel to
// the scalar reference on adversarial inputs: empty sets, dense
// duplicate-free runs, identical inputs, and size ratios straddling the
// gallop cutoff. The same assertions run with the dispatch forced to the
// scalar fallback and, in DispatchSwitchesKernelsAtRuntime, under every
// selectable table (scalar / AVX2 / AVX-512), so one binary certifies
// every populated slot the CPU can run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "graph/vertex_set.h"
#include "support/rng.h"

namespace graphpi {
namespace {

std::vector<VertexId> random_sorted_set(std::size_t n, VertexId universe,
                                        std::uint64_t seed) {
  support::Xoshiro256StarStar rng(seed);
  std::vector<VertexId> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(static_cast<VertexId>(rng.bounded(universe)));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<VertexId> reference_intersection(const std::vector<VertexId>& a,
                                             const std::vector<VertexId>& b) {
  std::vector<VertexId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::size_t reference_window_count(const std::vector<VertexId>& common,
                                   VertexId lo, VertexId hi) {
  std::size_t n = 0;
  for (VertexId v : common)
    if (v >= lo && v < hi) ++n;
  return n;
}

void expect_all_variants_match(const std::vector<VertexId>& a,
                               const std::vector<VertexId>& b,
                               const std::string& label) {
  const auto expected = reference_intersection(a, b);

  std::vector<VertexId> got;
  intersect(a, b, got);
  EXPECT_EQ(got, expected) << label << " intersect";
  intersect_gallop(a, b, got);
  EXPECT_EQ(got, expected) << label << " gallop";
  intersect_adaptive(a, b, got);
  EXPECT_EQ(got, expected) << label << " adaptive";

  EXPECT_EQ(intersect_size(a, b), expected.size()) << label << " size";
  EXPECT_EQ(intersect_size_scalar(a, b), expected.size())
      << label << " size_scalar";
  EXPECT_EQ(intersect_size_gallop(a, b), expected.size())
      << label << " size_gallop";
  EXPECT_EQ(intersect_size_adaptive(a, b), expected.size())
      << label << " size_adaptive";

  const VertexId bounds[] = {0, 1, 17, 100, 250, 499, 500, 100000,
                             kNoVertexBound};
  for (VertexId lo : bounds) {
    for (VertexId hi : bounds) {
      const std::size_t want = reference_window_count(expected, lo, hi);
      EXPECT_EQ(intersect_size_bounded(a, b, lo, hi), want)
          << label << " bounded [" << lo << "," << hi << ")";
      EXPECT_EQ(intersect_size_bounded_adaptive(a, b, lo, hi), want)
          << label << " bounded_adaptive [" << lo << "," << hi << ")";
    }
  }
}

class SimdEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, VertexId>> {};

TEST_P(SimdEquivalenceTest, AgreesWithScalarReference) {
  const auto [na, nb, universe] = GetParam();
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto a = random_sorted_set(na, universe, seed * 2 + 1);
    const auto b = random_sorted_set(nb, universe, seed * 2 + 2);
    expect_all_variants_match(a, b, "seed " + std::to_string(seed));
  }
}

TEST_P(SimdEquivalenceTest, ForcedScalarFallbackAgrees) {
  const auto [na, nb, universe] = GetParam();
  force_scalar_kernels(true);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto a = random_sorted_set(na, universe, seed * 2 + 1);
    const auto b = random_sorted_set(nb, universe, seed * 2 + 2);
    expect_all_variants_match(a, b, "forced-scalar seed " +
                                        std::to_string(seed));
  }
  force_scalar_kernels(false);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SimdEquivalenceTest,
    ::testing::Values(
        // Empty and tiny sets, below one SIMD block.
        std::make_tuple(0, 0, 500), std::make_tuple(0, 64, 500),
        std::make_tuple(3, 5, 500), std::make_tuple(7, 9, 500),
        // Exactly at / around the 8-lane block boundary.
        std::make_tuple(8, 8, 64), std::make_tuple(8, 8, 1 << 20),
        std::make_tuple(9, 17, 300),
        // Dense overlap (small universe) and sparse overlap.
        std::make_tuple(200, 210, 300), std::make_tuple(200, 210, 1 << 20),
        std::make_tuple(1000, 1000, 2000),
        // Size ratios straddling the gallop cutoff (~32).
        std::make_tuple(31, 1000, 4000), std::make_tuple(33, 1000, 4000),
        std::make_tuple(10, 2000, 1 << 16), std::make_tuple(2000, 10, 1 << 16),
        std::make_tuple(1, 400, 1000)));

TEST(SimdKernels, BackendIsConsistent) {
  const std::string backend = simd_backend();
  EXPECT_TRUE(backend == "avx512" || backend == "avx2" || backend == "scalar")
      << backend;
  EXPECT_EQ(backend != "scalar", simd_enabled());
  EXPECT_EQ(backend, active_isa());
}

TEST(RuntimeDispatch, SelectionRoundTrips) {
  const KernelIsa initial = active_kernel_isa();
  // Scalar is always selectable.
  EXPECT_TRUE(select_kernel_isa(KernelIsa::kScalar));
  EXPECT_EQ(active_kernel_isa(), KernelIsa::kScalar);
  EXPECT_EQ(std::string(active_isa()), "scalar");
  // kAuto restores the probed/pinned default.
  EXPECT_TRUE(select_kernel_isa(KernelIsa::kAuto));
  EXPECT_EQ(active_kernel_isa(), initial);
  // Every vector slot is selectable exactly when the CPU supports it.
  EXPECT_EQ(select_kernel_isa(KernelIsa::kAvx2),
            cpu_supports(KernelIsa::kAvx2));
  EXPECT_TRUE(select_kernel_isa(KernelIsa::kAuto));
  EXPECT_EQ(select_kernel_isa(KernelIsa::kAvx512),
            cpu_supports(KernelIsa::kAvx512));
  if (cpu_supports(KernelIsa::kAvx512))
    EXPECT_EQ(std::string(active_isa()), "avx512");
  EXPECT_TRUE(select_kernel_isa(KernelIsa::kAuto));
  EXPECT_EQ(active_kernel_isa(), initial);
}

TEST(RuntimeDispatch, ForcedScalarIsObservable) {
  force_scalar_kernels(true);
  EXPECT_EQ(active_kernel_isa(), KernelIsa::kScalar);
  EXPECT_FALSE(simd_enabled());
  force_scalar_kernels(false);
  EXPECT_EQ(std::string(to_string(active_kernel_isa())), active_isa());
}

TEST(RuntimeDispatch, DispatchSwitchesKernelsAtRuntime) {
  // The same un-suffixed entry points must agree with the scalar
  // reference under every selectable table — one binary, every path.
  const auto a = random_sorted_set(500, 4000, 101);
  const auto b = random_sorted_set(700, 4000, 202);
  const auto expected = reference_intersection(a, b);
  for (const KernelIsa isa :
       {KernelIsa::kScalar, KernelIsa::kAvx2, KernelIsa::kAvx512}) {
    if (!select_kernel_isa(isa)) continue;
    std::vector<VertexId> got;
    intersect(a, b, got);
    EXPECT_EQ(got, expected) << to_string(isa);
    EXPECT_EQ(intersect_size(a, b), expected.size()) << to_string(isa);
    // Raw-pointer form (the codegen ops-table entry point).
    std::vector<VertexId> raw(std::min(a.size(), b.size()) + 8);
    const std::size_t n = intersect_into(a, b, raw.data());
    raw.resize(n);
    EXPECT_EQ(raw, expected) << to_string(isa);
  }
  EXPECT_TRUE(select_kernel_isa(KernelIsa::kAuto));
}

TEST(SimdKernels, ConsecutiveRunsAndIdenticalInputs) {
  // Duplicate-free sorted runs: worst case for the block-advance logic
  // (every comparison window is fully dense).
  std::vector<VertexId> a(256), b(256);
  std::iota(a.begin(), a.end(), VertexId{0});
  std::iota(b.begin(), b.end(), VertexId{128});
  expect_all_variants_match(a, b, "offset runs");
  expect_all_variants_match(a, a, "identical");
  std::vector<VertexId> disjoint(64);
  std::iota(disjoint.begin(), disjoint.end(), VertexId{4096});
  expect_all_variants_match(a, disjoint, "disjoint");
}

TEST(Gallop, ProbeClampRegression) {
  // The exponential probe used to advance a raw pointer arbitrarily far
  // past the end before clamping (UB caught by UBSan). Sizes just off a
  // power of two force the final probe to overshoot.
  for (std::size_t nb : {3u, 5u, 127u, 1000u, 1025u}) {
    std::vector<VertexId> b(nb);
    std::iota(b.begin(), b.end(), VertexId{0});
    const std::vector<VertexId> a{static_cast<VertexId>(nb - 1),
                                  static_cast<VertexId>(nb + 100)};
    std::vector<VertexId> out;
    intersect_gallop(a, b, out);
    EXPECT_EQ(out, (std::vector<VertexId>{static_cast<VertexId>(nb - 1)}));
    EXPECT_EQ(intersect_size_gallop(a, b), 1u);
  }
}

// ---------------------------------------------------------------------------
// Bitmap kernels.
// ---------------------------------------------------------------------------

std::vector<std::uint64_t> make_bitmap(const std::vector<VertexId>& set,
                                       VertexId universe) {
  std::vector<std::uint64_t> bits((static_cast<std::size_t>(universe) + 63) /
                                  64);
  for (VertexId v : set) bits[v >> 6] |= std::uint64_t{1} << (v & 63);
  return bits;
}

TEST(BitmapKernels, MatchScalarReference) {
  const VertexId universe = 700;  // not a multiple of 64: partial last word
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto a = random_sorted_set(120, universe, seed + 10);
    const auto b = random_sorted_set(300, universe, seed + 20);
    const auto bits = make_bitmap(b, universe);
    const auto expected = reference_intersection(a, b);

    std::vector<VertexId> got;
    intersect_bitmap(a, bits.data(), got);
    EXPECT_EQ(got, expected) << "seed " << seed;
    EXPECT_EQ(intersect_size_bitmap(a, bits.data()), expected.size());

    for (VertexId lo : {0u, 5u, 333u, 699u}) {
      for (VertexId hi : {0u, 64u, 500u, 700u, kNoVertexBound}) {
        EXPECT_EQ(intersect_size_bitmap_bounded(a, bits.data(), lo, hi),
                  reference_window_count(expected, lo, hi))
            << "seed " << seed << " [" << lo << "," << hi << ")";
      }
    }

    const auto bits_a = make_bitmap(a, universe);
    EXPECT_EQ(bitmap_and_popcount(bits_a.data(), bits.data(), bits.size()),
              expected.size());
    for (VertexId lo : {0u, 1u, 63u, 64u, 65u, 500u}) {
      for (VertexId hi : {0u, 63u, 64u, 128u, 699u, 700u, kNoVertexBound}) {
        EXPECT_EQ(bitmap_and_popcount_bounded(bits_a.data(), bits.data(),
                                              universe, lo, hi),
                  reference_window_count(expected, lo, hi))
            << "window [" << lo << "," << hi << ")";
      }
    }
  }
}

TEST(SmallSetHelpers, TrimToWindow) {
  const std::vector<VertexId> s{2, 4, 6, 8, 10};
  const auto w = trim_to_window(s, 4, 9);
  EXPECT_EQ(std::vector<VertexId>(w.begin(), w.end()),
            (std::vector<VertexId>{4, 6, 8}));
  EXPECT_TRUE(trim_to_window(s, 11, kNoVertexBound).empty());
  EXPECT_EQ(trim_to_window(s, 0, kNoVertexBound).size(), s.size());
}

}  // namespace
}  // namespace graphpi
