// Hub bitmap index: row contents vs CSR adjacency, threshold and budget
// behavior, has_edge consistency, and end-to-end matcher equality with
// the index enabled, disabled, and combined with the scalar fallback.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/configuration.h"
#include "core/pattern_library.h"
#include "engine/matcher.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/vertex_set.h"

namespace graphpi {
namespace {

TEST(HubIndex, RowsMatchAdjacencyExactly) {
  const Graph g = rmat(10, 6000, 5);
  ASSERT_TRUE(g.validate());
  g.build_hub_index(32);
  ASSERT_TRUE(g.has_hub_index());
  EXPECT_EQ(g.hub_min_degree(), 32u);
  EXPECT_GT(g.hub_count(), 0u);
  EXPECT_EQ(g.hub_words(), (g.vertex_count() + 63) / 64);

  std::uint32_t hubs_seen = 0;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    const std::uint64_t* row = g.hub_bits(v);
    if (g.degree(v) < 32) {
      // Vertices below the threshold may only lack a row (the budget cap
      // can also drop above-threshold vertices, never add below ones).
      if (row == nullptr) continue;
    }
    if (row == nullptr) continue;
    ++hubs_seen;
    const auto adj = g.neighbors(v);
    for (VertexId w = 0; w < g.vertex_count(); ++w) {
      const bool bit = ((row[w >> 6] >> (w & 63)) & 1u) != 0;
      EXPECT_EQ(bit, contains(adj, w)) << "v=" << v << " w=" << w;
    }
  }
  EXPECT_EQ(hubs_seen, g.hub_count());
}

TEST(HubIndex, HasEdgeAgreesBeforeAndAfterBuild) {
  const Graph g = clustered_power_law(400, 2400, 2.2, 0.4, 9);
  const Graph g_indexed = g;  // copy, then index one of them
  g_indexed.build_hub_index(8);
  ASSERT_GT(g_indexed.hub_count(), 0u);
  for (VertexId u = 0; u < g.vertex_count(); u += 3)
    for (VertexId v = 0; v < g.vertex_count(); v += 7)
      EXPECT_EQ(g.has_edge(u, v), g_indexed.has_edge(u, v))
          << u << "-" << v;
}

TEST(HubIndex, DisabledIndexHasNoRows) {
  const Graph g = star_graph(300);
  g.build_hub_index(0xffffffffu);
  EXPECT_TRUE(g.has_hub_index());
  EXPECT_EQ(g.hub_count(), 0u);
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    EXPECT_EQ(g.hub_bits(v), nullptr);
  EXPECT_TRUE(g.has_edge(0, 17));
  EXPECT_FALSE(g.has_edge(17, 18));
}

TEST(HubIndex, AutoThresholdIndexesHighDegreeStar) {
  const Graph g = star_graph(600);  // center degree 599 >= max(128, 600/64)
  g.ensure_hub_index();
  EXPECT_NE(g.hub_bits(0), nullptr);
  EXPECT_EQ(g.hub_bits(1), nullptr);  // leaves have degree 1
  EXPECT_EQ(g.hub_count(), 1u);
}

TEST(HubIndex, MatcherCountsIdenticalWithAndWithoutAcceleration) {
  const Graph fast = rmat(9, 2500, 11);
  const Graph slow = fast;
  slow.build_hub_index(0xffffffffu);  // no rows
  fast.build_hub_index(16);           // aggressive: many rows
  ASSERT_GT(fast.hub_count(), 0u);

  for (const Pattern& p : {patterns::house(), patterns::clique(4),
                           patterns::rectangle()}) {
    for (bool use_iep : {false, true}) {
      PlannerOptions planner;
      planner.use_iep = use_iep;
      const Configuration config =
          plan_configuration(p, GraphStats::of(slow), planner);
      const Count baseline = Matcher(slow, config).count();
      EXPECT_EQ(Matcher(fast, config).count(), baseline)
          << p.to_string() << " iep=" << use_iep;

      // Hub rows combined with the forced scalar merge kernels.
      force_scalar_kernels(true);
      EXPECT_EQ(Matcher(fast, config).count(), baseline)
          << p.to_string() << " iep=" << use_iep << " forced scalar";
      force_scalar_kernels(false);
    }
  }
}

TEST(Rmat, GeneratesValidSkewedGraph) {
  const Graph g = rmat(9, 2000, 3);
  EXPECT_EQ(g.vertex_count(), 512u);
  EXPECT_TRUE(g.validate());
  EXPECT_GT(g.edge_count(), 1000u);
  // Heavy-tailed: the max degree dwarfs the average.
  const double avg = 2.0 * static_cast<double>(g.edge_count()) /
                     static_cast<double>(g.vertex_count());
  EXPECT_GT(g.max_degree(), 4 * avg);
}

}  // namespace
}  // namespace graphpi
