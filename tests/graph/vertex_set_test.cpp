// Sorted-set kernels: correctness against std::set_intersection across
// randomized inputs, plus the bounded/galloping variants.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/vertex_set.h"
#include "support/rng.h"

namespace graphpi {
namespace {

std::vector<VertexId> random_sorted_set(std::size_t n, VertexId universe,
                                        std::uint64_t seed) {
  support::Xoshiro256StarStar rng(seed);
  std::vector<VertexId> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(static_cast<VertexId>(rng.bounded(universe)));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<VertexId> reference_intersection(const std::vector<VertexId>& a,
                                             const std::vector<VertexId>& b) {
  std::vector<VertexId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

class IntersectionPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(IntersectionPropertyTest, AllVariantsMatchStdSetIntersection) {
  const auto [na, nb] = GetParam();
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const auto a = random_sorted_set(na, 500, seed * 2 + 1);
    const auto b = random_sorted_set(nb, 500, seed * 2 + 2);
    const auto expected = reference_intersection(a, b);

    std::vector<VertexId> got;
    intersect(a, b, got);
    EXPECT_EQ(got, expected);

    intersect_gallop(a, b, got);
    EXPECT_EQ(got, expected) << "gallop seed " << seed;

    intersect_adaptive(a, b, got);
    EXPECT_EQ(got, expected) << "adaptive seed " << seed;

    EXPECT_EQ(intersect_size(a, b), expected.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, IntersectionPropertyTest,
    ::testing::Values(std::make_tuple(0, 0), std::make_tuple(0, 50),
                      std::make_tuple(5, 400), std::make_tuple(50, 50),
                      std::make_tuple(200, 210), std::make_tuple(1, 400),
                      std::make_tuple(400, 3)));

TEST(IntersectBelow, TruncatesAtBound) {
  const std::vector<VertexId> a{1, 3, 5, 7, 9, 11};
  const std::vector<VertexId> b{3, 4, 5, 9, 11};
  std::vector<VertexId> out;
  intersect_below(a, b, 9, out);
  EXPECT_EQ(out, (std::vector<VertexId>{3, 5}));
  intersect_below(a, b, 100, out);
  EXPECT_EQ(out, (std::vector<VertexId>{3, 5, 9, 11}));
  intersect_below(a, b, 0, out);
  EXPECT_TRUE(out.empty());
}

TEST(IntersectBelow, MatchesFilteredReference) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto a = random_sorted_set(80, 300, seed + 100);
    const auto b = random_sorted_set(120, 300, seed + 200);
    for (VertexId bound : {0u, 50u, 150u, 299u, 1000u}) {
      std::vector<VertexId> got;
      intersect_below(a, b, bound, got);
      auto expected = reference_intersection(a, b);
      std::erase_if(expected, [bound](VertexId v) { return v >= bound; });
      EXPECT_EQ(got, expected) << "seed " << seed << " bound " << bound;
    }
  }
}

TEST(RemoveAll, RemovesOnlyListedElements) {
  std::vector<VertexId> s{1, 2, 4, 6, 8, 10};
  const std::vector<VertexId> excl{2, 8, 99};
  remove_all(s, excl);
  EXPECT_EQ(s, (std::vector<VertexId>{1, 4, 6, 10}));
}

TEST(CountHelpers, PresentBelowAbove) {
  const std::vector<VertexId> s{2, 4, 6, 8, 10};
  EXPECT_EQ(count_present(s, std::vector<VertexId>{1, 2, 3, 10}), 2u);
  EXPECT_TRUE(contains(s, 6));
  EXPECT_FALSE(contains(s, 7));
  EXPECT_EQ(count_below(s, 6), 2u);
  EXPECT_EQ(count_below(s, 11), 5u);
  EXPECT_EQ(count_above(s, 6), 2u);
  EXPECT_EQ(count_above(s, 1), 5u);
}

}  // namespace
}  // namespace graphpi
