// Graph IO: SNAP-style edge lists and the binary CSR cache round-trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "graph/generators.h"
#include "graph/io.h"

namespace graphpi {
namespace {

TEST(EdgeListIo, ParsesSnapFormatWithCommentsAndRemapping) {
  std::istringstream in(
      "# Directed graph (each unordered pair of nodes is saved once)\n"
      "% another comment style\n"
      "30\t1004\n"
      "1004\t30\n"       // reverse duplicate
      "30\t30\n"         // self loop
      "7\t1004\n"
      "garbage line\n"   // ignored
      "30\t7\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.vertex_count(), 3u);  // 30, 1004, 7 remapped densely
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_TRUE(g.validate());
}

TEST(EdgeListIo, RoundTrip) {
  const Graph original = clustered_power_law(120, 500, 2.3, 0.4, 77);
  std::stringstream buffer;
  write_edge_list(original, buffer);
  const Graph reloaded = read_edge_list(buffer);
  // Edge lists cannot represent isolated vertices, so the reloaded vertex
  // count equals the number of non-isolated vertices.
  VertexId non_isolated = 0;
  for (VertexId v = 0; v < original.vertex_count(); ++v)
    if (original.degree(v) > 0) ++non_isolated;
  EXPECT_EQ(reloaded.vertex_count(), non_isolated);
  EXPECT_EQ(reloaded.edge_count(), original.edge_count());
  EXPECT_EQ(reloaded.triangle_count(), original.triangle_count());
}

TEST(BinaryIo, RoundTripPreservesCsrExactly) {
  namespace fs = std::filesystem;
  const Graph original = erdos_renyi(150, 600, 3);
  const auto path = fs::temp_directory_path() / "graphpi_io_test.bin";
  save_binary(original, path.string());
  const Graph reloaded = load_binary(path.string());
  EXPECT_EQ(reloaded.raw_offsets(), original.raw_offsets());
  EXPECT_EQ(reloaded.raw_neighbors(), original.raw_neighbors());
  fs::remove(path);
}

TEST(BinaryIo, RejectsGarbage) {
  namespace fs = std::filesystem;
  const auto path = fs::temp_directory_path() / "graphpi_io_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a graph";
  }
  EXPECT_THROW((void)load_binary(path.string()), std::runtime_error);
  fs::remove(path);
  EXPECT_THROW((void)load_binary("/nonexistent/graphpi.bin"),
               std::runtime_error);
  EXPECT_THROW((void)load_edge_list("/nonexistent/graphpi.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace graphpi
