// Subgraph extraction: induced subgraphs, ego networks, k-cores.
#include <gtest/gtest.h>

#include "core/pattern_library.h"
#include "engine/oracle.h"
#include "graph/analysis.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/subgraph.h"

namespace graphpi {
namespace {

TEST(Subgraph, InducedKeepsExactlyInternalEdges) {
  const Graph g = complete_graph(6);
  const auto sub = induced_subgraph(g, {0, 2, 4, 5});
  EXPECT_EQ(sub.graph.vertex_count(), 4u);
  EXPECT_EQ(sub.graph.edge_count(), 6u);  // K4
  EXPECT_EQ(sub.original_ids, (std::vector<VertexId>{0, 2, 4, 5}));
}

TEST(Subgraph, InducedDeduplicatesAndValidates) {
  const Graph g = cycle_graph(10);
  const auto sub = induced_subgraph(g, {3, 4, 4, 5, 3});
  EXPECT_EQ(sub.graph.vertex_count(), 3u);
  EXPECT_EQ(sub.graph.edge_count(), 2u);  // path 3-4-5
  EXPECT_TRUE(sub.graph.validate());
  EXPECT_THROW((void)induced_subgraph(g, {99}), std::logic_error);
}

TEST(Subgraph, EgoNetworkRadii) {
  const Graph g = grid_graph(5, 5);
  // Center of the grid: radius 1 = center + 4 neighbors.
  const VertexId center = 12;
  const auto ego1 = ego_network(g, center, 1);
  EXPECT_EQ(ego1.graph.vertex_count(), 5u);
  // Radius 0 is just the center.
  const auto ego0 = ego_network(g, center, 0);
  EXPECT_EQ(ego0.graph.vertex_count(), 1u);
  // Large radius covers the whole (connected) graph.
  const auto ego_all = ego_network(g, center, 100);
  EXPECT_EQ(ego_all.graph.vertex_count(), g.vertex_count());
  EXPECT_EQ(ego_all.graph.edge_count(), g.edge_count());
}

TEST(Subgraph, KCoreStripsLowDegreeFringe) {
  // A clique with pendant vertices: the 3-core is exactly the clique.
  GraphBuilder b(8);
  for (int u = 0; u < 5; ++u)
    for (int v = u + 1; v < 5; ++v)
      b.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  b.add_edge(0, 5);
  b.add_edge(1, 6);
  b.add_edge(2, 7);
  const Graph g = b.build();
  const auto core3 = k_core_subgraph(g, 3);
  EXPECT_EQ(core3.graph.vertex_count(), 5u);
  EXPECT_EQ(core3.graph.edge_count(), 10u);
}

TEST(Subgraph, PatternCountsLocalizeToEgoNets) {
  // Every triangle through v lives inside ego(v, 1): summing per-ego
  // triangle counts "through the center" reproduces the global count.
  const Graph g = clustered_power_law(60, 260, 2.3, 0.5, 71);
  const Count global = oracle_count(g, patterns::clique(3));
  Count through_centers = 0;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    const auto ego = ego_network(g, v, 1);
    // Count triangles of the ego net containing the center.
    const auto center_new = static_cast<VertexId>(
        std::find(ego.original_ids.begin(), ego.original_ids.end(), v) -
        ego.original_ids.begin());
    Count local = 0;
    const auto& eg = ego.graph;
    for (VertexId a : eg.neighbors(center_new))
      for (VertexId c : eg.neighbors(center_new))
        if (a < c && eg.has_edge(a, c)) ++local;
    through_centers += local;
  }
  // Each triangle has 3 centers.
  EXPECT_EQ(through_centers, global * 3);
}

}  // namespace
}  // namespace graphpi
