// CSR graph substrate: builder normalization, invariants, statistics.
#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "test_util.h"

namespace graphpi {
namespace {

TEST(GraphBuilder, DeduplicatesSymmetrizesAndDropsLoops) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // duplicate in the other direction
  b.add_edge(0, 1);  // exact duplicate
  b.add_edge(2, 2);  // self loop: dropped
  b.add_edge(1, 2);
  const Graph g = b.build();
  EXPECT_EQ(g.vertex_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.validate());
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(2, 2));
}

TEST(GraphBuilder, GrowsVertexRangeFromEdges) {
  GraphBuilder b;
  b.add_edge(5, 9);
  const Graph g = b.build();
  EXPECT_EQ(g.vertex_count(), 10u);
  EXPECT_EQ(g.degree(9), 1u);
  EXPECT_EQ(g.degree(0), 0u);
}

TEST(Graph, AdjacencySortedAndMirrored) {
  for (const auto& g : testing::small_test_graphs()) {
    EXPECT_TRUE(g.validate());
    std::uint64_t slots = 0;
    for (VertexId v = 0; v < g.vertex_count(); ++v) slots += g.degree(v);
    EXPECT_EQ(slots, g.directed_edge_count());
    EXPECT_EQ(slots, 2 * g.edge_count());
  }
}

TEST(Graph, DegreeMatchesNeighborSpan) {
  const Graph g = erdos_renyi(100, 400, 5);
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    EXPECT_EQ(g.degree(v), g.neighbors(v).size());
}

TEST(Triangles, KnownClosedForms) {
  // K_n has C(n,3) triangles.
  EXPECT_EQ(complete_graph(5).triangle_count(), 10u);
  EXPECT_EQ(complete_graph(8).triangle_count(), 56u);
  // Cycles above length 3 and grids/stars are triangle-free.
  EXPECT_EQ(cycle_graph(3).triangle_count(), 1u);
  EXPECT_EQ(cycle_graph(10).triangle_count(), 0u);
  EXPECT_EQ(star_graph(20).triangle_count(), 0u);
  EXPECT_EQ(grid_graph(5, 5).triangle_count(), 0u);
}

TEST(Triangles, MatchesNaiveCount) {
  const Graph g = clustered_power_law(80, 320, 2.3, 0.5, 9);
  std::uint64_t naive = 0;
  for (VertexId a = 0; a < g.vertex_count(); ++a)
    for (VertexId b : g.neighbors(a))
      for (VertexId c : g.neighbors(b))
        if (a < b && b < c && g.has_edge(a, c)) ++naive;
  EXPECT_EQ(g.triangle_count(), naive);
}

TEST(Generators, DeterministicAcrossCalls) {
  const Graph a = power_law(200, 800, 2.3, 42);
  const Graph b = power_law(200, 800, 2.3, 42);
  EXPECT_EQ(a.raw_offsets(), b.raw_offsets());
  EXPECT_EQ(a.raw_neighbors(), b.raw_neighbors());
  const Graph c = power_law(200, 800, 2.3, 43);
  EXPECT_NE(a.raw_neighbors(), c.raw_neighbors());
}

TEST(Generators, HitEdgeBudgets) {
  const Graph er = erdos_renyi(500, 2000, 7);
  EXPECT_EQ(er.edge_count(), 2000u);
  const Graph pl = power_law(500, 2000, 2.3, 7);
  // Power-law dedup can land slightly under target.
  EXPECT_GE(pl.edge_count(), 1800u);
  EXPECT_LE(pl.edge_count(), 2000u);
}

TEST(Generators, PowerLawIsSkewed) {
  const Graph g = power_law(2000, 10000, 2.2, 11);
  // Hubs should far exceed the mean degree.
  EXPECT_GT(g.max_degree(), 8 * (2 * g.edge_count() / g.vertex_count()));
}

TEST(Generators, ClusteredVariantRaisesTriangleCount) {
  const Graph plain = power_law(1000, 5000, 2.3, 13);
  const Graph clustered = clustered_power_law(1000, 5000, 2.3, 0.5, 13);
  EXPECT_GT(clustered.triangle_count(), plain.triangle_count());
}

TEST(Generators, StructuredFamilies) {
  EXPECT_EQ(complete_graph(10).edge_count(), 45u);
  EXPECT_EQ(cycle_graph(17).edge_count(), 17u);
  EXPECT_EQ(star_graph(9).edge_count(), 8u);
  EXPECT_EQ(grid_graph(4, 6).edge_count(),
            static_cast<std::uint64_t>(3 * 6 + 4 * 5));
  const Graph rr = random_regular(100, 8, 3);
  EXPECT_TRUE(rr.validate());
  EXPECT_LE(rr.max_degree(), 8u);
}

}  // namespace
}  // namespace graphpi
