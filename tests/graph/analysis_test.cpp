// Graph analysis utilities: components, core decomposition, clustering,
// BFS, relabeling.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/analysis.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "engine/oracle.h"
#include "core/pattern_library.h"

namespace graphpi {
namespace {

TEST(Components, CountsDisconnectedPieces) {
  GraphBuilder b(7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  // 5 and 6 isolated.
  const Graph g = b.build();
  const ComponentResult r = connected_components(g);
  EXPECT_EQ(r.count, 4u);
  EXPECT_EQ(r.component[0], r.component[2]);
  EXPECT_NE(r.component[0], r.component[3]);
  EXPECT_EQ(r.largest(), 3u);
}

TEST(Components, GeneratedGraphsAreMostlyConnected) {
  const Graph g = clustered_power_law(400, 2400, 2.3, 0.4, 7);
  const ComponentResult r = connected_components(g);
  // Power-law stand-ins must have a giant component (sanity for the
  // dataset substitution).
  EXPECT_GT(r.largest(), g.vertex_count() / 2);
}

TEST(CoreDecomposition, KnownStructures) {
  // Clique K_5: everything is in the 4-core.
  const CoreResult clique = core_decomposition(complete_graph(5));
  EXPECT_EQ(clique.degeneracy, 4u);
  for (auto c : clique.core) EXPECT_EQ(c, 4u);

  // Cycle: 2-core everywhere.
  const CoreResult cyc = core_decomposition(cycle_graph(10));
  EXPECT_EQ(cyc.degeneracy, 2u);

  // Star: center and leaves peel at 1.
  const CoreResult star = core_decomposition(star_graph(10));
  EXPECT_EQ(star.degeneracy, 1u);

  // Tree (grid row): degeneracy 1; grid proper: 2.
  EXPECT_EQ(core_decomposition(grid_graph(1, 10)).degeneracy, 1u);
  EXPECT_EQ(core_decomposition(grid_graph(5, 5)).degeneracy, 2u);
}

TEST(CoreDecomposition, CoreNumbersAreConsistent) {
  const Graph g = clustered_power_law(200, 900, 2.3, 0.4, 13);
  const CoreResult r = core_decomposition(g);
  EXPECT_EQ(r.peel_order.size(), g.vertex_count());
  // Every vertex of core number k has >= k neighbors with core >= k.
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    std::uint32_t strong = 0;
    for (VertexId w : g.neighbors(v))
      if (r.core[w] >= r.core[v]) ++strong;
    EXPECT_GE(strong, r.core[v]) << "vertex " << v;
  }
}

TEST(Clustering, CompleteGraphIsOne) {
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(complete_graph(8)), 1.0);
  EXPECT_DOUBLE_EQ(average_local_clustering(complete_graph(8)), 1.0);
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(star_graph(10)), 0.0);
}

TEST(Clustering, TriangleClosingRaisesCoefficient) {
  const Graph plain = power_law(600, 3000, 2.3, 17);
  const Graph clustered = clustered_power_law(600, 3000, 2.3, 0.5, 17);
  EXPECT_GT(global_clustering_coefficient(clustered),
            global_clustering_coefficient(plain));
}

TEST(DegreeHistogram, SumsToVertexCount) {
  const Graph g = erdos_renyi(150, 600, 21);
  const auto hist = degree_histogram(g);
  std::uint64_t total = 0, weighted = 0;
  for (std::size_t d = 0; d < hist.size(); ++d) {
    total += hist[d];
    weighted += hist[d] * d;
  }
  EXPECT_EQ(total, g.vertex_count());
  EXPECT_EQ(weighted, g.directed_edge_count());
}

TEST(Bfs, DistancesOnCycle) {
  const Graph g = cycle_graph(10);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[5], 5u);
  EXPECT_EQ(dist[9], 1u);
  EXPECT_EQ(dist[7], 3u);
}

TEST(Bfs, UnreachableIsMax) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const auto dist = bfs_distances(b.build(), 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], std::numeric_limits<std::uint32_t>::max());
}

TEST(Relabel, PreservesPatternCounts) {
  // Relabeling is an isomorphism: every pattern count is invariant.
  const Graph g = clustered_power_law(80, 350, 2.3, 0.4, 23);
  const Graph relabeled = relabel_by_degree(g);
  EXPECT_TRUE(relabeled.validate());
  EXPECT_EQ(relabeled.edge_count(), g.edge_count());
  for (const auto& p : {patterns::clique(3), patterns::house(),
                        patterns::rectangle()}) {
    EXPECT_EQ(oracle_count(relabeled, p), oracle_count(g, p))
        << p.to_string();
  }
  // Degree ordering: vertex 0 has the max degree.
  EXPECT_EQ(relabeled.degree(0), relabeled.max_degree());
}

}  // namespace
}  // namespace graphpi
