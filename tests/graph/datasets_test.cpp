// Dataset stand-ins (Table I substitution): determinism, spec coverage,
// and preservation of the published relative ordering.
#include <gtest/gtest.h>

#include "graph/analysis.h"
#include "graph/datasets.h"

namespace graphpi::datasets {
namespace {

TEST(Datasets, AllSixSpecsPresentInPaperOrder) {
  const auto& all = specs();
  ASSERT_EQ(all.size(), 6u);
  const char* expected[] = {"wiki_vote", "mico",  "patents",
                            "livejournal", "orkut", "twitter"};
  for (std::size_t i = 0; i < all.size(); ++i)
    EXPECT_EQ(all[i].name, expected[i]);
  // Paper sizes grow monotonically through the list (Table I ordering).
  for (std::size_t i = 1; i < all.size(); ++i)
    EXPECT_GE(all[i].paper_edges, all[i - 1].paper_edges);
}

TEST(Datasets, LoadsAreValidAndDeterministic) {
  for (const auto& spec : specs()) {
    const Graph a = load(spec, 0.08);
    const Graph b = load(spec, 0.08);
    EXPECT_TRUE(a.validate()) << spec.name;
    EXPECT_EQ(a.raw_neighbors(), b.raw_neighbors()) << spec.name;
    EXPECT_GT(a.edge_count(), 0u) << spec.name;
  }
}

TEST(Datasets, DistinctSeedsPerDataset) {
  // Two different datasets at the same size parameters must not be the
  // same graph.
  const Graph wiki = load("wiki_vote", 0.1);
  const Graph mico = load("mico", 0.1);
  EXPECT_TRUE(wiki.raw_neighbors() != mico.raw_neighbors() ||
              wiki.vertex_count() != mico.vertex_count());
}

TEST(Datasets, RelativeDensityOrderingPreserved) {
  // Orkut must be denser than patents (the published extremes) and the
  // twitter stand-in must carry the largest workload of the six.
  auto density = [](const Graph& g) {
    const double n = g.vertex_count();
    return 2.0 * static_cast<double>(g.edge_count()) / (n * n);
  };
  const Graph orkut = load("orkut", 0.25);
  const Graph patents = load("patents", 0.25);
  EXPECT_GT(density(orkut), density(patents));

  std::uint64_t max_edges = 0;
  std::string max_name;
  for (const auto& spec : specs()) {
    const Graph g = load(spec, 0.25);
    if (g.edge_count() > max_edges) {
      max_edges = g.edge_count();
      max_name = spec.name;
    }
  }
  EXPECT_EQ(max_name, "twitter");
}

TEST(Datasets, StandInsAreClusteredAndSkewed) {
  // The perf model needs non-trivial triangle counts; schedules only
  // matter when degree distributions are skewed.
  for (const auto& spec : specs()) {
    const Graph g = load(spec, 0.25);
    EXPECT_GT(g.triangle_count(), 0u) << spec.name;
    const double avg_deg =
        2.0 * static_cast<double>(g.edge_count()) / g.vertex_count();
    EXPECT_GT(g.max_degree(), 3 * avg_deg) << spec.name;
    // Dominated by one giant component (sane mining substrate).
    EXPECT_GT(connected_components(g).largest(), g.vertex_count() / 2)
        << spec.name;
  }
}

TEST(Datasets, ScaleIsMonotone) {
  for (const auto& name : {"wiki_vote", "orkut"}) {
    const Graph s = load(name, 0.05);
    const Graph m = load(name, 0.2);
    const Graph l = load(name, 0.5);
    EXPECT_LT(s.vertex_count(), m.vertex_count());
    EXPECT_LT(m.vertex_count(), l.vertex_count());
    EXPECT_LT(s.edge_count(), m.edge_count());
    EXPECT_LT(m.edge_count(), l.edge_count());
  }
}

}  // namespace
}  // namespace graphpi::datasets
