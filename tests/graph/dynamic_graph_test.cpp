// DynamicGraph: incremental triangle maintenance under random edge churn
// must always agree with a from-scratch recount (Section IV-C's
// "trivial to calculate tri_cnt incrementally" claim, tested).
#include <gtest/gtest.h>

#include "graph/dynamic_graph.h"
#include "graph/generators.h"
#include "graph/triangle.h"
#include "support/rng.h"

namespace graphpi {
namespace {

TEST(DynamicGraph, BasicInsertAndRemove) {
  DynamicGraph g(4);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1));  // duplicate
  EXPECT_FALSE(g.add_edge(2, 2));  // self loop
  EXPECT_TRUE(g.add_edge(1, 2));
  EXPECT_EQ(g.triangle_count(), 0u);
  EXPECT_TRUE(g.add_edge(0, 2));  // closes the triangle
  EXPECT_EQ(g.triangle_count(), 1u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_TRUE(g.remove_edge(0, 2));
  EXPECT_EQ(g.triangle_count(), 0u);
  EXPECT_FALSE(g.remove_edge(0, 2));  // already gone
}

TEST(DynamicGraph, SeededFromStaticGraph) {
  const Graph base = clustered_power_law(80, 350, 2.3, 0.4, 5);
  DynamicGraph dyn(base);
  EXPECT_EQ(dyn.edge_count(), base.edge_count());
  EXPECT_EQ(dyn.triangle_count(), base.triangle_count());
  const Graph snap = dyn.snapshot();
  EXPECT_EQ(snap.raw_offsets(), base.raw_offsets());
  EXPECT_EQ(snap.raw_neighbors(), base.raw_neighbors());
}

TEST(DynamicGraph, IncrementalTrianglesMatchRecountUnderChurn) {
  support::Xoshiro256StarStar rng(99);
  DynamicGraph dyn(40);
  for (int step = 0; step < 600; ++step) {
    const auto u = static_cast<VertexId>(rng.bounded(40));
    const auto v = static_cast<VertexId>(rng.bounded(40));
    if (rng.chance(0.7)) {
      dyn.add_edge(u, v);
    } else {
      dyn.remove_edge(u, v);
    }
    if (step % 60 == 0) {
      const Graph snap = dyn.snapshot();
      EXPECT_EQ(dyn.triangle_count(), count_triangles(snap))
          << "step " << step;
      EXPECT_TRUE(snap.validate());
    }
  }
  const Graph final_snap = dyn.snapshot();
  EXPECT_EQ(dyn.triangle_count(), count_triangles(final_snap));
}

TEST(DynamicGraph, SnapshotCarriesTriangleCountToPerfModel) {
  DynamicGraph dyn(10);
  dyn.add_edge(0, 1);
  dyn.add_edge(1, 2);
  dyn.add_edge(0, 2);
  dyn.add_edge(2, 3);
  const Graph snap = dyn.snapshot();
  // triangle_count() must return the transferred value without recount.
  EXPECT_EQ(snap.triangle_count(), 1u);
}

TEST(DynamicGraph, VertexRangeGrowsOnDemand) {
  DynamicGraph dyn;
  EXPECT_TRUE(dyn.add_edge(3, 7));
  EXPECT_EQ(dyn.vertex_count(), 8u);
  EXPECT_EQ(dyn.degree(7), 1u);
  EXPECT_FALSE(dyn.has_edge(0, 1));
  EXPECT_TRUE(dyn.has_edge(7, 3));
}

}  // namespace
}  // namespace graphpi
