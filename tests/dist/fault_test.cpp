// Fault-injection and wire-hardening tests (dist/comm.h):
//  * CRC32 known-answer + guaranteed detection of short burst errors,
//  * seeded fuzz over the wire codec — mutated / truncated / garbage
//    payloads never crash try_decode, they decode-fail (or parse as some
//    other well-formed message, which the frame CRC screens out first),
//  * Channel fault accounting and idle() consistency under drop/duplicate,
//  * ReliableChannel exactly-once delivery under heavy injected faults,
//  * the sharded runtime producing bit-identical counts under a nonzero
//    FaultPlan, with the recovery counters surfaced through ClusterStats.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/graphpi.h"
#include "dist/comm.h"
#include "graph/generators.h"

namespace graphpi::dist {
namespace {

TEST(Crc32, KnownAnswer) {
  // The IEEE 802.3 check value: CRC32("123456789") = 0xCBF43926.
  const std::string s = "123456789";
  const std::vector<std::uint8_t> bytes(s.begin(), s.end());
  EXPECT_EQ(crc32(bytes), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(Crc32, DetectsEveryShortBurstError) {
  // CRC32 detects all burst errors up to 32 bits, so ANY 1–3 byte
  // corruption of a framed payload (what FaultPlan injects) must change
  // the checksum — the reliability layer's discard-and-retransmit path
  // never sees a false intact frame from these faults.
  std::mt19937_64 rng(7);
  std::vector<std::uint8_t> frame(64);
  for (auto& b : frame) b = static_cast<std::uint8_t>(rng());
  const std::uint32_t good = crc32(frame);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> bad = frame;
    const std::size_t pos = rng() % (bad.size() - 3);
    const int burst = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < burst; ++i)
      bad[pos + static_cast<std::size_t>(i)] ^=
          static_cast<std::uint8_t>(1 + rng() % 255);
    EXPECT_NE(crc32(bad), good) << "trial " << trial;
  }
}

ContinuationMsg sample_continuation() {
  ContinuationMsg msg;
  msg.trie_node = 5;
  msg.target = ContinuationMsg::Target::kIepChain;
  msg.item = 2;
  msg.depth_limit = 3;
  msg.mask = 0xdeadbeefcafe;
  msg.folded = 0b101;
  msg.has_partial = true;
  msg.mapped = {4, 9, 17};
  msg.partial = {1, 2, 3, 5, 8, 13};
  msg.done_sets = {{2, 4, 6}, {10, 20}};
  return msg;
}

TEST(WireFuzz, MutatedContinuationsNeverCrash) {
  const std::vector<std::uint8_t> valid = sample_continuation().encode();
  {
    ContinuationMsg out;
    ASSERT_TRUE(ContinuationMsg::try_decode(valid, out));
    EXPECT_EQ(out.mapped, sample_continuation().mapped);
    EXPECT_EQ(out.done_sets, sample_continuation().done_sets);
  }
  std::mt19937_64 rng(0xF00D);
  for (int trial = 0; trial < 20000; ++trial) {
    std::vector<std::uint8_t> bytes = valid;
    const int mutations = 1 + static_cast<int>(rng() % 8);
    for (int i = 0; i < mutations; ++i)
      bytes[rng() % bytes.size()] ^= static_cast<std::uint8_t>(1 + rng() % 255);
    if (rng() % 4 == 0) bytes.resize(rng() % (bytes.size() + 1));  // truncate
    ContinuationMsg out;
    // Must return (true or false), never read out of bounds or throw.
    (void)ContinuationMsg::try_decode(bytes, out);
  }
}

TEST(WireFuzz, MutatedPartialCountsNeverCrash) {
  PartialCountsMsg msg;
  msg.sums = {10, 0, 123456789012345ull, 7};
  msg.tasks = 42;
  const std::vector<std::uint8_t> valid = msg.encode();
  {
    PartialCountsMsg out;
    ASSERT_TRUE(PartialCountsMsg::try_decode(valid, out));
    EXPECT_EQ(out.sums, msg.sums);
    EXPECT_EQ(out.tasks, 42u);
  }
  std::mt19937_64 rng(0xBEEF);
  for (int trial = 0; trial < 20000; ++trial) {
    std::vector<std::uint8_t> bytes = valid;
    const int mutations = 1 + static_cast<int>(rng() % 8);
    for (int i = 0; i < mutations; ++i)
      bytes[rng() % bytes.size()] ^= static_cast<std::uint8_t>(1 + rng() % 255);
    if (rng() % 4 == 0) bytes.resize(rng() % (bytes.size() + 1));
    PartialCountsMsg out;
    (void)PartialCountsMsg::try_decode(bytes, out);
  }
}

TEST(WireFuzz, GarbageBuffersNeverCrash) {
  std::mt19937_64 rng(0xACE);
  for (int trial = 0; trial < 20000; ++trial) {
    std::vector<std::uint8_t> bytes(rng() % 96);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    ContinuationMsg c;
    PartialCountsMsg p;
    (void)ContinuationMsg::try_decode(bytes, c);
    (void)PartialCountsMsg::try_decode(bytes, p);
  }
}

TEST(WireReaderHardening, UnderrunLatchesInsteadOfOverreading) {
  const std::vector<std::uint8_t> three = {1, 2, 3};
  WireReader r(three);
  EXPECT_EQ(r.u16(), 0x0201u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.u32(), 0u);  // only 1 byte left: latches failed
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u64(), 0u);  // stays failed, still no overread
  EXPECT_FALSE(r.done());
}

TEST(WireReaderHardening, OversizedLengthPrefixFails) {
  // A length prefix claiming more elements than bytes remain must fail
  // cleanly instead of reserving gigabytes or reading past the end.
  WireWriter w;
  w.u32(0xffffffffu);  // "4 billion vertices follow"
  const std::vector<std::uint8_t> bytes = w.take();
  WireReader r(bytes);
  std::vector<VertexId> out;
  r.vertex_vec(out);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(out.empty());
}

TEST(ChannelFaults, AccountingAndIdleStayConsistent) {
  const FaultPlan plan = FaultPlan::uniform(/*seed=*/99, /*drop=*/0.3,
                                            /*duplicate=*/0.3,
                                            /*reorder=*/0.2, /*corrupt=*/0.3);
  Channel channel(2, plan);
  EXPECT_TRUE(channel.idle());
  constexpr int kSends = 2000;
  for (int i = 0; i < kSends; ++i)
    channel.send(0, 1, MessageKind::kContinuation,
                 {static_cast<std::uint8_t>(i), 1, 2, 3});
  const CommStats& stats = channel.stats();
  EXPECT_EQ(stats.messages, kSends);
  EXPECT_GT(stats.injected_drops, 0u);
  EXPECT_GT(stats.injected_duplicates, 0u);
  EXPECT_GT(stats.injected_reorders, 0u);
  EXPECT_GT(stats.injected_corruptions, 0u);

  // Drain: delivered = sent - dropped + duplicated, and receive() must
  // stay well-behaved past the nominal send count (no underflow, no
  // phantom messages) no matter how many copies the plan queued.
  EXPECT_FALSE(channel.idle());
  std::uint64_t delivered = 0;
  Message msg;
  while (channel.receive(1, msg)) ++delivered;
  EXPECT_EQ(delivered,
            kSends - stats.injected_drops + stats.injected_duplicates);
  EXPECT_TRUE(channel.idle());
  EXPECT_FALSE(channel.receive(1, msg));
  EXPECT_FALSE(channel.receive(0, msg));
  EXPECT_TRUE(channel.idle());
}

TEST(ChannelFaults, DeterministicForAGivenSeed) {
  auto run = [] {
    Channel channel(2, FaultPlan::uniform(1234, 0.2, 0.2, 0.2, 0.2));
    for (int i = 0; i < 500; ++i)
      channel.send(0, 1, MessageKind::kContinuation,
                   {static_cast<std::uint8_t>(i), 9, 9});
    std::vector<std::vector<std::uint8_t>> got;
    Message msg;
    while (channel.receive(1, msg)) got.push_back(msg.payload);
    return got;
  };
  EXPECT_EQ(run(), run());
}

TEST(ReliableChannel, ExactlyOnceUnderHeavyFaults) {
  const FaultPlan plan = FaultPlan::uniform(/*seed=*/4242, /*drop=*/0.25,
                                            /*duplicate=*/0.25,
                                            /*reorder=*/0.25,
                                            /*corrupt=*/0.25);
  ReliableChannel channel(2, plan);
  constexpr std::uint32_t kMessages = 400;
  std::map<std::uint32_t, int> received;
  for (std::uint32_t i = 0; i < kMessages; ++i) {
    WireWriter w;
    w.u32(i);
    const int from = static_cast<int>(i % 2);
    channel.send(from, 1 - from, MessageKind::kContinuation, w.take());
  }
  Message msg;
  for (int round = 0; round < 1000000 && !channel.idle(); ++round) {
    channel.tick();
    for (int node = 0; node < 2; ++node) {
      (void)channel.service_retransmits(node);
      while (channel.receive(node, msg)) {
        WireReader r(msg.payload);
        ++received[r.u32()];
        EXPECT_TRUE(r.done());
      }
    }
  }
  EXPECT_TRUE(channel.idle());
  ASSERT_EQ(received.size(), kMessages);  // every payload arrived...
  for (const auto& [id, copies] : received)
    EXPECT_EQ(copies, 1) << "payload " << id;  // ...exactly once

  // With all four fault kinds at 25%, every recovery mechanism fired.
  const ReliabilityStats& rel = channel.reliability_stats();
  EXPECT_EQ(rel.data_frames_sent, kMessages);
  EXPECT_GT(rel.retransmits, 0u);
  EXPECT_GT(rel.corrupt_frames_detected, 0u);
  EXPECT_GT(rel.duplicates_suppressed, 0u);
  EXPECT_GT(rel.acks_sent, 0u);
}

TEST(ReliableChannel, FaultFreePassThrough) {
  ReliableChannel channel(3);
  WireWriter w;
  w.u64(0x1122334455667788ull);
  channel.send(2, 0, MessageKind::kPartialCounts, w.take());
  Message msg;
  ASSERT_TRUE(channel.receive(0, msg));
  EXPECT_EQ(msg.kind, MessageKind::kPartialCounts);
  EXPECT_EQ(msg.from, 2);
  WireReader r(msg.payload);
  EXPECT_EQ(r.u64(), 0x1122334455667788ull);
  EXPECT_TRUE(r.done());
  // The data frame is acked lazily by the next receive sweep on the
  // sender's side; drain it so idle() holds.
  while (channel.receive(2, msg)) {
  }
  EXPECT_TRUE(channel.idle());
  EXPECT_EQ(channel.reliability_stats().retransmits, 0u);
  EXPECT_EQ(channel.reliability_stats().corrupt_frames_detected, 0u);
}

TEST(DistributedFaults, CountsBitIdenticalUnderInjectedFaults) {
  // The acceptance shape: a 3-node sharded run under a seeded fault plan
  // with drop, duplicate, and corrupt all nonzero produces EXACTLY the
  // serial counts, and the recovery counters prove faults really fired.
  const Graph graph = rmat(7, 650, 101);
  const GraphPi engine(graph);
  const std::vector<Pattern> patterns = {patterns::house(),
                                         patterns::pentagon(),
                                         patterns::clique(4)};
  const std::vector<Count> want = engine.count_batch(patterns);

  MatchOptions options;
  options.backend = Backend::kDistributed;
  options.nodes = 3;
  options.faults = FaultPlan::uniform(/*seed=*/7, /*drop=*/0.08,
                                      /*duplicate=*/0.08, /*reorder=*/0.05,
                                      /*corrupt=*/0.08);
  ClusterStats stats;
  options.cluster_stats = &stats;
  const std::vector<Count> got = engine.count_batch(patterns, options);
  EXPECT_EQ(got, want);
  EXPECT_GT(stats.injected_drops, 0u);
  EXPECT_GT(stats.injected_duplicates, 0u);
  EXPECT_GT(stats.injected_corruptions, 0u);
  EXPECT_GT(stats.retransmits, 0u);
  EXPECT_GT(stats.corrupt_frames_detected, 0u);
  EXPECT_GT(stats.duplicates_suppressed, 0u);
  EXPECT_EQ(stats.decode_failures, 0u);  // CRC screens corruption first
}

TEST(ChannelThreading, ConcurrentSendersKeepAccountingConsistent) {
  // Channel::send from many threads at once (the async runtime's shape):
  // the atomic counters must add up exactly and per-sender attribution
  // must not bleed across threads.
  constexpr int kNodes = 4;
  constexpr int kSendsPerThread = 3000;
  Channel channel(kNodes);
  std::vector<std::thread> senders;
  for (int from = 0; from < kNodes; ++from)
    senders.emplace_back([&channel, from] {
      for (int i = 0; i < kSendsPerThread; ++i)
        channel.send(from, (from + 1 + i) % kNodes,
                     MessageKind::kContinuation,
                     {static_cast<std::uint8_t>(i), 0xab});
    });
  for (auto& t : senders) t.join();
  const CommStats stats = channel.stats();
  EXPECT_EQ(stats.messages, kNodes * kSendsPerThread);
  EXPECT_EQ(stats.bytes, kNodes * kSendsPerThread * 2u);
  ASSERT_EQ(stats.sent_messages_per_node.size(), kNodes);
  for (int n = 0; n < kNodes; ++n)
    EXPECT_EQ(stats.sent_messages_per_node[static_cast<std::size_t>(n)],
              kSendsPerThread)
        << "sender " << n;
  std::uint64_t drained = 0;
  Message msg;
  for (int n = 0; n < kNodes; ++n)
    while (channel.receive(n, msg)) ++drained;
  EXPECT_EQ(drained, kNodes * kSendsPerThread);
  EXPECT_TRUE(channel.idle());
}

TEST(ChannelThreading, ConcurrentFaultySendersConserveMessages) {
  // With the fault RNG shared across threads the exact fault SEQUENCE is
  // schedule-dependent, but conservation must still hold: delivered ==
  // sent - dropped + duplicated, and idle() agrees after the drain.
  constexpr int kThreads = 4;
  constexpr int kSendsPerThread = 2000;
  Channel channel(2, FaultPlan::uniform(/*seed=*/55, /*drop=*/0.2,
                                        /*duplicate=*/0.2, /*reorder=*/0.1,
                                        /*corrupt=*/0.2));
  std::vector<std::thread> senders;
  for (int t = 0; t < kThreads; ++t)
    senders.emplace_back([&channel] {
      for (int i = 0; i < kSendsPerThread; ++i)
        channel.send(0, 1, MessageKind::kContinuation,
                     {static_cast<std::uint8_t>(i), 1, 2, 3});
    });
  for (auto& t : senders) t.join();
  const CommStats stats = channel.stats();
  EXPECT_EQ(stats.messages, kThreads * kSendsPerThread);
  std::uint64_t delivered = 0;
  Message msg;
  while (channel.receive(1, msg)) ++delivered;
  EXPECT_EQ(delivered, kThreads * kSendsPerThread - stats.injected_drops +
                           stats.injected_duplicates);
  EXPECT_TRUE(channel.idle());
}

TEST(ReliableChannelThreading, ExactlyOnceWithConcurrentEndpoints) {
  // Two threads drive the two endpoints of a faulty reliable link
  // simultaneously — sends, receives, and retransmit service all
  // interleave. Every payload must still arrive exactly once per side.
  const FaultPlan plan = FaultPlan::uniform(/*seed=*/808, /*drop=*/0.15,
                                            /*duplicate=*/0.15,
                                            /*reorder=*/0.15,
                                            /*corrupt=*/0.15);
  ReliableChannel channel(2, plan);
  constexpr std::uint32_t kPerSide = 300;
  std::array<std::map<std::uint32_t, int>, 2> received;
  std::array<std::thread, 2> endpoints;
  for (int node = 0; node < 2; ++node)
    endpoints[static_cast<std::size_t>(node)] = std::thread([&, node] {
      for (std::uint32_t i = 0; i < kPerSide; ++i) {
        WireWriter w;
        w.u32(i);
        channel.send(node, 1 - node, MessageKind::kContinuation, w.take());
      }
      Message msg;
      auto& got = received[static_cast<std::size_t>(node)];
      // Keep servicing until this side holds every payload and the link
      // has globally drained (the peer may still need our acks).
      while (got.size() < kPerSide || !channel.idle()) {
        channel.tick();
        (void)channel.service_retransmits(node);
        while (channel.receive(node, msg)) {
          WireReader r(msg.payload);
          ++got[r.u32()];
          EXPECT_TRUE(r.done());
        }
        std::this_thread::yield();
      }
    });
  for (auto& t : endpoints) t.join();
  for (int node = 0; node < 2; ++node) {
    ASSERT_EQ(received[static_cast<std::size_t>(node)].size(), kPerSide)
        << "node " << node;
    for (const auto& [id, copies] : received[static_cast<std::size_t>(node)])
      EXPECT_EQ(copies, 1) << "node " << node << " payload " << id;
  }
  EXPECT_TRUE(channel.idle());
}

TEST(DistributedFaults, AsyncCountsBitIdenticalUnderInjectedFaults) {
  // The async executor shares the fault RNG across worker threads, so
  // WHICH frames misbehave is schedule-dependent — but the reliability
  // layer masks all of it: counts stay exactly the serial answer across
  // node counts and pool sizes.
  const Graph graph = rmat(7, 650, 103);
  const GraphPi engine(graph);
  const std::vector<Pattern> patterns = {patterns::house(),
                                         patterns::pentagon()};
  const std::vector<Count> want = engine.count_batch(patterns);

  for (int nodes : {2, 4}) {
    for (int workers : {1, 2}) {
      MatchOptions options;
      options.backend = Backend::kDistributed;
      options.nodes = nodes;
      options.dist_exec = ExecMode::kAsync;
      options.dist_workers = workers;
      options.faults = FaultPlan::uniform(/*seed=*/11, /*drop=*/0.05,
                                          /*duplicate=*/0.05,
                                          /*reorder=*/0.03, /*corrupt=*/0.05);
      ClusterStats stats;
      options.cluster_stats = &stats;
      EXPECT_EQ(engine.count_batch(patterns, options), want)
          << "nodes=" << nodes << " workers=" << workers;
      EXPECT_GT(stats.injected_drops + stats.injected_duplicates +
                    stats.injected_corruptions,
                0u)
          << "nodes=" << nodes << " workers=" << workers;
    }
  }
}

}  // namespace
}  // namespace graphpi::dist
