// Shard construction invariants: ownership partitions, the ghost halo,
// global-id CSR views, local<->global remapping, poisoning, and the
// replication accounting the distributed runtime's isolation rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "dist/shard.h"
#include "graph/generators.h"
#include "test_util.h"

namespace graphpi::dist {
namespace {

Graph test_graph() { return clustered_power_law(80, 320, 2.3, 0.5, 77); }

TEST(Shard, PartitionCoversEveryVertexExactlyOnce) {
  const Graph g = test_graph();
  for (const auto strategy :
       {PartitionStrategy::kHash, PartitionStrategy::kRange}) {
    for (int nodes : {1, 2, 3, 7}) {
      const std::vector<int> owner = partition_owners(g, nodes, strategy);
      ASSERT_EQ(owner.size(), g.vertex_count());
      std::vector<std::uint32_t> per_node(static_cast<std::size_t>(nodes), 0);
      for (int o : owner) {
        ASSERT_GE(o, 0);
        ASSERT_LT(o, nodes);
        ++per_node[static_cast<std::size_t>(o)];
      }
      std::uint32_t total = 0;
      for (auto c : per_node) total += c;
      EXPECT_EQ(total, g.vertex_count()) << to_string(strategy);
    }
  }
}

TEST(Shard, RangePartitionIsContiguousAndSlotBalanced) {
  const Graph g = test_graph();
  const int nodes = 4;
  const std::vector<int> owner =
      partition_owners(g, nodes, PartitionStrategy::kRange);
  std::vector<std::uint64_t> slots(static_cast<std::size_t>(nodes), 0);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (v > 0) EXPECT_GE(owner[v], owner[v - 1]);  // contiguous ranges
    slots[static_cast<std::size_t>(owner[v])] += g.degree(v);
  }
  // Degree-balanced: no node holds more than twice the fair share plus
  // one vertex's worth of slack (the greedy cut can overshoot by at most
  // the degree of the boundary vertex).
  const std::uint64_t fair = g.directed_edge_count() / nodes;
  for (std::uint64_t s : slots)
    EXPECT_LE(s, 2 * fair + g.max_degree());
}

TEST(Shard, HashPartitionIsDeterministic) {
  const Graph g = test_graph();
  EXPECT_EQ(partition_owners(g, 5, PartitionStrategy::kHash),
            partition_owners(g, 5, PartitionStrategy::kHash));
}

TEST(Shard, ResidencyIsOwnedPlusHaloAndViewsMatchParent) {
  const Graph g = test_graph();
  ShardOptions options;
  options.nodes = 3;
  for (const auto strategy :
       {PartitionStrategy::kHash, PartitionStrategy::kRange}) {
    options.strategy = strategy;
    const ShardedGraph sharded(g, options);
    for (int n = 0; n < sharded.nodes(); ++n) {
      const Shard& shard = sharded.shard(n);
      // Expected resident set: owned + neighbors of owned.
      std::set<VertexId> expected;
      for (VertexId v = 0; v < g.vertex_count(); ++v) {
        if (sharded.owner(v) != n) continue;
        expected.insert(v);
        for (VertexId w : g.neighbors(v)) expected.insert(w);
      }
      ASSERT_EQ(shard.resident_count(), expected.size());
      for (VertexId v = 0; v < g.vertex_count(); ++v) {
        ASSERT_EQ(shard.is_resident(v), expected.count(v) > 0);
        if (!shard.is_resident(v)) continue;
        // Remap roundtrip and exact adjacency replication.
        ASSERT_EQ(shard.global_id(shard.local_id(v)), v);
        const auto got = shard.neighbors(v);
        const auto want = g.neighbors(v);
        ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(),
                               want.end()))
            << "vertex " << v << " node " << n;
      }
      EXPECT_EQ(shard.owned_count() + shard.ghost_count(),
                shard.resident_count());
    }
  }
}

TEST(Shard, NonResidentRowsAreEmptyAndCheckedAccessThrows) {
  const Graph g = test_graph();
  ShardOptions options;
  options.nodes = 3;
  const ShardedGraph sharded(g, options);
  bool saw_nonresident = false;
  for (int n = 0; n < sharded.nodes(); ++n) {
    const Shard& shard = sharded.shard(n);
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
      if (shard.is_resident(v)) continue;
      saw_nonresident = true;
      EXPECT_TRUE(shard.view().neighbors(v).empty());
      EXPECT_THROW((void)shard.neighbors(v), std::logic_error);
      EXPECT_EQ(shard.local_id(v), Shard::kNotResident);
    }
  }
  EXPECT_TRUE(saw_nonresident);  // 3-way split must drop something
}

TEST(Shard, PoisonFillsNonResidentRowsOnly) {
  const Graph g = test_graph();
  ShardOptions options;
  options.nodes = 3;
  options.poison_nonresident = true;
  const ShardedGraph sharded(g, options);
  for (int n = 0; n < sharded.nodes(); ++n) {
    const Shard& shard = sharded.shard(n);
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
      const auto row = shard.view().neighbors(v);
      if (shard.is_resident(v)) {
        const auto want = g.neighbors(v);
        EXPECT_TRUE(
            std::equal(row.begin(), row.end(), want.begin(), want.end()));
      } else {
        EXPECT_FALSE(row.empty());  // garbage, loudly present
      }
    }
  }
}

TEST(Shard, StatsAccountOwnershipAndReplication) {
  const Graph g = test_graph();
  ShardOptions options;
  options.nodes = 4;
  const ShardedGraph sharded(g, options);
  const auto& stats = sharded.stats();
  std::uint64_t owned_total = 0;
  for (std::size_t n = 0; n < stats.owned_per_node.size(); ++n)
    owned_total += stats.owned_per_node[n];
  EXPECT_EQ(owned_total, g.vertex_count());
  // Halos replicate boundary rows, so a multi-way split of a connected
  // graph stores strictly more than the parent.
  EXPECT_GT(stats.replication_factor, 1.0);
}

TEST(Shard, SingleNodeShardIsTheWholeGraph) {
  const Graph g = erdos_renyi(40, 160, 9);
  const ShardedGraph sharded(g, ShardOptions{.nodes = 1});
  const Shard& shard = sharded.shard(0);
  EXPECT_EQ(shard.owned_count(), g.vertex_count());
  EXPECT_EQ(shard.ghost_count(), 0u);
  EXPECT_DOUBLE_EQ(sharded.stats().replication_factor, 1.0);
}

}  // namespace
}  // namespace graphpi::dist
