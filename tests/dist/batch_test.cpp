// Sharded distributed runtime: dist-vs-serial equality across node
// counts, partition strategies and kernel backends; shard isolation under
// poisoned non-resident adjacency; the shipped-candidate byte economy;
// and batch == per-pattern on Backend::kDistributed (the mirror of
// tests/engine/batch_test.cpp the ISSUE's acceptance criteria name).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "api/graphpi.h"
#include "dist/runtime.h"
#include "dist/shard.h"
#include "dist/simulator.h"
#include "engine/forest.h"
#include "graph/vertex_set.h"
#include "test_util.h"

namespace graphpi {
namespace {

using dist::ClusterOptions;
using dist::ClusterStats;
using dist::PartitionStrategy;

std::vector<Pattern> boundary_patterns() {
  return {patterns::clique(4), patterns::house(), patterns::pentagon(),
          patterns::rectangle(), patterns::path(4)};
}

TEST(DistBatch, MatchesSerialAcrossNodesStrategiesAndKernels) {
  const Graph g = clustered_power_law(70, 280, 2.2, 0.5, 21);
  const GraphPi engine(g);
  for (const Pattern& p : boundary_patterns()) {
    const Configuration config = engine.plan(p);
    const Count expected = Matcher(g, config).count();
    for (bool scalar : {false, true}) {
      force_scalar_kernels(scalar);
      for (const auto strategy :
           {PartitionStrategy::kHash, PartitionStrategy::kRange}) {
        for (int nodes : {1, 2, 3, 7}) {
          ClusterOptions options;
          options.nodes = nodes;
          options.partition = strategy;
          EXPECT_EQ(dist::distributed_count(g, config, options), expected)
              << p.to_string() << " nodes=" << nodes << " scalar=" << scalar
              << " strategy=" << dist::to_string(strategy);
        }
      }
      force_scalar_kernels(false);
    }
  }
}

TEST(DistBatch, PoisonedNonResidentAdjacencyDoesNotChangeCounts) {
  // THE shard-isolation assertion: every non-resident row is filled with
  // garbage; counts stay bit-identical to the serial engine, so no node
  // ever read adjacency outside its own shard.
  const Graph g = clustered_power_law(70, 280, 2.2, 0.5, 22);
  const GraphPi engine(g);
  const std::vector<Pattern> ps = boundary_patterns();
  std::vector<Count> expected;
  for (const Pattern& p : ps) expected.push_back(engine.count(p));
  const PlanForest forest = engine.plan_batch(ps);
  for (const auto strategy :
       {PartitionStrategy::kHash, PartitionStrategy::kRange}) {
    for (int nodes : {2, 3}) {
      dist::ShardOptions shard_options;
      shard_options.nodes = nodes;
      shard_options.strategy = strategy;
      shard_options.poison_nonresident = true;
      const dist::ShardedGraph sharded(g, shard_options);
      EXPECT_EQ(dist::distributed_count_batch(sharded, forest), expected)
          << "nodes=" << nodes << " strategy=" << dist::to_string(strategy);
    }
  }
}

TEST(DistBatch, BoundaryCrossingPatternShipsCandidateBytes) {
  // The pentagon's cycle-closing walk leaves the 1-hop halo, so a
  // multi-node run must ship continuations — and some of them carry
  // in-flight candidate sets ("candidates travel").
  const Graph g = clustered_power_law(70, 280, 2.2, 0.5, 23);
  const GraphPi engine(g);
  const Configuration config = engine.plan(patterns::pentagon());
  const Count expected = Matcher(g, config).count();
  for (const auto strategy :
       {PartitionStrategy::kHash, PartitionStrategy::kRange}) {
    ClusterOptions options;
    options.nodes = 3;
    options.partition = strategy;
    ClusterStats stats;
    EXPECT_EQ(dist::distributed_count(g, config, options, &stats), expected);
    EXPECT_GT(stats.continuation_messages, 0u)
        << dist::to_string(strategy);
    EXPECT_GT(stats.continuation_bytes, 0u) << dist::to_string(strategy);
    EXPECT_GT(stats.shipped_set_vertices, 0u) << dist::to_string(strategy);
    // Every node reports its partial counts to the master exactly once.
    EXPECT_EQ(stats.count_messages, 2u);
    // Transport traffic = data frames + their reliability-layer acks
    // (one ack per intact data frame on a fault-free channel).
    EXPECT_EQ(stats.messages, stats.continuation_messages +
                                  stats.count_messages + stats.ack_messages);
    EXPECT_EQ(stats.ack_messages,
              stats.continuation_messages + stats.count_messages);
    EXPECT_EQ(stats.retransmits, 0u);
    EXPECT_EQ(stats.corrupt_frames_detected, 0u);
    EXPECT_EQ(stats.tasks_per_node.size(), 3u);
    EXPECT_GT(stats.replication_factor, 1.0);
  }
}

TEST(DistBatch, BatchEqualsPerPatternOnDistributedBackend) {
  // Mirror of engine/batch_test: count_batch on Backend::kDistributed no
  // longer falls back — it runs ONE sharded batch traversal — and must
  // equal both the serial per-pattern engine and per-pattern distributed
  // runs.
  const std::vector<Graph> graphs = {rmat(7, 600, 5), erdos_renyi(70, 300, 6)};
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const GraphPi engine(graphs[gi]);
    for (int k : {3, 4}) {
      const auto motifs = patterns::connected_motifs(k);
      std::vector<Count> expected;
      for (const Pattern& p : motifs) expected.push_back(engine.count(p));
      for (bool scalar : {false, true}) {
        force_scalar_kernels(scalar);
        for (int nodes : {2, 3}) {
          MatchOptions opt;
          opt.backend = Backend::kDistributed;
          opt.nodes = nodes;
          const std::vector<Count> batch = engine.count_batch(motifs, opt);
          ASSERT_EQ(batch.size(), motifs.size());
          for (std::size_t i = 0; i < motifs.size(); ++i) {
            EXPECT_EQ(batch[i], expected[i])
                << "graph " << gi << " k=" << k << " motif " << i
                << " scalar=" << scalar << " nodes=" << nodes;
            EXPECT_EQ(engine.count(motifs[i], opt), expected[i])
                << "per-pattern dist, graph " << gi << " k=" << k
                << " motif " << i;
          }
        }
      }
      force_scalar_kernels(false);
    }
  }
}

TEST(DistBatch, TaskDepthDoesNotChangeCounts) {
  const Graph g = clustered_power_law(60, 250, 2.3, 0.4, 24);
  const GraphPi engine(g);
  const Configuration config = engine.plan(patterns::house());
  const Count expected = Matcher(g, config).count();
  for (int depth : {1, 2, 3, 5}) {
    ClusterOptions options;
    options.nodes = 3;
    options.task_depth = depth;
    ClusterStats stats;
    EXPECT_EQ(dist::distributed_count(g, config, options, &stats), expected)
        << "task_depth=" << depth;
    EXPECT_GT(stats.total_tasks, 0u);
  }
}

TEST(DistBatch, SingleNodeRunsLocallyWithoutMessages) {
  const Graph g = erdos_renyi(50, 220, 25);
  const GraphPi engine(g);
  const auto motifs = patterns::connected_motifs(3);
  const PlanForest forest = engine.plan_batch(motifs);
  std::vector<Count> expected;
  for (const Pattern& p : motifs) expected.push_back(engine.count(p));
  ClusterOptions options;
  options.nodes = 1;
  ClusterStats stats;
  EXPECT_EQ(dist::distributed_count_batch(g, forest, options, &stats),
            expected);
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_EQ(stats.total_tasks, g.vertex_count());
  EXPECT_EQ(stats.owned_per_node, std::vector<std::uint32_t>{g.vertex_count()});
}

TEST(DistBatch, ApiStatsOutAndForestOverload) {
  const Graph g = clustered_power_law(60, 260, 2.2, 0.5, 26);
  const GraphPi engine(g);
  const auto motifs = patterns::connected_motifs(4);
  std::vector<Count> expected;
  for (const Pattern& p : motifs) expected.push_back(engine.count(p));

  MatchOptions opt;
  opt.backend = Backend::kDistributed;
  opt.nodes = 3;
  opt.partition = PartitionStrategy::kRange;
  ClusterStats stats;
  opt.cluster_stats = &stats;
  EXPECT_EQ(engine.count_batch(motifs, opt), expected);
  EXPECT_GT(stats.total_tasks, 0u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_EQ(stats.owned_per_node.size(), 3u);

  // The forest overload runs distributed directly (no fallback left).
  const PlanForest forest = engine.plan_batch(motifs);
  opt.cluster_stats = nullptr;
  EXPECT_EQ(engine.count_batch(forest, opt), expected);
}

TEST(DistBatch, CommCostModelProjectsMeasuredRun) {
  const Graph g = clustered_power_law(60, 240, 2.3, 0.5, 27);
  const GraphPi engine(g);
  const Configuration config = engine.plan(patterns::pentagon());
  ClusterOptions options;
  options.nodes = 3;
  ClusterStats stats;
  (void)dist::distributed_count(g, config, options, &stats);
  const dist::ShardSimResult sim = dist::simulate_sharded_cluster(
      stats.seconds_per_node, stats.sent_messages_per_node,
      stats.sent_bytes_per_node);
  double max_busy = 0.0;
  for (double s : stats.seconds_per_node) max_busy = std::max(max_busy, s);
  // Comm costs only ever add on top of the slowest node's compute.
  EXPECT_GE(sim.makespan_seconds, max_busy);
  // A zero-bandwidth-cost model never beats one that charges for bytes.
  dist::CommCostModel slow;
  slow.bytes_per_second = 1e3;
  const dist::ShardSimResult congested = dist::simulate_sharded_cluster(
      stats.seconds_per_node, stats.sent_messages_per_node,
      stats.sent_bytes_per_node, slow);
  EXPECT_GE(congested.makespan_seconds, sim.makespan_seconds);
}

TEST(DistBatch, WorkspacePerNodeIsReusedAcrossTasks) {
  // The sharded runtime allocates one workspace per logical node for the
  // whole run; Matcher workspace constructions must not scale with task
  // count. (The sharded executor uses its own per-node state, so the
  // global Matcher counter simply must not move at all.)
  const Graph g = erdos_renyi(60, 260, 28);
  const GraphPi engine(g);
  const Configuration config = engine.plan(patterns::house());
  const std::uint64_t before = Matcher::workspace_constructions();
  ClusterOptions options;
  options.nodes = 4;
  (void)dist::distributed_count(g, config, options);
  EXPECT_EQ(Matcher::workspace_constructions(), before);
}

TEST(DistBatch, AsyncBatchForestMatchesLockstepAndSerial) {
  // The whole prefix-sharing forest through the async executor: per-plan
  // counts bit-identical to both the serial batch engine and the
  // lockstep executor, across strategies, node counts and pool sizes.
  const Graph g = clustered_power_law(70, 280, 2.2, 0.5, 23);
  const GraphPi engine(g);
  const std::vector<Pattern> ps = boundary_patterns();
  const PlanForest forest = engine.plan_batch(ps);
  const std::vector<Count> expected = ForestExecutor(g, forest).count();
  for (const auto strategy :
       {PartitionStrategy::kHash, PartitionStrategy::kRange}) {
    for (int nodes : {2, 4, 7}) {
      ClusterOptions lockstep;
      lockstep.nodes = nodes;
      lockstep.partition = strategy;
      EXPECT_EQ(dist::distributed_count_batch(g, forest, lockstep), expected)
          << "lockstep nodes=" << nodes;
      for (int workers : {1, 4}) {
        ClusterOptions async = lockstep;
        async.exec = dist::ExecMode::kAsync;
        async.workers_per_node = workers;
        EXPECT_EQ(dist::distributed_count_batch(g, forest, async), expected)
            << "async nodes=" << nodes << " workers=" << workers
            << " strategy=" << dist::to_string(strategy);
      }
    }
  }
}

}  // namespace
}  // namespace graphpi
