// The asynchronous sharded runtime (ExecMode::kAsync): worker pools,
// bounded mailboxes with cooperative backpressure, coalesced flushes.
// Covers count equality vs the serial engine and lockstep, the
// mode-independent shipped-continuation invariant, shard isolation under
// poisoned non-resident adjacency, backpressure observability with a
// one-frame mailbox, and bounded execution (expired deadline, pre-set
// cancel, root budget) through the multi-threaded executor.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "api/graphpi.h"
#include "dist/runtime.h"
#include "dist/shard.h"
#include "support/exec_control.h"
#include "test_util.h"

namespace graphpi {
namespace {

using dist::ClusterOptions;
using dist::ClusterStats;
using dist::ExecMode;
using dist::PartitionStrategy;

ClusterOptions async_options(int nodes, int workers = 1) {
  ClusterOptions options;
  options.nodes = nodes;
  options.exec = ExecMode::kAsync;
  options.workers_per_node = workers;
  return options;
}

TEST(DistAsync, ExecModeStrings) {
  EXPECT_STREQ(dist::to_string(ExecMode::kLockstep), "lockstep");
  EXPECT_STREQ(dist::to_string(ExecMode::kAsync), "async");
  ExecMode mode = ExecMode::kLockstep;
  EXPECT_TRUE(dist::parse_exec_mode("async", mode));
  EXPECT_EQ(mode, ExecMode::kAsync);
  EXPECT_TRUE(dist::parse_exec_mode("lockstep", mode));
  EXPECT_EQ(mode, ExecMode::kLockstep);
  EXPECT_FALSE(dist::parse_exec_mode("eager", mode));
}

TEST(DistAsync, MatchesSerialAcrossNodesStrategiesAndWorkers) {
  // THE determinism sweep: async counts are bit-identical to the serial
  // engine for every node count x partition x pool size, including a
  // boundary-heavy pattern mix (cycles that must leave the halo).
  const Graph g = clustered_power_law(70, 280, 2.2, 0.5, 31);
  const GraphPi engine(g);
  for (const Pattern& p : {patterns::pentagon(), patterns::rectangle(),
                           patterns::clique(4), patterns::path(4)}) {
    const Configuration config = engine.plan(p);
    const Count expected = Matcher(g, config).count();
    for (const auto strategy :
         {PartitionStrategy::kHash, PartitionStrategy::kRange}) {
      for (int nodes : {1, 2, 4, 7}) {
        for (int workers : {1, 4}) {
          ClusterOptions options = async_options(nodes, workers);
          options.partition = strategy;
          EXPECT_EQ(dist::distributed_count(g, config, options), expected)
              << p.to_string() << " nodes=" << nodes << " workers=" << workers
              << " strategy=" << dist::to_string(strategy);
        }
      }
    }
  }
}

TEST(DistAsync, ShippedContinuationsMatchLockstep) {
  // What a node ships is decided by residency alone (walk-deterministic),
  // so the shipped PAYLOAD count is identical in both exec modes even
  // though async coalesces many payloads into few frames.
  const Graph g = clustered_power_law(70, 280, 2.2, 0.5, 32);
  const GraphPi engine(g);
  const Configuration config = engine.plan(patterns::pentagon());
  const Count expected = Matcher(g, config).count();

  ClusterOptions lockstep;
  lockstep.nodes = 4;
  ClusterStats ls;
  EXPECT_EQ(dist::distributed_count(g, config, lockstep, &ls), expected);

  ClusterOptions async = async_options(4);
  ClusterStats as;
  EXPECT_EQ(dist::distributed_count(g, config, async, &as), expected);

  EXPECT_GT(ls.shipped_continuations, 0u);
  EXPECT_EQ(ls.shipped_continuations, as.shipped_continuations);
  EXPECT_EQ(ls.shipped_set_vertices, as.shipped_set_vertices);
  // Coalescing must actually compress the frame count.
  EXPECT_LT(as.continuation_messages, ls.continuation_messages);
  EXPECT_GT(as.coalesced_frames, 0u);
  // The strict frame economy (one continuation frame per flush; every
  // payload travels inside a batch frame or as a single-payload plain
  // frame) holds exactly when nothing needed retransmitting — the normal
  // fault-free case; a spurious RTO merely repeats frames.
  if (ls.retransmits == 0)
    EXPECT_EQ(ls.continuation_messages, ls.shipped_continuations);
  if (as.retransmits == 0) {
    EXPECT_EQ(as.flushes, as.continuation_messages);
    EXPECT_EQ(as.coalesced_payloads +
                  (as.continuation_messages - as.coalesced_frames),
              as.shipped_continuations)
        << "every shipped payload travels exactly once";
  }
}

TEST(DistAsync, PoisonedNonResidentAdjacencyDoesNotChangeCounts) {
  // Shard isolation holds under concurrency: no worker ever reads
  // adjacency outside its node's shard.
  const Graph g = clustered_power_law(70, 280, 2.2, 0.5, 33);
  const GraphPi engine(g);
  const std::vector<Pattern> ps = {patterns::pentagon(), patterns::house()};
  std::vector<Count> expected;
  for (const Pattern& p : ps) expected.push_back(engine.count(p));
  const PlanForest forest = engine.plan_batch(ps);
  for (int nodes : {2, 4}) {
    dist::ShardOptions shard_options;
    shard_options.nodes = nodes;
    shard_options.poison_nonresident = true;
    const dist::ShardedGraph sharded(g, shard_options);
    for (int workers : {1, 4}) {
      EXPECT_EQ(dist::distributed_count_batch(sharded, forest,
                                              async_options(nodes, workers)),
                expected)
          << "nodes=" << nodes << " workers=" << workers;
    }
  }
}

TEST(DistAsync, OneFrameMailboxBackpressuresAndStaysExact) {
  // Worst-case mailbox: every flush but the first finds the peer full, so
  // senders must stall + drain their own inbox (the deadlock-free path)
  // — and counts still come out exact.
  const Graph g = clustered_power_law(70, 280, 2.2, 0.5, 34);
  const GraphPi engine(g);
  const Configuration config = engine.plan(patterns::pentagon());
  const Count expected = Matcher(g, config).count();
  ClusterOptions options = async_options(4);
  options.mailbox_capacity = 1;
  options.flush_payloads = 1;  // no coalescing: maximum frame pressure
  ClusterStats stats;
  EXPECT_EQ(dist::distributed_count(g, config, options, &stats), expected);
  EXPECT_GT(stats.mailbox_stalls, 0u);
  EXPECT_GE(stats.mailbox_high_water, 1u);
}

TEST(DistAsync, HaloContainedPatternShipsNothing) {
  // A star explores only the root's own adjacency — entirely inside the
  // 1-hop halo — so even the async executor moves zero continuations.
  const Graph g = clustered_power_law(70, 280, 2.2, 0.5, 35);
  const GraphPi engine(g);
  const Configuration config = engine.plan(patterns::star(4));
  const Count expected = Matcher(g, config).count();
  ClusterStats stats;
  EXPECT_EQ(dist::distributed_count(g, config, async_options(3), &stats),
            expected);
  EXPECT_EQ(stats.shipped_continuations, 0u);
  EXPECT_EQ(stats.continuation_messages, 0u);
}

TEST(DistAsync, ExpiredDeadlineStopsPromptly) {
  const Graph g = clustered_power_law(70, 280, 2.2, 0.5, 36);
  const GraphPi engine(g);
  const Configuration config = engine.plan(patterns::pentagon());
  support::ExecControl control;
  control.arm_deadline_ms(0.0);  // already past when the pool starts
  ClusterOptions options = async_options(4, 2);
  options.control = &control;
  support::RunReport report;
  (void)dist::distributed_count(g, config, options, nullptr, &report);
  EXPECT_EQ(report.status, support::RunStatus::kTimeout);
  EXPECT_EQ(report.completed_roots, 0u);
}

TEST(DistAsync, PreSetCancelStopsBeforeWork) {
  const Graph g = clustered_power_law(70, 280, 2.2, 0.5, 37);
  const GraphPi engine(g);
  const Configuration config = engine.plan(patterns::pentagon());
  std::atomic<bool> cancel{true};
  support::ExecControl control;
  control.set_cancel_flag(&cancel);
  ClusterOptions options = async_options(4, 2);
  options.control = &control;
  support::RunReport report;
  (void)dist::distributed_count(g, config, options, nullptr, &report);
  EXPECT_EQ(report.status, support::RunStatus::kCancelled);
  EXPECT_EQ(report.completed_roots, 0u);
}

TEST(DistAsync, RootBudgetStopsNearTheBudget) {
  const Graph g = clustered_power_law(70, 280, 2.2, 0.5, 38);
  const GraphPi engine(g);
  const Configuration config = engine.plan(patterns::pentagon());
  support::ExecControl control;
  control.set_root_budget(8);
  control.set_poll_stride(1);  // poll every root: tight stop latency
  ClusterOptions options = async_options(4);
  options.control = &control;
  support::RunReport report;
  (void)dist::distributed_count(g, config, options, nullptr, &report);
  EXPECT_EQ(report.status, support::RunStatus::kBudget);
  EXPECT_GE(report.completed_roots, 8u);
  EXPECT_LT(report.completed_roots,
            static_cast<std::uint64_t>(g.vertex_count()));
}

TEST(DistAsync, UnboundedRunReportsOkWithAllRoots) {
  const Graph g = clustered_power_law(70, 280, 2.2, 0.5, 39);
  const GraphPi engine(g);
  const Configuration config = engine.plan(patterns::rectangle());
  const Count expected = Matcher(g, config).count();
  support::ExecControl control;
  control.set_root_budget(1u << 30);  // armed, but never binding
  ClusterOptions options = async_options(3, 2);
  options.control = &control;
  support::RunReport report;
  EXPECT_EQ(dist::distributed_count(g, config, options, nullptr, &report),
            expected);
  EXPECT_EQ(report.status, support::RunStatus::kOk);
  EXPECT_EQ(report.completed_roots,
            static_cast<std::uint64_t>(g.vertex_count()));
}

TEST(DistAsync, ApiBackendExposesAsyncMode) {
  // The MatchOptions knobs reach the runtime through GraphPi::count.
  const Graph g = clustered_power_law(70, 280, 2.2, 0.5, 40);
  const GraphPi engine(g);
  const Pattern p = patterns::house();
  const Count expected = engine.count(p);
  MatchOptions options;
  options.backend = Backend::kDistributed;
  options.nodes = 4;
  options.dist_exec = ExecMode::kAsync;
  options.dist_workers = 2;
  ClusterStats stats;
  options.cluster_stats = &stats;
  EXPECT_EQ(engine.count(p, options), expected);
  EXPECT_GT(stats.total_tasks, 0u);
}

}  // namespace
}  // namespace graphpi
