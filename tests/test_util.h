// Shared helpers for the GraphPi test suites.
#pragma once

#include <cstdint>
#include <vector>

#include "core/pattern.h"
#include "core/pattern_library.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace graphpi::testing {

/// Small deterministic graphs exercising different topologies; every
/// cross-engine consistency test sweeps these.
inline std::vector<Graph> small_test_graphs() {
  std::vector<Graph> graphs;
  graphs.push_back(erdos_renyi(60, 240, /*seed=*/1));
  graphs.push_back(erdos_renyi(40, 320, /*seed=*/2));  // denser
  graphs.push_back(power_law(80, 300, 2.3, /*seed=*/3));
  graphs.push_back(clustered_power_law(70, 280, 2.2, 0.5, /*seed=*/4));
  graphs.push_back(complete_graph(12));
  graphs.push_back(cycle_graph(24));
  graphs.push_back(star_graph(25));
  graphs.push_back(grid_graph(6, 7));
  graphs.push_back(random_regular(50, 6, /*seed=*/5));
  return graphs;
}

/// Patterns spanning the symmetry spectrum (|Aut| from 1 to 5040).
inline std::vector<Pattern> assorted_patterns() {
  using namespace graphpi::patterns;
  return {
      clique(3),         rectangle(),     tailed_triangle(), clique(4),
      house(),           pentagon(),      hourglass(),       cycle_6_tri(),
      star(5),           path(4),         clique(5),
      evaluation_pattern(2),              evaluation_pattern(4),
  };
}

}  // namespace graphpi::testing
