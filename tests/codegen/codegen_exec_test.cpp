// End-to-end codegen integration: compile emitted kernels with the system
// compiler, load them, and compare their counts against the in-process
// engines — the "code generation and compilation" stage of Figure 3, now
// emitted from the plan IR. Covers plain and IEP plans, a multi-pattern
// forest kernel, the hub-index and no-hub graph views, the host ops table
// vs the emitted fallback kernels, and scalar vs SIMD runtime dispatch.
#include <dlfcn.h>
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include "api/graphpi.h"
#include "codegen/codegen.h"
#include "codegen/kernel_abi.h"
#include "core/configuration.h"
#include "core/pattern_library.h"
#include "engine/forest.h"
#include "engine/matcher.h"
#include "graph/generators.h"
#include "graph/vertex_set.h"

namespace graphpi {
namespace {

namespace fs = std::filesystem;

using SingleFn = unsigned long long (*)(const void* graph, const void* ops,
                                        const void* run);
using BatchFn = void (*)(const void* graph, const void* ops, const void* run,
                         unsigned long long* counts);

/// Compiles `source` into a shared object and returns the loaded symbol.
/// Returns nullptr (with a diagnostic) when no compiler is available.
void* compile_and_load(const std::string& source, const std::string& tag,
                       const std::string& symbol, void** handle_out) {
  const fs::path dir = fs::temp_directory_path();
  const fs::path cpp = dir / ("graphpi_gen_" + tag + ".cpp");
  const fs::path so = dir / ("graphpi_gen_" + tag + ".so");
  {
    std::ofstream out(cpp);
    out << source;
  }
  const std::string cmd = "g++ -O2 -shared -fPIC -std=c++17 -fopenmp -o " +
                          so.string() + " " + cpp.string() + " 2>/dev/null";
  if (std::system(cmd.c_str()) != 0) return nullptr;
  void* handle = dlopen(so.string().c_str(), RTLD_NOW);
  if (handle == nullptr) return nullptr;
  *handle_out = handle;
  return dlsym(handle, symbol.c_str());
}

Graph test_graph() { return clustered_power_law(150, 700, 2.3, 0.4, 29); }

/// Runs one loaded kernel over every execution-environment combination
/// the ABI supports and checks each against `want`.
void expect_kernel_matches(SingleFn kernel, const Graph& g, Count want,
                           const std::string& label) {
  g.ensure_hub_index();
  const codegen::KernelGraph with_hubs = codegen::make_kernel_graph(g);
  codegen::KernelGraph no_hubs = with_hubs;
  no_hubs.hub_slot = nullptr;
  no_hubs.hub_bits = nullptr;
  no_hubs.hub_words = 0;
  const codegen::KernelOps& ops = codegen::host_kernel_ops();

  EXPECT_EQ(kernel(&with_hubs, &ops, nullptr), want) << label << " hub+ops";
  EXPECT_EQ(kernel(&no_hubs, &ops, nullptr), want) << label << " nohub+ops";
  EXPECT_EQ(kernel(&with_hubs, nullptr, nullptr), want)
      << label << " hub+fallback";

  // Same kernel, explicit worker count: the OpenMP root partitioning must
  // reproduce the serial sum exactly (u64 adds commute).
  codegen::KernelRunOptions parallel;
  parallel.threads = 3;
  EXPECT_EQ(kernel(&with_hubs, &ops, &parallel), want)
      << label << " hub+ops 3 threads";

  // Same kernel, scalar dispatch: the ops table routes through the
  // runtime-selected kernel table, so forcing scalar applies to the
  // already-compiled kernel too.
  force_scalar_kernels(true);
  EXPECT_EQ(kernel(&with_hubs, &ops, nullptr), want)
      << label << " hub+ops scalar";
  force_scalar_kernels(false);
}

class CodegenExecTest
    : public ::testing::TestWithParam<std::tuple<const char*, Pattern, bool>> {
};

TEST_P(CodegenExecTest, GeneratedKernelMatchesEngine) {
  const auto& [tag, pattern, use_iep] = GetParam();
  const Graph g = test_graph();
  PlannerOptions planner;
  planner.use_iep = use_iep;
  const Configuration config =
      plan_configuration(pattern, GraphStats::of(g), planner);
  if (use_iep) {
    ASSERT_GT(config.iep.k, 0) << "expected an IEP plan for " << tag;
  }

  void* handle = nullptr;
  const auto kernel = reinterpret_cast<SingleFn>(
      compile_and_load(codegen::generate_source(config), tag,
                       "graphpi_generated_count", &handle));
  ASSERT_NE(kernel, nullptr) << "system compiler unavailable or codegen "
                                "emitted uncompilable source";

  expect_kernel_matches(kernel, g, Matcher(g, config).count(), tag);
  dlclose(handle);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, CodegenExecTest,
    ::testing::Values(
        std::make_tuple("triangle", patterns::clique(3), false),
        std::make_tuple("rectangle", patterns::rectangle(), false),
        std::make_tuple("house", patterns::house(), false),
        std::make_tuple("cycle6tri", patterns::cycle_6_tri(), false),
        std::make_tuple("clique4", patterns::clique(4), false),
        // IEP plans: suffix sets + inclusion–exclusion term products are
        // emitted inline (unsupported by the pre-IR generator).
        std::make_tuple("pentagon_iep", patterns::pentagon(), true),
        std::make_tuple("house_iep", patterns::house(), true)),
    [](const auto& info) { return std::get<0>(info.param); });

TEST(CodegenForestExec, ThreePatternForestMatchesEngines) {
  const Graph g = test_graph();
  const GraphPi engine(g);
  const std::vector<Pattern> batch = {patterns::clique(3),
                                      patterns::rectangle(),
                                      patterns::house()};
  const PlanForest forest = engine.plan_batch(batch);

  codegen::CodegenOptions opt;
  opt.function_name = "graphpi_forest_kernel";
  void* handle = nullptr;
  const auto kernel = reinterpret_cast<BatchFn>(
      compile_and_load(codegen::generate_forest_source(forest, opt),
                       "forest3", "graphpi_forest_kernel", &handle));
  ASSERT_NE(kernel, nullptr);

  // Three-way agreement: generated == ForestExecutor == Matcher, across
  // scalar and SIMD dispatch.
  const std::vector<Count> forest_counts = ForestExecutor(g, forest).count();
  g.ensure_hub_index();
  const codegen::KernelGraph view = codegen::make_kernel_graph(g);
  codegen::KernelRunOptions parallel;
  parallel.threads = 4;
  for (const bool scalar : {false, true}) {
    force_scalar_kernels(scalar);
    const codegen::KernelRunOptions* runs[] = {nullptr, &parallel};
    for (const codegen::KernelRunOptions* run : runs) {
      unsigned long long counts[3] = {};
      kernel(&view, &codegen::host_kernel_ops(), run, counts);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(counts[i], forest_counts[i])
            << "plan " << i << (scalar ? " scalar" : " simd")
            << (run != nullptr ? " parallel" : "");
        EXPECT_EQ(counts[i], engine.count(batch[i]))
            << "plan " << i << (scalar ? " scalar" : " simd")
            << (run != nullptr ? " parallel" : "");
      }
    }
  }
  force_scalar_kernels(false);
  dlclose(handle);
}

TEST(CodegenForestExec, PatternLibrarySweepInOneKernel) {
  // Every named pattern_library pattern in ONE forest kernel (one
  // compiler invocation buys library-wide coverage), planned with IEP
  // where the planner finds a valid plan. Generated counts must equal
  // the per-pattern Matcher.
  const Graph g = test_graph();
  const GraphStats stats = GraphStats::of(g);
  // cycle(6) included: the planner's order-uniformity validation
  // (core/iep.cpp) now rejects the IEP plans whose divisor only held on
  // average, so every library pattern has a trustworthy reference count.
  std::vector<Pattern> library = {
      patterns::clique(3),  patterns::rectangle(), patterns::house(),
      patterns::pentagon(), patterns::hourglass(), patterns::cycle_6_tri(),
      patterns::clique(4),  patterns::clique(5),   patterns::cycle(5),
      patterns::cycle(6),   patterns::path(4),     patterns::path(5),
      patterns::star(4),    patterns::star(5)};
  PlannerOptions planner;
  planner.use_iep = true;
  std::vector<Plan> plans;
  std::vector<Count> want;
  for (const Pattern& p : library) {
    const Configuration config = plan_configuration(p, stats, planner);
    plans.push_back(compile_plan(config));
    want.push_back(Matcher(g, config).count());
  }
  const PlanForest forest(std::move(plans));

  codegen::CodegenOptions opt;
  opt.function_name = "graphpi_sweep_kernel";
  void* handle = nullptr;
  const auto kernel = reinterpret_cast<BatchFn>(
      compile_and_load(codegen::generate_forest_source(forest, opt), "sweep",
                       "graphpi_sweep_kernel", &handle));
  ASSERT_NE(kernel, nullptr);

  g.ensure_hub_index();
  const codegen::KernelGraph view = codegen::make_kernel_graph(g);
  std::vector<unsigned long long> counts(library.size(), 0);
  kernel(&view, &codegen::host_kernel_ops(), nullptr, counts.data());
  for (std::size_t i = 0; i < library.size(); ++i)
    EXPECT_EQ(counts[i], want[i]) << "pattern " << i;
  // Whole-library kernel again, root loop split across workers.
  codegen::KernelRunOptions parallel;
  parallel.threads = 4;
  std::fill(counts.begin(), counts.end(), 0);
  kernel(&view, &codegen::host_kernel_ops(), &parallel, counts.data());
  for (std::size_t i = 0; i < library.size(); ++i)
    EXPECT_EQ(counts[i], want[i]) << "pattern " << i << " parallel";
  dlclose(handle);
}

TEST(CodegenExec, StandaloneProgramCompilesAndRuns) {
  // The standalone form (kernel + edge-list main on the emitted fallback
  // kernels) must build with nothing but a C++17 compiler and reproduce
  // the engine count — including the IEP division, which happens inside
  // the kernel.
  const Graph g = test_graph();
  PlannerOptions planner;
  planner.use_iep = true;
  const Configuration config =
      plan_configuration(patterns::house(), GraphStats::of(g), planner);
  ASSERT_GT(config.iep.k, 0);

  const fs::path dir = fs::temp_directory_path();
  const fs::path cpp = dir / "graphpi_gen_standalone.cpp";
  const fs::path bin = dir / "graphpi_gen_standalone";
  const fs::path edges = dir / "graphpi_gen_standalone_edges.txt";
  {
    std::ofstream out(cpp);
    out << codegen::generate_standalone(config);
  }
  save_edge_list(g, edges.string());
  ASSERT_EQ(std::system(("g++ -O2 -std=c++17 -o " + bin.string() + " " +
                         cpp.string() + " 2>/dev/null")
                            .c_str()),
            0)
      << "standalone program failed to compile";
  const fs::path out_file = dir / "graphpi_gen_standalone_out.txt";
  ASSERT_EQ(std::system((bin.string() + " " + edges.string() + " > " +
                         out_file.string())
                            .c_str()),
            0);
  std::ifstream result(out_file);
  unsigned long long count = 0;
  result >> count;
  EXPECT_EQ(count, Matcher(g, config).count());
}

TEST(CodegenExec, AbiVersionExported) {
  const Graph g = test_graph();
  const Configuration config = plan_configuration(
      patterns::clique(3), GraphStats::of(g), PlannerOptions{});
  void* handle = nullptr;
  const auto abi = reinterpret_cast<unsigned (*)()>(
      compile_and_load(codegen::generate_source(config), "abiprobe",
                       "graphpi_generated_count_abi", &handle));
  ASSERT_NE(abi, nullptr);
  EXPECT_EQ(abi(), codegen::kKernelAbiVersion);
  dlclose(handle);
}

}  // namespace
}  // namespace graphpi
