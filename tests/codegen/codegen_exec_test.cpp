// End-to-end codegen integration: compile the emitted kernel with the
// system compiler, load it, and compare its counts against the in-process
// engine — the "code generation and compilation" stage of Figure 3.
#include <dlfcn.h>
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "codegen/codegen.h"
#include "core/configuration.h"
#include "core/pattern_library.h"
#include "engine/matcher.h"
#include "graph/generators.h"

namespace graphpi {
namespace {

namespace fs = std::filesystem;

// The emitted symbol's C++ signature spells "unsigned long long", which
// has the same representation as EdgeIndex (std::uint64_t) on this ABI.
static_assert(sizeof(unsigned long long) == sizeof(EdgeIndex));
using KernelFn = std::uint64_t (*)(const EdgeIndex*, const VertexId*,
                                   unsigned);

/// Compiles `source` into a shared object and returns the loaded kernel.
/// Returns nullptr (with a diagnostic) when no compiler is available.
KernelFn compile_and_load(const std::string& source, const std::string& tag,
                          void** handle_out) {
  const fs::path dir = fs::temp_directory_path();
  const fs::path cpp = dir / ("graphpi_gen_" + tag + ".cpp");
  const fs::path so = dir / ("graphpi_gen_" + tag + ".so");
  {
    std::ofstream out(cpp);
    out << source;
  }
  const std::string cmd = "g++ -O2 -shared -fPIC -std=c++17 -o " +
                          so.string() + " " + cpp.string() + " 2>/dev/null";
  if (std::system(cmd.c_str()) != 0) return nullptr;
  void* handle = dlopen(so.string().c_str(), RTLD_NOW);
  if (handle == nullptr) return nullptr;
  *handle_out = handle;
  return reinterpret_cast<KernelFn>(dlsym(handle, "graphpi_generated_count"));
}

class CodegenExecTest
    : public ::testing::TestWithParam<std::tuple<const char*, Pattern>> {};

TEST_P(CodegenExecTest, GeneratedKernelMatchesEngine) {
  const auto& [tag, pattern] = GetParam();
  const Graph g = clustered_power_law(150, 700, 2.3, 0.4, 29);
  const Configuration config =
      plan_configuration(pattern, GraphStats::of(g), PlannerOptions{});

  void* handle = nullptr;
  const KernelFn kernel =
      compile_and_load(codegen::generate_source(config), tag, &handle);
  ASSERT_NE(kernel, nullptr) << "system compiler unavailable or codegen "
                                "emitted uncompilable source";

  // The generated kernel uses u64 offsets / u32 neighbors, matching CSR.
  const unsigned long long count = kernel(
      g.raw_offsets().data(), g.raw_neighbors().data(), g.vertex_count());
  EXPECT_EQ(count, Matcher(g, config).count_plain());
  dlclose(handle);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, CodegenExecTest,
    ::testing::Values(
        std::make_tuple("triangle", patterns::clique(3)),
        std::make_tuple("rectangle", patterns::rectangle()),
        std::make_tuple("house", patterns::house()),
        std::make_tuple("cycle6tri", patterns::cycle_6_tri()),
        std::make_tuple("clique4", patterns::clique(4))),
    [](const auto& info) { return std::get<0>(info.param); });

}  // namespace
}  // namespace graphpi
