// Code generator: structural checks on the emitted source.
#include <gtest/gtest.h>

#include <string>

#include "codegen/codegen.h"
#include "core/configuration.h"
#include "core/pattern_library.h"
#include "core/plan.h"
#include "graph/generators.h"

namespace graphpi {
namespace {

Configuration house_config(bool use_iep = false) {
  const Graph g = clustered_power_law(200, 900, 2.3, 0.4, 3);
  PlannerOptions planner;
  planner.use_iep = use_iep;
  return plan_configuration(patterns::house(), GraphStats::of(g), planner);
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + 1))
    ++n;
  return n;
}

TEST(Codegen, EmitsOneLoopPerScheduledVertex) {
  const Configuration config = house_config();
  const std::string src = codegen::generate_source(config);
  // One loop per non-leaf schedule position plus the prelude helpers'
  // loops; the counting leaf materializes nothing, so >= n - 1.
  EXPECT_GE(count_occurrences(src, "for ("),
            static_cast<std::size_t>(config.pattern.size() - 1));
}

TEST(Codegen, EmitsRestrictionWindows) {
  Configuration config = house_config();
  ASSERT_FALSE(config.restrictions.empty());
  const std::string src = codegen::generate_source(config);
  // Restriction windows appear as bound updates on the sorted candidates
  // with an early break (Figure 5(b)).
  EXPECT_NE(src.find("restriction early break"), std::string::npos);
  EXPECT_NE(src.find("u32 lo"), std::string::npos);
  EXPECT_NE(src.find(" = kNoBound;"), std::string::npos);
}

TEST(Codegen, EmitsSizeOnlyCountingLeaf) {
  const std::string src = codegen::generate_source(house_config());
  // The innermost loop of a plain plan is a size-only bounded count, not
  // a materialized candidate loop.
  EXPECT_NE(src.find("counting leaf"), std::string::npos);
  EXPECT_NE(src.find("isect_size"), std::string::npos);
}

TEST(Codegen, EmitsIepTermProducts) {
  const Configuration config = house_config(/*use_iep=*/true);
  ASSERT_GT(config.iep.k, 0);
  const std::string src = codegen::generate_source(config);
  EXPECT_NE(src.find("IEP leaf"), std::string::npos);
  EXPECT_NE(src.find("suffix set"), std::string::npos);
  EXPECT_NE(src.find("__int128"), std::string::npos);
  // The surviving-automorphism divisor is applied inside the kernel.
  EXPECT_NE(src.find("IEP surviving-automorphism factor"), std::string::npos);
}

TEST(Codegen, EmitsParallelRootLoop) {
  const std::string src = codegen::generate_source(house_config());
  // The root-vertex loop is partitioned across OpenMP workers with one
  // traversal state each, and the whole construct is #ifdef-guarded so
  // the same source still builds (serially) without -fopenmp.
  EXPECT_NE(src.find("void root0("), std::string::npos);
  EXPECT_NE(src.find("#pragma omp parallel"), std::string::npos);
  EXPECT_NE(src.find("#pragma omp for schedule(dynamic"), std::string::npos);
  EXPECT_NE(src.find("#if defined(_OPENMP)"), std::string::npos);
  EXPECT_NE(src.find("struct GenRun"), std::string::npos);
}

TEST(Codegen, EmitsHubProbes) {
  const std::string src = codegen::generate_source(house_config());
  // Multi-way intersections go through the hub-aware helpers.
  EXPECT_NE(src.find("hub_row"), std::string::npos);
}

TEST(Codegen, FunctionNameHonored) {
  codegen::CodegenOptions opt;
  opt.function_name = "my_custom_kernel";
  const std::string src = codegen::generate_source(house_config(), opt);
  EXPECT_NE(src.find("unsigned long long my_custom_kernel("),
            std::string::npos);
  EXPECT_NE(src.find("unsigned my_custom_kernel_abi()"), std::string::npos);
}

TEST(Codegen, StandaloneContainsMain) {
  const std::string src = codegen::generate_standalone(house_config());
  EXPECT_NE(src.find("int main(int argc, char** argv)"), std::string::npos);
  EXPECT_NE(src.find("graphpi_generated_count"), std::string::npos);
}

TEST(Codegen, MentionsConfigurationInHeaderComment) {
  const Configuration config = house_config();
  const std::string src = codegen::generate_source(config);
  EXPECT_NE(src.find("// Schedule: " + config.schedule.to_string()),
            std::string::npos);
  EXPECT_NE(src.find("// Restrictions: " + to_string(config.restrictions)),
            std::string::npos);
}

TEST(Codegen, PlanFormMentionsPlanString) {
  const Configuration config = house_config();
  const Plan plan = compile_plan(config);
  const std::string src = codegen::generate_source(plan);
  EXPECT_NE(src.find("// Plan 0: " + plan.to_string()), std::string::npos);
}

TEST(CodegenForest, OneNodeFunctionPerTrieNode) {
  const Graph g = clustered_power_law(200, 900, 2.3, 0.4, 3);
  const GraphStats stats = GraphStats::of(g);
  std::vector<Plan> plans;
  for (const Pattern& p : {patterns::clique(3), patterns::rectangle()})
    plans.push_back(compile_plan(plan_configuration(p, stats, {})));
  const PlanForest forest(std::move(plans));
  const std::string src = codegen::generate_forest_source(forest);
  // The root (node 0) is emitted as the per-root-vertex entry root0 so
  // run() can partition it; every other trie node keeps its function.
  EXPECT_NE(src.find("void root0("), std::string::npos);
  for (std::size_t i = 1; i < forest.nodes().size(); ++i)
    EXPECT_NE(src.find("void node" + std::to_string(i) + "("),
              std::string::npos)
        << "missing node function " << i;
  // Batch entry writes one count per plan.
  EXPECT_NE(src.find("unsigned long long* counts"), std::string::npos);
}

}  // namespace
}  // namespace graphpi
