// Code generator: structural checks on the emitted source.
#include <gtest/gtest.h>

#include <string>

#include "codegen/codegen.h"
#include "core/configuration.h"
#include "core/pattern_library.h"
#include "graph/generators.h"

namespace graphpi {
namespace {

Configuration house_config() {
  const Graph g = clustered_power_law(200, 900, 2.3, 0.4, 3);
  return plan_configuration(patterns::house(), GraphStats::of(g),
                            PlannerOptions{});
}

TEST(Codegen, EmitsOneLoopPerScheduledVertex) {
  const Configuration config = house_config();
  const std::string src = codegen::generate_source(config);
  std::size_t loops = 0;
  for (std::size_t pos = src.find("for ("); pos != std::string::npos;
       pos = src.find("for (", pos + 1))
    ++loops;
  // One loop per pattern vertex plus the intersection helper's while is
  // not a for; allow >= n.
  EXPECT_GE(loops, static_cast<std::size_t>(config.pattern.size()));
}

TEST(Codegen, EmitsRestrictionChecks) {
  Configuration config = house_config();
  ASSERT_FALSE(config.restrictions.empty());
  const std::string src = codegen::generate_source(config);
  // Figure 5(b): restrictions appear as break/continue on sorted
  // candidates.
  EXPECT_NE(src.find("restriction id(pattern"), std::string::npos);
  EXPECT_TRUE(src.find(") break;") != std::string::npos ||
              src.find(") continue;") != std::string::npos);
}

TEST(Codegen, FunctionNameHonored) {
  codegen::CodegenOptions opt;
  opt.function_name = "my_custom_kernel";
  const std::string src = codegen::generate_source(house_config(), opt);
  EXPECT_NE(src.find("unsigned long long my_custom_kernel("),
            std::string::npos);
}

TEST(Codegen, StandaloneContainsMain) {
  const std::string src = codegen::generate_standalone(house_config());
  EXPECT_NE(src.find("int main(int argc, char** argv)"), std::string::npos);
  EXPECT_NE(src.find("graphpi_generated_count"), std::string::npos);
}

TEST(Codegen, MentionsConfigurationInHeaderComment) {
  const Configuration config = house_config();
  const std::string src = codegen::generate_source(config);
  EXPECT_NE(src.find("// Schedule: " + config.schedule.to_string()),
            std::string::npos);
  EXPECT_NE(src.find("// Restrictions: " + to_string(config.restrictions)),
            std::string::npos);
}

}  // namespace
}  // namespace graphpi
