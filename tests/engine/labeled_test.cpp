// Labeled matching extension: label-preserving automorphism groups,
// group-generic Algorithm 1, and matcher-vs-oracle equality.
#include <gtest/gtest.h>

#include "core/automorphism.h"
#include "core/labeled_pattern.h"
#include "engine/labeled.h"
#include "engine/oracle.h"
#include "graph/generators.h"
#include "graph/labeled_graph.h"
#include "test_util.h"

namespace graphpi {
namespace {

LabeledGraph labeled_test_graph(std::uint64_t seed, Label n_labels) {
  return assign_labels(clustered_power_law(70, 300, 2.3, 0.5, seed),
                       n_labels, seed ^ 0xABCD);
}

TEST(LabeledGraph, IndexesVerticesByLabel) {
  const LabeledGraph lg = labeled_test_graph(1, 4);
  std::size_t total = 0;
  for (Label l = 0; l < lg.label_count(); ++l) {
    const auto vs = lg.vertices_with_label(l);
    total += vs.size();
    EXPECT_TRUE(std::is_sorted(vs.begin(), vs.end()));
    for (VertexId v : vs) EXPECT_EQ(lg.label(v), l);
  }
  EXPECT_EQ(total, lg.vertex_count());
  EXPECT_TRUE(lg.vertices_with_label(99).empty());
}

TEST(LabeledGraph, DegreeBiasedLabelsPutHubsInLabelZero) {
  const Graph g = power_law(300, 1500, 2.2, 5);
  const std::uint32_t max_deg = g.max_degree();
  const LabeledGraph lg = assign_labels(std::move(g), 4, 7, true);
  // The single highest-degree vertex must be in label 0.
  for (VertexId v = 0; v < lg.vertex_count(); ++v)
    if (lg.structure().degree(v) == max_deg)
      EXPECT_EQ(lg.label(v), 0) << "hub " << v;
}

TEST(LabeledPattern, LabelPreservingAutomorphisms) {
  // Triangle with labels (0,0,1): only the swap of the two 0-labeled
  // vertices survives; |Aut| drops from 6 to 2.
  const LabeledPattern p(patterns::clique(3), {0, 0, 1});
  EXPECT_EQ(labeled_automorphisms(p).size(), 2u);

  // All-equal labels: the full group.
  const LabeledPattern q(patterns::clique(3), {5, 5, 5});
  EXPECT_EQ(labeled_automorphisms(q).size(), 6u);

  // All-distinct labels: trivial group.
  const LabeledPattern r(patterns::clique(3), {0, 1, 2});
  EXPECT_EQ(labeled_automorphisms(r).size(), 1u);
}

TEST(LabeledPattern, GroupRestrictionSetsEliminateExactlyTheGroup) {
  const LabeledPattern p(patterns::rectangle(), {0, 1, 0, 1});
  const auto group = labeled_automorphisms(p);
  EXPECT_GT(group.size(), 1u);
  for (const auto& rs : generate_restriction_sets(p)) {
    EXPECT_EQ(surviving_permutations(group, rs), 1u) << to_string(rs);
  }
}

TEST(LabeledPattern, DistinctLabelsNeedNoRestrictions) {
  const LabeledPattern p(patterns::rectangle(), {0, 1, 2, 3});
  const auto sets = generate_restriction_sets(p);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_TRUE(sets.front().empty());
}

class LabeledMatchTest : public ::testing::TestWithParam<int> {};

TEST_P(LabeledMatchTest, MatcherAgreesWithOracleAcrossLabelings) {
  const Label n_labels = static_cast<Label>(GetParam());
  const LabeledGraph lg = labeled_test_graph(11 + n_labels, n_labels);
  const std::vector<std::pair<Pattern, std::vector<Label>>> cases = {
      {patterns::clique(3), {0, 0, 0}},
      {patterns::clique(3), {0, 0, 1 % n_labels}},
      {patterns::rectangle(), {0, 1 % n_labels, 0, 1 % n_labels}},
      {patterns::house(),
       {0, 0, 1 % n_labels, 2 % n_labels, 1 % n_labels}},
      {patterns::star(4), {0, 1 % n_labels, 1 % n_labels, 1 % n_labels}},
  };
  for (const auto& [structure, labels] : cases) {
    const LabeledPattern p(structure, labels);
    const LabeledMatcher matcher(lg, p);
    EXPECT_EQ(matcher.count(), labeled_oracle_count(lg, p))
        << structure.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(LabelCounts, LabeledMatchTest,
                         ::testing::Values(1, 2, 3, 5));

TEST(LabeledMatch, AllSameLabelsEqualsUnlabeledCount) {
  // With a single label the labeled engine must reduce exactly to the
  // unlabeled problem.
  const Graph g = erdos_renyi(60, 240, 17);
  const Count unlabeled = oracle_count(g, patterns::house());
  const LabeledGraph lg(Graph(g.raw_offsets(), g.raw_neighbors()),
                        std::vector<Label>(g.vertex_count(), 0));
  const LabeledPattern p(patterns::house(), {0, 0, 0, 0, 0});
  EXPECT_EQ(LabeledMatcher(lg, p).count(), unlabeled);
}

TEST(LabeledMatch, EnumerationRespectsLabels) {
  const LabeledGraph lg = labeled_test_graph(23, 3);
  const LabeledPattern p(patterns::clique(3), {0, 1, 2});
  const LabeledMatcher matcher(lg, p);
  Count seen = 0;
  matcher.enumerate([&](std::span<const VertexId> emb) {
    ++seen;
    for (int v = 0; v < 3; ++v)
      EXPECT_EQ(lg.label(emb[static_cast<std::size_t>(v)]), p.label(v));
  });
  EXPECT_EQ(seen, matcher.count());
}

}  // namespace
}  // namespace graphpi
