// KernelCache / Backend::kGenerated integration: the emit -> compile ->
// dlopen -> execute pipeline behind the generated backend, its caching
// behavior, and the transparent interpreter fallback.
#include <gtest/gtest.h>

#include <cstdlib>

#include "api/graphpi.h"
#include "core/pattern_library.h"
#include "engine/jit.h"
#include "graph/generators.h"
#include "graph/vertex_set.h"

namespace graphpi {
namespace {

Graph test_graph() { return clustered_power_law(200, 900, 2.3, 0.4, 3); }

MatchOptions generated_backend() {
  MatchOptions options;
  options.backend = Backend::kGenerated;
  return options;
}

TEST(KernelCache, GeneratedBackendMatchesSerial) {
  if (!jit::compiler_available()) GTEST_SKIP() << "no system compiler";
  const Graph g = test_graph();
  const GraphPi engine(g);
  for (const auto& [name, pattern] :
       {std::pair<const char*, Pattern>{"house", patterns::house()},
        {"pentagon", patterns::pentagon()},
        {"rectangle", patterns::rectangle()},
        {"clique4", patterns::clique(4)}}) {
    EXPECT_EQ(engine.count(pattern, generated_backend()),
              engine.count(pattern))
        << name;
  }
}

TEST(KernelCache, BatchGeneratedMatchesForestExecutor) {
  if (!jit::compiler_available()) GTEST_SKIP() << "no system compiler";
  const Graph g = test_graph();
  const GraphPi engine(g);
  const std::vector<Pattern> batch = {patterns::clique(3),
                                      patterns::rectangle(),
                                      patterns::house()};
  EXPECT_EQ(engine.count_batch(batch, generated_backend()),
            engine.count_batch(batch));
}

TEST(KernelCache, ParallelGeneratedMatchesSerial) {
  if (!jit::compiler_available()) GTEST_SKIP() << "no system compiler";
  // MatchOptions::threads reaches the kernel through the ABI's
  // KernelRunOptions: the OpenMP root partitioning must reproduce the
  // interpreter's counts exactly.
  const Graph g = test_graph();
  const GraphPi engine(g);
  MatchOptions options = generated_backend();
  options.threads = 4;
  EXPECT_EQ(engine.count(patterns::pentagon(), options),
            engine.count(patterns::pentagon()));
  const std::vector<Pattern> batch = {patterns::clique(3),
                                      patterns::rectangle(),
                                      patterns::house()};
  EXPECT_EQ(engine.count_batch(batch, options), engine.count_batch(batch));
}

TEST(KernelCache, SecondUseHitsTheCache) {
  if (!jit::compiler_available()) GTEST_SKIP() << "no system compiler";
  const Graph g = test_graph();
  const GraphPi engine(g);
  const Count first = engine.count(patterns::house(), generated_backend());
  const auto before = jit::KernelCache::instance().stats();
  const Count second = engine.count(patterns::house(), generated_backend());
  const auto after = jit::KernelCache::instance().stats();
  EXPECT_EQ(first, second);
  // The second identical run must not recompile.
  EXPECT_EQ(after.compiles, before.compiles);
  EXPECT_GT(after.memory_hits, before.memory_hits);
}

TEST(KernelCache, ScalarDispatchReachesGeneratedKernels) {
  if (!jit::compiler_available()) GTEST_SKIP() << "no system compiler";
  const Graph g = test_graph();
  const GraphPi engine(g);
  const Count want = engine.count(patterns::house());
  const std::string before = active_isa();
  // Per-call ISA override: the generated kernel calls back into the
  // host's dispatched set kernels, so the selection applies to it too.
  MatchOptions options = generated_backend();
  options.kernels = KernelIsa::kScalar;
  EXPECT_EQ(engine.count(patterns::house(), options), want);
  // The override is scoped to the call.
  EXPECT_EQ(std::string(active_isa()), before);
}

TEST(KernelCache, DisabledJitFallsBackToInterpreter) {
  const Graph g = test_graph();
  const GraphPi engine(g);
  const Count want = engine.count(patterns::house());
  ::setenv("GRAPHPI_JIT_DISABLE", "1", 1);
  EXPECT_FALSE(jit::compiler_available());
  EXPECT_EQ(engine.count(patterns::house(), generated_backend()), want);
  ::unsetenv("GRAPHPI_JIT_DISABLE");
}

TEST(KernelCache, ListingUsesInterpreter) {
  // find_all has no generated path; the backend silently serves it with
  // the serial matcher.
  const Graph g = erdos_renyi(40, 140, 7);
  const GraphPi engine(g);
  const auto serial = engine.find_all(patterns::clique(3));
  const auto generated = engine.find_all(patterns::clique(3),
                                         generated_backend());
  EXPECT_EQ(serial, generated);
}

}  // namespace
}  // namespace graphpi
