// Embedding sinks: counting, limiting, reservoir sampling, text output.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "core/configuration.h"
#include "core/pattern_library.h"
#include "engine/matcher.h"
#include "engine/sinks.h"
#include "graph/generators.h"

namespace graphpi {
namespace {

Matcher test_matcher(const Graph& g, const Pattern& p) {
  return Matcher(g, plan_configuration(p, GraphStats::of(g)));
}

TEST(Sinks, CountingSinkMatchesCount) {
  const Graph g = erdos_renyi(60, 250, 61);
  const Matcher matcher = test_matcher(g, patterns::rectangle());
  sinks::CountingSink sink;
  matcher.enumerate(sink.callback());
  EXPECT_EQ(sink.count(), matcher.count());
}

TEST(Sinks, LimitSinkStopsCollectingButKeepsCounting) {
  const Graph g = erdos_renyi(60, 260, 67);
  const Matcher matcher = test_matcher(g, patterns::clique(3));
  sinks::LimitSink sink(5);
  matcher.enumerate(sink.callback());
  EXPECT_EQ(sink.total(), matcher.count());
  EXPECT_LE(sink.collected().size(), 5u);
  if (matcher.count() >= 5) EXPECT_EQ(sink.collected().size(), 5u);
}

TEST(Sinks, ReservoirIsExactWhenStreamFits) {
  const Graph g = cycle_graph(12);  // few triangles/edges
  const Matcher matcher = test_matcher(g, patterns::path(3));
  sinks::ReservoirSink sink(1000, 7);
  matcher.enumerate(sink.callback());
  EXPECT_EQ(sink.seen(), matcher.count());
  EXPECT_EQ(sink.sample().size(), matcher.count());
}

TEST(Sinks, ReservoirSamplingIsApproximatelyUniform) {
  // Sample size 1 over the edge pattern: each edge should be selected
  // with roughly equal frequency across many seeded runs.
  const Graph g = cycle_graph(8);  // exactly 8 edges
  const Pattern edge(2, std::vector<std::pair<int, int>>{{0, 1}});
  const Matcher matcher = test_matcher(g, edge);
  std::map<std::vector<VertexId>, int> histogram;
  constexpr int kRuns = 4000;
  for (int run = 0; run < kRuns; ++run) {
    sinks::ReservoirSink sink(1, static_cast<std::uint64_t>(run));
    matcher.enumerate(sink.callback());
    ASSERT_EQ(sink.sample().size(), 1u);
    histogram[sink.sample().front()]++;
  }
  EXPECT_EQ(histogram.size(), 8u);
  for (const auto& [emb, freq] : histogram) {
    EXPECT_GT(freq, kRuns / 8 * 0.7);
    EXPECT_LT(freq, kRuns / 8 * 1.3);
  }
}

TEST(Sinks, TextSinkFormatsLines) {
  const Graph g = complete_graph(4);
  const Matcher matcher = test_matcher(g, patterns::clique(3));
  std::ostringstream oss;
  sinks::TextSink sink(oss);
  matcher.enumerate(sink.callback());
  EXPECT_EQ(sink.count(), 4u);  // C(4,3) triangles
  // 4 lines, each with 3 vertex ids.
  std::istringstream iss(oss.str());
  int lines = 0;
  for (std::string line; std::getline(iss, line);) {
    ++lines;
    std::istringstream ls(line);
    int fields = 0;
    for (VertexId v; ls >> v;) ++fields;
    EXPECT_EQ(fields, 3);
  }
  EXPECT_EQ(lines, 4);
}

}  // namespace
}  // namespace graphpi
