// Inclusion–Exclusion counting (Section IV-D): IEP counts must equal
// plain enumeration for every pattern/graph pair, for every valid suffix
// length, with both the aggregated and the paper-verbatim term expansion.
#include <gtest/gtest.h>

#include "core/automorphism.h"
#include "core/configuration.h"
#include "core/iep.h"
#include "engine/matcher.h"
#include "engine/oracle.h"
#include "test_util.h"

namespace graphpi {
namespace {

using testing::small_test_graphs;

/// Best planned configuration with an IEP plan attached.
Configuration iep_config(const Pattern& p, const Graph& g) {
  PlannerOptions options;
  options.use_iep = true;
  return plan_configuration(p, GraphStats::of(g), options);
}

class IepPatternTest
    : public ::testing::TestWithParam<std::tuple<const char*, Pattern>> {};

TEST_P(IepPatternTest, IepEqualsPlainEnumerationOnAllGraphs) {
  const Pattern& p = std::get<1>(GetParam());
  for (const auto& g : small_test_graphs()) {
    const Configuration config = iep_config(p, g);
    const Matcher matcher(g, config);
    EXPECT_EQ(matcher.count(), matcher.count_plain())
        << config.to_string();
  }
}

TEST_P(IepPatternTest, IepPlanIsAttachedAndValidated) {
  const Pattern& p = std::get<1>(GetParam());
  const Graph g = erdos_renyi(30, 100, 3);
  const Configuration config = iep_config(p, g);
  // Connected patterns with >= 2 vertices always admit k >= 1.
  EXPECT_GE(config.iep.k, 1);
  EXPECT_TRUE(validate_iep_plan(p, config.schedule, config.iep));
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, IepPatternTest,
    ::testing::Values(
        std::make_tuple("edgepair", patterns::path(3)),
        std::make_tuple("triangle", patterns::clique(3)),
        std::make_tuple("rectangle", patterns::rectangle()),
        std::make_tuple("house", patterns::house()),
        std::make_tuple("pentagon", patterns::pentagon()),
        std::make_tuple("hourglass", patterns::hourglass()),
        std::make_tuple("cycle6tri", patterns::cycle_6_tri()),
        std::make_tuple("clique4", patterns::clique(4)),
        std::make_tuple("star5", patterns::star(5)),
        std::make_tuple("P1", patterns::evaluation_pattern(1)),
        std::make_tuple("P2", patterns::evaluation_pattern(2)),
        std::make_tuple("P4", patterns::evaluation_pattern(4))),
    [](const auto& info) { return std::get<0>(info.param); });

TEST(Iep, EverySuffixLengthCounts) {
  // For each k from 1 to the schedule's independent suffix length, the
  // IEP count must be identical.
  const Pattern p = patterns::cycle_6_tri();
  const Graph g = clustered_power_law(50, 200, 2.3, 0.5, 5);
  Configuration base = plan_configuration(p, GraphStats::of(g));
  const Count expected = Matcher(g, base).count();
  const int max_k = base.schedule.independent_suffix_length(p);
  EXPECT_GE(max_k, 1);
  for (int k = 1; k <= max_k; ++k) {
    Configuration config = base;
    config.iep = build_iep_plan(p, config.schedule, config.restrictions, k);
    if (!validate_iep_plan(p, config.schedule, config.iep)) continue;
    EXPECT_EQ(Matcher(g, config).count(), expected) << "k=" << k;
  }
}

TEST(Iep, Cycle6TriHasIndependentTriple) {
  // Figure 6: "at most three vertices (D, E and F) ... therefore k = 3".
  EXPECT_EQ(patterns::cycle_6_tri().max_independent_set_size(), 3);
  const auto schedules = generate_schedules(patterns::cycle_6_tri());
  EXPECT_EQ(schedules.k, 3);
}

TEST(Iep, AggregatedAndVerbatimTermsAgree) {
  const Pattern p = patterns::cycle_6_tri();
  const Graph g = erdos_renyi(40, 170, 9);
  Configuration config = plan_configuration(p, GraphStats::of(g));
  const int k = config.schedule.independent_suffix_length(p);
  ASSERT_GE(k, 2);

  Configuration agg = config;
  agg.iep = build_iep_plan(p, config.schedule, config.restrictions, k,
                           /*aggregate_partitions=*/true);
  Configuration verbatim = config;
  verbatim.iep = build_iep_plan(p, config.schedule, config.restrictions, k,
                                /*aggregate_partitions=*/false);
  EXPECT_EQ(Matcher(g, agg).count(), Matcher(g, verbatim).count());
  // Aggregation folds 2^(k(k-1)/2) signed terms into at most Bell(k).
  EXPECT_LT(agg.iep.terms.size(), verbatim.iep.terms.size());
}

TEST(Iep, MoebiusCoefficientsMatchClosedForm) {
  // The numerically-accumulated per-partition coefficient must equal
  // prod_B (-1)^(|B|-1) (|B|-1)!.
  const Pattern p = patterns::cycle_6_tri();
  const Graph g = complete_graph(8);
  Configuration config = plan_configuration(p, GraphStats::of(g));
  const IepPlan plan =
      build_iep_plan(p, config.schedule, config.restrictions, 3);
  for (const auto& term : plan.terms) {
    std::int64_t expected = 1;
    for (const auto& block : term.blocks) {
      std::int64_t factorial = 1;
      for (std::size_t i = 2; i < block.size(); ++i)
        factorial *= static_cast<std::int64_t>(i);
      expected *= (block.size() % 2 == 0 ? -1 : 1) * factorial;
    }
    EXPECT_EQ(term.coefficient, expected);
  }
}

TEST(Iep, DivisorIsTheKnOvercountFactor) {
  // x = LE(n, outer) * |Aut| / n! — the factor by which enumeration
  // without the suffix restrictions overcounts each subgraph.
  const Pattern p = patterns::rectangle();
  const auto schedules = generate_schedules(p);
  const auto sets = generate_restriction_sets(p);
  const std::uint64_t aut = automorphism_count(p);
  for (const auto& sched : schedules.efficient) {
    for (const auto& rs : sets) {
      const int k = sched.independent_suffix_length(p);
      const IepPlan plan = build_iep_plan(p, sched, rs, k);
      if (plan.divisor == 0) continue;  // factor did not divide evenly
      EXPECT_EQ(plan.divisor * 24u,
                linear_extension_count(4, plan.outer_restrictions) * aut);
    }
  }
}

TEST(Iep, TriangleDivisorIsThreeNotFive) {
  // Regression for the closed-form factor: with schedule A,B,C and outer
  // restriction {id(A)>id(B)} the paper's no_conflict-survivor reading
  // yields 5, but each triangle is actually enumerated 3 times.
  const Pattern p = patterns::clique(3);
  const Schedule sched({0, 1, 2});
  const RestrictionSet rs{{0, 1}, {1, 2}};  // chain: a valid full set
  ASSERT_TRUE(validate_restriction_set(p, rs));
  const IepPlan plan = build_iep_plan(p, sched, rs, /*k=*/1);
  EXPECT_EQ(plan.outer_restrictions, (RestrictionSet{{0, 1}}));
  EXPECT_EQ(plan.divisor, 3u);
  EXPECT_NE(plan.divisor,
            surviving_permutations(automorphisms(p),
                                   plan.outer_restrictions));
  EXPECT_TRUE(validate_iep_plan(p, sched, plan));
}

TEST(Iep, CountsOnCompleteGraphsMatchTheory) {
  // On K_m the number of embeddings of any n-pattern is
  // C(m, n) * n! / |Aut| — validated through the whole IEP pipeline.
  const Pattern p = patterns::house();
  for (VertexId m : {8u, 10u, 12u}) {
    const Graph g = complete_graph(m);
    std::uint64_t arrangements = 1;
    for (VertexId i = 0; i < 5; ++i) arrangements *= (m - i);
    const Count expected = arrangements / automorphism_count(p);
    const Configuration config = iep_config(p, g);
    EXPECT_EQ(Matcher(g, config).count(), expected) << "K_" << m;
  }
}

}  // namespace
}  // namespace graphpi
