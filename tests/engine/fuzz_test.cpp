// Randomized end-to-end fuzzing: random connected patterns on random
// graphs, full pipeline (plan -> IEP count / plain count / parallel /
// distributed) against the independent oracle. Seeded and deterministic.
#include <gtest/gtest.h>

#include "core/configuration.h"
#include "dist/runtime.h"
#include "engine/matcher.h"
#include "engine/oracle.h"
#include "engine/parallel.h"
#include "graph/generators.h"
#include "support/rng.h"
#include "test_util.h"

namespace graphpi {
namespace {

/// Random connected pattern with `n` vertices: a random spanning tree
/// plus extra edges with probability `extra_p`.
Pattern random_connected_pattern(int n, double extra_p,
                                 support::Xoshiro256StarStar& rng) {
  std::vector<std::pair<int, int>> edges;
  for (int v = 1; v < n; ++v)
    edges.emplace_back(static_cast<int>(rng.bounded(v)), v);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) {
      const bool tree_edge = [&] {
        for (auto [a, b] : edges)
          if ((a == u && b == v) || (a == v && b == u)) return true;
        return false;
      }();
      if (!tree_edge && rng.chance(extra_p)) edges.emplace_back(u, v);
    }
  return Pattern(n, edges);
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, RandomPatternsMatchOracleEverywhere) {
  support::Xoshiro256StarStar rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    const int n = 3 + static_cast<int>(rng.bounded(4));  // 3..6 vertices
    const Pattern p = random_connected_pattern(n, 0.4, rng);
    const Graph g =
        round % 2 == 0
            ? erdos_renyi(30 + static_cast<VertexId>(rng.bounded(30)),
                          120 + rng.bounded(120), rng.next())
            : clustered_power_law(
                  30 + static_cast<VertexId>(rng.bounded(30)),
                  120 + rng.bounded(120), 2.3, 0.4, rng.next());

    const Count expected = oracle_count(g, p);

    PlannerOptions planner;
    planner.use_iep = true;
    const Configuration config =
        plan_configuration(p, GraphStats::of(g), planner);
    const Matcher matcher(g, config);
    ASSERT_EQ(matcher.count(), expected)
        << "IEP " << p.to_string() << " round " << round;
    ASSERT_EQ(matcher.count_plain(), expected)
        << "plain " << p.to_string() << " round " << round;
    ASSERT_EQ(count_parallel(g, config), expected)
        << "parallel " << p.to_string() << " round " << round;

    dist::ClusterOptions cluster;
    cluster.nodes = 2 + static_cast<int>(rng.bounded(3));
    ASSERT_EQ(dist::distributed_count(g, config, cluster), expected)
        << "distributed " << p.to_string() << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(FuzzRestrictions, EverySetOfRandomPatternsValidates) {
  support::Xoshiro256StarStar rng(0xFACE);
  for (int round = 0; round < 20; ++round) {
    const int n = 3 + static_cast<int>(rng.bounded(4));
    const Pattern p = random_connected_pattern(n, 0.5, rng);
    RestrictionGenOptions options;
    options.max_sets = 16;
    for (const auto& rs : generate_restriction_sets(p, options))
      ASSERT_TRUE(validate_restriction_set(p, rs))
          << p.to_string() << " " << to_string(rs);
  }
}

}  // namespace
}  // namespace graphpi
