// Cross-engine consistency: the optimized matcher (any schedule, any
// restriction set, with/without IEP) must agree with the brute-force
// oracle on every test graph.
#include <gtest/gtest.h>

#include <set>

#include "core/automorphism.h"
#include "core/configuration.h"
#include "engine/graphzero.h"
#include "engine/matcher.h"
#include "engine/naive.h"
#include "engine/oracle.h"
#include "test_util.h"

namespace graphpi {
namespace {

using testing::assorted_patterns;
using testing::small_test_graphs;

TEST(Matcher, TriangleCountMatchesGraphStatistic) {
  for (const auto& g : small_test_graphs()) {
    const Count c = count_embeddings(g, patterns::clique(3));
    EXPECT_EQ(c, g.triangle_count());
  }
}

TEST(Matcher, EdgeCountPattern) {
  const Pattern edge(2, std::vector<std::pair<int, int>>{{0, 1}});
  for (const auto& g : small_test_graphs())
    EXPECT_EQ(count_embeddings(g, edge), g.edge_count());
}

TEST(Matcher, MatchesOracleAcrossPatternsAndGraphs) {
  const auto graphs = small_test_graphs();
  for (const auto& p : assorted_patterns()) {
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      const Count expected = oracle_count(graphs[gi], p);
      const Count actual = count_embeddings(graphs[gi], p);
      EXPECT_EQ(actual, expected)
          << "pattern " << p.to_string() << " graph#" << gi;
    }
  }
}

TEST(Matcher, EveryConfigurationGivesTheSameCount) {
  // The count must be invariant across all (schedule, restriction set)
  // combinations — only the cost varies (Section II-C).
  const Pattern p = patterns::house();
  const Graph g = erdos_renyi(50, 220, 7);
  const Count expected = oracle_count(g, p);
  const auto schedules = generate_schedules(p);
  const auto restriction_sets = generate_restriction_sets(p);
  for (const auto& sched : schedules.efficient) {
    for (const auto& rs : restriction_sets) {
      Configuration config;
      config.pattern = p;
      config.schedule = sched;
      config.restrictions = rs;
      EXPECT_EQ(Matcher(g, config).count(), expected)
          << sched.to_string() << " " << to_string(rs);
    }
  }
}

TEST(Matcher, Phase1OnlySchedulesAlsoCorrect) {
  // Even schedules eliminated by phase 2 (and inefficient ones with full
  // vertex-set loops) must count correctly — Figure 9 runs them.
  const Pattern p = patterns::rectangle();
  const Graph g = erdos_renyi(40, 150, 11);
  const Count expected = oracle_count(g, p);
  const auto rs = generate_restriction_sets(p).front();
  for (const auto& sched : all_schedules(p)) {
    Configuration config;
    config.pattern = p;
    config.schedule = sched;
    config.restrictions = rs;
    EXPECT_EQ(Matcher(g, config).count(), expected) << sched.to_string();
  }
}

TEST(Matcher, RedundantEnumerationIsAutTimesLarger) {
  for (const auto& p : {patterns::clique(3), patterns::rectangle(),
                        patterns::house(), patterns::star(4)}) {
    const Graph g = clustered_power_law(60, 240, 2.3, 0.4, 13);
    const Count distinct = count_embeddings(g, p);
    EXPECT_EQ(naive_count_redundant(g, p),
              distinct * automorphism_count(p))
        << p.to_string();
    EXPECT_EQ(naive_count(g, p), distinct);
  }
}

TEST(Matcher, GraphZeroBaselineAgrees) {
  for (const auto& p : {patterns::house(), patterns::pentagon(),
                        patterns::clique(4)}) {
    const Graph g = clustered_power_law(60, 250, 2.4, 0.4, 17);
    EXPECT_EQ(graphzero::count(g, p), count_embeddings(g, p))
        << p.to_string();
  }
}

TEST(Matcher, EnumerationEmitsDistinctValidEmbeddings) {
  const Pattern p = patterns::house();
  const Graph g = erdos_renyi(40, 170, 23);
  const Configuration config =
      plan_configuration(p, GraphStats::of(g), PlannerOptions{});
  const Matcher matcher(g, config);

  std::set<std::vector<VertexId>> seen;
  Count n = 0;
  matcher.enumerate([&](std::span<const VertexId> emb) {
    ++n;
    // Every pattern edge must exist in the data graph.
    for (auto [u, v] : p.edges())
      EXPECT_TRUE(g.has_edge(emb[static_cast<std::size_t>(u)],
                             emb[static_cast<std::size_t>(v)]));
    // Vertices must be distinct.
    std::set<VertexId> distinct(emb.begin(), emb.end());
    EXPECT_EQ(distinct.size(), emb.size());
    // As *vertex sets + edge sets* embeddings must be unique; since the
    // mapping is recorded per pattern vertex and restrictions kill
    // automorphic duplicates, the full tuples are unique too.
    EXPECT_TRUE(seen.emplace(emb.begin(), emb.end()).second);
  });
  EXPECT_EQ(n, matcher.count());
  EXPECT_EQ(n, oracle_count(g, p));
}

TEST(Matcher, PrefixDecompositionIsLossless) {
  // Summing count_from_prefix over all depth-d prefixes must reproduce
  // the total, for every d — this is what the distributed runtime relies
  // on.
  const Pattern p = patterns::cycle_6_tri();
  const Graph g = erdos_renyi(40, 160, 31);
  const Configuration config =
      plan_configuration(p, GraphStats::of(g), PlannerOptions{});
  const Matcher matcher(g, config);
  const Count expected = matcher.count();
  for (int depth = 1; depth <= 3; ++depth) {
    Count total = 0;
    matcher.enumerate_prefixes(depth, [&](std::span<const VertexId> prefix) {
      total += matcher.count_from_prefix(prefix);
    });
    EXPECT_EQ(matcher.finalize_partial_counts(total), expected)
        << "depth " << depth;
  }
}

TEST(Matcher, InvalidPrefixCountsZero) {
  const Pattern p = patterns::clique(3);
  const Graph g = cycle_graph(10);  // no triangles at all
  Configuration config;
  config.pattern = p;
  config.schedule = Schedule({0, 1, 2});
  config.restrictions = generate_restriction_sets(p).front();
  const Matcher matcher(g, config);
  // 0 and 5 are not adjacent in C_10.
  const VertexId bad[] = {0, 5};
  EXPECT_EQ(matcher.count_from_prefix(bad), 0u);
  // Duplicate vertex.
  const VertexId dup[] = {3, 3};
  EXPECT_EQ(matcher.count_from_prefix(dup), 0u);
}

TEST(Matcher, SingleVertexAndSingleEdgePatterns) {
  const Graph g = erdos_renyi(30, 90, 41);
  const Pattern single(1, std::vector<std::pair<int, int>>{});
  EXPECT_EQ(count_embeddings(g, single), g.vertex_count());
}

}  // namespace
}  // namespace graphpi
