// Randomized cross-backend × cross-ISA differential harness.
//
// One reference (the per-pattern serial Matcher under default dispatch),
// everything else measured against it bit-for-bit: seeded R-MAT graphs ×
// the full named pattern library × every execution backend {serial,
// parallel, generated, distributed} × every kernel table the executing
// CPU can select {scalar, AVX2, AVX-512 when detected}. Counting is
// integer-exact in every engine, so any divergence — a vector kernel
// miscounting a block boundary, a generated kernel mistranslating a
// restriction window, a shard dropping a boundary continuation, an IEP
// divisor that does not hold off K_n — fails loudly with the pattern and
// combination that produced it.
//
// cycle(6) is deliberately in the sweep: its IEP plans used to pass the
// K_n closed-form validation while overcounting non-uniformly on real
// graphs (divisor x=3 held only on average), making Matcher::count throw
// mid-division. The planner's order-uniformity validation (core/iep.cpp)
// now rejects those plans; the dedicated regression below pins the fix
// across backends.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "api/graphpi.h"
#include "core/pattern_library.h"
#include "engine/jit.h"
#include "graph/generators.h"
#include "graph/vertex_set.h"

namespace graphpi {
namespace {

std::vector<std::pair<std::string, Pattern>> full_library() {
  using namespace patterns;
  return {{"triangle", clique(3)},
          {"rectangle", rectangle()},
          {"tailed_triangle", tailed_triangle()},
          {"house", house()},
          {"pentagon", pentagon()},
          {"hourglass", hourglass()},
          {"cycle6tri", cycle_6_tri()},
          {"clique4", clique(4)},
          {"clique5", clique(5)},
          {"cycle5", cycle(5)},
          {"cycle6", cycle(6)},
          {"path4", path(4)},
          {"path5", path(5)},
          {"star4", star(4)},
          {"star5", star(5)}};
}

/// Every kernel table the executing CPU can actually select.
std::vector<KernelIsa> selectable_isas() {
  std::vector<KernelIsa> isas = {KernelIsa::kScalar};
  if (cpu_supports(KernelIsa::kAvx2)) isas.push_back(KernelIsa::kAvx2);
  if (cpu_supports(KernelIsa::kAvx512)) isas.push_back(KernelIsa::kAvx512);
  return isas;
}

struct BackendArm {
  const char* name;
  MatchOptions options;
};

std::vector<BackendArm> backend_arms() {
  std::vector<BackendArm> arms;
  arms.push_back({"serial", {}});
  BackendArm parallel{"parallel", {}};
  parallel.options.backend = Backend::kParallel;
  parallel.options.threads = 3;  // force a real multi-worker split
  arms.push_back(parallel);
  BackendArm generated{"generated", {}};
  generated.options.backend = Backend::kGenerated;
  generated.options.threads = 3;
  arms.push_back(generated);
  BackendArm distributed{"distributed", {}};
  distributed.options.backend = Backend::kDistributed;
  distributed.options.nodes = 3;
  arms.push_back(distributed);
  return arms;
}

TEST(Differential, AllBackendsAllIsasAgreeOnSeededRmat) {
  const auto library = full_library();
  std::vector<Pattern> patterns;
  patterns.reserve(library.size());
  for (const auto& [name, p] : library) patterns.push_back(p);

  // Sized so the full sweep (|library| × backends × ISAs) stays inside a
  // CI-friendly budget — cycle(6)'s surviving IEP plans carry a 6x
  // outer-redundancy divisor, so it dominates every arm. The seeds are
  // arbitrary but fixed: failures reproduce exactly.
  const std::pair<const char*, Graph> graphs[] = {
      {"rmat(7,650,101)", rmat(7, 650, 101)},
      {"rmat(6,250,202)", rmat(6, 250, 202)},
  };
  for (const auto& [gname, graph] : graphs) {
    const GraphPi engine(graph);
    // Reference: one serial interpreted count per pattern, default
    // dispatch. Independent of the batch executor so the forest paths
    // below are cross-checked against the single-plan path too.
    std::vector<Count> want;
    want.reserve(library.size());
    for (const auto& [name, p] : library) want.push_back(engine.count(p));

    for (const KernelIsa isa : selectable_isas()) {
      for (const BackendArm& arm : backend_arms()) {
        MatchOptions options = arm.options;
        options.kernels = isa;
        const std::vector<Count> got = engine.count_batch(patterns, options);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < library.size(); ++i) {
          EXPECT_EQ(got[i], want[i])
              << gname << " / " << library[i].first << " / " << arm.name
              << " / " << to_string(isa);
        }
      }
    }
  }
}

TEST(Differential, DistributedSweepBitIdenticalUnderInjectedFaults) {
  // The full 15-pattern library through the 3-node sharded backend with a
  // nonzero seeded FaultPlan: the reliability layer (CRC frames +
  // retransmit + dedup) must mask every injected drop/duplicate/
  // reorder/corruption, leaving the counts BIT-IDENTICAL to serial — and
  // the stats must prove the faults actually fired.
  const auto library = full_library();
  std::vector<Pattern> patterns;
  patterns.reserve(library.size());
  for (const auto& [name, p] : library) patterns.push_back(p);

  const Graph graph = rmat(6, 250, 202);
  const GraphPi engine(graph);
  const std::vector<Count> want = engine.count_batch(patterns);

  MatchOptions options;
  options.backend = Backend::kDistributed;
  options.nodes = 3;
  options.faults = dist::FaultPlan::uniform(/*seed=*/31337, /*drop=*/0.06,
                                            /*duplicate=*/0.06,
                                            /*reorder=*/0.04,
                                            /*corrupt=*/0.06);
  dist::ClusterStats stats;
  options.cluster_stats = &stats;
  const std::vector<Count> got = engine.count_batch(patterns, options);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < library.size(); ++i)
    EXPECT_EQ(got[i], want[i]) << library[i].first << " under faults";
  EXPECT_GT(stats.injected_drops, 0u);
  EXPECT_GT(stats.injected_duplicates, 0u);
  EXPECT_GT(stats.injected_corruptions, 0u);
  EXPECT_GT(stats.retransmits, 0u);
  EXPECT_GT(stats.duplicates_suppressed, 0u);
  EXPECT_GT(stats.corrupt_frames_detected, 0u);
}

TEST(Differential, SnapshotRoundTripBitIdenticalOnEveryBackend) {
  // The snapshot arm: degree-reorder + save + mmap-load (io/snapshot.h)
  // must be invisible to counting. Reference = the library counted on
  // the graph as built; comparand = the same library on the
  // reordered-saved-loaded graph, across all four backends under default
  // dispatch (the ISA × decode cross-product lives in tests/io/).
  const auto library = full_library();
  std::vector<Pattern> patterns;
  patterns.reserve(library.size());
  for (const auto& [name, p] : library) patterns.push_back(p);

  const Graph graph = rmat(6, 250, 202);
  const std::vector<Count> want = GraphPi(graph).count_batch(patterns);

  const std::string path =
      (std::filesystem::temp_directory_path() / "graphpi_differential.gps")
          .string();
  graph.reorder_by_degree().save_snapshot(path);
  const Graph loaded = Graph::load_snapshot(path);
  std::filesystem::remove(path);

  const GraphPi engine(loaded);
  for (const BackendArm& arm : backend_arms()) {
    const std::vector<Count> got = engine.count_batch(patterns, arm.options);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < library.size(); ++i)
      EXPECT_EQ(got[i], want[i])
          << "snapshot / " << library[i].first << " / " << arm.name;
  }
}

TEST(Differential, CycleSixIepRegression) {
  // The latent IEP-divisor bug: cycle(6) planned with use_iep produced
  // configurations whose undivided sum was not divisible by the computed
  // surviving-automorphism factor on real graphs (the K_n validation
  // passed on the aggregate). The order-uniformity check now rejects
  // them, so IEP-enabled counting must succeed and agree with plain
  // enumeration on every backend.
  const Graph graph = rmat(7, 650, 101);
  const GraphPi engine(graph);
  const Pattern cycle6 = patterns::cycle(6);

  MatchOptions no_iep;
  no_iep.use_iep = false;
  const Count want = engine.count(cycle6, no_iep);

  for (const Backend backend :
       {Backend::kSerial, Backend::kParallel, Backend::kGenerated}) {
    MatchOptions options;  // use_iep defaults to true
    options.backend = backend;
    options.threads = 3;
    Count got = 0;
    EXPECT_NO_THROW(got = engine.count(cycle6, options))
        << "backend " << static_cast<int>(backend);
    EXPECT_EQ(got, want) << "backend " << static_cast<int>(backend);
  }

  // Whatever configuration the planner now selects for cycle(6) must be
  // empirically sound, not just K_n-sound.
  EXPECT_TRUE(empirically_validate(engine.plan(cycle6)));
}

}  // namespace
}  // namespace graphpi
