// Directed matching extension: digraph substrate, arc-preserving
// automorphism groups (including the 2-cycle-free Z3 case), and
// matcher-vs-oracle equality.
#include <gtest/gtest.h>

#include "core/directed_pattern.h"
#include "engine/directed.h"
#include "graph/digraph.h"

namespace graphpi {
namespace {

using Arcs = std::vector<std::pair<int, int>>;
using VArcs = std::vector<std::pair<VertexId, VertexId>>;

TEST(DirectedGraph, OutAndInAdjacency) {
  const DirectedGraph g(4, VArcs{{0, 1}, {0, 2}, {2, 1}, {1, 0}});
  EXPECT_EQ(g.arc_count(), 4u);
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_TRUE(g.has_arc(1, 0));  // antiparallel pair kept
  EXPECT_FALSE(g.has_arc(1, 2));
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(1), 2u);
  EXPECT_EQ(g.in_degree(0), 1u);
  EXPECT_TRUE(std::is_sorted(g.out_neighbors(0).begin(),
                             g.out_neighbors(0).end()));
}

TEST(DirectedPattern, DirectedTriangleHasZ3Group) {
  // The cyclic triangle 0->1->2->0: rotations survive, reflections do
  // not (they reverse arc orientation).
  const DirectedPattern tri(3, Arcs{{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(automorphisms(tri).size(), 3u);

  // The transitive triangle 0->1, 0->2, 1->2 is rigid.
  const DirectedPattern trans(3, Arcs{{0, 1}, {0, 2}, {1, 2}});
  EXPECT_EQ(automorphisms(trans).size(), 1u);
}

TEST(DirectedPattern, RestrictionsBreakZ3ViaFallback) {
  const DirectedPattern tri(3, Arcs{{0, 1}, {1, 2}, {2, 0}});
  const auto group = automorphisms(tri);
  const auto sets = generate_restriction_sets(tri);
  ASSERT_FALSE(sets.empty());
  for (const auto& rs : sets) {
    EXPECT_EQ(surviving_permutations(group, rs), 1u) << to_string(rs);
    EXPECT_EQ(linear_extension_count(3, rs) * group.size(), 6u);
  }
}

TEST(DirectedMatch, CyclicTriangleCount) {
  // Hand-checkable digraph: a 3-cycle, a transitive triangle and stray
  // arcs.
  const DirectedGraph g(6, VArcs{{0, 1}, {1, 2}, {2, 0},   // cyclic
                                 {3, 4}, {3, 5}, {4, 5},   // transitive
                                 {5, 0}, {1, 4}});
  const DirectedPattern cyc(3, Arcs{{0, 1}, {1, 2}, {2, 0}});
  const DirectedPattern trans(3, Arcs{{0, 1}, {0, 2}, {1, 2}});
  EXPECT_EQ(DirectedMatcher(g, cyc).count(), 1u);
  EXPECT_EQ(DirectedMatcher(g, trans).count(), 1u);
  EXPECT_EQ(directed_oracle_count(g, cyc), 1u);
  EXPECT_EQ(directed_oracle_count(g, trans), 1u);
}

class DirectedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DirectedSweepTest, MatcherAgreesWithOracle) {
  const DirectedGraph g = random_digraph(30, 220, GetParam());
  const std::vector<DirectedPattern> patterns = {
      DirectedPattern(2, Arcs{{0, 1}}),                      // single arc
      DirectedPattern(3, Arcs{{0, 1}, {1, 2}, {2, 0}}),      // cyclic tri
      DirectedPattern(3, Arcs{{0, 1}, {0, 2}, {1, 2}}),      // transitive
      DirectedPattern(3, Arcs{{0, 1}, {0, 2}}),              // out-star
      DirectedPattern(3, Arcs{{1, 0}, {2, 0}}),              // in-star
      DirectedPattern(4, Arcs{{0, 1}, {1, 2}, {2, 3}, {3, 0}}),  // 4-cycle
      DirectedPattern(4, Arcs{{0, 1}, {1, 2}, {2, 3}}),      // path
      DirectedPattern(3, Arcs{{0, 1}, {1, 0}, {1, 2}}),      // 2-cycle+tail
  };
  for (const auto& p : patterns) {
    EXPECT_EQ(DirectedMatcher(g, p).count(), directed_oracle_count(g, p))
        << p.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectedSweepTest,
                         ::testing::Values(11u, 12u, 13u, 14u));

TEST(DirectedMatch, EnumerationYieldsValidArcMappings) {
  const DirectedGraph g = random_digraph(25, 160, 77);
  const DirectedPattern p(3, Arcs{{0, 1}, {1, 2}, {2, 0}});
  const DirectedMatcher matcher(g, p);
  Count seen = 0;
  matcher.enumerate([&](std::span<const VertexId> emb) {
    ++seen;
    for (auto [u, v] : p.arcs())
      EXPECT_TRUE(g.has_arc(emb[static_cast<std::size_t>(u)],
                            emb[static_cast<std::size_t>(v)]));
  });
  EXPECT_EQ(seen, matcher.count());
}

TEST(DirectedMatch, SymmetricDigraphMatchesUndirectedSemantics) {
  // A digraph with both arc directions for every edge behaves like the
  // undirected graph: the cyclic-triangle count equals 2x the undirected
  // triangle count (each triangle supports two arc cycles).
  const DirectedGraph g(5, VArcs{{0, 1}, {1, 0}, {1, 2}, {2, 1},
                                 {0, 2}, {2, 0}, {2, 3}, {3, 2}});
  const DirectedPattern cyc(3, Arcs{{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(DirectedMatcher(g, cyc).count(), 2u);
}

}  // namespace
}  // namespace graphpi
