// Instrumented execution vs the performance model: measured per-loop
// quantities must track the model's predictions (this is the direct
// validation of Section IV-C's estimators).
#include <gtest/gtest.h>

#include "core/configuration.h"
#include "core/pattern_library.h"
#include "engine/matcher.h"
#include "engine/profile.h"
#include "graph/generators.h"

namespace graphpi {
namespace {

TEST(Profile, CountsMatchUninstrumentedEngine) {
  const Graph g = clustered_power_law(120, 550, 2.3, 0.4, 31);
  for (const auto& p : {patterns::house(), patterns::rectangle(),
                        patterns::cycle_6_tri()}) {
    const Configuration config =
        plan_configuration(p, GraphStats::of(g), PlannerOptions{});
    ExecutionProfile profile;
    EXPECT_EQ(count_profiled(g, config, profile),
              Matcher(g, config).count_plain())
        << p.to_string();
    EXPECT_EQ(profile.embeddings, Matcher(g, config).count_plain());
  }
}

TEST(Profile, LoopEntriesCascade) {
  // entries[d+1] = candidates surviving bounds at depth d minus used-
  // vertex skips, so entries must be non-increasing in expectation only;
  // but entries[0] is exactly 1 and entries[d] > 0 whenever embeddings
  // exist.
  const Graph g = erdos_renyi(80, 350, 37);
  const Pattern p = patterns::house();
  const Configuration config =
      plan_configuration(p, GraphStats::of(g), PlannerOptions{});
  ExecutionProfile profile;
  const Count n = count_profiled(g, config, profile);
  EXPECT_EQ(profile.loop_entries[0], 1u);
  if (n > 0)
    for (int d = 0; d < p.size(); ++d)
      EXPECT_GT(profile.loop_entries[static_cast<std::size_t>(d)], 0u);
  // Leaf candidates within bounds at the last depth bound the count from
  // above (used-vertex skips only remove candidates).
  EXPECT_GE(profile.candidates_in_bounds[static_cast<std::size_t>(
                p.size() - 1)],
            n);
}

TEST(Profile, MeasuredFilterRateMatchesModel) {
  // The model predicts the restriction at the depth checking id(A)>id(B)
  // filters half the candidates; the measured bound survival must be
  // close on a symmetric random graph.
  const Graph g = erdos_renyi(200, 1400, 41);
  const Pattern p = patterns::house();
  Configuration config;
  config.pattern = p;
  config.schedule = Schedule({0, 1, 2, 3, 4});
  config.restrictions = RestrictionSet{{0, 1}};  // checked at depth 1
  ExecutionProfile profile;
  (void)count_profiled(g, config, profile);
  EXPECT_NEAR(profile.bound_survival(1), 0.5, 0.1);
  EXPECT_DOUBLE_EQ(profile.bound_survival(0), 1.0);  // no restriction
}

TEST(Profile, ModelCardinalityTracksMeasurement) {
  // For each depth with >= 2 predecessors, the model's l_d estimate and
  // the measured mean candidate size must be within an order of
  // magnitude on a homogeneous random graph (the model is a relative
  // ranking tool; we assert calibration, not precision).
  const Graph g = erdos_renyi(300, 3500, 47);
  const GraphStats stats = GraphStats::of(g);
  const Pattern p = patterns::cycle_6_tri();
  const Configuration config =
      plan_configuration(p, stats, PlannerOptions{});
  const CostBreakdown predicted =
      predict_cost(p, config.schedule, config.restrictions, stats);

  ExecutionProfile profile;
  (void)count_profiled(g, config, profile);
  for (int d = 2; d < p.size(); ++d) {
    const double measured = profile.mean_candidates(d);
    const double modeled = predicted.loop_size[static_cast<std::size_t>(d)];
    if (measured < 0.5) continue;  // too sparse to compare meaningfully
    EXPECT_LT(modeled / measured, 10.0) << "depth " << d;
    EXPECT_GT(modeled / measured, 0.1) << "depth " << d;
  }
}

TEST(Profile, ToStringMentionsAllDepths) {
  const Graph g = erdos_renyi(40, 150, 51);
  const Pattern p = patterns::clique(3);
  const Configuration config =
      plan_configuration(p, GraphStats::of(g), PlannerOptions{});
  ExecutionProfile profile;
  (void)count_profiled(g, config, profile);
  const std::string s = profile.to_string();
  EXPECT_NE(s.find("d0"), std::string::npos);
  EXPECT_NE(s.find("d2"), std::string::npos);
  EXPECT_NE(s.find("embeddings="), std::string::npos);
}

}  // namespace
}  // namespace graphpi
