// OpenMP engine: equality with the serial matcher across configurations,
// backends and task depths.
#include <gtest/gtest.h>

#include <set>

#include "core/configuration.h"
#include "engine/matcher.h"
#include "engine/parallel.h"
#include "test_util.h"

namespace graphpi {
namespace {

TEST(Parallel, CountsEqualSerialAcrossPatterns) {
  const Graph g = clustered_power_law(120, 600, 2.3, 0.4, 91);
  for (const auto& p : testing::assorted_patterns()) {
    const Configuration config =
        plan_configuration(p, GraphStats::of(g), PlannerOptions{});
    const Count serial = Matcher(g, config).count();
    for (int depth : {1, 2}) {
      ParallelOptions opt;
      opt.task_depth = depth;
      EXPECT_EQ(count_parallel(g, config, opt), serial)
          << p.to_string() << " depth " << depth;
    }
  }
}

TEST(Parallel, IepConfigurationsSupported) {
  const Graph g = clustered_power_law(100, 500, 2.3, 0.4, 93);
  PlannerOptions planner;
  planner.use_iep = true;
  for (const auto& p :
       {patterns::house(), patterns::cycle_6_tri(), patterns::pentagon()}) {
    const Configuration config =
        plan_configuration(p, GraphStats::of(g), planner);
    const Count serial = Matcher(g, config).count();
    ParallelRunStats stats;
    EXPECT_EQ(count_parallel(g, config, ParallelOptions{}, &stats), serial)
        << p.to_string();
    EXPECT_GT(stats.tasks, 0u);
  }
}

TEST(Parallel, RunStatsAccountForAllTasks) {
  const Graph g = erdos_renyi(150, 700, 95);
  const Pattern p = patterns::house();
  const Configuration config =
      plan_configuration(p, GraphStats::of(g), PlannerOptions{});
  ParallelRunStats stats;
  (void)count_parallel(g, config, ParallelOptions{}, &stats);
  std::uint64_t executed = 0;
  for (auto t : stats.per_thread_tasks) executed += t;
  EXPECT_EQ(executed, stats.tasks);
}

TEST(Parallel, EnumerationMatchesSerialSet) {
  const Graph g = erdos_renyi(60, 250, 97);
  const Pattern p = patterns::rectangle();
  Configuration config =
      plan_configuration(p, GraphStats::of(g), PlannerOptions{});

  std::set<std::vector<VertexId>> serial;
  Matcher(g, config).enumerate([&serial](std::span<const VertexId> e) {
    serial.emplace(e.begin(), e.end());
  });

  std::set<std::vector<VertexId>> parallel;
  enumerate_parallel(g, config,
                     [&parallel](std::span<const VertexId> e) {
                       parallel.emplace(e.begin(), e.end());
                     });
  EXPECT_EQ(parallel, serial);
  EXPECT_EQ(serial.size(), Matcher(g, config).count());
}

TEST(Parallel, ExplicitThreadCounts) {
  const Graph g = erdos_renyi(100, 400, 99);
  const Pattern p = patterns::clique(4);
  const Configuration config =
      plan_configuration(p, GraphStats::of(g), PlannerOptions{});
  const Count expected = Matcher(g, config).count();
  for (int threads : {1, 2, 4}) {
    ParallelOptions opt;
    opt.num_threads = threads;
    EXPECT_EQ(count_parallel(g, config, opt), expected)
        << threads << " threads";
  }
}

}  // namespace
}  // namespace graphpi
