// OpenMP engine: equality with the serial matcher across configurations,
// backends and task depths.
#include <gtest/gtest.h>

#include <set>

#include "core/configuration.h"
#include "engine/matcher.h"
#include "engine/parallel.h"
#include "test_util.h"

namespace graphpi {
namespace {

TEST(Parallel, CountsEqualSerialAcrossPatterns) {
  const Graph g = clustered_power_law(120, 600, 2.3, 0.4, 91);
  for (const auto& p : testing::assorted_patterns()) {
    const Configuration config =
        plan_configuration(p, GraphStats::of(g), PlannerOptions{});
    const Count serial = Matcher(g, config).count();
    for (int depth : {1, 2}) {
      ParallelOptions opt;
      opt.task_depth = depth;
      EXPECT_EQ(count_parallel(g, config, opt), serial)
          << p.to_string() << " depth " << depth;
    }
  }
}

TEST(Parallel, IepConfigurationsSupported) {
  const Graph g = clustered_power_law(100, 500, 2.3, 0.4, 93);
  PlannerOptions planner;
  planner.use_iep = true;
  for (const auto& p :
       {patterns::house(), patterns::cycle_6_tri(), patterns::pentagon()}) {
    const Configuration config =
        plan_configuration(p, GraphStats::of(g), planner);
    const Count serial = Matcher(g, config).count();
    ParallelRunStats stats;
    EXPECT_EQ(count_parallel(g, config, ParallelOptions{}, &stats), serial)
        << p.to_string();
    EXPECT_GT(stats.tasks, 0u);
  }
}

TEST(Parallel, RunStatsAccountForAllTasks) {
  const Graph g = erdos_renyi(150, 700, 95);
  const Pattern p = patterns::house();
  const Configuration config =
      plan_configuration(p, GraphStats::of(g), PlannerOptions{});
  ParallelRunStats stats;
  (void)count_parallel(g, config, ParallelOptions{}, &stats);
  std::uint64_t executed = 0;
  for (auto t : stats.per_thread_tasks) executed += t;
  EXPECT_EQ(executed, stats.tasks);
}

TEST(Parallel, EnumerationMatchesSerialSet) {
  const Graph g = erdos_renyi(60, 250, 97);
  const Pattern p = patterns::rectangle();
  Configuration config =
      plan_configuration(p, GraphStats::of(g), PlannerOptions{});

  std::set<std::vector<VertexId>> serial;
  Matcher(g, config).enumerate([&serial](std::span<const VertexId> e) {
    serial.emplace(e.begin(), e.end());
  });

  std::set<std::vector<VertexId>> parallel;
  enumerate_parallel(g, config,
                     [&parallel](std::span<const VertexId> e) {
                       parallel.emplace(e.begin(), e.end());
                     });
  EXPECT_EQ(parallel, serial);
  EXPECT_EQ(serial.size(), Matcher(g, config).count());
}

TEST(Parallel, DeterministicAcrossTaskDepthsAndThreadCounts) {
  const Graph g = rmat(8, 900, 41);
  for (const auto& p : {patterns::house(), patterns::clique(4)}) {
    for (bool use_iep : {false, true}) {
      PlannerOptions planner;
      planner.use_iep = use_iep;
      const Configuration config =
          plan_configuration(p, GraphStats::of(g), planner);
      const Count serial = Matcher(g, config).count();
      for (int depth : {1, 2, 3}) {
        for (int threads : {1, 2, 4}) {
          ParallelOptions opt;
          opt.task_depth = depth;
          opt.num_threads = threads;
          EXPECT_EQ(count_parallel(g, config, opt), serial)
              << p.to_string() << " iep=" << use_iep << " depth=" << depth
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST(Parallel, WorkspacesAreCreatedOncePerThreadNotPerTask) {
  const Graph g = clustered_power_law(300, 1800, 2.3, 0.4, 77);
  const Configuration config = plan_configuration(
      patterns::house(), GraphStats::of(g), PlannerOptions{});

  ParallelOptions opt;
  opt.task_depth = 2;
  opt.num_threads = 2;
  const std::uint64_t before = Matcher::workspace_constructions();
  ParallelRunStats stats;
  (void)count_parallel(g, config, opt, &stats);
  const std::uint64_t created = Matcher::workspace_constructions() - before;

  // Many tasks, but only the task generator's workspace plus one per
  // worker thread may be constructed.
  ASSERT_GT(stats.tasks, 100u);
  EXPECT_LE(created, 1u + static_cast<std::uint64_t>(opt.num_threads));
  EXPECT_GT(stats.task_groups, 0u);
  EXPECT_LE(stats.task_groups, stats.tasks);
}

TEST(Matcher, IncrementalPrefixReuseMatchesFreshWorkspaces) {
  const Graph g = rmat(8, 1100, 53);
  const Configuration config = plan_configuration(
      patterns::house(), GraphStats::of(g), PlannerOptions{});
  const Matcher matcher(g, config);

  std::vector<std::vector<VertexId>> prefixes;
  matcher.enumerate_prefixes(2, [&](std::span<const VertexId> p) {
    prefixes.emplace_back(p.begin(), p.end());
    // Adversarial neighbors: swapped pairs and clones that often violate
    // edges or restrictions, interleaved between valid shared-prefix runs.
    prefixes.push_back({p[1], p[0]});
    prefixes.push_back({p[0], p[0]});
  });

  Count reused = 0, fresh = 0;
  Matcher::Workspace shared_ws;
  for (const auto& p : prefixes) reused += matcher.count_from_prefix(shared_ws, p);
  for (const auto& p : prefixes) {
    Matcher::Workspace ws;
    fresh += matcher.count_from_prefix(ws, p);
  }
  EXPECT_EQ(reused, fresh);
  EXPECT_GT(fresh, 0u);
}

TEST(Parallel, ExplicitThreadCounts) {
  const Graph g = erdos_renyi(100, 400, 99);
  const Pattern p = patterns::clique(4);
  const Configuration config =
      plan_configuration(p, GraphStats::of(g), PlannerOptions{});
  const Count expected = Matcher(g, config).count();
  for (int threads : {1, 2, 4}) {
    ParallelOptions opt;
    opt.num_threads = threads;
    EXPECT_EQ(count_parallel(g, config, opt), expected)
        << threads << " threads";
  }
}

}  // namespace
}  // namespace graphpi
