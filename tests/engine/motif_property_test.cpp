// Exhaustive motif property sweep: every connected 3- and 4-vertex
// pattern (and a sample of 5-vertex ones) must count identically through
// the full GraphPi pipeline (with and without IEP, serial and parallel)
// and the independent brute-force oracle, across structurally diverse
// graphs. This is the widest correctness net in the suite.
#include <gtest/gtest.h>

#include "core/automorphism.h"
#include "core/configuration.h"
#include "core/pattern_library.h"
#include "engine/matcher.h"
#include "engine/oracle.h"
#include "engine/parallel.h"
#include "test_util.h"

namespace graphpi {
namespace {

class MotifSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(MotifSweepTest, AllEnginesAgreeOnAllMotifs) {
  const int k = GetParam();
  const auto motifs = patterns::connected_motifs(k);
  const std::vector<Graph> graphs = {
      erdos_renyi(45, 200, 1001),
      clustered_power_law(50, 220, 2.3, 0.5, 1002),
      complete_graph(10),
      cycle_graph(18),
      grid_graph(5, 6),
  };
  for (std::size_t mi = 0; mi < motifs.size(); ++mi) {
    const Pattern& p = motifs[mi];
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      const Graph& g = graphs[gi];
      const Count expected = oracle_count(g, p);

      PlannerOptions iep;
      iep.use_iep = true;
      const Configuration config =
          plan_configuration(p, GraphStats::of(g), iep);
      const Matcher matcher(g, config);
      EXPECT_EQ(matcher.count(), expected)
          << "motif " << mi << " graph " << gi << " (IEP)";
      EXPECT_EQ(matcher.count_plain(), expected)
          << "motif " << mi << " graph " << gi << " (plain)";
      EXPECT_EQ(count_parallel(g, config), expected)
          << "motif " << mi << " graph " << gi << " (parallel)";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MotifSweepTest, ::testing::Values(3, 4));

TEST(MotifSweep, FiveVertexSample) {
  // All 21 5-motifs on two graphs (kept to a sample for runtime).
  const auto motifs = patterns::connected_motifs(5);
  ASSERT_EQ(motifs.size(), 21u);
  const Graph a = erdos_renyi(35, 140, 2001);
  const Graph b = clustered_power_law(40, 170, 2.3, 0.5, 2002);
  for (const auto& g : {a, b}) {
    for (const auto& p : motifs) {
      const Count expected = oracle_count(g, p);
      EXPECT_EQ(count_embeddings(g, p, /*use_iep=*/true), expected)
          << p.to_string();
    }
  }
}

TEST(MotifSweep, MotifCountsPartitionSubsetCounts) {
  // Cross-motif invariant: the number of connected induced 3-subsets of
  // a graph equals triangles + paths2 when counting *induced* instances.
  // Our semantics are non-induced, which obey: every triangle contains 3
  // path-2 embeddings, so path2_count = wedges = sum C(deg,2).
  const Graph g = clustered_power_law(60, 260, 2.3, 0.4, 2003);
  const Count paths2 = count_embeddings(g, patterns::path(3));
  std::uint64_t wedges = 0;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    const std::uint64_t d = g.degree(v);
    wedges += d * (d - 1) / 2;
  }
  EXPECT_EQ(paths2, wedges);

  // Stars: star(4) embeddings = sum C(deg, 3).
  std::uint64_t claws = 0;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    const std::uint64_t d = g.degree(v);
    claws += d * (d - 1) * (d - 2) / 6;
  }
  EXPECT_EQ(count_embeddings(g, patterns::star(4)), claws);
}

TEST(MotifSweep, CompleteGraphClosedForms) {
  // On K_m, count(pattern) = m!/(m-n)!/|Aut| for every n-pattern.
  const Graph g = complete_graph(11);
  for (int k : {3, 4}) {
    for (const auto& p : patterns::connected_motifs(k)) {
      std::uint64_t arrangements = 1;
      for (int i = 0; i < p.size(); ++i)
        arrangements *= static_cast<std::uint64_t>(11 - i);
      const Count expected =
          arrangements / automorphism_count(p);
      EXPECT_EQ(count_embeddings(g, p), expected) << p.to_string();
    }
  }
}

}  // namespace
}  // namespace graphpi
