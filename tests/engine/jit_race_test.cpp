// Kernel-cache thread-safety: concurrent Backend::kGenerated counting
// racing the FIRST compile of the same and of distinct forests.
//
// The cache directory is pointed at a private location and wiped before
// KernelCache::instance() exists, so every kernel really goes through the
// emit → compile → atomic-publish → dlopen path under contention (not a
// disk hit). Duplicate compiles between racers are by-design benign: each
// attempt builds under an attempt-unique temp name and publishes by
// rename, and the first in-memory publisher wins. The racers also hit
// Graph::ensure_hub_index() concurrently (double-checked lazy build).
// The ASan CI job runs this suite like every other test binary.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include "api/graphpi.h"
#include "core/pattern_library.h"
#include "engine/jit.h"
#include "graph/generators.h"

namespace graphpi {
namespace {

namespace fs = std::filesystem;

// Static initialization runs before main(), hence before the lazily
// constructed process-wide KernelCache reads the environment.
const bool kCacheDirReset = [] {
  const fs::path dir = fs::temp_directory_path() / "graphpi-race-cache";
  std::error_code ec;
  fs::remove_all(dir, ec);
  ::setenv("GRAPHPI_KERNEL_CACHE_DIR", dir.c_str(), 1);
  return true;
}();

Graph test_graph() { return clustered_power_law(150, 650, 2.3, 0.4, 17); }

MatchOptions generated_backend() {
  MatchOptions options;
  options.backend = Backend::kGenerated;
  options.threads = 2;  // each racer's kernel also runs a (small) team
  return options;
}

TEST(KernelCacheRace, SameForestFirstCompile) {
  if (!jit::compiler_available()) GTEST_SKIP() << "no system compiler";
  const Graph g = test_graph();
  const GraphPi engine(g);
  const Count want = engine.count(patterns::house());

  constexpr int kThreads = 6;
  std::vector<Count> got(kThreads, 0);
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      workers.emplace_back([&engine, &got, t] {
        got[static_cast<std::size_t>(t)] =
            engine.count(patterns::house(), generated_backend());
      });
    for (auto& w : workers) w.join();
  }
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(got[static_cast<std::size_t>(t)], want) << "racer " << t;
}

TEST(KernelCacheRace, DistinctForestsFirstCompile) {
  if (!jit::compiler_available()) GTEST_SKIP() << "no system compiler";
  const Graph g = test_graph();
  const GraphPi engine(g);

  // Two racers per forest: every distinct kernel is simultaneously a
  // same-key race and a cross-key one (shared cache map + directory).
  const std::vector<Pattern> singles = {patterns::pentagon(),
                                        patterns::rectangle(),
                                        patterns::clique(4)};
  const std::vector<Pattern> batch = {patterns::clique(3),
                                      patterns::rectangle(),
                                      patterns::house()};
  std::vector<Count> single_want;
  for (const Pattern& p : singles) single_want.push_back(engine.count(p));
  const std::vector<Count> batch_want = engine.count_batch(batch);

  constexpr int kRacersPerForest = 2;
  std::vector<std::vector<Count>> single_got(
      singles.size() * kRacersPerForest);
  std::vector<std::vector<Count>> batch_got(kRacersPerForest);
  {
    std::vector<std::thread> workers;
    for (std::size_t i = 0; i < singles.size(); ++i)
      for (int r = 0; r < kRacersPerForest; ++r)
        workers.emplace_back([&engine, &singles, &single_got, i, r] {
          single_got[i * kRacersPerForest + static_cast<std::size_t>(r)] = {
              engine.count(singles[i], generated_backend())};
        });
    for (int r = 0; r < kRacersPerForest; ++r)
      workers.emplace_back([&engine, &batch, &batch_got, r] {
        batch_got[static_cast<std::size_t>(r)] =
            engine.count_batch(batch, generated_backend());
      });
    for (auto& w : workers) w.join();
  }
  for (std::size_t i = 0; i < singles.size(); ++i)
    for (int r = 0; r < kRacersPerForest; ++r)
      EXPECT_EQ(
          single_got[i * kRacersPerForest + static_cast<std::size_t>(r)],
          std::vector<Count>{single_want[i]})
          << "pattern " << i << " racer " << r;
  for (int r = 0; r < kRacersPerForest; ++r)
    EXPECT_EQ(batch_got[static_cast<std::size_t>(r)], batch_want)
        << "batch racer " << r;

  // Nothing in the contention above may have been recorded as a build
  // failure (failures would silently demote future calls to the
  // interpreter).
  EXPECT_EQ(jit::KernelCache::instance().stats().failures, 0u);
}

}  // namespace
}  // namespace graphpi
