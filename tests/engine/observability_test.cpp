// End-to-end observability: the engines feed the metrics registry
// (support/metrics.h) and trace layer, and disabling the instruments
// never changes a count.
#include <gtest/gtest.h>

#include <cstddef>
#include <string_view>
#include <vector>

#include "api/graphpi.h"
#include "core/pattern_library.h"
#include "graph/generators.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace graphpi {
namespace {

using support::metrics::Registry;
using support::metrics::Snapshot;

Graph census_graph() { return erdos_renyi(120, 700, /*seed=*/9); }

/// Diff of the registry across one thunk.
template <typename F>
Snapshot metered(F&& fn) {
  const Snapshot before = Registry::instance().snapshot();
  std::forward<F>(fn)();
  return Registry::instance().snapshot().diff(before);
}

// The 4-motif census runs through the ForestExecutor, whose
// invariant-leaf memo should see repeated windows — the self-tuning
// counters must surface nonzero lookups AND hits through the registry.
TEST(Observability, MemoCountersNonZeroOnMotifCensus) {
  const Graph g = census_graph();
  const GraphPi engine(g);
  const Snapshot delta =
      metered([&] { (void)engine.motif_census(4); });
  EXPECT_GT(delta.counter_or("engine.forest.runs"), 0u);
  EXPECT_GT(delta.counter_or("engine.forest.roots_completed"), 0u);
  EXPECT_GT(delta.counter_or("engine.memo.lookups"), 0u);
  EXPECT_GT(delta.counter_or("engine.memo.hits"), 0u);
}

TEST(Observability, SerialCountFeedsMatcherCounters) {
  const Graph g = census_graph();
  const GraphPi engine(g);
  const Snapshot delta = metered(
      [&] { (void)engine.count(patterns::house()); });
  EXPECT_EQ(delta.counter_or("engine.matcher.runs"), 1u);
  EXPECT_EQ(delta.counter_or("engine.matcher.roots_completed"),
            static_cast<std::uint64_t>(g.vertex_count()));
  EXPECT_GT(delta.counter_or("engine.iep.terms_evaluated"), 0u);
}

TEST(Observability, ParallelCountFeedsWorkerCounters) {
  const Graph g = census_graph();
  const GraphPi engine(g);
  MatchOptions options;
  options.backend = Backend::kParallel;
  const Snapshot delta = metered(
      [&] { (void)engine.count(patterns::house(), options); });
  EXPECT_EQ(delta.counter_or("engine.parallel.runs"), 1u);
  EXPECT_GT(delta.counter_or("engine.parallel.tasks"), 0u);
  EXPECT_GT(delta.counter_or("engine.parallel.workers"), 0u);
}

TEST(Observability, DistributedRunBridgesClusterStats) {
  const Graph g = census_graph();
  const GraphPi engine(g);
  MatchOptions options;
  options.backend = Backend::kDistributed;
  options.nodes = 3;
  const Snapshot delta = metered(
      [&] { (void)engine.count(patterns::house(), options); });
  EXPECT_EQ(delta.counter_or("dist.runs"), 1u);
  EXPECT_GT(delta.counter_or("dist.tasks"), 0u);
  EXPECT_GT(delta.counter_or("dist.messages"), 0u);
  EXPECT_GT(delta.counter_or("dist.bytes"), 0u);
}

TEST(Observability, BoundedRunsRecordStopStatus) {
  const Graph g = census_graph();
  const GraphPi engine(g);
  MatchOptions options;
  options.work_budget = 5;
  support::RunReport report;
  const Snapshot delta = metered([&] {
    (void)engine.count(patterns::house(), options, &report);
  });
  ASSERT_EQ(report.status, support::RunStatus::kBudget);
  EXPECT_EQ(delta.counter_or("exec.budget_exhausted"), 1u);
}

// The acceptance bar for the whole layer: turning the instruments off
// changes nothing about the counts, on every backend.
TEST(Observability, DisabledMetricsPreserveCounts) {
  const Graph g = census_graph();
  const GraphPi engine(g);
  const Pattern p = patterns::house();
  const bool was = support::metrics::enabled();
  for (const Backend backend :
       {Backend::kSerial, Backend::kParallel, Backend::kDistributed}) {
    MatchOptions options;
    options.backend = backend;
    options.nodes = 2;
    support::metrics::set_enabled(true);
    const Count on = engine.count(p, options);
    support::metrics::set_enabled(false);
    const Count off = engine.count(p, options);
    EXPECT_EQ(on, off) << "backend " << static_cast<int>(backend);
  }
  support::metrics::set_enabled(was);
}

TEST(Observability, TraceSinkCapturesBackendSpans) {
  const Graph g = census_graph();
  const GraphPi engine(g);
  const bool was = support::metrics::enabled();
  support::metrics::set_enabled(true);
  support::trace::TraceBuffer buf;
  MatchOptions options;
  options.trace_sink = &buf;
  (void)engine.count(patterns::house(), options);
  support::metrics::set_enabled(was);
  const auto events = buf.events();
  ASSERT_FALSE(events.empty());
  bool saw_count_span = false;
  for (const auto& e : events)
    if (std::string_view(e.name) == "count.serial") saw_count_span = true;
  EXPECT_TRUE(saw_count_span);
  // The sink is scoped to the call: nothing records after it returns.
  const std::size_t after_call = events.size();
  (void)engine.count(patterns::house());
  EXPECT_EQ(buf.events().size(), after_call);
}

}  // namespace
}  // namespace graphpi
