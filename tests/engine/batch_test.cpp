// Batch forest executor: count_batch must equal the per-pattern engine
// for every connected 3- and 4-motif on random R-MAT/ER graphs, under
// the serial and parallel backends, with the vector kernels forced off
// and on — the property the ISSUE's acceptance criteria name.
#include <gtest/gtest.h>

#include <vector>

#include "api/graphpi.h"
#include "core/plan.h"
#include "core/plan_forest.h"
#include "engine/forest.h"
#include "engine/parallel.h"
#include "graph/vertex_set.h"
#include "test_util.h"

namespace graphpi {
namespace {

std::vector<Count> per_pattern_reference(const GraphPi& engine,
                                         const std::vector<Pattern>& ps) {
  std::vector<Count> counts;
  counts.reserve(ps.size());
  for (const Pattern& p : ps) counts.push_back(engine.count(p));
  return counts;
}

TEST(Batch, MatchesPerPatternAcrossBackendsAndKernels) {
  const std::vector<Graph> graphs = {rmat(7, 600, 5),
                                     erdos_renyi(70, 300, 6)};
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const GraphPi engine(graphs[gi]);
    for (int k : {3, 4}) {
      const auto motifs = patterns::connected_motifs(k);
      const std::vector<Count> expected =
          per_pattern_reference(engine, motifs);
      for (bool scalar : {false, true}) {
        force_scalar_kernels(scalar);
        for (Backend backend : {Backend::kSerial, Backend::kParallel}) {
          MatchOptions opt;
          opt.backend = backend;
          const std::vector<Count> batch = engine.count_batch(motifs, opt);
          ASSERT_EQ(batch.size(), motifs.size());
          for (std::size_t i = 0; i < motifs.size(); ++i)
            EXPECT_EQ(batch[i], expected[i])
                << "graph " << gi << " k=" << k << " motif " << i
                << " scalar=" << scalar
                << " parallel=" << (backend == Backend::kParallel);
        }
      }
      force_scalar_kernels(false);
    }
  }
}

TEST(Batch, FiveMotifForestsInterleaveCorrectly) {
  // k = 5 produces forests where IEP leaf nodes are interior nodes of
  // other plans — the shape that once exposed a stale suffix-set reuse
  // across sibling subtrees. All 21 motifs, serial and parallel.
  const Graph g = clustered_power_law(40, 170, 2.3, 0.5, 2002);
  const GraphPi engine(g);
  const auto motifs = patterns::connected_motifs(5);
  ASSERT_EQ(motifs.size(), 21u);
  const std::vector<Count> expected = per_pattern_reference(engine, motifs);
  EXPECT_EQ(engine.count_batch(motifs), expected);
  MatchOptions par;
  par.backend = Backend::kParallel;
  EXPECT_EQ(engine.count_batch(motifs, par), expected);
}

TEST(Batch, PlainEnumerationPlansAlsoBatch) {
  // use_iep=false exercises the CountLeaf path of the forest.
  const Graph g = clustered_power_law(60, 260, 2.3, 0.4, 11);
  const GraphPi engine(g);
  const auto motifs = patterns::connected_motifs(4);
  MatchOptions no_iep;
  no_iep.use_iep = false;
  std::vector<Count> expected;
  for (const Pattern& p : motifs) expected.push_back(engine.count(p, no_iep));
  EXPECT_EQ(engine.count_batch(motifs, no_iep), expected);
}

TEST(Batch, MixedSizesAndDuplicates) {
  const Graph g = clustered_power_law(80, 350, 2.3, 0.5, 12);
  const GraphPi engine(g);
  const std::vector<Pattern> batch = {
      patterns::clique(3), patterns::clique(4),    patterns::clique(3),
      patterns::house(),   patterns::rectangle(),  patterns::path(4),
  };
  const std::vector<Count> counts = engine.count_batch(batch);
  ASSERT_EQ(counts.size(), batch.size());
  EXPECT_EQ(counts[0], counts[2]);  // duplicates get equal counters
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(counts[i], engine.count(batch[i])) << i;
}

TEST(Batch, EmptyBatchYieldsNoCounts) {
  const Graph g = erdos_renyi(20, 60, 13);
  EXPECT_TRUE(GraphPi(g).count_batch(std::vector<Pattern>{}).empty());
}

TEST(Batch, MotifCensusWrapperMatchesCountBatch) {
  const Graph g = erdos_renyi(50, 220, 14);
  const GraphPi engine(g);
  const auto census = engine.motif_census(3);
  const auto motifs = patterns::connected_motifs(3);
  ASSERT_EQ(census.size(), motifs.size());
  const std::vector<Count> counts = engine.count_batch(motifs);
  for (std::size_t i = 0; i < motifs.size(); ++i) {
    EXPECT_EQ(census[i].pattern, motifs[i]);
    EXPECT_EQ(census[i].count, counts[i]);
  }
}

TEST(Batch, PrebuiltForestIsReusableAndBackendAgnostic) {
  const Graph g = rmat(7, 700, 15);
  const GraphPi engine(g);
  const auto motifs = patterns::connected_motifs(4);
  const PlanForest forest = engine.plan_batch(motifs);
  const std::vector<Count> serial = engine.count_batch(forest);
  EXPECT_EQ(engine.count_batch(forest), serial);  // rerun, same forest
  MatchOptions par;
  par.backend = Backend::kParallel;
  EXPECT_EQ(engine.count_batch(forest, par), serial);
  ParallelRunStats stats;
  EXPECT_EQ(count_batch_parallel(g, forest, ParallelOptions{}, &stats),
            serial);
  EXPECT_EQ(stats.tasks, g.vertex_count());
}

TEST(Batch, MemoizedLeavesStayExactOnHubHeavyGraphs) {
  // Hub-heavy R-MAT activates the invariant-leaf memo (the rectangle's
  // wedge leaf); counts must not depend on cache hits, evictions or the
  // adaptive shutoff.
  const Graph g = rmat(8, 2600, 17);
  const GraphPi engine(g);
  const auto motifs = patterns::connected_motifs(4);
  const PlanForest forest = engine.plan_batch(motifs);
  ASSERT_GE(forest.stats().memoized_leaves, 1u);
  const std::vector<Count> expected = per_pattern_reference(engine, motifs);
  EXPECT_EQ(ForestExecutor(g, forest).count(), expected);
}

TEST(Batch, WorkspaceReuseAcrossRuns) {
  // A worker reusing one workspace across forests must get clean sums.
  const Graph g = erdos_renyi(60, 250, 18);
  const GraphPi engine(g);
  const PlanForest forest3 = engine.plan_batch(patterns::connected_motifs(3));
  const PlanForest forest4 = engine.plan_batch(patterns::connected_motifs(4));
  const ForestExecutor ex3(g, forest3);
  const ForestExecutor ex4(g, forest4);
  ForestExecutor::Workspace ws;
  const std::vector<Count> first3 = ex3.count(ws);
  const std::vector<Count> first4 = ex4.count(ws);
  EXPECT_EQ(ex3.count(ws), first3);
  EXPECT_EQ(ex4.count(ws), first4);
}

}  // namespace
}  // namespace graphpi
