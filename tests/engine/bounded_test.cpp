// Bounded execution across all four backends: deadlines, cooperative
// cancellation, and work budgets must stop a run early on every backend
// {serial, parallel, generated, distributed}, report WHY through the
// RunReport out-param, and stop within ~a poll stride per worker of the
// trigger. Triggers are made deterministic (pre-set cancel flags,
// already-expired deadlines, fixed budgets) so none of this races the
// wall clock.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "api/graphpi.h"
#include "graph/generators.h"
#include "support/exec_control.h"

namespace graphpi {
namespace {

using support::RunReport;
using support::RunStatus;

constexpr Backend kAllBackends[] = {Backend::kSerial, Backend::kParallel,
                                    Backend::kGenerated,
                                    Backend::kDistributed};

MatchOptions arm(Backend backend) {
  MatchOptions options;
  options.backend = backend;
  options.threads = 3;  // force a real multi-worker split
  options.nodes = 3;
  return options;
}

std::vector<Pattern> batch_patterns() {
  return {patterns::house(), patterns::pentagon(), patterns::clique(4)};
}

TEST(Bounded, UnarmedRunsReportOkWithExactCounts) {
  const Graph graph = rmat(8, 1500, 11);
  const GraphPi engine(graph);
  const std::vector<Pattern> patterns = batch_patterns();
  const std::vector<Count> want = GraphPi(graph).count_batch(patterns);

  for (const Backend backend : kAllBackends) {
    const MatchOptions options = arm(backend);
    RunReport report;
    const std::vector<Count> got =
        engine.count_batch(patterns, options, &report);
    EXPECT_EQ(report.status, RunStatus::kOk)
        << "backend " << static_cast<int>(backend);
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(got, want) << "backend " << static_cast<int>(backend);
  }
}

TEST(Bounded, PreSetCancelFlagStopsEveryBackend) {
  // Large enough that the run cannot finish before the generated
  // backend's watchdog thread has had a chance to observe the flag.
  const Graph graph = rmat(10, 14000, 17);
  const GraphPi engine(graph);
  const std::vector<Pattern> patterns = batch_patterns();
  const std::atomic<bool> cancel{true};

  for (const Backend backend : kAllBackends) {
    MatchOptions options = arm(backend);
    options.cancel = &cancel;
    options.poll_stride = 8;
    RunReport report;
    (void)engine.count_batch(patterns, options, &report);
    EXPECT_EQ(report.status, RunStatus::kCancelled)
        << "backend " << static_cast<int>(backend);
    EXPECT_FALSE(report.complete());
    // Every worker observes the pre-set flag at its FIRST poll, so almost
    // nothing runs: well under one stride per worker plus slack.
    EXPECT_LT(report.completed_roots,
              static_cast<std::uint64_t>(graph.vertex_count()))
        << "backend " << static_cast<int>(backend);
  }
}

TEST(Bounded, ExpiredDeadlineStopsWithinStrides) {
  // The acceptance shape: a deadline-armed count on a larger R-MAT must
  // return kTimeout with a partial completed-root tally within ~2 poll
  // strides per worker. The deadline is effectively already expired when
  // execution starts, so the outcome does not depend on machine speed.
  const Graph graph = rmat(10, 14000, 17);
  const GraphPi engine(graph);
  const std::vector<Pattern> patterns = batch_patterns();
  constexpr std::uint32_t kStride = 16;
  constexpr std::uint64_t kWorkers = 4;  // threads=3 / nodes=3, plus slack

  for (const Backend backend : kAllBackends) {
    MatchOptions options = arm(backend);
    options.timeout_ms = 1e-3;
    options.poll_stride = kStride;
    RunReport report;
    (void)engine.count_batch(patterns, options, &report);
    EXPECT_EQ(report.status, RunStatus::kTimeout)
        << "backend " << static_cast<int>(backend);
    // In-band pollers (serial/parallel/distributed) read the clock at
    // their poll points, so they stop within ~2 strides per worker. The
    // generated backend's deadline is serviced by a host watchdog thread
    // whose spin-up adds slack — only strict partiality is guaranteed.
    if (backend != Backend::kGenerated) {
      EXPECT_LT(report.completed_roots, 2 * kStride * kWorkers)
          << "backend " << static_cast<int>(backend);
    }
    EXPECT_LT(report.completed_roots,
              static_cast<std::uint64_t>(graph.vertex_count()))
        << "backend " << static_cast<int>(backend);
  }
}

TEST(Bounded, RootBudgetStopsEveryBackend) {
  const Graph graph = rmat(9, 4000, 13);
  const GraphPi engine(graph);
  const std::vector<Pattern> patterns = batch_patterns();
  constexpr std::uint64_t kBudget = 32;
  constexpr std::uint32_t kStride = 8;

  for (const Backend backend : kAllBackends) {
    MatchOptions options = arm(backend);
    options.work_budget = kBudget;
    options.poll_stride = kStride;
    RunReport report;
    (void)engine.count_batch(patterns, options, &report);
    EXPECT_EQ(report.status, RunStatus::kBudget)
        << "backend " << static_cast<int>(backend);
    EXPECT_GT(report.completed_roots, 0u)
        << "backend " << static_cast<int>(backend);
    // The budget is enforced at poll boundaries: the overshoot is bounded
    // by ~one stride per worker (plus sub-stride tallies in flight).
    EXPECT_LE(report.completed_roots, kBudget + kStride * 4 + 4)
        << "backend " << static_cast<int>(backend);
  }
}

TEST(Bounded, SerialBudgetIsExactAtStrideBoundary) {
  // Single-threaded root loop: polls fire at done = 8, 16, 24, 32, and
  // check(32) trips a budget of 32 exactly — no worker slack involved.
  const Graph graph = rmat(9, 4000, 13);
  const GraphPi engine(graph);
  MatchOptions options;
  options.work_budget = 32;
  options.poll_stride = 8;
  RunReport report;
  (void)engine.count_batch(batch_patterns(), options, &report);
  EXPECT_EQ(report.status, RunStatus::kBudget);
  EXPECT_EQ(report.completed_roots, 32u);
}

TEST(Bounded, SinglePatternCountReportsStatusToo) {
  // The per-pattern count path (Matcher / count_parallel / one-plan
  // forest / distributed single) honors the same options.
  const Graph graph = rmat(10, 14000, 17);
  const GraphPi engine(graph);
  const Pattern house = patterns::house();
  const Count want = engine.count(house);
  const std::atomic<bool> cancel{true};

  for (const Backend backend : kAllBackends) {
    MatchOptions options = arm(backend);
    RunReport report;
    const Count got = engine.count(house, options, &report);
    EXPECT_EQ(report.status, RunStatus::kOk)
        << "backend " << static_cast<int>(backend);
    EXPECT_EQ(got, want) << "backend " << static_cast<int>(backend);

    MatchOptions cancelled = arm(backend);
    cancelled.cancel = &cancel;
    cancelled.poll_stride = 8;
    RunReport cancel_report;
    (void)engine.count(house, cancelled, &cancel_report);
    EXPECT_EQ(cancel_report.status, RunStatus::kCancelled)
        << "backend " << static_cast<int>(backend);
  }
}

TEST(Bounded, BatchDeadlineSpansChunksAndPadsSkippedCounts) {
  // 70 patterns = two 64-plan chunks. An expired deadline stops inside
  // the first chunk; the second chunk is skipped and its counts pad to 0.
  const Graph graph = rmat(8, 1500, 11);
  const GraphPi engine(graph);
  std::vector<Pattern> many;
  for (int i = 0; i < 70; ++i)
    many.push_back(i % 2 == 0 ? patterns::rectangle() : patterns::clique(3));
  MatchOptions options;
  options.timeout_ms = 1e-3;
  RunReport report;
  const std::vector<Count> got = engine.count_batch(many, options, &report);
  EXPECT_EQ(report.status, RunStatus::kTimeout);
  ASSERT_EQ(got.size(), many.size());
  for (std::size_t i = PlanForest::kMaxPlans; i < got.size(); ++i)
    EXPECT_EQ(got[i], 0u) << "skipped chunk entry " << i;
}

}  // namespace
}  // namespace graphpi
