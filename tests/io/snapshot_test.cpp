// GPS1 snapshot round trips: CSR-exact save/load across topologies and
// block sizes, degree-reorder invariance, count equality across engines
// and kernel ISAs on snapshot-loaded graphs, lazy per-block decode, the
// per-shard snapshot path, and the io.snapshot.* metrics contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

#include "api/graphpi.h"
#include "dist/runtime.h"
#include "io/shard_snapshot.h"
#include "io/snapshot.h"
#include "test_util.h"

namespace graphpi {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

/// RAII file (set) cleanup so failed assertions don't leak temp files.
struct TempFiles {
  std::vector<std::string> paths;
  ~TempFiles() {
    for (const auto& p : paths) fs::remove(p);
  }
  const std::string& add(std::string p) {
    paths.push_back(std::move(p));
    return paths.back();
  }
};

TEST(Snapshot, RoundTripPreservesCsrExactly) {
  TempFiles files;
  const auto& path = files.add(temp_path("graphpi_snap_roundtrip.gps"));
  int i = 0;
  for (const Graph& g : testing::small_test_graphs()) {
    const std::uint64_t triangles = g.triangle_count();  // prime the cache
    g.save_snapshot(path);
    const Graph loaded = Graph::load_snapshot(path);
    EXPECT_EQ(loaded.raw_offsets(), g.raw_offsets()) << "graph " << i;
    EXPECT_EQ(loaded.raw_neighbors(), g.raw_neighbors()) << "graph " << i;
    EXPECT_TRUE(loaded.validate()) << "graph " << i;
    // The cached triangle count travels in the header — no recount.
    EXPECT_TRUE(loaded.has_cached_triangle_count()) << "graph " << i;
    EXPECT_EQ(loaded.triangle_count(), triangles) << "graph " << i;
    ++i;
  }
}

TEST(Snapshot, HandlesEmptyAndIsolatedVertexGraphs) {
  TempFiles files;
  const auto& path = files.add(temp_path("graphpi_snap_edge_cases.gps"));

  const Graph empty(std::vector<EdgeIndex>{0}, {});
  empty.save_snapshot(path);
  EXPECT_EQ(Graph::load_snapshot(path).vertex_count(), 0u);

  // One edge surrounded by isolated vertices (empty rows at both ends
  // and in the middle of a block).
  const Graph sparse(std::vector<EdgeIndex>{0, 0, 1, 1, 2, 2}, {3, 1});
  sparse.save_snapshot(path);
  const Graph loaded = Graph::load_snapshot(path);
  EXPECT_EQ(loaded.raw_offsets(), sparse.raw_offsets());
  EXPECT_EQ(loaded.raw_neighbors(), sparse.raw_neighbors());
}

TEST(Snapshot, BlockVerticesSweepAndLazyBlockDecode) {
  TempFiles files;
  const Graph g = clustered_power_law(300, 1500, 2.3, 0.4, 11);
  for (const std::uint32_t bv : {1u, 3u, 64u, 5000u}) {
    const auto& path = files.add(
        temp_path("graphpi_snap_bv" + std::to_string(bv) + ".gps"));
    io::SnapshotOptions options;
    options.block_vertices = bv;
    io::save_snapshot(g, path, options);

    const io::MappedSnapshot snap(path);
    const std::uint32_t expected_blocks =
        (g.vertex_count() + bv - 1) / bv;
    EXPECT_EQ(snap.block_count(), expected_blocks) << "bv " << bv;
    EXPECT_EQ(snap.info().slot_count, g.directed_edge_count()) << "bv " << bv;

    // Reassemble the CSR from individually (lazily) decoded blocks.
    std::vector<std::uint32_t> degrees;
    std::vector<VertexId> neighbors;
    io::DecodedBlock block;
    for (std::uint32_t b = 0; b < snap.block_count(); ++b) {
      snap.decode_block(b, block);
      EXPECT_EQ(block.first_vertex, b * bv) << "bv " << bv;
      degrees.insert(degrees.end(), block.degrees.begin(),
                     block.degrees.end());
      neighbors.insert(neighbors.end(), block.neighbors.begin(),
                       block.neighbors.end());
    }
    EXPECT_EQ(neighbors, g.raw_neighbors()) << "bv " << bv;
    for (VertexId v = 0; v < g.vertex_count(); ++v)
      ASSERT_EQ(degrees[v], g.degree(v)) << "bv " << bv << " vertex " << v;

    EXPECT_EQ(Graph::load_snapshot(path).raw_neighbors(), g.raw_neighbors())
        << "bv " << bv;
  }
}

TEST(Snapshot, ReorderByDegreeIsACountPreservingIsomorphism) {
  const Graph g = clustered_power_law(200, 900, 2.3, 0.4, 21);
  std::vector<VertexId> old_to_new;
  const Graph reordered = g.reorder_by_degree(&old_to_new);

  EXPECT_TRUE(reordered.validate());
  ASSERT_EQ(old_to_new.size(), g.vertex_count());

  // old_to_new is a permutation...
  std::vector<bool> seen(g.vertex_count(), false);
  for (VertexId v : old_to_new) {
    ASSERT_LT(v, g.vertex_count());
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
  // ...that maps edges to edges and sorts degrees descending.
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    EXPECT_EQ(reordered.degree(old_to_new[v]), g.degree(v));
    for (VertexId w : g.neighbors(v))
      EXPECT_TRUE(reordered.has_edge(old_to_new[v], old_to_new[w]));
  }
  for (VertexId v = 1; v < reordered.vertex_count(); ++v)
    EXPECT_GE(reordered.degree(v - 1), reordered.degree(v));

  // Embedding counts are relabel-invariant.
  const GraphPi before(g);
  const GraphPi after(reordered);
  for (const Pattern& p :
       {patterns::clique(3), patterns::house(), patterns::rectangle()}) {
    EXPECT_EQ(after.count(p), before.count(p)) << p.to_string();
  }
}

TEST(Snapshot, CountsMatchAcrossBackendsAndKernelIsas) {
  TempFiles files;
  const auto& path = files.add(temp_path("graphpi_snap_isas.gps"));
  const Graph g = power_law(300, 1400, 2.3, 31);
  g.reorder_by_degree().save_snapshot(path);
  const Graph loaded = Graph::load_snapshot(path);

  const Pattern pattern = patterns::house();
  const Count expected = GraphPi(g).count(pattern);
  const GraphPi engine(loaded);
  for (const KernelIsa isa :
       {KernelIsa::kScalar, KernelIsa::kAvx2, KernelIsa::kAvx512}) {
    if (!cpu_supports(isa)) continue;
    MatchOptions options;
    options.kernels = isa;
    EXPECT_EQ(engine.count(pattern, options), expected)
        << "serial " << to_string(isa);
    options.backend = Backend::kParallel;
    EXPECT_EQ(engine.count(pattern, options), expected)
        << "parallel " << to_string(isa);
  }
}

TEST(Snapshot, ShardSnapshotsRebuildTheShardingExactly) {
  TempFiles files;
  const Graph g = clustered_power_law(250, 1100, 2.3, 0.4, 41);
  for (const auto strategy :
       {dist::PartitionStrategy::kHash, dist::PartitionStrategy::kRange}) {
    dist::ShardOptions shard_options;
    shard_options.nodes = 3;
    shard_options.strategy = strategy;
    const dist::ShardedGraph built(g, shard_options);

    const std::string prefix =
        temp_path(std::string("graphpi_snap_shards_") +
                  dist::to_string(strategy));
    for (const std::string& p :
         io::save_shard_snapshots(built, prefix)) files.add(p);
    const dist::ShardedGraph loaded = io::load_shard_snapshots(prefix);

    EXPECT_FALSE(loaded.has_parent());
    ASSERT_EQ(loaded.nodes(), built.nodes());
    EXPECT_EQ(loaded.vertex_count(), g.vertex_count());
    EXPECT_EQ(loaded.options().strategy, strategy);
    for (VertexId v = 0; v < g.vertex_count(); ++v)
      ASSERT_EQ(loaded.owner(v), built.owner(v));
    for (int node = 0; node < built.nodes(); ++node) {
      const dist::Shard& a = built.shard(node);
      const dist::Shard& b = loaded.shard(node);
      EXPECT_EQ(b.view().raw_offsets(), a.view().raw_offsets());
      EXPECT_EQ(b.view().raw_neighbors(), a.view().raw_neighbors());
      ASSERT_EQ(b.resident_count(), a.resident_count());
      for (std::uint32_t local = 0; local < a.resident_count(); ++local)
        ASSERT_EQ(b.global_id(local), a.global_id(local));
      EXPECT_EQ(std::vector<VertexId>(b.owned().begin(), b.owned().end()),
                std::vector<VertexId>(a.owned().begin(), a.owned().end()));
    }
    EXPECT_DOUBLE_EQ(loaded.stats().replication_factor,
                     built.stats().replication_factor);

    // The reloaded sharding is drop-in for the distributed executor.
    const std::vector<Pattern> batch = {patterns::clique(3),
                                        patterns::house()};
    const PlanForest forest = GraphPi(g).plan_batch(batch);
    EXPECT_EQ(dist::distributed_count_batch(loaded, forest),
              dist::distributed_count_batch(built, forest))
        << dist::to_string(strategy);
  }
}

TEST(Snapshot, AmbiguousShardPrefixIsRejected) {
  // Two shard sets under one prefix (0-of-2 and 0-of-3): which set
  // loads must not depend on directory iteration order, so the loader
  // refuses instead of picking one.
  TempFiles files;
  const Graph g = erdos_renyi(80, 240, 71);
  const std::string prefix = temp_path("graphpi_snap_ambiguous");
  for (const int nodes : {2, 3}) {
    dist::ShardOptions options;
    options.nodes = nodes;
    for (const std::string& p :
         io::save_shard_snapshots(dist::ShardedGraph(g, options), prefix))
      files.add(p);
  }
  EXPECT_THROW((void)io::load_shard_snapshots(prefix), io::SnapshotError);
}

TEST(Snapshot, MetricsCountersAccountForSavesAndLoads) {
  TempFiles files;
  const auto& path = files.add(temp_path("graphpi_snap_metrics.gps"));
  const Graph g = erdos_renyi(120, 480, 51);
  const auto before = GraphPi::metrics_snapshot();
  g.save_snapshot(path);
  (void)Graph::load_snapshot(path);
  const auto delta = GraphPi::metrics_snapshot().diff(before);
  EXPECT_EQ(delta.counter_or("io.snapshot.saves"), 1u);
  EXPECT_EQ(delta.counter_or("io.snapshot.loads"), 1u);
  EXPECT_EQ(delta.counter_or("io.snapshot.opens"), 1u);
  EXPECT_GT(delta.counter_or("io.snapshot.bytes_written"), 0u);
  EXPECT_GT(delta.counter_or("io.snapshot.bytes_mapped"), 0u);
  EXPECT_GT(delta.counter_or("io.snapshot.blocks_decoded"), 0u);
  EXPECT_EQ(delta.counter_or("io.snapshot.crc_rejects"), 0u);
}

}  // namespace
}  // namespace graphpi
