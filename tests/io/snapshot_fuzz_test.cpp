// Adversarial-input coverage for the snapshot stack: the varint codec
// fuzzed against the scalar reference under every selectable kernel ISA,
// malformed varint rejection, and seeded corruption / truncation fuzz
// proving MappedSnapshot fails cleanly (SnapshotError, never UB — the
// ASan CI job runs this loud) on damaged files.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dist/comm.h"
#include "graph/generators.h"
#include "graph/vertex_set.h"
#include "io/snapshot.h"
#include "support/rng.h"

namespace graphpi {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in) << path;
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Pins the kernel table to `isa` for one scope, restoring the previous
/// selection on exit.
class IsaGuard {
 public:
  explicit IsaGuard(KernelIsa isa) : previous_(active_kernel_isa()) {
    selected_ = select_kernel_isa(isa);
  }
  ~IsaGuard() { select_kernel_isa(previous_); }
  [[nodiscard]] bool selected() const noexcept { return selected_; }

 private:
  KernelIsa previous_;
  bool selected_;
};

TEST(VarintFuzz, EveryIsaMatchesTheScalarReference) {
  support::Xoshiro256StarStar rng(0xF00D);
  for (int trial = 0; trial < 50; ++trial) {
    // Length and magnitude mixes chosen to cross every fast-path
    // boundary: all-1-byte runs, mixed widths, and 5-byte maxima.
    const std::size_t count = 1 + rng.bounded(400);
    std::vector<std::uint32_t> values(count);
    std::vector<std::uint8_t> encoded;
    for (auto& v : values) {
      switch (rng.bounded(4)) {
        case 0: v = static_cast<std::uint32_t>(rng.bounded(0x80)); break;
        case 1: v = static_cast<std::uint32_t>(rng.bounded(0x4000)); break;
        case 2: v = static_cast<std::uint32_t>(rng.bounded(1u << 28)); break;
        default: v = static_cast<std::uint32_t>(rng.next()); break;
      }
      io::append_varint(encoded, v);
    }
    std::vector<std::uint32_t> scalar(count);
    ASSERT_EQ(varint_decode_u32_scalar(encoded, count, scalar.data()),
              encoded.size());
    ASSERT_EQ(scalar, values);

    for (const KernelIsa isa :
         {KernelIsa::kScalar, KernelIsa::kAvx2, KernelIsa::kAvx512}) {
      const IsaGuard guard(isa);
      if (!guard.selected()) continue;
      std::vector<std::uint32_t> got(count);
      EXPECT_EQ(varint_decode_u32(encoded, count, got.data()), encoded.size())
          << to_string(isa) << " trial " << trial;
      EXPECT_EQ(got, values) << to_string(isa) << " trial " << trial;
    }
  }
}

TEST(VarintFuzz, TruncationAndOverflowAreMalformed) {
  std::vector<std::uint8_t> encoded;
  io::append_varint(encoded, 1);
  io::append_varint(encoded, 0xFFFFFFFFu);  // 5 bytes
  io::append_varint(encoded, 300);          // 2 bytes
  std::vector<std::uint32_t> out(3);
  for (const KernelIsa isa :
       {KernelIsa::kScalar, KernelIsa::kAvx2, KernelIsa::kAvx512}) {
    const IsaGuard guard(isa);
    if (!guard.selected()) continue;
    // Every proper prefix that cuts a varint mid-byte-sequence fails.
    for (std::size_t len = 0; len < encoded.size(); ++len) {
      if (len == 1) continue;  // clean boundary after the first value
      EXPECT_EQ(varint_decode_u32({encoded.data(), len}, 3, out.data()),
                kVarintMalformed)
          << to_string(isa) << " len " << len;
    }
    // A 5th byte with payload bits above u32 range is rejected.
    const std::vector<std::uint8_t> overflow = {0xFF, 0xFF, 0xFF, 0xFF, 0x10};
    EXPECT_EQ(varint_decode_u32(overflow, 1, out.data()), kVarintMalformed)
        << to_string(isa);
    // A varint running past 5 bytes (continuation never clears) too.
    const std::vector<std::uint8_t> runaway(8, 0xFF);
    EXPECT_EQ(varint_decode_u32(runaway, 1, out.data()), kVarintMalformed)
        << to_string(isa);
  }
}

class SnapshotCorruptionFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = temp_path("graphpi_snap_fuzz_pristine.gps");
    damaged_ = temp_path("graphpi_snap_fuzz_damaged.gps");
    const Graph g = clustered_power_law(220, 1000, 2.3, 0.4, 61);
    io::SnapshotOptions options;
    options.block_vertices = 64;  // several blocks -> index gets exercised
    io::save_snapshot(g.reorder_by_degree(), path_, options);
    pristine_ = read_file(path_);
    ASSERT_GT(pristine_.size(), 100u);
  }
  void TearDown() override {
    fs::remove(path_);
    fs::remove(damaged_);
  }

  /// The pristine file must open and fully decode; any damaged variant
  /// must throw SnapshotError from open or decode — never crash, hang,
  /// or return a graph silently.
  void expect_rejected(const std::vector<std::uint8_t>& bytes,
                       const std::string& label) {
    write_file(damaged_, bytes);
    EXPECT_THROW(
        {
          const io::MappedSnapshot snap(damaged_);
          (void)snap.decode_graph();
        },
        io::SnapshotError)
        << label;
  }

  std::string path_;
  std::string damaged_;
  std::vector<std::uint8_t> pristine_;
};

TEST_F(SnapshotCorruptionFuzz, PristineFileDecodes) {
  const io::MappedSnapshot snap(path_);
  EXPECT_TRUE(snap.decode_graph().validate());
}

TEST_F(SnapshotCorruptionFuzz, SingleByteFlipsAreAlwaysRejected) {
  // Every byte of the file is covered by a CRC (header, index, or block
  // payload), so any single-bit-pattern change must be caught.
  support::Xoshiro256StarStar rng(0xC0FFEE);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> bytes = pristine_;
    const std::size_t pos = rng.bounded(bytes.size());
    const auto flip =
        static_cast<std::uint8_t>(1u << rng.bounded(8));
    bytes[pos] ^= flip;
    expect_rejected(bytes, "flip bit at byte " + std::to_string(pos));
  }
}

TEST_F(SnapshotCorruptionFuzz, TruncationsAreAlwaysRejected) {
  support::Xoshiro256StarStar rng(0xBEEF);
  std::vector<std::size_t> lengths = {0, 1, 4, 55, 56, 57};
  for (int trial = 0; trial < 60; ++trial)
    lengths.push_back(rng.bounded(pristine_.size()));
  lengths.push_back(pristine_.size() - 1);
  for (const std::size_t len : lengths) {
    ASSERT_LT(len, pristine_.size());
    expect_rejected({pristine_.begin(),
                     pristine_.begin() + static_cast<std::ptrdiff_t>(len)},
                    "truncate to " + std::to_string(len));
  }
}

TEST_F(SnapshotCorruptionFuzz, TrailingGarbageAfterAValidFileIsHarmless) {
  // Appended bytes don't invalidate the indexed regions; the reader
  // must keep working (forward-compat niche: padded files).
  std::vector<std::uint8_t> bytes = pristine_;
  bytes.insert(bytes.end(), 33, 0xAB);
  write_file(damaged_, bytes);
  const io::MappedSnapshot snap(damaged_);
  EXPECT_TRUE(snap.decode_graph().validate());
}

TEST_F(SnapshotCorruptionFuzz, AuxOffsetNearU64MaxIsRejected) {
  // `aux_offset + aux_bytes + 4` wraps u64 for offsets near 2^64; the
  // reader's subtraction-form bound must reject the file instead of
  // reading through data_ + aux_offset. Header CRC is recomputed so
  // only the geometry check stands between the file and the wild read.
  std::vector<std::uint8_t> bytes = pristine_;
  std::uint32_t flags;
  std::memcpy(&flags, bytes.data() + 8, 4);
  flags |= 1u << 2;  // kFlagHasAux
  std::memcpy(bytes.data() + 8, &flags, 4);
  const std::uint64_t aux_offset = ~std::uint64_t{0} - 9;  // 2^64 - 10
  const std::uint32_t aux_bytes = 8;
  std::memcpy(bytes.data() + 40, &aux_offset, 8);
  std::memcpy(bytes.data() + 48, &aux_bytes, 4);
  const std::uint32_t crc = dist::crc32({bytes.data(), 52});
  std::memcpy(bytes.data() + 52, &crc, 4);
  expect_rejected(bytes, "aux offset near u64 max");
}

TEST(SnapshotCrafted, IndexSlotsBeyondHeaderSlotCountAreRejected) {
  // Bit flips can't reach this bug class because every region is CRC
  // framed, so build the malicious file wholesale: all CRCs valid and
  // every per-region check self-consistent, but the block index claims
  // block 0 holds 1000 slots while the header budgets 10 for the whole
  // graph. If open accepted it, decode (whose degree stream really does
  // sum to 1000) would write 1000 neighbors into a 10-slot array.
  const auto put_u32 = [](std::vector<std::uint8_t>& out, std::uint32_t v) {
    const auto off = out.size();
    out.resize(off + 4);
    std::memcpy(out.data() + off, &v, 4);
  };
  const auto put_u64 = [](std::vector<std::uint8_t>& out, std::uint64_t v) {
    const auto off = out.size();
    out.resize(off + 8);
    std::memcpy(out.data() + off, &v, 8);
  };

  // Block 0 (vertices 0..63): 40 rows of degree 25 (ids 0..24), sum 1000.
  std::vector<std::uint8_t> degrees0, heads0, deltas0;
  for (int v = 0; v < 64; ++v)
    io::append_varint(degrees0, v < 40 ? 25u : 0u);
  for (int row = 0; row < 40; ++row) {
    io::append_varint(heads0, 0);
    for (int k = 1; k < 25; ++k) io::append_varint(deltas0, 1);
  }
  const auto make_block = [&put_u32](const std::vector<std::uint8_t>& degrees,
                                     const std::vector<std::uint8_t>& heads,
                                     const std::vector<std::uint8_t>& deltas) {
    std::vector<std::uint8_t> block;
    put_u32(block, static_cast<std::uint32_t>(degrees.size()));
    put_u32(block, static_cast<std::uint32_t>(heads.size()));
    put_u32(block, static_cast<std::uint32_t>(deltas.size()));
    block.insert(block.end(), degrees.begin(), degrees.end());
    block.insert(block.end(), heads.begin(), heads.end());
    block.insert(block.end(), deltas.begin(), deltas.end());
    return block;
  };
  const std::vector<std::uint8_t> block0 =
      make_block(degrees0, heads0, deltas0);
  // Block 1 (vertices 64..127): all rows empty.
  const std::vector<std::uint8_t> block1 =
      make_block(std::vector<std::uint8_t>(64, 0), {}, {});

  const std::uint64_t payload_base = 56 + 2 * 24 + 4;
  std::vector<std::uint8_t> index;
  put_u64(index, payload_base);
  put_u64(index, 0);  // block 0 first_slot
  put_u32(index, static_cast<std::uint32_t>(block0.size()));
  put_u32(index, dist::crc32(block0));
  put_u64(index, payload_base + block0.size());
  put_u64(index, 1000);  // block 1 first_slot: far past the header's 10
  put_u32(index, static_cast<std::uint32_t>(block1.size()));
  put_u32(index, dist::crc32(block1));
  put_u32(index, dist::crc32(index));

  std::vector<std::uint8_t> file(4);
  std::memcpy(file.data(), "GPS1", 4);
  put_u32(file, 1);    // version
  put_u32(file, 0);    // flags
  put_u32(file, 128);  // vertex_count
  put_u64(file, 10);   // slot_count: the lie
  put_u32(file, 64);   // block_vertices
  put_u32(file, 2);    // block_count
  put_u64(file, 0);    // triangles
  put_u64(file, 0);    // aux offset
  put_u32(file, 0);    // aux bytes
  put_u32(file, dist::crc32(file));
  file.insert(file.end(), index.begin(), index.end());
  file.insert(file.end(), block0.begin(), block0.end());
  file.insert(file.end(), block1.begin(), block1.end());

  const std::string path = temp_path("graphpi_snap_crafted_slots.gps");
  write_file(path, file);
  EXPECT_THROW(
      {
        const io::MappedSnapshot snap(path);
        (void)snap.decode_graph();
      },
      io::SnapshotError);
  fs::remove(path);
}

TEST(SnapshotErrors, MissingAndForeignFilesThrow) {
  EXPECT_THROW((void)Graph::load_snapshot(
                   temp_path("graphpi_snap_does_not_exist.gps")),
               io::SnapshotError);
  const std::string path = temp_path("graphpi_snap_foreign.bin");
  write_file(path, {'G', 'P', 'I', '1', 0, 0, 0, 0});  // binary-CSR magic
  EXPECT_THROW((void)Graph::load_snapshot(path), io::SnapshotError);
  fs::remove(path);
}

}  // namespace
}  // namespace graphpi
