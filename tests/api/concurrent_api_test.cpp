// Concurrency hammer for the public facade: one GraphPi engine shared
// by N threads issuing mixed queries, the usage pattern of the query
// service (src/service/). Counts must stay bit-identical under
// contention and — run under the TSan CI job — every lazily-filled
// shared structure (triangle cache, hub index, plan memoization in the
// callers, metrics registry, JIT kernel cache) must be properly
// synchronized.
//
// Under ThreadSanitizer the OpenMP backends are skipped: libgomp is not
// TSan-instrumented, so its barriers produce false positives (same
// reasoning as the CI test filter). The serial backend still exercises
// everything the service's worker pool shares.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "api/graphpi.h"
#include "engine/oracle.h"
#include "test_util.h"

namespace graphpi {
namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

std::vector<Backend> hammer_backends() {
  if (kTsan) return {Backend::kSerial};
  return {Backend::kSerial, Backend::kParallel, Backend::kGenerated};
}

TEST(ConcurrentApi, SharedEngineProducesIdenticalCounts) {
  const Graph g = clustered_power_law(120, 560, 2.3, 0.4, 77);
  const GraphPi engine(g);
  const std::vector<Pattern> patterns = {
      patterns::clique(3), patterns::rectangle(), patterns::house(),
      patterns::tailed_triangle()};
  std::vector<Count> expected;
  for (const Pattern& p : patterns) expected.push_back(oracle_count(g, p));

  const auto backends = hammer_backends();
  constexpr int kThreads = 8;
  constexpr int kRounds = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t pi =
            static_cast<std::size_t>(t + round) % patterns.size();
        MatchOptions opt;
        opt.backend = backends[static_cast<std::size_t>(t + round) %
                               backends.size()];
        // Like the service: kernels stay kAuto (the dispatch table is
        // process-global), thread counts stay modest.
        opt.threads = 2;
        opt.use_iep = (t + round) % 2 == 0;
        if (engine.count(patterns[pi], opt) != expected[pi])
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentApi, LazyTriangleCacheIsThreadSafe) {
  // First-touch of triangle_count() from many threads at once: before
  // the atomic publication fix this was a data race on the mutable
  // cache fields (two GraphPi instances planning against one Graph —
  // exactly what concurrent service startup/queries do).
  const Graph g = clustered_power_law(150, 700, 2.2, 0.5, 91);
  const std::uint64_t expected = [] {
    const Graph ref = clustered_power_law(150, 700, 2.2, 0.5, 91);
    return ref.triangle_count();
  }();
  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      if (g.triangle_count() != expected)
        mismatches.fetch_add(1, std::memory_order_relaxed);
      // Planning reads the cached value through GraphStats::of.
      if (static_cast<std::uint64_t>(GraphStats::of(g).triangles) != expected)
        mismatches.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentApi, ConcurrentHubIndexAndEdgeQueries) {
  const Graph g = power_law(400, 3000, 2.1, 13);
  constexpr int kThreads = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      g.ensure_hub_index();
      for (VertexId v = 0; v < 64; ++v)
        for (const VertexId w : g.neighbors(v))
          if (!g.has_edge(w, v)) failures.fetch_add(1);
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrentApi, BoundedRunsUnderContentionReportConsistently) {
  // Cancel flags and deadlines are per-call state; hammering them from
  // many threads over one engine must neither crash nor corrupt counts.
  const Graph g = clustered_power_law(100, 500, 2.3, 0.4, 55);
  const GraphPi engine(g);
  const Pattern p = patterns::house();
  const Count expected = [&] {
    return engine.count(p);
  }();
  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::atomic<bool> cancel{t % 4 == 3};  // some runs pre-cancelled
      MatchOptions opt;
      opt.cancel = &cancel;
      opt.poll_stride = 1;
      if (t % 4 == 2) opt.work_budget = 5;
      support::RunReport report;
      const Count n = engine.count(p, opt, &report);
      if (report.status == support::RunStatus::kOk && n != expected)
        failures.fetch_add(1);
      if (report.status != support::RunStatus::kOk && n > expected)
        failures.fetch_add(1);  // partial counts never exceed the total
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace graphpi
