// Public facade: planning, counting and listing through every backend,
// plus dataset stand-ins.
#include <gtest/gtest.h>

#include "api/graphpi.h"
#include "engine/oracle.h"

namespace graphpi {
namespace {

TEST(Api, CountAgreesAcrossBackends) {
  const Graph g = clustered_power_law(110, 550, 2.3, 0.4, 19);
  const GraphPi engine(g);
  for (const auto& p : {patterns::house(), patterns::pentagon(),
                        patterns::clique(4)}) {
    const Count expected = oracle_count(g, p);
    for (const Backend backend :
         {Backend::kSerial, Backend::kParallel, Backend::kDistributed}) {
      MatchOptions opt;
      opt.backend = backend;
      EXPECT_EQ(engine.count(p, opt), expected)
          << p.to_string() << " backend " << static_cast<int>(backend);
    }
  }
}

TEST(Api, IepToggleDoesNotChangeResults) {
  const Graph g = clustered_power_law(100, 520, 2.2, 0.5, 23);
  const GraphPi engine(g);
  for (int i = 1; i <= 4; ++i) {
    const Pattern p = patterns::evaluation_pattern(i);
    MatchOptions with;
    with.use_iep = true;
    MatchOptions without;
    without.use_iep = false;
    EXPECT_EQ(engine.count(p, with), engine.count(p, without)) << "P" << i;
  }
}

TEST(Api, PlanReportsDiagnostics) {
  const Graph g = erdos_renyi(80, 300, 29);
  const GraphPi engine(g);
  PlanningStats diag;
  const Configuration config =
      engine.plan(patterns::house(), MatchOptions{}, &diag);
  EXPECT_EQ(diag.schedules_total, 120u);
  EXPECT_GT(diag.schedules_phase1, 0u);
  EXPECT_GE(diag.schedules_phase1, diag.schedules_efficient);
  EXPECT_GT(diag.restriction_sets, 1u);
  EXPECT_EQ(diag.configurations_evaluated,
            diag.schedules_efficient * diag.restriction_sets);
  EXPECT_GT(diag.planning_seconds, 0.0);
  EXPECT_EQ(config.pattern, patterns::house());
}

TEST(Api, EmpiricalValidationAcceptsPlannedConfigs) {
  const Graph g = clustered_power_law(90, 400, 2.3, 0.4, 31);
  const GraphPi engine(g);
  MatchOptions opt;
  opt.empirical_validation = true;
  for (const auto& p : {patterns::house(), patterns::cycle_6_tri()})
    EXPECT_NO_THROW((void)engine.count(p, opt)) << p.to_string();
}

TEST(Api, FindAllMatchesCount) {
  const Graph g = erdos_renyi(50, 200, 37);
  const GraphPi engine(g);
  const Pattern p = patterns::rectangle();
  const auto embeddings = engine.find_all(p);
  MatchOptions no_iep;
  no_iep.use_iep = false;
  EXPECT_EQ(embeddings.size(), engine.count(p, no_iep));
  for (const auto& e : embeddings)
    for (auto [u, v] : p.edges())
      EXPECT_TRUE(g.has_edge(e[static_cast<std::size_t>(u)],
                             e[static_cast<std::size_t>(v)]));
}

TEST(Datasets, SpecsAndLoading) {
  EXPECT_EQ(datasets::specs().size(), 6u);  // Table I rows
  const auto& wiki = datasets::spec("wiki_vote");
  EXPECT_EQ(wiki.paper_vertices, 7'100u);
  EXPECT_THROW(datasets::spec("nope"), std::out_of_range);

  // Tiny scale keeps this test fast while exercising the full generator.
  const Graph g = datasets::load("mico", /*scale=*/0.05);
  EXPECT_TRUE(g.validate());
  EXPECT_GT(g.edge_count(), 0u);
  // Determinism.
  const Graph h = datasets::load("mico", 0.05);
  EXPECT_EQ(g.raw_neighbors(), h.raw_neighbors());
}

TEST(Datasets, ScaleChangesSize) {
  const Graph small = datasets::load("patents", 0.02);
  const Graph larger = datasets::load("patents", 0.05);
  EXPECT_LT(small.vertex_count(), larger.vertex_count());
  EXPECT_LT(small.edge_count(), larger.edge_count());
}

}  // namespace
}  // namespace graphpi
