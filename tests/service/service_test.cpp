// End-to-end tests of the query service over a real TCP socket: an
// in-process Server on an ephemeral port, hammered by a minimal
// blocking client. Covers the hostile-input surface (oversized lines,
// garbage JSON, mid-response disconnects), the admission-control path
// (queue-full shedding), bounded execution (deadline timeout + partial
// flag), the /metrics endpoint, and drain-on-shutdown — and checks that
// served counts are bit-identical to direct engine calls.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <string>
#include <thread>
#include <vector>

#include "api/graphpi.h"
#include "service/json.h"
#include "service/server.h"
#include "test_util.h"

namespace graphpi::service {
namespace {

/// Minimal blocking line client. Reads are poll-bounded so a server bug
/// fails the test instead of hanging it.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool ok() const noexcept { return fd_ >= 0; }

  bool send_raw(std::string_view data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool send_line(const std::string& line) { return send_raw(line + "\n"); }

  /// Next '\n'-terminated line (newline stripped); false on timeout or
  /// orderly EOF with no buffered line.
  bool read_line(std::string* out, int timeout_ms = 30000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *out = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return false;
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, static_cast<int>(left.count())) <= 0) return false;
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;  // EOF or error
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True once the peer has closed (orderly EOF observed).
  bool at_eof(int timeout_ms = 5000) {
    std::string line;
    while (read_line(&line, timeout_ms)) {
    }
    pollfd pfd{fd_, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
    char chunk[256];
    return ::recv(fd_, chunk, sizeof(chunk), 0) == 0;
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

json::Value parse_response(const std::string& line) {
  std::string error;
  auto v = json::Value::parse(line, &error);
  EXPECT_TRUE(v.has_value()) << "unparseable response '" << line
                             << "': " << error;
  return v.value_or(json::Value{});
}

std::string status_of(const json::Value& v) {
  const json::Value* s = v.get("status");
  return s != nullptr ? s->as_string() : "";
}

struct ServerFixture {
  explicit ServerFixture(ServiceConfig config = {},
                         Graph g = testing::small_test_graphs()[3])
      : graph(std::move(g)), server(graph, config) {
    // The client side of write() races the server's EPIPE handling;
    // neither side may die on a broken pipe.
    std::signal(SIGPIPE, SIG_IGN);
    server.start();
  }
  Graph graph;
  Server server;
};

TEST(ServiceSocket, ServedCountsMatchDirectEngine) {
  ServerFixture fx;
  const GraphPi direct(fx.graph);
  const std::vector<std::string> specs = {"triangle", "rectangle", "house",
                                          "tailed_triangle"};
  const std::vector<std::string> backends = {"serial", "parallel"};

  Client c(fx.server.port());
  ASSERT_TRUE(c.ok());
  int id = 0;
  for (const std::string& spec : specs)
    for (const std::string& backend : backends)
      ASSERT_TRUE(c.send_line("{\"id\":" + std::to_string(id++) +
                              ",\"pattern\":\"" + spec + "\",\"backend\":\"" +
                              backend + "\"}"));
  for (std::size_t i = 0; i < specs.size() * backends.size(); ++i) {
    std::string line;
    ASSERT_TRUE(c.read_line(&line)) << "missing response " << i;
    const json::Value v = parse_response(line);
    ASSERT_EQ(status_of(v), "ok") << line;
    const auto idx =
        static_cast<std::size_t>(v.get("id")->as_int64().value_or(-1));
    ASSERT_LT(idx, specs.size() * backends.size()) << line;
    const std::string& spec = specs[idx / backends.size()];
    const Count expected = direct.count(patterns::parse_spec(spec));
    EXPECT_EQ(v.get("count")->as_uint64().value_or(0), expected) << line;
    EXPECT_FALSE(v.get("partial")->as_bool()) << line;
  }
}

TEST(ServiceSocket, PlanCacheHitsAcrossConnections) {
  ServerFixture fx;
  for (int round = 0; round < 2; ++round) {
    Client c(fx.server.port());
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.send_line("{\"id\":1,\"pattern\":\"house\"}"));
    std::string line;
    ASSERT_TRUE(c.read_line(&line));
    const json::Value v = parse_response(line);
    ASSERT_EQ(status_of(v), "ok") << line;
    EXPECT_EQ(v.get("plan_cached")->as_bool(), round > 0) << line;
  }
}

TEST(ServiceSocket, GarbageInputGetsErrorsConnectionSurvives) {
  ServerFixture fx;
  Client c(fx.server.port());
  ASSERT_TRUE(c.ok());
  const std::vector<std::string> hostile = {
      "{not json at all",
      "[1,2,3]",                                  // not an object
      "{\"pattern\":17}",                         // wrong type
      "{\"pattern\":\"no_such_pattern\"}",        // unknown spec
      "{\"pattern\":\"3:xyzxyzxyz\"}",            // malformed adjacency
      "{\"cmd\":\"reboot\"}",                     // unknown command
      "{\"pattern\":\"house\",\"timeout_ms\":-5}",      // out of range
      "{\"pattern\":\"house\",\"threads\":100000}",     // beyond limit
      "{\"pattern\":\"house\",\"work_budget\":-1}",     // negative budget
      "{\"pattern\":\"house\",\"backend\":\"quantum\"}",
      "{\"cmd\":\"sleep\",\"ms\":50}",            // debug cmd not enabled
  };
  for (const std::string& line : hostile) ASSERT_TRUE(c.send_line(line));
  for (std::size_t i = 0; i < hostile.size(); ++i) {
    std::string line;
    ASSERT_TRUE(c.read_line(&line)) << "no response to: " << hostile[i];
    const json::Value v = parse_response(line);
    EXPECT_EQ(status_of(v), "error") << "accepted: " << hostile[i];
    EXPECT_NE(v.get("error"), nullptr) << line;
  }
  // The connection is still serviceable after every rejection.
  ASSERT_TRUE(c.send_line("{\"id\":\"after\",\"pattern\":\"triangle\"}"));
  std::string line;
  ASSERT_TRUE(c.read_line(&line));
  EXPECT_EQ(status_of(parse_response(line)), "ok") << line;
}

TEST(ServiceSocket, OversizedLineRejectedThenClosed) {
  ServiceConfig config;
  config.max_line_bytes = 256;
  ServerFixture fx(config);
  Client c(fx.server.port());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.send_raw(std::string(4096, 'x') + "\n"));
  std::string line;
  ASSERT_TRUE(c.read_line(&line));
  const json::Value v = parse_response(line);
  EXPECT_EQ(status_of(v), "error") << line;
  EXPECT_TRUE(c.at_eof()) << "connection should close after oversized line";
  // The server itself is unharmed: a fresh connection works.
  Client c2(fx.server.port());
  ASSERT_TRUE(c2.ok());
  ASSERT_TRUE(c2.send_line("{\"cmd\":\"ping\"}"));
  ASSERT_TRUE(c2.read_line(&line));
  EXPECT_NE(line.find("\"pong\":true"), std::string::npos) << line;
}

TEST(ServiceSocket, MidResponseDisconnectLeavesServerAlive) {
  ServerFixture fx;
  for (int round = 0; round < 3; ++round) {
    Client c(fx.server.port());
    ASSERT_TRUE(c.ok());
    // Queue work, then vanish before the response can be written.
    ASSERT_TRUE(c.send_line("{\"id\":1,\"pattern\":\"house\"}"));
    ASSERT_TRUE(c.send_line("{\"id\":2,\"pattern\":\"rectangle\"}"));
    c.close();
  }
  // Give the abandoned jobs time to hit the dead sockets, then verify
  // the server still answers.
  Client c(fx.server.port());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.send_line("{\"id\":\"alive\",\"pattern\":\"triangle\"}"));
  std::string line;
  ASSERT_TRUE(c.read_line(&line));
  EXPECT_EQ(status_of(parse_response(line)), "ok") << line;
  EXPECT_TRUE(fx.server.running());
}

TEST(ServiceSocket, QueueFullShedsImmediately) {
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  config.limits.allow_debug_commands = true;
  ServerFixture fx(config);
  Client c(fx.server.port());
  ASSERT_TRUE(c.ok());
  // One sleep occupies the single worker ...
  ASSERT_TRUE(c.send_line("{\"id\":\"busy\",\"cmd\":\"sleep\",\"ms\":800}"));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  // ... the next occupies the whole queue ...
  ASSERT_TRUE(c.send_line("{\"id\":\"queued\",\"cmd\":\"sleep\",\"ms\":10}"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // ... so a burst beyond capacity must shed, immediately.
  constexpr int kBurst = 4;
  for (int i = 0; i < kBurst; ++i)
    ASSERT_TRUE(c.send_line("{\"id\":\"b" + std::to_string(i) +
                            "\",\"pattern\":\"house\"}"));
  int ok = 0, shed = 0;
  for (int i = 0; i < kBurst + 2; ++i) {
    std::string line;
    ASSERT_TRUE(c.read_line(&line)) << "missing response " << i;
    const std::string status = status_of(parse_response(line));
    if (status == "ok") ++ok;
    else if (status == "shed") ++shed;
    else FAIL() << "unexpected status in: " << line;
  }
  EXPECT_EQ(ok + shed, kBurst + 2);
  EXPECT_GE(shed, 1) << "burst beyond queue capacity must shed";
  EXPECT_GE(fx.server.stats().shed, static_cast<std::uint64_t>(shed));
}

TEST(ServiceSocket, DeadlineTimeoutReportsPartial) {
  // A dense-enough graph that a 5-clique count cannot finish within a
  // microsecond deadline polled every root.
  ServerFixture fx(ServiceConfig{}, clustered_power_law(400, 6000, 2.1, 0.6,
                                                        /*seed=*/9));
  const GraphPi direct(fx.graph);
  const Count full = direct.count(patterns::clique(5));
  Client c(fx.server.port());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.send_line(
      "{\"id\":1,\"pattern\":\"clique5\",\"timeout_ms\":0.001,"
      "\"poll_stride\":1}"));
  std::string line;
  ASSERT_TRUE(c.read_line(&line));
  const json::Value v = parse_response(line);
  EXPECT_EQ(status_of(v), "timeout") << line;
  EXPECT_TRUE(v.get("partial")->as_bool()) << line;
  EXPECT_LT(v.get("completed_roots")->as_uint64().value_or(~0ull),
            static_cast<std::uint64_t>(fx.graph.vertex_count()))
      << line;
  EXPECT_LE(v.get("count")->as_uint64().value_or(~0ull), full) << line;
}

TEST(ServiceSocket, WorkBudgetStopsEarly) {
  ServerFixture fx(ServiceConfig{}, clustered_power_law(400, 6000, 2.1, 0.6,
                                                        /*seed=*/9));
  Client c(fx.server.port());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.send_line(
      "{\"id\":1,\"pattern\":\"clique5\",\"work_budget\":5,"
      "\"poll_stride\":1}"));
  std::string line;
  ASSERT_TRUE(c.read_line(&line));
  const json::Value v = parse_response(line);
  EXPECT_EQ(status_of(v), "budget") << line;
  EXPECT_TRUE(v.get("partial")->as_bool()) << line;
}

TEST(ServiceSocket, MetricsEndpointServesPrometheus) {
  ServerFixture fx;
  {
    Client c(fx.server.port());
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.send_line("{\"id\":1,\"pattern\":\"triangle\"}"));
    std::string line;
    ASSERT_TRUE(c.read_line(&line));
  }
  Client m(fx.server.port());
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(m.send_raw("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"));
  std::string body, line;
  while (m.read_line(&line, 5000)) body += line + "\n";
  EXPECT_NE(body.find("200 OK"), std::string::npos) << body;
  EXPECT_NE(body.find("graphpi_service_requests"), std::string::npos) << body;
  EXPECT_NE(body.find("graphpi_service_connections"), std::string::npos)
      << body;
}

TEST(ServiceSocket, ShutdownDrainsInFlightQueries) {
  ServiceConfig config;
  config.workers = 1;
  config.limits.allow_debug_commands = true;
  ServerFixture fx(config);
  Client c(fx.server.port());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.send_line("{\"id\":\"slow\",\"cmd\":\"sleep\",\"ms\":400}"));
  ASSERT_TRUE(c.send_line("{\"id\":\"q\",\"pattern\":\"rectangle\"}"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  fx.server.shutdown();
  // Both admitted requests were answered before their sockets closed.
  std::string l1, l2;
  ASSERT_TRUE(c.read_line(&l1, 5000));
  ASSERT_TRUE(c.read_line(&l2, 5000));
  EXPECT_NE((l1 + l2).find("\"pong\":true"), std::string::npos) << l1;
  EXPECT_EQ(status_of(parse_response(l2)), "ok") << l2;
  EXPECT_FALSE(fx.server.running());
  // New connections are refused once the listener is down.
  Client late(fx.server.port());
  std::string line;
  EXPECT_TRUE(!late.ok() || !late.read_line(&line, 500));
  EXPECT_EQ(fx.server.stats().served, 2u);
}

}  // namespace
}  // namespace graphpi::service
