// Pattern representation.
//
// A pattern (Section II-A) is a small undirected, unlabeled, connected
// graph — the "template" whose embeddings are mined from the data graph.
// Patterns are tiny (the paper evaluates up to 7 vertices; we support 8),
// so adjacency is stored as per-vertex bitmasks for O(1) edge tests.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace graphpi {

/// Index of a vertex inside a pattern (0-based).
using PatternVertex = std::uint8_t;

class Pattern {
 public:
  /// Maximum number of pattern vertices supported by the bitmask storage
  /// and by the factorial-sized searches (automorphisms, schedules).
  static constexpr int kMaxVertices = 8;

  Pattern() = default;

  /// Builds a pattern from an explicit edge list. Throws via GRAPHPI_CHECK
  /// on self loops, duplicate edges or out-of-range endpoints.
  Pattern(int n_vertices,
          const std::vector<std::pair<int, int>>& edges);

  /// Builds a pattern from a row-major adjacency-matrix string of n*n
  /// '0'/'1' characters — the encoding used by the GraphPi artifact
  /// (e.g. the House is "0111010011100011100001100"). The matrix must be
  /// symmetric with a zero diagonal.
  Pattern(int n_vertices, const std::string& adjacency);

  [[nodiscard]] int size() const noexcept { return n_; }
  [[nodiscard]] int edge_count() const noexcept {
    return static_cast<int>(edges_.size());
  }

  [[nodiscard]] bool has_edge(int u, int v) const noexcept {
    return (adj_[u] >> v) & 1u;
  }

  /// Bitmask of neighbors of u (bit v set iff (u,v) is an edge).
  [[nodiscard]] std::uint32_t neighbor_mask(int u) const noexcept {
    return adj_[u];
  }

  [[nodiscard]] int degree(int u) const noexcept;

  /// Edges as (u, v) pairs with u < v, lexicographically sorted.
  [[nodiscard]] const std::vector<std::pair<int, int>>& edges() const noexcept {
    return edges_;
  }

  /// True iff the pattern is connected (required for meaningful matching).
  [[nodiscard]] bool connected() const noexcept;

  /// Size of the maximum independent set — the paper's k in Section IV-B
  /// phase 2 / Section IV-D ("at most k vertices such that any two of them
  /// are not connected"). Exhaustive over 2^n subsets.
  [[nodiscard]] int max_independent_set_size() const;

  /// The pattern with vertices relabeled: new vertex i = old vertex
  /// mapping[i]. `mapping` must be a permutation of 0..n-1.
  [[nodiscard]] Pattern relabeled(const std::vector<int>& mapping) const;

  /// Row-major adjacency string (the constructor-accepted encoding).
  [[nodiscard]] std::string adjacency_string() const;

  /// Human-readable form: "n=5 edges=[(0,1),(0,2),...]".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Pattern& a, const Pattern& b) noexcept {
    return a.n_ == b.n_ && a.edges_ == b.edges_;
  }

 private:
  void add_edge_checked(int u, int v);

  int n_ = 0;
  std::vector<std::pair<int, int>> edges_;
  std::uint32_t adj_[kMaxVertices] = {};
};

}  // namespace graphpi
