#include "core/directed_pattern.h"

#include <algorithm>
#include <sstream>

#include "core/automorphism.h"
#include "support/check.h"

namespace graphpi {

DirectedPattern::DirectedPattern(
    int n_vertices, const std::vector<std::pair<int, int>>& arcs)
    : n_(n_vertices) {
  GRAPHPI_CHECK_MSG(n_ >= 1 && n_ <= Pattern::kMaxVertices,
                    "directed pattern size out of range");
  std::vector<std::pair<int, int>> skeleton_edges;
  for (auto [u, v] : arcs) {
    GRAPHPI_CHECK_MSG(u >= 0 && u < n_ && v >= 0 && v < n_,
                      "arc endpoint out of range");
    GRAPHPI_CHECK_MSG(u != v, "self loops are not allowed");
    GRAPHPI_CHECK_MSG(!has_arc(u, v), "duplicate arc");
    out_[u] |= 1u << v;
    arcs_.emplace_back(u, v);
    // Skeleton edge once per unordered pair.
    if (!has_arc(v, u))
      skeleton_edges.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(arcs_.begin(), arcs_.end());
  skeleton_ = Pattern(n_, skeleton_edges);
}

std::string DirectedPattern::to_string() const {
  std::ostringstream oss;
  oss << "n=" << n_ << " arcs=[";
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    if (i) oss << ",";
    oss << arcs_[i].first << "->" << arcs_[i].second;
  }
  oss << "]";
  return oss.str();
}

std::vector<Permutation> automorphisms(const DirectedPattern& pattern) {
  // Filter the skeleton's automorphisms down to arc-preserving ones (the
  // skeleton group is a supergroup of the directed group).
  std::vector<Permutation> out;
  for (const auto& a : automorphisms(pattern.skeleton())) {
    bool preserves = true;
    for (auto [u, v] : pattern.arcs())
      if (!pattern.has_arc(a(u), a(v))) {
        preserves = false;
        break;
      }
    if (preserves) out.push_back(a);
  }
  return out;
}

std::vector<RestrictionSet> generate_restriction_sets(
    const DirectedPattern& pattern, const RestrictionGenOptions& options) {
  return generate_restriction_sets_for_group(pattern.size(),
                                             automorphisms(pattern), options);
}

}  // namespace graphpi
