#include "core/configuration.h"

#include <limits>
#include <sstream>

#include "support/check.h"
#include "support/timer.h"

namespace graphpi {

std::string Configuration::to_string() const {
  std::ostringstream oss;
  oss << "schedule " << schedule.to_string() << " restrictions "
      << graphpi::to_string(restrictions);
  if (iep.k > 0) oss << " " << iep.to_string();
  return oss.str();
}

Configuration best_configuration_for_schedule(
    const Pattern& pattern, const Schedule& schedule,
    const std::vector<RestrictionSet>& restriction_sets,
    const GraphStats& stats, const PlannerOptions& options) {
  GRAPHPI_CHECK_MSG(!restriction_sets.empty(),
                    "at least one restriction set is required");
  Configuration best;
  best.pattern = pattern;
  best.schedule = schedule;
  best.predicted_cost = std::numeric_limits<double>::infinity();
  for (const auto& rs : restriction_sets) {
    const double cost =
        predict_total_cost(pattern, schedule, rs, stats, options.model);
    if (cost < best.predicted_cost) {
      best.predicted_cost = cost;
      best.restrictions = rs;
    }
  }
  if (options.use_iep) attach_iep_plan(best);
  return best;
}

Configuration plan_configuration(const Pattern& pattern,
                                 const GraphStats& stats,
                                 const PlannerOptions& options,
                                 PlanningStats* diag) {
  support::Timer timer;

  const auto schedules = generate_schedules(pattern);
  const auto restriction_sets = generate_restriction_sets(
      pattern, RestrictionGenOptions{options.max_restriction_sets});

  // Score every (schedule, restriction set) combination. When IEP is
  // requested we additionally require the combination to admit a valid
  // IEP plan — not every restriction set does (dropping its suffix
  // restrictions can leave a non-constant overcount; see iep.h). IEP
  // candidates are ranked by cost * divisor: dropping the suffix
  // restrictions makes the outer loops enumerate every embedding
  // `divisor` times, so a cheap-looking schedule with a large surviving-
  // automorphism factor is really divisor-times the work (cycle(6)'s
  // order-uniform plans are k=1 with divisors up to 6 — the weighting
  // steers selection to the divisor-1 combos, which run at restricted-
  // enumeration speed). Falls back to plain enumeration only if no
  // combination qualifies.
  Configuration best;
  best.pattern = pattern;
  best.predicted_cost = std::numeric_limits<double>::infinity();
  Configuration best_iep = best;
  double best_iep_score = std::numeric_limits<double>::infinity();
  std::size_t evaluated = 0;
  for (const auto& sched : schedules.efficient) {
    for (const auto& rs : restriction_sets) {
      ++evaluated;
      const double cost =
          predict_total_cost(pattern, sched, rs, stats, options.model);
      if (cost < best.predicted_cost) {
        best.predicted_cost = cost;
        best.schedule = sched;
        best.restrictions = rs;
      }
      // divisor >= 1, so a combination whose raw cost already exceeds
      // the best weighted score cannot improve — skip the (relatively
      // expensive) plan construction + validation.
      if (options.use_iep && cost < best_iep_score) {
        Configuration candidate;
        candidate.pattern = pattern;
        candidate.schedule = sched;
        candidate.restrictions = rs;
        candidate.predicted_cost = cost;
        attach_iep_plan(candidate);
        if (candidate.iep.k > 0) {
          const double score =
              cost * static_cast<double>(candidate.iep.divisor);
          if (score < best_iep_score) {
            best_iep_score = score;
            best_iep = std::move(candidate);
          }
        }
      }
    }
  }
  GRAPHPI_CHECK_MSG(best.schedule.size() == pattern.size(),
                    "planning must select a schedule");
  if (options.use_iep && best_iep.iep.k > 0) best = std::move(best_iep);

  if (diag != nullptr) {
    std::size_t factorial = 1;
    for (int i = 2; i <= pattern.size(); ++i)
      factorial *= static_cast<std::size_t>(i);
    diag->schedules_total = factorial;
    diag->schedules_phase1 = schedules.phase1.size();
    diag->schedules_efficient = schedules.efficient.size();
    diag->restriction_sets = restriction_sets.size();
    diag->configurations_evaluated = evaluated;
    diag->planning_seconds = timer.elapsed_seconds();
  }
  return best;
}

void attach_iep_plan(Configuration& config) {
  const int n = config.pattern.size();
  if (n <= 1) return;
  int k = config.schedule.independent_suffix_length(config.pattern);
  // k = n would leave no outer loop; the suffix of a connected pattern of
  // n >= 2 vertices is at most n-1 anyway, but clamp defensively.
  k = std::min(k, n - 1);
  for (; k >= 1; --k) {
    IepPlan plan =
        build_iep_plan(config.pattern, config.schedule, config.restrictions, k);
    if (validate_iep_plan(config.pattern, config.schedule, plan)) {
      config.iep = std::move(plan);
      return;
    }
  }
  config.iep = IepPlan{};  // IEP not applicable; engine falls back
}

}  // namespace graphpi
