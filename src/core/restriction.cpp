#include "core/restriction.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <sstream>

#include "core/automorphism.h"
#include "support/check.h"

namespace graphpi {

std::string to_string(const RestrictionSet& rs) {
  std::ostringstream oss;
  oss << "{";
  for (std::size_t i = 0; i < rs.size(); ++i) {
    if (i) oss << ", ";
    oss << "id(" << int(rs[i].greater) << ")>id(" << int(rs[i].smaller) << ")";
  }
  oss << "}";
  return oss.str();
}

namespace {

/// Cycle detection on a directed graph over <= 8 nodes stored as adjacency
/// bitmasks. Iterative reachability closure: acyclic iff no node reaches
/// itself.
bool acyclic(const std::uint32_t adj[8], int n) {
  std::uint32_t reach[8];
  for (int i = 0; i < n; ++i) reach[i] = adj[i];
  // Floyd–Warshall style closure over bitmasks.
  for (int k = 0; k < n; ++k)
    for (int i = 0; i < n; ++i)
      if ((reach[i] >> k) & 1u) reach[i] |= reach[k];
  for (int i = 0; i < n; ++i)
    if ((reach[i] >> i) & 1u) return false;
  return true;
}

}  // namespace

bool no_conflict(const Permutation& perm, const RestrictionSet& rs) {
  const int n = perm.size();
  std::uint32_t adj[8] = {};
  for (const auto& r : rs) {
    adj[r.greater] |= 1u << r.smaller;
    adj[perm(r.greater)] |= 1u << perm(r.smaller);
  }
  return acyclic(adj, n);
}

std::size_t surviving_permutations(const std::vector<Permutation>& group,
                                   const RestrictionSet& rs) {
  std::size_t n = 0;
  for (const auto& p : group)
    if (no_conflict(p, rs)) ++n;
  return n;
}

std::uint64_t linear_extension_count(int n, const RestrictionSet& rs) {
  GRAPHPI_CHECK(n >= 1 && n <= Pattern::kMaxVertices);
  // Bitmask DP assigning ranks from lowest to highest: dp[S] = number of
  // orderings of S as the |S| lowest ranks. Vertex v may receive the next
  // rank only if every u it must dominate (v > u) is already placed.
  // O(2^n * n) instead of the naive O(n! * |rs|).
  std::uint32_t must_precede[Pattern::kMaxVertices] = {};
  for (const auto& r : rs)
    must_precede[r.greater] |= 1u << r.smaller;

  const std::uint32_t full = (n >= 32) ? ~0u : ((1u << n) - 1);
  std::vector<std::uint64_t> dp(static_cast<std::size_t>(full) + 1, 0);
  dp[0] = 1;
  for (std::uint32_t s = 1; s <= full; ++s) {
    std::uint64_t total = 0;
    for (int v = 0; v < n; ++v) {
      if (!((s >> v) & 1u)) continue;
      const std::uint32_t without = s & ~(1u << v);
      // v takes the highest rank within s: all of must_precede[v] must be
      // inside `without`.
      if ((must_precede[v] & ~without) == 0) total += dp[without];
    }
    dp[s] = total;
  }
  return dp[full];
}

bool validate_restriction_set(const Pattern& pattern,
                              const RestrictionSet& rs) {
  const int n = pattern.size();
  std::uint64_t factorial = 1;
  for (int i = 2; i <= n; ++i) factorial *= static_cast<std::uint64_t>(i);
  const std::uint64_t aut = automorphism_count(pattern);
  if (factorial % aut != 0) return false;  // cannot happen for a group
  return linear_extension_count(n, rs) == factorial / aut;
}

namespace {

/// Recursive worker for Algorithm 1. `group` is the set of automorphisms
/// not yet eliminated by `current`; branches on every 2-cycle of every
/// surviving non-identity permutation.
struct Generator {
  int n;
  std::uint64_t group_order;
  std::size_t max_sets;
  std::set<RestrictionSet> visited;   // partial sets already expanded
  std::set<RestrictionSet> results;   // valid complete sets (canonical)
  std::vector<RestrictionSet> ordered_results;  // discovery order

  void generate(const std::vector<Permutation>& group,
                const RestrictionSet& current) {
    if (ordered_results.size() >= max_sets) return;

    if (group.size() <= 1) {
      // Only the identity remains (the branch pruning below guarantees the
      // identity always survives). Validate per Algorithm 1: on K_n the
      // restricted count LE(n, rs) must equal n!/|group|.
      std::uint64_t factorial = 1;
      for (int i = 2; i <= n; ++i) factorial *= static_cast<std::uint64_t>(i);
      const bool valid =
          factorial % group_order == 0 &&
          linear_extension_count(n, current) == factorial / group_order;
      if (valid && results.insert(current).second) {
        ordered_results.push_back(current);
      }
      return;
    }

    bool branched = false;
    for (const auto& perm : group) {
      if (perm.is_identity()) continue;
      for (auto [a, b] : perm.two_cycles()) {
        branched = true;
        // Both orientations of the 2-cycle are candidate restrictions
        // (Algorithm 1 reaches both by iterating `vertex` over the cycle).
        for (const auto orientation :
             {Restriction{static_cast<PatternVertex>(a),
                          static_cast<PatternVertex>(b)},
              Restriction{static_cast<PatternVertex>(b),
                          static_cast<PatternVertex>(a)}}) {
          RestrictionSet next = current;
          if (std::find(next.begin(), next.end(), orientation) != next.end())
            continue;  // already present
          next.push_back(orientation);
          std::sort(next.begin(), next.end());
          if (!visited.insert(next).second) continue;  // subtree already done

          // Keep only the permutations that still survive. A consistent
          // set never eliminates the identity; if it would, the set is
          // self-contradictory and the branch dies here.
          std::vector<Permutation> remaining;
          remaining.reserve(group.size());
          bool identity_ok = false;
          for (const auto& p : group)
            if (no_conflict(p, next)) {
              remaining.push_back(p);
              if (p.is_identity()) identity_ok = true;
            }
          if (!identity_ok) continue;
          generate(remaining, next);
          if (ordered_results.size() >= max_sets) return;
        }
      }
    }

    if (!branched) {
      // Extension beyond the paper: every surviving non-identity
      // permutation decomposes into cycles of length >= 3 only (no
      // 2-cycles to branch on). The smallest such *undirected* pattern
      // needs 9 vertices, but directed/labeled groups hit this (e.g. the
      // Z3 rotation group of a directed triangle). Break the symmetry
      // with orbit-max restrictions: for a surviving k-cycle
      // (c_0 .. c_{k-1}), exactly one of its k rotations places the
      // maximum id at a chosen position m, so the bundle
      // {m > c : c in cycle, c != m} eliminates all rotations at once.
      for (const auto& perm : group) {
        if (perm.is_identity()) continue;
        for (const auto& cycle : perm.cycles()) {
          if (cycle.size() < 3) continue;
          for (int m : cycle) {
            RestrictionSet next = current;
            for (int c : cycle)
              if (c != m)
                next.push_back({static_cast<PatternVertex>(m),
                                static_cast<PatternVertex>(c)});
            std::sort(next.begin(), next.end());
            next.erase(std::unique(next.begin(), next.end()), next.end());
            if (!visited.insert(next).second) continue;

            std::vector<Permutation> remaining;
            bool identity_ok = false;
            for (const auto& p : group)
              if (no_conflict(p, next)) {
                remaining.push_back(p);
                if (p.is_identity()) identity_ok = true;
              }
            if (!identity_ok || remaining.size() >= group.size()) continue;
            generate(remaining, next);
            if (ordered_results.size() >= max_sets) return;
          }
        }
        break;  // one permutation's cycles give enough branches
      }
    }
  }
};

}  // namespace

std::vector<RestrictionSet> generate_restriction_sets_for_group(
    int n, const std::vector<Permutation>& group,
    const RestrictionGenOptions& options) {
  GRAPHPI_CHECK(n >= 1 && n <= Pattern::kMaxVertices);
  GRAPHPI_CHECK_MSG(!group.empty(), "group must contain the identity");

  if (group.size() == 1) {
    // Trivial group: the empty restriction set is the unique answer.
    return {RestrictionSet{}};
  }

  Generator gen{n, group.size(), options.max_sets, {}, {}, {}};
  gen.generate(group, {});
  // Note: graphs on <= 8 vertices cannot have an automorphism group whose
  // non-identity elements all lack 2-cycles (the smallest graph with a
  // fixed-point-free odd-order group, e.g. Z3, needs 9 vertices), so the
  // recursion always finds at least one valid set here.
  GRAPHPI_CHECK_MSG(!gen.ordered_results.empty(),
                    "Algorithm 1 must produce at least one valid set");
  return gen.ordered_results;
}

std::vector<RestrictionSet> generate_restriction_sets(
    const Pattern& pattern, const RestrictionGenOptions& options) {
  GRAPHPI_CHECK_MSG(pattern.size() >= 1, "empty pattern");
  return generate_restriction_sets_for_group(
      pattern.size(), automorphisms(pattern), options);
}

}  // namespace graphpi
