// Vertex-labeled patterns (the "easily extended to labeled graphs" claim
// of Section II-A, realized).
//
// A labeled pattern constrains each pattern vertex to match only data
// vertices carrying the same label. Symmetry breaking changes accordingly:
// only *label-preserving* automorphisms create redundant embeddings, so
// Algorithm 1 runs on that (smaller) permutation group.
#pragma once

#include <vector>

#include "core/pattern.h"
#include "core/permutation.h"
#include "core/restriction.h"
#include "graph/labeled_graph.h"

namespace graphpi {

struct LabeledPattern {
  Pattern structure;
  std::vector<Label> labels;  ///< one per pattern vertex

  LabeledPattern() = default;
  LabeledPattern(Pattern p, std::vector<Label> l);

  [[nodiscard]] int size() const noexcept { return structure.size(); }
  [[nodiscard]] Label label(int v) const noexcept {
    return labels[static_cast<std::size_t>(v)];
  }
};

/// Automorphisms of the structure that also preserve labels — the group
/// whose elimination the labeled matcher needs.
[[nodiscard]] std::vector<Permutation> labeled_automorphisms(
    const LabeledPattern& pattern);

/// Restriction sets for a labeled pattern: Algorithm 1 run on the
/// label-preserving automorphism group (see
/// generate_restriction_sets_for_group in restriction.h).
[[nodiscard]] std::vector<RestrictionSet> generate_restriction_sets(
    const LabeledPattern& pattern, const RestrictionGenOptions& options = {});

}  // namespace graphpi
