#include "core/pattern.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "support/check.h"

namespace graphpi {

Pattern::Pattern(int n_vertices,
                 const std::vector<std::pair<int, int>>& edges)
    : n_(n_vertices) {
  GRAPHPI_CHECK_MSG(n_ >= 1 && n_ <= kMaxVertices,
                    "pattern size out of supported range");
  for (auto [u, v] : edges) add_edge_checked(u, v);
  std::sort(edges_.begin(), edges_.end());
}

Pattern::Pattern(int n_vertices, const std::string& adjacency)
    : n_(n_vertices) {
  GRAPHPI_CHECK_MSG(n_ >= 1 && n_ <= kMaxVertices,
                    "pattern size out of supported range");
  GRAPHPI_CHECK_MSG(
      adjacency.size() == static_cast<std::size_t>(n_) * n_,
      "adjacency string must have n*n characters");
  for (int u = 0; u < n_; ++u) {
    for (int v = 0; v < n_; ++v) {
      const char c = adjacency[static_cast<std::size_t>(u) * n_ + v];
      GRAPHPI_CHECK_MSG(c == '0' || c == '1',
                        "adjacency string must be 0/1 characters");
      if (c == '1') {
        GRAPHPI_CHECK_MSG(u != v, "pattern must not contain self loops");
        GRAPHPI_CHECK_MSG(
            adjacency[static_cast<std::size_t>(v) * n_ + u] == '1',
            "adjacency matrix must be symmetric");
        if (u < v) add_edge_checked(u, v);
      }
    }
  }
  std::sort(edges_.begin(), edges_.end());
}

void Pattern::add_edge_checked(int u, int v) {
  GRAPHPI_CHECK_MSG(u >= 0 && u < n_ && v >= 0 && v < n_,
                    "pattern edge endpoint out of range");
  GRAPHPI_CHECK_MSG(u != v, "pattern must not contain self loops");
  GRAPHPI_CHECK_MSG(!has_edge(u, v), "duplicate pattern edge");
  if (u > v) std::swap(u, v);
  adj_[u] |= 1u << v;
  adj_[v] |= 1u << u;
  edges_.emplace_back(u, v);
}

int Pattern::degree(int u) const noexcept {
  return std::popcount(adj_[u]);
}

bool Pattern::connected() const noexcept {
  if (n_ == 0) return false;
  std::uint32_t visited = 1u;  // start from vertex 0
  for (;;) {
    std::uint32_t next = visited;
    for (int v = 0; v < n_; ++v)
      if ((visited >> v) & 1u) next |= adj_[v];
    if (next == visited) break;
    visited = next;
  }
  return visited == (n_ >= 32 ? ~0u : ((1u << n_) - 1));
}

int Pattern::max_independent_set_size() const {
  int best = 0;
  const std::uint32_t limit = 1u << n_;
  for (std::uint32_t subset = 0; subset < limit; ++subset) {
    bool independent = true;
    for (int u = 0; u < n_ && independent; ++u)
      if ((subset >> u) & 1u)
        if ((adj_[u] & subset) != 0) independent = false;
    if (independent) best = std::max(best, std::popcount(subset));
  }
  return best;
}

Pattern Pattern::relabeled(const std::vector<int>& mapping) const {
  GRAPHPI_CHECK(mapping.size() == static_cast<std::size_t>(n_));
  // mapping: new index -> old index; invert to translate edges.
  std::vector<int> inverse(static_cast<std::size_t>(n_), -1);
  for (int i = 0; i < n_; ++i) {
    GRAPHPI_CHECK(mapping[i] >= 0 && mapping[i] < n_);
    GRAPHPI_CHECK_MSG(inverse[mapping[i]] == -1,
                      "relabel mapping must be a permutation");
    inverse[mapping[i]] = i;
  }
  std::vector<std::pair<int, int>> new_edges;
  new_edges.reserve(edges_.size());
  for (auto [u, v] : edges_)
    new_edges.emplace_back(inverse[u], inverse[v]);
  return Pattern(n_, new_edges);
}

std::string Pattern::adjacency_string() const {
  std::string s(static_cast<std::size_t>(n_) * n_, '0');
  for (auto [u, v] : edges_) {
    s[static_cast<std::size_t>(u) * n_ + v] = '1';
    s[static_cast<std::size_t>(v) * n_ + u] = '1';
  }
  return s;
}

std::string Pattern::to_string() const {
  std::ostringstream oss;
  oss << "n=" << n_ << " edges=[";
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (i) oss << ",";
    oss << "(" << edges_[i].first << "," << edges_[i].second << ")";
  }
  oss << "]";
  return oss.str();
}

}  // namespace graphpi
