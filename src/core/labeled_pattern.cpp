#include "core/labeled_pattern.h"

#include "core/automorphism.h"
#include "support/check.h"

namespace graphpi {

LabeledPattern::LabeledPattern(Pattern p, std::vector<Label> l)
    : structure(std::move(p)), labels(std::move(l)) {
  GRAPHPI_CHECK_MSG(
      labels.size() == static_cast<std::size_t>(structure.size()),
      "one label per pattern vertex required");
}

std::vector<Permutation> labeled_automorphisms(const LabeledPattern& pattern) {
  std::vector<Permutation> out;
  for (const auto& a : automorphisms(pattern.structure)) {
    bool preserves = true;
    for (int v = 0; v < pattern.size() && preserves; ++v)
      if (pattern.label(a(v)) != pattern.label(v)) preserves = false;
    if (preserves) out.push_back(a);
  }
  return out;
}

std::vector<RestrictionSet> generate_restriction_sets(
    const LabeledPattern& pattern, const RestrictionGenOptions& options) {
  return generate_restriction_sets_for_group(
      pattern.size(), labeled_automorphisms(pattern), options);
}

}  // namespace graphpi
