// Permutations over pattern vertices and their cycle structure.
//
// Section IV-A formalizes automorphism elimination with permutation groups:
// every automorphism is a permutation p : Vp -> Vp; any permutation can be
// written as a product of disjoint cycles, and every k-cycle (k > 1)
// decomposes into 2-cycles — the "essential elements" on which GraphPi
// places restrictions.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace graphpi {

/// A permutation of {0, .., n-1}, n <= Pattern::kMaxVertices.
class Permutation {
 public:
  Permutation() = default;

  /// Identity permutation on n elements.
  explicit Permutation(int n);

  /// From an image table: maps i -> images[i]. Must be a bijection.
  explicit Permutation(const std::vector<int>& images);

  [[nodiscard]] int size() const noexcept { return n_; }

  [[nodiscard]] int operator()(int i) const noexcept { return map_[i]; }
  [[nodiscard]] int apply(int i) const noexcept { return map_[i]; }

  [[nodiscard]] bool is_identity() const noexcept;

  /// Composition: (a * b)(x) = a(b(x)).
  [[nodiscard]] Permutation compose(const Permutation& other) const;

  [[nodiscard]] Permutation inverse() const;

  /// Disjoint-cycle decomposition, including fixed points as 1-cycles;
  /// cycles are rotated to start at their minimum element and sorted by it.
  [[nodiscard]] std::vector<std::vector<int>> cycles() const;

  /// All 2-cycles (i, p(i)) with i < p(i) appearing in the disjoint-cycle
  /// decomposition — the pairs Algorithm 1 branches on ("vertex =
  /// perm[perm[vertex]]").
  [[nodiscard]] std::vector<std::pair<int, int>> two_cycles() const;

  /// Order of the permutation (lcm of cycle lengths).
  [[nodiscard]] int order() const;

  /// Cycle notation, e.g. "(0)(1 3)(2)".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Permutation& a, const Permutation& b) noexcept {
    return a.n_ == b.n_ &&
           std::equal(a.map_.begin(), a.map_.begin() + a.n_, b.map_.begin());
  }

  /// Lexicographic order on image tables (for canonical containers).
  friend bool operator<(const Permutation& a, const Permutation& b) noexcept {
    if (a.n_ != b.n_) return a.n_ < b.n_;
    return std::lexicographical_compare(a.map_.begin(), a.map_.begin() + a.n_,
                                        b.map_.begin(),
                                        b.map_.begin() + b.n_);
  }

 private:
  int n_ = 0;
  std::array<std::uint8_t, 8> map_{};
};

}  // namespace graphpi
