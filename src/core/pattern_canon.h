// Canonical forms and isomorphism tests for patterns.
//
// Canonicalization picks, among all vertex relabelings of a pattern, the
// lexicographically smallest adjacency string. Two patterns are
// isomorphic iff their canonical strings match — the dedup primitive
// behind the motif census and a building block for pattern caches keyed
// by structure (planning results are relabel-invariant).
#pragma once

#include <string>
#include <vector>

#include "core/pattern.h"

namespace graphpi {

/// Lexicographically smallest adjacency string over all n! relabelings.
/// Exhaustive (n <= 8), with degree-sequence pruning.
[[nodiscard]] std::string canonical_string(const Pattern& pattern);

/// The relabeled pattern realizing canonical_string().
[[nodiscard]] Pattern canonical_form(const Pattern& pattern);

/// True iff the patterns are isomorphic (same canonical string).
[[nodiscard]] bool isomorphic(const Pattern& a, const Pattern& b);

/// Finds one isomorphism b = a relabeled by the returned mapping
/// (mapping[i] = vertex of `a` playing the role of vertex i of `b`), or
/// an empty vector when not isomorphic.
[[nodiscard]] std::vector<int> find_isomorphism(const Pattern& a,
                                                const Pattern& b);

}  // namespace graphpi
