// Automorphism group enumeration for patterns.
//
// An automorphism of a pattern is a permutation p of its vertices such
// that every edge maps to an edge (Section IV-A). The full set of
// automorphisms forms the permutation group Algorithm 1 eliminates.
#pragma once

#include <vector>

#include "core/pattern.h"
#include "core/permutation.h"

namespace graphpi {

/// All automorphisms of `pattern`, identity included, in lexicographic
/// order of image tables. Exhaustive with degree-sequence pruning; patterns
/// have at most 8 vertices so this is at most 40,320 candidates.
[[nodiscard]] std::vector<Permutation> automorphisms(const Pattern& pattern);

/// |Aut(pattern)| — e.g. 5,040 for the 7-clique (Section II-B).
[[nodiscard]] std::size_t automorphism_count(const Pattern& pattern);

}  // namespace graphpi
