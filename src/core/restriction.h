// Asymmetric restrictions and the 2-cycle based automorphism elimination
// algorithm (Section IV-A, Algorithm 1).
//
// A restriction is a required ordering `id(greater) > id(smaller)` between
// the data-graph ids matched to two pattern vertices. A *set* of
// restrictions is correct when, of the |Aut| automorphic copies of every
// embedding, exactly one satisfies all restrictions — redundant computation
// is then eliminated completely.
//
// GraphPi's contribution over GraphZero is generating *multiple* correct
// sets (one per choice of 2-cycles during elimination), so the performance
// model can pick the cheapest one for a given schedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pattern.h"
#include "core/permutation.h"

namespace graphpi {

/// One asymmetric restriction: id(greater) > id(smaller).
struct Restriction {
  PatternVertex greater;
  PatternVertex smaller;

  friend bool operator==(const Restriction&, const Restriction&) = default;
  friend auto operator<=>(const Restriction&, const Restriction&) = default;
};

/// A set of restrictions, kept sorted for canonical comparison.
using RestrictionSet = std::vector<Restriction>;

/// Renders e.g. "{id(0)>id(1), id(2)>id(3)}".
[[nodiscard]] std::string to_string(const RestrictionSet& rs);

/// The `no_conflict` check of Algorithm 1: returns true iff permutation
/// `perm` *survives* (is NOT eliminated by) the restriction set. The check
/// builds a directed graph with edges greater->smaller for every
/// restriction and its image under `perm`; the permutation survives iff
/// the graph is acyclic.
[[nodiscard]] bool no_conflict(const Permutation& perm,
                               const RestrictionSet& rs);

/// Number of permutations in `group` that survive `rs` (identity survives
/// any consistent set). Used for validation and for the IEP divisor x of
/// Section IV-D.
[[nodiscard]] std::size_t surviving_permutations(
    const std::vector<Permutation>& group, const RestrictionSet& rs);

/// Number of total orders of {0..n-1} compatible with `rs` viewed as a
/// partial order (linear extensions). On the complete graph K_n every
/// injective assignment is an embedding, so a correct restriction set has
/// exactly n!/|Aut| extensions — this is Algorithm 1's `validate`.
[[nodiscard]] std::uint64_t linear_extension_count(int n,
                                                   const RestrictionSet& rs);

/// Algorithm 1's validation: true iff matching the pattern on K_n with
/// `rs` yields n!/|Aut| embeddings.
[[nodiscard]] bool validate_restriction_set(const Pattern& pattern,
                                            const RestrictionSet& rs);

/// Options for restriction-set generation.
struct RestrictionGenOptions {
  /// Stop after this many distinct valid sets (the search space can hold
  /// thousands for 7-vertex patterns; the model only needs a diverse
  /// sample).
  std::size_t max_sets = 64;
};

/// Algorithm 1: generates multiple distinct restriction sets for
/// `pattern`, each of which eliminates all automorphisms. The first set
/// returned equals the deterministic single set a GraphZero-style
/// generator would produce (lexicographically first branch). Every
/// returned set passes validate_restriction_set.
[[nodiscard]] std::vector<RestrictionSet> generate_restriction_sets(
    const Pattern& pattern, const RestrictionGenOptions& options = {});

/// Algorithm 1 on an arbitrary permutation group over n elements (used by
/// the labeled extension, where only label-preserving automorphisms cause
/// redundancy). Each returned set eliminates every non-identity
/// permutation of `group` and passes the complete-graph validation
/// LE(n, rs) * |group| == n!. `group` must contain the identity.
[[nodiscard]] std::vector<RestrictionSet> generate_restriction_sets_for_group(
    int n, const std::vector<Permutation>& group,
    const RestrictionGenOptions& options = {});

}  // namespace graphpi
