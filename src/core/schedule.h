// Schedules and the 2-phase computation-avoid schedule generator
// (Section IV-B).
//
// A schedule is the order in which pattern vertices are searched by the
// nested-loop matching algorithm. Of the n! possible schedules, GraphPi
// keeps only the efficient ones:
//   Phase 1 — every prefix must induce a connected subpattern (otherwise
//             some loop traverses the entire vertex set);
//   Phase 2 — the last k searched vertices must be pairwise non-adjacent,
//             where k is the largest value for which such schedules exist
//             (inner loops then contain no intersection operations, and
//             IEP counting can replace them entirely).
#pragma once

#include <string>
#include <vector>

#include "core/pattern.h"

namespace graphpi {

/// A schedule: order[i] is the pattern vertex searched at loop depth i.
class Schedule {
 public:
  Schedule() = default;

  explicit Schedule(std::vector<int> order);

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(order_.size());
  }

  /// Pattern vertex searched at depth i.
  [[nodiscard]] int vertex_at(int depth) const noexcept {
    return order_[static_cast<std::size_t>(depth)];
  }

  /// Loop depth at which pattern vertex v is searched.
  [[nodiscard]] int depth_of(int v) const noexcept {
    return position_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] const std::vector<int>& order() const noexcept {
    return order_;
  }

  /// True iff every prefix of the schedule induces a connected subpattern
  /// of `p` (phase 1 criterion). The depth-0 vertex is trivially connected.
  [[nodiscard]] bool prefix_connected(const Pattern& p) const;

  /// Length of the longest suffix whose vertices are pairwise non-adjacent
  /// in `p` (the per-schedule k used by phase 2 and by IEP).
  [[nodiscard]] int independent_suffix_length(const Pattern& p) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Schedule&, const Schedule&) = default;

 private:
  std::vector<int> order_;
  std::vector<int> position_;
};

/// Result of running the 2-phase generator.
struct ScheduleGenerationResult {
  /// Schedules surviving phase 1 AND phase 2 — the "generated" set fed to
  /// the performance model.
  std::vector<Schedule> efficient;
  /// Schedules surviving phase 1 only (superset of `efficient`); Figure 9
  /// plots both populations.
  std::vector<Schedule> phase1;
  /// The k enforced by phase 2 (largest independent-suffix length
  /// achievable by any phase-1 schedule; may be smaller than the pattern's
  /// maximum independent set when the two phases conflict, e.g. the
  /// rectangle).
  int k = 0;
};

/// Runs the 2-phase computation-avoid schedule generator on `pattern`.
[[nodiscard]] ScheduleGenerationResult generate_schedules(
    const Pattern& pattern);

/// All n! schedules (used by the "eliminated schedules" population of
/// Figure 9 and by exhaustive tests on small patterns).
[[nodiscard]] std::vector<Schedule> all_schedules(const Pattern& pattern);

}  // namespace graphpi
