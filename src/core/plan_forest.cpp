#include "core/plan_forest.h"

#include <algorithm>
#include <sstream>

#include "support/check.h"

namespace graphpi {

namespace {

std::vector<int> sorted_unique(std::vector<int> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

}  // namespace

PlanForest::PlanForest(std::vector<Plan> plans) : plans_(std::move(plans)) {
  GRAPHPI_CHECK_MSG(plans_.size() <= kMaxPlans,
                    "a forest holds at most kMaxPlans plans; chunk larger "
                    "batches (GraphPi::count_batch does)");
  nodes_.emplace_back();  // root, depth 0

  std::size_t total_extend_steps = 0;
  std::size_t total_suffix_sets = 0;
  for (std::size_t pi = 0; pi < plans_.size(); ++pi) {
    const Plan& plan = plans_[pi];
    GRAPHPI_CHECK_MSG(plan.size() >= 1, "cannot add an empty plan");
    const PlanMask bit = PlanMask{1} << pi;
    const int leaf_depth = plan.leaf_depth();
    total_extend_steps += static_cast<std::size_t>(leaf_depth);

    // Descend the trie along the plan's extend steps — edges are keyed on
    // predecessor lists; the step's restriction bounds only select (or
    // create) a branch on the shared edge.
    int cur = 0;
    for (int d = 0; d < leaf_depth; ++d) {
      const PlanStep& step = plan.steps[static_cast<std::size_t>(d)];
      Extension* ext = nullptr;
      for (Extension& e : nodes_[static_cast<std::size_t>(cur)].extensions)
        if (e.predecessor_depths == step.predecessor_depths) {
          ext = &e;
          break;
        }
      if (ext == nullptr) {
        const int child = static_cast<int>(nodes_.size());
        Node node;
        node.depth = d + 1;
        nodes_.push_back(std::move(node));
        Extension e;
        e.predecessor_depths = step.predecessor_depths;
        e.child = child;
        auto& exts = nodes_[static_cast<std::size_t>(cur)].extensions;
        exts.push_back(std::move(e));
        ext = &exts.back();
      }
      ext->mask |= bit;
      Branch* branch = nullptr;
      for (Branch& b : ext->branches)
        if (b.lower_bound_depths == step.lower_bound_depths &&
            b.upper_bound_depths == step.upper_bound_depths) {
          branch = &b;
          break;
        }
      if (branch == nullptr) {
        Branch b;
        b.lower_bound_depths = step.lower_bound_depths;
        b.upper_bound_depths = step.upper_bound_depths;
        ext->branches.push_back(std::move(b));
        branch = &ext->branches.back();
      }
      branch->mask |= bit;
      cur = ext->child;
    }

    // Attach the terminal action at the leaf node.
    Node& leaf_node = nodes_[static_cast<std::size_t>(cur)];
    if (plan.iep_active()) {
      total_suffix_sets += static_cast<std::size_t>(plan.iep.k);
      IepLeaf leaf;
      leaf.plan = static_cast<int>(pi);
      for (int s = 0; s < plan.iep.k; ++s) {
        const auto& def =
            plan.steps[static_cast<std::size_t>(plan.outer_depth + s)]
                .predecessor_depths;
        const auto it = std::find(leaf_node.suffix_defs.begin(),
                                  leaf_node.suffix_defs.end(), def);
        int id;
        if (it == leaf_node.suffix_defs.end()) {
          id = static_cast<int>(leaf_node.suffix_defs.size());
          leaf_node.suffix_defs.push_back(def);
          leaf_node.suffix_def_masks.push_back(0);
          leaf_node.suffix_def_demand_masks.push_back(0);
        } else {
          id = static_cast<int>(it - leaf_node.suffix_defs.begin());
        }
        leaf_node.suffix_def_masks[static_cast<std::size_t>(id)] |= bit;
        leaf_node.suffix_def_demand_masks[static_cast<std::size_t>(id)] |= bit;
        leaf.set_ids.push_back(id);
      }
      leaf_node.iep_leaves.push_back(std::move(leaf));
    } else {
      const PlanStep& last = plan.steps.back();
      CountLeaf leaf;
      leaf.plan = static_cast<int>(pi);
      leaf.predecessor_depths = last.predecessor_depths;
      leaf.lower_bound_depths = last.lower_bound_depths;
      leaf.upper_bound_depths = last.upper_bound_depths;
      leaf_node.count_leaves.push_back(std::move(leaf));
    }
  }

  // Memo analysis: a leaf whose dependency depths skip one of the
  // enclosing loop depths has a loop-invariant raw count — the executor
  // memoizes it keyed on the (at most two, for exact 64-bit packing)
  // depths it does read. IEP leaves qualify only at k == 1, where the
  // term sum degenerates to |S_0| and the used-vertex correction can be
  // applied outside the memoized value.
  for (Node& node : nodes_) {
    for (CountLeaf& leaf : node.count_leaves) {
      std::vector<int> deps = leaf.predecessor_depths;
      deps.insert(deps.end(), leaf.lower_bound_depths.begin(),
                  leaf.lower_bound_depths.end());
      deps.insert(deps.end(), leaf.upper_bound_depths.begin(),
                  leaf.upper_bound_depths.end());
      deps = sorted_unique(std::move(deps));
      if (deps.size() <= 2 && static_cast<int>(deps.size()) < node.depth) {
        leaf.memo_id = static_cast<int>(stats_.memoized_leaves++);
        leaf.memo_key_depths = std::move(deps);
      }
    }
    for (IepLeaf& leaf : node.iep_leaves) {
      const Plan& plan = plans_[static_cast<std::size_t>(leaf.plan)];
      if (plan.iep.k != 1) continue;
      const auto& terms = plan.iep.terms;
      if (terms.size() != 1 || terms[0].coefficient != 1 ||
          terms[0].blocks.size() != 1 ||
          terms[0].blocks[0] != std::vector<int>{0})
        continue;
      const int def_id = leaf.set_ids[0];
      std::vector<int> deps = sorted_unique(
          node.suffix_defs[static_cast<std::size_t>(def_id)]);
      if (deps.size() <= 2 && static_cast<int>(deps.size()) < node.depth) {
        leaf.memo_id = static_cast<int>(stats_.memoized_leaves++);
        leaf.memo_key_depths = std::move(deps);
        // This leaf no longer reads the shared set when served from the
        // memo; drop it from the materialize mask so the ForestExecutor
        // skips the build unless another leaf needs it. The demand mask
        // keeps the bit for executors that always materialize.
        node.suffix_def_masks[static_cast<std::size_t>(def_id)] &=
            ~(PlanMask{1} << leaf.plan);
      }
    }
  }

  // Extensions whose intersection the node's IEP leaves already
  // materialize (same >= 2 predecessors) copy the shared set instead of
  // re-intersecting. Only the FIRST extension of a node may reuse: a
  // later sibling runs after earlier subtrees, whose deeper leaf nodes
  // recycle the workspace's suffix-set slots — the shared set would be
  // stale by then. Extension order is free (counting is order
  // independent), so one reusable extension is rotated to the front.
  for (Node& node : nodes_) {
    for (std::size_t e = 0; e < node.extensions.size(); ++e) {
      Extension& ext = node.extensions[e];
      if (ext.predecessor_depths.size() < 2) continue;
      const auto it = std::find(node.suffix_defs.begin(),
                                node.suffix_defs.end(),
                                ext.predecessor_depths);
      if (it == node.suffix_defs.end()) continue;
      ext.reuse_suffix_def = static_cast<int>(it - node.suffix_defs.begin());
      std::swap(node.extensions[0], node.extensions[e]);
      break;
    }
  }

  std::size_t shared_defs = 0;
  for (const Node& node : nodes_) {
    shared_defs += node.suffix_defs.size();
    stats_.extensions += node.extensions.size();
    stats_.max_depth =
        std::max(stats_.max_depth, static_cast<std::size_t>(node.depth));
  }
  stats_.plans = plans_.size();
  stats_.nodes = nodes_.size();
  stats_.shared_steps = total_extend_steps - stats_.extensions;
  stats_.shared_suffix_sets = total_suffix_sets - shared_defs;
}

std::string PlanForest::to_string() const {
  std::ostringstream oss;
  oss << "forest plans=" << stats_.plans << " nodes=" << stats_.nodes
      << " extensions=" << stats_.extensions
      << " shared_steps=" << stats_.shared_steps
      << " shared_suffix_sets=" << stats_.shared_suffix_sets << "\n";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    oss << "  node " << i << " depth " << n.depth << ":";
    for (const Extension& e : n.extensions) {
      oss << " ext[preds";
      for (int p : e.predecessor_depths) oss << " " << p;
      oss << " -> " << e.child << ", " << e.branches.size() << " branches]";
    }
    oss << " " << n.count_leaves.size() << " count-leaves, "
        << n.iep_leaves.size() << " iep-leaves";
    if (!n.suffix_defs.empty())
      oss << " (" << n.suffix_defs.size() << " suffix sets)";
    oss << "\n";
  }
  return oss.str();
}

}  // namespace graphpi
