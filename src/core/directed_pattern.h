// Directed patterns (the directed half of the Section II-A extension).
//
// A directed pattern is a set of arcs over n vertices. Its automorphisms
// are the arc-preserving permutations; note these groups can lack
// 2-cycles entirely (the directed triangle's group is the Z3 rotation
// group), which is why Algorithm 1 carries the orbit-max fallback
// (restriction.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/pattern.h"
#include "core/permutation.h"
#include "core/restriction.h"
#include "core/schedule.h"

namespace graphpi {

class DirectedPattern {
 public:
  DirectedPattern() = default;

  /// Builds from arcs (u -> v). Antiparallel pairs are allowed; self
  /// loops and duplicates are rejected.
  DirectedPattern(int n_vertices,
                  const std::vector<std::pair<int, int>>& arcs);

  [[nodiscard]] int size() const noexcept { return n_; }
  [[nodiscard]] int arc_count() const noexcept {
    return static_cast<int>(arcs_.size());
  }
  [[nodiscard]] bool has_arc(int u, int v) const noexcept {
    return (out_[u] >> v) & 1u;
  }
  [[nodiscard]] const std::vector<std::pair<int, int>>& arcs()
      const noexcept {
    return arcs_;
  }

  /// The underlying undirected pattern (arc orientation erased) — the
  /// schedule generator and phase rules operate on this skeleton.
  [[nodiscard]] const Pattern& skeleton() const noexcept { return skeleton_; }

  [[nodiscard]] std::string to_string() const;

 private:
  int n_ = 0;
  std::vector<std::pair<int, int>> arcs_;
  std::uint32_t out_[Pattern::kMaxVertices] = {};
  Pattern skeleton_;
};

/// Arc-preserving automorphisms of the directed pattern.
[[nodiscard]] std::vector<Permutation> automorphisms(
    const DirectedPattern& pattern);

/// Algorithm 1 on the directed automorphism group.
[[nodiscard]] std::vector<RestrictionSet> generate_restriction_sets(
    const DirectedPattern& pattern, const RestrictionGenOptions& options = {});

}  // namespace graphpi
