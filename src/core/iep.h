// Counting with the Inclusion–Exclusion Principle (Section IV-D).
//
// When the optimal schedule searches its last k vertices without any
// intersection operation (phase 2 guarantees those vertices are pairwise
// non-adjacent), enumeration of the innermost k loops can be replaced by a
// closed-form count: with S_1..S_k the candidate sets of the k suffix
// vertices,
//
//   |S_IEP| = |{(e_1..e_k) : e_i ∈ S_i, all distinct}|
//
// evaluated by inclusion–exclusion over the "e_i = e_j" collision events.
// Each intersection term factorizes over the connected components of the
// collision-pair graph (Algorithm 2).
//
// Restrictions checked in the innermost k loops are dropped under IEP,
// which overcounts by a constant factor x — the number of automorphic
// arrangements of one embedding compatible with the remaining outer
// restrictions. x is computed in closed form on the complete graph K_n
// (the same calibration the authors' artifact performs empirically); the
// engine divides the aggregated sum by x.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pattern.h"
#include "core/restriction.h"
#include "core/schedule.h"

namespace graphpi {

/// A precompiled IEP evaluation plan for a (pattern, schedule,
/// restriction-set, k) combination. The plan is data-graph independent;
/// the engine instantiates it once per match.
struct IepPlan {
  /// Suffix length replaced by IEP counting (0 disables IEP).
  int k = 0;

  /// One additive term of the inclusion–exclusion sum: the signed
  /// coefficient times the product over `blocks` of |∩_{i∈B} S_i|.
  /// Block elements index the k suffix candidate sets (0-based).
  struct Term {
    std::int64_t coefficient = 0;
    std::vector<std::vector<int>> blocks;
  };
  std::vector<Term> terms;

  /// Overcount factor x = LE(n, outer_restrictions) * |Aut| / n!; zero
  /// marks an invalid plan (the factor did not divide evenly).
  std::uint64_t divisor = 1;

  /// Restrictions still checked by the outer n-k loops.
  RestrictionSet outer_restrictions;

  [[nodiscard]] std::string to_string() const;
};

/// The subset of `restrictions` whose check loop (depth of the
/// later-scheduled endpoint) lies in the outer n-k loops.
[[nodiscard]] RestrictionSet outer_restrictions(
    const Schedule& schedule, const RestrictionSet& restrictions, int k);

/// Builds the IEP plan for suffix length `k` of `schedule`.
/// Requirements (checked): 1 <= k <= independent_suffix_length(pattern).
///
/// When `aggregate_partitions` is true (default), the 2^(k(k-1)/2)
/// collision-pair subsets of the paper's formula are folded into one term
/// per set partition of {1..k} with the Möbius coefficient
/// ∏_B (-1)^(|B|-1) (|B|-1)!, which is algebraically identical but
/// evaluates Bell(k) instead of 2^(k(k-1)/2) terms. With the flag false
/// the plan contains one term per pair subset, exactly as Section IV-D
/// writes the sum (kept for the ablation bench and equivalence tests).
[[nodiscard]] IepPlan build_iep_plan(const Pattern& pattern,
                                     const Schedule& schedule,
                                     const RestrictionSet& restrictions,
                                     int k, bool aggregate_partitions = true);

/// Validates an IEP plan in two stages. (1) Closed form on the complete
/// graph K_n: every injective outer assignment is an embedding and all
/// suffix candidate sets equal the k unused vertices, so
///   ansIEP = (#outer arrangements compatible with outer restrictions) * k!
/// must equal divisor * n!/|Aut|. (2) Order uniformity: the K_n identity
/// only pins the overcount AVERAGED over all id orderings; the division
/// is sound only when every ordering is overcounted exactly `divisor`
/// times, so the per-rank-order automorphism-survivor count is checked to
/// be constant (this is what rejects the cycle(6) plans whose undivided
/// sums were not divisible by x=3 on real graphs). Returns true iff both
/// hold. Selection re-validates every IEP configuration before use.
[[nodiscard]] bool validate_iep_plan(const Pattern& pattern,
                                     const Schedule& schedule,
                                     const IepPlan& plan);

}  // namespace graphpi
