#include "core/plan.h"

#include <algorithm>
#include <sstream>

#include "support/check.h"

namespace graphpi {

Plan compile_plan(const Configuration& config) {
  const int n = config.pattern.size();
  GRAPHPI_CHECK_MSG(config.schedule.size() == n,
                    "schedule must cover the pattern");
  Plan plan;
  plan.pattern = config.pattern;
  plan.iep = config.iep;
  const bool iep = config.iep.k > 0;
  plan.outer_depth = iep ? n - config.iep.k : n;
  GRAPHPI_CHECK(plan.outer_depth >= 1);

  plan.steps.resize(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) {
    auto& step = plan.steps[static_cast<std::size_t>(d)];
    const int v = config.schedule.vertex_at(d);
    step.pattern_vertex = v;
    if (d >= plan.outer_depth) {
      step.kind = PlanStep::Kind::kIepSuffix;
    } else if (!iep && d == n - 1) {
      step.kind = PlanStep::Kind::kCountLeaf;
    } else {
      step.kind = PlanStep::Kind::kExtend;
    }
    for (int e = 0; e < d; ++e) {
      const int u = config.schedule.vertex_at(e);
      if (config.pattern.has_edge(u, v)) step.predecessor_depths.push_back(e);
    }
    if (step.predecessor_depths.size() >= 2) plan.wants_hub_index = true;
    for (const auto& r : config.restrictions) {
      const int dg = config.schedule.depth_of(r.greater);
      const int ds = config.schedule.depth_of(r.smaller);
      if (std::max(dg, ds) != d) continue;  // checked at the later depth
      if (ds == d) {
        // id(greater) > id(this): candidates bounded above.
        step.upper_bound_depths.push_back(dg);
      } else {
        // id(this) > id(smaller): candidates bounded below.
        step.lower_bound_depths.push_back(ds);
      }
    }
  }
  return plan;
}

std::string Plan::to_string() const {
  std::ostringstream oss;
  oss << "plan n=" << size() << " outer=" << outer_depth;
  if (iep_active()) oss << " iep_k=" << iep.k;
  for (int d = 0; d < size(); ++d) {
    const auto& s = steps[static_cast<std::size_t>(d)];
    oss << " | d" << d << " v" << s.pattern_vertex;
    switch (s.kind) {
      case PlanStep::Kind::kExtend: oss << " extend"; break;
      case PlanStep::Kind::kCountLeaf: oss << " count"; break;
      case PlanStep::Kind::kIepSuffix: oss << " iep"; break;
    }
    oss << " preds[";
    for (std::size_t i = 0; i < s.predecessor_depths.size(); ++i)
      oss << (i ? "," : "") << s.predecessor_depths[i];
    oss << "]";
    for (int b : s.lower_bound_depths) oss << " >d" << b;
    for (int b : s.upper_bound_depths) oss << " <d" << b;
  }
  return oss.str();
}

}  // namespace graphpi
