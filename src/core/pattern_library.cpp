#include "core/pattern_library.h"

#include <charconv>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "core/pattern_canon.h"
#include "support/check.h"

namespace graphpi::patterns {

Pattern rectangle() {
  return Pattern(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
}

Pattern house() {
  // Figure 5(a): rectangle A-C-E-B(-A) with roof vertex D on edge A-B.
  // Encoded with the artifact's adjacency string (5 vertices, 6 edges).
  return Pattern(5, std::string("0111010011100011100001100"));
}

Pattern cycle_6_tri() {
  // Figure 6(a): the 6-cycle D-A-E-C-F-B-D with chords A-B and A-C; the
  // independent triple {D, E, F} gives k = 3 for IEP.
  // A=0, B=1, C=2, D=3, E=4, F=5.
  return Pattern(6, {{0, 1}, {0, 2}, {0, 3}, {1, 3}, {0, 4}, {2, 4},
                     {1, 5}, {2, 5}});
}

Pattern pentagon() { return cycle(5); }

Pattern hourglass() {
  return Pattern(5, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}});
}

Pattern clique(int n) {
  GRAPHPI_CHECK(n >= 2 && n <= Pattern::kMaxVertices);
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  return Pattern(n, edges);
}

Pattern cycle(int n) {
  GRAPHPI_CHECK(n >= 3 && n <= Pattern::kMaxVertices);
  std::vector<std::pair<int, int>> edges;
  for (int v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  return Pattern(n, edges);
}

Pattern path(int n) {
  GRAPHPI_CHECK(n >= 2 && n <= Pattern::kMaxVertices);
  std::vector<std::pair<int, int>> edges;
  for (int v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return Pattern(n, edges);
}

Pattern star(int n) {
  GRAPHPI_CHECK(n >= 2 && n <= Pattern::kMaxVertices);
  std::vector<std::pair<int, int>> edges;
  for (int v = 1; v < n; ++v) edges.emplace_back(0, v);
  return Pattern(n, edges);
}

Pattern tailed_triangle() {
  return Pattern(4, {{0, 1}, {0, 2}, {1, 2}, {2, 3}});
}

Pattern evaluation_pattern(int index) {
  // Adjacency matrices of Figure 7 as shipped in the authors' artifact
  // (github.com/thu-pacman/GraphPi); see DESIGN.md for provenance.
  switch (index) {
    case 1:
      return Pattern(5, std::string("0111010011100011100001100"));
    case 2:
      return Pattern(6, std::string("011011101110110101011000110000101000"));
    case 3:
      return Pattern(6, std::string("011111101000110111101010101101101010"));
    case 4:
      return Pattern(6, std::string("011110101101110000110000100001010010"));
    case 5:
      return Pattern(
          7, std::string("0111111101111111011101110100111100011100001100000"));
    case 6:
      return Pattern(
          7, std::string("0111111101111111011001110100111100011000001100000"));
    default:
      GRAPHPI_CHECK_MSG(false, "evaluation pattern index must be 1..6");
      return Pattern();
  }
}

std::vector<Pattern> evaluation_patterns() {
  std::vector<Pattern> out;
  out.reserve(6);
  for (int i = 1; i <= 6; ++i) out.push_back(evaluation_pattern(i));
  return out;
}

std::string evaluation_pattern_name(int index) {
  GRAPHPI_CHECK(index >= 1 && index <= 6);
  return "P" + std::to_string(index);
}

std::vector<Pattern> connected_motifs(int n) {
  GRAPHPI_CHECK_MSG(n >= 3 && n <= 5,
                    "motif enumeration supported for 3..5 vertices");
  std::vector<std::pair<int, int>> all_edges;
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) all_edges.emplace_back(u, v);

  // Dedup up to isomorphism by canonical form (pattern_canon.h): one
  // canonicalization per candidate instead of a pairwise isomorphism
  // check against every motif kept so far. First representative wins, so
  // the output order matches the historical pairwise dedup.
  std::vector<Pattern> motifs;
  std::unordered_set<std::string> seen;
  const std::uint32_t limit = 1u << all_edges.size();
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    std::vector<std::pair<int, int>> edges;
    for (std::size_t e = 0; e < all_edges.size(); ++e)
      if ((mask >> e) & 1u) edges.push_back(all_edges[e]);
    if (edges.size() + 1 < static_cast<std::size_t>(n)) continue;
    Pattern p(n, edges);
    if (!p.connected()) continue;
    if (seen.insert(canonical_string(p)).second) motifs.push_back(std::move(p));
  }
  return motifs;
}

namespace {

/// Whole-string from_chars int parse; throws std::invalid_argument with
/// the offending text on anything but a clean in-range decimal.
int parse_spec_int(const std::string& spec, std::string_view digits) {
  int value = 0;
  const auto [p, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc() || p != digits.data() + digits.size())
    throw std::invalid_argument("pattern spec '" + spec +
                                "': malformed number '" + std::string(digits) +
                                "'");
  return value;
}

}  // namespace

Pattern parse_spec(const std::string& spec) {
  if (spec == "triangle") return clique(3);
  if (spec == "rectangle") return rectangle();
  if (spec == "house") return house();
  if (spec == "pentagon") return pentagon();
  if (spec == "hourglass") return hourglass();
  if (spec == "cycle6tri") return cycle_6_tri();
  if (spec == "tailed_triangle") return tailed_triangle();
  if (spec.size() == 2 && (spec[0] == 'p' || spec[0] == 'P') &&
      spec[1] >= '1' && spec[1] <= '6')
    return evaluation_pattern(spec[1] - '0');
  for (const auto& [prefix, make] :
       {std::pair<std::string_view, Pattern (*)(int)>{"clique", &clique},
        {"cycle", &cycle},
        {"path", &path},
        {"star", &star}}) {
    if (spec.size() > prefix.size() &&
        std::string_view(spec).substr(0, prefix.size()) == prefix) {
      const int k =
          parse_spec_int(spec, std::string_view(spec).substr(prefix.size()));
      if (k < 2 || k > Pattern::kMaxVertices)
        throw std::invalid_argument(
            "pattern spec '" + spec + "': size must be 2.." +
            std::to_string(Pattern::kMaxVertices));
      return make(k);
    }
  }
  if (const auto colon = spec.find(':'); colon != std::string::npos) {
    const int n = parse_spec_int(spec, std::string_view(spec).substr(0, colon));
    if (n < 1 || n > Pattern::kMaxVertices)
      throw std::invalid_argument(
          "pattern spec '" + spec + "': vertex count must be 1.." +
          std::to_string(Pattern::kMaxVertices));
    // Pattern's constructor re-validates shape (n*n length, 0/1 symmetric,
    // loop-free) and throws std::logic_error with its own message.
    return Pattern(n, spec.substr(colon + 1));
  }
  throw std::invalid_argument("unknown pattern: " + spec);
}

}  // namespace graphpi::patterns
