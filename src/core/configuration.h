// Configuration = schedule + restriction set (+ optional IEP plan), and
// the selection pipeline of Figure 3: generate all efficient schedules and
// all restriction sets, predict the cost of every combination, pick the
// best one.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/iep.h"
#include "core/pattern.h"
#include "core/perf_model.h"
#include "core/restriction.h"
#include "core/schedule.h"

namespace graphpi {

/// Everything the execution engine needs to run one pattern matching job.
struct Configuration {
  Pattern pattern;
  Schedule schedule;
  RestrictionSet restrictions;
  /// IEP plan; iep.k == 0 means IEP disabled (required when listing
  /// embeddings rather than counting them).
  IepPlan iep;
  /// Relative cost predicted by the performance model (comparable only
  /// within one (pattern, graph) planning run).
  double predicted_cost = 0.0;

  [[nodiscard]] std::string to_string() const;
};

struct PlannerOptions {
  /// Attach an IEP plan to the selected configuration (counting only).
  bool use_iep = false;
  /// Cap on Algorithm 1's output (see RestrictionGenOptions).
  std::size_t max_restriction_sets = 64;
  PerfModelOptions model;
};

/// Diagnostics of one planning run (feeds Table III and Figure 9).
struct PlanningStats {
  std::size_t schedules_total = 0;      ///< n!
  std::size_t schedules_phase1 = 0;     ///< surviving phase 1
  std::size_t schedules_efficient = 0;  ///< surviving both phases
  std::size_t restriction_sets = 0;     ///< Algorithm 1 output size
  std::size_t configurations_evaluated = 0;
  double planning_seconds = 0.0;
};

/// Full GraphPi planning pipeline: returns the predicted-optimal
/// configuration of `pattern` for a graph with statistics `stats`.
[[nodiscard]] Configuration plan_configuration(const Pattern& pattern,
                                               const GraphStats& stats,
                                               const PlannerOptions& options = {},
                                               PlanningStats* diag = nullptr);

/// Scores one specific schedule against every restriction set and returns
/// the best configuration for it (used by the restriction-set experiments
/// of Table II and the schedule sweeps of Figures 9/11).
[[nodiscard]] Configuration best_configuration_for_schedule(
    const Pattern& pattern, const Schedule& schedule,
    const std::vector<RestrictionSet>& restriction_sets,
    const GraphStats& stats, const PlannerOptions& options = {});

/// Attaches the largest valid IEP plan to `config` (k = the schedule's
/// independent suffix length, decremented until validate_iep_plan
/// accepts). No-op when the pattern has a single vertex.
void attach_iep_plan(Configuration& config);

}  // namespace graphpi
