#include "core/iep.h"

#include <algorithm>
#include <bit>
#include <map>
#include <sstream>

#include "core/automorphism.h"
#include "support/check.h"

namespace graphpi {

std::string IepPlan::to_string() const {
  std::ostringstream oss;
  oss << "IEP(k=" << k << ", divisor=" << divisor << ", terms=" << terms.size()
      << ")";
  return oss.str();
}

RestrictionSet outer_restrictions(const Schedule& schedule,
                                  const RestrictionSet& restrictions, int k) {
  const int n = schedule.size();
  RestrictionSet out;
  for (const auto& r : restrictions) {
    const int check_depth =
        std::max(schedule.depth_of(r.greater), schedule.depth_of(r.smaller));
    if (check_depth < n - k) out.push_back(r);
  }
  return out;
}

namespace {

/// Tiny union-find over <= 8 elements.
struct UnionFind {
  int parent[8];
  explicit UnionFind(int n) {
    for (int i = 0; i < n; ++i) parent[i] = i;
  }
  int find(int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void unite(int a, int b) { parent[find(a)] = find(b); }
};

std::vector<std::vector<int>> components_of_pairs(
    int k, const std::vector<std::pair<int, int>>& pairs,
    std::uint32_t mask) {
  UnionFind uf(k);
  for (std::size_t e = 0; e < pairs.size(); ++e)
    if ((mask >> e) & 1u) uf.unite(pairs[e].first, pairs[e].second);
  std::vector<std::vector<int>> blocks;
  std::vector<int> root_to_block(static_cast<std::size_t>(k), -1);
  for (int i = 0; i < k; ++i) {
    const int r = uf.find(i);
    if (root_to_block[static_cast<std::size_t>(r)] == -1) {
      root_to_block[static_cast<std::size_t>(r)] =
          static_cast<int>(blocks.size());
      blocks.emplace_back();
    }
    blocks[static_cast<std::size_t>(root_to_block[static_cast<std::size_t>(r)])]
        .push_back(i);
  }
  return blocks;
}

}  // namespace

IepPlan build_iep_plan(const Pattern& pattern, const Schedule& schedule,
                       const RestrictionSet& restrictions, int k,
                       bool aggregate_partitions) {
  const int n = pattern.size();
  GRAPHPI_CHECK(schedule.size() == n);
  GRAPHPI_CHECK_MSG(k >= 1 && k <= n, "IEP suffix length out of range");
  GRAPHPI_CHECK_MSG(k <= schedule.independent_suffix_length(pattern),
                    "IEP suffix must be pairwise non-adjacent");

  IepPlan plan;
  plan.k = k;
  plan.outer_restrictions = outer_restrictions(schedule, restrictions, k);

  // Overcount factor x: the number of automorphic arrangements of one
  // embedding that satisfy the remaining outer restrictions. Dropping the
  // suffix restrictions makes the enumeration find each subgraph x times.
  // Computed in closed form on K_n (the same empirical calibration the
  // authors' artifact performs on a small complete graph): on K_n the
  // undivided IEP answer is the number of total orders compatible with
  // the outer partial order, and the true count is n!/|Aut|, so
  //   x = LE(n, outer) * |Aut| / n!.
  // Note the paper's prose suggests counting permutations surviving
  // `no_conflict`, but that is an existential test and overestimates x
  // (e.g. triangle with outer {id(A)>id(B)}: 5 survivors, true factor 3);
  // see tests/engine/iep_test.cpp.
  std::uint64_t factorial = 1;
  for (int i = 2; i <= n; ++i) factorial *= static_cast<std::uint64_t>(i);
  const std::uint64_t aut = automorphism_count(pattern);
  const std::uint64_t numerator =
      linear_extension_count(n, plan.outer_restrictions) * aut;
  if (numerator % factorial == 0 && numerator > 0) {
    plan.divisor = numerator / factorial;
  } else {
    plan.divisor = 0;  // marks the plan invalid; validate_iep_plan rejects
  }

  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < k; ++i)
    for (int j = i + 1; j < k; ++j) pairs.emplace_back(i, j);
  const std::uint32_t n_masks = 1u << pairs.size();

  if (!aggregate_partitions) {
    // Verbatim Section IV-D: one signed term per subset of collision pairs.
    plan.terms.reserve(n_masks);
    for (std::uint32_t mask = 0; mask < n_masks; ++mask) {
      IepPlan::Term term;
      term.coefficient = (std::popcount(mask) % 2 == 0) ? 1 : -1;
      term.blocks = components_of_pairs(k, pairs, mask);
      plan.terms.push_back(std::move(term));
    }
    return plan;
  }

  // Aggregate subsets that induce the same connected-component partition:
  // the per-partition coefficient is the sum of (-1)^|subset| over all
  // subsets with that partition, which equals ∏_B (-1)^(|B|-1) (|B|-1)!
  // (Möbius function of the partition lattice). We accumulate it
  // numerically, which also serves as a built-in cross-check of the
  // closed form (tested in tests/core/iep_test.cpp).
  std::map<std::vector<std::vector<int>>, std::int64_t> coeff;
  for (std::uint32_t mask = 0; mask < n_masks; ++mask) {
    auto blocks = components_of_pairs(k, pairs, mask);
    coeff[std::move(blocks)] += (std::popcount(mask) % 2 == 0) ? 1 : -1;
  }
  for (auto& [blocks, c] : coeff) {
    if (c == 0) continue;
    IepPlan::Term term;
    term.coefficient = c;
    term.blocks = blocks;
    plan.terms.push_back(std::move(term));
  }
  return plan;
}

namespace {

/// Lehmer index of the rank array p[0..n) (a permutation of {0..n-1});
/// bijective into [0, n!).
std::size_t lehmer_index(const int* p, int n) {
  std::size_t idx = 0;
  for (int i = 0; i < n; ++i) {
    int smaller = 0;
    for (int j = i + 1; j < n; ++j)
      if (p[j] < p[i]) ++smaller;
    idx = idx * static_cast<std::size_t>(n - i) +
          static_cast<std::size_t>(smaller);
  }
  return idx;
}

/// The per-embedding overcount of IEP enumeration is a function of how
/// the data-graph ids of one concrete embedding rank against each other:
/// with rank order π (π[v] = rank of the id matched to pattern vertex v),
/// the embedding is found once per automorphism σ whose relabeling still
/// satisfies the outer restrictions, i.e.
///
///   c(π) = |{σ ∈ Aut : ∀ (g, s) ∈ outer, π[σ(g)] > π[σ(s)]}|.
///
/// Dividing the aggregated sum by a constant x is only sound when
/// c(π) == x for EVERY rank order — the K_n closed form only pins the
/// average (Σ_π c(π) = LE(n, outer) · |Aut| = n! · x), which is how the
/// cycle(6) plans slipped through: their c(π) oscillates around x = 3, so
/// real graphs (whose embeddings realize a skewed mix of orders) produce
/// sums not divisible by 3. c is constant on the left cosets π∘Aut, so
/// one evaluation per coset suffices: total work n! · (|outer| + n),
/// bounded by Pattern::kMaxVertices = 8 → at most 40320 orders (the
/// `seen` bitmap tops out at ~40 KB).
bool divisor_is_order_uniform(const Pattern& pattern, const IepPlan& plan) {
  const int n = pattern.size();
  static_assert(Pattern::kMaxVertices <= 8,
                "the n! order sweep assumes small patterns");
  const std::vector<Permutation> aut = automorphisms(pattern);
  std::size_t factorial = 1;
  for (int i = 2; i <= n; ++i) factorial *= static_cast<std::size_t>(i);
  std::vector<bool> seen(factorial, false);
  std::vector<int> rank(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) rank[static_cast<std::size_t>(i)] = i;
  std::vector<int> composed(static_cast<std::size_t>(n));
  do {
    if (seen[lehmer_index(rank.data(), n)]) continue;
    std::uint64_t compatible = 0;
    for (const Permutation& sigma : aut) {
      bool ok = true;
      for (const auto& r : plan.outer_restrictions) {
        if (rank[static_cast<std::size_t>(sigma(r.greater))] <=
            rank[static_cast<std::size_t>(sigma(r.smaller))]) {
          ok = false;
          break;
        }
      }
      if (ok) ++compatible;
      // Mark the whole coset π∘Aut visited: c is constant on it.
      for (int v = 0; v < n; ++v)
        composed[static_cast<std::size_t>(v)] =
            rank[static_cast<std::size_t>(sigma(v))];
      seen[lehmer_index(composed.data(), n)] = true;
    }
    if (compatible != plan.divisor) return false;
  } while (std::next_permutation(rank.begin(), rank.end()));
  return true;
}

}  // namespace

bool validate_iep_plan(const Pattern& pattern, const Schedule& schedule,
                       const IepPlan& plan) {
  const int n = pattern.size();
  if (plan.divisor == 0) return false;
  // On K_n every injective assignment to the outer n-k positions extends
  // to exactly k! IEP tuples, so ansIEP equals the number of full
  // permutations compatible with the outer restrictions (each outer
  // arrangement appears k! times among them). See header for derivation.
  (void)schedule;
  const std::uint64_t ans_iep =
      linear_extension_count(n, plan.outer_restrictions);
  std::uint64_t factorial = 1;
  for (int i = 2; i <= n; ++i) factorial *= static_cast<std::uint64_t>(i);
  const std::uint64_t aut = automorphism_count(pattern);
  if (factorial % aut != 0) return false;
  const std::uint64_t truth = factorial / aut;
  if (ans_iep != plan.divisor * truth) return false;
  // The K_n identity fixes only the AVERAGE per-embedding overcount; the
  // division is sound only when the factor is the same for every
  // realizable id ordering (the latent cycle(6) bug — see the helper).
  return divisor_is_order_uniform(pattern, plan);
}

}  // namespace graphpi
