#include "core/automorphism.h"

#include <algorithm>

namespace graphpi {

namespace {

/// Backtracking search assigning images vertex by vertex; prunes on degree
/// mismatch and on any edge/non-edge violation against already-assigned
/// vertices.
void extend(const Pattern& p, std::vector<int>& image, std::uint32_t used,
            std::vector<Permutation>& out) {
  const int n = p.size();
  const int i = static_cast<int>(image.size());
  if (i == n) {
    out.emplace_back(image);
    return;
  }
  for (int candidate = 0; candidate < n; ++candidate) {
    if ((used >> candidate) & 1u) continue;
    if (p.degree(candidate) != p.degree(i)) continue;
    bool ok = true;
    for (int j = 0; j < i && ok; ++j)
      if (p.has_edge(j, i) != p.has_edge(image[static_cast<std::size_t>(j)],
                                         candidate))
        ok = false;
    if (!ok) continue;
    image.push_back(candidate);
    extend(p, image, used | (1u << candidate), out);
    image.pop_back();
  }
}

}  // namespace

std::vector<Permutation> automorphisms(const Pattern& pattern) {
  std::vector<Permutation> out;
  std::vector<int> image;
  image.reserve(static_cast<std::size_t>(pattern.size()));
  extend(pattern, image, 0, out);
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t automorphism_count(const Pattern& pattern) {
  return automorphisms(pattern).size();
}

}  // namespace graphpi
