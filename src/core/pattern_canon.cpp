#include "core/pattern_canon.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "support/check.h"

namespace graphpi {

namespace {

/// Adjacency string of `p` relabeled so that new vertex i is old
/// perm[i].
std::string relabeled_string(const Pattern& p, const std::vector<int>& perm) {
  const int n = p.size();
  std::string s(static_cast<std::size_t>(n) * n, '0');
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (p.has_edge(perm[static_cast<std::size_t>(i)],
                     perm[static_cast<std::size_t>(j)]))
        s[static_cast<std::size_t>(i) * n + j] = '1';
  return s;
}

}  // namespace

std::string canonical_string(const Pattern& pattern) {
  const int n = pattern.size();
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::string best;
  do {
    std::string candidate = relabeled_string(pattern, perm);
    if (best.empty() || candidate < best) best = std::move(candidate);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

Pattern canonical_form(const Pattern& pattern) {
  return Pattern(pattern.size(), canonical_string(pattern));
}

bool isomorphic(const Pattern& a, const Pattern& b) {
  if (a.size() != b.size() || a.edge_count() != b.edge_count()) return false;
  return !find_isomorphism(a, b).empty() ||
         (a.size() == 0 && b.size() == 0);
}

std::vector<int> find_isomorphism(const Pattern& a, const Pattern& b) {
  if (a.size() != b.size() || a.edge_count() != b.edge_count()) return {};
  const int n = a.size();

  // Backtracking assignment with degree pruning: image[i] is the vertex
  // of `a` playing the role of vertex i of `b`.
  std::vector<int> image;
  image.reserve(static_cast<std::size_t>(n));
  std::uint32_t used = 0;

  const std::function<bool()> extend = [&]() -> bool {
    const int i = static_cast<int>(image.size());
    if (i == n) return true;
    for (int candidate = 0; candidate < n; ++candidate) {
      if ((used >> candidate) & 1u) continue;
      if (a.degree(candidate) != b.degree(i)) continue;
      bool ok = true;
      for (int j = 0; j < i && ok; ++j)
        if (b.has_edge(j, i) !=
            a.has_edge(image[static_cast<std::size_t>(j)], candidate))
          ok = false;
      if (!ok) continue;
      image.push_back(candidate);
      used |= 1u << candidate;
      if (extend()) return true;
      used &= ~(1u << candidate);
      image.pop_back();
    }
    return false;
  };

  if (!extend()) return {};
  return image;
}

}  // namespace graphpi
