// Prefix-sharing multi-plan trie.
//
// Motif-style workloads run many plans against the same data graph, and
// the plans share long loop prefixes: every plan's depth-0 loop scans the
// vertex set, most depth-1 loops scan N(v0), many depth-2 loops intersect
// the same pair of adjacencies. A PlanForest merges compiled Plans (see
// plan.h) into a trie keyed on each step's *predecessor list* — the part
// of a loop that costs real work (candidate intersections) — so a single
// traversal of the data graph extends each shared prefix once for every
// plan.
//
// Per-plan restriction windows do NOT split the trie. Plans whose bounds
// coincide on an edge are grouped into one Branch; the executor loops
// over the union window of the active branches and narrows an active-plan
// bitmask per candidate vertex, so plans that differ only in restrictions
// still share every intersection below the divergence. Terminal actions
// (counting leaves, IEP term evaluations) fire only for plans whose bit
// survived the path. IEP leaves additionally share materialized suffix
// candidate sets: the distinct predecessor lists across all leaves of a
// node (and all S_i of one leaf) are deduplicated into `suffix_defs`.
//
// Like Plan, a forest is data-graph independent and immutable after
// construction; engine/forest.h executes it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/plan.h"

namespace graphpi {

class PlanForest {
 public:
  /// Bit i = plans()[i]. Capacity bounds the batch size; callers with
  /// more plans run several forests (GraphPi::count_batch chunks
  /// automatically).
  using PlanMask = std::uint64_t;
  static constexpr std::size_t kMaxPlans = 64;

  /// Plans whose restriction windows coincide on an edge.
  struct Branch {
    PlanMask mask = 0;
    std::vector<int> lower_bound_depths;  ///< candidates > mapped[d]
    std::vector<int> upper_bound_depths;  ///< candidates < mapped[d]
  };

  /// One distinct loop at a node, keyed on the predecessor list; leads
  /// into `child`.
  struct Extension {
    std::vector<int> predecessor_depths;
    int child = -1;
    PlanMask mask = 0;  ///< union of branch masks
    std::vector<Branch> branches;
    /// Node suffix def with the same (>= 2) predecessors, or -1: when the
    /// leaves just materialized that set, the executor copies it instead
    /// of re-running the intersection (used vertices are absent from the
    /// set, which the loop would skip anyway).
    int reuse_suffix_def = -1;
  };

  /// Counting-only terminal of a plain plan: |candidates ∩ window| minus
  /// already-used vertices, evaluated with size-only kernels.
  ///
  /// When the leaf's dependency set (predecessors + bounds) skips one of
  /// the enclosing loop depths, its raw intersection size is *loop
  /// invariant* in the skipped depth and the executor memoizes it: the
  /// build assigns a memo table id and the mapped depths forming the memo
  /// key. The rectangle is the canonical beneficiary — its leaf
  /// |N(v0) ∩ N(v2)| is recomputed per wedge midpoint without this.
  struct CountLeaf {
    int plan = -1;  ///< index into plans()
    std::vector<int> predecessor_depths;
    std::vector<int> lower_bound_depths;
    std::vector<int> upper_bound_depths;
    int memo_id = -1;                 ///< -1 = not memoizable
    std::vector<int> memo_key_depths;  ///< mapped depths forming the key
  };

  /// IEP terminal: evaluate plans()[plan].iep.terms over the node's shared
  /// suffix sets; set_ids[i] is the suffix_defs index holding S_i.
  /// k == 1 leaves whose single set skips an enclosing depth are
  /// memoized exactly like CountLeaf (the term sum is then just |S_0|).
  struct IepLeaf {
    int plan = -1;
    std::vector<int> set_ids;
    int memo_id = -1;
    std::vector<int> memo_key_depths;
  };

  struct Node {
    int depth = 0;  ///< schedule positions mapped when this node is reached
    std::vector<Extension> extensions;
    std::vector<CountLeaf> count_leaves;
    std::vector<IepLeaf> iep_leaves;
    /// Distinct suffix candidate-set definitions (predecessor depth
    /// lists) shared by this node's IEP leaves.
    std::vector<std::vector<int>> suffix_defs;
    /// Plans whose term evaluation reads the MATERIALIZED set — the
    /// ForestExecutor's build gate (so inactive plans' sets are never
    /// built). Memoized k==1 leaves are excluded: that executor serves
    /// them from its memo tables instead.
    std::vector<PlanMask> suffix_def_masks;
    /// Plans whose IEP leaves name each def at all — the full demand,
    /// memoized leaves included. Executors without memo tables (the
    /// sharded distributed runtime) gate their set builds on this.
    std::vector<PlanMask> suffix_def_demand_masks;
  };

  struct Stats {
    std::size_t plans = 0;
    std::size_t nodes = 0;       ///< including the root
    std::size_t extensions = 0;  ///< trie edges
    /// Loop steps saved by prefix sharing: total kExtend steps across all
    /// plans minus trie edges. Zero when nothing is shared.
    std::size_t shared_steps = 0;
    /// Suffix-set materializations saved by IEP set sharing.
    std::size_t shared_suffix_sets = 0;
    /// Leaves with loop-invariant raw counts (see CountLeaf::memo_id);
    /// also the number of memo tables an executor workspace holds.
    std::size_t memoized_leaves = 0;
    std::size_t max_depth = 0;
  };

  /// Builds the trie. At most kMaxPlans plans, each of size >= 1; they
  /// may differ in size, IEP use, and schedule shape.
  explicit PlanForest(std::vector<Plan> plans);

  /// Mask with one bit per plan — the executor's initial active set.
  [[nodiscard]] PlanMask all_plans_mask() const noexcept {
    const std::size_t n = plans_.size();
    return n >= kMaxPlans ? ~PlanMask{0} : (PlanMask{1} << n) - 1;
  }

  [[nodiscard]] const std::vector<Plan>& plans() const noexcept {
    return plans_;
  }
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const Node& root() const noexcept { return nodes_.front(); }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Plan> plans_;
  std::vector<Node> nodes_;  ///< nodes_[0] is the root (depth 0)
  Stats stats_;
};

}  // namespace graphpi
