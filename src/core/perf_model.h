// The accurate performance-prediction model (Section IV-C).
//
// For a configuration (schedule + restriction set) the model predicts the
// relative cost of the nested-loop algorithm with the recursion
//
//   cost_i = l_i * (1 - f_i) * (c_i + o + cost_{i+1})   for i < n
//   cost_n = l_n * (1 - f_n)
//
// where l_i is the expected candidate-set cardinality of loop i, c_i the
// expected intersection work building that set, f_i the probability that a
// partial embedding is filtered by the restriction checked in loop i, and
// o a constant per-iteration overhead.
//
// Cardinalities are estimated from three structural statistics of the data
// graph: |V|, |E| and the triangle count:
//   p1 = 2|E| / |V|^2          (probability two vertices are adjacent)
//   p2 = tri_cnt * |V| / (2|E|)^2   (probability two neighbors of a common
//                                    vertex are adjacent)
//   |intersection of m neighborhoods| ~= |V| * p1 * p2^(m-1).
#pragma once

#include <vector>

#include "core/pattern.h"
#include "core/restriction.h"
#include "core/schedule.h"
#include "graph/graph.h"

namespace graphpi {

/// The structural statistics the model consumes. Decoupled from Graph so
/// tests and what-if analyses can fabricate them.
struct GraphStats {
  double vertices = 0;
  double edges = 0;      ///< undirected edge count
  double triangles = 0;  ///< triangle count

  [[nodiscard]] static GraphStats of(const Graph& g);

  [[nodiscard]] double p1() const noexcept {
    return vertices > 0 ? 2.0 * edges / (vertices * vertices) : 0.0;
  }
  [[nodiscard]] double p2() const noexcept {
    return edges > 0 ? triangles * vertices / (4.0 * edges * edges) : 0.0;
  }
  [[nodiscard]] double average_degree() const noexcept {
    return vertices > 0 ? 2.0 * edges / vertices : 0.0;
  }

  /// Expected cardinality of the intersection of `m` neighborhoods
  /// (m = 0 means the full vertex set, m = 1 a single neighborhood).
  [[nodiscard]] double expected_cardinality(int m) const noexcept;
};

struct PerfModelOptions {
  /// Constant per-iteration overhead o added to each non-innermost loop
  /// body. The paper's published recursion omits it; its earlier
  /// formulation set o_i = 1, which also avoids degenerate zero-cost
  /// comparisons between intersection-free loops. Default matches that.
  double loop_overhead = 1.0;
};

/// Per-loop filter probabilities f_i (Section IV-C, "Measurement of fi"):
/// the fraction of the n! relative-magnitude orders filtered by the
/// restriction(s) checked in loop i, conditioned on surviving loops < i.
/// f_i = 0 for loops with no restriction.
[[nodiscard]] std::vector<double> filter_probabilities(
    const Pattern& pattern, const Schedule& schedule,
    const RestrictionSet& restrictions);

/// Full cost breakdown for inspection (tests, Figure 9 analysis).
struct CostBreakdown {
  std::vector<double> loop_size;           ///< l_i
  std::vector<double> intersection_cost;   ///< c_i
  std::vector<double> filter_probability;  ///< f_i
  double total = 0;                        ///< cost_1
};

/// Predicts the relative cost of running `schedule` with `restrictions`
/// over a graph with statistics `stats`.
[[nodiscard]] CostBreakdown predict_cost(const Pattern& pattern,
                                         const Schedule& schedule,
                                         const RestrictionSet& restrictions,
                                         const GraphStats& stats,
                                         const PerfModelOptions& options = {});

/// Convenience: total predicted cost only.
[[nodiscard]] double predict_total_cost(const Pattern& pattern,
                                        const Schedule& schedule,
                                        const RestrictionSet& restrictions,
                                        const GraphStats& stats,
                                        const PerfModelOptions& options = {});

}  // namespace graphpi
