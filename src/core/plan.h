// The executable plan IR.
//
// A Plan is the flat, engine-facing compilation of a Configuration
// (schedule + restriction set + optional IEP plan): one PlanStep per loop
// depth carrying exactly what an executor needs to run that depth —
// the predecessor depths whose adjacencies are intersected, the
// restriction-window bounds, and the operation kind (extend the partial
// embedding / counting-only leaf / IEP suffix-set definition). Compiling
// once decouples the execution engines from the scheduling core: the
// matcher, the batch forest executor, and (eventually) generated kernels
// all target this IR instead of re-deriving loop structure from the
// Schedule inline.
//
// Plans are data-graph independent and immutable after compilation; the
// same Plan can be executed concurrently by many workers.
#pragma once

#include <string>
#include <vector>

#include "core/configuration.h"
#include "core/iep.h"
#include "core/pattern.h"

namespace graphpi {

/// One loop depth of a compiled plan.
struct PlanStep {
  enum class Kind {
    /// Materialize the candidate set, loop over it, descend one depth.
    kExtend,
    /// Innermost counting loop: the candidate-set size inside the
    /// restriction window is computed with size-only kernels; nothing is
    /// materialized. Only the last step of a non-IEP plan has this kind
    /// (listing runs treat it as kExtend).
    kCountLeaf,
    /// Candidate-set definition consumed by the IEP leaf evaluation; the
    /// executor never loops over these depths.
    kIepSuffix,
  };

  Kind kind = Kind::kExtend;
  /// Pattern vertex searched at this depth (embedding remap only; the
  /// loop structure is fully described by the fields below).
  int pattern_vertex = 0;
  /// Depths (not pattern vertices) of the already-mapped pattern
  /// neighbors whose adjacency lists are intersected.
  std::vector<int> predecessor_depths;
  /// Candidates must be > mapped[d] for every d here (restriction
  /// id(this) > id(mapped[d])).
  std::vector<int> lower_bound_depths;
  /// Candidates must be < mapped[d] for every d here.
  std::vector<int> upper_bound_depths;

  friend bool operator==(const PlanStep&, const PlanStep&) = default;
};

/// A compiled, executable plan for one pattern.
struct Plan {
  Pattern pattern;
  std::vector<PlanStep> steps;  ///< one per loop depth (pattern.size())
  /// First IEP depth; equals size() when IEP is inactive. Steps at depths
  /// >= outer_depth are kIepSuffix.
  int outer_depth = 0;
  /// IEP terms + divisor; iep.k == 0 disables IEP.
  IepPlan iep;
  /// Hint: some step intersects two or more adjacency lists, so the
  /// executor benefits from the graph's hub bitmap index.
  bool wants_hub_index = false;

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(steps.size());
  }
  [[nodiscard]] bool iep_active() const noexcept { return iep.k > 0; }
  /// Depth of the plan's terminal action: the kCountLeaf step for plain
  /// plans, the IEP leaf evaluation point for IEP plans.
  [[nodiscard]] int leaf_depth() const noexcept {
    return iep_active() ? outer_depth : size() - 1;
  }

  [[nodiscard]] std::string to_string() const;
};

/// Compiles `config` (whose schedule must cover its pattern) into the
/// executable IR. Deterministic and cheap — O(n^2 + restrictions).
[[nodiscard]] Plan compile_plan(const Configuration& config);

}  // namespace graphpi
