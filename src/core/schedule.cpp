#include "core/schedule.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "support/check.h"

namespace graphpi {

Schedule::Schedule(std::vector<int> order) : order_(std::move(order)) {
  const int n = static_cast<int>(order_.size());
  GRAPHPI_CHECK(n >= 1 && n <= Pattern::kMaxVertices);
  position_.assign(static_cast<std::size_t>(n), -1);
  for (int d = 0; d < n; ++d) {
    const int v = order_[static_cast<std::size_t>(d)];
    GRAPHPI_CHECK_MSG(v >= 0 && v < n, "schedule vertex out of range");
    GRAPHPI_CHECK_MSG(position_[static_cast<std::size_t>(v)] == -1,
                      "schedule must be a permutation");
    position_[static_cast<std::size_t>(v)] = d;
  }
}

bool Schedule::prefix_connected(const Pattern& p) const {
  GRAPHPI_CHECK(p.size() == size());
  std::uint32_t placed = 1u << order_[0];
  for (std::size_t d = 1; d < order_.size(); ++d) {
    const int v = order_[d];
    if ((p.neighbor_mask(v) & placed) == 0) return false;
    placed |= 1u << v;
  }
  return true;
}

int Schedule::independent_suffix_length(const Pattern& p) const {
  GRAPHPI_CHECK(p.size() == size());
  std::uint32_t suffix = 0;
  int k = 0;
  for (int d = size() - 1; d >= 0; --d) {
    const int v = order_[static_cast<std::size_t>(d)];
    if ((p.neighbor_mask(v) & suffix) != 0) break;
    suffix |= 1u << v;
    ++k;
  }
  return k;
}

std::string Schedule::to_string() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < order_.size(); ++i) {
    if (i) oss << "->";
    oss << order_[i];
  }
  return oss.str();
}

std::vector<Schedule> all_schedules(const Pattern& pattern) {
  std::vector<int> order(static_cast<std::size_t>(pattern.size()));
  std::iota(order.begin(), order.end(), 0);
  std::vector<Schedule> out;
  do {
    out.emplace_back(order);
  } while (std::next_permutation(order.begin(), order.end()));
  return out;
}

ScheduleGenerationResult generate_schedules(const Pattern& pattern) {
  GRAPHPI_CHECK_MSG(pattern.connected(),
                    "schedules are defined for connected patterns");
  ScheduleGenerationResult result;

  int best_k = 0;
  std::vector<int> suffix_k;  // parallel to result.phase1
  for (auto& sched : all_schedules(pattern)) {
    if (!sched.prefix_connected(pattern)) continue;
    const int k = sched.independent_suffix_length(pattern);
    best_k = std::max(best_k, k);
    suffix_k.push_back(k);
    result.phase1.push_back(std::move(sched));
  }
  GRAPHPI_CHECK_MSG(!result.phase1.empty(),
                    "a connected pattern always has phase-1 schedules");

  result.k = best_k;
  for (std::size_t i = 0; i < result.phase1.size(); ++i)
    if (suffix_k[i] == best_k) result.efficient.push_back(result.phase1[i]);
  return result;
}

}  // namespace graphpi
