#include "core/permutation.h"

#include <numeric>
#include <sstream>

#include "support/check.h"

namespace graphpi {

Permutation::Permutation(int n) : n_(n) {
  GRAPHPI_CHECK(n >= 0 && n <= 8);
  for (int i = 0; i < n_; ++i) map_[i] = static_cast<std::uint8_t>(i);
}

Permutation::Permutation(const std::vector<int>& images)
    : n_(static_cast<int>(images.size())) {
  GRAPHPI_CHECK(n_ <= 8);
  std::uint32_t seen = 0;
  for (int i = 0; i < n_; ++i) {
    const int v = images[static_cast<std::size_t>(i)];
    GRAPHPI_CHECK_MSG(v >= 0 && v < n_, "permutation image out of range");
    GRAPHPI_CHECK_MSG(!((seen >> v) & 1u), "permutation image repeated");
    seen |= 1u << v;
    map_[i] = static_cast<std::uint8_t>(v);
  }
}

bool Permutation::is_identity() const noexcept {
  for (int i = 0; i < n_; ++i)
    if (map_[i] != i) return false;
  return true;
}

Permutation Permutation::compose(const Permutation& other) const {
  GRAPHPI_CHECK(n_ == other.n_);
  Permutation out(n_);
  for (int i = 0; i < n_; ++i)
    out.map_[i] = map_[other.map_[i]];
  return out;
}

Permutation Permutation::inverse() const {
  Permutation out(n_);
  for (int i = 0; i < n_; ++i) out.map_[map_[i]] = static_cast<std::uint8_t>(i);
  return out;
}

std::vector<std::vector<int>> Permutation::cycles() const {
  std::vector<std::vector<int>> out;
  std::uint32_t visited = 0;
  for (int start = 0; start < n_; ++start) {
    if ((visited >> start) & 1u) continue;
    std::vector<int> cyc;
    int cur = start;
    do {
      cyc.push_back(cur);
      visited |= 1u << cur;
      cur = map_[cur];
    } while (cur != start);
    out.push_back(std::move(cyc));
  }
  return out;
}

std::vector<std::pair<int, int>> Permutation::two_cycles() const {
  std::vector<std::pair<int, int>> out;
  for (int i = 0; i < n_; ++i) {
    const int j = map_[i];
    // "vertex == perm[perm[vertex]]" with i < j, i.e. a genuine 2-cycle.
    if (i < j && map_[j] == i) out.emplace_back(i, j);
  }
  return out;
}

int Permutation::order() const {
  int result = 1;
  for (const auto& cyc : cycles())
    result = std::lcm(result, static_cast<int>(cyc.size()));
  return result;
}

std::string Permutation::to_string() const {
  std::ostringstream oss;
  for (const auto& cyc : cycles()) {
    oss << "(";
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      if (i) oss << " ";
      oss << cyc[i];
    }
    oss << ")";
  }
  return oss.str();
}

}  // namespace graphpi
