#include "core/perf_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/check.h"

namespace graphpi {

GraphStats GraphStats::of(const Graph& g) {
  return GraphStats{static_cast<double>(g.vertex_count()),
                    static_cast<double>(g.edge_count()),
                    static_cast<double>(g.triangle_count())};
}

double GraphStats::expected_cardinality(int m) const noexcept {
  if (m <= 0) return vertices;
  if (m == 1) return average_degree();
  return vertices * p1() * std::pow(p2(), m - 1);
}

std::vector<double> filter_probabilities(const Pattern& pattern,
                                         const Schedule& schedule,
                                         const RestrictionSet& restrictions) {
  const int n = pattern.size();
  GRAPHPI_CHECK(schedule.size() == n);

  // The loop in which a restriction is checked is the depth of its
  // later-scheduled endpoint. An assignment of relative magnitudes enters
  // loop d iff it satisfies every restriction checked at depths < d, so
  //   entering[d] = LE({r : check_depth(r) < d})
  // (the number of total orders compatible with that partial order), and
  //   f_d = 1 - entering[d+1] / entering[d].
  // LE is computed with the O(2^n n) bitmask DP in restriction.cpp —
  // orders of magnitude cheaper than walking all n! assignments when the
  // planner sweeps thousands of configurations.
  auto check_depth = [&schedule](const Restriction& r) {
    return std::max(schedule.depth_of(r.greater),
                    schedule.depth_of(r.smaller));
  };

  std::vector<std::uint64_t> entering(static_cast<std::size_t>(n) + 1, 0);
  RestrictionSet prefix;
  for (int d = 0; d <= n; ++d) {
    if (d > 0)
      for (const auto& r : restrictions)
        if (check_depth(r) == d - 1) prefix.push_back(r);
    entering[static_cast<std::size_t>(d)] =
        linear_extension_count(n, prefix);
  }

  std::vector<double> f(static_cast<std::size_t>(n), 0.0);
  for (int d = 0; d < n; ++d) {
    const std::uint64_t in = entering[static_cast<std::size_t>(d)];
    const std::uint64_t out = entering[static_cast<std::size_t>(d) + 1];
    if (in > 0)
      f[static_cast<std::size_t>(d)] =
          1.0 - static_cast<double>(out) / static_cast<double>(in);
  }
  return f;
}

CostBreakdown predict_cost(const Pattern& pattern, const Schedule& schedule,
                           const RestrictionSet& restrictions,
                           const GraphStats& stats,
                           const PerfModelOptions& options) {
  const int n = pattern.size();
  GRAPHPI_CHECK(schedule.size() == n);

  CostBreakdown out;
  out.loop_size.resize(static_cast<std::size_t>(n));
  out.intersection_cost.resize(static_cast<std::size_t>(n));
  out.filter_probability =
      filter_probabilities(pattern, schedule, restrictions);

  const double avg_deg = stats.average_degree();
  std::uint32_t placed = 0;
  for (int d = 0; d < n; ++d) {
    const int v = schedule.vertex_at(d);
    const int m = std::popcount(pattern.neighbor_mask(v) & placed);
    out.loop_size[static_cast<std::size_t>(d)] = stats.expected_cardinality(m);

    // Expected cost of materializing the candidate set: a left-to-right
    // chain of sorted intersections, each costing the sum of its two input
    // cardinalities (Section IV-C "Measurement of ci").
    double c = 0.0;
    if (m >= 2) {
      double running = avg_deg;  // first neighborhood
      for (int j = 2; j <= m; ++j) {
        c += running + avg_deg;
        running = stats.expected_cardinality(j);
      }
    }
    out.intersection_cost[static_cast<std::size_t>(d)] = c;
    placed |= 1u << v;
  }

  // cost_i = l_i (1 - f_i) (c_{i+1} + o + cost_{i+1});  cost_n = l_n (1-f_n).
  // The executor builds the candidate set of depth i+1 inside the body of
  // loop i (no hoisting), so that intersection's cost is attributed there.
  double cost = 0.0;
  for (int d = n - 1; d >= 0; --d) {
    const double l = out.loop_size[static_cast<std::size_t>(d)];
    const double keep =
        1.0 - out.filter_probability[static_cast<std::size_t>(d)];
    if (d == n - 1) {
      cost = l * keep;
    } else {
      cost = l * keep *
             (out.intersection_cost[static_cast<std::size_t>(d + 1)] +
              options.loop_overhead + cost);
    }
  }
  out.total = cost;
  return out;
}

double predict_total_cost(const Pattern& pattern, const Schedule& schedule,
                          const RestrictionSet& restrictions,
                          const GraphStats& stats,
                          const PerfModelOptions& options) {
  return predict_cost(pattern, schedule, restrictions, stats, options).total;
}

}  // namespace graphpi
