// Named pattern library.
//
// Includes the six evaluation patterns P1–P6 of Figure 7 (adjacency
// matrices from the authors' public artifact — see DESIGN.md), the worked
// examples from the paper body (Rectangle of Figure 4, House of Figure 5,
// Cycle-6-Tri of Figure 6), and generic families (cliques, cycles, paths,
// stars) used by tests and the motif examples.
#pragma once

#include <string>
#include <vector>

#include "core/pattern.h"

namespace graphpi::patterns {

/// Rectangle / 4-cycle (Figure 4(a); |Aut| = 8).
[[nodiscard]] Pattern rectangle();

/// House: rectangle plus a roof vertex (Figure 5(a); 5 vertices, 6 edges).
[[nodiscard]] Pattern house();

/// Cycle-6-Tri (Figure 6(a)): 6-cycle with two chords forming triangles.
[[nodiscard]] Pattern cycle_6_tri();

/// Pentagon: 5-cycle (used by GraphZero's evaluation).
[[nodiscard]] Pattern pentagon();

/// Hourglass: two triangles sharing one vertex (5 vertices, 6 edges).
[[nodiscard]] Pattern hourglass();

/// Complete graph K_n, n <= 8 (7-clique has the paper's 5040 automorphisms).
[[nodiscard]] Pattern clique(int n);

/// Simple cycle C_n, 3 <= n <= 8.
[[nodiscard]] Pattern cycle(int n);

/// Simple path with n vertices, n >= 2.
[[nodiscard]] Pattern path(int n);

/// Star with n-1 leaves.
[[nodiscard]] Pattern star(int n);

/// Triangle with a pendant vertex ("tailed triangle", 4 vertices).
[[nodiscard]] Pattern tailed_triangle();

/// Evaluation pattern P1..P6 (index 1..6) of Figure 7.
[[nodiscard]] Pattern evaluation_pattern(int index);

/// All six evaluation patterns, in order P1..P6.
[[nodiscard]] std::vector<Pattern> evaluation_patterns();

/// Display name ("P1".."P6") for evaluation pattern `index`.
[[nodiscard]] std::string evaluation_pattern_name(int index);

/// All connected patterns with `n` vertices (3 <= n <= 5), deduplicated up
/// to isomorphism — the motif set of size n used by the motif-counting
/// example (3-motifs: 2, 4-motifs: 6, 5-motifs: 21).
[[nodiscard]] std::vector<Pattern> connected_motifs(int n);

/// Parses the textual pattern spec shared by graphpi_cli and the query
/// service: a named pattern (triangle, rectangle, house, pentagon,
/// hourglass, cycle6tri, tailed_triangle, p1..p6), a sized family
/// (clique<K>, cycle<K>, path<K>, star<K>), or an explicit adjacency
/// matrix "N:ADJSTRING" (N*N row-major 0/1 characters). Every numeric
/// field is parsed with std::from_chars and range-checked, so malformed
/// input ("clique4x", "99999999999:....", "star") throws
/// std::invalid_argument with a usable message instead of silently
/// parsing as 0 or overflowing.
[[nodiscard]] Pattern parse_spec(const std::string& spec);

}  // namespace graphpi::patterns
