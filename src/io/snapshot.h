// Compressed, mmap-able graph snapshots ("GPS1"; spec in docs/FORMAT.md).
//
// The on-disk story for the engine: write-once / read-many, asymmetric by
// design. A snapshot stores a CSR graph as fixed-size seekable blocks of
// delta-encoded LEB128-varint adjacency — pair with
// Graph::reorder_by_degree() so hubs get small ids and most deltas fit a
// single byte — framed by a CRC-checked header, a per-block index
// (offset, first slot, byte length, CRC32), and an optional aux section
// (the per-shard metadata of io/shard_snapshot.h). Loading mmaps the
// file and decodes blocks lazily: each block is CRC-verified and decoded
// through the runtime-dispatched SIMD varint kernels
// (graph/vertex_set.h) straight into caller-provided buffers, so a full
// load is one allocation for the CSR arrays plus decode bandwidth — a
// decode problem, not a rebuild problem.
//
// Every read is bounds- and CRC-checked the way the distributed
// WireReader is: truncated, corrupted, or version-mismatched input
// throws SnapshotError, never UB (fuzzed in tests/io/).
//
// Metrics (support/metrics.h): io.snapshot.saves / bytes_written /
// opens / bytes_mapped / loads / blocks_decoded / crc_rejects counters
// and the io.snapshot.decode_ms / load_ms histograms.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace graphpi::io {

/// Malformed-input failure (bad magic, wrong version, CRC mismatch,
/// truncation, inconsistent geometry, invalid adjacency). Also the
/// failure type for plain filesystem errors on the snapshot paths.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct SnapshotOptions {
  /// Vertices per seekable block. Smaller blocks seek finer and
  /// parallelize better; larger blocks amortize index + CRC overhead.
  std::uint32_t block_vertices = 4096;
  /// Stamp the header's degree-ordered flag (purely informational —
  /// set by callers that saved a reorder_by_degree() graph).
  bool degree_ordered = false;
};

/// Decoded header + geometry of an open snapshot.
struct SnapshotInfo {
  std::uint32_t version = 0;
  VertexId vertex_count = 0;
  std::uint64_t slot_count = 0;  ///< directed adjacency slots
  std::uint32_t block_vertices = 0;
  std::uint32_t block_count = 0;
  bool degree_ordered = false;
  bool has_triangles = false;
  std::uint64_t triangle_count = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t payload_bytes = 0;  ///< encoded block payloads only
};

/// Appends one LEB128 varint (1–5 bytes). The writer-side half of the
/// codec; the decode half is the dispatched varint_decode_u32.
void append_varint(std::vector<std::uint8_t>& out, std::uint32_t v);

/// Writes `graph` as a snapshot file. Overwrites; throws SnapshotError
/// on filesystem failure.
void save_snapshot(const Graph& graph, const std::string& path,
                   const SnapshotOptions& options = {});

/// save_snapshot plus an opaque aux section (io/shard_snapshot.h stores
/// shard metadata there; readers that don't understand aux ignore it).
void save_snapshot_with_aux(const Graph& graph, const std::string& path,
                            const SnapshotOptions& options,
                            std::span<const std::uint8_t> aux);

/// Reusable per-block decode buffers + results (zero allocation in
/// steady state — capacity survives across decode_block calls).
struct DecodedBlock {
  VertexId first_vertex = 0;
  std::vector<std::uint32_t> degrees;   ///< one per vertex of the block
  std::vector<VertexId> neighbors;      ///< concatenated sorted rows
  std::vector<std::uint32_t> scratch;   ///< internal (delta stream)
};

/// An open, validated, memory-mapped snapshot. Construction maps the
/// file and verifies header, index, and aux CRCs plus all geometry
/// (every block's offset/length against the file size, slot monotonic
/// ordering); block payload CRCs are verified lazily by decode_block, so
/// opening a beyond-RAM snapshot touches only the header and index
/// pages. Move-only; the mapping lives until destruction.
class MappedSnapshot {
 public:
  explicit MappedSnapshot(const std::string& path);
  ~MappedSnapshot();
  MappedSnapshot(MappedSnapshot&& other) noexcept;
  MappedSnapshot& operator=(MappedSnapshot&& other) noexcept;
  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;

  [[nodiscard]] const SnapshotInfo& info() const noexcept { return info_; }
  [[nodiscard]] std::uint32_t block_count() const noexcept {
    return info_.block_count;
  }

  /// First vertex id covered by block `b`.
  [[nodiscard]] VertexId block_first_vertex(std::uint32_t b) const noexcept {
    return static_cast<VertexId>(static_cast<std::uint64_t>(b) *
                                 info_.block_vertices);
  }
  /// Vertices covered by block `b` (the last block may be short).
  [[nodiscard]] VertexId block_vertex_count(std::uint32_t b) const noexcept;
  /// Index of the adjacency slot where block `b`'s rows start.
  [[nodiscard]] std::uint64_t block_first_slot(std::uint32_t b) const noexcept;
  /// Total adjacency slots stored in block `b`.
  [[nodiscard]] std::uint64_t block_slots(std::uint32_t b) const noexcept;

  /// CRC-verifies and decodes block `b` into caller-owned arrays:
  /// `degrees_out` receives block_vertex_count(b) entries and
  /// `neighbors_out` block_slots(b) sorted global ids (`scratch` is
  /// reused working space). Throws SnapshotError on a corrupt block.
  void decode_block_into(std::uint32_t b, std::uint32_t* degrees_out,
                         VertexId* neighbors_out,
                         std::vector<std::uint32_t>& scratch) const;

  /// Convenience wrapper decoding into (reused) DecodedBlock buffers.
  void decode_block(std::uint32_t b, DecodedBlock& out) const;

  /// Decodes every block into a Graph (blocks are independent, so the
  /// decode is OpenMP-parallel). The cached triangle count is restored
  /// when the snapshot carries one.
  [[nodiscard]] Graph decode_graph() const;

  /// Aux section bytes (empty when the snapshot has none).
  [[nodiscard]] std::span<const std::uint8_t> aux() const noexcept {
    return aux_;
  }

 private:
  struct BlockEntry {
    std::uint64_t offset = 0;      ///< absolute file offset of the payload
    std::uint64_t first_slot = 0;  ///< adjacency slots before this block
    std::uint32_t bytes = 0;
    std::uint32_t crc = 0;
  };

  void open_and_validate(const std::string& path);
  void unmap() noexcept;
  [[nodiscard]] std::span<const std::uint8_t> payload(
      const BlockEntry& e) const noexcept;

  const std::uint8_t* data_ = nullptr;
  std::uint64_t size_ = 0;
  bool mmapped_ = false;
  std::vector<std::uint8_t> fallback_;  ///< used when mmap is unavailable
  SnapshotInfo info_;
  std::vector<BlockEntry> index_;
  std::span<const std::uint8_t> aux_;
  std::string path_;
};

/// One-shot load: open + decode_graph. (Also exposed as the
/// Graph::load_snapshot static member.)
[[nodiscard]] Graph load_snapshot(const std::string& path);

}  // namespace graphpi::io
