#include "io/snapshot.h"

#include <chrono>
#include <cstring>
#include <exception>
#include <fstream>
#include <limits>
#include <mutex>
#include <utility>

#include "dist/comm.h"  // crc32
#include "graph/vertex_set.h"
#include "support/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#define GRAPHPI_SNAPSHOT_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define GRAPHPI_SNAPSHOT_HAS_MMAP 0
#endif

namespace graphpi::io {
namespace {

namespace metrics = support::metrics;

// ---------------------------------------------------------------------------
// Format constants (spec: docs/FORMAT.md). All integers little-endian.
// ---------------------------------------------------------------------------

constexpr char kMagic[4] = {'G', 'P', 'S', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kHeaderBytes = 56;  // incl. trailing header CRC
constexpr std::uint64_t kIndexEntryBytes = 24;
constexpr std::uint32_t kFlagDegreeOrdered = 1u << 0;
constexpr std::uint32_t kFlagHasTriangles = 1u << 1;
constexpr std::uint32_t kFlagHasAux = 1u << 2;
constexpr std::uint32_t kKnownFlags =
    kFlagDegreeOrdered | kFlagHasTriangles | kFlagHasAux;
constexpr std::uint64_t kBlockSubHeaderBytes = 12;

// The engine targets little-endian hosts (as the raw GPI1 loader in
// graph/io.cpp already does); fixed-width memcpy keeps the accesses
// alignment-safe.
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto off = out.size();
  out.resize(off + 4);
  std::memcpy(out.data() + off, &v, 4);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const auto off = out.size();
  out.resize(off + 8);
  std::memcpy(out.data() + off, &v, 8);
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

[[noreturn]] void fail(const std::string& what) { throw SnapshotError(what); }

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint32_t block_count_for(VertexId n, std::uint32_t block_vertices) {
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(n) + block_vertices - 1) / block_vertices);
}

/// Decodes `count` varints from `in`, requiring the stream to be
/// exactly consumed; throws with `stream` in the message otherwise.
void decode_exact(std::span<const std::uint8_t> in, std::size_t count,
                  std::uint32_t* out, const char* stream) {
  const std::size_t used = varint_decode_u32(in, count, out);
  if (used == kVarintMalformed)
    fail(std::string("snapshot: malformed varint in ") + stream + " stream");
  if (used != in.size())
    fail(std::string("snapshot: trailing bytes in ") + stream + " stream");
}

}  // namespace

void append_varint(std::vector<std::uint8_t>& out, std::uint32_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

void save_snapshot_with_aux(const Graph& graph, const std::string& path,
                            const SnapshotOptions& options,
                            std::span<const std::uint8_t> aux) {
  if (options.block_vertices == 0)
    fail("snapshot: block_vertices must be positive");
  const VertexId n = graph.vertex_count();
  const std::uint64_t slots = graph.directed_edge_count();
  const std::uint32_t bv = options.block_vertices;
  const std::uint32_t nblocks = block_count_for(n, bv);

  // Encode every block payload; record the index as we go.
  std::vector<std::uint8_t> payloads;
  std::vector<std::uint8_t> index;
  payloads.reserve(slots + n);  // 1-byte varints are the common case
  std::vector<std::uint8_t> block;
  std::vector<std::uint8_t> degrees, heads, deltas;
  std::uint64_t first_slot = 0;
  const std::uint64_t payload_base =
      kHeaderBytes + static_cast<std::uint64_t>(nblocks) * kIndexEntryBytes + 4;
  for (std::uint32_t b = 0; b < nblocks; ++b) {
    const VertexId v0 = static_cast<VertexId>(std::uint64_t{b} * bv);
    const VertexId v1 = static_cast<VertexId>(
        std::min<std::uint64_t>(n, std::uint64_t{v0} + bv));
    degrees.clear();
    heads.clear();
    deltas.clear();
    std::uint64_t block_slots = 0;
    for (VertexId v = v0; v < v1; ++v) {
      const auto adj = graph.neighbors(v);
      append_varint(degrees, static_cast<std::uint32_t>(adj.size()));
      block_slots += adj.size();
      if (adj.empty()) continue;
      append_varint(heads, adj[0]);
      for (std::size_t i = 1; i < adj.size(); ++i)
        append_varint(deltas, adj[i] - adj[i - 1]);
    }
    // The index and sub-header store u32 byte counts; a block whose
    // encoded payload exceeds that must fail loudly rather than truncate
    // into a file that can never load.
    const std::uint64_t block_bytes = kBlockSubHeaderBytes + degrees.size() +
                                      heads.size() + deltas.size();
    if (block_bytes > std::numeric_limits<std::uint32_t>::max())
      fail("snapshot: block " + std::to_string(b) +
           " payload exceeds 4 GiB; lower block_vertices");
    block.clear();
    put_u32(block, static_cast<std::uint32_t>(degrees.size()));
    put_u32(block, static_cast<std::uint32_t>(heads.size()));
    put_u32(block, static_cast<std::uint32_t>(deltas.size()));
    block.insert(block.end(), degrees.begin(), degrees.end());
    block.insert(block.end(), heads.begin(), heads.end());
    block.insert(block.end(), deltas.begin(), deltas.end());

    put_u64(index, payload_base + payloads.size());
    put_u64(index, first_slot);
    put_u32(index, static_cast<std::uint32_t>(block.size()));
    put_u32(index, dist::crc32(block));
    payloads.insert(payloads.end(), block.begin(), block.end());
    first_slot += block_slots;
  }
  put_u32(index, dist::crc32(index));  // index CRC covers all entries

  const std::uint64_t aux_offset =
      aux.empty() ? 0 : payload_base + payloads.size();

  std::uint32_t flags = 0;
  if (options.degree_ordered) flags |= kFlagDegreeOrdered;
  std::uint64_t triangles = 0;
  if (graph.has_cached_triangle_count()) {
    flags |= kFlagHasTriangles;
    triangles = graph.triangle_count();
  }
  if (!aux.empty()) flags |= kFlagHasAux;

  std::vector<std::uint8_t> header(4);
  header.reserve(kHeaderBytes);
  std::memcpy(header.data(), kMagic, 4);
  put_u32(header, kVersion);
  put_u32(header, flags);
  put_u32(header, n);
  put_u64(header, slots);
  put_u32(header, bv);
  put_u32(header, nblocks);
  put_u64(header, triangles);
  put_u64(header, aux_offset);
  put_u32(header, static_cast<std::uint32_t>(aux.size()));
  put_u32(header, dist::crc32(header));  // covers bytes [0, 52)

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail("snapshot: cannot open for writing: " + path);
  auto write_all = [&out](std::span<const std::uint8_t> bytes) {
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  };
  write_all(header);
  write_all(index);
  write_all(payloads);
  std::uint64_t total = header.size() + index.size() + payloads.size();
  if (!aux.empty()) {
    write_all(aux);
    std::vector<std::uint8_t> aux_crc;
    put_u32(aux_crc, dist::crc32(aux));
    write_all(aux_crc);
    total += aux.size() + 4;
  }
  out.flush();
  if (!out) fail("snapshot: write failed: " + path);

  metrics::metric_counter("io.snapshot.saves").inc();
  metrics::metric_counter("io.snapshot.bytes_written").inc(total);
}

void save_snapshot(const Graph& graph, const std::string& path,
                   const SnapshotOptions& options) {
  save_snapshot_with_aux(graph, path, options, {});
}

// ---------------------------------------------------------------------------
// Mapped reader.
// ---------------------------------------------------------------------------

MappedSnapshot::MappedSnapshot(const std::string& path) : path_(path) {
  open_and_validate(path);
}

MappedSnapshot::~MappedSnapshot() { unmap(); }

MappedSnapshot::MappedSnapshot(MappedSnapshot&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mmapped_(std::exchange(other.mmapped_, false)),
      fallback_(std::move(other.fallback_)),
      info_(other.info_),
      index_(std::move(other.index_)),
      aux_(std::exchange(other.aux_, {})),
      path_(std::move(other.path_)) {}

MappedSnapshot& MappedSnapshot::operator=(MappedSnapshot&& other) noexcept {
  if (this != &other) {
    unmap();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mmapped_ = std::exchange(other.mmapped_, false);
    fallback_ = std::move(other.fallback_);
    info_ = other.info_;
    index_ = std::move(other.index_);
    aux_ = std::exchange(other.aux_, {});
    path_ = std::move(other.path_);
  }
  return *this;
}

void MappedSnapshot::unmap() noexcept {
#if GRAPHPI_SNAPSHOT_HAS_MMAP
  if (mmapped_ && data_ != nullptr)
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
#endif
  data_ = nullptr;
  size_ = 0;
  mmapped_ = false;
}

void MappedSnapshot::open_and_validate(const std::string& path) {
#if GRAPHPI_SNAPSHOT_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("snapshot: cannot open: " + path);
  struct ::stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    fail("snapshot: cannot stat: " + path);
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
  if (size_ > 0) {
    void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      ::close(fd);
      fail("snapshot: mmap failed: " + path);
    }
    data_ = static_cast<const std::uint8_t*>(map);
    mmapped_ = true;
  }
  ::close(fd);
#else
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) fail("snapshot: cannot open: " + path);
  const std::streamsize len = in.tellg();
  in.seekg(0);
  fallback_.resize(static_cast<std::size_t>(len));
  in.read(reinterpret_cast<char*>(fallback_.data()), len);
  if (!in) fail("snapshot: short read: " + path);
  data_ = fallback_.data();
  size_ = fallback_.size();
#endif

  metrics::metric_counter("io.snapshot.opens").inc();
  metrics::metric_counter("io.snapshot.bytes_mapped").inc(size_);

  // --- Header ---------------------------------------------------------------
  if (size_ < kHeaderBytes) fail("snapshot: file shorter than header");
  if (std::memcmp(data_, kMagic, 4) != 0)
    fail("snapshot: bad magic (not a GPS1 snapshot)");
  if (get_u32(data_ + 52) != dist::crc32({data_, 52})) {
    metrics::metric_counter("io.snapshot.crc_rejects").inc();
    fail("snapshot: header CRC mismatch");
  }
  const std::uint32_t version = get_u32(data_ + 4);
  if (version != kVersion)
    fail("snapshot: unsupported version " + std::to_string(version));
  const std::uint32_t flags = get_u32(data_ + 8);
  if ((flags & ~kKnownFlags) != 0) fail("snapshot: unknown flag bits set");
  info_.version = version;
  info_.vertex_count = get_u32(data_ + 12);
  info_.slot_count = get_u64(data_ + 16);
  info_.block_vertices = get_u32(data_ + 24);
  info_.block_count = get_u32(data_ + 28);
  info_.degree_ordered = (flags & kFlagDegreeOrdered) != 0;
  info_.has_triangles = (flags & kFlagHasTriangles) != 0;
  info_.triangle_count = get_u64(data_ + 32);
  const std::uint64_t aux_offset = get_u64(data_ + 40);
  const std::uint32_t aux_bytes = get_u32(data_ + 48);
  info_.file_bytes = size_;

  if (info_.block_vertices == 0) fail("snapshot: zero block_vertices");
  if (info_.block_count !=
      block_count_for(info_.vertex_count, info_.block_vertices))
    fail("snapshot: block count disagrees with vertex count");

  // --- Block index ----------------------------------------------------------
  const std::uint64_t index_bytes =
      std::uint64_t{info_.block_count} * kIndexEntryBytes;
  const std::uint64_t payload_base = kHeaderBytes + index_bytes + 4;
  if (size_ < payload_base) fail("snapshot: truncated block index");
  const std::uint8_t* idx = data_ + kHeaderBytes;
  if (get_u32(idx + index_bytes) != dist::crc32({idx, index_bytes})) {
    metrics::metric_counter("io.snapshot.crc_rejects").inc();
    fail("snapshot: block index CRC mismatch");
  }
  index_.resize(info_.block_count);
  std::uint64_t expected_slot = 0;
  std::uint64_t payload_total = 0;
  for (std::uint32_t b = 0; b < info_.block_count; ++b) {
    const std::uint8_t* e = idx + std::uint64_t{b} * kIndexEntryBytes;
    BlockEntry& entry = index_[b];
    entry.offset = get_u64(e);
    entry.first_slot = get_u64(e + 8);
    entry.bytes = get_u32(e + 16);
    entry.crc = get_u32(e + 20);
    if (entry.offset < payload_base || entry.bytes < kBlockSubHeaderBytes ||
        entry.offset + entry.bytes > size_ ||
        entry.offset + entry.bytes < entry.offset)
      fail("snapshot: block " + std::to_string(b) + " outside the file");
    if (entry.first_slot != expected_slot)
      fail("snapshot: block " + std::to_string(b) + " slot offset mismatch");
    // The per-block slot total is only known after decoding, so advance
    // by the next block's first_slot (slot_count for the final block).
    // Every boundary must stay monotonic and within the header's slot
    // budget: decode_block_into writes block_slots(b) entries at
    // neighbors + first_slot, so an index boundary past slot_count would
    // be an out-of-bounds write even with valid CRCs.
    const std::uint64_t block_end =
        (b + 1 < info_.block_count)
            ? get_u64(idx + std::uint64_t{b + 1} * kIndexEntryBytes + 8)
            : info_.slot_count;
    if (block_end < entry.first_slot || block_end > info_.slot_count)
      fail("snapshot: block " + std::to_string(b) +
           " slot range outside the header's slot count");
    expected_slot = block_end;
    payload_total += entry.bytes;
  }
  info_.payload_bytes = payload_total;
  if (info_.block_count == 0 && info_.slot_count != 0)
    fail("snapshot: nonzero slots with no blocks");

  // --- Aux section ----------------------------------------------------------
  if ((flags & kFlagHasAux) != 0) {
    // Subtraction form: `aux_offset + aux_bytes + 4` could wrap u64 and
    // defeat the bound for attacker-chosen offsets near 2^64.
    if (aux_offset < payload_base || aux_offset > size_ || aux_bytes == 0 ||
        size_ - aux_offset < std::uint64_t{aux_bytes} + 4)
      fail("snapshot: aux section outside the file");
    aux_ = {data_ + aux_offset, aux_bytes};
    if (get_u32(data_ + aux_offset + aux_bytes) != dist::crc32(aux_)) {
      metrics::metric_counter("io.snapshot.crc_rejects").inc();
      fail("snapshot: aux section CRC mismatch");
    }
  } else if (aux_offset != 0 || aux_bytes != 0) {
    fail("snapshot: aux fields set without the aux flag");
  }
}

VertexId MappedSnapshot::block_vertex_count(std::uint32_t b) const noexcept {
  const std::uint64_t v0 = std::uint64_t{b} * info_.block_vertices;
  const std::uint64_t v1 =
      std::min<std::uint64_t>(info_.vertex_count, v0 + info_.block_vertices);
  return static_cast<VertexId>(v1 - v0);
}

std::uint64_t MappedSnapshot::block_first_slot(std::uint32_t b) const noexcept {
  return index_[b].first_slot;
}

std::uint64_t MappedSnapshot::block_slots(std::uint32_t b) const noexcept {
  const std::uint64_t next = (b + 1 < info_.block_count)
                                 ? index_[b + 1].first_slot
                                 : info_.slot_count;
  return next - index_[b].first_slot;
}

std::span<const std::uint8_t> MappedSnapshot::payload(
    const BlockEntry& e) const noexcept {
  return {data_ + e.offset, e.bytes};
}

void MappedSnapshot::decode_block_into(
    std::uint32_t b, std::uint32_t* degrees_out, VertexId* neighbors_out,
    std::vector<std::uint32_t>& scratch) const {
  if (b >= info_.block_count) fail("snapshot: block id out of range");
  const BlockEntry& entry = index_[b];
  const auto bytes = payload(entry);
  if (dist::crc32(bytes) != entry.crc) {
    metrics::metric_counter("io.snapshot.crc_rejects").inc();
    fail("snapshot: block " + std::to_string(b) + " payload CRC mismatch");
  }

  const std::uint64_t degrees_bytes = get_u32(bytes.data());
  const std::uint64_t heads_bytes = get_u32(bytes.data() + 4);
  const std::uint64_t deltas_bytes = get_u32(bytes.data() + 8);
  if (kBlockSubHeaderBytes + degrees_bytes + heads_bytes + deltas_bytes !=
      bytes.size())
    fail("snapshot: block " + std::to_string(b) + " stream sizes disagree");
  const std::uint8_t* p = bytes.data() + kBlockSubHeaderBytes;

  const VertexId nv = block_vertex_count(b);
  const std::uint64_t slots = block_slots(b);
  decode_exact({p, degrees_bytes}, nv, degrees_out, "degree");
  p += degrees_bytes;

  std::uint64_t degree_sum = 0;
  std::size_t nonempty = 0;
  for (VertexId i = 0; i < nv; ++i) {
    degree_sum += degrees_out[i];
    nonempty += degrees_out[i] != 0;
  }
  if (degree_sum != slots)
    fail("snapshot: block " + std::to_string(b) +
         " degree sum disagrees with the index");
  if (slots < nonempty)  // each non-empty row stores >= 1 neighbor
    fail("snapshot: block " + std::to_string(b) + " impossible row shape");

  scratch.resize(nonempty + (slots - nonempty));
  std::uint32_t* heads = scratch.data();
  std::uint32_t* deltas = scratch.data() + nonempty;
  decode_exact({p, heads_bytes}, nonempty, heads, "head");
  p += heads_bytes;
  decode_exact({p, deltas_bytes}, slots - nonempty, deltas, "delta");

  // Reconstruct rows; every id must stay < n and strictly ascend.
  const std::uint64_t n = info_.vertex_count;
  std::size_t head_i = 0;
  std::size_t delta_i = 0;
  VertexId* out = neighbors_out;
  for (VertexId i = 0; i < nv; ++i) {
    const std::uint32_t deg = degrees_out[i];
    if (deg == 0) continue;
    std::uint64_t cur = heads[head_i++];
    if (cur >= n)
      fail("snapshot: block " + std::to_string(b) + " neighbor out of range");
    *out++ = static_cast<VertexId>(cur);
    for (std::uint32_t k = 1; k < deg; ++k) {
      const std::uint32_t d = deltas[delta_i++];
      if (d == 0)
        fail("snapshot: block " + std::to_string(b) + " zero delta");
      cur += d;  // u64 accumulate: cannot wrap for u32 inputs
      if (cur >= n)
        fail("snapshot: block " + std::to_string(b) +
             " neighbor out of range");
      *out++ = static_cast<VertexId>(cur);
    }
  }
  metrics::metric_counter("io.snapshot.blocks_decoded").inc();
}

void MappedSnapshot::decode_block(std::uint32_t b, DecodedBlock& out) const {
  if (b >= info_.block_count) fail("snapshot: block id out of range");
  out.first_vertex = block_first_vertex(b);
  out.degrees.resize(block_vertex_count(b));
  out.neighbors.resize(block_slots(b));
  decode_block_into(b, out.degrees.data(), out.neighbors.data(), out.scratch);
}

Graph MappedSnapshot::decode_graph() const {
  const double t0 = now_ms();
  const VertexId n = info_.vertex_count;
  std::vector<std::uint32_t> degrees(n);
  std::vector<VertexId> neighbors(info_.slot_count);

  // Blocks are independent (the index carries each block's first slot),
  // so the decode fans out; exceptions cannot cross the parallel region,
  // so the first one is captured and rethrown after the join.
  std::exception_ptr error = nullptr;
  std::mutex error_mu;
  const auto nblocks = static_cast<std::int64_t>(info_.block_count);
#pragma omp parallel
  {
    std::vector<std::uint32_t> scratch;
#pragma omp for schedule(dynamic, 1)
    for (std::int64_t b = 0; b < nblocks; ++b) {
      try {
        const auto bb = static_cast<std::uint32_t>(b);
        decode_block_into(bb, degrees.data() + block_first_vertex(bb),
                          neighbors.data() + index_[bb].first_slot, scratch);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
      }
    }
  }
  if (error) std::rethrow_exception(error);

  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + degrees[v];
  if (offsets.back() != info_.slot_count)
    fail("snapshot: decoded slots disagree with the header");

  Graph graph(std::move(offsets), std::move(neighbors));
  if (info_.has_triangles) graph.set_triangle_count(info_.triangle_count);

  metrics::metric_counter("io.snapshot.loads").inc();
  if (metrics::enabled())
    metrics::metric_histogram("io.snapshot.decode_ms").observe(now_ms() - t0);
  return graph;
}

Graph load_snapshot(const std::string& path) {
  const double t0 = now_ms();
  const MappedSnapshot snap(path);
  Graph graph = snap.decode_graph();
  if (metrics::enabled())
    metrics::metric_histogram("io.snapshot.load_ms").observe(now_ms() - t0);
  return graph;
}

}  // namespace graphpi::io

namespace graphpi {

void Graph::save_snapshot(const std::string& path) const {
  io::save_snapshot(*this, path);
}

Graph Graph::load_snapshot(const std::string& path) {
  return io::load_snapshot(path);
}

}  // namespace graphpi
