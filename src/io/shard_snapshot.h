// Per-shard snapshot files for the distributed runtime.
//
// A ShardedGraph's whole point is that no node holds the entire graph —
// so its snapshot form must not either. save_shard_snapshots writes one
// GPS1 file per node ("<prefix>.shard<k>-of-<n>.gps"), each containing
// only that shard's resident rows (owned + ghost halo, in global id
// space) plus an aux section with the shard metadata: node/nodes,
// partition strategy, and the delta-varint owned and resident id lists.
// A node therefore mmaps only its own partition + halo at startup.
//
// load_shard_snapshots reassembles the full ShardedGraph (owner map,
// stats, checked Shard parts) from the per-node files without ever
// materializing the parent Graph; the result is drop-in for
// distributed_count / DistRuntime, and counts are bit-identical to a
// sharding built in memory from the same graph.
#pragma once

#include <string>
#include <vector>

#include "dist/shard.h"
#include "io/snapshot.h"

namespace graphpi::io {

/// File name of one shard's snapshot: "<prefix>.shard<k>-of-<n>.gps".
[[nodiscard]] std::string shard_snapshot_path(const std::string& prefix,
                                              int node, int nodes);

/// Writes one snapshot file per shard (see shard_snapshot_path) and
/// returns the paths in node order. Throws SnapshotError on failure.
std::vector<std::string> save_shard_snapshots(
    const dist::ShardedGraph& sharded, const std::string& prefix,
    const SnapshotOptions& options = {});

/// Locates "<prefix>.shard<k>-of-<n>.gps" files, validates the set is
/// complete and consistent, and reassembles the ShardedGraph. The
/// result has_parent() == false — consumers must use vertex_count().
[[nodiscard]] dist::ShardedGraph load_shard_snapshots(
    const std::string& prefix);

}  // namespace graphpi::io
