#include "io/shard_snapshot.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <utility>

#include "graph/vertex_set.h"
#include "support/metrics.h"

namespace graphpi::io {
namespace {

namespace metrics = support::metrics;

// Aux section layout (after the snapshot's own framing; LE):
//   "SHRD" | u32 aux_version | u32 node | u32 nodes | u32 strategy
//   | u32 owned_count | u32 resident_count
//   | delta-varint owned list | delta-varint resident list
// Lists store the first id absolutely, then gaps (>= 1).
constexpr char kShardMagic[4] = {'S', 'H', 'R', 'D'};
constexpr std::uint32_t kShardAuxVersion = 1;
constexpr std::size_t kShardAuxHeaderBytes = 4 + 6 * 4;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto off = out.size();
  out.resize(off + 4);
  std::memcpy(out.data() + off, &v, 4);
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

[[noreturn]] void fail(const std::string& what) { throw SnapshotError(what); }

void append_id_list(std::vector<std::uint8_t>& out,
                    std::span<const VertexId> ids) {
  for (std::size_t i = 0; i < ids.size(); ++i)
    append_varint(out, i == 0 ? ids[0] : ids[i] - ids[i - 1]);
}

/// Decodes a delta-varint id list of `count` entries; returns bytes
/// consumed. Entries must ascend strictly and stay below `n`.
std::size_t decode_id_list(std::span<const std::uint8_t> in, std::size_t count,
                           std::uint64_t n, std::vector<VertexId>& out) {
  out.resize(count);
  std::vector<std::uint32_t> gaps(count);
  const std::size_t used = varint_decode_u32(in, count, gaps.data());
  if (used == kVarintMalformed)
    fail("shard snapshot: malformed varint in an id list");
  std::uint64_t cur = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (i == 0) {
      cur = gaps[0];
    } else {
      if (gaps[i] == 0) fail("shard snapshot: id list not strictly ascending");
      cur += gaps[i];
    }
    if (cur >= n) fail("shard snapshot: id list entry out of range");
    out[i] = static_cast<VertexId>(cur);
  }
  return used;
}

struct ShardAux {
  int node = 0;
  int nodes = 0;
  dist::PartitionStrategy strategy = dist::PartitionStrategy::kHash;
  std::vector<VertexId> owned;
  std::vector<VertexId> residents;
};

std::vector<std::uint8_t> encode_aux(const dist::Shard& shard,
                                     const dist::ShardOptions& options) {
  std::vector<std::uint8_t> aux(4);
  std::memcpy(aux.data(), kShardMagic, 4);
  put_u32(aux, kShardAuxVersion);
  put_u32(aux, static_cast<std::uint32_t>(shard.node()));
  put_u32(aux, static_cast<std::uint32_t>(options.nodes));
  put_u32(aux, static_cast<std::uint32_t>(options.strategy));
  put_u32(aux, shard.owned_count());
  put_u32(aux, shard.resident_count());
  append_id_list(aux, shard.owned());
  std::vector<VertexId> residents(shard.resident_count());
  for (std::uint32_t local = 0; local < shard.resident_count(); ++local)
    residents[local] = shard.global_id(local);
  append_id_list(aux, residents);
  return aux;
}

ShardAux decode_aux(std::span<const std::uint8_t> aux, std::uint64_t n) {
  if (aux.size() < kShardAuxHeaderBytes ||
      std::memcmp(aux.data(), kShardMagic, 4) != 0)
    fail("shard snapshot: missing SHRD aux section "
         "(plain snapshot passed to the shard loader?)");
  if (get_u32(aux.data() + 4) != kShardAuxVersion)
    fail("shard snapshot: unsupported aux version");
  ShardAux out;
  out.node = static_cast<int>(get_u32(aux.data() + 8));
  out.nodes = static_cast<int>(get_u32(aux.data() + 12));
  const std::uint32_t strategy = get_u32(aux.data() + 16);
  if (strategy > static_cast<std::uint32_t>(dist::PartitionStrategy::kRange))
    fail("shard snapshot: unknown partition strategy");
  out.strategy = static_cast<dist::PartitionStrategy>(strategy);
  const std::uint32_t owned_count = get_u32(aux.data() + 20);
  const std::uint32_t resident_count = get_u32(aux.data() + 24);
  if (out.nodes <= 0 || out.node < 0 || out.node >= out.nodes)
    fail("shard snapshot: node id outside the node count");
  if (owned_count > resident_count || resident_count > n)
    fail("shard snapshot: impossible owned/resident counts");

  auto lists = aux.subspan(kShardAuxHeaderBytes);
  const std::size_t owned_bytes =
      decode_id_list(lists, owned_count, n, out.owned);
  const std::size_t resident_bytes = decode_id_list(
      lists.subspan(owned_bytes), resident_count, n, out.residents);
  if (owned_bytes + resident_bytes != lists.size())
    fail("shard snapshot: trailing bytes after the aux id lists");
  return out;
}

}  // namespace

std::string shard_snapshot_path(const std::string& prefix, int node,
                                int nodes) {
  return prefix + ".shard" + std::to_string(node) + "-of-" +
         std::to_string(nodes) + ".gps";
}

std::vector<std::string> save_shard_snapshots(
    const dist::ShardedGraph& sharded, const std::string& prefix,
    const SnapshotOptions& options) {
  std::vector<std::string> paths;
  paths.reserve(static_cast<std::size_t>(sharded.nodes()));
  for (int node = 0; node < sharded.nodes(); ++node) {
    const dist::Shard& shard = sharded.shard(node);
    const std::vector<std::uint8_t> aux = encode_aux(shard, sharded.options());
    std::string path = shard_snapshot_path(prefix, node, sharded.nodes());
    save_snapshot_with_aux(shard.view(), path, options, aux);
    paths.push_back(std::move(path));
  }
  metrics::metric_counter("io.snapshot.shard_saves").inc();
  return paths;
}

dist::ShardedGraph load_shard_snapshots(const std::string& prefix) {
  namespace fs = std::filesystem;

  // Discover the node count from the file names: the set must be exactly
  // "<prefix>.shard<k>-of-<n>.gps" for k in [0, n).
  const fs::path first_probe(shard_snapshot_path(prefix, 0, 1));
  int nodes = -1;
  {
    const fs::path dir = first_probe.parent_path().empty()
                             ? fs::path(".")
                             : first_probe.parent_path();
    const std::string stem = fs::path(prefix).filename().string() + ".shard0-of-";
    std::error_code ec;
    std::vector<int> candidates;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.size() <= stem.size() + 4 || name.rfind(stem, 0) != 0 ||
          name.substr(name.size() - 4) != ".gps")
        continue;
      const std::string count = name.substr(
          stem.size(), name.size() - 4 - stem.size());
      int parsed = 0;
      const auto [end, err] =
          std::from_chars(count.data(), count.data() + count.size(), parsed);
      if (err == std::errc::result_out_of_range)
        fail("shard snapshot: node count overflows in " + name);
      if (err != std::errc{} || end != count.data() + count.size() ||
          parsed <= 0)
        continue;
      candidates.push_back(parsed);
    }
    if (ec) fail("shard snapshot: cannot list " + dir.string());
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    if (candidates.size() > 1) {
      std::string counts;
      for (const int c : candidates)
        counts += (counts.empty() ? "" : ", ") + std::to_string(c);
      fail("shard snapshot: ambiguous prefix " + prefix +
           " matches shard sets of " + counts +
           " nodes; remove the stale set");
    }
    if (!candidates.empty()) nodes = candidates.front();
  }
  if (nodes <= 0)
    fail("shard snapshot: no " + prefix + ".shard0-of-<n>.gps file found");

  dist::ShardOptions options;
  options.nodes = nodes;
  std::vector<dist::Shard> shards;
  shards.reserve(static_cast<std::size_t>(nodes));
  std::vector<int> owner;
  for (int node = 0; node < nodes; ++node) {
    const MappedSnapshot snap(shard_snapshot_path(prefix, node, nodes));
    Graph view = snap.decode_graph();
    ShardAux aux = decode_aux(snap.aux(), snap.info().vertex_count);
    if (aux.node != node || aux.nodes != nodes)
      fail("shard snapshot: file name and aux node ids disagree");
    if (node == 0) {
      options.strategy = aux.strategy;
      owner.assign(view.vertex_count(), -1);
    } else if (aux.strategy != options.strategy ||
               view.vertex_count() != owner.size()) {
      fail("shard snapshot: shards disagree on strategy or vertex count");
    }
    for (VertexId v : aux.owned) {
      if (owner[v] != -1) fail("shard snapshot: vertex owned by two shards");
      owner[v] = node;
    }
    shards.push_back(dist::Shard::from_parts(node, std::move(view),
                                             std::move(aux.owned),
                                             std::move(aux.residents)));
  }
  metrics::metric_counter("io.snapshot.shard_loads").inc();
  // from_parts re-checks that the owned sets partition the vertex space.
  return dist::ShardedGraph::from_parts(options, std::move(owner),
                                        std::move(shards));
}

}  // namespace graphpi::io
