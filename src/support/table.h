// Minimal fixed-width ASCII table printer.
//
// Bench harnesses use this to print the rows/series that correspond to the
// paper's tables and figures in a uniform, diffable format.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace graphpi::support {

/// Accumulates rows of string cells and renders them with column widths
/// sized to the widest cell. Header row is separated by a dashed rule.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends a row; the number of cells should match the header width
  /// (shorter rows are padded with empty cells).
  void add_row(std::vector<std::string> cells) {
    cells.resize(header_.size());
    rows_.push_back(std::move(cells));
  }

  /// Convenience: formats arbitrary streamable values into a row.
  template <typename... Ts>
  void add(const Ts&... vals) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(Ts));
    (cells.push_back(to_cell(vals)), ...);
    add_row(std::move(cells));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
      widths[c] = header_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
      os << "|";
      for (std::size_t c = 0; c < header_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string{};
        os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
           << cell << " |";
      }
      os << '\n';
    };

    print_row(header_);
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c)
      os << std::string(widths[c] + 2, '-') << "|";
    os << '\n';
    for (const auto& row : rows_) print_row(row);
  }

  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_same_v<T, std::string> ||
                  std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      std::ostringstream oss;
      if constexpr (std::is_floating_point_v<T>) {
        oss << std::fixed << std::setprecision(3) << v;
      } else {
        oss << v;
      }
      return oss.str();
    }
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace graphpi::support
