// Process-wide observability registry: named atomic counters, gauges,
// and fixed-bucket latency histograms, shared by every backend (serial
// matcher, forest executor, OpenMP engine, JIT'd kernels, distributed
// runtime) so one snapshot describes a whole process.
//
// Design constraints, in order:
//   1. Hot paths never pay for this. Engines accumulate into their
//      existing per-workspace tallies and FLUSH deltas into registry
//      counters once per run (or per worker), so the steady-state cost
//      of an enabled registry is a handful of relaxed fetch_adds per
//      query — and the *disabled* path is a single relaxed load.
//   2. Handles are stable. `Registry::counter("x")` returns a reference
//      that lives for the process; call sites cache it in a static or a
//      member and increment lock-free forever after.
//   3. Snapshots are values. `Registry::snapshot()` copies everything
//      under the registration mutex; `Snapshot::diff()` subtracts a
//      baseline so tests and services can meter one query.
//
// Export formats: `Snapshot::to_json()` (nested object, embedded by the
// benches and `graphpi_cli --metrics-json`) and
// `Snapshot::to_prometheus()` (text exposition format, for the
// forthcoming service's /metrics endpoint).
//
// `Counter` is deliberately a standalone value type, not a registry
// node: `dist::Channel` embeds arrays of them for its per-kind traffic
// accounting instead of hand-rolling `std::atomic` + fetch_add
// plumbing, and the registry stores the same type behind names.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace graphpi::support::metrics {

// ---------------------------------------------------------------------------
// Global enable switch.
//
// Counters are so cheap (one relaxed fetch_add at flush granularity)
// that they are always on; the switch gates the *timed* instruments —
// histogram observations and trace spans — whose cost includes a clock
// read. Initialized from GRAPHPI_METRICS ("0"/"off" disables) on first
// query.
// ---------------------------------------------------------------------------

[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

// ---------------------------------------------------------------------------
// Instruments.
// ---------------------------------------------------------------------------

/// Monotonic event count. Relaxed increments: totals are exact, but a
/// concurrent reader may observe counters mid-update relative to each
/// other (fine for stats).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written (or high-water) signed level.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t v) noexcept {
    value_.fetch_add(v, std::memory_order_relaxed);
  }
  /// Raise to `v` if `v` is larger (lock-free CAS loop).
  void record_max(std::int64_t v) noexcept;
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram with geometric bucket bounds. Bucket `i`
/// spans (bound(i-1), bound(i)] where bound(i) = kBase * 2^i, so the
/// same shape covers microsecond poll latencies and hour-long runs with
/// bounded relative error; percentile estimates interpolate linearly
/// within the winning bucket. Units are whatever the caller observes —
/// the engine's convention is milliseconds (suffix the metric name
/// `_ms`).
class Histogram {
 public:
  static constexpr int kBucketCount = 44;
  static constexpr double kBase = 1e-3;  // first bound: 0.001 (1 us in ms)

  /// Upper bound of bucket `i`; the last bucket is unbounded.
  [[nodiscard]] static double bucket_bound(int i) noexcept;

  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] std::uint64_t bucket(int i) const noexcept {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount]{};
  std::atomic<std::uint64_t> count_{0};
  // Sum in nano-units (value * 1e6 for ms -> ns) so it can be a plain
  // integer fetch_add; reconstructed as double on read.
  std::atomic<std::uint64_t> sum_nano_{0};
};

// ---------------------------------------------------------------------------
// Snapshots.
// ---------------------------------------------------------------------------

struct HistogramSnapshot {
  std::vector<std::uint64_t> buckets;  // kBucketCount entries
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Percentile estimate, q in [0, 100]. Finds the bucket holding the
  /// rank-q observation and interpolates linearly inside it; returns 0
  /// for an empty histogram.
  [[nodiscard]] double percentile(double q) const noexcept;
  [[nodiscard]] double p50() const noexcept { return percentile(50.0); }
  [[nodiscard]] double p90() const noexcept { return percentile(90.0); }
  [[nodiscard]] double p99() const noexcept { return percentile(99.0); }
};

/// A point-in-time copy of every registered instrument.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// This snapshot minus `baseline`: counters and histogram buckets
  /// subtract (clamped at zero, and names absent from the baseline keep
  /// their full value); gauges keep this snapshot's level.
  [[nodiscard]] Snapshot diff(const Snapshot& baseline) const;

  [[nodiscard]] std::uint64_t counter_or(std::string_view name,
                                         std::uint64_t fallback = 0) const;

  /// {"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,
  /// "sum":..,"p50":..,"p90":..,"p99":..,"buckets":[[bound,count],..]}}}
  /// — buckets with zero count are omitted.
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition format. Metric names are sanitized
  /// (non-alphanumerics -> '_') and prefixed `graphpi_`; histograms
  /// emit cumulative `_bucket{le=...}`, `_sum`, `_count` series.
  [[nodiscard]] std::string to_prometheus() const;
};

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

/// Process-wide name -> instrument table. Lookups take a mutex; the
/// returned references are stable for the process lifetime, so every
/// hot call site looks up once and caches.
class Registry {
 public:
  [[nodiscard]] static Registry& instance();

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes every registered instrument (handles stay valid). For
  /// tests and bench arms that meter a single phase.
  void reset();

 private:
  Registry() = default;
  struct Impl;
  [[nodiscard]] Impl& impl() const;
};

/// Shorthand: `metric_counter("engine.memo.hits").inc(n)`.
[[nodiscard]] inline Counter& metric_counter(std::string_view name) {
  return Registry::instance().counter(name);
}
[[nodiscard]] inline Gauge& metric_gauge(std::string_view name) {
  return Registry::instance().gauge(name);
}
[[nodiscard]] inline Histogram& metric_histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}

}  // namespace graphpi::support::metrics
