// Bounded multi-producer/multi-consumer mailbox for the async runtime.
//
// A deliberately simple mutex + condvar queue: the distributed runtime's
// mailboxes carry at most a few thousand serialized frames per second per
// node, so contention on one lock is negligible next to the walk itself,
// and a simple queue is easy to reason about under ThreadSanitizer. What
// the runtime actually needs from it is specific:
//
//   * try_push that FAILS when the mailbox is at capacity — the sender
//     applies backpressure (stalls, drains its own inbox) instead of
//     blocking inside the channel, which would deadlock a cycle of full
//     mailboxes;
//   * force_push / force_push_front that ignore capacity — protocol
//     traffic (acks, retransmits) and fault-injected reorders must never
//     be refused, or the reliability layer could not drain a full inbox;
//   * a timed, abortable pop_wait so idle workers block instead of
//     spinning, yet still observe an armed ExecControl (deadline/cancel)
//     and a close() within one wait slice;
//   * a high-water mark, because "how full did mailboxes actually get"
//     is the observability half of backpressure (ClusterStats).
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "support/exec_control.h"

namespace graphpi::support {

template <typename T>
class BoundedMpmcQueue {
 public:
  /// `capacity` 0 means unbounded (try_push never refuses).
  explicit BoundedMpmcQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  /// False when the queue is at capacity or closed; the item is untouched
  /// on failure (the caller keeps ownership and applies backpressure).
  [[nodiscard]] bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      if (capacity_ != 0 && q_.size() >= capacity_) return false;
      q_.push_back(std::move(item));
      if (q_.size() > high_water_) high_water_ = q_.size();
    }
    cv_.notify_one();
    return true;
  }

  /// Capacity-ignoring push for traffic that must never be refused
  /// (acks, retransmits). Still refused after close().
  void force_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return;
      q_.push_back(std::move(item));
      if (q_.size() > high_water_) high_water_ = q_.size();
    }
    cv_.notify_one();
  }

  /// Queue-jumping variant (fault-injected reorder delivers "early").
  void force_push_front(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return;
      q_.push_front(std::move(item));
      if (q_.size() > high_water_) high_water_ = q_.size();
    }
    cv_.notify_one();
  }

  [[nodiscard]] bool try_pop(T& out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (q_.empty()) return false;
    out = std::move(q_.front());
    q_.pop_front();
    return true;
  }

  /// Blocks up to `timeout` for an item. Returns false on timeout, on
  /// close with an empty queue, or when `control` (optional) has fired —
  /// the wait is sliced so an armed deadline/cancel is observed within
  /// ~1ms even against a long timeout.
  [[nodiscard]] bool pop_wait(T& out, std::chrono::nanoseconds timeout,
                              const ExecControl* control = nullptr) {
    constexpr auto kSlice = std::chrono::milliseconds(1);
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::unique_lock<std::mutex> lock(mu_);
    while (q_.empty()) {
      if (closed_) return false;
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;
      if (control != nullptr && control->check(0) != RunStatus::kOk)
        return false;
      const auto slice = control != nullptr
                             ? std::min<std::chrono::steady_clock::duration>(
                                   kSlice, deadline - now)
                             : deadline - now;
      cv_.wait_for(lock, slice);
    }
    out = std::move(q_.front());
    q_.pop_front();
    return true;
  }

  /// Blocks up to `timeout` until the queue is non-empty WITHOUT popping
  /// (the caller owns the subsequent pop; with several consumers the item
  /// may be gone by then — callers loop). Same return contract as
  /// pop_wait.
  [[nodiscard]] bool wait_nonempty(std::chrono::nanoseconds timeout,
                                   const ExecControl* control = nullptr) {
    constexpr auto kSlice = std::chrono::milliseconds(1);
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::unique_lock<std::mutex> lock(mu_);
    while (q_.empty()) {
      if (closed_) return false;
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;
      if (control != nullptr && control->check(0) != RunStatus::kOk)
        return false;
      const auto slice = control != nullptr
                             ? std::min<std::chrono::steady_clock::duration>(
                                   kSlice, deadline - now)
                             : deadline - now;
      cv_.wait_for(lock, slice);
    }
    return true;
  }

  /// Wakes every waiter; subsequent pushes are dropped and pops drain
  /// what remains. Used at global termination so blocked workers exit.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Deepest the queue has ever been (backpressure observability).
  [[nodiscard]] std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> q_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace graphpi::support
