// Bounded execution: deadlines, cooperative cancellation, work budgets.
//
// Every backend (Matcher, ForestExecutor, the OpenMP parallel engine,
// the sharded distributed runtime, and generated kernels through the v3
// kernel ABI) polls one ExecControl handle at ROOT-VERTEX granularity:
// between two poll points a backend only ever finishes the root unit it
// is working on, so a run stops within ~2 poll strides of the deadline
// and the partial per-plan sums it has accumulated so far stay
// well-defined. Polls are stride-gated (the stride is rounded up to a
// power of two so the gate is a single mask test) — the hot path pays
// one predictable branch per root, nothing more.
//
// Callers that arm a control should use the RunReport-returning API
// variants: a stopped run reports WHY it stopped (timeout / cancelled /
// budget) and how many root units completed, and returns best-effort
// partial counts (IEP sums are divided without the divisibility check —
// partial inclusion–exclusion sums are generally not divisible by x, so
// partial counts are approximate for IEP plans and exact lower-bound
// accumulations for plain plans).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace graphpi::support {

/// Why a counting run returned.
enum class RunStatus : std::uint8_t {
  kOk = 0,     ///< ran to completion; counts are exact
  kTimeout,    ///< the monotonic deadline passed
  kCancelled,  ///< the caller's cancel flag was observed set
  kBudget,     ///< the root-unit work budget was exhausted
};

[[nodiscard]] const char* to_string(RunStatus status) noexcept;

/// Bumps the matching `exec.{timeouts,cancellations,budget_exhausted}`
/// metrics-registry counter; kOk is a no-op. Each backend calls this
/// exactly once when it finalizes a bounded run's status.
void observe_run_status(RunStatus status) noexcept;

/// Outcome of one bounded counting call.
struct RunReport {
  RunStatus status = RunStatus::kOk;
  /// Root units fully processed before the run returned (root vertices
  /// for the serial/batch/generated/distributed engines; prefix tasks
  /// for count_parallel).
  std::uint64_t completed_roots = 0;

  [[nodiscard]] bool complete() const noexcept {
    return status == RunStatus::kOk;
  }

  /// Chunked batches merge their per-chunk reports: roots add, the first
  /// non-ok status wins (later chunks never run after a stop).
  void merge(const RunReport& other) noexcept {
    completed_roots += other.completed_roots;
    if (status == RunStatus::kOk) status = other.status;
  }
};

/// A handle describing the bounds of one run: an optional monotonic
/// deadline, an optional external cancel flag, and an optional root-unit
/// budget. Immutable while a run polls it; safe to share across the
/// workers of one run (check() only reads).
class ExecControl {
 public:
  using Clock = std::chrono::steady_clock;

  static constexpr std::uint32_t kDefaultPollStride = 64;

  ExecControl() = default;

  /// Arms a deadline `timeout_ms` from now (monotonic clock).
  void arm_deadline_ms(double timeout_ms) noexcept {
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(
                                       timeout_ms));
    has_deadline_ = true;
  }

  /// Cooperative cancel flag; any thread may set it to true at any time.
  void set_cancel_flag(const std::atomic<bool>* flag) noexcept {
    cancel_ = flag;
  }

  /// Stop after ~`roots` completed root units (0 = unlimited). Enforced
  /// at poll points, so the overshoot is bounded by one stride.
  void set_root_budget(std::uint64_t roots) noexcept { budget_ = roots; }

  /// Root units between two full checks; rounded up to a power of two
  /// (0 restores the default). Small strides tighten stop latency, large
  /// strides shrink the (already tiny) polling cost.
  void set_poll_stride(std::uint32_t stride) noexcept {
    if (stride == 0) stride = kDefaultPollStride;
    std::uint32_t p = 1;
    while (p < stride && p < (1u << 30)) p <<= 1;
    stride_ = p;
  }

  [[nodiscard]] bool armed() const noexcept {
    return has_deadline_ || cancel_ != nullptr || budget_ != 0;
  }
  [[nodiscard]] bool has_deadline() const noexcept { return has_deadline_; }
  [[nodiscard]] Clock::time_point deadline() const noexcept {
    return deadline_;
  }
  [[nodiscard]] const std::atomic<bool>* cancel_flag() const noexcept {
    return cancel_;
  }
  [[nodiscard]] std::uint64_t root_budget() const noexcept { return budget_; }
  [[nodiscard]] std::uint32_t poll_stride() const noexcept { return stride_; }
  [[nodiscard]] std::uint64_t poll_mask() const noexcept {
    return stride_ - 1;
  }

  /// The full (clock-reading) check — call it stride-gated. Order:
  /// explicit cancellation beats the deadline beats the budget.
  [[nodiscard]] RunStatus check(std::uint64_t completed_roots) const noexcept {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed))
      return RunStatus::kCancelled;
    if (has_deadline_ && Clock::now() >= deadline_) return RunStatus::kTimeout;
    if (budget_ != 0 && completed_roots >= budget_) return RunStatus::kBudget;
    return RunStatus::kOk;
  }

 private:
  Clock::time_point deadline_{};
  const std::atomic<bool>* cancel_ = nullptr;
  std::uint64_t budget_ = 0;
  std::uint32_t stride_ = kDefaultPollStride;
  bool has_deadline_ = false;
};

/// Per-worker stride gate for serial root loops. A null or unarmed
/// control degenerates to a counter — the loop stays branch-cheap.
class PollGate {
 public:
  explicit PollGate(const ExecControl* control) noexcept
      : control_(control != nullptr && control->armed() ? control : nullptr),
        mask_(control_ != nullptr ? control_->poll_mask() : 0) {}

  /// Call once per completed root unit; the returned status is sticky.
  [[nodiscard]] RunStatus completed_unit() noexcept {
    ++done_;
    if (control_ == nullptr || status_ != RunStatus::kOk) return status_;
    if ((done_ & mask_) != 0) return RunStatus::kOk;
    status_ = control_->check(done_);
    return status_;
  }

  [[nodiscard]] std::uint64_t done() const noexcept { return done_; }
  [[nodiscard]] RunStatus status() const noexcept { return status_; }

 private:
  const ExecControl* control_;
  std::uint64_t mask_;
  std::uint64_t done_ = 0;
  RunStatus status_ = RunStatus::kOk;
};

}  // namespace graphpi::support
