// Ring-buffered query trace spans, exported as Chrome trace-event JSON
// (load the file in chrome://tracing or https://ui.perfetto.dev).
//
// A `Span` is an RAII region: it stamps the monotonic clock on entry,
// and on exit records {name, thread, depth, start, duration} into the
// process's active `TraceBuffer` sink. Spans nest — a thread-local
// depth counter tracks the stack — and are safe from any thread; the
// buffer is a fixed-capacity ring, so a long run keeps the most recent
// `capacity()` spans and reports how many were dropped.
//
// With no active sink (or metrics disabled — support/metrics.h's switch
// gates spans too) a Span is two relaxed atomic loads and dead stores;
// the engine leaves its spans compiled in unconditionally.
// Sinks are installed either per-query (`MatchOptions::trace_sink`,
// scoped to the call by `ScopedSink`) or process-wide by the CLI's
// `--trace-json`.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace graphpi::support::trace {

/// One completed span. `name` must be a string literal (or otherwise
/// outlive the buffer) — spans never allocate.
struct Event {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;  ///< monotonic, since process trace epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;   ///< small sequential id, stable per thread
  std::uint32_t depth = 0; ///< nesting level on its thread, 0 = outermost
};

/// Nanoseconds on the steady clock since the process's first use of the
/// trace layer (small numbers keep the JSON readable).
[[nodiscard]] std::uint64_t monotonic_ns() noexcept;

/// Sequential id of the calling thread (first caller gets 0).
[[nodiscard]] std::uint32_t thread_id() noexcept;

/// Fixed-capacity span ring. Recording takes a mutex — spans are run-
/// and phase-granular (per query, per compile, per dist phase), never
/// per-root, so contention is nil; in exchange drains are exact and the
/// type is trivially TSan-clean.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 4096);
  ~TraceBuffer();
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  void record(const Event& event) noexcept;

  /// The retained events, oldest first. When the ring wrapped, these
  /// are the most recent `capacity()` of `total_recorded()`.
  [[nodiscard]] std::vector<Event> events() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t total_recorded() const noexcept;
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  void clear() noexcept;

  /// {"traceEvents":[{"name":..,"cat":"graphpi","ph":"X","pid":..,
  /// "tid":..,"ts":<us>,"dur":<us>,"args":{"depth":..}},...]}
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  struct Impl;
  Impl* impl_;
  std::size_t capacity_;
};

/// The process-wide active sink (nullptr = tracing off).
[[nodiscard]] TraceBuffer* active_sink() noexcept;
void set_active_sink(TraceBuffer* sink) noexcept;

/// Installs `sink` for a scope and restores the previous sink on exit.
/// A null `sink` leaves the current sink in place (so per-query opt-in
/// composes with a process-wide CLI sink).
class ScopedSink {
 public:
  explicit ScopedSink(TraceBuffer* sink) noexcept;
  ~ScopedSink();
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  TraceBuffer* prev_;
  bool installed_;
};

/// RAII span; see file comment.
class Span {
 public:
  explicit Span(const char* name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceBuffer* sink_;
  const char* name_;
  std::uint64_t start_ns_;
  std::uint32_t depth_;
};

}  // namespace graphpi::support::trace
