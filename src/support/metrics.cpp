#include "support/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>

namespace graphpi::support::metrics {

// ---------------------------------------------------------------------------
// Enable switch.
// ---------------------------------------------------------------------------

namespace {

bool enabled_from_env() {
  const char* env = std::getenv("GRAPHPI_METRICS");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "OFF") == 0 || std::strcmp(env, "false") == 0);
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{enabled_from_env()};
  return flag;
}

}  // namespace

bool enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Gauge.
// ---------------------------------------------------------------------------

void Gauge::record_max(std::int64_t v) noexcept {
  std::int64_t cur = value_.load(std::memory_order_relaxed);
  while (v > cur &&
         !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

double Histogram::bucket_bound(int i) noexcept {
  return kBase * std::ldexp(1.0, i);  // kBase * 2^i
}

void Histogram::observe(double value) noexcept {
  if (!(value >= 0.0)) value = 0.0;  // clamps NaN too
  int idx = 0;
  while (idx < kBucketCount - 1 && value > bucket_bound(idx)) ++idx;
  buckets_[static_cast<std::size_t>(idx)].fetch_add(1,
                                                    std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nano_.fetch_add(static_cast<std::uint64_t>(value * 1e6 + 0.5),
                      std::memory_order_relaxed);
}

double Histogram::sum() const noexcept {
  return static_cast<double>(sum_nano_.load(std::memory_order_relaxed)) * 1e-6;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_nano_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// HistogramSnapshot.
// ---------------------------------------------------------------------------

double HistogramSnapshot::percentile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  // Rank of the target observation, 1-based.
  const double rank = std::max(1.0, q / 100.0 * static_cast<double>(count));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const std::uint64_t next = seen + buckets[i];
    if (static_cast<double>(next) >= rank) {
      const double lo =
          (i == 0) ? 0.0 : Histogram::bucket_bound(static_cast<int>(i) - 1);
      double hi = Histogram::bucket_bound(static_cast<int>(i));
      if (i + 1 == buckets.size()) hi = lo;  // unbounded tail: report bound
      const double frac = (rank - static_cast<double>(seen)) /
                          static_cast<double>(buckets[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen = next;
  }
  return Histogram::bucket_bound(Histogram::kBucketCount - 1);
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mu;
  // deques: stable addresses under growth, no per-node allocation churn.
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::map<std::string, Counter*> counter_by_name;
  std::map<std::string, Gauge*> gauge_by_name;
  std::map<std::string, Histogram*> histogram_by_name;
};

Registry& Registry::instance() {
  static Registry reg;
  return reg;
}

Registry::Impl& Registry::impl() const {
  static Impl impl;
  return impl;
}

Counter& Registry::counter(std::string_view name) {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.counter_by_name.find(std::string(name));
  if (it != im.counter_by_name.end()) return *it->second;
  im.counters.emplace_back();
  Counter* c = &im.counters.back();
  im.counter_by_name.emplace(std::string(name), c);
  return *c;
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.gauge_by_name.find(std::string(name));
  if (it != im.gauge_by_name.end()) return *it->second;
  im.gauges.emplace_back();
  Gauge* g = &im.gauges.back();
  im.gauge_by_name.emplace(std::string(name), g);
  return *g;
}

Histogram& Registry::histogram(std::string_view name) {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.histogram_by_name.find(std::string(name));
  if (it != im.histogram_by_name.end()) return *it->second;
  im.histograms.emplace_back();
  Histogram* h = &im.histograms.back();
  im.histogram_by_name.emplace(std::string(name), h);
  return *h;
}

Snapshot Registry::snapshot() const {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  Snapshot snap;
  for (const auto& [name, c] : im.counter_by_name)
    snap.counters.emplace(name, c->value());
  for (const auto& [name, g] : im.gauge_by_name)
    snap.gauges.emplace(name, g->value());
  for (const auto& [name, h] : im.histogram_by_name) {
    HistogramSnapshot hs;
    hs.buckets.resize(Histogram::kBucketCount);
    for (int i = 0; i < Histogram::kBucketCount; ++i)
      hs.buckets[static_cast<std::size_t>(i)] = h->bucket(i);
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms.emplace(name, std::move(hs));
  }
  return snap;
}

void Registry::reset() {
  Impl& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  for (auto& c : im.counters) c.reset();
  for (auto& g : im.gauges) g.reset();
  for (auto& h : im.histograms) h.reset();
}

// ---------------------------------------------------------------------------
// Snapshot arithmetic + export.
// ---------------------------------------------------------------------------

Snapshot Snapshot::diff(const Snapshot& baseline) const {
  Snapshot out;
  for (const auto& [name, v] : counters) {
    auto it = baseline.counters.find(name);
    const std::uint64_t base = it == baseline.counters.end() ? 0 : it->second;
    out.counters.emplace(name, v >= base ? v - base : 0);
  }
  out.gauges = gauges;
  for (const auto& [name, h] : histograms) {
    HistogramSnapshot hs = h;
    auto it = baseline.histograms.find(name);
    if (it != baseline.histograms.end()) {
      const HistogramSnapshot& base = it->second;
      for (std::size_t i = 0;
           i < hs.buckets.size() && i < base.buckets.size(); ++i) {
        hs.buckets[i] =
            hs.buckets[i] >= base.buckets[i] ? hs.buckets[i] - base.buckets[i]
                                             : 0;
      }
      hs.count = hs.count >= base.count ? hs.count - base.count : 0;
      hs.sum = hs.sum >= base.sum ? hs.sum - base.sum : 0.0;
    }
    out.histograms.emplace(name, std::move(hs));
  }
  return out;
}

std::uint64_t Snapshot::counter_or(std::string_view name,
                                   std::uint64_t fallback) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? fallback : it->second;
}

namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

std::string prom_name(const std::string& name) {
  std::string out = "graphpi_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string Snapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    out += std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    out += std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    append_double(out, h.sum);
    out += ",\"p50\":";
    append_double(out, h.p50());
    out += ",\"p90\":";
    append_double(out, h.p90());
    out += ",\"p99\":";
    append_double(out, h.p99());
    out += ",\"buckets\":[";
    bool bfirst = true;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      if (!bfirst) out += ',';
      bfirst = false;
      out += '[';
      append_double(out, Histogram::bucket_bound(static_cast<int>(i)));
      out += ',';
      out += std::to_string(h.buckets[i]);
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string Snapshot::to_prometheus() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : gauges) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cum += h.buckets[i];
      if (h.buckets[i] == 0 && i + 1 != h.buckets.size()) continue;
      out += p + "_bucket{le=\"";
      if (i + 1 == h.buckets.size()) {
        out += "+Inf";
      } else {
        append_double(out, Histogram::bucket_bound(static_cast<int>(i)));
      }
      out += "\"} " + std::to_string(cum) + "\n";
    }
    out += p + "_sum ";
    append_double(out, h.sum);
    out += "\n" + p + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

}  // namespace graphpi::support::metrics
