#include "support/exec_control.h"

#include "support/metrics.h"

namespace graphpi::support {

void observe_run_status(RunStatus status) noexcept {
  using metrics::metric_counter;
  switch (status) {
    case RunStatus::kOk:
      return;
    case RunStatus::kTimeout: {
      static metrics::Counter& c = metric_counter("exec.timeouts");
      c.inc();
      return;
    }
    case RunStatus::kCancelled: {
      static metrics::Counter& c = metric_counter("exec.cancellations");
      c.inc();
      return;
    }
    case RunStatus::kBudget: {
      static metrics::Counter& c = metric_counter("exec.budget_exhausted");
      c.inc();
      return;
    }
  }
}

const char* to_string(RunStatus status) noexcept {
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kTimeout:
      return "timeout";
    case RunStatus::kCancelled:
      return "cancelled";
    case RunStatus::kBudget:
      return "budget";
  }
  return "unknown";
}

}  // namespace graphpi::support
