#include "support/exec_control.h"

namespace graphpi::support {

const char* to_string(RunStatus status) noexcept {
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kTimeout:
      return "timeout";
    case RunStatus::kCancelled:
      return "cancelled";
    case RunStatus::kBudget:
      return "budget";
  }
  return "unknown";
}

}  // namespace graphpi::support
