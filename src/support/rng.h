// Deterministic pseudo-random number generation for GraphPi.
//
// Every stochastic component of the library (graph generators, dataset
// stand-ins, property tests) draws randomness through these generators so
// that runs are bit-reproducible across machines given the same seed.
//
// Two generators are provided:
//   * SplitMix64 — tiny, used for seeding and cheap hashing.
//   * Xoshiro256StarStar — the workhorse generator (Blackman & Vigna),
//     satisfies UniformRandomBitGenerator so it composes with <random>.
#pragma once

#include <cstdint>
#include <limits>

namespace graphpi::support {

/// SplitMix64: a 64-bit mixer commonly used to expand a single seed into a
/// stream of well-distributed values. Passes BigCrush when used as a PRNG.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator with 256-bit state.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256StarStar(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method; unbiased for all bounds.
  constexpr std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // Rejection sampling on the top of the range to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    // 53 high-quality bits -> double mantissa.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace graphpi::support
