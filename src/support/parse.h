// Strict command-line / wire numeric parsing.
//
// One helper replacing the atoi/atof habit in the tools: std::from_chars
// over the WHOLE token, so "12x", "", " 7", "1e999" and similar come
// back as std::nullopt instead of silently truncating to a plausible
// number. Callers turn nullopt into a structured usage error; nothing
// here throws.
#pragma once

#include <charconv>
#include <optional>
#include <string_view>

namespace graphpi::support {

/// Parses all of `text` as a T (any integral or floating-point type
/// std::from_chars supports). Leading '+', whitespace, or trailing
/// garbage make it fail — exactly the inputs atoi would mis-read.
template <typename T>
[[nodiscard]] std::optional<T> parse_number(std::string_view text) {
  T value{};
  const char* const first = text.data();
  const char* const last = text.data() + text.size();
  const auto [end, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || end != last) return std::nullopt;
  return value;
}

}  // namespace graphpi::support
