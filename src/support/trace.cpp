#include "support/trace.h"

#include <chrono>
#include <cstdio>
#include <mutex>

#include "support/metrics.h"

namespace graphpi::support::trace {

// ---------------------------------------------------------------------------
// Clock + thread ids.
// ---------------------------------------------------------------------------

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point trace_epoch() noexcept {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

std::atomic<std::uint32_t> next_thread_id{0};

thread_local std::uint32_t t_thread_id = 0xffffffffu;
thread_local std::uint32_t t_depth = 0;

std::atomic<TraceBuffer*> g_sink{nullptr};

}  // namespace

std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           trace_epoch())
          .count());
}

std::uint32_t thread_id() noexcept {
  if (t_thread_id == 0xffffffffu)
    t_thread_id = next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return t_thread_id;
}

// ---------------------------------------------------------------------------
// TraceBuffer.
// ---------------------------------------------------------------------------

struct TraceBuffer::Impl {
  mutable std::mutex mu;
  std::vector<Event> ring;
  std::uint64_t total = 0;  // events ever recorded; ring slot = total % cap
};

TraceBuffer::TraceBuffer(std::size_t capacity)
    : impl_(new Impl), capacity_(capacity == 0 ? 1 : capacity) {
  impl_->ring.resize(capacity_);
}

TraceBuffer::~TraceBuffer() {
  // Never destroy a buffer that is still the active sink; guard anyway
  // so a misordered teardown drops spans instead of dereferencing us.
  TraceBuffer* expected = this;
  g_sink.compare_exchange_strong(expected, nullptr,
                                 std::memory_order_acq_rel);
  delete impl_;
}

void TraceBuffer::record(const Event& event) noexcept {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->ring[impl_->total % capacity_] = event;
  ++impl_->total;
}

std::vector<Event> TraceBuffer::events() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<Event> out;
  const std::uint64_t total = impl_->total;
  const std::uint64_t kept = total < capacity_ ? total : capacity_;
  out.reserve(kept);
  for (std::uint64_t i = total - kept; i < total; ++i)
    out.push_back(impl_->ring[i % capacity_]);
  return out;
}

std::uint64_t TraceBuffer::total_recorded() const noexcept {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->total;
}

std::uint64_t TraceBuffer::dropped() const noexcept {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->total < capacity_ ? 0 : impl_->total - capacity_;
}

void TraceBuffer::clear() noexcept {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->total = 0;
}

std::string TraceBuffer::to_chrome_json() const {
  const std::vector<Event> evs = events();
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const Event& e : evs) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"graphpi\",\"ph\":\"X\","
                  "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,"
                  "\"args\":{\"depth\":%u}}",
                  e.name == nullptr ? "?" : e.name, e.tid,
                  static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.dur_ns) / 1e3, e.depth);
    out += buf;
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

// ---------------------------------------------------------------------------
// Sink management.
// ---------------------------------------------------------------------------

TraceBuffer* active_sink() noexcept {
  return g_sink.load(std::memory_order_acquire);
}

void set_active_sink(TraceBuffer* sink) noexcept {
  g_sink.store(sink, std::memory_order_release);
}

ScopedSink::ScopedSink(TraceBuffer* sink) noexcept
    : prev_(nullptr), installed_(sink != nullptr) {
  if (installed_) {
    prev_ = g_sink.exchange(sink, std::memory_order_acq_rel);
  }
}

ScopedSink::~ScopedSink() {
  if (installed_) g_sink.store(prev_, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Span.
// ---------------------------------------------------------------------------

Span::Span(const char* name) noexcept
    : sink_(metrics::enabled() ? active_sink() : nullptr),
      name_(name),
      start_ns_(0),
      depth_(0) {
  if (sink_ == nullptr) return;
  depth_ = t_depth++;
  start_ns_ = monotonic_ns();
}

Span::~Span() {
  if (sink_ == nullptr) return;
  const std::uint64_t end = monotonic_ns();
  if (t_depth > 0) --t_depth;
  Event e;
  e.name = name_;
  e.start_ns = start_ns_;
  e.dur_ns = end >= start_ns_ ? end - start_ns_ : 0;
  e.tid = thread_id();
  e.depth = depth_;
  sink_->record(e);
}

}  // namespace graphpi::support::trace
