// Internal invariant checking.
//
// GRAPHPI_CHECK is an always-on assertion used for public-API argument
// validation and for invariants whose violation would silently corrupt
// results (wrong counts are worse than a crash in a mining system).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace graphpi::support {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream oss;
  oss << "GraphPi check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw std::logic_error(oss.str());
}

}  // namespace graphpi::support

#define GRAPHPI_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr))                                                         \
      ::graphpi::support::check_failed(#expr, __FILE__, __LINE__, "");   \
  } while (0)

#define GRAPHPI_CHECK_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr))                                                         \
      ::graphpi::support::check_failed(#expr, __FILE__, __LINE__, msg);  \
  } while (0)
