#include "service/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/pattern_canon.h"
#include "support/timer.h"

namespace graphpi::service {

namespace {

namespace metrics = support::metrics;

void count_metric(const char* name) {
  if (metrics::enabled()) metrics::metric_counter(name).inc();
}

}  // namespace

/// One client connection. Readers, workers, and shutdown all hold
/// shared_ptr references; the fd closes when the last one drops. Writes
/// are serialized by `write_mu` so pipelined responses never interleave
/// bytes; `dead` latches on the first EPIPE/ECONNRESET so later
/// responses for a vanished client are dropped instead of retried.
struct Server::Conn {
  int fd = -1;
  std::mutex write_mu;
  std::atomic<bool> dead{false};

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
};

struct Server::Job {
  std::shared_ptr<Conn> conn;
  Request request;
};

struct Server::PlanEntry {
  Configuration config;
  /// One-plan forest for the distributed backend (which executes
  /// forests, not configurations).
  std::shared_ptr<const PlanForest> forest;
};

Server::Server(const Graph& graph, ServiceConfig config)
    : graph_(&graph),
      config_(std::move(config)),
      // Computes the triangle count once, up front and single-threaded —
      // every query's planning statistics come from this copy.
      stats_model_(GraphStats::of(graph)),
      engine_(std::make_unique<GraphPi>(graph)),
      queue_(config_.queue_capacity) {
  config_.limits.allow_local_backends = true;
  config_.limits.allow_distributed = false;
}

Server::Server(const dist::ShardedGraph& shards, ServiceConfig config)
    : shards_(&shards), config_(std::move(config)),
      queue_(config_.queue_capacity) {
  config_.limits.allow_local_backends = false;
  config_.limits.allow_distributed = true;
  // No parent graph exists: derive exact vertex/edge tallies from the
  // owned shard rows (ownership is a partition, so each directed slot is
  // counted exactly once). The triangle tally would need a full
  // traversal; leave it 0 and let the cost model rank schedules on
  // degree statistics.
  stats_model_.vertices = static_cast<double>(shards.vertex_count());
  std::uint64_t slots = 0;
  for (int node = 0; node < shards.nodes(); ++node) {
    const dist::Shard& s = shards.shard(node);
    for (const VertexId v : s.owned()) slots += s.view().degree(v);
  }
  stats_model_.edges = static_cast<double>(slots) / 2.0;
  stats_model_.triangles = 0.0;
}

Server::~Server() { shutdown(); }

void Server::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind 127.0.0.1:" + std::to_string(config_.port) +
                             ": " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = static_cast<int>(ntohs(bound.sin_port));

  running_.store(true, std::memory_order_release);
  const int workers = std::max(1, config_.workers);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (or fatal): stop accepting
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    n_connections_.fetch_add(1, std::memory_order_relaxed);
    count_metric("service.connections");
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::shutdown(fd, SHUT_RDWR);  // raced shutdown(); Conn dtor closes fd
      continue;
    }
    conns_.push_back(conn);
    readers_.emplace_back([this, conn] { reader_loop(std::move(conn)); });
  }
}

void Server::reader_loop(std::shared_ptr<Conn> conn) {
  std::string buf;
  bool sniffed = false;
  bool http = false;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    if (!sniffed && buf.size() >= 4) {
      sniffed = true;
      http = buf.compare(0, 4, "GET ") == 0;
    }
    if (http) {
      if (const auto eol = buf.find('\n'); eol != std::string::npos) {
        std::string line = buf.substr(0, eol);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        handle_metrics_get(conn, line);
        break;  // one-shot: respond and close
      }
      if (buf.size() > config_.max_line_bytes) break;
      continue;
    }
    std::size_t start = 0;
    bool overflow = false;
    for (;;) {
      const auto eol = buf.find('\n', start);
      if (eol == std::string::npos) break;
      std::string line = buf.substr(start, eol - start);
      start = eol + 1;
      if (line.size() > config_.max_line_bytes) {
        overflow = true;
        break;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) handle_line(conn, std::move(line));
    }
    if (!overflow) {
      buf.erase(0, start);
      overflow = buf.size() > config_.max_line_bytes;
    }
    if (overflow) {
      n_errors_.fetch_add(1, std::memory_order_relaxed);
      count_metric("service.errors");
      write_to(conn, error_response(
                         "", "request line exceeds " +
                                 std::to_string(config_.max_line_bytes) +
                                 " bytes; connection closed"));
      break;
    }
    if (conn->dead.load(std::memory_order_relaxed)) break;
  }
  conn->dead.store(true, std::memory_order_relaxed);
  ::shutdown(conn->fd, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(conns_mu_);
  std::erase(conns_, conn);
}

void Server::handle_line(const std::shared_ptr<Conn>& conn, std::string line) {
  n_requests_.fetch_add(1, std::memory_order_relaxed);
  count_metric("service.requests");
  Request req;
  if (const auto err = parse_request(line, config_.limits, req)) {
    n_errors_.fetch_add(1, std::memory_order_relaxed);
    count_metric("service.errors");
    write_to(conn, error_response(req.id_json, *err));
    return;
  }
  if (req.cmd == "ping") {
    write_to(conn, pong_response(req.id_json));
    return;
  }
  if (draining_.load(std::memory_order_acquire)) {
    n_errors_.fetch_add(1, std::memory_order_relaxed);
    count_metric("service.errors");
    write_to(conn, error_response(req.id_json, "server is draining"));
    return;
  }
  Job job{conn, std::move(req)};
  active_jobs_.fetch_add(1, std::memory_order_acq_rel);
  if (!queue_.try_push(std::move(job))) {
    // try_push leaves the item untouched on failure.
    active_jobs_.fetch_sub(1, std::memory_order_acq_rel);
    n_shed_.fetch_add(1, std::memory_order_relaxed);
    count_metric("service.shed");
    write_to(conn,
             shed_response(job.request.id_json, config_.queue_capacity));
    return;
  }
  if (metrics::enabled())
    metrics::metric_gauge("service.queue_high_water")
        .record_max(static_cast<std::int64_t>(queue_.size()));
}

void Server::worker_loop() {
  Job job;
  for (;;) {
    if (queue_.pop_wait(job, std::chrono::milliseconds(100))) {
      run_job(job);
      job = Job{};  // release the connection reference promptly
      active_jobs_.fetch_sub(1, std::memory_order_acq_rel);
    } else if (stopping_.load(std::memory_order_acquire) && queue_.empty()) {
      break;
    }
  }
}

std::shared_ptr<const Server::PlanEntry> Server::plan_for(
    const Request& request, std::string* error, bool* cache_hit) {
  std::optional<Pattern> pattern;
  try {
    pattern = patterns::parse_spec(request.pattern_spec);
  } catch (const std::exception& e) {
    *error = e.what();
    return nullptr;
  }
  const std::string key =
      canonical_string(*pattern) + (request.use_iep ? "|iep" : "|plain");
  {
    std::lock_guard<std::mutex> lock(plans_mu_);
    if (const auto it = plans_.find(key); it != plans_.end()) {
      *cache_hit = true;
      count_metric("service.plan_cache.hits");
      return it->second;
    }
  }
  // Plan outside the lock: planning a 7-vertex pattern takes long enough
  // that holding plans_mu_ would serialize unrelated queries. Two
  // concurrent misses may both plan; the planner is deterministic, so
  // whichever insertion wins is equivalent.
  auto entry = std::make_shared<PlanEntry>();
  PlannerOptions planner;
  planner.use_iep = request.use_iep;
  entry->config = plan_configuration(*pattern, stats_model_, planner);
  entry->forest = std::make_shared<const PlanForest>(
      std::vector<Plan>{compile_plan(entry->config)});
  *cache_hit = false;
  count_metric("service.plan_cache.misses");
  std::lock_guard<std::mutex> lock(plans_mu_);
  return plans_.emplace(key, std::move(entry)).first->second;
}

void Server::run_job(Job& job) {
  const Request& req = job.request;
  if (req.cmd == "sleep") {
    // Deterministic worker occupancy for queue-full tests; observes the
    // shutdown cancel flag so a drain never waits on a sleeper.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(req.sleep_ms));
    while (std::chrono::steady_clock::now() < deadline &&
           !cancel_.load(std::memory_order_relaxed))
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    n_served_.fetch_add(1, std::memory_order_relaxed);
    count_metric("service.served");
    write_to(job.conn, pong_response(req.id_json));
    return;
  }
  try {
    std::string plan_error;
    bool cache_hit = false;
    const auto entry = plan_for(req, &plan_error, &cache_hit);
    if (entry == nullptr) {
      n_errors_.fetch_add(1, std::memory_order_relaxed);
      count_metric("service.errors");
      write_to(job.conn, error_response(req.id_json, plan_error));
      return;
    }
    support::RunReport report;
    Count count = 0;
    const support::Timer timer;
    if (req.backend == Backend::kDistributed) {
      support::ExecControl control;
      if (req.timeout_ms > 0.0) control.arm_deadline_ms(req.timeout_ms);
      control.set_cancel_flag(&cancel_);
      if (req.work_budget != 0) control.set_root_budget(req.work_budget);
      if (req.poll_stride != 0) control.set_poll_stride(req.poll_stride);
      dist::ClusterOptions copt;
      copt.task_depth = config_.dist_task_depth;
      copt.exec = config_.dist_exec;
      copt.workers_per_node = config_.dist_workers;
      copt.control = &control;
      count = dist::distributed_count_batch(*shards_, *entry->forest, copt,
                                            nullptr, &report)
                  .front();
    } else {
      MatchOptions options;
      options.backend = req.backend;
      options.use_iep = req.use_iep;
      options.threads = req.threads;
      options.timeout_ms = req.timeout_ms;
      options.work_budget = req.work_budget;
      options.poll_stride = req.poll_stride;
      options.cancel = &cancel_;
      count = engine_->count(entry->config, options, &report);
    }
    const double elapsed_ms = timer.elapsed_millis();
    ResultFields fields;
    fields.count = count;
    fields.status = report.status;
    fields.completed_roots = report.completed_roots;
    fields.elapsed_ms = elapsed_ms;
    fields.plan_cached = cache_hit;
    fields.backend = req.backend;
    n_served_.fetch_add(1, std::memory_order_relaxed);
    count_metric("service.served");
    if (metrics::enabled())
      metrics::metric_histogram("service.request_ms").observe(elapsed_ms);
    write_to(job.conn, result_response(req.id_json, fields));
  } catch (const std::exception& e) {
    // Defensive: validation should have rejected anything that throws,
    // but a malformed request must never take the service down.
    n_errors_.fetch_add(1, std::memory_order_relaxed);
    count_metric("service.errors");
    write_to(job.conn, error_response(req.id_json, e.what()));
  }
}

void Server::handle_metrics_get(const std::shared_ptr<Conn>& conn,
                                const std::string& request_line) {
  n_metrics_.fetch_add(1, std::memory_order_relaxed);
  count_metric("service.metrics_requests");
  // "GET <path> HTTP/1.x"
  std::string path;
  const auto sp1 = request_line.find(' ');
  if (sp1 != std::string::npos) {
    const auto sp2 = request_line.find(' ', sp1 + 1);
    path = request_line.substr(
        sp1 + 1, (sp2 == std::string::npos ? request_line.size() : sp2) -
                     sp1 - 1);
  }
  std::string status = "200 OK";
  std::string body;
  if (path == "/metrics") {
    body = GraphPi::metrics_snapshot().to_prometheus();
  } else {
    status = "404 Not Found";
    body = "only /metrics is served here\n";
  }
  std::ostringstream os;
  os << "HTTP/1.0 " << status
     << "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8"
     << "\r\nContent-Length: " << body.size()
     << "\r\nConnection: close\r\n\r\n"
     << body;
  write_to(conn, os.str());
}

void Server::write_to(const std::shared_ptr<Conn>& conn,
                      const std::string& data) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->dead.load(std::memory_order_relaxed)) return;
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(conn->fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      // EPIPE / ECONNRESET: the client vanished mid-response. Latch and
      // drop the rest; nothing here may raise SIGPIPE or throw.
      conn->dead.store(true, std::memory_order_relaxed);
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

void Server::close_all_connections() {
  std::vector<std::shared_ptr<Conn>> open;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    open = conns_;
  }
  for (const auto& conn : open) {
    conn->dead.store(true, std::memory_order_relaxed);
    ::shutdown(conn->fd, SHUT_RDWR);  // unblocks the reader's recv()
  }
}

void Server::shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (!running_.load(std::memory_order_acquire)) return;

  // 1. Refuse new queries (readers answer "server is draining") and stop
  //    accepting connections. shutdown() on the listening socket wakes
  //    the blocked accept() with an error.
  draining_.store(true, std::memory_order_release);
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // 2. Drain: give queued + in-flight queries drain_timeout_ms to finish.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(config_.drain_timeout_ms));
  while (active_jobs_.load(std::memory_order_acquire) > 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // 3. Cancel stragglers cooperatively: every query runs with cancel_ as
  //    its MatchOptions::cancel, so past-deadline work stops at the next
  //    poll and its client still receives a partial-count response.
  cancel_.store(true, std::memory_order_release);
  stopping_.store(true, std::memory_order_release);
  queue_.close();  // workers drain what remains, then exit
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();

  // 4. Responses are all written; now force the readers off their
  //    sockets and join them.
  close_all_connections();
  for (std::thread& r : readers_)
    if (r.joinable()) r.join();
  readers_.clear();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
  running_.store(false, std::memory_order_release);
}

ServerStats Server::stats() const noexcept {
  ServerStats s;
  s.connections = n_connections_.load(std::memory_order_relaxed);
  s.requests = n_requests_.load(std::memory_order_relaxed);
  s.served = n_served_.load(std::memory_order_relaxed);
  s.shed = n_shed_.load(std::memory_order_relaxed);
  s.errors = n_errors_.load(std::memory_order_relaxed);
  s.metrics_requests = n_metrics_.load(std::memory_order_relaxed);
  return s;
}

Graph load_graph(const std::string& spec) {
  constexpr std::string_view kPrefix = "dataset:";
  if (spec.rfind(kPrefix, 0) == 0) {
    std::string rest = spec.substr(kPrefix.size());
    double scale = 0.2;
    if (const auto colon = rest.find(':'); colon != std::string::npos) {
      const std::string digits = rest.substr(colon + 1);
      double parsed = 0.0;
      const auto [end, ec] = std::from_chars(
          digits.data(), digits.data() + digits.size(), parsed);
      if (ec != std::errc() || end != digits.data() + digits.size() ||
          !(parsed > 0.0) || parsed > 100.0)
        throw std::invalid_argument("graph spec '" + spec +
                                    "': SCALE must be a number in (0, 100]");
      scale = parsed;
      rest = rest.substr(0, colon);
    }
    return datasets::load(rest, scale);
  }
  // Sniff the snapshot magic so every graph argument accepts either
  // format.
  if (std::ifstream probe(spec, std::ios::binary); probe) {
    char magic[4] = {};
    if (probe.read(magic, 4) && std::memcmp(magic, "GPS1", 4) == 0)
      return Graph::load_snapshot(spec);
  }
  return load_edge_list(spec);
}

}  // namespace graphpi::service
