// Long-running pattern-matching query service.
//
// A Server binds one loaded data graph (or one reassembled shard set)
// and admits concurrent queries over the newline-delimited JSON
// protocol of protocol.h on a TCP socket. The moving parts:
//
//   * one accept thread + one reader thread per connection: reads
//     length-bounded lines, parses/validates requests, and either
//     answers immediately (parse errors, pings, shed rejections) or
//     enqueues a job;
//   * a bounded MPMC admission queue (support/mpmc_queue.h): when it is
//     full the request is REJECTED IMMEDIATELY with {"status":"shed"}
//     instead of queueing unbounded latency — clients retry with
//     backoff; queue depth is the only buffering in the server;
//   * a fixed worker pool executing queries through the one shared
//     GraphPi engine. Plans are memoized per canonical pattern (the
//     planner is deterministic, so one plan serves every isomorphic
//     respelling); generated-backend kernels are reused across queries
//     by the process-wide jit::KernelCache. Workers never apply
//     MatchOptions::kernels overrides (the dispatch table is process-
//     global); per-query deadlines/budgets ride the engine's
//     ExecControl, and every query additionally observes the server's
//     shutdown cancel flag;
//   * GET /metrics: a connection opening with an HTTP GET line gets a
//     one-shot Prometheus text exposition of the process registry
//     (Snapshot::to_prometheus()) and is closed.
//
// Shutdown (shutdown(), also triggered by the serve tool's SIGTERM/
// SIGINT handler) drains: stop accepting, reject new requests with an
// error, let queued + in-flight queries finish within
// `drain_timeout_ms`, then flip the cancel flag so stragglers return
// their partial counts, and only then tear the threads down. Writes are
// EPIPE-safe throughout (MSG_NOSIGNAL + dead-connection latching);
// clients that vanish mid-response never take the process down.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/graphpi.h"
#include "service/protocol.h"
#include "support/mpmc_queue.h"

namespace graphpi::service {

struct ServiceConfig {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back with Server::port() — the tool prints it on stdout).
  int port = 0;
  /// Query worker threads (>= 1).
  int workers = 2;
  /// Admission queue depth; a request arriving with the queue full is
  /// shed immediately.
  std::size_t queue_capacity = 64;
  /// Longest accepted request line (bytes, newline included). A client
  /// exceeding it gets one error response and its connection closed.
  std::size_t max_line_bytes = std::size_t{1} << 16;
  /// How long shutdown() waits for queued + in-flight queries before
  /// cancelling them cooperatively.
  double drain_timeout_ms = 5000.0;
  /// Per-request validation bounds (protocol.h).
  RequestLimits limits;
  /// Distributed execution shape for shard-serving mode.
  int dist_task_depth = 1;
  dist::ExecMode dist_exec = dist::ExecMode::kLockstep;
  int dist_workers = 1;
};

/// Monotonic service totals (also mirrored into the metrics registry
/// under service.*).
struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  std::uint64_t metrics_requests = 0;
};

class Server {
 public:
  /// Serves `graph` (caller keeps it alive for the server's lifetime)
  /// with the serial / parallel / generated backends.
  Server(const Graph& graph, ServiceConfig config);
  /// Serves a reassembled shard set with the distributed backend only
  /// (no full graph exists in memory). Planning statistics use exact
  /// vertex/edge tallies from the owned shard rows; the triangle count
  /// is unavailable without the parent graph, so plans lean on degree
  /// statistics alone.
  Server(const dist::ShardedGraph& shards, ServiceConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens + spawns the threads. Throws std::runtime_error
  /// when the socket cannot be bound.
  void start();
  /// The bound TCP port (valid after start()).
  [[nodiscard]] int port() const noexcept { return port_; }
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Graceful drain + stop; idempotent, also run by the destructor.
  void shutdown();

  [[nodiscard]] ServerStats stats() const noexcept;

 private:
  struct Conn;
  struct Job;
  struct PlanEntry;

  void accept_loop();
  void reader_loop(std::shared_ptr<Conn> conn);
  void worker_loop();
  void handle_line(const std::shared_ptr<Conn>& conn, std::string line);
  void handle_metrics_get(const std::shared_ptr<Conn>& conn,
                          const std::string& request_line);
  void run_job(Job& job);
  /// Looks up / plans the configuration for a validated request;
  /// `cache_hit` reports whether the plan was memoized. Returns nullptr
  /// and fills `error` when the pattern spec is invalid.
  std::shared_ptr<const PlanEntry> plan_for(const Request& request,
                                            std::string* error,
                                            bool* cache_hit);
  static void write_to(const std::shared_ptr<Conn>& conn,
                       const std::string& data);
  void close_all_connections();

  const Graph* graph_ = nullptr;                   // local mode
  const dist::ShardedGraph* shards_ = nullptr;     // shard mode
  ServiceConfig config_;
  GraphStats stats_model_;
  std::unique_ptr<GraphPi> engine_;  // local mode only

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> cancel_{false};  ///< MatchOptions::cancel of every query
  /// Queries admitted (queued or running) whose response has not been
  /// written yet — the drain condition of shutdown().
  std::atomic<int> active_jobs_{0};
  std::mutex shutdown_mu_;  ///< serializes shutdown() callers

  support::BoundedMpmcQueue<Job> queue_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::vector<std::thread> readers_;

  std::mutex plans_mu_;
  std::unordered_map<std::string, std::shared_ptr<const PlanEntry>> plans_;

  std::atomic<std::uint64_t> n_connections_{0};
  std::atomic<std::uint64_t> n_requests_{0};
  std::atomic<std::uint64_t> n_served_{0};
  std::atomic<std::uint64_t> n_shed_{0};
  std::atomic<std::uint64_t> n_errors_{0};
  std::atomic<std::uint64_t> n_metrics_{0};
};

/// Shared graph-spec loader of the serve tool and CLI: "dataset:NAME
/// [:SCALE]" synthetic stand-ins, GPS1 snapshots (sniffed by magic), or
/// plain edge-list files. SCALE is parsed with std::from_chars and
/// range-checked to (0, 100]; malformed specs throw
/// std::invalid_argument instead of silently defaulting.
[[nodiscard]] Graph load_graph(const std::string& spec);

}  // namespace graphpi::service
