// Wire protocol of the GraphPi query service.
//
// Transport: one TCP connection carries any number of requests, one
// JSON object per '\n'-terminated line; the server answers each request
// with one JSON object on its own line. Responses to pipelined requests
// may interleave out of order — match them by echoing `id`.
//
// Request fields (all optional except `pattern`):
//   {"id": <any scalar, echoed verbatim>,
//    "pattern": "<spec>",            // same syntax as graphpi_cli
//    "backend": "serial|parallel|generated|distributed",
//    "use_iep": true,
//    "timeout_ms": 250.0,            // per-query deadline (0 = none)
//    "work_budget": 100000,          // root-unit budget (0 = unlimited)
//    "threads": 4,                   // parallel/generated worker cap
//    "poll_stride": 64}              // deadline poll granularity
// Admin requests use "cmd" instead of "pattern": {"cmd":"ping"} always
// answers; {"cmd":"sleep","ms":N} occupies a worker for N ms and exists
// for deterministic queue-full testing (rejected unless the server was
// configured with allow_debug_commands).
//
// Response: {"id":..,"status":"ok","count":8324,"elapsed_ms":1.73,
//            "completed_roots":6012,"partial":false,"plan_cached":true,
//            "backend":"serial"}
// status is one of ok | timeout | cancelled | budget (partial results,
// "partial":true) | shed (queue full, request never ran) | error
// (malformed/rejected request; "error" holds the reason). A stopped run
// (timeout/cancelled/budget) still reports its best-effort partial
// count, mirroring MatchOptions/RunReport semantics.
//
// GET /metrics: a connection whose first bytes are an HTTP GET request
// is answered with a one-shot HTTP response — Prometheus text
// exposition of the process metrics registry — and closed (see
// server.cpp). Everything else on the socket is the JSON protocol.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "api/graphpi.h"

namespace graphpi::service {

/// One parsed and validated query (or admin command).
struct Request {
  /// Raw JSON of the client's `id`, echoed verbatim into the response
  /// ("7", "\"q-12\"", ...); empty when the request carried none.
  std::string id_json;
  std::string pattern_spec;  ///< empty for admin commands
  std::string cmd;           ///< "", "ping", or "sleep"
  double sleep_ms = 0.0;
  Backend backend = Backend::kSerial;
  bool use_iep = true;
  double timeout_ms = 0.0;
  std::uint64_t work_budget = 0;
  int threads = 0;
  std::uint32_t poll_stride = 0;
};

/// Per-request validation bounds, configured once per server. Requests
/// beyond these are rejected with a structured error, never clamped
/// silently and never allowed to crash the process.
struct RequestLimits {
  double max_timeout_ms = 3.6e6;  ///< 1 hour
  int max_threads = 256;
  std::uint32_t max_poll_stride = 1u << 20;
  double max_sleep_ms = 60e3;
  bool allow_distributed = false;  ///< true only when serving shards
  bool allow_debug_commands = false;
  /// Backends that need the full in-memory graph (everything but
  /// distributed); false when serving a sharded load.
  bool allow_local_backends = true;
};

/// Parses one request line. Returns std::nullopt on success (with `out`
/// filled), or the rejection reason. `out.id_json` is populated
/// whenever the line parsed far enough to recover an id, so error
/// responses stay correlatable.
[[nodiscard]] std::optional<std::string> parse_request(
    std::string_view line, const RequestLimits& limits, Request& out);

/// Response builders; every returned string is one full line including
/// the trailing '\n'.
[[nodiscard]] std::string error_response(const std::string& id_json,
                                         std::string_view message);
[[nodiscard]] std::string shed_response(const std::string& id_json,
                                        std::size_t queue_capacity);
[[nodiscard]] std::string pong_response(const std::string& id_json);

struct ResultFields {
  Count count = 0;
  support::RunStatus status = support::RunStatus::kOk;
  std::uint64_t completed_roots = 0;
  double elapsed_ms = 0.0;
  bool plan_cached = false;
  Backend backend = Backend::kSerial;
};
[[nodiscard]] std::string result_response(const std::string& id_json,
                                          const ResultFields& fields);

[[nodiscard]] const char* backend_name(Backend backend) noexcept;

}  // namespace graphpi::service
