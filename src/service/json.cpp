#include "service/json.h"

#include <charconv>
#include <cstdio>

namespace graphpi::service::json {

/// Recursive-descent parser over an immutable span of bytes. Every read
/// is bounds-checked against end_; depth_ guards recursion. Namespace
/// scope (not anonymous) so Value's friend declaration matches.
class Parser {
 public:
  Parser(std::string_view text, int max_depth)
      : p_(text.data()), end_(text.data() + text.size()),
        max_depth_(max_depth) {}

  std::optional<Value> run(std::string* error) {
    Value v;
    if (!parse_value(v)) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (p_ != end_) {
      if (error != nullptr) *error = "trailing characters after JSON value";
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(const char* why) {
    error_ = why;
    return false;
  }

  void skip_ws() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r'))
      ++p_;
  }

  [[nodiscard]] bool consume(char c) {
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(const char* word, std::size_t len) {
    if (static_cast<std::size_t>(end_ - p_) < len) return false;
    for (std::size_t i = 0; i < len; ++i)
      if (p_[i] != word[i]) return false;
    p_ += len;
    return true;
  }

  bool parse_value(Value& out) {
    skip_ws();
    if (p_ == end_) return fail("unexpected end of input");
    switch (*p_) {
      case 'n':
        if (!literal("null", 4)) return fail("invalid literal");
        out.type_ = Value::Type::kNull;
        return true;
      case 't':
        if (!literal("true", 4)) return fail("invalid literal");
        out.type_ = Value::Type::kBool;
        out.bool_ = true;
        return true;
      case 'f':
        if (!literal("false", 5)) return fail("invalid literal");
        out.type_ = Value::Type::kBool;
        out.bool_ = false;
        return true;
      case '"':
        out.type_ = Value::Type::kString;
        return parse_string(out.str_);
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      default:
        return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    if (++depth_ > max_depth_) return fail("nesting too deep");
    ++p_;  // '{'
    out.type_ = Value::Type::kObject;
    skip_ws();
    if (consume('}')) {
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (p_ == end_ || *p_ != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      Value member;
      if (!parse_value(member)) return false;
      // First occurrence wins: a duplicated key cannot silently override
      // an already-validated option.
      if (out.get(key) == nullptr)
        out.obj_.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      return fail("expected ',' or '}' in object");
    }
    --depth_;
    return true;
  }

  bool parse_array(Value& out) {
    if (++depth_ > max_depth_) return fail("nesting too deep");
    ++p_;  // '['
    out.type_ = Value::Type::kArray;
    skip_ws();
    if (consume(']')) {
      --depth_;
      return true;
    }
    for (;;) {
      Value item;
      if (!parse_value(item)) return false;
      out.arr_.push_back(std::move(item));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      return fail("expected ',' or ']' in array");
    }
    --depth_;
    return true;
  }

  bool parse_string(std::string& out) {
    ++p_;  // opening quote
    out.clear();
    while (true) {
      if (p_ == end_) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') {
        ++p_;
        return true;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++p_;
        continue;
      }
      ++p_;  // backslash
      if (p_ == end_) return fail("unterminated escape");
      switch (*p_) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          ++p_;
          unsigned code = 0;
          if (!parse_hex4(code)) return false;
          // Surrogate pairs: a high surrogate must be followed by
          // \uDC00-\uDFFF; anything else is malformed.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (end_ - p_ < 2 || p_[0] != '\\' || p_[1] != 'u')
              return fail("unpaired surrogate");
            p_ += 2;
            unsigned low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF)
              return fail("invalid low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, code);
          continue;  // parse_hex4 already advanced p_
        }
        default:
          return fail("invalid escape character");
      }
      ++p_;
    }
  }

  bool parse_hex4(unsigned& out) {
    if (end_ - p_ < 4) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = p_[i];
      unsigned digit;
      if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a') + 10;
      else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A') + 10;
      else return fail("invalid \\u escape");
      out = (out << 4) | digit;
    }
    p_ += 4;
    return true;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool parse_number(Value& out) {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    // Leading digits: JSON forbids bare '.', '+' and leading zeros
    // followed by digits; std::from_chars(double) is stricter than
    // strtod (no hex, no inf/nan) and already rejects most of those,
    // but we pre-scan the shape so "01" and "-" fail loudly.
    const char* digits = p_;
    while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_;
    if (p_ == digits) return fail("invalid number");
    if (*digits == '0' && p_ - digits > 1) return fail("leading zero");
    bool integral = true;
    if (p_ != end_ && *p_ == '.') {
      integral = false;
      ++p_;
      const char* frac = p_;
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_;
      if (p_ == frac) return fail("invalid number");
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      integral = false;
      ++p_;
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      const char* exp = p_;
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_;
      if (p_ == exp) return fail("invalid number");
    }
    out.type_ = Value::Type::kNumber;
    const auto [dp, dec] = std::from_chars(start, p_, out.num_);
    if (dec != std::errc() || dp != p_) return fail("number out of range");
    if (integral) {
      std::int64_t i = 0;
      if (auto [ip, ic] = std::from_chars(start, p_, i);
          ic == std::errc() && ip == p_) {
        out.int_ = i;
        out.has_int_ = true;
        if (i >= 0) {
          out.uint_ = static_cast<std::uint64_t>(i);
          out.has_uint_ = true;
        }
      } else if (*start != '-') {
        std::uint64_t u = 0;
        if (auto [up, uc] = std::from_chars(start, p_, u);
            uc == std::errc() && up == p_) {
          out.uint_ = u;
          out.has_uint_ = true;
        }
      }
    }
    return true;
  }

  const char* p_;
  const char* end_;
  const int max_depth_;
  int depth_ = 0;
  std::string error_;
};

std::optional<Value> Value::parse(std::string_view text, std::string* error,
                                  int max_depth) {
  return Parser(text, max_depth).run(error);
}

const Value* Value::get(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

}  // namespace graphpi::service::json
