// Minimal JSON for the query service (src/service/): a bounds-checked
// recursive-descent parser producing an immutable DOM, plus the string
// escaper the response writers use. No external dependencies — the
// service speaks newline-delimited JSON over a raw socket, and every
// byte it parses arrived from an untrusted client, so the priorities
// are (in order): never read out of bounds, never recurse unboundedly,
// reject trailing garbage, and keep 64-bit integers exact (work budgets
// and counts do not survive a double round-trip).
//
// Deliberately NOT a general-purpose library: no serialization of the
// DOM (responses are assembled directly — see protocol.cpp), no
// comments, no NaN/Infinity extensions, objects keep at most the first
// occurrence of a duplicated key.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace graphpi::service::json {

/// One parsed JSON value. Numbers carry the double value always, plus
/// exact signed/unsigned integer views when the literal was integral
/// and in range (so {"work_budget": 18446744073709551615} survives).
class Value {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kObject,
    kArray,
  };

  /// Parses exactly one JSON document from `text`; anything but trailing
  /// whitespace after the value is an error. Returns std::nullopt and
  /// fills `error` (when non-null) with a human-readable reason on any
  /// malformed input. Nesting beyond `max_depth` is rejected (stack
  /// safety against adversarial [[[[... lines).
  [[nodiscard]] static std::optional<Value> parse(std::string_view text,
                                                  std::string* error = nullptr,
                                                  int max_depth = 32);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }

  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_double() const noexcept { return num_; }
  /// Exact integer views: nullopt when the literal had a fraction or
  /// exponent, was out of range for the requested width, or (for the
  /// unsigned view) was negative.
  [[nodiscard]] std::optional<std::int64_t> as_int64() const noexcept {
    return has_int_ ? std::optional<std::int64_t>(int_) : std::nullopt;
  }
  [[nodiscard]] std::optional<std::uint64_t> as_uint64() const noexcept {
    return has_uint_ ? std::optional<std::uint64_t>(uint_) : std::nullopt;
  }
  [[nodiscard]] const std::string& as_string() const noexcept { return str_; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* get(std::string_view key) const noexcept;
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members()
      const noexcept {
    return obj_;
  }
  [[nodiscard]] const std::vector<Value>& items() const noexcept {
    return arr_;
  }

 private:
  friend class Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  bool has_int_ = false;
  bool has_uint_ = false;
  std::string str_;
  std::vector<std::pair<std::string, Value>> obj_;
  std::vector<Value> arr_;
};

/// JSON string escaping (quotes NOT included): control characters,
/// quote and backslash become escapes; everything else passes through
/// byte-for-byte (UTF-8 stays UTF-8).
[[nodiscard]] std::string escape(std::string_view s);

}  // namespace graphpi::service::json
