#include "service/protocol.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "service/json.h"

namespace graphpi::service {

namespace {

/// Re-serializes a scalar id value for verbatim echo. Objects/arrays as
/// ids are rejected by the caller (bounded response size).
std::string id_to_json(const json::Value& v) {
  switch (v.type()) {
    case json::Value::Type::kNull:
      return "null";
    case json::Value::Type::kBool:
      return v.as_bool() ? "true" : "false";
    case json::Value::Type::kNumber: {
      if (const auto i = v.as_int64()) return std::to_string(*i);
      if (const auto u = v.as_uint64()) return std::to_string(*u);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", v.as_double());
      return buf;
    }
    case json::Value::Type::kString:
      return "\"" + json::escape(v.as_string()) + "\"";
    default:
      return "null";
  }
}

/// Bounded finite double field; rejects NaN/inf/negative/out-of-range.
std::optional<std::string> read_ms(const json::Value& v, const char* name,
                                   double max_value, double& out) {
  if (!v.is_number())
    return std::string(name) + " must be a number";
  const double x = v.as_double();
  if (!std::isfinite(x) || x < 0.0)
    return std::string(name) + " must be a finite non-negative number";
  if (x > max_value)
    return std::string(name) + " exceeds the server limit (" +
           std::to_string(max_value) + ")";
  out = x;
  return std::nullopt;
}

}  // namespace

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kSerial: return "serial";
    case Backend::kParallel: return "parallel";
    case Backend::kGenerated: return "generated";
    case Backend::kDistributed: return "distributed";
  }
  return "unknown";
}

std::optional<std::string> parse_request(std::string_view line,
                                         const RequestLimits& limits,
                                         Request& out) {
  out = Request{};
  std::string parse_error;
  const auto doc = json::Value::parse(line, &parse_error);
  if (!doc.has_value()) return "malformed JSON: " + parse_error;
  if (!doc->is_object()) return "request must be a JSON object";

  if (const json::Value* id = doc->get("id")) {
    if (id->is_object() || id->is_array())
      return "id must be a scalar";
    out.id_json = id_to_json(*id);
  }

  if (const json::Value* cmd = doc->get("cmd")) {
    if (!cmd->is_string()) return "cmd must be a string";
    out.cmd = cmd->as_string();
    if (out.cmd == "ping") return std::nullopt;
    if (out.cmd == "sleep") {
      if (!limits.allow_debug_commands)
        return "debug commands are disabled on this server";
      if (const json::Value* ms = doc->get("ms")) {
        if (const auto err =
                read_ms(*ms, "ms", limits.max_sleep_ms, out.sleep_ms))
          return err;
      }
      return std::nullopt;
    }
    return "unknown cmd: " + out.cmd;
  }

  const json::Value* pattern = doc->get("pattern");
  if (pattern == nullptr) return "missing required field: pattern";
  if (!pattern->is_string()) return "pattern must be a string";
  if (pattern->as_string().empty()) return "pattern must be non-empty";
  out.pattern_spec = pattern->as_string();

  if (const json::Value* backend = doc->get("backend")) {
    if (!backend->is_string()) return "backend must be a string";
    const std::string& b = backend->as_string();
    if (b == "serial") out.backend = Backend::kSerial;
    else if (b == "parallel") out.backend = Backend::kParallel;
    else if (b == "generated") out.backend = Backend::kGenerated;
    else if (b == "distributed") out.backend = Backend::kDistributed;
    else return "unknown backend: " + b;
  }
  if (out.backend == Backend::kDistributed && !limits.allow_distributed)
    return "backend 'distributed' requires a server started with --shards";
  if (out.backend != Backend::kDistributed && !limits.allow_local_backends)
    return "this server serves a sharded graph; use backend 'distributed'";

  if (const json::Value* iep = doc->get("use_iep")) {
    if (!iep->is_bool()) return "use_iep must be a boolean";
    out.use_iep = iep->as_bool();
  }
  if (const json::Value* t = doc->get("timeout_ms")) {
    if (const auto err =
            read_ms(*t, "timeout_ms", limits.max_timeout_ms, out.timeout_ms))
      return err;
  }
  if (const json::Value* b = doc->get("work_budget")) {
    const auto u = b->as_uint64();
    if (!u.has_value())
      return "work_budget must be a non-negative integer";
    out.work_budget = *u;
  }
  if (const json::Value* t = doc->get("threads")) {
    const auto i = t->as_int64();
    if (!i.has_value() || *i < 0)
      return "threads must be a non-negative integer";
    if (*i > limits.max_threads)
      return "threads exceeds the server limit (" +
             std::to_string(limits.max_threads) + ")";
    out.threads = static_cast<int>(*i);
  }
  if (const json::Value* s = doc->get("poll_stride")) {
    const auto u = s->as_uint64();
    if (!u.has_value())
      return "poll_stride must be a non-negative integer";
    if (*u > limits.max_poll_stride)
      return "poll_stride exceeds the server limit (" +
             std::to_string(limits.max_poll_stride) + ")";
    out.poll_stride = static_cast<std::uint32_t>(*u);
  }
  return std::nullopt;
}

namespace {

void open_response(std::ostringstream& os, const std::string& id_json) {
  os << '{';
  if (!id_json.empty()) os << "\"id\":" << id_json << ',';
}

}  // namespace

std::string error_response(const std::string& id_json,
                           std::string_view message) {
  std::ostringstream os;
  open_response(os, id_json);
  os << "\"status\":\"error\",\"error\":\"" << json::escape(message)
     << "\"}\n";
  return os.str();
}

std::string shed_response(const std::string& id_json,
                          std::size_t queue_capacity) {
  std::ostringstream os;
  open_response(os, id_json);
  os << "\"status\":\"shed\",\"queue_capacity\":" << queue_capacity << "}\n";
  return os.str();
}

std::string pong_response(const std::string& id_json) {
  std::ostringstream os;
  open_response(os, id_json);
  os << "\"status\":\"ok\",\"pong\":true}\n";
  return os.str();
}

std::string result_response(const std::string& id_json,
                            const ResultFields& fields) {
  std::ostringstream os;
  open_response(os, id_json);
  const bool partial = fields.status != support::RunStatus::kOk;
  char elapsed[32];
  std::snprintf(elapsed, sizeof(elapsed), "%.3f", fields.elapsed_ms);
  os << "\"status\":\"" << support::to_string(fields.status)
     << "\",\"count\":" << fields.count
     << ",\"elapsed_ms\":" << elapsed
     << ",\"completed_roots\":" << fields.completed_roots
     << ",\"partial\":" << (partial ? "true" : "false")
     << ",\"plan_cached\":" << (fields.plan_cached ? "true" : "false")
     << ",\"backend\":\"" << backend_name(fields.backend) << "\"}\n";
  return os.str();
}

}  // namespace graphpi::service
