// Directed pattern matching.
//
// The nested-loop algorithm generalizes: the candidate set of a pattern
// vertex intersects, for each already-mapped pattern neighbor, the
// *out*-neighborhood of its image when the arc points toward the new
// vertex and the *in*-neighborhood when it points away (both when the
// pair is antiparallel). Symmetry breaking uses the arc-preserving
// automorphism group — which can be 2-cycle-free (directed triangle),
// exercising Algorithm 1's orbit-max fallback.
#pragma once

#include <functional>
#include <span>

#include "core/directed_pattern.h"
#include "graph/digraph.h"
#include "graph/types.h"

namespace graphpi {

class DirectedMatcher {
 public:
  /// Plans internally (first connected skeleton schedule + first
  /// restriction set of the directed group).
  DirectedMatcher(const DirectedGraph& graph, DirectedPattern pattern);
  DirectedMatcher(const DirectedGraph& graph, DirectedPattern pattern,
                  Schedule schedule, RestrictionSet restrictions);

  /// Counts directed embeddings, each subgraph (vertex set + arc set)
  /// once.
  [[nodiscard]] Count count() const;

  /// Lists embeddings (indexed by pattern vertex).
  void enumerate(
      const std::function<void(std::span<const VertexId>)>& cb) const;

  [[nodiscard]] const Schedule& schedule() const noexcept {
    return schedule_;
  }
  [[nodiscard]] const RestrictionSet& restrictions() const noexcept {
    return restrictions_;
  }

 private:
  struct Workspace;
  Count recurse(Workspace& ws, int depth,
                const std::function<void(std::span<const VertexId>)>* cb)
      const;

  const DirectedGraph* graph_;
  DirectedPattern pattern_;
  Schedule schedule_;
  RestrictionSet restrictions_;
};

/// Independent brute-force oracle for directed counting (tests).
[[nodiscard]] Count directed_oracle_count(const DirectedGraph& graph,
                                          const DirectedPattern& pattern);

}  // namespace graphpi
