#include "engine/naive.h"

#include "core/automorphism.h"
#include "engine/matcher.h"
#include "support/check.h"

namespace graphpi {

Schedule default_schedule(const Pattern& pattern) {
  const auto generated = generate_schedules(pattern);
  return generated.phase1.front();
}

Count naive_count_redundant(const Graph& graph, const Pattern& pattern) {
  Configuration config;
  config.pattern = pattern;
  config.schedule = default_schedule(pattern);
  // No restrictions, no IEP: every automorphic copy is enumerated.
  return Matcher(graph, config).count_plain();
}

Count naive_count(const Graph& graph, const Pattern& pattern) {
  const Count redundant = naive_count_redundant(graph, pattern);
  const Count aut = automorphism_count(pattern);
  GRAPHPI_CHECK_MSG(redundant % aut == 0,
                    "restriction-free enumeration finds each embedding "
                    "exactly |Aut| times");
  return redundant / aut;
}

}  // namespace graphpi
