// Shared plan-execution primitives.
//
// The building blocks every plan executor composes: hub-aware candidate
// construction, the counting-only leaf kernel, IEP suffix-set
// materialization, and IEP term evaluation. Matcher (one plan) and
// ForestExecutor (a prefix-sharing trie of many plans) both drive their
// loops through these functions, so the SIMD kernel selection and the
// hub-bitmap heuristics live in exactly one place.
//
// Conventions: `mapped` spans the data vertices assigned to schedule
// depths [0, depth); every predecessor/bound depth referenced by the
// callee indexes into it. All functions are thread-safe given distinct
// output buffers.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "core/iep.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "graph/vertex_set.h"

namespace graphpi::exec {

/// Restriction window [lo_inclusive, hi_exclusive) implied by a step's
/// bound depth lists under the current mapping.
struct Window {
  VertexId lo_inclusive = 0;
  VertexId hi_exclusive = kNoVertexBound;

  [[nodiscard]] bool empty() const noexcept {
    return lo_inclusive >= hi_exclusive;
  }
  [[nodiscard]] bool contains(VertexId v) const noexcept {
    return v >= lo_inclusive && v < hi_exclusive;
  }
  [[nodiscard]] bool unbounded() const noexcept {
    return lo_inclusive == 0 && hi_exclusive == kNoVertexBound;
  }
};

[[nodiscard]] inline Window restriction_window(
    const VertexId* mapped, std::span<const int> lower_bound_depths,
    std::span<const int> upper_bound_depths) {
  Window w;
  for (int d : lower_bound_depths)
    w.lo_inclusive = std::max(w.lo_inclusive, mapped[d] + 1);
  for (int d : upper_bound_depths)
    w.hi_exclusive = std::min(w.hi_exclusive, mapped[d]);
  return w;
}

/// restriction_window over any plan/forest element carrying bound-depth
/// lists (PlanStep, PlanForest::Branch/CountLeaf). The single place the
/// window-resolution convention lives — Matcher, ForestExecutor and the
/// sharded distributed runtime all resolve through it.
template <typename Bounded>
[[nodiscard]] inline Window bounded_window(const VertexId* mapped,
                                           const Bounded& b) {
  return restriction_window(mapped, b.lower_bound_depths,
                            b.upper_bound_depths);
}

/// True iff v collides with an already-mapped vertex.
[[nodiscard]] inline bool already_used(std::span<const VertexId> mapped,
                                       VertexId v) {
  for (VertexId u : mapped)
    if (u == v) return true;
  return false;
}

/// Hub-aware intersection of two adjacency lists: when one endpoint has a
/// bitmap row, probe the other (smaller) adjacency against it in O(|adj|)
/// instead of merging.
void intersect_adjacencies(const Graph& g, VertexId u, VertexId v,
                           std::vector<VertexId>& out);

/// Hub-aware refinement step: out = set ∩ N(v).
void intersect_with_vertex(const Graph& g, std::span<const VertexId> set,
                           VertexId v, std::vector<VertexId>& out);

/// Builds the candidate set of a loop whose predecessors (depths into
/// `mapped`) are `preds`. Returns a view into `out` (>= 2 predecessors),
/// into the graph's adjacency storage (1 predecessor), or into `all`
/// (0 predecessors; lazily filled with the full vertex range).
[[nodiscard]] std::span<const VertexId> build_candidates(
    const Graph& g, std::span<const int> preds,
    std::span<const VertexId> mapped, std::vector<VertexId>& out,
    std::vector<VertexId>& tmp, std::vector<VertexId>& all);

/// |∩_p N(mapped[p]) ∩ [lo, hi)| with NO used-vertex corrections,
/// computed with size-only kernels — no candidate vector is materialized
/// for the final intersection step. Empty `preds` counts the id range
/// itself. This is the memoizable half of a counting leaf: its value
/// depends only on the mapped values the predecessors and bounds name.
[[nodiscard]] Count count_intersection_bounded(
    const Graph& g, std::span<const int> preds,
    std::span<const VertexId> mapped, VertexId lo_inclusive,
    VertexId hi_exclusive, std::vector<VertexId>& buf,
    std::vector<VertexId>& tmp);

/// Number of vertices of `mapped` inside the window that are adjacent to
/// every predecessor — the correction subtracted from
/// count_intersection_bounded to exclude already-used vertices.
[[nodiscard]] Count count_used_in_intersection(const Graph& g,
                                               std::span<const int> preds,
                                               std::span<const VertexId> mapped,
                                               VertexId lo_inclusive,
                                               VertexId hi_exclusive);

/// Counting-only innermost loop: |candidates(preds) ∩ [lo, hi)| minus the
/// vertices already in `mapped` (the two halves above combined).
[[nodiscard]] Count count_leaf(const Graph& g, std::span<const int> preds,
                               std::span<const VertexId> mapped,
                               VertexId lo_inclusive, VertexId hi_exclusive,
                               std::vector<VertexId>& buf,
                               std::vector<VertexId>& tmp);

/// Materializes one IEP suffix candidate set: the intersection of the
/// predecessors' adjacencies minus the already-mapped vertices.
void build_suffix_set(const Graph& g, std::span<const int> preds,
                      std::span<const VertexId> mapped,
                      std::vector<VertexId>& set,
                      std::vector<VertexId>& scratch);

/// Evaluates the signed inclusion–exclusion term sum (Algorithm 2) over
/// materialized suffix sets. `set_ids[i]` names the entry of `sets`
/// holding S_i — executors that share sets across plans pass their
/// dedup mapping; a single-plan executor passes the identity. Returns the
/// *undivided* sum (callers divide the aggregate by the plan's divisor).
[[nodiscard]] Count evaluate_iep_terms(
    std::span<const IepPlan::Term> terms,
    const std::vector<std::vector<VertexId>>& sets,
    std::span<const int> set_ids, std::vector<VertexId>& scratch_a,
    std::vector<VertexId>& scratch_b);

}  // namespace graphpi::exec
