#include "engine/directed.h"

#include <algorithm>
#include <vector>

#include "graph/vertex_set.h"
#include "support/check.h"

namespace graphpi {

struct DirectedMatcher::Workspace {
  VertexId mapped[Pattern::kMaxVertices] = {};
  std::vector<VertexId> buf_a[Pattern::kMaxVertices];
  std::vector<VertexId> buf_b[Pattern::kMaxVertices];
  std::vector<VertexId> all_vertices;
};

DirectedMatcher::DirectedMatcher(const DirectedGraph& graph,
                                 DirectedPattern pattern)
    : DirectedMatcher(
          graph, pattern,
          generate_schedules(pattern.skeleton()).efficient.front(),
          generate_restriction_sets(pattern).front()) {}

DirectedMatcher::DirectedMatcher(const DirectedGraph& graph,
                                 DirectedPattern pattern, Schedule schedule,
                                 RestrictionSet restrictions)
    : graph_(&graph),
      pattern_(std::move(pattern)),
      schedule_(std::move(schedule)),
      restrictions_(std::move(restrictions)) {
  GRAPHPI_CHECK(schedule_.size() == pattern_.size());
}

Count DirectedMatcher::recurse(
    Workspace& ws, int depth,
    const std::function<void(std::span<const VertexId>)>* cb) const {
  const int n = pattern_.size();
  const int pv = schedule_.vertex_at(depth);

  // Gather the constraint lists from already-mapped pattern neighbors:
  // arc (u -> pv) constrains candidates to out_neighbors(image(u));
  // arc (pv -> u) constrains candidates to in_neighbors(image(u)).
  std::vector<std::span<const VertexId>> lists;
  for (int e = 0; e < depth; ++e) {
    const int u = schedule_.vertex_at(e);
    if (pattern_.has_arc(u, pv))
      lists.push_back(graph_->out_neighbors(ws.mapped[e]));
    if (pattern_.has_arc(pv, u))
      lists.push_back(graph_->in_neighbors(ws.mapped[e]));
  }

  std::span<const VertexId> candidates;
  if (lists.empty()) {
    if (ws.all_vertices.size() != graph_->vertex_count()) {
      ws.all_vertices.resize(graph_->vertex_count());
      for (VertexId v = 0; v < graph_->vertex_count(); ++v)
        ws.all_vertices[v] = v;
    }
    candidates = ws.all_vertices;
  } else if (lists.size() == 1) {
    candidates = lists[0];
  } else {
    auto& out = ws.buf_a[depth];
    auto& tmp = ws.buf_b[depth];
    intersect_adaptive(lists[0], lists[1], out);
    for (std::size_t i = 2; i < lists.size(); ++i) {
      intersect_adaptive(out, lists[i], tmp);
      std::swap(out, tmp);
    }
    candidates = out;
  }

  // Restriction bounds (identical mechanics to the undirected engine).
  VertexId lo = 0, hi = 0;
  bool has_lo = false, has_hi = false;
  for (const auto& r : restrictions_) {
    const int dg = schedule_.depth_of(r.greater);
    const int ds = schedule_.depth_of(r.smaller);
    if (std::max(dg, ds) != depth) continue;
    if (ds == depth) {
      hi = has_hi ? std::min(hi, ws.mapped[dg]) : ws.mapped[dg];
      has_hi = true;
    } else {
      lo = has_lo ? std::max(lo, ws.mapped[ds]) : ws.mapped[ds];
      has_lo = true;
    }
  }
  const VertexId* first = candidates.data();
  const VertexId* last = candidates.data() + candidates.size();
  if (has_lo) first = std::upper_bound(first, last, lo);
  if (has_hi) last = std::lower_bound(first, last, hi);

  Count total = 0;
  for (const VertexId* it = first; it != last; ++it) {
    const VertexId v = *it;
    bool used = false;
    for (int d = 0; d < depth && !used; ++d) used = ws.mapped[d] == v;
    if (used) continue;
    ws.mapped[depth] = v;
    if (depth == n - 1) {
      ++total;
      if (cb != nullptr) {
        VertexId embedding[Pattern::kMaxVertices];
        for (int d = 0; d < n; ++d)
          embedding[schedule_.vertex_at(d)] = ws.mapped[d];
        (*cb)({embedding, static_cast<std::size_t>(n)});
      }
    } else {
      total += recurse(ws, depth + 1, cb);
    }
  }
  return total;
}

Count DirectedMatcher::count() const {
  Workspace ws;
  return recurse(ws, 0, nullptr);
}

void DirectedMatcher::enumerate(
    const std::function<void(std::span<const VertexId>)>& cb) const {
  Workspace ws;
  recurse(ws, 0, &cb);
}

namespace {

Count directed_assign(const DirectedGraph& g, const DirectedPattern& p,
                      int i, VertexId* image) {
  const int n = p.size();
  if (i == n) return 1;
  Count total = 0;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    bool ok = true;
    for (int j = 0; j < i && ok; ++j) {
      if (image[j] == v) ok = false;
      if (ok && p.has_arc(j, i) && !g.has_arc(image[j], v)) ok = false;
      if (ok && p.has_arc(i, j) && !g.has_arc(v, image[j])) ok = false;
    }
    if (!ok) continue;
    image[i] = v;
    total += directed_assign(g, p, i + 1, image);
  }
  return total;
}

}  // namespace

Count directed_oracle_count(const DirectedGraph& graph,
                            const DirectedPattern& pattern) {
  VertexId image[Pattern::kMaxVertices] = {};
  const Count redundant = directed_assign(graph, pattern, 0, image);
  const Count aut = automorphisms(pattern).size();
  GRAPHPI_CHECK(redundant % aut == 0);
  return redundant / aut;
}

}  // namespace graphpi
