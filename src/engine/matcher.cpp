#include "engine/matcher.h"

#include <algorithm>
#include <numeric>

#include "graph/vertex_set.h"
#include "support/check.h"

namespace graphpi {

namespace {
/// IEP partial sums can exceed 64 bits before the final division.
using Wide = unsigned __int128;
using SignedWide = __int128;
}  // namespace

Matcher::Matcher(const Graph& graph, Configuration config)
    : graph_(&graph), config_(std::move(config)) {
  n_ = config_.pattern.size();
  GRAPHPI_CHECK_MSG(config_.schedule.size() == n_,
                    "schedule must cover the pattern");
  iep_active_ = config_.iep.k > 0;
  outer_depth_ = iep_active_ ? n_ - config_.iep.k : n_;
  GRAPHPI_CHECK(outer_depth_ >= 1);

  // Precompile per-depth predecessors and restriction bounds. Bounds for
  // depths below outer_depth_ involve only prefix endpoints, so they are
  // identical with and without IEP (suffix-checked restrictions are the
  // ones IEP drops); a single table serves both modes.
  depth_info_.resize(static_cast<std::size_t>(n_));
  for (int d = 0; d < n_; ++d) {
    auto& info = depth_info_[static_cast<std::size_t>(d)];
    const int v = config_.schedule.vertex_at(d);
    for (int e = 0; e < d; ++e) {
      const int u = config_.schedule.vertex_at(e);
      if (config_.pattern.has_edge(u, v)) info.predecessor_depths.push_back(e);
    }
    for (const auto& r : config_.restrictions) {
      const int dg = config_.schedule.depth_of(r.greater);
      const int ds = config_.schedule.depth_of(r.smaller);
      if (std::max(dg, ds) != d) continue;  // checked elsewhere
      if (ds == d) {
        // id(greater) > id(this): candidates bounded above.
        info.upper_bound_depths.push_back(dg);
      } else {
        // id(this) > id(smaller): candidates bounded below.
        info.lower_bound_depths.push_back(ds);
      }
    }
  }
}

std::span<const VertexId> Matcher::build_candidates(Workspace& ws,
                                                    int depth) const {
  const auto& preds =
      depth_info_[static_cast<std::size_t>(depth)].predecessor_depths;
  if (preds.empty()) {
    // Unconstrained loop over the whole vertex set (depth 0, or an
    // inefficient schedule kept for the Figure 9 sweep).
    if (ws.all_vertices.size() != graph_->vertex_count()) {
      ws.all_vertices.resize(graph_->vertex_count());
      std::iota(ws.all_vertices.begin(), ws.all_vertices.end(), VertexId{0});
    }
    return ws.all_vertices;
  }
  if (preds.size() == 1) return graph_->neighbors(ws.mapped[preds[0]]);

  auto& out = ws.buf_a[depth];
  auto& tmp = ws.buf_b[depth];
  intersect_adaptive(graph_->neighbors(ws.mapped[preds[0]]),
                     graph_->neighbors(ws.mapped[preds[1]]), out);
  for (std::size_t p = 2; p < preds.size(); ++p) {
    intersect_adaptive(out, graph_->neighbors(ws.mapped[preds[p]]), tmp);
    std::swap(out, tmp);
  }
  return out;
}

std::span<const VertexId> Matcher::bounded_range(
    const Workspace& ws, int depth, std::span<const VertexId> cands) const {
  const auto& info = depth_info_[static_cast<std::size_t>(depth)];
  if (info.upper_bound_depths.empty() && info.lower_bound_depths.empty())
    return cands;

  // Tightest bounds implied by the restrictions at this depth.
  VertexId lo_exclusive = 0;
  bool has_lo = false;
  for (int d : info.lower_bound_depths) {
    lo_exclusive = has_lo ? std::max(lo_exclusive, ws.mapped[d]) : ws.mapped[d];
    has_lo = true;
  }
  VertexId hi_exclusive = 0;
  bool has_hi = false;
  for (int d : info.upper_bound_depths) {
    hi_exclusive = has_hi ? std::min(hi_exclusive, ws.mapped[d]) : ws.mapped[d];
    has_hi = true;
  }

  const VertexId* first = cands.data();
  const VertexId* last = cands.data() + cands.size();
  if (has_lo) first = std::upper_bound(first, last, lo_exclusive);
  if (has_hi) last = std::lower_bound(first, last, hi_exclusive);
  return {first, last};
}

bool Matcher::already_used(const Workspace& ws, int depth, VertexId v) {
  for (int d = 0; d < depth; ++d)
    if (ws.mapped[d] == v) return true;
  return false;
}

Count Matcher::recurse(Workspace& ws, int depth,
                       const EmbeddingCallback* cb) const {
  const auto range = bounded_range(ws, depth, build_candidates(ws, depth));

  if (depth == n_ - 1 && cb == nullptr) {
    // Innermost loop of a counting run: the candidates are all leaves;
    // just exclude the already-used vertices.
    return range.size() -
           count_present(range, {ws.mapped, static_cast<std::size_t>(depth)});
  }

  Count total = 0;
  for (VertexId v : range) {
    if (already_used(ws, depth, v)) continue;
    ws.mapped[depth] = v;
    if (depth == n_ - 1) {
      ++total;
      VertexId embedding[Pattern::kMaxVertices];
      for (int d = 0; d < n_; ++d)
        embedding[config_.schedule.vertex_at(d)] = ws.mapped[d];
      (*cb)({embedding, static_cast<std::size_t>(n_)});
    } else {
      total += recurse(ws, depth + 1, cb);
    }
  }
  return total;
}

Count Matcher::evaluate_iep_leaf(Workspace& ws) const {
  const int k = config_.iep.k;
  const std::span<const VertexId> used{ws.mapped,
                                       static_cast<std::size_t>(outer_depth_)};

  // Materialize the suffix candidate sets S_0..S_{k-1}, each minus the
  // already-mapped vertices (Figure 6(b): "S1 <- tmpAB - {vA,vB,vC}").
  ws.suffix_sets.resize(static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) {
    const int depth = outer_depth_ + s;
    const auto& preds =
        depth_info_[static_cast<std::size_t>(depth)].predecessor_depths;
    auto& set = ws.suffix_sets[static_cast<std::size_t>(s)];
    if (preds.size() == 1) {
      const auto adj = graph_->neighbors(ws.mapped[preds[0]]);
      set.assign(adj.begin(), adj.end());
    } else {
      intersect_adaptive(graph_->neighbors(ws.mapped[preds[0]]),
                         graph_->neighbors(ws.mapped[preds[1]]), set);
      for (std::size_t p = 2; p < preds.size(); ++p) {
        intersect_adaptive(set, graph_->neighbors(ws.mapped[preds[p]]),
                           ws.scratch_a);
        std::swap(set, ws.scratch_a);
      }
    }
    remove_all(set, used);
  }

  // Evaluate the inclusion–exclusion terms (Algorithm 2): every term is a
  // signed product over its blocks of |∩_{i∈B} S_i|.
  SignedWide sum = 0;
  for (const auto& term : config_.iep.terms) {
    SignedWide product = term.coefficient;
    for (const auto& block : term.blocks) {
      if (product == 0) break;
      std::size_t factor = 0;
      if (block.size() == 1) {
        factor = ws.suffix_sets[static_cast<std::size_t>(block[0])].size();
      } else {
        intersect(ws.suffix_sets[static_cast<std::size_t>(block[0])],
                  ws.suffix_sets[static_cast<std::size_t>(block[1])],
                  ws.scratch_a);
        for (std::size_t b = 2; b < block.size(); ++b) {
          intersect(ws.scratch_a,
                    ws.suffix_sets[static_cast<std::size_t>(block[b])],
                    ws.scratch_b);
          std::swap(ws.scratch_a, ws.scratch_b);
        }
        factor = ws.scratch_a.size();
      }
      product *= static_cast<SignedWide>(factor);
    }
    sum += product;
  }
  GRAPHPI_CHECK_MSG(sum >= 0, "|S_IEP| is a tuple count and must be >= 0");
  // Per-leaf sums fit 64 bits comfortably (k <= 7 factors of set sizes).
  return static_cast<Count>(sum);
}

Count Matcher::recurse_iep(Workspace& ws, int depth) const {
  if (depth == outer_depth_) return evaluate_iep_leaf(ws);
  const auto range = bounded_range(ws, depth, build_candidates(ws, depth));
  Count total = 0;
  for (VertexId v : range) {
    if (already_used(ws, depth, v)) continue;
    ws.mapped[depth] = v;
    total += recurse_iep(ws, depth + 1);
  }
  return total;
}

Count Matcher::count() const {
  Workspace ws;
  if (!iep_active_) return recurse(ws, 0, nullptr);
  const Count undivided = recurse_iep(ws, 0);
  GRAPHPI_CHECK_MSG(undivided % config_.iep.divisor == 0,
                    "IEP sum must be divisible by the surviving-"
                    "automorphism factor x");
  return undivided / config_.iep.divisor;
}

Count Matcher::count_plain() const {
  Workspace ws;
  return recurse(ws, 0, nullptr);
}

void Matcher::enumerate(const EmbeddingCallback& cb) const {
  Workspace ws;
  recurse(ws, 0, &cb);
}

bool Matcher::apply_prefix(Workspace& ws,
                           std::span<const VertexId> prefix) const {
  GRAPHPI_CHECK(prefix.size() <= static_cast<std::size_t>(n_));
  for (std::size_t d = 0; d < prefix.size(); ++d) {
    const VertexId v = prefix[d];
    if (already_used(ws, static_cast<int>(d), v)) return false;
    const auto range =
        bounded_range(ws, static_cast<int>(d),
                      build_candidates(ws, static_cast<int>(d)));
    if (!contains(range, v)) return false;
    ws.mapped[d] = v;
  }
  return true;
}

Count Matcher::count_from_prefix(std::span<const VertexId> prefix) const {
  Workspace ws;
  if (!apply_prefix(ws, prefix)) return 0;
  const int depth = static_cast<int>(prefix.size());
  if (!iep_active_) {
    if (depth == n_) return 1;
    return recurse(ws, depth, nullptr);
  }
  GRAPHPI_CHECK_MSG(depth <= outer_depth_,
                    "prefix must not extend into the IEP suffix");
  // Undivided on purpose: only the global total is divisible by x.
  return depth == outer_depth_ ? evaluate_iep_leaf(ws)
                               : recurse_iep(ws, depth);
}

Count Matcher::finalize_partial_counts(Count aggregated) const {
  if (!iep_active_) return aggregated;
  GRAPHPI_CHECK_MSG(aggregated % config_.iep.divisor == 0,
                    "aggregated IEP sum must be divisible by the surviving-"
                    "automorphism factor x");
  return aggregated / config_.iep.divisor;
}

void Matcher::enumerate_from_prefix(std::span<const VertexId> prefix,
                                    const EmbeddingCallback& cb) const {
  GRAPHPI_CHECK_MSG(!iep_active_,
                    "IEP configurations cannot list embeddings");
  Workspace ws;
  if (!apply_prefix(ws, prefix)) return;
  const int depth = static_cast<int>(prefix.size());
  if (depth == n_) {
    VertexId embedding[Pattern::kMaxVertices];
    for (int d = 0; d < n_; ++d)
      embedding[config_.schedule.vertex_at(d)] = ws.mapped[d];
    cb({embedding, static_cast<std::size_t>(n_)});
    return;
  }
  recurse(ws, depth, &cb);
}

void Matcher::enumerate_prefixes(
    int depth, const std::function<void(std::span<const VertexId>)>& cb) const {
  GRAPHPI_CHECK(depth >= 1 && depth <= outer_depth_);
  Workspace ws;
  // Iterative-in-recursion: reuse recurse() shape but stop at `depth`.
  const std::function<void(int)> walk = [&](int d) {
    const auto range = bounded_range(ws, d, build_candidates(ws, d));
    for (VertexId v : range) {
      if (already_used(ws, d, v)) continue;
      ws.mapped[d] = v;
      if (d + 1 == depth) {
        cb({ws.mapped, static_cast<std::size_t>(depth)});
      } else {
        walk(d + 1);
      }
    }
  };
  walk(0);
}

Count count_embeddings(const Graph& graph, const Configuration& config) {
  return Matcher(graph, config).count();
}

Count count_embeddings(const Graph& graph, const Pattern& pattern,
                       bool use_iep) {
  PlannerOptions options;
  options.use_iep = use_iep;
  const Configuration config =
      plan_configuration(pattern, GraphStats::of(graph), options);
  return Matcher(graph, config).count();
}

}  // namespace graphpi
