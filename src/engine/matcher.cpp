#include "engine/matcher.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "engine/plan_exec.h"
#include "graph/vertex_set.h"
#include "support/check.h"
#include "support/metrics.h"

namespace graphpi {

namespace {

std::atomic<std::uint64_t> g_workspace_constructions{0};
std::atomic<std::uint64_t> g_next_matcher_id{1};  // 0 = workspace unbound

}  // namespace

Matcher::Workspace::Workspace() {
  g_workspace_constructions.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Matcher::workspace_constructions() noexcept {
  return g_workspace_constructions.load(std::memory_order_relaxed);
}

Matcher::Matcher(const Graph& graph, Configuration config)
    : graph_(&graph),
      config_(std::move(config)),
      plan_(compile_plan(config_)),
      id_(g_next_matcher_id.fetch_add(1, std::memory_order_relaxed)) {
  n_ = plan_.size();
  iep_active_ = plan_.iep_active();
  outer_depth_ = plan_.outer_depth;

  // Hub rows accelerate the multi-way intersections; building is
  // idempotent and must happen before the matcher is shared across
  // threads. Plans without any 2+-way intersection skip the index.
  if (plan_.wants_hub_index) graph.ensure_hub_index();

  identity_set_ids_.resize(static_cast<std::size_t>(plan_.iep.k));
  std::iota(identity_set_ids_.begin(), identity_set_ids_.end(), 0);
}

std::span<const VertexId> Matcher::build_candidates(Workspace& ws,
                                                    int depth) const {
  return exec::build_candidates(
      *graph_, plan_.steps[static_cast<std::size_t>(depth)].predecessor_depths,
      {ws.mapped, static_cast<std::size_t>(depth)}, ws.buf_a[depth],
      ws.buf_b[depth], ws.all_vertices);
}

std::span<const VertexId> Matcher::bounded_range(
    const Workspace& ws, int depth, std::span<const VertexId> cands) const {
  const exec::Window w = exec::bounded_window(
      ws.mapped, plan_.steps[static_cast<std::size_t>(depth)]);
  if (w.unbounded()) return cands;
  return trim_to_window(cands, w.lo_inclusive, w.hi_exclusive);
}

Count Matcher::count_leaf(Workspace& ws, int depth) const {
  const auto& step = plan_.steps[static_cast<std::size_t>(depth)];
  const exec::Window w = exec::bounded_window(ws.mapped, step);
  return exec::count_leaf(*graph_, step.predecessor_depths,
                          {ws.mapped, static_cast<std::size_t>(depth)},
                          w.lo_inclusive, w.hi_exclusive, ws.buf_a[depth],
                          ws.buf_b[depth]);
}

Count Matcher::recurse(Workspace& ws, int depth,
                       const EmbeddingCallback* cb) const {
  if (depth == n_ - 1 && cb == nullptr) {
    // Innermost loop of a counting run: no candidate vector is built.
    return count_leaf(ws, depth);
  }

  const auto range = bounded_range(ws, depth, build_candidates(ws, depth));
  Count total = 0;
  for (VertexId v : range) {
    if (exec::already_used({ws.mapped, static_cast<std::size_t>(depth)}, v))
      continue;
    ws.mapped[depth] = v;
    if (depth == n_ - 1) {
      ++total;
      VertexId embedding[Pattern::kMaxVertices];
      for (int d = 0; d < n_; ++d)
        embedding[plan_.steps[static_cast<std::size_t>(d)].pattern_vertex] =
            ws.mapped[d];
      (*cb)({embedding, static_cast<std::size_t>(n_)});
    } else {
      total += recurse(ws, depth + 1, cb);
    }
  }
  return total;
}

Count Matcher::evaluate_iep_leaf(Workspace& ws) const {
  const int k = plan_.iep.k;
  const std::span<const VertexId> mapped{
      ws.mapped, static_cast<std::size_t>(outer_depth_)};

  // Materialize the suffix candidate sets S_0..S_{k-1}, each minus the
  // already-mapped vertices (Figure 6(b): "S1 <- tmpAB - {vA,vB,vC}").
  // These are reused across every IEP term, so they are the only
  // materialization the leaf performs.
  ws.suffix_sets.resize(static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) {
    const auto& step =
        plan_.steps[static_cast<std::size_t>(outer_depth_ + s)];
    exec::build_suffix_set(*graph_, step.predecessor_depths, mapped,
                           ws.suffix_sets[static_cast<std::size_t>(s)],
                           ws.scratch_a);
  }

  ws.iep_terms += plan_.iep.terms.size();
  return exec::evaluate_iep_terms(plan_.iep.terms, ws.suffix_sets,
                                  identity_set_ids_, ws.scratch_a,
                                  ws.scratch_b);
}

void Matcher::flush_metrics(Workspace& ws, std::uint64_t roots) const {
  using support::metrics::Counter;
  using support::metrics::metric_counter;
  static Counter& c_roots = metric_counter("engine.matcher.roots_completed");
  static Counter& c_iep = metric_counter("engine.iep.terms_evaluated");
  if (roots != 0) c_roots.inc(roots);
  if (ws.iep_terms > ws.iep_terms_flushed) {
    c_iep.inc(ws.iep_terms - ws.iep_terms_flushed);
    ws.iep_terms_flushed = ws.iep_terms;
  }
}

Count Matcher::recurse_iep(Workspace& ws, int depth) const {
  if (depth == outer_depth_) return evaluate_iep_leaf(ws);
  const auto range = bounded_range(ws, depth, build_candidates(ws, depth));
  Count total = 0;
  for (VertexId v : range) {
    if (exec::already_used({ws.mapped, static_cast<std::size_t>(depth)}, v))
      continue;
    ws.mapped[depth] = v;
    total += recurse_iep(ws, depth + 1);
  }
  return total;
}

Count Matcher::count(Workspace& ws) const {
  invalidate_prefix(ws);
  support::metrics::metric_counter("engine.matcher.runs").inc();
  // Depth 0 has no predecessors or bounds, so when a root loop exists at
  // all it scans every vertex exactly once.
  const std::uint64_t roots =
      (iep_active_ ? outer_depth_ : n_) >= 1 ? graph_->vertex_count() : 0;
  if (!iep_active_) {
    const Count total = recurse(ws, 0, nullptr);
    flush_metrics(ws, roots);
    return total;
  }
  const Count undivided = recurse_iep(ws, 0);
  flush_metrics(ws, roots);
  GRAPHPI_CHECK_MSG(undivided % plan_.iep.divisor == 0,
                    "IEP sum must be divisible by the surviving-"
                    "automorphism factor x");
  return undivided / plan_.iep.divisor;
}

Count Matcher::count() const {
  Workspace ws;
  return count(ws);
}

Count Matcher::count(Workspace& ws, const support::ExecControl* control,
                     support::RunReport* report) const {
  if (control == nullptr || !control->armed()) {
    // Nothing to poll: the plain path, plus a trivially-complete report.
    const Count total = count(ws);
    if (report != nullptr)
      *report = support::RunReport{support::RunStatus::kOk,
                                   static_cast<std::uint64_t>(n_ >= 1)};
    return total;
  }
  // Patterns whose entire evaluation is a single leaf (no depth-0 loop to
  // poll) run unbounded — they are one root unit by definition.
  if (n_ < 2 || (iep_active_ && outer_depth_ < 1)) {
    const Count total = count(ws);
    if (report != nullptr)
      *report = support::RunReport{support::RunStatus::kOk, 1};
    return total;
  }

  invalidate_prefix(ws);
  support::metrics::metric_counter("engine.matcher.runs").inc();
  support::PollGate gate(control);
  Count total = 0;
  // The depth-0 loop of recurse()/recurse_iep(), unrolled one level so
  // the gate fires once per completed root vertex. No already_used check:
  // the prefix is empty at depth 0.
  const auto range = bounded_range(ws, 0, build_candidates(ws, 0));
  for (VertexId v : range) {
    ws.mapped[0] = v;
    total += iep_active_ ? recurse_iep(ws, 1) : recurse(ws, 1, nullptr);
    if (gate.completed_unit() != support::RunStatus::kOk) break;
  }
  if (report != nullptr) {
    report->status = gate.status();
    report->completed_roots = gate.done();
  }
  support::observe_run_status(gate.status());
  flush_metrics(ws, gate.done());
  if (!iep_active_) return total;
  if (gate.status() == support::RunStatus::kOk) {
    GRAPHPI_CHECK_MSG(total % plan_.iep.divisor == 0,
                      "IEP sum must be divisible by the surviving-"
                      "automorphism factor x");
    return total / plan_.iep.divisor;
  }
  // Partial IEP sums are generally not divisible by x: best-effort.
  return total / plan_.iep.divisor;
}

Count Matcher::count_plain(Workspace& ws) const {
  invalidate_prefix(ws);
  support::metrics::metric_counter("engine.matcher.runs").inc();
  const Count total = recurse(ws, 0, nullptr);
  flush_metrics(ws, n_ >= 1 ? graph_->vertex_count() : 0);
  return total;
}

Count Matcher::count_plain() const {
  Workspace ws;
  return count_plain(ws);
}

void Matcher::enumerate(Workspace& ws, const EmbeddingCallback& cb) const {
  invalidate_prefix(ws);
  recurse(ws, 0, &cb);
}

void Matcher::enumerate(const EmbeddingCallback& cb) const {
  Workspace ws;
  enumerate(ws, cb);
}

bool Matcher::apply_prefix(Workspace& ws,
                           std::span<const VertexId> prefix) const {
  GRAPHPI_CHECK(prefix.size() <= static_cast<std::size_t>(n_));
  // Skip the longest prefix this workspace already validated against this
  // matcher — tasks arriving in lexicographic order share their leading
  // positions, whose candidate intersections are the expensive part of
  // prefix validation.
  std::size_t start = 0;
  if (ws.bound_matcher == id_) {
    const std::size_t reusable = std::min(
        static_cast<std::size_t>(ws.applied_depth), prefix.size());
    while (start < reusable && ws.mapped[start] == prefix[start]) ++start;
  } else {
    ws.bound_matcher = id_;
  }
  for (std::size_t d = start; d < prefix.size(); ++d) {
    const VertexId v = prefix[d];
    if (exec::already_used({ws.mapped, d}, v)) {
      ws.applied_depth = static_cast<int>(d);
      return false;
    }
    const auto range =
        bounded_range(ws, static_cast<int>(d),
                      build_candidates(ws, static_cast<int>(d)));
    if (!contains(range, v)) {
      ws.applied_depth = static_cast<int>(d);
      return false;
    }
    ws.mapped[d] = v;
  }
  ws.applied_depth = static_cast<int>(prefix.size());
  return true;
}

Count Matcher::count_from_prefix(Workspace& ws,
                                 std::span<const VertexId> prefix) const {
  if (!apply_prefix(ws, prefix)) return 0;
  const int depth = static_cast<int>(prefix.size());
  if (!iep_active_) {
    if (depth == n_) return 1;
    return recurse(ws, depth, nullptr);
  }
  GRAPHPI_CHECK_MSG(depth <= outer_depth_,
                    "prefix must not extend into the IEP suffix");
  // Undivided on purpose: only the global total is divisible by x.
  return depth == outer_depth_ ? evaluate_iep_leaf(ws)
                               : recurse_iep(ws, depth);
}

Count Matcher::count_from_prefix(std::span<const VertexId> prefix) const {
  Workspace ws;
  return count_from_prefix(ws, prefix);
}

Count Matcher::finalize_partial_counts(Count aggregated) const {
  if (!iep_active_) return aggregated;
  GRAPHPI_CHECK_MSG(aggregated % plan_.iep.divisor == 0,
                    "aggregated IEP sum must be divisible by the surviving-"
                    "automorphism factor x");
  return aggregated / plan_.iep.divisor;
}

void Matcher::enumerate_from_prefix(Workspace& ws,
                                    std::span<const VertexId> prefix,
                                    const EmbeddingCallback& cb) const {
  GRAPHPI_CHECK_MSG(!iep_active_,
                    "IEP configurations cannot list embeddings");
  if (!apply_prefix(ws, prefix)) return;
  const int depth = static_cast<int>(prefix.size());
  if (depth == n_) {
    VertexId embedding[Pattern::kMaxVertices];
    for (int d = 0; d < n_; ++d)
      embedding[plan_.steps[static_cast<std::size_t>(d)].pattern_vertex] =
          ws.mapped[d];
    cb({embedding, static_cast<std::size_t>(n_)});
    return;
  }
  recurse(ws, depth, &cb);
}

void Matcher::enumerate_from_prefix(std::span<const VertexId> prefix,
                                    const EmbeddingCallback& cb) const {
  Workspace ws;
  enumerate_from_prefix(ws, prefix, cb);
}

void Matcher::enumerate_prefixes(
    Workspace& ws, int depth,
    const std::function<void(std::span<const VertexId>)>& cb) const {
  GRAPHPI_CHECK(depth >= 1 && depth <= outer_depth_);
  invalidate_prefix(ws);
  // Iterative-in-recursion: reuse recurse() shape but stop at `depth`.
  const std::function<void(int)> walk = [&](int d) {
    const auto range = bounded_range(ws, d, build_candidates(ws, d));
    for (VertexId v : range) {
      if (exec::already_used({ws.mapped, static_cast<std::size_t>(d)}, v))
        continue;
      ws.mapped[d] = v;
      if (d + 1 == depth) {
        cb({ws.mapped, static_cast<std::size_t>(depth)});
      } else {
        walk(d + 1);
      }
    }
  };
  walk(0);
}

void Matcher::enumerate_prefixes(
    int depth, const std::function<void(std::span<const VertexId>)>& cb) const {
  Workspace ws;
  enumerate_prefixes(ws, depth, cb);
}

Count count_embeddings(const Graph& graph, const Configuration& config) {
  return Matcher(graph, config).count();
}

Count count_embeddings(const Graph& graph, const Pattern& pattern,
                       bool use_iep) {
  PlannerOptions options;
  options.use_iep = use_iep;
  const Configuration config =
      plan_configuration(pattern, GraphStats::of(graph), options);
  return Matcher(graph, config).count();
}

}  // namespace graphpi
