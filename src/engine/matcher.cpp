#include "engine/matcher.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "graph/vertex_set.h"
#include "support/check.h"

namespace graphpi {

namespace {
/// IEP partial sums can exceed 64 bits before the final division.
using Wide = unsigned __int128;
using SignedWide = __int128;

std::atomic<std::uint64_t> g_workspace_constructions{0};
std::atomic<std::uint64_t> g_next_matcher_id{1};  // 0 = workspace unbound

/// Hub-aware intersection of two adjacency lists: when one endpoint has a
/// bitmap row, probe the other (smaller) adjacency against it in O(|adj|)
/// instead of merging.
void intersect_adjacencies(const Graph& g, VertexId u, VertexId v,
                           std::vector<VertexId>& out) {
  const auto adj_u = g.neighbors(u);
  const auto adj_v = g.neighbors(v);
  const std::uint64_t* bits_u = g.hub_bits(u);
  const std::uint64_t* bits_v = g.hub_bits(v);
  if (bits_v != nullptr && (bits_u == nullptr || adj_u.size() <= adj_v.size())) {
    intersect_bitmap(adj_u, bits_v, out);
  } else if (bits_u != nullptr) {
    intersect_bitmap(adj_v, bits_u, out);
  } else {
    intersect_adaptive(adj_u, adj_v, out);
  }
}

/// Hub-aware refinement step: out = set ∩ N(v).
void intersect_with_vertex(const Graph& g, std::span<const VertexId> set,
                           VertexId v, std::vector<VertexId>& out) {
  if (const std::uint64_t* bits = g.hub_bits(v); bits != nullptr) {
    intersect_bitmap(set, bits, out);
  } else {
    intersect_adaptive(set, g.neighbors(v), out);
  }
}

}  // namespace

Matcher::Workspace::Workspace() {
  g_workspace_constructions.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Matcher::workspace_constructions() noexcept {
  return g_workspace_constructions.load(std::memory_order_relaxed);
}

Matcher::Matcher(const Graph& graph, Configuration config)
    : graph_(&graph),
      config_(std::move(config)),
      id_(g_next_matcher_id.fetch_add(1, std::memory_order_relaxed)) {
  n_ = config_.pattern.size();
  GRAPHPI_CHECK_MSG(config_.schedule.size() == n_,
                    "schedule must cover the pattern");
  iep_active_ = config_.iep.k > 0;
  outer_depth_ = iep_active_ ? n_ - config_.iep.k : n_;
  GRAPHPI_CHECK(outer_depth_ >= 1);

  // Hub rows accelerate every intersection below; building is idempotent
  // and must happen before the matcher is shared across threads.
  graph.ensure_hub_index();

  // Precompile per-depth predecessors and restriction bounds. Bounds for
  // depths below outer_depth_ involve only prefix endpoints, so they are
  // identical with and without IEP (suffix-checked restrictions are the
  // ones IEP drops); a single table serves both modes.
  depth_info_.resize(static_cast<std::size_t>(n_));
  for (int d = 0; d < n_; ++d) {
    auto& info = depth_info_[static_cast<std::size_t>(d)];
    const int v = config_.schedule.vertex_at(d);
    for (int e = 0; e < d; ++e) {
      const int u = config_.schedule.vertex_at(e);
      if (config_.pattern.has_edge(u, v)) info.predecessor_depths.push_back(e);
    }
    for (const auto& r : config_.restrictions) {
      const int dg = config_.schedule.depth_of(r.greater);
      const int ds = config_.schedule.depth_of(r.smaller);
      if (std::max(dg, ds) != d) continue;  // checked elsewhere
      if (ds == d) {
        // id(greater) > id(this): candidates bounded above.
        info.upper_bound_depths.push_back(dg);
      } else {
        // id(this) > id(smaller): candidates bounded below.
        info.lower_bound_depths.push_back(ds);
      }
    }
  }
}

Matcher::Window Matcher::restriction_window(const Workspace& ws,
                                            int depth) const {
  const auto& info = depth_info_[static_cast<std::size_t>(depth)];
  Window w{0, kNoVertexBound};
  for (int d : info.lower_bound_depths)
    w.lo_inclusive = std::max(w.lo_inclusive, ws.mapped[d] + 1);
  for (int d : info.upper_bound_depths)
    w.hi_exclusive = std::min(w.hi_exclusive, ws.mapped[d]);
  return w;
}

std::span<const VertexId> Matcher::build_candidates(Workspace& ws,
                                                    int depth) const {
  const auto& preds =
      depth_info_[static_cast<std::size_t>(depth)].predecessor_depths;
  if (preds.empty()) {
    // Unconstrained loop over the whole vertex set (depth 0, or an
    // inefficient schedule kept for the Figure 9 sweep).
    if (ws.all_vertices.size() != graph_->vertex_count()) {
      ws.all_vertices.resize(graph_->vertex_count());
      std::iota(ws.all_vertices.begin(), ws.all_vertices.end(), VertexId{0});
    }
    return ws.all_vertices;
  }
  if (preds.size() == 1) return graph_->neighbors(ws.mapped[preds[0]]);

  auto& out = ws.buf_a[depth];
  auto& tmp = ws.buf_b[depth];
  intersect_adjacencies(*graph_, ws.mapped[preds[0]], ws.mapped[preds[1]], out);
  for (std::size_t p = 2; p < preds.size(); ++p) {
    intersect_with_vertex(*graph_, out, ws.mapped[preds[p]], tmp);
    std::swap(out, tmp);
  }
  return out;
}

std::span<const VertexId> Matcher::bounded_range(
    const Workspace& ws, int depth, std::span<const VertexId> cands) const {
  const Window w = restriction_window(ws, depth);
  if (w.lo_inclusive == 0 && w.hi_exclusive == kNoVertexBound) return cands;
  return trim_to_window(cands, w.lo_inclusive, w.hi_exclusive);
}

bool Matcher::already_used(const Workspace& ws, int depth, VertexId v) {
  for (int d = 0; d < depth; ++d)
    if (ws.mapped[d] == v) return true;
  return false;
}

Count Matcher::count_leaf(Workspace& ws, int depth) const {
  const auto& preds =
      depth_info_[static_cast<std::size_t>(depth)].predecessor_depths;
  const Window w = restriction_window(ws, depth);
  if (w.lo_inclusive >= w.hi_exclusive) return 0;
  const std::span<const VertexId> used{ws.mapped,
                                       static_cast<std::size_t>(depth)};
  const auto in_window = [&w](VertexId v) {
    return v >= w.lo_inclusive && v < w.hi_exclusive;
  };

  if (preds.empty()) {
    // Unconstrained innermost loop: the window over the whole id range.
    const std::uint64_t n = graph_->vertex_count();
    const std::uint64_t lo = w.lo_inclusive;
    const std::uint64_t hi = std::min<std::uint64_t>(w.hi_exclusive, n);
    if (lo >= hi) return 0;
    Count total = hi - lo;
    for (VertexId v : used)
      if (in_window(v)) --total;
    return total;
  }

  if (preds.size() == 1) {
    const auto range = trim_to_window(graph_->neighbors(ws.mapped[preds[0]]),
                                      w.lo_inclusive, w.hi_exclusive);
    Count total = range.size();
    for (VertexId v : used)
      if (in_window(v) && contains(range, v)) --total;
    return total;
  }

  // Two or more predecessors: materialize the chain up to the last step,
  // then compute the final intersection size inside the window directly.
  const VertexId last = ws.mapped[preds.back()];
  const std::uint64_t* last_bits = graph_->hub_bits(last);
  const auto last_adj = graph_->neighbors(last);

  Count total;
  if (preds.size() == 2) {
    const VertexId first = ws.mapped[preds[0]];
    const std::uint64_t* first_bits = graph_->hub_bits(first);
    const auto first_adj = graph_->neighbors(first);
    if (first_bits != nullptr && last_bits != nullptr &&
        graph_->hub_words() * 4 <= first_adj.size() + last_adj.size()) {
      // Both endpoints are hubs and the rows are short relative to the
      // adjacencies: word-parallel AND+popcount over the window.
      total = bitmap_and_popcount_bounded(first_bits, last_bits,
                                          graph_->vertex_count(),
                                          w.lo_inclusive, w.hi_exclusive);
    } else if (last_bits != nullptr) {
      total = intersect_size_bitmap_bounded(first_adj, last_bits,
                                            w.lo_inclusive, w.hi_exclusive);
    } else if (first_bits != nullptr) {
      total = intersect_size_bitmap_bounded(last_adj, first_bits,
                                            w.lo_inclusive, w.hi_exclusive);
    } else {
      total = intersect_size_bounded_adaptive(first_adj, last_adj,
                                              w.lo_inclusive, w.hi_exclusive);
    }
    for (VertexId v : used)
      if (in_window(v) && graph_->has_edge(first, v) &&
          graph_->has_edge(last, v))
        --total;
    return total;
  }

  auto& lhs = ws.buf_a[depth];
  auto& tmp = ws.buf_b[depth];
  intersect_adjacencies(*graph_, ws.mapped[preds[0]], ws.mapped[preds[1]], lhs);
  for (std::size_t p = 2; p + 1 < preds.size(); ++p) {
    intersect_with_vertex(*graph_, lhs, ws.mapped[preds[p]], tmp);
    std::swap(lhs, tmp);
  }
  if (last_bits != nullptr) {
    total = intersect_size_bitmap_bounded(lhs, last_bits, w.lo_inclusive,
                                          w.hi_exclusive);
  } else {
    total = intersect_size_bounded_adaptive(lhs, last_adj, w.lo_inclusive,
                                            w.hi_exclusive);
  }
  for (VertexId v : used)
    if (in_window(v) && contains(lhs, v) && graph_->has_edge(last, v)) --total;
  return total;
}

Count Matcher::recurse(Workspace& ws, int depth,
                       const EmbeddingCallback* cb) const {
  if (depth == n_ - 1 && cb == nullptr) {
    // Innermost loop of a counting run: no candidate vector is built.
    return count_leaf(ws, depth);
  }

  const auto range = bounded_range(ws, depth, build_candidates(ws, depth));
  Count total = 0;
  for (VertexId v : range) {
    if (already_used(ws, depth, v)) continue;
    ws.mapped[depth] = v;
    if (depth == n_ - 1) {
      ++total;
      VertexId embedding[Pattern::kMaxVertices];
      for (int d = 0; d < n_; ++d)
        embedding[config_.schedule.vertex_at(d)] = ws.mapped[d];
      (*cb)({embedding, static_cast<std::size_t>(n_)});
    } else {
      total += recurse(ws, depth + 1, cb);
    }
  }
  return total;
}

Count Matcher::evaluate_iep_leaf(Workspace& ws) const {
  const int k = config_.iep.k;
  const std::span<const VertexId> used{ws.mapped,
                                       static_cast<std::size_t>(outer_depth_)};

  // Materialize the suffix candidate sets S_0..S_{k-1}, each minus the
  // already-mapped vertices (Figure 6(b): "S1 <- tmpAB - {vA,vB,vC}").
  // These are reused across every IEP term, so they are the only
  // materialization the leaf performs.
  ws.suffix_sets.resize(static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) {
    const int depth = outer_depth_ + s;
    const auto& preds =
        depth_info_[static_cast<std::size_t>(depth)].predecessor_depths;
    auto& set = ws.suffix_sets[static_cast<std::size_t>(s)];
    if (preds.size() == 1) {
      const auto adj = graph_->neighbors(ws.mapped[preds[0]]);
      set.assign(adj.begin(), adj.end());
    } else {
      intersect_adjacencies(*graph_, ws.mapped[preds[0]], ws.mapped[preds[1]],
                            set);
      for (std::size_t p = 2; p < preds.size(); ++p) {
        intersect_with_vertex(*graph_, set, ws.mapped[preds[p]], ws.scratch_a);
        std::swap(set, ws.scratch_a);
      }
    }
    remove_all(set, used);
  }

  // Evaluate the inclusion–exclusion terms (Algorithm 2): every term is a
  // signed product over its blocks of |∩_{i∈B} S_i|. The last step of
  // every block product is size-only; single- and two-set blocks
  // materialize nothing at all.
  SignedWide sum = 0;
  for (const auto& term : config_.iep.terms) {
    SignedWide product = term.coefficient;
    for (const auto& block : term.blocks) {
      if (product == 0) break;
      std::size_t factor = 0;
      if (block.size() == 1) {
        factor = ws.suffix_sets[static_cast<std::size_t>(block[0])].size();
      } else if (block.size() == 2) {
        factor = intersect_size(
            ws.suffix_sets[static_cast<std::size_t>(block[0])],
            ws.suffix_sets[static_cast<std::size_t>(block[1])]);
      } else {
        intersect(ws.suffix_sets[static_cast<std::size_t>(block[0])],
                  ws.suffix_sets[static_cast<std::size_t>(block[1])],
                  ws.scratch_a);
        for (std::size_t b = 2; b + 1 < block.size(); ++b) {
          intersect(ws.scratch_a,
                    ws.suffix_sets[static_cast<std::size_t>(block[b])],
                    ws.scratch_b);
          std::swap(ws.scratch_a, ws.scratch_b);
        }
        factor = intersect_size(
            ws.scratch_a,
            ws.suffix_sets[static_cast<std::size_t>(block.back())]);
      }
      product *= static_cast<SignedWide>(factor);
    }
    sum += product;
  }
  GRAPHPI_CHECK_MSG(sum >= 0, "|S_IEP| is a tuple count and must be >= 0");
  // Per-leaf sums fit 64 bits comfortably (k <= 7 factors of set sizes).
  return static_cast<Count>(sum);
}

Count Matcher::recurse_iep(Workspace& ws, int depth) const {
  if (depth == outer_depth_) return evaluate_iep_leaf(ws);
  const auto range = bounded_range(ws, depth, build_candidates(ws, depth));
  Count total = 0;
  for (VertexId v : range) {
    if (already_used(ws, depth, v)) continue;
    ws.mapped[depth] = v;
    total += recurse_iep(ws, depth + 1);
  }
  return total;
}

Count Matcher::count(Workspace& ws) const {
  invalidate_prefix(ws);
  if (!iep_active_) return recurse(ws, 0, nullptr);
  const Count undivided = recurse_iep(ws, 0);
  GRAPHPI_CHECK_MSG(undivided % config_.iep.divisor == 0,
                    "IEP sum must be divisible by the surviving-"
                    "automorphism factor x");
  return undivided / config_.iep.divisor;
}

Count Matcher::count() const {
  Workspace ws;
  return count(ws);
}

Count Matcher::count_plain(Workspace& ws) const {
  invalidate_prefix(ws);
  return recurse(ws, 0, nullptr);
}

Count Matcher::count_plain() const {
  Workspace ws;
  return count_plain(ws);
}

void Matcher::enumerate(Workspace& ws, const EmbeddingCallback& cb) const {
  invalidate_prefix(ws);
  recurse(ws, 0, &cb);
}

void Matcher::enumerate(const EmbeddingCallback& cb) const {
  Workspace ws;
  enumerate(ws, cb);
}

bool Matcher::apply_prefix(Workspace& ws,
                           std::span<const VertexId> prefix) const {
  GRAPHPI_CHECK(prefix.size() <= static_cast<std::size_t>(n_));
  // Skip the longest prefix this workspace already validated against this
  // matcher — tasks arriving in lexicographic order share their leading
  // positions, whose candidate intersections are the expensive part of
  // prefix validation.
  std::size_t start = 0;
  if (ws.bound_matcher == id_) {
    const std::size_t reusable = std::min(
        static_cast<std::size_t>(ws.applied_depth), prefix.size());
    while (start < reusable && ws.mapped[start] == prefix[start]) ++start;
  } else {
    ws.bound_matcher = id_;
  }
  for (std::size_t d = start; d < prefix.size(); ++d) {
    const VertexId v = prefix[d];
    if (already_used(ws, static_cast<int>(d), v)) {
      ws.applied_depth = static_cast<int>(d);
      return false;
    }
    const auto range =
        bounded_range(ws, static_cast<int>(d),
                      build_candidates(ws, static_cast<int>(d)));
    if (!contains(range, v)) {
      ws.applied_depth = static_cast<int>(d);
      return false;
    }
    ws.mapped[d] = v;
  }
  ws.applied_depth = static_cast<int>(prefix.size());
  return true;
}

Count Matcher::count_from_prefix(Workspace& ws,
                                 std::span<const VertexId> prefix) const {
  if (!apply_prefix(ws, prefix)) return 0;
  const int depth = static_cast<int>(prefix.size());
  if (!iep_active_) {
    if (depth == n_) return 1;
    return recurse(ws, depth, nullptr);
  }
  GRAPHPI_CHECK_MSG(depth <= outer_depth_,
                    "prefix must not extend into the IEP suffix");
  // Undivided on purpose: only the global total is divisible by x.
  return depth == outer_depth_ ? evaluate_iep_leaf(ws)
                               : recurse_iep(ws, depth);
}

Count Matcher::count_from_prefix(std::span<const VertexId> prefix) const {
  Workspace ws;
  return count_from_prefix(ws, prefix);
}

Count Matcher::finalize_partial_counts(Count aggregated) const {
  if (!iep_active_) return aggregated;
  GRAPHPI_CHECK_MSG(aggregated % config_.iep.divisor == 0,
                    "aggregated IEP sum must be divisible by the surviving-"
                    "automorphism factor x");
  return aggregated / config_.iep.divisor;
}

void Matcher::enumerate_from_prefix(Workspace& ws,
                                    std::span<const VertexId> prefix,
                                    const EmbeddingCallback& cb) const {
  GRAPHPI_CHECK_MSG(!iep_active_,
                    "IEP configurations cannot list embeddings");
  if (!apply_prefix(ws, prefix)) return;
  const int depth = static_cast<int>(prefix.size());
  if (depth == n_) {
    VertexId embedding[Pattern::kMaxVertices];
    for (int d = 0; d < n_; ++d)
      embedding[config_.schedule.vertex_at(d)] = ws.mapped[d];
    cb({embedding, static_cast<std::size_t>(n_)});
    return;
  }
  recurse(ws, depth, &cb);
}

void Matcher::enumerate_from_prefix(std::span<const VertexId> prefix,
                                    const EmbeddingCallback& cb) const {
  Workspace ws;
  enumerate_from_prefix(ws, prefix, cb);
}

void Matcher::enumerate_prefixes(
    Workspace& ws, int depth,
    const std::function<void(std::span<const VertexId>)>& cb) const {
  GRAPHPI_CHECK(depth >= 1 && depth <= outer_depth_);
  invalidate_prefix(ws);
  // Iterative-in-recursion: reuse recurse() shape but stop at `depth`.
  const std::function<void(int)> walk = [&](int d) {
    const auto range = bounded_range(ws, d, build_candidates(ws, d));
    for (VertexId v : range) {
      if (already_used(ws, d, v)) continue;
      ws.mapped[d] = v;
      if (d + 1 == depth) {
        cb({ws.mapped, static_cast<std::size_t>(depth)});
      } else {
        walk(d + 1);
      }
    }
  };
  walk(0);
}

void Matcher::enumerate_prefixes(
    int depth, const std::function<void(std::span<const VertexId>)>& cb) const {
  Workspace ws;
  enumerate_prefixes(ws, depth, cb);
}

Count count_embeddings(const Graph& graph, const Configuration& config) {
  return Matcher(graph, config).count();
}

Count count_embeddings(const Graph& graph, const Pattern& pattern,
                       bool use_iep) {
  PlannerOptions options;
  options.use_iep = use_iep;
  const Configuration config =
      plan_configuration(pattern, GraphStats::of(graph), options);
  return Matcher(graph, config).count();
}

}  // namespace graphpi
