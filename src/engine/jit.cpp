#include "engine/jit.h"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "codegen/codegen.h"
#include "core/pattern_canon.h"
#include "support/check.h"
#include "support/metrics.h"
#include "support/timer.h"
#include "support/trace.h"

namespace graphpi::jit {

namespace fs = std::filesystem;

namespace {

/// Exported symbol names of every cached kernel (the function name is
/// fixed; the artifact file name carries the key).
constexpr const char* kEntrySymbol = "graphpi_kernel_batch";

bool jit_disabled() { return std::getenv("GRAPHPI_JIT_DISABLE") != nullptr; }

/// Probes `cmd --version` quietly.
bool compiler_works(const std::string& cmd) {
  if (cmd.empty()) return false;
  const std::string probe = cmd + " --version > /dev/null 2>&1";
  return std::system(probe.c_str()) == 0;
}

const std::string& probed_compiler() {
  static const std::string compiler = [] {
    for (const char* env : {"GRAPHPI_CXX", "CXX"}) {
      if (const char* c = std::getenv(env); c != nullptr && compiler_works(c))
        return std::string(c);
    }
    for (const char* candidate : {"c++", "g++", "clang++"})
      if (compiler_works(candidate)) return std::string(candidate);
    return std::string();
  }();
  return compiler;
}

/// Shell-quotes a path for the std::system compile line (cache dirs may
/// contain spaces; metacharacters must not reach the shell).
std::string quoted(const fs::path& p) {
  std::string out = "'";
  for (char c : p.string()) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += '\'';
  return out;
}

/// FNV-1a over the emitted source — the exact fingerprint of the plan
/// semantics (schedules, windows, IEP terms) the kernel implements.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Human-auditable key prefix: a second hash over the canonical pattern
/// strings, so artifacts of the same pattern set sort together on disk.
std::uint64_t pattern_set_hash(const PlanForest& forest) {
  std::ostringstream oss;
  for (const Plan& plan : forest.plans())
    oss << canonical_string(plan.pattern) << ';';
  return fnv1a(oss.str());
}

}  // namespace

bool compiler_available() {
  return !jit_disabled() && !probed_compiler().empty();
}

const std::string& compiler_command() { return probed_compiler(); }

struct KernelCache::Entry {
  GeneratedBatchFn fn = nullptr;  ///< nullptr = remembered failure
};

struct KernelCache::Impl {
  std::mutex mutex;
  std::unordered_map<std::uint64_t, Entry> entries;
  Stats stats;
};

KernelCache& KernelCache::instance() {
  static KernelCache cache;
  return cache;
}

KernelCache::KernelCache() : impl_(new Impl) {
  if (const char* dir = std::getenv("GRAPHPI_KERNEL_CACHE_DIR");
      dir != nullptr) {
    dir_ = dir;
  } else {
    std::error_code ec;
    const fs::path tmp = fs::temp_directory_path(ec);
    dir_ = (ec ? fs::path("/tmp") : tmp) / "graphpi-kernel-cache";
  }
}

GeneratedBatchFn KernelCache::get(const PlanForest& forest) {
  if (!compiler_available()) return nullptr;
  const support::trace::Span span("jit.cache.get");

  codegen::CodegenOptions opt;
  opt.function_name = kEntrySymbol;
  const std::string source = codegen::generate_forest_source(forest, opt);
  const std::uint64_t key = fnv1a(source);

  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (const auto it = impl_->entries.find(key);
        it != impl_->entries.end()) {
      if (it->second.fn != nullptr) {
        ++impl_->stats.memory_hits;
        support::metrics::metric_counter("jit.cache.memory_hits").inc();
      }
      return it->second.fn;
    }
  }

  // Build with the lock RELEASED: a cold compile takes seconds and must
  // not stall other threads' memory hits. Two threads racing on the same
  // key do benign duplicate work — the .so is published by atomic rename
  // (identical content either way) and the first map insert below wins.
  char stem[64];
  std::snprintf(stem, sizeof stem, "graphpi_%016llx_%016llx",
                static_cast<unsigned long long>(pattern_set_hash(forest)),
                static_cast<unsigned long long>(key));
  std::error_code ec;
  fs::create_directories(dir_, ec);
  const fs::path so = fs::path(dir_) / (std::string(stem) + ".so");
  const fs::path cpp = fs::path(dir_) / (std::string(stem) + ".cpp");

  const auto load = [&](bool fresh_build) -> GeneratedBatchFn {
    void* handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle == nullptr) return nullptr;
    // Refuse kernels emitted under a different ABI layout (stale disk
    // artifacts from an older build).
    using AbiFn = unsigned (*)();
    const auto abi = reinterpret_cast<AbiFn>(
        dlsym(handle, (std::string(kEntrySymbol) + "_abi").c_str()));
    if (abi == nullptr || abi() != codegen::kKernelAbiVersion) {
      dlclose(handle);
      if (!fresh_build) fs::remove(so, ec);  // evict, then recompile
      return nullptr;
    }
    // The handle stays open for the process lifetime: returned function
    // pointers may be in flight on other threads.
    return reinterpret_cast<GeneratedBatchFn>(dlsym(handle, kEntrySymbol));
  };

  GeneratedBatchFn fn = nullptr;
  bool disk_hit = false;
  bool compiled = false;

  if (fs::exists(so, ec)) {
    fn = load(/*fresh_build=*/false);
    disk_hit = fn != nullptr;
  }

  if (fn == nullptr) {
    // Compile: write source and object under attempt-unique temp names,
    // publish both by atomic rename. Threads racing the same key (and
    // concurrent processes) then never write one path from two writers —
    // the losers just overwrite identical published bytes.
    compiled = true;
    static std::atomic<std::uint64_t> attempt_counter{0};
    const std::string attempt =
        ".tmp" + std::to_string(static_cast<long>(::getpid())) + "_" +
        std::to_string(
            attempt_counter.fetch_add(1, std::memory_order_relaxed));
    const fs::path tmp_cpp =
        fs::path(dir_) / (std::string(stem) + attempt + ".cpp");
    const fs::path tmp_so =
        fs::path(dir_) / (std::string(stem) + attempt + ".so");
    const fs::path log = fs::path(dir_) / (std::string(stem) + attempt +
                                           ".log");
    std::ofstream out(tmp_cpp);
    out << source;
    out.close();
    if (!out) {
      fs::remove(tmp_cpp, ec);
      return record_result(key, nullptr, disk_hit, compiled);
    }
    const std::string base = probed_compiler() +
                             " -O2 -std=c++17 -shared -fPIC -o " +
                             quoted(tmp_so) + " " + quoted(tmp_cpp);
    // Prefer an OpenMP build (parallel root loop); the emitted source
    // degrades to its serial loop under compilers without -fopenmp, so a
    // failed first attempt falls back to a plain build.
    const support::trace::Span compile_span("jit.compile");
    const support::Timer compile_timer;
    const bool compile_failed =
        std::system((base + " -fopenmp 2> " + quoted(log)).c_str()) != 0 &&
        std::system((base + " 2> " + quoted(log)).c_str()) != 0;
    if (support::metrics::enabled())
      support::metrics::metric_histogram("jit.compile_ms")
          .observe(compile_timer.elapsed_millis());
    if (compile_failed) {
      // Keep tmp_cpp and the log: the diagnostics reference that source,
      // and the remembered in-memory failure means this pair is written
      // at most once per key per process.
      fs::remove(tmp_so, ec);
      return record_result(key, nullptr, disk_hit, compiled);
    }
    fs::rename(tmp_so, so, ec);
    if (ec) {
      fs::remove(tmp_cpp, ec);
      fs::remove(tmp_so, ec);
      fs::remove(log, ec);
      return record_result(key, nullptr, disk_hit, compiled);
    }
    // Keep the human-auditable source next to the published .so; the
    // rename is cosmetic, so on failure just drop the temp copy.
    std::error_code cpp_ec;
    fs::rename(tmp_cpp, cpp, cpp_ec);
    if (cpp_ec) fs::remove(tmp_cpp, ec);
    fs::remove(log, ec);
    fn = load(/*fresh_build=*/true);
  }
  return record_result(key, fn, disk_hit, compiled);
}

GeneratedBatchFn KernelCache::record_result(std::uint64_t key,
                                            GeneratedBatchFn fn,
                                            bool disk_hit, bool compiled) {
  using support::metrics::metric_counter;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (disk_hit) {
    ++impl_->stats.disk_hits;
    metric_counter("jit.cache.disk_hits").inc();
  }
  if (compiled) {
    ++impl_->stats.compiles;
    metric_counter("jit.cache.compiles").inc();
  }
  if (fn == nullptr && compiled) {
    ++impl_->stats.failures;
    metric_counter("jit.cache.failures").inc();
  }
  const auto [it, inserted] = impl_->entries.emplace(key, Entry{fn});
  if (!inserted && it->second.fn == nullptr) it->second.fn = fn;
  return it->second.fn;  // first successful publisher wins
}

KernelCache::Stats KernelCache::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->stats;
}

std::optional<std::vector<Count>> run_generated(const Graph& graph,
                                                const PlanForest& forest,
                                                int threads,
                                                const support::ExecControl* control,
                                                support::RunReport* report) {
  GeneratedBatchFn fn = KernelCache::instance().get(forest);
  if (fn == nullptr) return std::nullopt;
  const support::trace::Span span("generated.run");
  // Mirror the interpreter: build the hub index when any plan hints it,
  // so the kernel's hub-probing branches engage.
  for (const Plan& plan : forest.plans())
    if (plan.wants_hub_index) {
      graph.ensure_hub_index();
      break;
    }
  const codegen::KernelGraph view = codegen::make_kernel_graph(graph);
  codegen::KernelRunOptions run;
  run.threads = threads;
  std::uint64_t completed = 0;
  std::int32_t reason = 0;
  run.completed_roots = &completed;
  run.stop_reason = &reason;

  // Bounded execution over the v3 ABI: budget and stride pass straight
  // through; deadlines and the caller's cancel flag become a host
  // watchdog thread flipping the kernel's cancel cell, because generated
  // code polls a memory cell per stride instead of reading clocks.
  const support::ExecControl* ctl =
      control != nullptr && control->armed() ? control : nullptr;
  std::atomic<std::int32_t> cancel_cell{0};
  std::thread watchdog;
  std::mutex watchdog_mutex;
  std::condition_variable watchdog_cv;
  bool kernel_finished = false;
  int fired = 0;  // 1 = deadline, 2 = caller's cancel flag
  if (ctl != nullptr) {
    run.poll_stride = ctl->poll_stride();
    run.root_budget = ctl->root_budget();
    if (ctl->has_deadline() || ctl->cancel_flag() != nullptr) {
      run.cancel = reinterpret_cast<const volatile std::int32_t*>(&cancel_cell);
      watchdog = std::thread([&] {
        std::unique_lock<std::mutex> lock(watchdog_mutex);
        for (;;) {
          if (kernel_finished) return;
          if (ctl->cancel_flag() != nullptr &&
              ctl->cancel_flag()->load(std::memory_order_relaxed)) {
            fired = 2;
            break;
          }
          if (ctl->has_deadline() &&
              support::ExecControl::Clock::now() >= ctl->deadline()) {
            fired = 1;
            break;
          }
          // Sleep exactly to the deadline when that is the only trigger;
          // otherwise wake ~1ms to notice the caller's flag promptly.
          auto wake =
              support::ExecControl::Clock::now() + std::chrono::milliseconds(1);
          if (ctl->has_deadline() && ctl->cancel_flag() == nullptr)
            wake = ctl->deadline();
          else if (ctl->has_deadline() && ctl->deadline() < wake)
            wake = ctl->deadline();
          watchdog_cv.wait_until(lock, wake);
        }
        cancel_cell.store(1, std::memory_order_relaxed);
      });
    }
  }

  std::vector<unsigned long long> counts(forest.plans().size(), 0);
  fn(&view, &codegen::host_kernel_ops(), &run, counts.data());

  if (watchdog.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(watchdog_mutex);
      kernel_finished = true;
    }
    watchdog_cv.notify_all();
    watchdog.join();
  }
  support::RunStatus status = support::RunStatus::kOk;
  if (reason == 2) {
    status = support::RunStatus::kBudget;
  } else if (reason == 1) {
    status = fired == 2 ? support::RunStatus::kCancelled
                        : support::RunStatus::kTimeout;
  }
  if (report != nullptr) {
    report->completed_roots = completed;
    report->status = status;
  }
  support::observe_run_status(status);
  {
    using support::metrics::Counter;
    using support::metrics::metric_counter;
    static Counter& c_runs = metric_counter("generated.runs");
    static Counter& c_roots = metric_counter("generated.roots_completed");
    c_runs.inc();
    c_roots.inc(completed);
  }
  return std::vector<Count>(counts.begin(), counts.end());
}

}  // namespace graphpi::jit
