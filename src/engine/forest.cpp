#include "engine/forest.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <array>

#include "engine/plan_exec.h"
#include "graph/vertex_set.h"
#include "support/check.h"
#include "support/metrics.h"

namespace graphpi {

namespace {

using PlanMask = PlanForest::PlanMask;

std::atomic<std::uint64_t> g_next_executor_id{1};  // 0 = workspace unbound

}  // namespace

ResolvedBranches resolve_branches(const VertexId* mapped,
                                  const PlanForest::Extension& ext,
                                  PlanForest::PlanMask active) {
  ResolvedBranches rb;
  for (const PlanForest::Branch& branch : ext.branches) {
    const PlanForest::PlanMask m = branch.mask & active;
    if (m == 0) continue;
    const exec::Window w = exec::bounded_window(mapped, branch);
    if (w.empty()) continue;
    rb.windows[rb.live] = w;
    rb.masks[rb.live] = m;
    ++rb.live;
    rb.union_window.lo_inclusive =
        std::min(rb.union_window.lo_inclusive, w.lo_inclusive);
    rb.union_window.hi_exclusive =
        std::max(rb.union_window.hi_exclusive, w.hi_exclusive);
  }
  return rb;
}

ForestExecutor::ForestExecutor(const Graph& graph, const PlanForest& forest)
    : graph_(&graph),
      forest_(&forest),
      id_(g_next_executor_id.fetch_add(1, std::memory_order_relaxed)) {
  for (const Plan& plan : forest.plans())
    if (plan.wants_hub_index) {
      graph.ensure_hub_index();
      break;
    }
}

namespace {

/// Packs the (at most two) memo-key mapped values into one exact 64-bit
/// key — no hashing ambiguity, so a hit is always the right value.
std::uint64_t memo_key(const VertexId* mapped, std::span<const int> depths) {
  std::uint64_t key = 0;
  for (int d : depths) key = (key << 32) | mapped[d];
  return key;
}

}  // namespace

Count ForestExecutor::memoized_raw_count(Workspace& ws, int memo_id,
                                         std::span<const int> key_depths,
                                         std::span<const int> preds,
                                         std::span<const VertexId> mapped,
                                         VertexId lo, VertexId hi) const {
  auto& table = ws.memo[static_cast<std::size_t>(memo_id)];
  const int depth = static_cast<int>(mapped.size());
  // Cheap intersections (small adjacency sums, L1-resident) beat a cold
  // table slot; only expensive ones are worth remembering.
  std::size_t work = 0;
  for (int p : preds) work += graph_->degree(mapped[p]);
  const std::uint64_t key = memo_key(ws.mapped, key_depths);
  if (table.disabled || work < kMemoMinWork || key == kMemoEmptyKey)
    return exec::count_intersection_bounded(*graph_, preds, mapped, lo, hi,
                                            ws.cand[depth], ws.tmp[depth]);
  if (table.keys.empty()) {
    // Size to the key space: a d-depth key can take at most |V|^d values,
    // so small graphs get small tables (kMemoSlots caps the footprint).
    std::size_t space = 1;
    for (std::size_t i = 0; i < key_depths.size() && space < kMemoSlots; ++i)
      space *= graph_->vertex_count();
    table.keys.assign(std::bit_ceil(std::min(space, kMemoSlots)),
                      kMemoEmptyKey);
    table.values.resize(table.keys.size());
  }
  // Locality-aware slot map: the low key half is the innermost-varying
  // mapped value, which scans *sorted* adjacency lists — keeping slots
  // linear in it turns table probes into near-sequential memory access.
  // The outer half is scattered multiplicatively to separate subtrees.
  const std::size_t slot =
      (static_cast<std::size_t>(key & 0xffffffffu) +
       static_cast<std::size_t>(static_cast<std::uint32_t>(key >> 32) *
                                0x9E3779B9u)) &
      (table.keys.size() - 1);
  ++table.probes;
  if (table.keys[slot] == key) {
    ++table.hits;
    return table.values[slot];
  }
  const Count raw = exec::count_intersection_bounded(
      *graph_, preds, mapped, lo, hi, ws.cand[depth], ws.tmp[depth]);
  table.keys[slot] = key;
  table.values[slot] = raw;
  if (table.probes - table.last_review_probes >= kMemoProbeWindow) {
    // Review the last window (misses reach here often enough that the
    // window overshoots by at most a few hits): a table whose keys are
    // not repeating on this graph stops paying for itself.
    const std::uint64_t window_probes = table.probes - table.last_review_probes;
    const std::uint64_t window_hits = table.hits - table.last_review_hits;
    if (window_hits * kMemoMinHitDen < window_probes * kMemoMinHitNum) {
      table.disabled = true;
      table.keys = {};
      table.values = {};
    }
    table.last_review_probes = table.probes;
    table.last_review_hits = table.hits;
  }
  return raw;
}

void ForestExecutor::eval_leaves(Workspace& ws, const PlanForest::Node& node,
                                 PlanMask active) const {
  const int depth = node.depth;
  const std::span<const VertexId> mapped{ws.mapped,
                                         static_cast<std::size_t>(depth)};

  for (const PlanForest::CountLeaf& leaf : node.count_leaves) {
    if (((active >> leaf.plan) & 1) == 0) continue;
    const exec::Window w = exec::bounded_window(ws.mapped, leaf);
    if (w.empty()) continue;
    const Count raw =
        leaf.memo_id >= 0
            ? memoized_raw_count(ws, leaf.memo_id, leaf.memo_key_depths,
                                 leaf.predecessor_depths, mapped,
                                 w.lo_inclusive, w.hi_exclusive)
            : exec::count_intersection_bounded(
                  *graph_, leaf.predecessor_depths, mapped, w.lo_inclusive,
                  w.hi_exclusive, ws.cand[depth], ws.tmp[depth]);
    ws.sums[static_cast<std::size_t>(leaf.plan)] +=
        raw - exec::count_used_in_intersection(*graph_,
                                               leaf.predecessor_depths, mapped,
                                               w.lo_inclusive, w.hi_exclusive);
  }

  if (node.iep_leaves.empty()) return;
  // Materialize each suffix candidate set some active plan consumes —
  // once, however many S_i across however many leaves read it.
  if (ws.suffix_sets.size() < node.suffix_defs.size())
    ws.suffix_sets.resize(node.suffix_defs.size());
  for (std::size_t i = 0; i < node.suffix_defs.size(); ++i)
    if ((node.suffix_def_masks[i] & active) != 0)
      exec::build_suffix_set(*graph_, node.suffix_defs[i], mapped,
                             ws.suffix_sets[i], ws.scratch_a);
  for (const PlanForest::IepLeaf& leaf : node.iep_leaves) {
    if (((active >> leaf.plan) & 1) == 0) continue;
    if (leaf.memo_id >= 0) {
      // k == 1: the term sum is |S_0|; memoize the raw intersection and
      // correct for used vertices outside the memo.
      const auto& def =
          node.suffix_defs[static_cast<std::size_t>(leaf.set_ids[0])];
      const Count raw =
          memoized_raw_count(ws, leaf.memo_id, leaf.memo_key_depths, def,
                             mapped, 0, kNoVertexBound);
      ws.sums[static_cast<std::size_t>(leaf.plan)] +=
          raw - exec::count_used_in_intersection(*graph_, def, mapped, 0,
                                                 kNoVertexBound);
      ++ws.iep_terms;  // the memoized k == 1 plan has exactly one term
      continue;
    }
    const Plan& plan = forest_->plans()[static_cast<std::size_t>(leaf.plan)];
    ws.sums[static_cast<std::size_t>(leaf.plan)] +=
        exec::evaluate_iep_terms(plan.iep.terms, ws.suffix_sets, leaf.set_ids,
                                 ws.scratch_a, ws.scratch_b);
    ws.iep_terms += plan.iep.terms.size();
  }
}

void ForestExecutor::exec_node(Workspace& ws, const PlanForest::Node& node,
                               PlanMask active) const {
  // Leaves first: they may use cand[depth]/tmp[depth], which the
  // extension loop below rebuilds.
  if (!node.count_leaves.empty() || !node.iep_leaves.empty())
    eval_leaves(ws, node, active);

  const int depth = node.depth;
  const std::span<const VertexId> mapped{ws.mapped,
                                         static_cast<std::size_t>(depth)};
  for (const PlanForest::Extension& ext : node.extensions) {
    if ((ext.mask & active) == 0) continue;
    const PlanForest::Node& child =
        forest_->nodes()[static_cast<std::size_t>(ext.child)];

    // Resolve each active branch's restriction window under the current
    // mapping; the loop runs over the union window and narrows the
    // active-plan mask per candidate, so plans differing only in
    // restrictions share the intersection built below.
    const ResolvedBranches rb = resolve_branches(ws.mapped, ext, active);
    if (rb.live == 0) continue;

    std::span<const VertexId> cands;
    if (ext.reuse_suffix_def >= 0 &&
        (node.suffix_def_masks[static_cast<std::size_t>(
             ext.reuse_suffix_def)] &
         active) != 0) {
      // eval_leaves just materialized this intersection as a shared IEP
      // suffix set; copy it (child recursion reuses the suffix slots) —
      // cheaper than re-intersecting, and the removed used vertices
      // would be skipped by the loop anyway.
      const auto& set =
          ws.suffix_sets[static_cast<std::size_t>(ext.reuse_suffix_def)];
      ws.cand[depth].assign(set.begin(), set.end());
      cands = ws.cand[depth];
    } else {
      cands = exec::build_candidates(*graph_, ext.predecessor_depths, mapped,
                                     ws.cand[depth], ws.tmp[depth],
                                     ws.all_vertices);
    }
    const auto range =
        rb.union_window.unbounded()
            ? cands
            : trim_to_window(cands, rb.union_window.lo_inclusive,
                             rb.union_window.hi_exclusive);
    if (rb.live == 1) {
      // Common case: one distinct window — the trim above already applied
      // it, so no per-vertex checks are needed.
      const PlanMask next = rb.masks[0];
      for (VertexId v : range) {
        if (exec::already_used(mapped, v)) continue;
        ws.mapped[depth] = v;
        exec_node(ws, child, next);
      }
      continue;
    }
    for (VertexId v : range) {
      const PlanMask next = rb.mask_at(v);
      if (next == 0 || exec::already_used(mapped, v)) continue;
      ws.mapped[depth] = v;
      exec_node(ws, child, next);
    }
  }
}

void ForestExecutor::reset(Workspace& ws) const {
  ws.sums.assign(forest_->plans().size(), 0);
  if (ws.bound_executor != id_) {
    // Memo keys are only meaningful for the executor that wrote them.
    ws.memo.clear();
    ws.bound_executor = id_;
  }
  if (ws.memo.size() < forest_->stats().memoized_leaves)
    ws.memo.resize(forest_->stats().memoized_leaves);
}

void ForestExecutor::accumulate_root(Workspace& ws, VertexId v0) const {
  const PlanForest::Node& root = forest_->root();
  GRAPHPI_CHECK_MSG(root.count_leaves.empty(),
                    "accumulate_root requires plans with >= 2 vertices");
  // Root extensions are always unconstrained (no predecessors or bounds
  // can reference depth < 0), so any v0 is a valid depth-0 assignment.
  for (const PlanForest::Extension& ext : root.extensions) {
    ws.mapped[0] = v0;
    exec_node(ws, forest_->nodes()[static_cast<std::size_t>(ext.child)],
              ext.mask & forest_->all_plans_mask());
  }
}

std::vector<Count> ForestExecutor::finalize(
    std::span<const Count> sums) const {
  const auto& plans = forest_->plans();
  GRAPHPI_CHECK(sums.size() == plans.size());
  std::vector<Count> out(sums.begin(), sums.end());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    if (!plans[i].iep_active()) continue;
    GRAPHPI_CHECK_MSG(out[i] % plans[i].iep.divisor == 0,
                      "IEP sum must be divisible by the surviving-"
                      "automorphism factor x");
    out[i] /= plans[i].iep.divisor;
  }
  return out;
}

std::vector<Count> ForestExecutor::count(Workspace& ws) const {
  reset(ws);
  support::metrics::metric_counter("engine.forest.runs").inc();
  exec_node(ws, forest_->root(), forest_->all_plans_mask());
  // The depth-0 candidate loop scans every vertex exactly once.
  flush_metrics(ws, graph_->vertex_count());
  return finalize(ws.sums);
}

ForestExecutor::MemoStats ForestExecutor::memo_stats(
    const Workspace& ws) noexcept {
  MemoStats stats;
  for (const Workspace::MemoTable& table : ws.memo) {
    stats.lookups += table.probes;
    stats.hits += table.hits;
    if (table.disabled) ++stats.shutoffs;
  }
  return stats;
}

void ForestExecutor::flush_metrics(Workspace& ws, std::uint64_t roots) const {
  using support::metrics::Counter;
  using support::metrics::metric_counter;
  static Counter& c_roots = metric_counter("engine.forest.roots_completed");
  static Counter& c_lookups = metric_counter("engine.memo.lookups");
  static Counter& c_hits = metric_counter("engine.memo.hits");
  static Counter& c_shutoffs = metric_counter("engine.memo.shutoffs");
  static Counter& c_iep = metric_counter("engine.iep.terms_evaluated");
  if (roots != 0) c_roots.inc(roots);
  // Deltas against the workspace's last flush; a cleared memo (executor
  // rebind) makes `now < mark`, in which case the totals restart.
  const auto delta = [](std::uint64_t now, std::uint64_t& mark) {
    const std::uint64_t d = now >= mark ? now - mark : now;
    mark = now;
    return d;
  };
  const MemoStats now = memo_stats(ws);
  c_lookups.inc(delta(now.lookups, ws.metrics_mark.lookups));
  c_hits.inc(delta(now.hits, ws.metrics_mark.hits));
  c_shutoffs.inc(delta(now.shutoffs, ws.metrics_mark.shutoffs));
  c_iep.inc(delta(ws.iep_terms, ws.metrics_mark.iep_terms));
}

std::vector<Count> ForestExecutor::finalize_partial(
    std::span<const Count> sums) const {
  const auto& plans = forest_->plans();
  GRAPHPI_CHECK(sums.size() == plans.size());
  std::vector<Count> out(sums.begin(), sums.end());
  for (std::size_t i = 0; i < plans.size(); ++i)
    if (plans[i].iep_active()) out[i] /= plans[i].iep.divisor;
  return out;
}

std::vector<Count> ForestExecutor::count_roots(
    Workspace& ws, std::span<const VertexId> roots,
    const support::ExecControl* control, support::RunReport* report) const {
  reset(ws);
  support::metrics::metric_counter("engine.forest.runs").inc();
  support::PollGate gate(control);
  for (VertexId v0 : roots) {
    accumulate_root(ws, v0);
    if (gate.completed_unit() != support::RunStatus::kOk) break;
  }
  if (report != nullptr) {
    report->status = gate.status();
    report->completed_roots = gate.done();
  }
  support::observe_run_status(gate.status());
  flush_metrics(ws, gate.done());
  return gate.status() == support::RunStatus::kOk ? finalize(ws.sums)
                                                  : finalize_partial(ws.sums);
}

std::vector<Count> ForestExecutor::count() const {
  Workspace ws;
  return count(ws);
}

}  // namespace graphpi
