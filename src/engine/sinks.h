// Embedding sinks: reusable consumers for the listing API.
//
// `Matcher::enumerate` streams embeddings through a callback; these sinks
// package the common consumption patterns (counting, bounded collection,
// uniform sampling, streaming to text) so applications do not re-implement
// them. All sinks expose `callback()` returning an EmbeddingCallback.
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <vector>

#include "engine/matcher.h"
#include "graph/types.h"
#include "support/rng.h"

namespace graphpi::sinks {

/// Counts embeddings (the trivial sink; prefer Matcher::count when no
/// listing side effects are needed).
class CountingSink {
 public:
  [[nodiscard]] EmbeddingCallback callback() {
    return [this](std::span<const VertexId>) { ++count_; };
  }
  [[nodiscard]] Count count() const noexcept { return count_; }

 private:
  Count count_ = 0;
};

/// Collects at most `limit` embeddings (the first ones encountered),
/// counting the rest.
class LimitSink {
 public:
  explicit LimitSink(std::size_t limit) : limit_(limit) {}

  [[nodiscard]] EmbeddingCallback callback() {
    return [this](std::span<const VertexId> emb) {
      ++total_;
      if (collected_.size() < limit_)
        collected_.emplace_back(emb.begin(), emb.end());
    };
  }
  [[nodiscard]] const std::vector<std::vector<VertexId>>& collected()
      const noexcept {
    return collected_;
  }
  [[nodiscard]] Count total() const noexcept { return total_; }

 private:
  std::size_t limit_;
  Count total_ = 0;
  std::vector<std::vector<VertexId>> collected_;
};

/// Uniform reservoir sample of `k` embeddings (Vitter's algorithm R):
/// every embedding of the stream ends up in the sample with equal
/// probability, without storing the stream. Deterministic per seed.
class ReservoirSink {
 public:
  ReservoirSink(std::size_t k, std::uint64_t seed) : k_(k), rng_(seed) {}

  [[nodiscard]] EmbeddingCallback callback() {
    return [this](std::span<const VertexId> emb) {
      ++seen_;
      if (sample_.size() < k_) {
        sample_.emplace_back(emb.begin(), emb.end());
      } else {
        const std::uint64_t j = rng_.bounded(seen_);
        if (j < k_)
          sample_[static_cast<std::size_t>(j)].assign(emb.begin(),
                                                      emb.end());
      }
    };
  }
  [[nodiscard]] const std::vector<std::vector<VertexId>>& sample()
      const noexcept {
    return sample_;
  }
  [[nodiscard]] Count seen() const noexcept { return seen_; }

 private:
  std::size_t k_;
  support::Xoshiro256StarStar rng_;
  Count seen_ = 0;
  std::vector<std::vector<VertexId>> sample_;
};

/// Writes embeddings as whitespace-separated vertex lines to a stream.
class TextSink {
 public:
  explicit TextSink(std::ostream& out) : out_(&out) {}

  [[nodiscard]] EmbeddingCallback callback() {
    return [this](std::span<const VertexId> emb) {
      for (std::size_t i = 0; i < emb.size(); ++i)
        *out_ << (i ? " " : "") << emb[i];
      *out_ << '\n';
      ++count_;
    };
  }
  [[nodiscard]] Count count() const noexcept { return count_; }

 private:
  std::ostream* out_;
  Count count_ = 0;
};

}  // namespace graphpi::sinks
