#include "engine/graphzero.h"

#include <bit>
#include <limits>

#include "engine/matcher.h"
#include "support/check.h"

namespace graphpi::graphzero {

RestrictionSet restriction_set(const Pattern& pattern) {
  // Deterministic first branch of the 2-cycle elimination recursion: the
  // single symmetry-breaking set a GraphZero-style generator emits.
  RestrictionGenOptions options;
  options.max_sets = 1;
  const auto sets = generate_restriction_sets(pattern, options);
  return sets.front();
}

double estimate_cost(const Pattern& pattern, const Schedule& schedule,
                     const GraphStats& stats) {
  // AutoMine-style estimator: candidate-set cardinalities are extrapolated
  // from edge density alone (|V| * p1^m for the intersection of m
  // neighborhoods) and restrictions are invisible (f_i = 0).
  const int n = pattern.size();
  const double v = stats.vertices;
  const double p1 = stats.p1();

  auto cardinality = [&](int m) {
    if (m <= 0) return v;
    double c = v;
    for (int j = 0; j < m; ++j) c *= p1;
    return c;
  };

  double cost = 0.0;
  for (int d = n - 1; d >= 0; --d) {
    std::uint32_t placed = 0;
    for (int e = 0; e < d; ++e) placed |= 1u << schedule.vertex_at(e);
    const int m =
        std::popcount(pattern.neighbor_mask(schedule.vertex_at(d)) & placed);
    const double l = cardinality(m);
    cost = d == n - 1 ? l : l * (1.0 + cost);
  }
  return cost;
}

Schedule select_schedule(const Pattern& pattern, const GraphStats& stats) {
  const auto generated = generate_schedules(pattern);
  GRAPHPI_CHECK(!generated.phase1.empty());
  const Schedule* best = nullptr;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& sched : generated.phase1) {
    const double c = estimate_cost(pattern, sched, stats);
    if (c < best_cost) {
      best_cost = c;
      best = &sched;
    }
  }
  return *best;
}

Configuration plan(const Pattern& pattern, const GraphStats& stats) {
  Configuration config;
  config.pattern = pattern;
  config.schedule = select_schedule(pattern, stats);
  config.restrictions = restriction_set(pattern);
  config.predicted_cost = estimate_cost(pattern, config.schedule, stats);
  return config;
}

Count count(const Graph& graph, const Pattern& pattern) {
  const Configuration config = plan(pattern, GraphStats::of(graph));
  return Matcher(graph, config).count_plain();
}

}  // namespace graphpi::graphzero
