// OpenMP parallel matching engine (the intra-node half of Section IV-E).
//
// Work is partitioned at the granularity of valid outer-loop prefixes —
// the same fine-grained tasks the distributed master packs — and scheduled
// dynamically so that power-law degree skew does not starve threads.
#pragma once

#include <cstdint>
#include <vector>

#include "core/configuration.h"
#include "core/plan_forest.h"
#include "engine/matcher.h"
#include "graph/graph.h"
#include "support/exec_control.h"

namespace graphpi {

struct ParallelOptions {
  /// Schedule depth of one task (1 = outermost loop only; 2 = pairs, the
  /// paper's example for the House pattern). Clamped to the number of
  /// outer loops when IEP is active.
  int task_depth = 1;
  /// OpenMP threads; 0 = runtime default.
  int num_threads = 0;
};

/// Per-run load statistics (consumed by the scalability analysis).
struct ParallelRunStats {
  std::uint64_t tasks = 0;
  /// Scheduling granules: contiguous runs of tasks sharing their depth-1
  /// prefix (capped in length). Workers claim whole groups so consecutive
  /// tasks reuse the workspace's already-applied prefix intersections.
  std::uint64_t task_groups = 0;
  std::vector<std::uint64_t> per_thread_tasks;
  std::vector<double> per_thread_seconds;
};

/// Counts embeddings of `config` on `graph` using OpenMP. Exactly equal to
/// Matcher::count() (asserted by tests).
///
/// An armed `control` is polled cooperatively by every worker once per
/// claimed task group (groups are capped at 64 tasks, so the granularity
/// matches the control's root-unit stride); on a stop the remaining
/// groups are skipped and the partial sum is finalized without the IEP
/// divisibility check. `report` receives the status and the number of
/// completed task units.
[[nodiscard]] Count count_parallel(const Graph& graph,
                                   const Configuration& config,
                                   const ParallelOptions& options = {},
                                   ParallelRunStats* stats = nullptr,
                                   const support::ExecControl* control = nullptr,
                                   support::RunReport* report = nullptr);

/// Lists embeddings in parallel; callback invocations are serialized with
/// a critical section (listing throughput is bounded by the consumer
/// anyway; counting uses count_parallel).
void enumerate_parallel(const Graph& graph, const Configuration& config,
                        const EmbeddingCallback& cb,
                        const ParallelOptions& options = {});

/// Counts every plan of a prefix-sharing forest in one parallel traversal
/// (engine/forest.h executes each worker's share). Work is partitioned by
/// root vertex — the forest's depth-0 loop is always unconstrained — and
/// scheduled dynamically in chunks so degree skew does not starve
/// threads; `options.task_depth` does not apply. Every plan must have
/// >= 2 vertices. Returns finalized per-plan counts, indexed like
/// forest.plans(); exactly equal to running each plan's Matcher alone
/// (asserted by tests).
/// An armed `control` is polled per worker every poll-stride roots (a
/// shared completed-root counter is flushed at stride boundaries, so the
/// hot loop stays free of shared-cacheline traffic); on a stop workers
/// skip their remaining iterations and the partial sums are finalized
/// without the IEP divisibility check.
[[nodiscard]] std::vector<Count> count_batch_parallel(
    const Graph& graph, const PlanForest& forest,
    const ParallelOptions& options = {}, ParallelRunStats* stats = nullptr,
    const support::ExecControl* control = nullptr,
    support::RunReport* report = nullptr);

}  // namespace graphpi
