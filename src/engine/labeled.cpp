#include "engine/labeled.h"

#include <algorithm>
#include <vector>

#include "graph/vertex_set.h"
#include "support/check.h"

namespace graphpi {

struct LabeledMatcher::Workspace {
  VertexId mapped[Pattern::kMaxVertices] = {};
  std::vector<VertexId> buf_a[Pattern::kMaxVertices];
  std::vector<VertexId> buf_b[Pattern::kMaxVertices];
};

LabeledMatcher::LabeledMatcher(const LabeledGraph& graph,
                               LabeledPattern pattern)
    : LabeledMatcher(graph, pattern,
                     generate_schedules(pattern.structure).efficient.front(),
                     generate_restriction_sets(pattern).front()) {}

LabeledMatcher::LabeledMatcher(const LabeledGraph& graph,
                               LabeledPattern pattern, Schedule schedule,
                               RestrictionSet restrictions)
    : graph_(&graph),
      pattern_(std::move(pattern)),
      schedule_(std::move(schedule)),
      restrictions_(std::move(restrictions)) {
  GRAPHPI_CHECK(schedule_.size() == pattern_.size());
}

Count LabeledMatcher::recurse(
    Workspace& ws, int depth,
    const std::function<void(std::span<const VertexId>)>* cb) const {
  const int n = pattern_.size();
  const int pv = schedule_.vertex_at(depth);
  const Label want = pattern_.label(pv);
  const Graph& g = graph_->structure();

  // Candidate set: label list at depth 0 / unconstrained vertices,
  // neighborhood intersections otherwise (then label-filtered in-loop).
  std::span<const VertexId> candidates;
  std::vector<int> preds;
  for (int e = 0; e < depth; ++e)
    if (pattern_.structure.has_edge(schedule_.vertex_at(e), pv))
      preds.push_back(e);
  if (preds.empty()) {
    candidates = graph_->vertices_with_label(want);
  } else if (preds.size() == 1) {
    candidates = g.neighbors(ws.mapped[preds[0]]);
  } else {
    auto& out = ws.buf_a[depth];
    auto& tmp = ws.buf_b[depth];
    intersect_adaptive(g.neighbors(ws.mapped[preds[0]]),
                       g.neighbors(ws.mapped[preds[1]]), out);
    for (std::size_t p = 2; p < preds.size(); ++p) {
      intersect_adaptive(out, g.neighbors(ws.mapped[preds[p]]), tmp);
      std::swap(out, tmp);
    }
    candidates = out;
  }

  // Restriction bounds at this depth (same break/skip mechanics as the
  // unlabeled engine).
  VertexId lo = 0, hi = 0;
  bool has_lo = false, has_hi = false;
  for (const auto& r : restrictions_) {
    const int dg = schedule_.depth_of(r.greater);
    const int ds = schedule_.depth_of(r.smaller);
    if (std::max(dg, ds) != depth) continue;
    if (ds == depth) {
      hi = has_hi ? std::min(hi, ws.mapped[dg]) : ws.mapped[dg];
      has_hi = true;
    } else {
      lo = has_lo ? std::max(lo, ws.mapped[ds]) : ws.mapped[ds];
      has_lo = true;
    }
  }
  const VertexId* first = candidates.data();
  const VertexId* last = candidates.data() + candidates.size();
  if (has_lo) first = std::upper_bound(first, last, lo);
  if (has_hi) last = std::lower_bound(first, last, hi);

  Count total = 0;
  for (const VertexId* it = first; it != last; ++it) {
    const VertexId v = *it;
    if (!preds.empty() && graph_->label(v) != want) continue;
    bool used = false;
    for (int d = 0; d < depth && !used; ++d) used = ws.mapped[d] == v;
    if (used) continue;
    ws.mapped[depth] = v;
    if (depth == n - 1) {
      ++total;
      if (cb != nullptr) {
        VertexId embedding[Pattern::kMaxVertices];
        for (int d = 0; d < n; ++d)
          embedding[schedule_.vertex_at(d)] = ws.mapped[d];
        (*cb)({embedding, static_cast<std::size_t>(n)});
      }
    } else {
      total += recurse(ws, depth + 1, cb);
    }
  }
  return total;
}

Count LabeledMatcher::count() const {
  Workspace ws;
  return recurse(ws, 0, nullptr);
}

void LabeledMatcher::enumerate(
    const std::function<void(std::span<const VertexId>)>& cb) const {
  Workspace ws;
  recurse(ws, 0, &cb);
}

namespace {

Count labeled_assign(const LabeledGraph& lg, const LabeledPattern& p, int i,
                     VertexId* image) {
  const int n = p.size();
  if (i == n) return 1;
  Count total = 0;
  for (VertexId v = 0; v < lg.vertex_count(); ++v) {
    if (lg.label(v) != p.label(i)) continue;
    bool ok = true;
    for (int j = 0; j < i && ok; ++j) {
      if (image[j] == v) ok = false;
      if (ok && p.structure.has_edge(j, i) &&
          !lg.structure().has_edge(image[j], v))
        ok = false;
    }
    if (!ok) continue;
    image[i] = v;
    total += labeled_assign(lg, p, i + 1, image);
  }
  return total;
}

}  // namespace

Count labeled_oracle_count(const LabeledGraph& graph,
                           const LabeledPattern& pattern) {
  VertexId image[Pattern::kMaxVertices] = {};
  const Count redundant = labeled_assign(graph, pattern, 0, image);
  const Count aut = labeled_automorphisms(pattern).size();
  GRAPHPI_CHECK(redundant % aut == 0);
  return redundant / aut;
}

}  // namespace graphpi
