// Instrumented execution: per-loop counters for one matching run.
//
// The performance model (Section IV-C) predicts, per loop depth, the
// candidate-set cardinality l_i, the intersection work c_i and the
// restriction filter rate f_i. The profiler measures the real quantities
// so the model can be validated head-on (tests/engine/profile_test.cpp
// checks prediction-vs-measurement correlation; bench/ablation_model_inputs
// quantifies how much each statistic contributes).
//
// This profiler is the *model-validation* instrument: exhaustive
// per-loop counts from a dedicated instrumented run. For lightweight
// always-on production telemetry — per-run counters, latency
// histograms, trace spans across every backend — use the metrics
// registry (support/metrics.h) and trace layer (support/trace.h)
// instead; they cost nothing on the hot path and export JSON/Prometheus.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/configuration.h"
#include "graph/graph.h"

namespace graphpi {

struct ExecutionProfile {
  /// Number of times loop d's body started iterating (= parent leaves).
  std::vector<std::uint64_t> loop_entries;
  /// Total candidates produced for depth d across all entries (before
  /// restriction bounds).
  std::vector<std::uint64_t> candidates;
  /// Total candidates surviving the restriction range bounds.
  std::vector<std::uint64_t> candidates_in_bounds;
  /// Total elements read by intersection merges building depth d's set.
  std::vector<std::uint64_t> intersection_work;
  /// Embeddings found.
  std::uint64_t embeddings = 0;

  /// Mean candidate-set size at depth d (measured l_d).
  [[nodiscard]] double mean_candidates(int depth) const {
    const auto e = loop_entries[static_cast<std::size_t>(depth)];
    return e == 0 ? 0.0
                  : static_cast<double>(
                        candidates[static_cast<std::size_t>(depth)]) /
                        static_cast<double>(e);
  }

  /// Measured survival rate of the restriction bounds at depth d
  /// (1 - f_d in the model's terms).
  [[nodiscard]] double bound_survival(int depth) const {
    const auto c = candidates[static_cast<std::size_t>(depth)];
    return c == 0 ? 1.0
                  : static_cast<double>(candidates_in_bounds
                                            [static_cast<std::size_t>(depth)]) /
                        static_cast<double>(c);
  }

  [[nodiscard]] std::string to_string() const;
};

/// Runs a full (plain enumeration) count while collecting the profile.
/// Returns the embedding count; the profile is written to `out`.
[[nodiscard]] Count count_profiled(const Graph& graph,
                                   const Configuration& config,
                                   ExecutionProfile& out);

}  // namespace graphpi
