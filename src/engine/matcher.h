// The nested-loop pattern-matching executor.
//
// Compiles its Configuration (schedule + restriction set + optional IEP
// plan) into a core::Plan at construction and executes that IR against a
// CSR data graph — the same one-plan specialization of the loop structure
// the batch ForestExecutor (engine/forest.h) runs for many plans at once,
// built from the shared primitives in engine/plan_exec.h. The executed
// loops are exactly what GraphPi's code generator would emit
// (Figure 5(b)/6(b)):
//
//   * loop depth i searches the pattern vertex schedule[i];
//   * its candidate set is the intersection of the neighborhoods of the
//     already-mapped pattern neighbors (sorted, so intersections are
//     O(n + m) merges — vectorized, see graph/vertex_set.h);
//   * a restriction id(u) > id(v) is enforced in the loop of the
//     later-scheduled endpoint as a range bound on the sorted candidates
//     (an upper bound prunes with an early break, exactly like the
//     generated code's `if (id(vA) <= id(vB)) break;`);
//   * the innermost counting loop and single-block IEP terms never
//     materialize their candidate sets — the intersection size inside the
//     restriction window is computed directly by the size-only kernels;
//   * with an IEP plan, the innermost k loops are replaced by the
//     inclusion–exclusion evaluation of Section IV-D and the total is
//     divided by the surviving-automorphism factor x.
//
// The matcher is immutable after construction and safe to share across
// threads: all mutable state lives in a Workspace. Every traversal entry
// point has an overload taking an externally owned Workspace& so callers
// that issue millions of calls (the parallel and distributed runtimes)
// allocate the buffers once per worker and reuse them; the plain
// overloads construct a throwaway workspace and are convenience wrappers.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/configuration.h"
#include "core/plan.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "support/exec_control.h"

namespace graphpi {

/// Receives one embedding as data-graph vertices indexed by *pattern
/// vertex* (not schedule position).
using EmbeddingCallback =
    std::function<void(std::span<const VertexId> embedding)>;

class Matcher {
 public:
  /// Mutable traversal state: the partial embedding plus reusable buffers.
  /// Construct once per worker thread and pass to every call — steady-state
  /// traversals then perform no heap allocation. A workspace may be reused
  /// across matchers; prefix reuse state is invalidated automatically when
  /// it is handed to a different matcher.
  struct Workspace {
    Workspace();

    VertexId mapped[Pattern::kMaxVertices] = {};
    // Double-buffered candidate storage per depth (intersection chains).
    std::vector<VertexId> buf_a[Pattern::kMaxVertices];
    std::vector<VertexId> buf_b[Pattern::kMaxVertices];
    // IEP: suffix candidate sets and block-intersection scratch.
    std::vector<std::vector<VertexId>> suffix_sets;
    std::vector<VertexId> scratch_a;
    std::vector<VertexId> scratch_b;
    std::vector<VertexId> all_vertices;  // lazy iota for 0-pred depths
    // Prefix-reuse state: mapped[0 .. applied_depth) is a validated prefix
    // for the matcher with id `bound_matcher`; apply_prefix skips
    // re-validating (and re-running the candidate intersections of) the
    // longest shared prefix. Ids are process-unique per Matcher lifetime
    // (a raw pointer would false-match a new matcher constructed at a
    // destroyed one's address). 0 = bound to nothing.
    std::uint64_t bound_matcher = 0;
    int applied_depth = 0;
    // Run-local observability tally (flushed as a delta into the
    // metrics registry; see flush_metrics).
    std::uint64_t iep_terms = 0;
    std::uint64_t iep_terms_flushed = 0;
  };

  /// Total Workspace constructions process-wide — observability hook used
  /// by tests to assert the parallel runtime reuses per-thread workspaces
  /// instead of constructing one per task.
  [[nodiscard]] static std::uint64_t workspace_constructions() noexcept;

  /// `config.schedule` must cover `config.pattern`; the graph must satisfy
  /// the CSR invariants (see Graph). Builds the graph's hub bitmap index
  /// (with the automatic threshold) if not already built.
  Matcher(const Graph& graph, Configuration config);

  /// Counts embeddings. Uses the configuration's IEP plan when present,
  /// otherwise plain enumeration. Single-threaded (see ParallelMatcher).
  [[nodiscard]] Count count() const;
  [[nodiscard]] Count count(Workspace& ws) const;

  /// Bounded counting: runs the depth-0 root loop explicitly and polls an
  /// armed `control` stride-gated after each root vertex. On a stop the
  /// remaining roots are skipped and the accumulated sum is finalized
  /// without the IEP divisibility check (best-effort partial count).
  /// `report` (optional) receives the stop status and completed-root
  /// tally. With a null/unarmed control and a null report this is exactly
  /// count(ws).
  [[nodiscard]] Count count(Workspace& ws,
                            const support::ExecControl* control,
                            support::RunReport* report) const;

  /// Counts by full enumeration, ignoring any IEP plan (the "without IEP"
  /// arm of Figure 10).
  [[nodiscard]] Count count_plain() const;
  [[nodiscard]] Count count_plain(Workspace& ws) const;

  /// Enumerates all embeddings, invoking `cb` once per embedding. IEP is
  /// never used when listing.
  void enumerate(const EmbeddingCallback& cb) const;
  void enumerate(Workspace& ws, const EmbeddingCallback& cb) const;

  /// Counts all completions of a partial embedding that maps the first
  /// `prefix.size()` schedule positions to the given data vertices. The
  /// prefix is validated (edges + restrictions); an invalid prefix yields
  /// 0. This is the worker-side entry point of the distributed runtime.
  ///
  /// Consecutive calls on the same workspace skip re-validating the
  /// longest prefix shared with the previous call, so feeding tasks in
  /// lexicographic order makes the shared apply_prefix intersections free.
  ///
  /// IMPORTANT: when an IEP plan is active the returned value is the
  /// *undivided* inclusion–exclusion sum for this prefix — per-prefix sums
  /// are not individually divisible by x. Aggregate all task results and
  /// pass the total through finalize_partial_counts().
  [[nodiscard]] Count count_from_prefix(std::span<const VertexId> prefix) const;
  [[nodiscard]] Count count_from_prefix(Workspace& ws,
                                        std::span<const VertexId> prefix) const;

  /// Converts an aggregated sum of count_from_prefix results into the
  /// final embedding count (divides by the IEP factor x; identity when
  /// IEP is inactive). Checks divisibility.
  [[nodiscard]] Count finalize_partial_counts(Count aggregated) const;

  /// Enumerates all embeddings extending the given schedule-position
  /// prefix (validated like count_from_prefix; invalid prefixes produce no
  /// callbacks). IEP must be inactive.
  void enumerate_from_prefix(std::span<const VertexId> prefix,
                             const EmbeddingCallback& cb) const;
  void enumerate_from_prefix(Workspace& ws, std::span<const VertexId> prefix,
                             const EmbeddingCallback& cb) const;

  /// Enumerates all *valid* partial embeddings of the first `depth`
  /// schedule positions — the master-side task generator of the
  /// distributed runtime (Section IV-E: "the master thread executes the
  /// outer loops and packs the values of the outer loops into a task").
  /// Prefixes are produced in lexicographic order.
  void enumerate_prefixes(
      int depth,
      const std::function<void(std::span<const VertexId>)>& cb) const;
  void enumerate_prefixes(
      Workspace& ws, int depth,
      const std::function<void(std::span<const VertexId>)>& cb) const;

  /// Publishes the workspace's observability tallies (IEP terms
  /// evaluated) plus `roots` completed root vertices into the process
  /// metrics registry (engine.matcher.roots_completed,
  /// engine.iep.terms_evaluated). The counting entry points call this
  /// once per run; the parallel runtime calls it once per worker after
  /// a count_from_prefix task loop.
  void flush_metrics(Workspace& ws, std::uint64_t roots) const;

  [[nodiscard]] const Configuration& configuration() const noexcept {
    return config_;
  }
  /// The compiled IR this matcher executes.
  [[nodiscard]] const Plan& plan() const noexcept { return plan_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

 private:
  /// Builds the candidate span for `depth` given the current mapping.
  [[nodiscard]] std::span<const VertexId> build_candidates(Workspace& ws,
                                                           int depth) const;

  /// Applies restriction bounds for `depth`, returning the [first, last)
  /// subrange of `cands` to iterate.
  [[nodiscard]] std::span<const VertexId> bounded_range(
      const Workspace& ws, int depth, std::span<const VertexId> cands) const;

  /// Counting-only innermost loop: |candidates(depth) ∩ window| minus the
  /// already-used vertices, computed with size-only kernels — no candidate
  /// vector is materialized for the final intersection step.
  [[nodiscard]] Count count_leaf(Workspace& ws, int depth) const;

  /// Recursive enumeration core; `depth` is the next schedule position to
  /// fill. Counts leaves; when `cb` is non-null also reports embeddings.
  Count recurse(Workspace& ws, int depth, const EmbeddingCallback* cb) const;

  /// Recursive core for IEP counting over the outer loops; returns the
  /// *undivided* inclusion–exclusion sum.
  [[nodiscard]] Count recurse_iep(Workspace& ws, int depth) const;

  /// Evaluates the IEP plan at a leaf of the outer loops.
  [[nodiscard]] Count evaluate_iep_leaf(Workspace& ws) const;

  /// Prepares a workspace with `prefix` applied; returns false when the
  /// prefix violates edges, distinctness or restriction bounds. Reuses the
  /// longest already-applied shared prefix (see Workspace).
  [[nodiscard]] bool apply_prefix(Workspace& ws,
                                  std::span<const VertexId> prefix) const;

  /// Marks the workspace as holding no reusable prefix for this matcher
  /// (full-traversal entry points overwrite mapped[0]).
  void invalidate_prefix(Workspace& ws) const {
    ws.bound_matcher = id_;
    ws.applied_depth = 0;
  }

  const Graph* graph_;
  Configuration config_;
  Plan plan_;                       ///< compiled IR (see core/plan.h)
  std::uint64_t id_;                ///< process-unique (see Workspace)
  int n_ = 0;                       ///< pattern size
  int outer_depth_ = 0;             ///< n - iep.k when IEP active, else n
  bool iep_active_ = false;
  std::vector<int> identity_set_ids_;  ///< 0..k-1 (unshared suffix sets)
};

/// Convenience one-shot helpers.
[[nodiscard]] Count count_embeddings(const Graph& graph,
                                     const Configuration& config);
[[nodiscard]] Count count_embeddings(const Graph& graph,
                                     const Pattern& pattern,
                                     bool use_iep = false);

}  // namespace graphpi
