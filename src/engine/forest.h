// Batch executor for prefix-sharing plan forests.
//
// Runs a core::PlanForest against a CSR data graph in a single traversal:
// every trie edge (one distinct loop shape) is executed once per partial
// embedding, so work that per-pattern runs repeat — the outer vertex
// scan, shared candidate intersections, shared IEP suffix sets — is done
// once and feeds every plan's counter. Per-plan restriction windows
// narrow an active-plan bitmask as the traversal descends (see the
// Branch model in core/plan_forest.h); terminal counting and IEP term
// evaluation fire only for plans whose bit survived the path.
//
// Like Matcher, the executor is immutable after construction and safe to
// share across threads; all mutable state lives in a Workspace. The
// parallel runtime (count_batch_parallel in engine/parallel.h) partitions
// work by root vertex via accumulate_root().
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/pattern.h"
#include "core/plan_forest.h"
#include "engine/plan_exec.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "support/exec_control.h"

namespace graphpi {

/// Restriction windows of one trie extension resolved under a concrete
/// mapping and active-plan mask: the surviving branches' windows and
/// plan masks, plus their union window (the loop range). Shared by the
/// in-memory ForestExecutor and the sharded distributed executor so the
/// window/mask-narrowing semantics live in exactly one place.
struct ResolvedBranches {
  std::array<exec::Window, PlanForest::kMaxPlans> windows;
  std::array<PlanForest::PlanMask, PlanForest::kMaxPlans> masks;
  std::size_t live = 0;
  exec::Window union_window{kNoVertexBound, 0};

  /// Plans whose window admits v (narrowing step of the candidate loop).
  [[nodiscard]] PlanForest::PlanMask mask_at(VertexId v) const noexcept {
    PlanForest::PlanMask m = 0;
    for (std::size_t b = 0; b < live; ++b)
      if (windows[b].contains(v)) m |= masks[b];
    return m;
  }
};

/// Resolves `ext`'s branches against `mapped` under `active`; branches
/// that are masked out or whose window is empty do not survive.
[[nodiscard]] ResolvedBranches resolve_branches(
    const VertexId* mapped, const PlanForest::Extension& ext,
    PlanForest::PlanMask active);

class ForestExecutor {
 public:
  /// Mutable traversal state. Construct once per worker and reuse —
  /// steady-state traversals perform no heap allocation.
  struct Workspace {
    VertexId mapped[Pattern::kMaxVertices] = {};
    /// Per-depth candidate storage: cand[d] holds the current
    /// predecessor-group intersection for depth d, tmp[d] is the chain
    /// swap buffer. Leaves at depth d may also use both (leaves are
    /// evaluated before the extensions that would overwrite them).
    std::vector<VertexId> cand[Pattern::kMaxVertices];
    std::vector<VertexId> tmp[Pattern::kMaxVertices];
    /// Shared IEP suffix sets of the node being evaluated, indexed by the
    /// node's suffix_defs.
    std::vector<std::vector<VertexId>> suffix_sets;
    std::vector<VertexId> scratch_a;
    std::vector<VertexId> scratch_b;
    std::vector<VertexId> all_vertices;  // lazy iota for 0-pred loops
    /// One memo table per memoized leaf (PlanForest::Stats): a
    /// direct-mapped cache from the packed dependency key to the leaf's
    /// raw intersection size — one slot probe, overwrite on collision,
    /// allocated lazily on first probe. Memoization only pays when keys
    /// repeat (the skipped loop revisits dependency tuples — high
    /// common-neighbor multiplicity), so each table self-tunes: it tracks
    /// its hit rate and shuts itself off (freeing its storage) after a
    /// probe window below kMemoMinHitNum/Den. Correctness never depends
    /// on a hit.
    struct MemoTable {
      std::vector<std::uint64_t> keys;  ///< kEmptyKey marks a free slot
      std::vector<Count> values;
      std::uint64_t probes = 0;
      std::uint64_t hits = 0;
      std::uint64_t last_review_probes = 0;
      std::uint64_t last_review_hits = 0;
      bool disabled = false;
    };
    std::vector<MemoTable> memo;
    /// Executor the memo tables belong to (ids are process-unique per
    /// ForestExecutor lifetime, like Matcher workspaces); reset() drops
    /// the tables when the workspace is handed to a different executor.
    std::uint64_t bound_executor = 0;
    /// IEP terms evaluated by this workspace (run-local tally; see
    /// flush_metrics()).
    std::uint64_t iep_terms = 0;
    /// Values already flushed into the metrics registry, so repeated
    /// flushes publish deltas (memo counters persist across runs).
    struct MetricsMark {
      std::uint64_t lookups = 0;
      std::uint64_t hits = 0;
      std::uint64_t shutoffs = 0;
      std::uint64_t iep_terms = 0;
    };
    MetricsMark metrics_mark;
    /// Per-plan accumulators; *undivided* inclusion–exclusion sums for
    /// IEP plans (see finalize()).
    std::vector<Count> sums;
  };

  /// Direct-mapped memo geometry cap: at most 2^20 slots = 16 MB per
  /// live table; tables are sized down to the key space (|V|^depths) on
  /// small graphs.
  static constexpr std::size_t kMemoSlots = std::size_t{1} << 20;
  /// Minimum predecessor degree sum for a probe: below this the
  /// intersection is cheaper in cache than a (likely cold) table slot, so
  /// it is recomputed directly.
  static constexpr std::size_t kMemoMinWork = 32;
  static constexpr std::uint64_t kMemoEmptyKey = ~std::uint64_t{0};
  /// Hit-rate review cadence and the minimum keep-alive rate (2/3).
  static constexpr std::uint64_t kMemoProbeWindow = std::uint64_t{1} << 16;
  static constexpr std::uint64_t kMemoMinHitNum = 2;
  static constexpr std::uint64_t kMemoMinHitDen = 3;

  /// The forest must outlive the executor. Builds the graph's hub bitmap
  /// index when any plan wants it.
  ForestExecutor(const Graph& graph, const PlanForest& forest);

  /// One full traversal; returns the finalized per-plan counts, indexed
  /// like forest().plans().
  [[nodiscard]] std::vector<Count> count() const;
  [[nodiscard]] std::vector<Count> count(Workspace& ws) const;

  /// Traversal restricted to an explicit depth-0 vertex domain: counts
  /// only embeddings rooted at `roots` (duplicates count twice — pass a
  /// set). This is the shard-local entry point of the distributed
  /// runtime: a node that owns a subset of the vertex space runs the
  /// whole forest over exactly its owned roots. Equals count() when
  /// `roots` is the full vertex range. Requires plans with >= 2 vertices.
  ///
  /// An armed `control` is polled stride-gated after each root; on a stop
  /// the remaining roots are skipped and the partial sums are finalized
  /// without the IEP divisibility check (best-effort counts). `report`
  /// receives the status and completed-root tally.
  [[nodiscard]] std::vector<Count> count_roots(
      Workspace& ws, std::span<const VertexId> roots,
      const support::ExecControl* control = nullptr,
      support::RunReport* report = nullptr) const;

  /// Zeroes ws.sums (sizing it to the plan count). Call once before a
  /// sequence of accumulate_root() calls.
  void reset(Workspace& ws) const;

  /// Runs the forest with the depth-0 loop pinned to `v0`, adding
  /// undivided per-plan sums into ws.sums — the work unit of the parallel
  /// batch runtime. Requires every plan to have size >= 2 (no terminal
  /// action at the root).
  void accumulate_root(Workspace& ws, VertexId v0) const;

  /// Converts aggregated undivided sums into final per-plan counts
  /// (divides IEP plans by their surviving-automorphism factor x).
  [[nodiscard]] std::vector<Count> finalize(std::span<const Count> sums) const;

  /// Best-effort finalization of a stopped run: partial IEP sums are
  /// generally not divisible by x, so this divides without the check.
  [[nodiscard]] std::vector<Count> finalize_partial(
      std::span<const Count> sums) const;

  [[nodiscard]] const PlanForest& forest() const noexcept { return *forest_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

  /// Aggregate of the self-tuning memo counters across a workspace's
  /// tables (probes/hits accumulate across runs; shutoffs counts tables
  /// that reviewed themselves off).
  struct MemoStats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t shutoffs = 0;
  };
  [[nodiscard]] static MemoStats memo_stats(const Workspace& ws) noexcept;

  /// Publishes this workspace's observability tallies — memo lookups /
  /// hits / window shutoffs, IEP terms evaluated, plus `roots` completed
  /// root units — into the process metrics registry
  /// (engine.memo.*, engine.iep.*, engine.forest.*) as deltas since the
  /// workspace's last flush. The counting entry points call this once
  /// per run; callers that drive accumulate_root() directly (the
  /// parallel and distributed runtimes) call it per worker.
  void flush_metrics(Workspace& ws, std::uint64_t roots) const;

 private:
  void exec_node(Workspace& ws, const PlanForest::Node& node,
                 PlanForest::PlanMask active) const;
  void eval_leaves(Workspace& ws, const PlanForest::Node& node,
                   PlanForest::PlanMask active) const;
  Count memoized_raw_count(Workspace& ws, int memo_id,
                           std::span<const int> key_depths,
                           std::span<const int> preds,
                           std::span<const VertexId> mapped, VertexId lo,
                           VertexId hi) const;

  const Graph* graph_;
  const PlanForest* forest_;
  std::uint64_t id_;  ///< process-unique (see Workspace::bound_executor)
};

}  // namespace graphpi
