#include "engine/plan_exec.h"

#include <algorithm>
#include <numeric>

#include "graph/vertex_set.h"
#include "support/check.h"

namespace graphpi::exec {

namespace {
/// IEP partial sums can exceed 64 bits before the final division.
using SignedWide = __int128;
}  // namespace

void intersect_adjacencies(const Graph& g, VertexId u, VertexId v,
                           std::vector<VertexId>& out) {
  const auto adj_u = g.neighbors(u);
  const auto adj_v = g.neighbors(v);
  const std::uint64_t* bits_u = g.hub_bits(u);
  const std::uint64_t* bits_v = g.hub_bits(v);
  if (bits_v != nullptr && (bits_u == nullptr || adj_u.size() <= adj_v.size())) {
    intersect_bitmap(adj_u, bits_v, out);
  } else if (bits_u != nullptr) {
    intersect_bitmap(adj_v, bits_u, out);
  } else {
    intersect_adaptive(adj_u, adj_v, out);
  }
}

void intersect_with_vertex(const Graph& g, std::span<const VertexId> set,
                           VertexId v, std::vector<VertexId>& out) {
  if (const std::uint64_t* bits = g.hub_bits(v); bits != nullptr) {
    intersect_bitmap(set, bits, out);
  } else {
    intersect_adaptive(set, g.neighbors(v), out);
  }
}

std::span<const VertexId> build_candidates(const Graph& g,
                                           std::span<const int> preds,
                                           std::span<const VertexId> mapped,
                                           std::vector<VertexId>& out,
                                           std::vector<VertexId>& tmp,
                                           std::vector<VertexId>& all) {
  if (preds.empty()) {
    // Unconstrained loop over the whole vertex set (depth 0, or an
    // inefficient schedule kept for the Figure 9 sweep).
    if (all.size() != g.vertex_count()) {
      all.resize(g.vertex_count());
      std::iota(all.begin(), all.end(), VertexId{0});
    }
    return all;
  }
  if (preds.size() == 1) return g.neighbors(mapped[preds[0]]);

  intersect_adjacencies(g, mapped[preds[0]], mapped[preds[1]], out);
  for (std::size_t p = 2; p < preds.size(); ++p) {
    intersect_with_vertex(g, out, mapped[preds[p]], tmp);
    std::swap(out, tmp);
  }
  return out;
}

Count count_intersection_bounded(const Graph& g, std::span<const int> preds,
                                 std::span<const VertexId> mapped,
                                 VertexId lo_inclusive, VertexId hi_exclusive,
                                 std::vector<VertexId>& buf,
                                 std::vector<VertexId>& tmp) {
  if (lo_inclusive >= hi_exclusive) return 0;

  if (preds.empty()) {
    // Unconstrained innermost loop: the window over the whole id range.
    const std::uint64_t n = g.vertex_count();
    const std::uint64_t lo = lo_inclusive;
    const std::uint64_t hi = std::min<std::uint64_t>(hi_exclusive, n);
    return lo < hi ? hi - lo : 0;
  }

  if (preds.size() == 1) {
    return trim_to_window(g.neighbors(mapped[preds[0]]), lo_inclusive,
                          hi_exclusive)
        .size();
  }

  // Two or more predecessors: materialize the chain up to the last step,
  // then compute the final intersection size inside the window directly.
  const VertexId last = mapped[preds.back()];
  const std::uint64_t* last_bits = g.hub_bits(last);
  const auto last_adj = g.neighbors(last);

  if (preds.size() == 2) {
    const VertexId first = mapped[preds[0]];
    const std::uint64_t* first_bits = g.hub_bits(first);
    const auto first_adj = g.neighbors(first);
    if (first_bits != nullptr && last_bits != nullptr &&
        g.hub_words() * 4 <= first_adj.size() + last_adj.size()) {
      // Both endpoints are hubs and the rows are short relative to the
      // adjacencies: word-parallel AND+popcount over the window.
      return bitmap_and_popcount_bounded(first_bits, last_bits,
                                         g.vertex_count(), lo_inclusive,
                                         hi_exclusive);
    }
    if (last_bits != nullptr)
      return intersect_size_bitmap_bounded(first_adj, last_bits, lo_inclusive,
                                           hi_exclusive);
    if (first_bits != nullptr)
      return intersect_size_bitmap_bounded(last_adj, first_bits, lo_inclusive,
                                           hi_exclusive);
    return intersect_size_bounded_adaptive(first_adj, last_adj, lo_inclusive,
                                           hi_exclusive);
  }

  intersect_adjacencies(g, mapped[preds[0]], mapped[preds[1]], buf);
  for (std::size_t p = 2; p + 1 < preds.size(); ++p) {
    intersect_with_vertex(g, buf, mapped[preds[p]], tmp);
    std::swap(buf, tmp);
  }
  if (last_bits != nullptr)
    return intersect_size_bitmap_bounded(buf, last_bits, lo_inclusive,
                                         hi_exclusive);
  return intersect_size_bounded_adaptive(buf, last_adj, lo_inclusive,
                                         hi_exclusive);
}

Count count_used_in_intersection(const Graph& g, std::span<const int> preds,
                                 std::span<const VertexId> mapped,
                                 VertexId lo_inclusive,
                                 VertexId hi_exclusive) {
  Count used = 0;
  for (VertexId v : mapped) {
    if (v < lo_inclusive || v >= hi_exclusive) continue;
    bool member = true;
    for (int p : preds)
      if (!g.has_edge(mapped[p], v)) {
        member = false;
        break;
      }
    if (member) ++used;
  }
  return used;
}

Count count_leaf(const Graph& g, std::span<const int> preds,
                 std::span<const VertexId> mapped, VertexId lo_inclusive,
                 VertexId hi_exclusive, std::vector<VertexId>& buf,
                 std::vector<VertexId>& tmp) {
  if (lo_inclusive >= hi_exclusive) return 0;
  return count_intersection_bounded(g, preds, mapped, lo_inclusive,
                                    hi_exclusive, buf, tmp) -
         count_used_in_intersection(g, preds, mapped, lo_inclusive,
                                    hi_exclusive);
}

void build_suffix_set(const Graph& g, std::span<const int> preds,
                      std::span<const VertexId> mapped,
                      std::vector<VertexId>& set,
                      std::vector<VertexId>& scratch) {
  if (preds.empty()) {
    // Degenerate (disconnected suffix vertex): every vertex is a
    // candidate.
    set.resize(g.vertex_count());
    std::iota(set.begin(), set.end(), VertexId{0});
  } else if (preds.size() == 1) {
    const auto adj = g.neighbors(mapped[preds[0]]);
    set.assign(adj.begin(), adj.end());
  } else {
    intersect_adjacencies(g, mapped[preds[0]], mapped[preds[1]], set);
    for (std::size_t p = 2; p < preds.size(); ++p) {
      intersect_with_vertex(g, set, mapped[preds[p]], scratch);
      std::swap(set, scratch);
    }
  }
  remove_all(set, mapped);
}

Count evaluate_iep_terms(std::span<const IepPlan::Term> terms,
                         const std::vector<std::vector<VertexId>>& sets,
                         std::span<const int> set_ids,
                         std::vector<VertexId>& scratch_a,
                         std::vector<VertexId>& scratch_b) {
  const auto set_of = [&sets, set_ids](int i) -> const std::vector<VertexId>& {
    return sets[static_cast<std::size_t>(set_ids[i])];
  };
  // Every term is a signed product over its blocks of |∩_{i∈B} S_i|. The
  // last step of every block product is size-only; single- and two-set
  // blocks materialize nothing at all.
  SignedWide sum = 0;
  for (const auto& term : terms) {
    SignedWide product = term.coefficient;
    for (const auto& block : term.blocks) {
      if (product == 0) break;
      std::size_t factor = 0;
      if (block.size() == 1) {
        factor = set_of(block[0]).size();
      } else if (block.size() == 2) {
        factor = intersect_size(set_of(block[0]), set_of(block[1]));
      } else {
        intersect(set_of(block[0]), set_of(block[1]), scratch_a);
        for (std::size_t b = 2; b + 1 < block.size(); ++b) {
          intersect(scratch_a, set_of(block[b]), scratch_b);
          std::swap(scratch_a, scratch_b);
        }
        factor = intersect_size(scratch_a, set_of(block.back()));
      }
      product *= static_cast<SignedWide>(factor);
    }
    sum += product;
  }
  GRAPHPI_CHECK_MSG(sum >= 0, "|S_IEP| is a tuple count and must be >= 0");
  // Per-leaf sums fit 64 bits comfortably (k <= 7 factors of set sizes).
  return static_cast<Count>(sum);
}

}  // namespace graphpi::exec
