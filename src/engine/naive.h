// Naive baseline: restriction-free enumeration.
//
// Enumerates every one-to-one correspondence (so each embedding is found
// |Aut| times — the redundant computation the paper eliminates) and
// divides by the automorphism count at the end. This is the lower bound
// any symmetry-breaking system must beat, and stands in for the
// enumeration-style JVM baselines (Fractal) of Figure 8; DESIGN.md
// documents the proxy.
#pragma once

#include "core/pattern.h"
#include "core/schedule.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace graphpi {

/// A reasonable connectivity-first schedule chosen without any cost model
/// (first phase-1 schedule in lexicographic order) — what a system without
/// schedule optimization would run.
[[nodiscard]] Schedule default_schedule(const Pattern& pattern);

/// Counts embeddings with no restrictions, dividing the redundant total by
/// |Aut| at the end.
[[nodiscard]] Count naive_count(const Graph& graph, const Pattern& pattern);

/// The redundant (undivided) enumeration total — |Aut| times the answer.
[[nodiscard]] Count naive_count_redundant(const Graph& graph,
                                          const Pattern& pattern);

}  // namespace graphpi
