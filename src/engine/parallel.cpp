#include "engine/parallel.h"

#include <omp.h>

#include <algorithm>
#include <mutex>

#include "support/check.h"
#include "support/timer.h"

namespace graphpi {

namespace {

/// Materializes the task list: every valid prefix of `depth` schedule
/// positions. Depth-1 tasks are cheap to generate (one per vertex with a
/// non-empty continuation); deeper tasks trade generation cost for better
/// balance.
std::vector<std::vector<VertexId>> generate_tasks(const Matcher& matcher,
                                                  int depth) {
  std::vector<std::vector<VertexId>> tasks;
  matcher.enumerate_prefixes(depth, [&tasks](std::span<const VertexId> p) {
    tasks.emplace_back(p.begin(), p.end());
  });
  return tasks;
}

int clamp_task_depth(const Configuration& config, int requested) {
  const int outer = config.iep.k > 0 ? config.pattern.size() - config.iep.k
                                     : config.pattern.size();
  return std::clamp(requested, 1, std::max(1, outer));
}

}  // namespace

Count count_parallel(const Graph& graph, const Configuration& config,
                     const ParallelOptions& options, ParallelRunStats* stats) {
  const Matcher matcher(graph, config);
  const int depth = clamp_task_depth(config, options.task_depth);
  const auto tasks = generate_tasks(matcher, depth);

  if (options.num_threads > 0) omp_set_num_threads(options.num_threads);
  const int max_threads = omp_get_max_threads();
  std::vector<std::uint64_t> thread_tasks(
      static_cast<std::size_t>(max_threads), 0);
  std::vector<double> thread_seconds(static_cast<std::size_t>(max_threads),
                                     0.0);

  Count aggregated = 0;
#pragma omp parallel default(none) \
    shared(tasks, matcher, thread_tasks, thread_seconds) \
    reduction(+ : aggregated)
  {
    const int tid = omp_get_thread_num();
    support::Timer timer;
#pragma omp for schedule(dynamic, 16)
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      aggregated += matcher.count_from_prefix(tasks[t]);
      thread_tasks[static_cast<std::size_t>(tid)]++;
    }
    thread_seconds[static_cast<std::size_t>(tid)] = timer.elapsed_seconds();
  }

  if (stats != nullptr) {
    stats->tasks = tasks.size();
    stats->per_thread_tasks = thread_tasks;
    stats->per_thread_seconds = thread_seconds;
  }
  return matcher.finalize_partial_counts(aggregated);
}

void enumerate_parallel(const Graph& graph, const Configuration& config,
                        const EmbeddingCallback& cb,
                        const ParallelOptions& options) {
  GRAPHPI_CHECK_MSG(config.iep.k == 0,
                    "IEP configurations cannot list embeddings");
  const Matcher matcher(graph, config);
  const int depth = clamp_task_depth(config, options.task_depth);
  const auto tasks = generate_tasks(matcher, depth);

  if (options.num_threads > 0) omp_set_num_threads(options.num_threads);
  std::mutex emit_mutex;

  // Each worker re-runs the continuation of its prefix with a serialized
  // callback. The per-task matcher work is independent; only emission is
  // synchronized.
#pragma omp parallel for schedule(dynamic, 16) default(none) \
    shared(tasks, matcher, cb, emit_mutex)
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    // Collect locally, then emit under the lock in batches.
    std::vector<std::vector<VertexId>> local;
    matcher.enumerate_from_prefix(tasks[t],
                                  [&local](std::span<const VertexId> emb) {
                                    local.emplace_back(emb.begin(), emb.end());
                                  });
    const std::scoped_lock lock(emit_mutex);
    for (const auto& e : local) cb(e);
  }
}

}  // namespace graphpi
