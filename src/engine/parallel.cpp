#include "engine/parallel.h"

#include <omp.h>

#include <algorithm>
#include <mutex>
#include <utility>
#include <vector>

#include "engine/forest.h"
#include "support/check.h"
#include "support/timer.h"

namespace graphpi {

namespace {

/// The task list: every valid prefix of `depth` schedule positions, stored
/// flat (one contiguous array, `depth` slots per task) so generating a few
/// million tasks performs O(1) allocations instead of one per task.
/// enumerate_prefixes emits in lexicographic order, which the grouping
/// below and the matcher's incremental prefix application both exploit.
struct TaskBuffer {
  std::vector<VertexId> flat;
  int depth = 1;

  [[nodiscard]] std::size_t count() const {
    return flat.size() / static_cast<std::size_t>(depth);
  }
  [[nodiscard]] std::span<const VertexId> task(std::size_t i) const {
    return {flat.data() + i * static_cast<std::size_t>(depth),
            static_cast<std::size_t>(depth)};
  }
};

TaskBuffer generate_tasks(const Matcher& matcher, int depth) {
  TaskBuffer tasks;
  tasks.depth = depth;
  Matcher::Workspace ws;
  matcher.enumerate_prefixes(ws, depth, [&tasks](std::span<const VertexId> p) {
    tasks.flat.insert(tasks.flat.end(), p.begin(), p.end());
  });
  return tasks;
}

/// Scheduling granule: a contiguous run of tasks sharing their depth-1
/// prefix (the outermost loop vertex). A worker executes a whole group on
/// one workspace, so the matcher's incremental apply_prefix re-validates
/// only the positions that differ between consecutive tasks — the shared
/// candidate intersections are built once per group instead of once per
/// task. Groups are split at kMaxGroupTasks so one hub's run of tasks
/// cannot starve the dynamic schedule.
using TaskGroup = std::pair<std::size_t, std::size_t>;  // [begin, end)

constexpr std::size_t kMaxGroupTasks = 64;

std::vector<TaskGroup> group_tasks(const TaskBuffer& tasks) {
  std::vector<TaskGroup> groups;
  const std::size_t n = tasks.count();
  std::size_t begin = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (tasks.task(i)[0] != tasks.task(begin)[0] ||
        i - begin >= kMaxGroupTasks) {
      groups.emplace_back(begin, i);
      begin = i;
    }
  }
  if (n > begin) groups.emplace_back(begin, n);
  return groups;
}

int clamp_task_depth(const Configuration& config, int requested) {
  const int outer = config.iep.k > 0 ? config.pattern.size() - config.iep.k
                                     : config.pattern.size();
  return std::clamp(requested, 1, std::max(1, outer));
}

}  // namespace

Count count_parallel(const Graph& graph, const Configuration& config,
                     const ParallelOptions& options, ParallelRunStats* stats) {
  const Matcher matcher(graph, config);
  const int depth = clamp_task_depth(config, options.task_depth);
  const TaskBuffer tasks = generate_tasks(matcher, depth);
  const std::vector<TaskGroup> groups = group_tasks(tasks);

  if (options.num_threads > 0) omp_set_num_threads(options.num_threads);
  const int max_threads = omp_get_max_threads();
  std::vector<std::uint64_t> thread_tasks(
      static_cast<std::size_t>(max_threads), 0);
  std::vector<double> thread_seconds(static_cast<std::size_t>(max_threads),
                                     0.0);

  Count aggregated = 0;
#pragma omp parallel default(none) \
    shared(tasks, groups, matcher, thread_tasks, thread_seconds) \
    reduction(+ : aggregated)
  {
    const int tid = omp_get_thread_num();
    // One workspace per thread per run: every task executed by this thread
    // reuses the same buffers (and the candidate sets of any prefix shared
    // with the previous task) — steady state allocates nothing.
    Matcher::Workspace ws;
    support::Timer timer;
#pragma omp for schedule(dynamic, 1)
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (std::size_t t = groups[g].first; t < groups[g].second; ++t)
        aggregated += matcher.count_from_prefix(ws, tasks.task(t));
      thread_tasks[static_cast<std::size_t>(tid)] +=
          groups[g].second - groups[g].first;
    }
    thread_seconds[static_cast<std::size_t>(tid)] = timer.elapsed_seconds();
  }

  if (stats != nullptr) {
    stats->tasks = tasks.count();
    stats->task_groups = groups.size();
    stats->per_thread_tasks = thread_tasks;
    stats->per_thread_seconds = thread_seconds;
  }
  return matcher.finalize_partial_counts(aggregated);
}

void enumerate_parallel(const Graph& graph, const Configuration& config,
                        const EmbeddingCallback& cb,
                        const ParallelOptions& options) {
  GRAPHPI_CHECK_MSG(config.iep.k == 0,
                    "IEP configurations cannot list embeddings");
  const Matcher matcher(graph, config);
  const int depth = clamp_task_depth(config, options.task_depth);
  const TaskBuffer tasks = generate_tasks(matcher, depth);
  const std::vector<TaskGroup> groups = group_tasks(tasks);

  if (options.num_threads > 0) omp_set_num_threads(options.num_threads);
  std::mutex emit_mutex;

  // Each worker re-runs the continuation of its prefix with a serialized
  // callback. The per-group matcher work is independent; only emission is
  // synchronized.
#pragma omp parallel default(none) shared(tasks, groups, matcher, cb, emit_mutex)
  {
    Matcher::Workspace ws;
    std::vector<std::vector<VertexId>> local;
#pragma omp for schedule(dynamic, 1)
    for (std::size_t g = 0; g < groups.size(); ++g) {
      // Collect the group's embeddings locally, then emit under the lock.
      local.clear();
      for (std::size_t t = groups[g].first; t < groups[g].second; ++t) {
        matcher.enumerate_from_prefix(
            ws, tasks.task(t), [&local](std::span<const VertexId> emb) {
              local.emplace_back(emb.begin(), emb.end());
            });
      }
      const std::scoped_lock lock(emit_mutex);
      for (const auto& e : local) cb(e);
    }
  }
}

std::vector<Count> count_batch_parallel(const Graph& graph,
                                        const PlanForest& forest,
                                        const ParallelOptions& options,
                                        ParallelRunStats* stats) {
  const ForestExecutor executor(graph, forest);
  GRAPHPI_CHECK_MSG(forest.root().count_leaves.empty(),
                    "count_batch_parallel requires plans with >= 2 vertices");

  // One task per root vertex, claimed in chunks: consecutive vertices
  // share nothing across tasks (the depth-0 loop is unconstrained), so
  // the chunk size only amortizes scheduling overhead.
  constexpr std::int64_t kChunk = 64;
  const std::int64_t n = graph.vertex_count();

  if (options.num_threads > 0) omp_set_num_threads(options.num_threads);
  const int max_threads = omp_get_max_threads();
  std::vector<std::uint64_t> thread_tasks(
      static_cast<std::size_t>(max_threads), 0);
  std::vector<double> thread_seconds(static_cast<std::size_t>(max_threads),
                                     0.0);

  std::vector<Count> aggregated(forest.plans().size(), 0);
#pragma omp parallel default(none) \
    shared(executor, aggregated, thread_tasks, thread_seconds) \
    firstprivate(n)
  {
    const int tid = omp_get_thread_num();
    // One workspace per thread per run: steady state allocates nothing.
    ForestExecutor::Workspace ws;
    executor.reset(ws);
    support::Timer timer;
#pragma omp for schedule(dynamic, kChunk)
    for (std::int64_t v = 0; v < n; ++v) {
      executor.accumulate_root(ws, static_cast<VertexId>(v));
      ++thread_tasks[static_cast<std::size_t>(tid)];
    }
    thread_seconds[static_cast<std::size_t>(tid)] = timer.elapsed_seconds();
#pragma omp critical
    for (std::size_t i = 0; i < aggregated.size(); ++i)
      aggregated[i] += ws.sums[i];
  }

  if (stats != nullptr) {
    stats->tasks = static_cast<std::uint64_t>(n);
    stats->task_groups =
        static_cast<std::uint64_t>((n + kChunk - 1) / kChunk);
    stats->per_thread_tasks = thread_tasks;
    stats->per_thread_seconds = thread_seconds;
  }
  return executor.finalize(aggregated);
}

}  // namespace graphpi
