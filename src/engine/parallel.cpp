#include "engine/parallel.h"

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "engine/forest.h"
#include "support/check.h"
#include "support/metrics.h"
#include "support/timer.h"
#include "support/trace.h"

namespace graphpi {

namespace {

/// Publishes one parallel run's scheduling stats into the metrics
/// registry: task/chunk totals, the number of workers that claimed any
/// work, and (when metrics are enabled) a per-worker busy-time
/// histogram whose spread exposes load imbalance.
void flush_parallel_metrics(std::uint64_t tasks, std::uint64_t chunks,
                            std::span<const std::uint64_t> thread_tasks,
                            std::span<const double> thread_seconds) {
  using support::metrics::Counter;
  using support::metrics::metric_counter;
  using support::metrics::metric_histogram;
  static Counter& c_runs = metric_counter("engine.parallel.runs");
  static Counter& c_tasks = metric_counter("engine.parallel.tasks");
  static Counter& c_chunks = metric_counter("engine.parallel.chunks_claimed");
  static Counter& c_workers = metric_counter("engine.parallel.workers");
  c_runs.inc();
  c_tasks.inc(tasks);
  c_chunks.inc(chunks);
  std::uint64_t busy_workers = 0;
  auto& h_busy = metric_histogram("engine.parallel.worker_busy_ms");
  const bool observe = support::metrics::enabled();
  for (std::size_t i = 0; i < thread_tasks.size(); ++i) {
    if (thread_tasks[i] == 0) continue;
    ++busy_workers;
    if (observe) h_busy.observe(thread_seconds[i] * 1e3);
  }
  c_workers.inc(busy_workers);
}

/// The task list: every valid prefix of `depth` schedule positions, stored
/// flat (one contiguous array, `depth` slots per task) so generating a few
/// million tasks performs O(1) allocations instead of one per task.
/// enumerate_prefixes emits in lexicographic order, which the grouping
/// below and the matcher's incremental prefix application both exploit.
struct TaskBuffer {
  std::vector<VertexId> flat;
  int depth = 1;

  [[nodiscard]] std::size_t count() const {
    return flat.size() / static_cast<std::size_t>(depth);
  }
  [[nodiscard]] std::span<const VertexId> task(std::size_t i) const {
    return {flat.data() + i * static_cast<std::size_t>(depth),
            static_cast<std::size_t>(depth)};
  }
};

TaskBuffer generate_tasks(const Matcher& matcher, int depth) {
  TaskBuffer tasks;
  tasks.depth = depth;
  Matcher::Workspace ws;
  matcher.enumerate_prefixes(ws, depth, [&tasks](std::span<const VertexId> p) {
    tasks.flat.insert(tasks.flat.end(), p.begin(), p.end());
  });
  return tasks;
}

/// Scheduling granule: a contiguous run of tasks sharing their depth-1
/// prefix (the outermost loop vertex). A worker executes a whole group on
/// one workspace, so the matcher's incremental apply_prefix re-validates
/// only the positions that differ between consecutive tasks — the shared
/// candidate intersections are built once per group instead of once per
/// task. Groups are split at kMaxGroupTasks so one hub's run of tasks
/// cannot starve the dynamic schedule.
using TaskGroup = std::pair<std::size_t, std::size_t>;  // [begin, end)

constexpr std::size_t kMaxGroupTasks = 64;

std::vector<TaskGroup> group_tasks(const TaskBuffer& tasks) {
  std::vector<TaskGroup> groups;
  const std::size_t n = tasks.count();
  std::size_t begin = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (tasks.task(i)[0] != tasks.task(begin)[0] ||
        i - begin >= kMaxGroupTasks) {
      groups.emplace_back(begin, i);
      begin = i;
    }
  }
  if (n > begin) groups.emplace_back(begin, n);
  return groups;
}

int clamp_task_depth(const Configuration& config, int requested) {
  const int outer = config.iep.k > 0 ? config.pattern.size() - config.iep.k
                                     : config.pattern.size();
  return std::clamp(requested, 1, std::max(1, outer));
}

}  // namespace

Count count_parallel(const Graph& graph, const Configuration& config,
                     const ParallelOptions& options, ParallelRunStats* stats,
                     const support::ExecControl* control,
                     support::RunReport* report) {
  const support::trace::Span span("parallel.count");
  const Matcher matcher(graph, config);
  const int depth = clamp_task_depth(config, options.task_depth);
  const TaskBuffer tasks = generate_tasks(matcher, depth);
  const std::vector<TaskGroup> groups = group_tasks(tasks);

  if (options.num_threads > 0) omp_set_num_threads(options.num_threads);
  const int max_threads = omp_get_max_threads();
  std::vector<std::uint64_t> thread_tasks(
      static_cast<std::size_t>(max_threads), 0);
  std::vector<double> thread_seconds(static_cast<std::size_t>(max_threads),
                                     0.0);

  // Cooperative stop: OpenMP worksharing loops cannot break, so workers
  // skip remaining groups once `stop` is set. Each group is <= 64 tasks,
  // so one group is the natural poll stride.
  const support::ExecControl* ctl =
      control != nullptr && control->armed() ? control : nullptr;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> done_units{0};
  std::atomic<int> stop_status{static_cast<int>(support::RunStatus::kOk)};

  Count aggregated = 0;
#pragma omp parallel default(none) \
    shared(tasks, groups, matcher, thread_tasks, thread_seconds, stop, \
               done_units, stop_status) \
    firstprivate(ctl) reduction(+ : aggregated)
  {
    const int tid = omp_get_thread_num();
    // One workspace per thread per run: every task executed by this thread
    // reuses the same buffers (and the candidate sets of any prefix shared
    // with the previous task) — steady state allocates nothing.
    Matcher::Workspace ws;
    support::Timer timer;
#pragma omp for schedule(dynamic, 1)
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (ctl != nullptr && stop.load(std::memory_order_relaxed)) continue;
      for (std::size_t t = groups[g].first; t < groups[g].second; ++t)
        aggregated += matcher.count_from_prefix(ws, tasks.task(t));
      const std::uint64_t in_group = groups[g].second - groups[g].first;
      thread_tasks[static_cast<std::size_t>(tid)] += in_group;
      if (ctl != nullptr) {
        const std::uint64_t total =
            done_units.fetch_add(in_group, std::memory_order_relaxed) +
            in_group;
        const support::RunStatus s = ctl->check(total);
        if (s != support::RunStatus::kOk) {
          int expected = static_cast<int>(support::RunStatus::kOk);
          stop_status.compare_exchange_strong(expected, static_cast<int>(s));
          stop.store(true, std::memory_order_relaxed);
        }
      }
    }
    thread_seconds[static_cast<std::size_t>(tid)] = timer.elapsed_seconds();
    matcher.flush_metrics(ws, 0);  // IEP-term tally; tasks counted below
  }

  if (stats != nullptr) {
    stats->tasks = tasks.count();
    stats->task_groups = groups.size();
    stats->per_thread_tasks = thread_tasks;
    stats->per_thread_seconds = thread_seconds;
  }
  flush_parallel_metrics(tasks.count(), groups.size(), thread_tasks,
                         thread_seconds);
  const auto status = static_cast<support::RunStatus>(stop_status.load());
  support::observe_run_status(status);
  if (report != nullptr) {
    report->status = status;
    report->completed_roots = ctl != nullptr ? done_units.load() : tasks.count();
  }
  if (status == support::RunStatus::kOk)
    return matcher.finalize_partial_counts(aggregated);
  // Partial IEP sums are generally not divisible by x: best-effort.
  const Plan& plan = matcher.plan();
  return plan.iep_active() ? aggregated / plan.iep.divisor : aggregated;
}

void enumerate_parallel(const Graph& graph, const Configuration& config,
                        const EmbeddingCallback& cb,
                        const ParallelOptions& options) {
  GRAPHPI_CHECK_MSG(config.iep.k == 0,
                    "IEP configurations cannot list embeddings");
  const Matcher matcher(graph, config);
  const int depth = clamp_task_depth(config, options.task_depth);
  const TaskBuffer tasks = generate_tasks(matcher, depth);
  const std::vector<TaskGroup> groups = group_tasks(tasks);

  if (options.num_threads > 0) omp_set_num_threads(options.num_threads);
  std::mutex emit_mutex;

  // Each worker re-runs the continuation of its prefix with a serialized
  // callback. The per-group matcher work is independent; only emission is
  // synchronized.
#pragma omp parallel default(none) shared(tasks, groups, matcher, cb, emit_mutex)
  {
    Matcher::Workspace ws;
    std::vector<std::vector<VertexId>> local;
#pragma omp for schedule(dynamic, 1)
    for (std::size_t g = 0; g < groups.size(); ++g) {
      // Collect the group's embeddings locally, then emit under the lock.
      local.clear();
      for (std::size_t t = groups[g].first; t < groups[g].second; ++t) {
        matcher.enumerate_from_prefix(
            ws, tasks.task(t), [&local](std::span<const VertexId> emb) {
              local.emplace_back(emb.begin(), emb.end());
            });
      }
      const std::scoped_lock lock(emit_mutex);
      for (const auto& e : local) cb(e);
    }
  }
}

std::vector<Count> count_batch_parallel(const Graph& graph,
                                        const PlanForest& forest,
                                        const ParallelOptions& options,
                                        ParallelRunStats* stats,
                                        const support::ExecControl* control,
                                        support::RunReport* report) {
  const support::trace::Span span("parallel.count_batch");
  const ForestExecutor executor(graph, forest);
  GRAPHPI_CHECK_MSG(forest.root().count_leaves.empty(),
                    "count_batch_parallel requires plans with >= 2 vertices");

  // One task per root vertex, claimed in chunks: consecutive vertices
  // share nothing across tasks (the depth-0 loop is unconstrained), so
  // the chunk size only amortizes scheduling overhead.
  constexpr std::int64_t kChunk = 64;
  const std::int64_t n = graph.vertex_count();

  if (options.num_threads > 0) omp_set_num_threads(options.num_threads);
  const int max_threads = omp_get_max_threads();
  std::vector<std::uint64_t> thread_tasks(
      static_cast<std::size_t>(max_threads), 0);
  std::vector<double> thread_seconds(static_cast<std::size_t>(max_threads),
                                     0.0);

  // Cooperative stop (worksharing loops cannot break): workers count
  // roots locally and flush to the shared tally only at stride
  // boundaries, where they also run the clock/flag/budget check.
  const support::ExecControl* ctl =
      control != nullptr && control->armed() ? control : nullptr;
  const std::uint64_t mask = ctl != nullptr ? ctl->poll_mask() : 0;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> done_roots{0};
  std::atomic<int> stop_status{static_cast<int>(support::RunStatus::kOk)};

  std::vector<Count> aggregated(forest.plans().size(), 0);
#pragma omp parallel default(none) \
    shared(executor, aggregated, thread_tasks, thread_seconds, stop, \
               done_roots, stop_status) \
    firstprivate(n, ctl, mask)
  {
    const int tid = omp_get_thread_num();
    // One workspace per thread per run: steady state allocates nothing.
    ForestExecutor::Workspace ws;
    executor.reset(ws);
    support::Timer timer;
    std::uint64_t local_done = 0;
#pragma omp for schedule(dynamic, kChunk)
    for (std::int64_t v = 0; v < n; ++v) {
      if (ctl != nullptr && stop.load(std::memory_order_relaxed)) continue;
      executor.accumulate_root(ws, static_cast<VertexId>(v));
      ++thread_tasks[static_cast<std::size_t>(tid)];
      if (ctl != nullptr) {
        ++local_done;
        if ((local_done & mask) == 0) {
          const std::uint64_t total =
              done_roots.fetch_add(mask + 1, std::memory_order_relaxed) +
              mask + 1;
          const support::RunStatus s = ctl->check(total);
          if (s != support::RunStatus::kOk) {
            int expected = static_cast<int>(support::RunStatus::kOk);
            stop_status.compare_exchange_strong(expected, static_cast<int>(s));
            stop.store(true, std::memory_order_relaxed);
          }
        }
      }
    }
    if (ctl != nullptr)  // flush the sub-stride remainder
      done_roots.fetch_add(local_done & mask, std::memory_order_relaxed);
    thread_seconds[static_cast<std::size_t>(tid)] = timer.elapsed_seconds();
    // Memo/IEP tallies plus this worker's completed roots.
    executor.flush_metrics(ws, thread_tasks[static_cast<std::size_t>(tid)]);
#pragma omp critical
    for (std::size_t i = 0; i < aggregated.size(); ++i)
      aggregated[i] += ws.sums[i];
  }

  if (stats != nullptr) {
    stats->tasks = static_cast<std::uint64_t>(n);
    stats->task_groups =
        static_cast<std::uint64_t>((n + kChunk - 1) / kChunk);
    stats->per_thread_tasks = thread_tasks;
    stats->per_thread_seconds = thread_seconds;
  }
  flush_parallel_metrics(static_cast<std::uint64_t>(n),
                         static_cast<std::uint64_t>((n + kChunk - 1) / kChunk),
                         thread_tasks, thread_seconds);
  const auto status = static_cast<support::RunStatus>(stop_status.load());
  support::observe_run_status(status);
  if (report != nullptr) {
    report->status = status;
    report->completed_roots =
        ctl != nullptr ? done_roots.load() : static_cast<std::uint64_t>(n);
  }
  return status == support::RunStatus::kOk ? executor.finalize(aggregated)
                                           : executor.finalize_partial(aggregated);
}

}  // namespace graphpi
