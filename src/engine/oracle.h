// Brute-force correctness oracle.
//
// An intentionally independent implementation of embedding counting used
// by the test suite to validate the optimized engines. It shares no code
// with Matcher: candidates come from per-vertex adjacency walks plus
// has_edge probes (no sorted-set algebra, no restrictions, no schedules).
// Only suitable for small graphs.
#pragma once

#include "core/pattern.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace graphpi {

/// Counts distinct embeddings (automorphism-deduplicated) by enumerating
/// all injective maps and dividing by |Aut|.
[[nodiscard]] Count oracle_count(const Graph& graph, const Pattern& pattern);

}  // namespace graphpi
