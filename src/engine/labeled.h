// Labeled pattern matching (the Section II-A extension, executable).
//
// Same nested-loop algorithm as Matcher, with two changes:
//   * every candidate must carry the pattern vertex's label (the depth-0
//     loop iterates the label's vertex list instead of all vertices),
//   * restrictions come from the label-preserving automorphism group.
// IEP is not applied in the labeled engine (the closed-form suffix sums
// would additionally need label filtering; counting-only labeled
// workloads run the plain loops).
#pragma once

#include <functional>
#include <span>

#include "core/labeled_pattern.h"
#include "core/restriction.h"
#include "core/schedule.h"
#include "graph/labeled_graph.h"
#include "graph/types.h"

namespace graphpi {

class LabeledMatcher {
 public:
  /// Plans internally: picks the first phase-1 schedule and the
  /// lexicographically first restriction set of the label-preserving
  /// group. A custom (schedule, restrictions) pair may be supplied.
  LabeledMatcher(const LabeledGraph& graph, LabeledPattern pattern);
  LabeledMatcher(const LabeledGraph& graph, LabeledPattern pattern,
                 Schedule schedule, RestrictionSet restrictions);

  /// Counts label-respecting embeddings, each subgraph once.
  [[nodiscard]] Count count() const;

  /// Lists embeddings (indexed by pattern vertex).
  void enumerate(
      const std::function<void(std::span<const VertexId>)>& cb) const;

  [[nodiscard]] const Schedule& schedule() const noexcept {
    return schedule_;
  }
  [[nodiscard]] const RestrictionSet& restrictions() const noexcept {
    return restrictions_;
  }

 private:
  struct Workspace;
  Count recurse(Workspace& ws, int depth,
                const std::function<void(std::span<const VertexId>)>* cb)
      const;

  const LabeledGraph* graph_;
  LabeledPattern pattern_;
  Schedule schedule_;
  RestrictionSet restrictions_;
};

/// Brute-force labeled oracle for tests (independent implementation).
[[nodiscard]] Count labeled_oracle_count(const LabeledGraph& graph,
                                         const LabeledPattern& pattern);

}  // namespace graphpi
