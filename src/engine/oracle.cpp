#include "engine/oracle.h"

#include "core/automorphism.h"
#include "support/check.h"

namespace graphpi {

namespace {

/// Assigns pattern vertices in natural order 0..n-1. When vertex i has an
/// already-assigned pattern neighbor, its candidates are that neighbor's
/// adjacency; otherwise all graph vertices. Every pattern edge to an
/// assigned vertex is verified with a has_edge probe.
Count assign(const Graph& g, const Pattern& p, int i,
             VertexId* image) {
  const int n = p.size();
  if (i == n) return 1;

  int guide = -1;  // an assigned pattern neighbor of i, if any
  for (int j = 0; j < i; ++j)
    if (p.has_edge(j, i)) {
      guide = j;
      break;
    }

  Count total = 0;
  auto try_candidate = [&](VertexId v) {
    for (int j = 0; j < i; ++j)
      if (image[j] == v) return;  // injectivity
    for (int j = 0; j < i; ++j)
      if (p.has_edge(j, i) && !g.has_edge(image[j], v)) return;
    image[i] = v;
    total += assign(g, p, i + 1, image);
  };

  if (guide >= 0) {
    for (VertexId v : g.neighbors(image[guide])) try_candidate(v);
  } else {
    for (VertexId v = 0; v < g.vertex_count(); ++v) try_candidate(v);
  }
  return total;
}

}  // namespace

Count oracle_count(const Graph& graph, const Pattern& pattern) {
  VertexId image[Pattern::kMaxVertices] = {};
  const Count redundant = assign(graph, pattern, 0, image);
  const Count aut = automorphism_count(pattern);
  GRAPHPI_CHECK(redundant % aut == 0);
  return redundant / aut;
}

}  // namespace graphpi
