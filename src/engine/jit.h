// Self-compiling kernel cache: the execution path behind
// Backend::kGenerated.
//
// The pipeline is the paper's "code generation and compilation" stage
// made a runtime service: a Plan (or PlanForest) is emitted to C++ by
// src/codegen/, compiled to a shared object by the system compiler,
// dlopened, and invoked through the C ABI of codegen/kernel_abi.h. The
// kernel calls back into the host's runtime-dispatched set kernels
// (graph/vertex_set.h), so one compiled artifact serves scalar and
// vector machines and follows select_kernel_isa() switches.
//
// Cache key: the canonical forms of the patterns (core/pattern_canon.h)
// plus a fingerprint of the compiled plans — schedules, restriction
// windows, IEP terms — which is exactly what graph traits influence
// through the planner. Implemented as a hash of the emitted source, so
// two graphs that plan the same pattern identically share one kernel.
// Artifacts persist on disk (default: <tmp>/graphpi-kernel-cache,
// override with GRAPHPI_KERNEL_CACHE_DIR), so later processes skip the
// compile entirely; loaded handles stay open for the process lifetime.
//
// Every entry point degrades gracefully: when no compiler is found (or
// GRAPHPI_JIT_DISABLE is set), lookups report unavailability and the
// callers (GraphPi::count / count_batch) fall back to the interpreter.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "codegen/kernel_abi.h"
#include "core/plan_forest.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "support/exec_control.h"

namespace graphpi::jit {

/// Generated batch kernel: fills one finalized count per forest plan.
/// `run` is a codegen::KernelRunOptions* (nullable — defaults).
using GeneratedBatchFn = void (*)(const void* graph, const void* ops,
                                  const void* run,
                                  unsigned long long* counts);

/// True when a working C++ compiler was found (GRAPHPI_CXX, CXX, then
/// c++ / g++ / clang++, probed once per process) and the JIT is not
/// disabled via GRAPHPI_JIT_DISABLE.
[[nodiscard]] bool compiler_available();

/// Command name of the probed compiler; empty when unavailable.
[[nodiscard]] const std::string& compiler_command();

class KernelCache {
 public:
  struct Stats {
    std::uint64_t memory_hits = 0;  ///< served from the in-process map
    std::uint64_t disk_hits = 0;    ///< dlopened a previously built .so
    std::uint64_t compiles = 0;     ///< invoked the system compiler
    std::uint64_t failures = 0;     ///< compile/dlopen/ABI failures
  };

  /// Process-wide cache (kernels are plan-keyed, not graph-keyed, so one
  /// instance serves every GraphPi handle). Thread-safe.
  static KernelCache& instance();

  /// Compiled kernel for `forest`, building it on a miss. Returns nullptr
  /// when no compiler is available or the build fails (the failure is
  /// remembered — subsequent calls are cheap).
  [[nodiscard]] GeneratedBatchFn get(const PlanForest& forest);

  [[nodiscard]] Stats stats() const;

  /// Directory holding the .cpp/.so artifacts.
  [[nodiscard]] const std::string& cache_dir() const { return dir_; }

 private:
  KernelCache();
  struct Entry;
  struct Impl;
  /// Publishes a build outcome under the lock (first writer wins) and
  /// updates the stats; returns the entry's final kernel.
  GeneratedBatchFn record_result(std::uint64_t key, GeneratedBatchFn fn,
                                 bool disk_hit, bool compiled);
  std::string dir_;
  Impl* impl_;  ///< intentionally leaked: dlopened code may outlive exit
};

/// Runs `forest` against `graph` through a generated kernel: ensures the
/// hub index when a plan wants it, builds the ABI view, invokes the
/// cached kernel. Kernels are compiled with OpenMP when the system
/// compiler supports -fopenmp, and partition the root loop over
/// `threads` workers (<= 0: runtime default). nullopt when the JIT is
/// unavailable — callers fall back to the interpreter.
///
/// An armed `control` maps onto the v3 kernel ABI: poll stride and root
/// budget pass straight through, while deadlines and the caller's cancel
/// flag are serviced by a host watchdog thread that flips the kernel's
/// cancel cell (generated code never reads clocks). On a stop the kernel
/// returns best-effort partial counts and `report` carries the status
/// and completed-root tally.
[[nodiscard]] std::optional<std::vector<Count>> run_generated(
    const Graph& graph, const PlanForest& forest, int threads = 0,
    const support::ExecControl* control = nullptr,
    support::RunReport* report = nullptr);

}  // namespace graphpi::jit
