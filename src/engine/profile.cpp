#include "engine/profile.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "graph/vertex_set.h"
#include "support/check.h"

namespace graphpi {

std::string ExecutionProfile::to_string() const {
  std::ostringstream oss;
  oss << "embeddings=" << embeddings;
  for (std::size_t d = 0; d < loop_entries.size(); ++d) {
    oss << " | d" << d << ": entries=" << loop_entries[d]
        << " mean_cand=" << mean_candidates(static_cast<int>(d))
        << " survive=" << bound_survival(static_cast<int>(d));
  }
  return oss.str();
}

namespace {

/// A self-contained instrumented interpreter. Kept separate from
/// Matcher's hot path on purpose: profiling counters in the inner loops
/// would pollute the numbers every bench reports.
struct ProfiledRun {
  const Graph& g;
  const Configuration& config;
  ExecutionProfile& profile;
  int n;
  VertexId mapped[Pattern::kMaxVertices] = {};
  std::vector<VertexId> bufs[Pattern::kMaxVertices];
  std::vector<VertexId> tmp;
  std::vector<VertexId> all_vertices;

  Count run(int depth) {
    profile.loop_entries[static_cast<std::size_t>(depth)]++;
    const int pv = config.schedule.vertex_at(depth);

    // Build candidates, counting intersection work.
    std::vector<int> preds;
    for (int e = 0; e < depth; ++e)
      if (config.pattern.has_edge(config.schedule.vertex_at(e), pv))
        preds.push_back(e);

    std::span<const VertexId> candidates;
    if (preds.empty()) {
      if (all_vertices.size() != g.vertex_count()) {
        all_vertices.resize(g.vertex_count());
        std::iota(all_vertices.begin(), all_vertices.end(), VertexId{0});
      }
      candidates = all_vertices;
    } else if (preds.size() == 1) {
      candidates = g.neighbors(mapped[preds[0]]);
    } else {
      auto& out = bufs[depth];
      const auto a = g.neighbors(mapped[preds[0]]);
      const auto b = g.neighbors(mapped[preds[1]]);
      profile.intersection_work[static_cast<std::size_t>(depth)] +=
          a.size() + b.size();
      intersect(a, b, out);
      for (std::size_t p = 2; p < preds.size(); ++p) {
        const auto c = g.neighbors(mapped[preds[p]]);
        profile.intersection_work[static_cast<std::size_t>(depth)] +=
            out.size() + c.size();
        intersect(out, c, tmp);
        std::swap(out, tmp);
      }
      candidates = out;
    }
    profile.candidates[static_cast<std::size_t>(depth)] += candidates.size();

    // Restriction bounds.
    VertexId lo = 0, hi = 0;
    bool has_lo = false, has_hi = false;
    for (const auto& r : config.restrictions) {
      const int dg = config.schedule.depth_of(r.greater);
      const int ds = config.schedule.depth_of(r.smaller);
      if (std::max(dg, ds) != depth) continue;
      if (ds == depth) {
        hi = has_hi ? std::min(hi, mapped[dg]) : mapped[dg];
        has_hi = true;
      } else {
        lo = has_lo ? std::max(lo, mapped[ds]) : mapped[ds];
        has_lo = true;
      }
    }
    const VertexId* first = candidates.data();
    const VertexId* last = candidates.data() + candidates.size();
    if (has_lo) first = std::upper_bound(first, last, lo);
    if (has_hi) last = std::lower_bound(first, last, hi);
    profile.candidates_in_bounds[static_cast<std::size_t>(depth)] +=
        static_cast<std::uint64_t>(last - first);

    Count total = 0;
    for (const VertexId* it = first; it != last; ++it) {
      const VertexId v = *it;
      bool used = false;
      for (int d = 0; d < depth && !used; ++d) used = mapped[d] == v;
      if (used) continue;
      mapped[depth] = v;
      if (depth == n - 1) {
        ++total;
      } else {
        total += run(depth + 1);
      }
    }
    return total;
  }
};

}  // namespace

Count count_profiled(const Graph& graph, const Configuration& config,
                     ExecutionProfile& out) {
  const int n = config.pattern.size();
  GRAPHPI_CHECK(config.schedule.size() == n);
  out = ExecutionProfile{};
  out.loop_entries.assign(static_cast<std::size_t>(n), 0);
  out.candidates.assign(static_cast<std::size_t>(n), 0);
  out.candidates_in_bounds.assign(static_cast<std::size_t>(n), 0);
  out.intersection_work.assign(static_cast<std::size_t>(n), 0);

  ProfiledRun run{graph, config, out, n, {}, {}, {}, {}};
  out.embeddings = run.run(0);
  return out.embeddings;
}

}  // namespace graphpi
