// GraphZero baseline reproduction.
//
// GraphZero (Mawhirter et al., 2019) is the state of the art the paper
// compares against. Since it was not released, the paper reproduces its
// algorithms; we do the same (DESIGN.md documents fidelity):
//
//   * restriction generation — GraphZero produces exactly ONE set of
//     restrictions per pattern (group-theory symmetry breaking without
//     exploring alternatives). We reproduce it as the deterministic first
//     branch of Algorithm 1, which breaks symmetry the same way.
//   * schedule selection — GraphZero inherits AutoMine's estimator, which
//     models loop sizes from edge density alone: it has no notion of
//     clustering (triangle count) and ignores how restrictions prune the
//     search. We reproduce that estimator faithfully: cardinalities use
//     p1 only and f_i = 0, over phase-1 (connected) schedules.
//
// The performance gap between this baseline and GraphPi is exactly what
// Figures 8/9 and Table II measure.
#pragma once

#include "core/configuration.h"
#include "core/pattern.h"
#include "core/perf_model.h"
#include "core/restriction.h"
#include "core/schedule.h"
#include "graph/graph.h"

namespace graphpi::graphzero {

/// The single restriction set GraphZero generates for `pattern`.
[[nodiscard]] RestrictionSet restriction_set(const Pattern& pattern);

/// AutoMine/GraphZero-style schedule choice: connected schedules scored
/// with a density-only cost model (no triangle statistics, no restriction
/// awareness).
[[nodiscard]] Schedule select_schedule(const Pattern& pattern,
                                       const GraphStats& stats);

/// The density-only cost estimate used by select_schedule (exposed for
/// the Figure 9 analysis).
[[nodiscard]] double estimate_cost(const Pattern& pattern,
                                   const Schedule& schedule,
                                   const GraphStats& stats);

/// Full GraphZero pipeline: its schedule plus its single restriction set.
[[nodiscard]] Configuration plan(const Pattern& pattern,
                                 const GraphStats& stats);

/// Counts embeddings the GraphZero way (never uses IEP).
[[nodiscard]] Count count(const Graph& graph, const Pattern& pattern);

}  // namespace graphpi::graphzero
