// C++ code generation from the executable plan IR.
//
// The paper's pipeline ends in "optimal configuration → generated C++
// kernel" (Figure 3, after AutoMine's method). This generator targets the
// same IR every engine executes — core::Plan for one pattern,
// core::PlanForest for a prefix-sharing batch — so emitted kernels carry
// the full plan semantics the Matcher and ForestExecutor run:
//
//   * restriction windows: each loop's [lo, hi) bound is resolved from
//     the mapped vertices and enforced on the sorted candidates with a
//     start lower-bound and an early `break` (Figure 5(b));
//   * counting-only leaves: the innermost loop of a plain plan never
//     materializes its candidate set — the windowed intersection size is
//     computed by the size-only kernels, minus the already-used vertices;
//   * IEP: the suffix candidate sets S_1..S_k are materialized once per
//     outer assignment and the signed inclusion–exclusion term products
//     (Algorithm 2) are unrolled inline; the kernel divides the
//     aggregated sum by the surviving-automorphism factor x;
//   * hub hints: multi-way intersections probe the graph view's hub
//     bitmap rows when present, mirroring exec::intersect_adjacencies;
//   * forests: one function per trie node, per-plan restriction branches
//     narrowing a runtime active-plan bitmask, exactly the
//     ForestExecutor model (minus its leaf memoization);
//   * parallelism: the root-vertex loop is emitted as an OpenMP
//     `parallel for` over a per-root entry function with one traversal
//     state per worker and a per-plan reduction — the
//     count_batch_parallel model — guarded by `#ifdef _OPENMP` so the
//     same source still builds (serially) without -fopenmp. The thread
//     count arrives through the ABI's KernelRunOptions.
//
// Emitted sources are self-contained C++17 translation units. They take
// the data graph and, optionally, the host's runtime-dispatched set
// kernels through the C ABI in kernel_abi.h — with ops == nullptr they
// run on portable inline fallbacks, so a standalone build needs nothing
// but a compiler. The execution path is engine/jit.h: KernelCache
// compiles emitted sources with the system compiler, dlopens the result,
// and serves Backend::kGenerated.
//
// tests/codegen/codegen_exec_test.cpp compiles emitted kernels (plain,
// IEP, and forest forms) and checks them against Matcher and
// ForestExecutor counts under both scalar and vector dispatch.
#pragma once

#include <string>

#include "core/configuration.h"
#include "core/plan.h"
#include "core/plan_forest.h"

namespace graphpi::codegen {

struct CodegenOptions {
  /// Name of the emitted extern "C" entry point. The ABI version probe is
  /// exported alongside as "<name>_abi".
  std::string function_name = "graphpi_generated_count";
};

/// Emits a translation unit defining
///   extern "C" unsigned long long <name>(const void* graph,
///                                        const void* ops,
///                                        const void* run);
/// counting the embeddings of the plan's pattern (final count: IEP plans
/// divide by x internally). `graph` / `ops` / `run` follow kernel_abi.h
/// (`run` may be null for defaults). The plan must have >= 2 steps.
[[nodiscard]] std::string generate_source(const Plan& plan,
                                          const CodegenOptions& options = {});

/// Convenience: compiles `config` (schedule must cover the pattern) into
/// a Plan first. Unlike the pre-IR generator, IEP configurations are
/// fully supported.
[[nodiscard]] std::string generate_source(const Configuration& config,
                                          const CodegenOptions& options = {});

/// Emits a batch kernel for a whole forest:
///   extern "C" void <name>(const void* graph, const void* ops,
///                          const void* run,
///                          unsigned long long* counts);
/// `counts` receives one finalized count per forest.plans() entry.
[[nodiscard]] std::string generate_forest_source(
    const PlanForest& forest, const CodegenOptions& options = {});

/// Emits a complete standalone program: the counting kernel (running on
/// its inline fallback kernels) plus a main() that loads an edge list
/// ("u v" lines) from argv[1], builds CSR and prints the count. Useful as
/// human-readable documentation of what the engine executes.
[[nodiscard]] std::string generate_standalone(const Configuration& config,
                                              const CodegenOptions& options = {});

}  // namespace graphpi::codegen
