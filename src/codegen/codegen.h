// C++ code generation for a configuration (Figure 3: "GraphPi uses the
// pattern matching algorithm and the code generation method proposed by
// AutoMine to generate efficient C++ code with this configuration").
//
// The emitted code has exactly the shape of Figure 5(b): one nested loop
// per schedule position, candidate sets built by sorted-merge
// intersections, restrictions enforced with early `break` on the sorted
// candidates, duplicate vertices skipped. It is self-contained (no GraphPi
// headers) and operates directly on CSR arrays, so it can be compiled by
// any C++17 compiler.
//
// The in-process Matcher executes the identical loop structure; the
// integration test (tests/codegen/codegen_exec_test.cpp) compiles emitted
// code with the system compiler and checks that both produce the same
// counts.
#pragma once

#include <string>

#include "core/configuration.h"

namespace graphpi::codegen {

struct CodegenOptions {
  /// Name of the emitted extern "C" counting function.
  std::string function_name = "graphpi_generated_count";
};

/// Emits a translation unit defining
///   extern "C" unsigned long long <name>(
///       const unsigned long long* offsets,
///       const unsigned* neighbors,
///       unsigned n_vertices);
/// that counts the embeddings of the configuration's pattern. Plain
/// enumeration (IEP plans are executed by the library engine, not by
/// generated code — matching the paper's generated kernels, which inline
/// the IEP sums only for counting-only workloads; our generator emits the
/// enumeration form).
[[nodiscard]] std::string generate_source(const Configuration& config,
                                          const CodegenOptions& options = {});

/// Emits a complete standalone program: the counting kernel plus a main()
/// that loads an edge list ("u v" lines) from argv[1], builds CSR and
/// prints the count. Useful as human-readable documentation of what the
/// engine executes.
[[nodiscard]] std::string generate_standalone(const Configuration& config,
                                              const CodegenOptions& options = {});

}  // namespace graphpi::codegen
