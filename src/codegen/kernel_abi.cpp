#include "codegen/kernel_abi.h"

#include "graph/vertex_set.h"

namespace graphpi::codegen {

namespace {

// Flat extern-"C"-shaped adapters over the dispatching kernels. They pick
// up whatever table select_kernel_isa() has active at call time, so a
// generated kernel follows runtime ISA switches exactly like the
// interpreter.

std::uint64_t ops_intersect(const std::uint32_t* a, std::uint64_t an,
                            const std::uint32_t* b, std::uint64_t bn,
                            std::uint32_t* out) {
  return intersect_into({a, static_cast<std::size_t>(an)},
                        {b, static_cast<std::size_t>(bn)}, out);
}

std::uint64_t ops_intersect_size_bounded(const std::uint32_t* a,
                                         std::uint64_t an,
                                         const std::uint32_t* b,
                                         std::uint64_t bn, std::uint32_t lo,
                                         std::uint32_t hi) {
  return intersect_size_bounded({a, static_cast<std::size_t>(an)},
                                {b, static_cast<std::size_t>(bn)}, lo, hi);
}

std::uint64_t ops_intersect_bitmap(const std::uint32_t* a, std::uint64_t an,
                                   const std::uint64_t* bits,
                                   std::uint32_t* out) {
  return intersect_bitmap_into({a, static_cast<std::size_t>(an)}, bits, out);
}

std::uint64_t ops_intersect_size_bitmap_bounded(const std::uint32_t* a,
                                                std::uint64_t an,
                                                const std::uint64_t* bits,
                                                std::uint32_t lo,
                                                std::uint32_t hi) {
  return intersect_size_bitmap_bounded({a, static_cast<std::size_t>(an)},
                                       bits, lo, hi);
}

}  // namespace

const KernelOps& host_kernel_ops() noexcept {
  static const KernelOps ops{&ops_intersect, &ops_intersect_size_bounded,
                             &ops_intersect_bitmap,
                             &ops_intersect_size_bitmap_bounded};
  return ops;
}

KernelGraph make_kernel_graph(const Graph& g) noexcept {
  KernelGraph view;
  view.offsets = g.raw_offsets().data();
  view.neighbors = g.raw_neighbors().data();
  view.n_vertices = g.vertex_count();
  if (g.has_hub_index() && !g.hub_slots().empty()) {
    view.hub_slot = g.hub_slots().data();
    view.hub_bits = g.hub_rows().data();
    view.hub_words = g.hub_words();
  }
  return view;
}

}  // namespace graphpi::codegen
