// The C ABI between the host and generated kernels.
//
// Emitted kernels are self-contained translation units (no GraphPi
// headers), so they mirror these structs verbatim (as `GenGraph` /
// `GenOps` / `GenRun` in the emitted source) and take them through opaque
// `const void*` parameters:
//
//   extern "C" unsigned long long <name>(const void* graph, const void* ops,
//                                        const void* run);
//   extern "C" void <name>(const void* graph, const void* ops,
//                          const void* run,
//                          unsigned long long* counts);   // forest form
//   extern "C" unsigned <name>_abi();                     // layout version
//
// `graph` is the data graph: plain CSR arrays plus the optional hub
// bitmap index (null slot array when not built — kernels fall back to
// merge intersections, exactly like the interpreter without the index).
// `ops` is the host's set-kernel table, routed through the runtime CPU
// dispatch in graph/vertex_set.h — this is how one compiled kernel serves
// scalar and vector machines, and how force_scalar_kernels() /
// select_kernel_isa() apply to generated code too. Kernels accept
// `ops == nullptr` and fall back to portable inline implementations
// (the standalone programs emitted by generate_standalone use this).
// `run` carries per-invocation execution knobs (KernelRunOptions); null
// means defaults. Kernels compiled with OpenMP partition the root-vertex
// loop across threads (each worker owns its traversal state and calls the
// stateless host ops concurrently — the ops table is safe to share);
// without OpenMP the same kernel degrades to the serial loop.
//
// Any layout or calling-convention change here MUST bump
// kKernelAbiVersion; the KernelCache (engine/jit.h) refuses to run a
// dlopened kernel whose <name>_abi() disagrees (version 1 kernels lacked
// the `run` parameter; version 2 lacked the cancellation/budget fields of
// KernelRunOptions) and transparently recompiles or falls back to the
// interpreter instead.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace graphpi::codegen {

inline constexpr unsigned kKernelAbiVersion = 3;

/// CSR view + optional hub index handed to a generated kernel. Mirrored
/// as `GenGraph` in emitted sources — field order and types are the ABI.
struct KernelGraph {
  const std::uint64_t* offsets = nullptr;  ///< n_vertices + 1 entries
  const std::uint32_t* neighbors = nullptr;
  std::uint32_t n_vertices = 0;
  /// Hub bitmap index (graph.h); null slot array disables hub probing.
  const std::uint32_t* hub_slot = nullptr;  ///< 0xffffffff = not a hub
  const std::uint64_t* hub_bits = nullptr;  ///< rows of hub_words words
  std::uint64_t hub_words = 0;
};

/// Host set kernels a generated kernel calls back into. Mirrored as
/// `GenOps` in emitted sources. All sorted inputs strictly ascending;
/// `out` needs min(an, bn) + 8 capacity (vector block stores).
struct KernelOps {
  std::uint64_t (*intersect)(const std::uint32_t* a, std::uint64_t an,
                             const std::uint32_t* b, std::uint64_t bn,
                             std::uint32_t* out) = nullptr;
  std::uint64_t (*intersect_size_bounded)(const std::uint32_t* a,
                                          std::uint64_t an,
                                          const std::uint32_t* b,
                                          std::uint64_t bn, std::uint32_t lo,
                                          std::uint32_t hi) = nullptr;
  std::uint64_t (*intersect_bitmap)(const std::uint32_t* a, std::uint64_t an,
                                    const std::uint64_t* bits,
                                    std::uint32_t* out) = nullptr;
  std::uint64_t (*intersect_size_bitmap_bounded)(const std::uint32_t* a,
                                                 std::uint64_t an,
                                                 const std::uint64_t* bits,
                                                 std::uint32_t lo,
                                                 std::uint32_t hi) = nullptr;
};

/// Per-invocation execution knobs. Mirrored as `GenRun` in emitted
/// sources; kernels accept a null pointer as all-defaults (unbounded).
struct KernelRunOptions {
  /// OpenMP worker count for the root-partitioned loop; <= 0 uses the
  /// OpenMP runtime default. Ignored by kernels compiled without OpenMP.
  std::int32_t threads = 0;
  /// Root vertices between cooperative-stop checks per worker; 0 = the
  /// kernel default (64). Rounded up to a power of two by the kernel.
  std::uint32_t poll_stride = 0;
  /// Cooperative cancel flag (host-owned; any thread may set it nonzero).
  /// Workers poll it per `poll_stride` completed roots and stop early.
  /// Null = never cancelled. The host arms deadlines by flipping this
  /// flag from a watchdog thread — kernels never read clocks.
  const volatile std::int32_t* cancel = nullptr;
  /// Stop after ~this many completed roots across all workers (0 =
  /// unlimited); enforced at poll boundaries like the cancel flag.
  std::uint64_t root_budget = 0;
  /// Out (optional): roots fully processed before the kernel returned.
  std::uint64_t* completed_roots = nullptr;
  /// Out (optional): why the kernel returned — 0 ran to completion,
  /// 1 cancel flag observed, 2 root budget exhausted. On a nonzero stop
  /// reason the produced counts are best-effort partials (IEP sums are
  /// divided without a divisibility guarantee).
  std::int32_t* stop_reason = nullptr;
};

/// The ops table backed by the host's runtime-dispatched kernels
/// (graph/vertex_set.h). One static instance; always valid. All entries
/// are stateless and safe to call from concurrent kernel workers.
[[nodiscard]] const KernelOps& host_kernel_ops() noexcept;

/// View over `g` for a kernel call. Includes the hub index iff built —
/// call g.ensure_hub_index() first when the plan wants it. The view
/// borrows; `g` must outlive every call made with it.
[[nodiscard]] KernelGraph make_kernel_graph(const Graph& g) noexcept;

}  // namespace graphpi::codegen
