#include "dist/runtime.h"

#include <algorithm>
#include <deque>

#include "engine/matcher.h"
#include "support/check.h"
#include "support/timer.h"

namespace graphpi::dist {

namespace {

int clamp_task_depth(const Configuration& config, int requested) {
  const int outer = config.iep.k > 0 ? config.pattern.size() - config.iep.k
                                     : config.pattern.size();
  return std::clamp(requested, 1, std::max(1, outer));
}

}  // namespace

Count distributed_count(const Graph& graph, const Configuration& config,
                        const ClusterOptions& options, ClusterStats* stats) {
  GRAPHPI_CHECK_MSG(options.nodes >= 1, "cluster needs at least one node");
  const Matcher matcher(graph, config);
  const int depth = clamp_task_depth(config, options.task_depth);
  const auto nodes = static_cast<std::size_t>(options.nodes);

  // Master: run the outer loops, pack tasks flat, deal them round-robin.
  std::vector<VertexId> flat;
  {
    Matcher::Workspace master_ws;
    matcher.enumerate_prefixes(master_ws, depth,
                               [&flat](std::span<const VertexId> p) {
                                 flat.insert(flat.end(), p.begin(), p.end());
                               });
  }
  const std::size_t task_count =
      flat.size() / static_cast<std::size_t>(depth);
  const auto task = [&flat, depth](std::size_t i) {
    return std::span<const VertexId>{
        flat.data() + i * static_cast<std::size_t>(depth),
        static_cast<std::size_t>(depth)};
  };

  std::vector<std::deque<std::size_t>> queues(nodes);
  for (std::size_t t = 0; t < task_count; ++t) queues[t % nodes].push_back(t);

  ClusterStats local;
  local.total_tasks = task_count;
  local.messages = task_count;  // one send per task
  local.tasks_per_node.assign(nodes, 0);
  local.seconds_per_node.assign(nodes, 0.0);

  // Workers: one workspace per node for its whole lifetime. Nodes are
  // serviced round-robin one task at a time so queue-drain order (and
  // therefore stealing) matches a concurrent cluster's dynamics.
  std::vector<Matcher::Workspace> workspaces(nodes);
  Count aggregated = 0;
  std::size_t remaining = task_count;
  while (remaining > 0) {
    for (std::size_t node = 0; node < nodes && remaining > 0; ++node) {
      if (queues[node].empty()) {
        // Steal half of the longest queue (the paper's idle-worker rule).
        ++local.steals_attempted;
        std::size_t victim = node;
        std::size_t best = 0;
        for (std::size_t other = 0; other < nodes; ++other)
          if (queues[other].size() > best) {
            best = queues[other].size();
            victim = other;
          }
        if (best == 0) continue;  // nothing left to steal this pass
        ++local.steals_successful;
        ++local.messages;  // steal request/response
        const std::size_t grab = (best + 1) / 2;
        for (std::size_t i = 0; i < grab; ++i) {
          queues[node].push_back(queues[victim].back());
          queues[victim].pop_back();
        }
      }
      if (queues[node].empty()) continue;
      const std::size_t t = queues[node].front();
      queues[node].pop_front();
      support::Timer timer;
      aggregated += matcher.count_from_prefix(workspaces[node], task(t));
      local.seconds_per_node[node] += timer.elapsed_seconds();
      ++local.tasks_per_node[node];
      --remaining;
    }
  }
  local.messages += nodes;  // every node reports its partial count once

  if (stats != nullptr) *stats = local;
  return matcher.finalize_partial_counts(aggregated);
}

}  // namespace graphpi::dist
