#include "dist/runtime.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <climits>
#include <deque>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <thread>

#include "core/plan.h"
#include "dist/comm.h"
#include "engine/forest.h"
#include "engine/plan_exec.h"
#include "graph/vertex_set.h"
#include "support/check.h"
#include "support/metrics.h"
#include "support/timer.h"
#include "support/trace.h"

namespace graphpi::dist {

const char* to_string(ExecMode mode) noexcept {
  switch (mode) {
    case ExecMode::kLockstep: return "lockstep";
    case ExecMode::kAsync: return "async";
  }
  return "?";
}

bool parse_exec_mode(std::string_view name, ExecMode& out) noexcept {
  if (name == "lockstep") {
    out = ExecMode::kLockstep;
    return true;
  }
  if (name == "async") {
    out = ExecMode::kAsync;
    return true;
  }
  return false;
}

namespace {

using PlanMask = PlanForest::PlanMask;
using Target = ContinuationMsg::Target;

constexpr std::uint8_t kNoLimit = ContinuationMsg::kNoDepthLimit;

/// A node-local unit of work: run the subtree rooted at `trie_node` under
/// `mask` with the first `depth` schedule positions already mapped. Tasks
/// are created when the descent from a root crosses the task_depth cutoff
/// and never travel between nodes by themselves.
struct LocalTask {
  std::uint32_t trie_node = 0;
  PlanMask mask = 0;
  std::uint8_t depth = 0;
  VertexId mapped[Pattern::kMaxVertices] = {};
};

/// How a completed-but-nonresident walk state leaves a walker: the
/// lockstep executor sends it straight through the channel, the async
/// executor buffers it in a per-destination coalescer and flushes batch
/// frames. The walk itself — and therefore every count — is identical.
class Shipper {
 public:
  virtual ~Shipper() = default;
  virtual void ship(int from, int dest, const ContinuationMsg& m) = 0;
};

/// One trie-walking execution context bound to a single shard: the
/// workspace buffers (one allocation per walker for the whole run,
/// mirroring Matcher::Workspace), the undivided per-plan sums, and the
/// local task queue. Both executors drive instances of this class, so the
/// sharded walk semantics live in exactly one place.
class ShardWalk {
 public:
  ShardWalk(const ShardedGraph& sharded, const PlanForest& forest, int node,
            std::uint8_t cutoff, Shipper& shipper)
      : sharded_(&sharded),
        forest_(&forest),
        shard_(&sharded.shard(node)),
        node_(node),
        cutoff_(cutoff),
        shipper_(&shipper) {
    sums.assign(forest.plans().size(), 0);
  }

  /// Executes the root extensions for owned vertex `v0`; descents past
  /// the task cutoff are queued on `tasks` (drain with run_queued_task).
  void run_root(VertexId v0) {
    mapped_[0] = v0;
    // Root extensions are always unconstrained (no predecessors or
    // bounds can reference depth < 0), so any owned v0 is valid.
    for (const PlanForest::Extension& ext : forest_->root().extensions)
      exec_node(static_cast<std::uint32_t>(ext.child),
                ext.mask & forest_->all_plans_mask(), cutoff_);
  }

  /// Pops and runs one queued task; false when the queue is empty.
  bool run_queued_task() {
    if (tasks.empty()) return false;
    const LocalTask task = tasks.front();
    tasks.pop_front();
    std::copy(task.mapped, task.mapped + task.depth, mapped_);
    ++tasks_run;
    exec_node(task.trie_node, task.mask, kNoLimit);
    return true;
  }

  /// Handles an arrived continuation payload (decode + advance/ship).
  void process_payload(const Message& msg) {
    GRAPHPI_CHECK(msg.kind == MessageKind::kContinuation);
    ContinuationMsg m;
    if (!ContinuationMsg::try_decode(msg.payload, m)) {
      // Structurally malformed despite an intact CRC — count it and drop
      // it instead of reading past the buffer; the sender's retransmit
      // timer re-requests delivery of anything still unacked.
      ++decode_failures;
      return;
    }
    std::copy(m.mapped.begin(), m.mapped.end(), mapped_);
    advance_chain(m);
  }

  std::vector<Count> sums;
  std::deque<LocalTask> tasks;
  std::uint64_t tasks_run = 0;
  std::uint64_t shipped_continuations = 0;
  std::uint64_t shipped_set_vertices = 0;
  std::uint64_t decode_failures = 0;

 private:
  // -- trie walk -----------------------------------------------------------

  [[nodiscard]] static std::uint8_t full_fold_mask(std::size_t preds) {
    return static_cast<std::uint8_t>((1u << preds) - 1);
  }

  [[nodiscard]] bool all_resident(std::span<const int> preds) const {
    for (int p : preds)
      if (!shard_->is_resident(mapped_[p])) return false;
    return true;
  }

  void exec_node(std::uint32_t node_idx, PlanMask active, std::uint8_t limit) {
    const PlanForest::Node& node =
        forest_->nodes()[static_cast<std::size_t>(node_idx)];
    if (limit != kNoLimit && node.depth >= static_cast<int>(limit)) {
      LocalTask task;
      task.trie_node = node_idx;
      task.mask = active;
      task.depth = static_cast<std::uint8_t>(node.depth);
      std::copy(mapped_, mapped_ + node.depth, task.mapped);
      tasks.push_back(task);
      return;
    }

    // Leaves first: they may use cand[depth]/tmp[depth], which the
    // extension loop below rebuilds (same order as ForestExecutor).
    if (!node.count_leaves.empty() || !node.iep_leaves.empty())
      eval_leaves(node_idx, active);

    const int depth = node.depth;
    const std::span<const VertexId> mapped{mapped_,
                                           static_cast<std::size_t>(depth)};
    for (std::size_t e = 0; e < node.extensions.size(); ++e) {
      const PlanForest::Extension& ext = node.extensions[e];
      if ((ext.mask & active) == 0) continue;
      const ResolvedBranches rb = resolve_branches(mapped_, ext, active);
      if (rb.live == 0) continue;

      if (all_resident(ext.predecessor_depths)) {
        const std::span<const VertexId> cands = exec::build_candidates(
            shard_->view(), ext.predecessor_depths, mapped, cand_[depth],
            tmp_[depth], all_vertices_);
        run_extension_loop(node_idx, e, rb, cands, limit);
      } else {
        ContinuationMsg m;
        m.trie_node = node_idx;
        m.target = Target::kExtension;
        m.item = static_cast<std::uint16_t>(e);
        m.depth_limit = limit;
        m.mask = active;
        m.mapped.assign(mapped_, mapped_ + depth);
        advance_chain(m);
      }
    }
  }

  void eval_leaves(std::uint32_t node_idx, PlanMask active) {
    const PlanForest::Node& node =
        forest_->nodes()[static_cast<std::size_t>(node_idx)];
    const int depth = node.depth;
    const std::span<const VertexId> mapped{mapped_,
                                           static_cast<std::size_t>(depth)};

    for (std::size_t li = 0; li < node.count_leaves.size(); ++li) {
      const PlanForest::CountLeaf& leaf = node.count_leaves[li];
      if (((active >> leaf.plan) & 1) == 0) continue;
      const exec::Window w = exec::bounded_window(mapped_, leaf);
      if (w.empty()) continue;
      if (all_resident(leaf.predecessor_depths)) {
        const Count raw = exec::count_intersection_bounded(
            shard_->view(), leaf.predecessor_depths, mapped, w.lo_inclusive,
            w.hi_exclusive, cand_[depth], tmp_[depth]);
        sums[static_cast<std::size_t>(leaf.plan)] +=
            raw - exec::count_used_in_intersection(
                      shard_->view(), leaf.predecessor_depths, mapped,
                      w.lo_inclusive, w.hi_exclusive);
      } else {
        ContinuationMsg m;
        m.trie_node = node_idx;
        m.target = Target::kCountLeaf;
        m.item = static_cast<std::uint16_t>(li);
        m.mask = active;
        m.mapped.assign(mapped_, mapped_ + depth);
        advance_chain(m);
      }
    }

    if (node.iep_leaves.empty()) return;
    PlanMask iep_active = 0;
    for (const PlanForest::IepLeaf& leaf : node.iep_leaves)
      if (((active >> leaf.plan) & 1) != 0)
        iep_active |= PlanMask{1} << leaf.plan;
    if (iep_active == 0) return;

    // The sharded executor has no memo tables, so it builds every DEMANDED
    // set (suffix_def_demand_masks), not just the ForestExecutor's
    // materialize subset.
    const std::vector<PlanMask>& demand = node.suffix_def_demand_masks;
    bool local = true;
    for (std::size_t i = 0; i < node.suffix_defs.size() && local; ++i)
      if ((demand[i] & active) != 0 && !all_resident(node.suffix_defs[i]))
        local = false;

    if (local) {
      // Every needed suffix set is computable on this shard: exactly the
      // ForestExecutor evaluation (shared sets, then per-plan terms).
      if (suffix_sets_.size() < node.suffix_defs.size())
        suffix_sets_.resize(node.suffix_defs.size());
      for (std::size_t i = 0; i < node.suffix_defs.size(); ++i)
        if ((demand[i] & active) != 0)
          exec::build_suffix_set(shard_->view(), node.suffix_defs[i], mapped,
                                 suffix_sets_[i], scratch_a_);
      for (const PlanForest::IepLeaf& leaf : node.iep_leaves) {
        if (((active >> leaf.plan) & 1) == 0) continue;
        const Plan& plan =
            forest_->plans()[static_cast<std::size_t>(leaf.plan)];
        sums[static_cast<std::size_t>(leaf.plan)] +=
            exec::evaluate_iep_terms(plan.iep.terms, suffix_sets_,
                                     leaf.set_ids, scratch_a_, scratch_b_);
      }
      return;
    }

    // Some suffix set needs a non-resident adjacency: build them as a
    // shipped chain carrying the completed sets along.
    ContinuationMsg m;
    m.trie_node = node_idx;
    m.target = Target::kIepChain;
    m.item = 0;
    m.mask = active;
    m.mapped.assign(mapped_, mapped_ + depth);
    m.done_sets.resize(node.suffix_defs.size());
    advance_chain(m);
  }

  /// Candidate loop of one extension over already-resolved branches: the
  /// loop runs the union window and narrows the active-plan mask per
  /// candidate (same model as ForestExecutor; `rb` must come from
  /// resolve_branches under the current mapping and have live > 0).
  void run_extension_loop(std::uint32_t node_idx, std::size_t ext_idx,
                          const ResolvedBranches& rb,
                          std::span<const VertexId> cands,
                          std::uint8_t limit) {
    const PlanForest::Node& node =
        forest_->nodes()[static_cast<std::size_t>(node_idx)];
    const PlanForest::Extension& ext = node.extensions[ext_idx];
    const int depth = node.depth;
    const std::span<const VertexId> mapped{mapped_,
                                           static_cast<std::size_t>(depth)};

    const auto range =
        rb.union_window.unbounded()
            ? cands
            : trim_to_window(cands, rb.union_window.lo_inclusive,
                             rb.union_window.hi_exclusive);
    const auto child = static_cast<std::uint32_t>(ext.child);
    if (rb.live == 1) {
      const PlanMask next = rb.masks[0];
      for (VertexId v : range) {
        if (exec::already_used(mapped, v)) continue;
        mapped_[depth] = v;
        exec_node(child, next, limit);
      }
      return;
    }
    for (VertexId v : range) {
      const PlanMask next = rb.mask_at(v);
      if (next == 0 || exec::already_used(mapped, v)) continue;
      mapped_[depth] = v;
      exec_node(child, next, limit);
    }
  }

  // -- continuation chains -------------------------------------------------

  /// Folds every locally-resident, not-yet-folded predecessor of the
  /// chain's current item into m.partial (first fold materializes the
  /// window-trimmed adjacency). Returns true when the set is complete —
  /// either all predecessors folded or the intersection emptied out.
  bool fold_local(std::span<const int> preds, exec::Window clamp,
                  ContinuationMsg& m) {
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (m.folded & (1u << i)) continue;
      const VertexId pv = mapped_[preds[i]];
      if (!shard_->is_resident(pv)) continue;
      if (!m.has_partial) {
        const auto adj = trim_to_window(shard_->neighbors(pv),
                                        clamp.lo_inclusive, clamp.hi_exclusive);
        m.partial.assign(adj.begin(), adj.end());
        m.has_partial = true;
      } else {
        exec::intersect_with_vertex(shard_->view(), m.partial, pv, fold_tmp_);
        std::swap(m.partial, fold_tmp_);
      }
      m.folded |= static_cast<std::uint8_t>(1u << i);
      if (m.partial.empty()) {
        // Nothing can survive the remaining intersections.
        m.folded = full_fold_mask(preds.size());
        return true;
      }
    }
    return m.folded == full_fold_mask(preds.size());
  }

  /// Serializes the chain and ships it to the owner of the first
  /// predecessor whose adjacency this node does not hold.
  void ship(std::span<const int> preds, const ContinuationMsg& m) {
    int dest = -1;
    for (std::size_t i = 0; i < preds.size(); ++i)
      if ((m.folded & (1u << i)) == 0) {
        dest = sharded_->owner(m.mapped[static_cast<std::size_t>(preds[i])]);
        break;
      }
    GRAPHPI_CHECK_MSG(dest >= 0 && dest != node_,
                      "a chain only ships when a predecessor is non-"
                      "resident, and owners always hold their vertices");
    ++shipped_continuations;
    shipped_set_vertices += m.shipped_set_vertices();
    shipper_->ship(node_, dest, m);
  }

  /// Advances a chain on this node as far as local residency allows:
  /// completes the item (running the dependent loop / count / IEP
  /// evaluation here) or ships the remainder. mapped_ must already hold
  /// m.mapped.
  void advance_chain(ContinuationMsg& m) {
    const PlanForest::Node& node =
        forest_->nodes()[static_cast<std::size_t>(m.trie_node)];
    switch (m.target) {
      case Target::kExtension: {
        const PlanForest::Extension& ext = node.extensions[m.item];
        const ResolvedBranches rb = resolve_branches(mapped_, ext, m.mask);
        if (rb.live == 0) return;
        if (!fold_local(ext.predecessor_depths, rb.union_window, m)) {
          ship(ext.predecessor_depths, m);
          return;
        }
        run_extension_loop(m.trie_node, m.item, rb, m.partial, m.depth_limit);
        return;
      }
      case Target::kCountLeaf: {
        const PlanForest::CountLeaf& leaf = node.count_leaves[m.item];
        const exec::Window w = exec::bounded_window(mapped_, leaf);
        if (w.empty()) return;
        if (!fold_local(leaf.predecessor_depths, w, m)) {
          ship(leaf.predecessor_depths, m);
          return;
        }
        // The materialized intersection is already window-trimmed; the
        // used-vertex correction is membership of mapped vertices in it.
        Count used = 0;
        for (VertexId v : m.mapped)
          if (contains(m.partial, v)) ++used;
        sums[static_cast<std::size_t>(leaf.plan)] +=
            static_cast<Count>(m.partial.size()) - used;
        return;
      }
      case Target::kIepChain:
        advance_iep_chain(m);
        return;
    }
    GRAPHPI_CHECK_MSG(false, "unknown continuation target");
  }

  void advance_iep_chain(ContinuationMsg& m) {
    const PlanForest::Node& node =
        forest_->nodes()[static_cast<std::size_t>(m.trie_node)];
    const std::vector<PlanMask>& demand = node.suffix_def_demand_masks;
    const std::span<const VertexId> mapped{mapped_, m.mapped.size()};
    while (m.item < node.suffix_defs.size()) {
      if ((demand[m.item] & m.mask) == 0) {
        ++m.item;  // no active plan consumes this set
        continue;
      }
      const std::vector<int>& def = node.suffix_defs[m.item];
      if (def.empty()) {
        // Disconnected suffix vertex: every vertex minus the mapped ones.
        auto& set = m.done_sets[m.item];
        // vertex_count(), not parent(): snapshot-reassembled shardings
        // never materialize the whole graph.
        set.resize(sharded_->vertex_count());
        std::iota(set.begin(), set.end(), VertexId{0});
        remove_all(set, mapped);
        ++m.item;
        continue;
      }
      if (!fold_local(def, exec::Window{}, m)) {
        ship(def, m);
        return;
      }
      remove_all(m.partial, mapped);
      m.done_sets[m.item] = std::move(m.partial);
      m.partial.clear();
      m.has_partial = false;
      m.folded = 0;
      ++m.item;
    }
    // All needed sets materialized: evaluate every active plan's terms.
    for (const PlanForest::IepLeaf& leaf : node.iep_leaves) {
      if (((m.mask >> leaf.plan) & 1) == 0) continue;
      const Plan& plan = forest_->plans()[static_cast<std::size_t>(leaf.plan)];
      sums[static_cast<std::size_t>(leaf.plan)] +=
          exec::evaluate_iep_terms(plan.iep.terms, m.done_sets, leaf.set_ids,
                                   scratch_a_, scratch_b_);
    }
  }

  const ShardedGraph* sharded_;
  const PlanForest* forest_;
  const Shard* shard_;
  int node_;
  std::uint8_t cutoff_;
  Shipper* shipper_;

  VertexId mapped_[Pattern::kMaxVertices] = {};
  std::vector<VertexId> cand_[Pattern::kMaxVertices];
  std::vector<VertexId> tmp_[Pattern::kMaxVertices];
  std::vector<std::vector<VertexId>> suffix_sets_;
  std::vector<VertexId> scratch_a_;
  std::vector<VertexId> scratch_b_;
  std::vector<VertexId> all_vertices_;
  std::vector<VertexId> fold_tmp_;  ///< chain-folding swap buffer
};

/// Validates the forest for sharded execution and computes the task
/// cutoff depth (shared by both executors).
std::uint8_t prepare_forest(const ShardedGraph& sharded,
                            const PlanForest& forest, int task_depth) {
  int min_leaf = INT_MAX;
  bool wants_hub = false;
  for (const Plan& plan : forest.plans()) {
    GRAPHPI_CHECK_MSG(plan.size() >= 2,
                      "the sharded runtime requires plans with >= 2 "
                      "vertices (no terminal action at the root)");
    min_leaf = std::min(min_leaf, plan.leaf_depth());
    wants_hub |= plan.wants_hub_index;
  }
  GRAPHPI_CHECK_MSG(forest.root().count_leaves.empty(),
                    "root terminal actions are impossible for plans of "
                    "size >= 2");
  if (wants_hub) sharded.ensure_hub_indexes();
  return static_cast<std::uint8_t>(
      std::clamp(task_depth, 1, std::max(1, min_leaf)));
}

std::vector<Count> finalize_counts(const PlanForest& forest,
                                   std::vector<Count> sums) {
  const auto& plans = forest.plans();
  for (std::size_t i = 0; i < plans.size(); ++i) {
    if (!plans[i].iep_active()) continue;
    GRAPHPI_CHECK_MSG(sums[i] % plans[i].iep.divisor == 0,
                      "IEP sum must be divisible by the surviving-"
                      "automorphism factor x");
    sums[i] /= plans[i].iep.divisor;
  }
  return sums;
}

/// Best-effort finalization of a stopped run: a partial IEP sum is
/// generally not divisible by x, so divide without the check.
std::vector<Count> finalize_partial_counts(const PlanForest& forest,
                                           std::vector<Count> sums) {
  const auto& plans = forest.plans();
  for (std::size_t i = 0; i < plans.size(); ++i)
    if (plans[i].iep_active()) sums[i] /= plans[i].iep.divisor;
  return sums;
}

void fill_shared_stats(const ShardedGraph& sharded,
                       const ReliableChannel& channel, ClusterStats& out) {
  const CommStats comm = channel.transport_stats();
  const ReliabilityStats rel = channel.reliability_stats();
  out.ack_messages =
      comm.messages_by_kind[static_cast<std::size_t>(MessageKind::kAck)];
  out.retransmits = rel.retransmits;
  out.corrupt_frames_detected = rel.corrupt_frames_detected;
  out.duplicates_suppressed = rel.duplicates_suppressed;
  out.injected_drops = comm.injected_drops;
  out.injected_duplicates = comm.injected_duplicates;
  out.injected_reorders = comm.injected_reorders;
  out.injected_corruptions = comm.injected_corruptions;
  out.messages = comm.messages;
  out.bytes = comm.bytes;
  out.continuation_messages = comm.messages_by_kind[static_cast<std::size_t>(
      MessageKind::kContinuation)];
  out.continuation_bytes = comm.bytes_by_kind[static_cast<std::size_t>(
      MessageKind::kContinuation)];
  out.count_messages = comm.messages_by_kind[static_cast<std::size_t>(
      MessageKind::kPartialCounts)];
  out.count_bytes = comm.bytes_by_kind[static_cast<std::size_t>(
      MessageKind::kPartialCounts)];
  out.coalesced_frames = rel.batch_frames_sent;
  out.coalesced_payloads = rel.batch_payloads;
  out.sent_messages_per_node = comm.sent_messages_per_node;
  out.sent_bytes_per_node = comm.sent_bytes_per_node;
  const ShardedGraph::Stats& shape = sharded.stats();
  out.owned_per_node = shape.owned_per_node;
  out.ghosts_per_node = shape.ghosts_per_node;
  out.replication_factor = shape.replication_factor;
  std::uint64_t high = 0;
  for (int n = 0; n < channel.nodes(); ++n)
    high = std::max<std::uint64_t>(high, channel.inbox_high_water(n));
  out.mailbox_high_water = high;
}

// ---------------------------------------------------------------------------
// Lockstep executor: deterministic single-threaded round-robin service.
// ---------------------------------------------------------------------------

/// The sharded batch traversal: every logical node walks the plan-forest
/// trie against its own shard only, shipping serialized continuations to
/// owners when an adjacency it needs is not resident. Single-threaded
/// round-robin service keeps the run deterministic.
class LockstepForestRun : public Shipper {
 public:
  LockstepForestRun(const ShardedGraph& sharded, const PlanForest& forest,
                    const ClusterOptions& options)
      : sharded_(&sharded),
        forest_(&forest),
        channel_(sharded.nodes(), options.faults),
        control_(options.control != nullptr && options.control->armed()
                     ? options.control
                     : nullptr) {
    const std::uint8_t cutoff =
        prepare_forest(sharded, forest, options.task_depth);
    nodes_.resize(static_cast<std::size_t>(sharded.nodes()));
    for (std::size_t n = 0; n < nodes_.size(); ++n)
      nodes_[n].walk = std::make_unique<ShardWalk>(
          sharded, forest, static_cast<int>(n), cutoff, *this);
  }

  void ship(int from, int dest, const ContinuationMsg& m) override {
    channel_.send(from, dest, MessageKind::kContinuation, m.encode());
  }

  std::vector<Count> run(ClusterStats* stats,
                         support::RunReport* run_report = nullptr) {
    // Service nodes round-robin, one unit of work per turn, until no node
    // has anything left AND the reliable channel has drained (frames may
    // need retransmitting under a fault plan): inbox message first, then
    // a queued task, then the next owned root. An armed ExecControl is
    // checked once per round — root-grained, every `nodes` work units.
    support::RunStatus status = support::RunStatus::kOk;
    bool any = true;
    while (any || !channel_.idle()) {
      if (control_ != nullptr) {
        status = control_->check(roots_done_);
        if (status != support::RunStatus::kOk) break;
      }
      channel_.tick();
      any = false;
      for (std::size_t n = 0; n < nodes_.size(); ++n)
        any |= channel_.service_retransmits(static_cast<int>(n));
      for (std::size_t n = 0; n < nodes_.size(); ++n)
        any |= service(static_cast<int>(n));
    }

    if (run_report != nullptr) {
      run_report->status = status;
      run_report->completed_roots = roots_done_;
    }
    if (status != support::RunStatus::kOk) {
      // Stopped early: skip the message exchange (in-flight continuations
      // are abandoned) and aggregate whatever every node accumulated.
      std::vector<Count> total = nodes_[0].walk->sums;
      for (std::size_t n = 1; n < nodes_.size(); ++n)
        for (std::size_t i = 0; i < total.size(); ++i)
          total[i] += nodes_[n].walk->sums[i];
      if (stats != nullptr) fill_stats(*stats);
      return finalize_partial_counts(*forest_, std::move(total));
    }

    // Every non-master node reports its undivided per-plan sums once —
    // the "counts travel" half of the paper's message economy. The drain
    // keeps ticking the reliable channel so dropped/corrupted reports are
    // retransmitted until the master has all of them.
    for (std::size_t n = 1; n < nodes_.size(); ++n) {
      PartialCountsMsg report;
      report.sums = nodes_[n].walk->sums;
      report.tasks = nodes_[n].walk->tasks_run;
      channel_.send(static_cast<int>(n), 0, MessageKind::kPartialCounts,
                    report.encode());
    }
    std::vector<Count> total = nodes_[0].walk->sums;
    std::size_t reports = 0;
    Message msg;
    while (reports + 1 < nodes_.size() || !channel_.idle()) {
      channel_.tick();
      for (std::size_t n = 0; n < nodes_.size(); ++n)
        channel_.service_retransmits(static_cast<int>(n));
      // Non-master receives only consume acks; the master accumulates
      // each report exactly once (the channel dedups duplicates).
      for (std::size_t n = 0; n < nodes_.size(); ++n) {
        while (channel_.receive(static_cast<int>(n), msg)) {
          GRAPHPI_CHECK(n == 0);
          GRAPHPI_CHECK(msg.kind == MessageKind::kPartialCounts);
          PartialCountsMsg report;
          if (!PartialCountsMsg::try_decode(msg.payload, report) ||
              report.sums.size() != total.size()) {
            // Unreachable with an intact CRC frame; counted, not UB.
            ++decode_failures_;
            ++reports;
            continue;
          }
          for (std::size_t i = 0; i < total.size(); ++i)
            total[i] += report.sums[i];
          ++reports;
        }
      }
    }

    if (stats != nullptr) fill_stats(*stats);
    return finalize_counts(*forest_, std::move(total));
  }

 private:
  struct NodeSlot {
    std::unique_ptr<ShardWalk> walk;
    std::size_t next_root = 0;
    double seconds = 0.0;
  };

  bool service(int n) {
    NodeSlot& ns = nodes_[static_cast<std::size_t>(n)];
    Message msg;
    if (channel_.receive(n, msg)) {
      support::Timer timer;
      ns.walk->process_payload(msg);
      ns.seconds += timer.elapsed_seconds();
      return true;
    }
    if (!ns.walk->tasks.empty()) {
      support::Timer timer;
      ns.walk->run_queued_task();
      ns.seconds += timer.elapsed_seconds();
      return true;
    }
    const auto owned = ns.walk ? sharded_->shard(n).owned()
                               : std::span<const VertexId>{};
    if (ns.next_root < owned.size()) {
      const VertexId v0 = owned[ns.next_root++];
      support::Timer timer;
      ns.walk->run_root(v0);
      ns.seconds += timer.elapsed_seconds();
      ++roots_done_;
      return true;
    }
    return false;
  }

  void fill_stats(ClusterStats& out) const {
    out = ClusterStats{};
    fill_shared_stats(*sharded_, channel_, out);
    std::uint64_t decode_failures = decode_failures_;
    out.tasks_per_node.reserve(nodes_.size());
    out.seconds_per_node.reserve(nodes_.size());
    for (const NodeSlot& ns : nodes_) {
      out.total_tasks += ns.walk->tasks_run;
      out.tasks_per_node.push_back(ns.walk->tasks_run);
      out.seconds_per_node.push_back(ns.seconds);
      out.shipped_continuations += ns.walk->shipped_continuations;
      out.shipped_set_vertices += ns.walk->shipped_set_vertices;
      decode_failures += ns.walk->decode_failures;
    }
    out.decode_failures = decode_failures;
  }

  const ShardedGraph* sharded_;
  const PlanForest* forest_;
  ReliableChannel channel_;
  const support::ExecControl* control_ = nullptr;
  std::vector<NodeSlot> nodes_;
  std::uint64_t roots_done_ = 0;
  std::uint64_t decode_failures_ = 0;
};

// ---------------------------------------------------------------------------
// Async executor: one worker pool per node, coalesced flushes,
// cooperative backpressure. Counts are bit-identical to lockstep because
// the walk (ShardWalk) is the same code and integer partial sums are
// order-independent; what changes is WHEN things run — compute and
// communication overlap instead of alternating.
// ---------------------------------------------------------------------------

class AsyncForestRun {
 public:
  AsyncForestRun(const ShardedGraph& sharded, const PlanForest& forest,
                 const ClusterOptions& options)
      : sharded_(&sharded),
        forest_(&forest),
        channel_(sharded.nodes(), options.faults,
                 options.mailbox_capacity > 0
                     ? static_cast<std::size_t>(options.mailbox_capacity)
                     : 0),
        control_(options.control != nullptr && options.control->armed()
                     ? options.control
                     : nullptr),
        poll_mask_(control_ != nullptr ? control_->poll_mask() : ~0ull),
        workers_per_node_(std::max(1, options.workers_per_node)),
        mailbox_capacity_(options.mailbox_capacity > 0
                              ? static_cast<std::size_t>(options.mailbox_capacity)
                              : 0),
        flush_payloads_(std::max(1, options.flush_payloads)),
        flush_bytes_(std::max(1, options.flush_bytes)) {
    cutoff_ = prepare_forest(sharded, forest, options.task_depth);
    const int nodes = sharded.nodes();
    root_cursors_ = std::vector<std::atomic<std::size_t>>(
        static_cast<std::size_t>(nodes));
    for (int n = 0; n < nodes; ++n)
      root_cursors_[static_cast<std::size_t>(n)].store(0);
    const std::uint64_t total_roots = sharded.total_owned();
    pending_.store(static_cast<std::int64_t>(total_roots));
    if (total_roots == 0) done_.store(true);
    for (int n = 0; n < nodes; ++n)
      for (int w = 0; w < workers_per_node_; ++w)
        workers_.push_back(std::make_unique<Worker>(*this, n));
  }

  std::vector<Count> run(ClusterStats* stats,
                         support::RunReport* run_report = nullptr) {
    for (auto& w : workers_)
      w->thread = std::thread([&wr = *w] { wr.main(); });
    for (auto& w : workers_) w->thread.join();

    support::RunReport merged;
    for (auto& w : workers_) {
      support::RunReport wr;
      wr.status = w->status;
      merged.merge(wr);
    }
    merged.completed_roots = roots_done_.load();
    if (run_report != nullptr) *run_report = merged;

    const std::size_t nodes = static_cast<std::size_t>(sharded_->nodes());
    std::vector<std::vector<Count>> node_sums(
        nodes, std::vector<Count>(forest_->plans().size(), 0));
    std::vector<std::uint64_t> node_tasks(nodes, 0);
    for (auto& w : workers_) {
      auto& sums = node_sums[static_cast<std::size_t>(w->node)];
      for (std::size_t i = 0; i < sums.size(); ++i)
        sums[i] += w->walk.sums[i];
      node_tasks[static_cast<std::size_t>(w->node)] += w->walk.tasks_run;
    }

    if (merged.status != support::RunStatus::kOk) {
      // Stopped early: skip the count exchange, aggregate best-effort.
      std::vector<Count> total = std::move(node_sums[0]);
      for (std::size_t n = 1; n < nodes; ++n)
        for (std::size_t i = 0; i < total.size(); ++i)
          total[i] += node_sums[n][i];
      if (stats != nullptr) fill_stats(*stats);
      return finalize_partial_counts(*forest_, std::move(total));
    }

    // Post-quiescence count exchange, driven from the master thread the
    // same way the lockstep executor does it: nodes report undivided
    // sums over the (still fault-injected) channel, the master collects
    // with retransmit + dedup until everything is acked.
    for (std::size_t n = 1; n < nodes; ++n) {
      PartialCountsMsg report;
      report.sums = node_sums[n];
      report.tasks = node_tasks[n];
      channel_.send(static_cast<int>(n), 0, MessageKind::kPartialCounts,
                    report.encode());
    }
    std::vector<Count> total = std::move(node_sums[0]);
    std::size_t reports = 0;
    Message msg;
    while (reports + 1 < nodes || !channel_.idle()) {
      channel_.tick();
      for (std::size_t n = 0; n < nodes; ++n)
        channel_.service_retransmits(static_cast<int>(n));
      for (std::size_t n = 0; n < nodes; ++n) {
        while (channel_.receive(static_cast<int>(n), msg)) {
          // Straggler continuation duplicates were deduped inside
          // receive(); anything delivered here is a count report.
          GRAPHPI_CHECK(n == 0);
          GRAPHPI_CHECK(msg.kind == MessageKind::kPartialCounts);
          PartialCountsMsg report;
          if (!PartialCountsMsg::try_decode(msg.payload, report) ||
              report.sums.size() != total.size()) {
            ++decode_failures_;
            ++reports;
            continue;
          }
          for (std::size_t i = 0; i < total.size(); ++i)
            total[i] += report.sums[i];
          ++reports;
        }
      }
    }

    if (stats != nullptr) fill_stats(*stats);
    return finalize_counts(*forest_, std::move(total));
  }

 private:
  /// Roots claimed from a node's cursor per grab: small enough to load-
  /// balance a pool, large enough to amortize the atomic.
  static constexpr std::size_t kRootChunk = 16;

  struct Worker final : Shipper {
    Worker(AsyncForestRun& run, int node_idx)
        : run(&run),
          node(node_idx),
          walk(*run.sharded_, *run.forest_, node_idx, run.cutoff_, *this),
          buffers(static_cast<std::size_t>(run.sharded_->nodes())),
          buffered_bytes(static_cast<std::size_t>(run.sharded_->nodes()), 0) {}

    // -- Shipper: coalesce into per-destination buffers ---------------------
    void ship(int /*from*/, int dest, const ContinuationMsg& m) override {
      run->pending_.fetch_add(1, std::memory_order_acq_rel);
      auto& buf = buffers[static_cast<std::size_t>(dest)];
      std::vector<std::uint8_t> payload = m.encode();
      buffered_bytes[static_cast<std::size_t>(dest)] += payload.size();
      buf.push_back(std::move(payload));
      if (buf.size() >= static_cast<std::size_t>(run->flush_payloads_) ||
          buffered_bytes[static_cast<std::size_t>(dest)] >=
              static_cast<std::size_t>(run->flush_bytes_))
        flush(dest);
    }

    void flush(int dest) {
      auto& buf = buffers[static_cast<std::size_t>(dest)];
      if (buf.empty()) return;
      wait_for_room(dest);
      run->channel_.send_many(node, dest, MessageKind::kContinuation, buf);
      buffered_bytes[static_cast<std::size_t>(dest)] = 0;
      ++flushes;
    }

    /// True if anything was flushed.
    bool flush_all() {
      bool flushed = false;
      for (std::size_t d = 0; d < buffers.size(); ++d) {
        if (buffers[d].empty()) continue;
        flush(static_cast<int>(d));
        flushed = true;
      }
      return flushed;
    }

    /// Cooperative backpressure: while `dest`'s mailbox is at capacity,
    /// drain our own inbox into the deferred queue (so a peer stalled on
    /// US progresses — this is what makes cyclic pressure deadlock-free)
    /// and keep the retransmit clock moving.
    void wait_for_room(int dest) {
      if (run->mailbox_capacity_ == 0) return;
      bool counted = false;
      while (run->channel_.inbox_size(dest) >= run->mailbox_capacity_) {
        if (!counted) {
          ++mailbox_stalls;
          counted = true;
        }
        if (run->stopped_.load(std::memory_order_relaxed) ||
            run->done_.load(std::memory_order_relaxed))
          return;
        Message msg;
        if (run->channel_.receive(node, msg)) {
          deferred.push_back(std::move(msg));
          continue;
        }
        run->channel_.tick();
        run->channel_.service_retransmits(node);
        std::this_thread::yield();
      }
    }

    // -- worker body --------------------------------------------------------
    void main() {
      // A pre-fired control (cancel set before the run, elapsed deadline)
      // must stop the pool even before the first stride poll lands.
      if (run->control_ != nullptr) {
        const support::RunStatus st = run->control_->check(
            run->roots_done_.load(std::memory_order_relaxed));
        if (st != support::RunStatus::kOk) {
          status = st;
          run->stopped_.store(true, std::memory_order_relaxed);
        }
      }
      while (!run->done_.load(std::memory_order_acquire) &&
             !run->stopped_.load(std::memory_order_relaxed)) {
        bool did_work = false;

        // Deferred first: payloads drained while stalled are oldest.
        while (!deferred.empty()) {
          Message msg = std::move(deferred.front());
          deferred.pop_front();
          process_payload(msg);
          did_work = true;
        }
        if (stop_requested()) break;

        // Mailbox: walk continuations shipped to this node.
        Message msg;
        while (run->channel_.receive(node, msg)) {
          process_payload(msg);
          did_work = true;
          if (stop_requested()) break;
        }
        if (stop_requested()) break;

        // Roots: claim a chunk of this node's owned root domain.
        const auto owned = run->sharded_->shard(node).owned();
        const std::size_t begin =
            run->root_cursors_[static_cast<std::size_t>(node)].fetch_add(
                kRootChunk, std::memory_order_relaxed);
        if (begin < owned.size()) {
          const std::size_t end = std::min(begin + kRootChunk, owned.size());
          support::Timer timer;
          for (std::size_t i = begin; i < end; ++i) {
            walk.run_root(owned[i]);
            while (walk.run_queued_task()) {
            }
            finish_unit();
            run->roots_done_.fetch_add(1, std::memory_order_relaxed);
            if (poll_control() || stop_requested()) break;
          }
          seconds += timer.elapsed_seconds();
          did_work = true;
        }
        if (did_work) continue;

        // Nothing local: push out partial batches, then block briefly on
        // the mailbox (the timeout doubles as the done_/stopped_ and
        // retransmit heartbeat).
        if (flush_all()) continue;
        run->channel_.tick();
        run->channel_.service_retransmits(node);
        if (run->channel_.receive_wait(node, msg,
                                       std::chrono::microseconds(500),
                                       run->control_))
          process_payload(msg);
      }
    }

    void process_payload(const Message& msg) {
      support::Timer timer;
      walk.process_payload(msg);
      seconds += timer.elapsed_seconds();
      finish_unit();
    }

    /// One in-flight unit (root or continuation payload) fully processed.
    void finish_unit() {
      if (run->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last unit anywhere: every root is walked and every shipped
        // continuation processed. Release the pool.
        run->done_.store(true, std::memory_order_release);
      }
    }

    [[nodiscard]] bool stop_requested() const {
      return run->stopped_.load(std::memory_order_relaxed) ||
             run->done_.load(std::memory_order_acquire);
    }

    /// Per-worker stride-gated control poll (root granularity). True when
    /// the run should stop.
    bool poll_control() {
      ++local_roots;
      if (run->control_ == nullptr) return false;
      if ((local_roots & run->poll_mask_) != 0)
        return status != support::RunStatus::kOk;
      const support::RunStatus st =
          run->control_->check(run->roots_done_.load(std::memory_order_relaxed));
      if (st != support::RunStatus::kOk && status == support::RunStatus::kOk) {
        status = st;
        run->stopped_.store(true, std::memory_order_relaxed);
      }
      return status != support::RunStatus::kOk;
    }

    AsyncForestRun* run;
    int node;
    ShardWalk walk;
    std::vector<std::vector<std::vector<std::uint8_t>>> buffers;
    std::vector<std::size_t> buffered_bytes;
    std::deque<Message> deferred;
    std::uint64_t local_roots = 0;
    std::uint64_t flushes = 0;
    std::uint64_t mailbox_stalls = 0;
    double seconds = 0.0;
    support::RunStatus status = support::RunStatus::kOk;
    std::thread thread;
  };

  void fill_stats(ClusterStats& out) const {
    out = ClusterStats{};
    fill_shared_stats(*sharded_, channel_, out);
    const std::size_t nodes = static_cast<std::size_t>(sharded_->nodes());
    out.tasks_per_node.assign(nodes, 0);
    out.seconds_per_node.assign(nodes, 0.0);
    std::uint64_t decode_failures = decode_failures_;
    for (const auto& w : workers_) {
      const auto n = static_cast<std::size_t>(w->node);
      out.total_tasks += w->walk.tasks_run;
      out.tasks_per_node[n] += w->walk.tasks_run;
      out.seconds_per_node[n] += w->seconds;
      out.shipped_continuations += w->walk.shipped_continuations;
      out.shipped_set_vertices += w->walk.shipped_set_vertices;
      out.flushes += w->flushes;
      out.mailbox_stalls += w->mailbox_stalls;
      decode_failures += w->walk.decode_failures;
    }
    out.decode_failures = decode_failures;
  }

  const ShardedGraph* sharded_;
  const PlanForest* forest_;
  ReliableChannel channel_;
  const support::ExecControl* control_;
  const std::uint64_t poll_mask_;
  const int workers_per_node_;
  const std::size_t mailbox_capacity_;
  const int flush_payloads_;
  const int flush_bytes_;
  std::uint8_t cutoff_ = 1;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::atomic<std::size_t>> root_cursors_;
  std::atomic<std::int64_t> pending_{0};
  std::atomic<bool> done_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> roots_done_{0};
  std::uint64_t decode_failures_ = 0;
};

/// Bridges a finished run's ClusterStats into the process metrics
/// registry, so one snapshot covers the distributed backend alongside
/// every other layer. Fires once per distributed run — also when the
/// caller passed no stats sink (the run fills a local copy).
void bridge_stats_to_registry(const ClusterStats& s) {
  using support::metrics::Counter;
  using support::metrics::metric_counter;
  using support::metrics::metric_gauge;
  static Counter& c_runs = metric_counter("dist.runs");
  static Counter& c_tasks = metric_counter("dist.tasks");
  static Counter& c_messages = metric_counter("dist.messages");
  static Counter& c_bytes = metric_counter("dist.bytes");
  static Counter& c_continuations =
      metric_counter("dist.continuations_shipped");
  static Counter& c_set_vertices = metric_counter("dist.shipped_set_vertices");
  static Counter& c_acks = metric_counter("dist.acks");
  static Counter& c_retransmits = metric_counter("dist.retransmits");
  static Counter& c_corrupt = metric_counter("dist.corrupt_frames_detected");
  static Counter& c_dups = metric_counter("dist.duplicates_suppressed");
  static Counter& c_decode = metric_counter("dist.decode_failures");
  static Counter& c_inj_drop = metric_counter("dist.injected_drops");
  static Counter& c_inj_dup = metric_counter("dist.injected_duplicates");
  static Counter& c_inj_reord = metric_counter("dist.injected_reorders");
  static Counter& c_inj_corr = metric_counter("dist.injected_corruptions");
  static Counter& c_flushes = metric_counter("dist.flushes");
  static Counter& c_co_frames = metric_counter("dist.coalesced_frames");
  static Counter& c_co_payloads = metric_counter("dist.coalesced_payloads");
  static Counter& c_stalls = metric_counter("dist.mailbox_stalls");
  c_runs.inc();
  c_tasks.inc(s.total_tasks);
  c_messages.inc(s.messages);
  c_bytes.inc(s.bytes);
  c_continuations.inc(s.shipped_continuations);
  c_set_vertices.inc(s.shipped_set_vertices);
  c_acks.inc(s.ack_messages);
  c_retransmits.inc(s.retransmits);
  c_corrupt.inc(s.corrupt_frames_detected);
  c_dups.inc(s.duplicates_suppressed);
  c_decode.inc(s.decode_failures);
  c_inj_drop.inc(s.injected_drops);
  c_inj_dup.inc(s.injected_duplicates);
  c_inj_reord.inc(s.injected_reorders);
  c_inj_corr.inc(s.injected_corruptions);
  c_flushes.inc(s.flushes);
  c_co_frames.inc(s.coalesced_frames);
  c_co_payloads.inc(s.coalesced_payloads);
  c_stalls.inc(s.mailbox_stalls);
  metric_gauge("dist.mailbox_high_water")
      .record_max(static_cast<std::int64_t>(s.mailbox_high_water));
}

/// Single-node run: the whole graph is one shard, so the plain batch
/// executor over the full root domain is the honest (and fastest) path —
/// no replication, no messages.
std::vector<Count> single_node_run(const Graph& graph, const PlanForest& forest,
                                   ClusterStats* stats,
                                   const support::ExecControl* control,
                                   support::RunReport* report) {
  const support::trace::Span span("dist.single_node");
  const ForestExecutor executor(graph, forest);
  ForestExecutor::Workspace ws;
  std::vector<VertexId> roots(graph.vertex_count());
  std::iota(roots.begin(), roots.end(), VertexId{0});
  support::Timer timer;
  const std::vector<Count> counts =
      executor.count_roots(ws, roots, control, report);
  ClusterStats local;
  ClusterStats* s = stats != nullptr ? stats : &local;
  *s = ClusterStats{};
  s->total_tasks = roots.size();
  s->tasks_per_node = {roots.size()};
  s->seconds_per_node = {timer.elapsed_seconds()};
  s->sent_messages_per_node = {0};
  s->sent_bytes_per_node = {0};
  s->owned_per_node = {graph.vertex_count()};
  s->ghosts_per_node = {0};
  s->replication_factor = 1.0;
  bridge_stats_to_registry(*s);
  return counts;
}

std::vector<Count> run_sharded(const ShardedGraph& sharded,
                               const PlanForest& forest,
                               const ClusterOptions& options,
                               ClusterStats* stats,
                               support::RunReport* report) {
  const support::trace::Span span(options.exec == ExecMode::kAsync
                                      ? "dist.run_async"
                                      : "dist.run_lockstep");
  // Always materialize stats and a report: the registry bridge and the
  // exec-stop counters fire whether or not the caller asked for either.
  ClusterStats local_stats;
  ClusterStats* s = stats != nullptr ? stats : &local_stats;
  support::RunReport local_report;
  support::RunReport* r = report != nullptr ? report : &local_report;
  std::vector<Count> counts =
      options.exec == ExecMode::kAsync
          ? AsyncForestRun(sharded, forest, options).run(s, r)
          : LockstepForestRun(sharded, forest, options).run(s, r);
  support::observe_run_status(r->status);
  bridge_stats_to_registry(*s);
  return counts;
}

}  // namespace

void ClusterStats::accumulate(const ClusterStats& other) {
  const auto merge_u64 = [](std::vector<std::uint64_t>& into,
                            const std::vector<std::uint64_t>& from) {
    if (into.size() < from.size()) into.resize(from.size(), 0);
    for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
  };
  total_tasks += other.total_tasks;
  messages += other.messages;
  bytes += other.bytes;
  continuation_messages += other.continuation_messages;
  continuation_bytes += other.continuation_bytes;
  shipped_continuations += other.shipped_continuations;
  shipped_set_vertices += other.shipped_set_vertices;
  count_messages += other.count_messages;
  count_bytes += other.count_bytes;
  ack_messages += other.ack_messages;
  retransmits += other.retransmits;
  corrupt_frames_detected += other.corrupt_frames_detected;
  duplicates_suppressed += other.duplicates_suppressed;
  decode_failures += other.decode_failures;
  injected_drops += other.injected_drops;
  injected_duplicates += other.injected_duplicates;
  injected_reorders += other.injected_reorders;
  injected_corruptions += other.injected_corruptions;
  flushes += other.flushes;
  coalesced_frames += other.coalesced_frames;
  coalesced_payloads += other.coalesced_payloads;
  mailbox_stalls += other.mailbox_stalls;
  mailbox_high_water = std::max(mailbox_high_water, other.mailbox_high_water);
  merge_u64(tasks_per_node, other.tasks_per_node);
  merge_u64(sent_messages_per_node, other.sent_messages_per_node);
  merge_u64(sent_bytes_per_node, other.sent_bytes_per_node);
  if (seconds_per_node.size() < other.seconds_per_node.size())
    seconds_per_node.resize(other.seconds_per_node.size(), 0.0);
  for (std::size_t i = 0; i < other.seconds_per_node.size(); ++i)
    seconds_per_node[i] += other.seconds_per_node[i];
  // Shard shape is identical across chunks of one batch: keep the latest.
  owned_per_node = other.owned_per_node;
  ghosts_per_node = other.ghosts_per_node;
  replication_factor = other.replication_factor;
}

Count distributed_count(const Graph& graph, const Configuration& config,
                        const ClusterOptions& options, ClusterStats* stats,
                        support::RunReport* report) {
  std::vector<Plan> plans;
  plans.push_back(compile_plan(config));
  const PlanForest forest(std::move(plans));
  return distributed_count_batch(graph, forest, options, stats, report)
      .front();
}

std::vector<Count> distributed_count_batch(const Graph& graph,
                                           const PlanForest& forest,
                                           const ClusterOptions& options,
                                           ClusterStats* stats,
                                           support::RunReport* report) {
  GRAPHPI_CHECK_MSG(options.nodes >= 1, "cluster needs at least one node");
  if (options.nodes == 1)
    return single_node_run(graph, forest, stats, options.control, report);
  ShardOptions shard_options;
  shard_options.nodes = options.nodes;
  shard_options.strategy = options.partition;
  std::optional<ShardedGraph> sharded;
  {
    const support::trace::Span span("dist.partition");
    sharded.emplace(graph, shard_options);
  }
  return run_sharded(*sharded, forest, options, stats, report);
}

std::vector<Count> distributed_count_batch(const ShardedGraph& sharded,
                                           const PlanForest& forest,
                                           const ClusterOptions& options,
                                           ClusterStats* stats,
                                           support::RunReport* report) {
  return run_sharded(sharded, forest, options, stats, report);
}

}  // namespace graphpi::dist
