#include "dist/runtime.h"

#include <algorithm>
#include <array>
#include <climits>
#include <deque>
#include <numeric>

#include "core/plan.h"
#include "dist/comm.h"
#include "engine/forest.h"
#include "engine/plan_exec.h"
#include "graph/vertex_set.h"
#include "support/check.h"
#include "support/timer.h"

namespace graphpi::dist {

namespace {

using PlanMask = PlanForest::PlanMask;
using Target = ContinuationMsg::Target;

constexpr std::uint8_t kNoLimit = ContinuationMsg::kNoDepthLimit;

/// A node-local unit of work: run the subtree rooted at `trie_node` under
/// `mask` with the first `depth` schedule positions already mapped. Tasks
/// are created when the descent from a root crosses the task_depth cutoff
/// and never travel between nodes by themselves.
struct LocalTask {
  std::uint32_t trie_node = 0;
  PlanMask mask = 0;
  std::uint8_t depth = 0;
  VertexId mapped[Pattern::kMaxVertices] = {};
};

/// Per-node execution state: the shard, the workspace buffers (one
/// allocation per node for the whole run, mirroring Matcher::Workspace),
/// undivided per-plan sums, and the work queues.
struct NodeState {
  const Shard* shard = nullptr;
  std::vector<Count> sums;
  std::deque<LocalTask> tasks;
  std::size_t next_root = 0;
  std::uint64_t tasks_run = 0;
  double seconds = 0.0;

  VertexId mapped[Pattern::kMaxVertices] = {};
  std::vector<VertexId> cand[Pattern::kMaxVertices];
  std::vector<VertexId> tmp[Pattern::kMaxVertices];
  std::vector<std::vector<VertexId>> suffix_sets;
  std::vector<VertexId> scratch_a;
  std::vector<VertexId> scratch_b;
  std::vector<VertexId> all_vertices;
  std::vector<VertexId> fold_tmp;  ///< chain-folding swap buffer
};

[[nodiscard]] std::uint8_t full_fold_mask(std::size_t preds) {
  return static_cast<std::uint8_t>((1u << preds) - 1);
}

/// The sharded batch traversal: every logical node walks the plan-forest
/// trie against its own shard only, shipping serialized continuations to
/// owners when an adjacency it needs is not resident. Single-threaded
/// round-robin service keeps the run deterministic.
class ShardedForestRun {
 public:
  ShardedForestRun(const ShardedGraph& sharded, const PlanForest& forest,
                   const ClusterOptions& options)
      : sharded_(&sharded),
        forest_(&forest),
        channel_(sharded.nodes(), options.faults),
        control_(options.control != nullptr && options.control->armed()
                     ? options.control
                     : nullptr) {
    int min_leaf = INT_MAX;
    bool wants_hub = false;
    for (const Plan& plan : forest.plans()) {
      GRAPHPI_CHECK_MSG(plan.size() >= 2,
                        "the sharded runtime requires plans with >= 2 "
                        "vertices (no terminal action at the root)");
      min_leaf = std::min(min_leaf, plan.leaf_depth());
      wants_hub |= plan.wants_hub_index;
    }
    GRAPHPI_CHECK_MSG(forest.root().count_leaves.empty(),
                      "root terminal actions are impossible for plans of "
                      "size >= 2");
    if (wants_hub) sharded.ensure_hub_indexes();
    cutoff_ = static_cast<std::uint8_t>(
        std::clamp(options.task_depth, 1, std::max(1, min_leaf)));

    nodes_.resize(static_cast<std::size_t>(sharded.nodes()));
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      nodes_[n].shard = &sharded.shard(static_cast<int>(n));
      nodes_[n].sums.assign(forest.plans().size(), 0);
    }
  }

  std::vector<Count> run(ClusterStats* stats,
                         support::RunReport* run_report = nullptr) {
    // Service nodes round-robin, one unit of work per turn, until no node
    // has anything left AND the reliable channel has drained (frames may
    // need retransmitting under a fault plan): inbox message first, then
    // a queued task, then the next owned root. An armed ExecControl is
    // checked once per round — root-grained, every `nodes` work units.
    support::RunStatus status = support::RunStatus::kOk;
    bool any = true;
    while (any || !channel_.idle()) {
      if (control_ != nullptr) {
        status = control_->check(roots_done_);
        if (status != support::RunStatus::kOk) break;
      }
      channel_.tick();
      any = false;
      for (std::size_t n = 0; n < nodes_.size(); ++n)
        any |= channel_.service_retransmits(static_cast<int>(n));
      for (std::size_t n = 0; n < nodes_.size(); ++n)
        any |= service(static_cast<int>(n));
    }

    if (run_report != nullptr) {
      run_report->status = status;
      run_report->completed_roots = roots_done_;
    }
    if (status != support::RunStatus::kOk) {
      // Stopped early: skip the message exchange (in-flight continuations
      // are abandoned) and aggregate whatever every node accumulated.
      std::vector<Count> total = nodes_[0].sums;
      for (std::size_t n = 1; n < nodes_.size(); ++n)
        for (std::size_t i = 0; i < total.size(); ++i)
          total[i] += nodes_[n].sums[i];
      if (stats != nullptr) fill_stats(*stats);
      return finalize_partial(std::move(total));
    }

    // Every non-master node reports its undivided per-plan sums once —
    // the "counts travel" half of the paper's message economy. The drain
    // keeps ticking the reliable channel so dropped/corrupted reports are
    // retransmitted until the master has all of them.
    for (std::size_t n = 1; n < nodes_.size(); ++n) {
      PartialCountsMsg report;
      report.sums = nodes_[n].sums;
      report.tasks = nodes_[n].tasks_run;
      channel_.send(static_cast<int>(n), 0, MessageKind::kPartialCounts,
                    report.encode());
    }
    std::vector<Count> total = nodes_[0].sums;
    std::size_t reports = 0;
    Message msg;
    while (reports + 1 < nodes_.size() || !channel_.idle()) {
      channel_.tick();
      for (std::size_t n = 0; n < nodes_.size(); ++n)
        channel_.service_retransmits(static_cast<int>(n));
      // Non-master receives only consume acks; the master accumulates
      // each report exactly once (the channel dedups duplicates).
      for (std::size_t n = 0; n < nodes_.size(); ++n) {
        while (channel_.receive(static_cast<int>(n), msg)) {
          GRAPHPI_CHECK(n == 0);
          GRAPHPI_CHECK(msg.kind == MessageKind::kPartialCounts);
          PartialCountsMsg report;
          if (!PartialCountsMsg::try_decode(msg.payload, report) ||
              report.sums.size() != total.size()) {
            // Unreachable with an intact CRC frame; counted, not UB.
            ++decode_failures_;
            ++reports;
            continue;
          }
          for (std::size_t i = 0; i < total.size(); ++i)
            total[i] += report.sums[i];
          ++reports;
        }
      }
    }

    if (stats != nullptr) fill_stats(*stats);
    return finalize(total);
  }

 private:
  // -- scheduling ----------------------------------------------------------

  bool service(int n) {
    NodeState& ns = nodes_[static_cast<std::size_t>(n)];
    Message msg;
    if (channel_.receive(n, msg)) {
      support::Timer timer;
      GRAPHPI_CHECK(msg.kind == MessageKind::kContinuation);
      ContinuationMsg m;
      if (!ContinuationMsg::try_decode(msg.payload, m)) {
        // Structurally malformed despite an intact CRC — count it and drop
        // it instead of reading past the buffer; the sender's retransmit
        // timer re-requests delivery of anything still unacked.
        ++decode_failures_;
        return true;
      }
      std::copy(m.mapped.begin(), m.mapped.end(), ns.mapped);
      advance_chain(n, ns, m);
      ns.seconds += timer.elapsed_seconds();
      return true;
    }
    if (!ns.tasks.empty()) {
      const LocalTask task = ns.tasks.front();
      ns.tasks.pop_front();
      support::Timer timer;
      std::copy(task.mapped, task.mapped + task.depth, ns.mapped);
      ++ns.tasks_run;
      exec_node(n, ns, task.trie_node, task.mask, kNoLimit);
      ns.seconds += timer.elapsed_seconds();
      return true;
    }
    const auto owned = ns.shard->owned();
    if (ns.next_root < owned.size()) {
      const VertexId v0 = owned[ns.next_root++];
      support::Timer timer;
      ns.mapped[0] = v0;
      // Root extensions are always unconstrained (no predecessors or
      // bounds can reference depth < 0), so any owned v0 is valid.
      for (const PlanForest::Extension& ext : forest_->root().extensions)
        exec_node(n, ns, static_cast<std::uint32_t>(ext.child),
                  ext.mask & forest_->all_plans_mask(), cutoff_);
      ns.seconds += timer.elapsed_seconds();
      ++roots_done_;
      return true;
    }
    return false;
  }

  // -- trie walk -----------------------------------------------------------

  [[nodiscard]] bool all_resident(const NodeState& ns,
                                  std::span<const int> preds) const {
    for (int p : preds)
      if (!ns.shard->is_resident(ns.mapped[p])) return false;
    return true;
  }

  void exec_node(int n, NodeState& ns, std::uint32_t node_idx, PlanMask active,
                 std::uint8_t limit) {
    const PlanForest::Node& node =
        forest_->nodes()[static_cast<std::size_t>(node_idx)];
    if (limit != kNoLimit && node.depth >= static_cast<int>(limit)) {
      LocalTask task;
      task.trie_node = node_idx;
      task.mask = active;
      task.depth = static_cast<std::uint8_t>(node.depth);
      std::copy(ns.mapped, ns.mapped + node.depth, task.mapped);
      ns.tasks.push_back(task);
      return;
    }

    // Leaves first: they may use cand[depth]/tmp[depth], which the
    // extension loop below rebuilds (same order as ForestExecutor).
    if (!node.count_leaves.empty() || !node.iep_leaves.empty())
      eval_leaves(n, ns, node_idx, active);

    const int depth = node.depth;
    const std::span<const VertexId> mapped{ns.mapped,
                                           static_cast<std::size_t>(depth)};
    for (std::size_t e = 0; e < node.extensions.size(); ++e) {
      const PlanForest::Extension& ext = node.extensions[e];
      if ((ext.mask & active) == 0) continue;
      const ResolvedBranches rb = resolve_branches(ns.mapped, ext, active);
      if (rb.live == 0) continue;

      if (all_resident(ns, ext.predecessor_depths)) {
        const std::span<const VertexId> cands = exec::build_candidates(
            ns.shard->view(), ext.predecessor_depths, mapped, ns.cand[depth],
            ns.tmp[depth], ns.all_vertices);
        run_extension_loop(n, ns, node_idx, e, rb, cands, limit);
      } else {
        ContinuationMsg m;
        m.trie_node = node_idx;
        m.target = Target::kExtension;
        m.item = static_cast<std::uint16_t>(e);
        m.depth_limit = limit;
        m.mask = active;
        m.mapped.assign(ns.mapped, ns.mapped + depth);
        advance_chain(n, ns, m);
      }
    }
  }

  void eval_leaves(int n, NodeState& ns, std::uint32_t node_idx,
                   PlanMask active) {
    const PlanForest::Node& node =
        forest_->nodes()[static_cast<std::size_t>(node_idx)];
    const int depth = node.depth;
    const std::span<const VertexId> mapped{ns.mapped,
                                           static_cast<std::size_t>(depth)};

    for (std::size_t li = 0; li < node.count_leaves.size(); ++li) {
      const PlanForest::CountLeaf& leaf = node.count_leaves[li];
      if (((active >> leaf.plan) & 1) == 0) continue;
      const exec::Window w = exec::bounded_window(ns.mapped, leaf);
      if (w.empty()) continue;
      if (all_resident(ns, leaf.predecessor_depths)) {
        const Count raw = exec::count_intersection_bounded(
            ns.shard->view(), leaf.predecessor_depths, mapped, w.lo_inclusive,
            w.hi_exclusive, ns.cand[depth], ns.tmp[depth]);
        ns.sums[static_cast<std::size_t>(leaf.plan)] +=
            raw - exec::count_used_in_intersection(
                      ns.shard->view(), leaf.predecessor_depths, mapped,
                      w.lo_inclusive, w.hi_exclusive);
      } else {
        ContinuationMsg m;
        m.trie_node = node_idx;
        m.target = Target::kCountLeaf;
        m.item = static_cast<std::uint16_t>(li);
        m.mask = active;
        m.mapped.assign(ns.mapped, ns.mapped + depth);
        advance_chain(n, ns, m);
      }
    }

    if (node.iep_leaves.empty()) return;
    PlanMask iep_active = 0;
    for (const PlanForest::IepLeaf& leaf : node.iep_leaves)
      if (((active >> leaf.plan) & 1) != 0) iep_active |= PlanMask{1} << leaf.plan;
    if (iep_active == 0) return;

    // The sharded executor has no memo tables, so it builds every DEMANDED
    // set (suffix_def_demand_masks), not just the ForestExecutor's
    // materialize subset.
    const std::vector<PlanMask>& demand = node.suffix_def_demand_masks;
    bool local = true;
    for (std::size_t i = 0; i < node.suffix_defs.size() && local; ++i)
      if ((demand[i] & active) != 0 && !all_resident(ns, node.suffix_defs[i]))
        local = false;

    if (local) {
      // Every needed suffix set is computable on this shard: exactly the
      // ForestExecutor evaluation (shared sets, then per-plan terms).
      if (ns.suffix_sets.size() < node.suffix_defs.size())
        ns.suffix_sets.resize(node.suffix_defs.size());
      for (std::size_t i = 0; i < node.suffix_defs.size(); ++i)
        if ((demand[i] & active) != 0)
          exec::build_suffix_set(ns.shard->view(), node.suffix_defs[i], mapped,
                                 ns.suffix_sets[i], ns.scratch_a);
      for (const PlanForest::IepLeaf& leaf : node.iep_leaves) {
        if (((active >> leaf.plan) & 1) == 0) continue;
        const Plan& plan =
            forest_->plans()[static_cast<std::size_t>(leaf.plan)];
        ns.sums[static_cast<std::size_t>(leaf.plan)] +=
            exec::evaluate_iep_terms(plan.iep.terms, ns.suffix_sets,
                                     leaf.set_ids, ns.scratch_a, ns.scratch_b);
      }
      return;
    }

    // Some suffix set needs a non-resident adjacency: build them as a
    // shipped chain carrying the completed sets along.
    ContinuationMsg m;
    m.trie_node = node_idx;
    m.target = Target::kIepChain;
    m.item = 0;
    m.mask = active;
    m.mapped.assign(ns.mapped, ns.mapped + depth);
    m.done_sets.resize(node.suffix_defs.size());
    advance_chain(n, ns, m);
  }

  /// Candidate loop of one extension over already-resolved branches: the
  /// loop runs the union window and narrows the active-plan mask per
  /// candidate (same model as ForestExecutor; `rb` must come from
  /// resolve_branches under the current mapping and have live > 0).
  void run_extension_loop(int n, NodeState& ns, std::uint32_t node_idx,
                          std::size_t ext_idx, const ResolvedBranches& rb,
                          std::span<const VertexId> cands,
                          std::uint8_t limit) {
    const PlanForest::Node& node =
        forest_->nodes()[static_cast<std::size_t>(node_idx)];
    const PlanForest::Extension& ext = node.extensions[ext_idx];
    const int depth = node.depth;
    const std::span<const VertexId> mapped{ns.mapped,
                                           static_cast<std::size_t>(depth)};

    const auto range =
        rb.union_window.unbounded()
            ? cands
            : trim_to_window(cands, rb.union_window.lo_inclusive,
                             rb.union_window.hi_exclusive);
    const auto child = static_cast<std::uint32_t>(ext.child);
    if (rb.live == 1) {
      const PlanMask next = rb.masks[0];
      for (VertexId v : range) {
        if (exec::already_used(mapped, v)) continue;
        ns.mapped[depth] = v;
        exec_node(n, ns, child, next, limit);
      }
      return;
    }
    for (VertexId v : range) {
      const PlanMask next = rb.mask_at(v);
      if (next == 0 || exec::already_used(mapped, v)) continue;
      ns.mapped[depth] = v;
      exec_node(n, ns, child, next, limit);
    }
  }

  // -- continuation chains -------------------------------------------------

  /// Folds every locally-resident, not-yet-folded predecessor of the
  /// chain's current item into m.partial (first fold materializes the
  /// window-trimmed adjacency). Returns true when the set is complete —
  /// either all predecessors folded or the intersection emptied out.
  bool fold_local(NodeState& ns, std::span<const int> preds,
                  exec::Window clamp, ContinuationMsg& m) {
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (m.folded & (1u << i)) continue;
      const VertexId pv = ns.mapped[preds[i]];
      if (!ns.shard->is_resident(pv)) continue;
      if (!m.has_partial) {
        const auto adj = trim_to_window(ns.shard->neighbors(pv),
                                        clamp.lo_inclusive, clamp.hi_exclusive);
        m.partial.assign(adj.begin(), adj.end());
        m.has_partial = true;
      } else {
        exec::intersect_with_vertex(ns.shard->view(), m.partial, pv,
                                    ns.fold_tmp);
        std::swap(m.partial, ns.fold_tmp);
      }
      m.folded |= static_cast<std::uint8_t>(1u << i);
      if (m.partial.empty()) {
        // Nothing can survive the remaining intersections.
        m.folded = full_fold_mask(preds.size());
        return true;
      }
    }
    return m.folded == full_fold_mask(preds.size());
  }

  /// Serializes the chain and ships it to the owner of the first
  /// predecessor whose adjacency this node does not hold.
  void ship(int n, std::span<const int> preds, const ContinuationMsg& m) {
    int dest = -1;
    for (std::size_t i = 0; i < preds.size(); ++i)
      if ((m.folded & (1u << i)) == 0) {
        dest = sharded_->owner(m.mapped[static_cast<std::size_t>(preds[i])]);
        break;
      }
    GRAPHPI_CHECK_MSG(dest >= 0 && dest != n,
                      "a chain only ships when a predecessor is non-"
                      "resident, and owners always hold their vertices");
    shipped_set_vertices_ += m.shipped_set_vertices();
    channel_.send(n, dest, MessageKind::kContinuation, m.encode());
  }

  /// Advances a chain on this node as far as local residency allows:
  /// completes the item (running the dependent loop / count / IEP
  /// evaluation here) or ships the remainder. ns.mapped must already hold
  /// m.mapped.
  void advance_chain(int n, NodeState& ns, ContinuationMsg& m) {
    const PlanForest::Node& node =
        forest_->nodes()[static_cast<std::size_t>(m.trie_node)];
    switch (m.target) {
      case Target::kExtension: {
        const PlanForest::Extension& ext = node.extensions[m.item];
        const ResolvedBranches rb =
            resolve_branches(ns.mapped, ext, m.mask);
        if (rb.live == 0) return;
        if (!fold_local(ns, ext.predecessor_depths, rb.union_window, m)) {
          ship(n, ext.predecessor_depths, m);
          return;
        }
        run_extension_loop(n, ns, m.trie_node, m.item, rb, m.partial,
                           m.depth_limit);
        return;
      }
      case Target::kCountLeaf: {
        const PlanForest::CountLeaf& leaf = node.count_leaves[m.item];
        const exec::Window w = exec::bounded_window(ns.mapped, leaf);
        if (w.empty()) return;
        if (!fold_local(ns, leaf.predecessor_depths, w, m)) {
          ship(n, leaf.predecessor_depths, m);
          return;
        }
        // The materialized intersection is already window-trimmed; the
        // used-vertex correction is membership of mapped vertices in it.
        Count used = 0;
        for (VertexId v : m.mapped)
          if (contains(m.partial, v)) ++used;
        ns.sums[static_cast<std::size_t>(leaf.plan)] +=
            static_cast<Count>(m.partial.size()) - used;
        return;
      }
      case Target::kIepChain:
        advance_iep_chain(n, ns, m);
        return;
    }
    GRAPHPI_CHECK_MSG(false, "unknown continuation target");
  }

  void advance_iep_chain(int n, NodeState& ns, ContinuationMsg& m) {
    const PlanForest::Node& node =
        forest_->nodes()[static_cast<std::size_t>(m.trie_node)];
    const std::vector<PlanMask>& demand = node.suffix_def_demand_masks;
    const std::span<const VertexId> mapped{ns.mapped, m.mapped.size()};
    while (m.item < node.suffix_defs.size()) {
      if ((demand[m.item] & m.mask) == 0) {
        ++m.item;  // no active plan consumes this set
        continue;
      }
      const std::vector<int>& def = node.suffix_defs[m.item];
      if (def.empty()) {
        // Disconnected suffix vertex: every vertex minus the mapped ones.
        auto& set = m.done_sets[m.item];
        set.resize(sharded_->parent().vertex_count());
        std::iota(set.begin(), set.end(), VertexId{0});
        remove_all(set, mapped);
        ++m.item;
        continue;
      }
      if (!fold_local(ns, def, exec::Window{}, m)) {
        ship(n, def, m);
        return;
      }
      remove_all(m.partial, mapped);
      m.done_sets[m.item] = std::move(m.partial);
      m.partial.clear();
      m.has_partial = false;
      m.folded = 0;
      ++m.item;
    }
    // All needed sets materialized: evaluate every active plan's terms.
    for (const PlanForest::IepLeaf& leaf : node.iep_leaves) {
      if (((m.mask >> leaf.plan) & 1) == 0) continue;
      const Plan& plan = forest_->plans()[static_cast<std::size_t>(leaf.plan)];
      ns.sums[static_cast<std::size_t>(leaf.plan)] +=
          exec::evaluate_iep_terms(plan.iep.terms, m.done_sets, leaf.set_ids,
                                   ns.scratch_a, ns.scratch_b);
    }
  }

  // -- epilogue ------------------------------------------------------------

  std::vector<Count> finalize(std::vector<Count> sums) const {
    const auto& plans = forest_->plans();
    for (std::size_t i = 0; i < plans.size(); ++i) {
      if (!plans[i].iep_active()) continue;
      GRAPHPI_CHECK_MSG(sums[i] % plans[i].iep.divisor == 0,
                        "IEP sum must be divisible by the surviving-"
                        "automorphism factor x");
      sums[i] /= plans[i].iep.divisor;
    }
    return sums;
  }

  /// Best-effort finalization of a stopped run: a partial IEP sum is
  /// generally not divisible by x, so divide without the check.
  std::vector<Count> finalize_partial(std::vector<Count> sums) const {
    const auto& plans = forest_->plans();
    for (std::size_t i = 0; i < plans.size(); ++i)
      if (plans[i].iep_active()) sums[i] /= plans[i].iep.divisor;
    return sums;
  }

  void fill_stats(ClusterStats& out) const {
    const CommStats& comm = channel_.transport_stats();
    const ReliabilityStats& rel = channel_.reliability_stats();
    out = ClusterStats{};
    out.ack_messages =
        comm.messages_by_kind[static_cast<std::size_t>(MessageKind::kAck)];
    out.retransmits = rel.retransmits;
    out.corrupt_frames_detected = rel.corrupt_frames_detected;
    out.duplicates_suppressed = rel.duplicates_suppressed;
    out.decode_failures = decode_failures_;
    out.injected_drops = comm.injected_drops;
    out.injected_duplicates = comm.injected_duplicates;
    out.injected_reorders = comm.injected_reorders;
    out.injected_corruptions = comm.injected_corruptions;
    out.messages = comm.messages;
    out.bytes = comm.bytes;
    out.continuation_messages =
        comm.messages_by_kind[static_cast<std::size_t>(
            MessageKind::kContinuation)];
    out.continuation_bytes = comm.bytes_by_kind[static_cast<std::size_t>(
        MessageKind::kContinuation)];
    out.count_messages = comm.messages_by_kind[static_cast<std::size_t>(
        MessageKind::kPartialCounts)];
    out.count_bytes = comm.bytes_by_kind[static_cast<std::size_t>(
        MessageKind::kPartialCounts)];
    out.shipped_set_vertices = shipped_set_vertices_;
    out.sent_messages_per_node = comm.sent_messages_per_node;
    out.sent_bytes_per_node = comm.sent_bytes_per_node;
    out.tasks_per_node.reserve(nodes_.size());
    out.seconds_per_node.reserve(nodes_.size());
    for (const NodeState& ns : nodes_) {
      out.total_tasks += ns.tasks_run;
      out.tasks_per_node.push_back(ns.tasks_run);
      out.seconds_per_node.push_back(ns.seconds);
    }
    const ShardedGraph::Stats& shape = sharded_->stats();
    out.owned_per_node = shape.owned_per_node;
    out.ghosts_per_node = shape.ghosts_per_node;
    out.replication_factor = shape.replication_factor;
  }

  const ShardedGraph* sharded_;
  const PlanForest* forest_;
  ReliableChannel channel_;
  const support::ExecControl* control_ = nullptr;
  std::vector<NodeState> nodes_;
  std::uint8_t cutoff_ = 1;
  std::uint64_t shipped_set_vertices_ = 0;
  std::uint64_t roots_done_ = 0;
  std::uint64_t decode_failures_ = 0;
};

/// Single-node run: the whole graph is one shard, so the plain batch
/// executor over the full root domain is the honest (and fastest) path —
/// no replication, no messages.
std::vector<Count> single_node_run(const Graph& graph, const PlanForest& forest,
                                   ClusterStats* stats,
                                   const support::ExecControl* control,
                                   support::RunReport* report) {
  const ForestExecutor executor(graph, forest);
  ForestExecutor::Workspace ws;
  std::vector<VertexId> roots(graph.vertex_count());
  std::iota(roots.begin(), roots.end(), VertexId{0});
  support::Timer timer;
  const std::vector<Count> counts =
      executor.count_roots(ws, roots, control, report);
  if (stats != nullptr) {
    *stats = ClusterStats{};
    stats->total_tasks = roots.size();
    stats->tasks_per_node = {roots.size()};
    stats->seconds_per_node = {timer.elapsed_seconds()};
    stats->sent_messages_per_node = {0};
    stats->sent_bytes_per_node = {0};
    stats->owned_per_node = {graph.vertex_count()};
    stats->ghosts_per_node = {0};
    stats->replication_factor = 1.0;
  }
  return counts;
}

}  // namespace

void ClusterStats::accumulate(const ClusterStats& other) {
  const auto merge_u64 = [](std::vector<std::uint64_t>& into,
                            const std::vector<std::uint64_t>& from) {
    if (into.size() < from.size()) into.resize(from.size(), 0);
    for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
  };
  total_tasks += other.total_tasks;
  messages += other.messages;
  bytes += other.bytes;
  continuation_messages += other.continuation_messages;
  continuation_bytes += other.continuation_bytes;
  shipped_set_vertices += other.shipped_set_vertices;
  count_messages += other.count_messages;
  count_bytes += other.count_bytes;
  ack_messages += other.ack_messages;
  retransmits += other.retransmits;
  corrupt_frames_detected += other.corrupt_frames_detected;
  duplicates_suppressed += other.duplicates_suppressed;
  decode_failures += other.decode_failures;
  injected_drops += other.injected_drops;
  injected_duplicates += other.injected_duplicates;
  injected_reorders += other.injected_reorders;
  injected_corruptions += other.injected_corruptions;
  merge_u64(tasks_per_node, other.tasks_per_node);
  merge_u64(sent_messages_per_node, other.sent_messages_per_node);
  merge_u64(sent_bytes_per_node, other.sent_bytes_per_node);
  if (seconds_per_node.size() < other.seconds_per_node.size())
    seconds_per_node.resize(other.seconds_per_node.size(), 0.0);
  for (std::size_t i = 0; i < other.seconds_per_node.size(); ++i)
    seconds_per_node[i] += other.seconds_per_node[i];
  // Shard shape is identical across chunks of one batch: keep the latest.
  owned_per_node = other.owned_per_node;
  ghosts_per_node = other.ghosts_per_node;
  replication_factor = other.replication_factor;
}

Count distributed_count(const Graph& graph, const Configuration& config,
                        const ClusterOptions& options, ClusterStats* stats,
                        support::RunReport* report) {
  std::vector<Plan> plans;
  plans.push_back(compile_plan(config));
  const PlanForest forest(std::move(plans));
  return distributed_count_batch(graph, forest, options, stats, report)
      .front();
}

std::vector<Count> distributed_count_batch(const Graph& graph,
                                           const PlanForest& forest,
                                           const ClusterOptions& options,
                                           ClusterStats* stats,
                                           support::RunReport* report) {
  GRAPHPI_CHECK_MSG(options.nodes >= 1, "cluster needs at least one node");
  if (options.nodes == 1)
    return single_node_run(graph, forest, stats, options.control, report);
  ShardOptions shard_options;
  shard_options.nodes = options.nodes;
  shard_options.strategy = options.partition;
  const ShardedGraph sharded(graph, shard_options);
  return ShardedForestRun(sharded, forest, options).run(stats, report);
}

std::vector<Count> distributed_count_batch(const ShardedGraph& sharded,
                                           const PlanForest& forest,
                                           const ClusterOptions& options,
                                           ClusterStats* stats,
                                           support::RunReport* report) {
  return ShardedForestRun(sharded, forest, options).run(stats, report);
}

}  // namespace graphpi::dist
