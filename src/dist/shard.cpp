#include "dist/shard.h"

#include <algorithm>

#include "graph/subgraph.h"
#include "support/check.h"

namespace graphpi::dist {

const char* to_string(PartitionStrategy strategy) noexcept {
  switch (strategy) {
    case PartitionStrategy::kHash:
      return "hash";
    case PartitionStrategy::kRange:
      return "range";
  }
  return "?";
}

bool parse_partition(std::string_view name, PartitionStrategy& out) noexcept {
  if (name == "hash") {
    out = PartitionStrategy::kHash;
    return true;
  }
  if (name == "range") {
    out = PartitionStrategy::kRange;
    return true;
  }
  return false;
}

std::vector<int> partition_owners(const Graph& graph, int nodes,
                                  PartitionStrategy strategy) {
  GRAPHPI_CHECK_MSG(nodes >= 1, "partitioning needs at least one node");
  const VertexId n = graph.vertex_count();
  std::vector<int> owner(n, 0);
  if (nodes == 1) return owner;

  if (strategy == PartitionStrategy::kHash) {
    // Fibonacci hashing scatters consecutive ids (which are correlated
    // with degree in most loaders) uniformly across nodes.
    for (VertexId v = 0; v < n; ++v) {
      const std::uint64_t h = (v * 0x9E3779B97F4A7C15ull) >> 32;
      owner[v] = static_cast<int>(h % static_cast<std::uint64_t>(nodes));
    }
    return owner;
  }

  // kRange: contiguous id ranges with (approximately) equal adjacency-slot
  // mass, so a power-law head does not land on one node. Greedy sweep: cut
  // to the next node once the running slot sum passes its proportional
  // boundary.
  const std::uint64_t total = graph.directed_edge_count();
  std::uint64_t cum = 0;
  int node = 0;
  for (VertexId v = 0; v < n; ++v) {
    owner[v] = node;
    cum += graph.degree(v);
    while (node + 1 < nodes &&
           cum * static_cast<std::uint64_t>(nodes) >=
               total * static_cast<std::uint64_t>(node + 1)) {
      ++node;
    }
  }
  return owner;
}

std::span<const VertexId> Shard::neighbors(VertexId v) const {
  GRAPHPI_CHECK_MSG(is_resident(v),
                    "shard read outside its resident set — this walk "
                    "should have been shipped to the vertex's owner");
  return view_.neighbors(v);
}

Shard Shard::from_parts(int node, Graph view, std::vector<VertexId> owned,
                        std::vector<VertexId> residents) {
  const VertexId n = view.vertex_count();
  GRAPHPI_CHECK_MSG(std::is_sorted(owned.begin(), owned.end()),
                    "shard owned list must be sorted");
  GRAPHPI_CHECK_MSG(std::is_sorted(residents.begin(), residents.end()),
                    "shard resident list must be sorted");
  GRAPHPI_CHECK_MSG(owned.size() <= residents.size(),
                    "shard cannot own more vertices than it stores");

  Shard shard;
  shard.node_ = node;
  shard.local_of_.assign(n, kNotResident);
  shard.owned_mask_.assign(residents.size(), false);
  std::size_t owned_i = 0;
  for (std::size_t local = 0; local < residents.size(); ++local) {
    const VertexId v = residents[local];
    GRAPHPI_CHECK_MSG(v < n, "shard resident id out of range");
    shard.local_of_[v] = static_cast<std::uint32_t>(local);
    if (owned_i < owned.size() && owned[owned_i] == v) {
      shard.owned_mask_[local] = true;
      ++owned_i;
    }
    shard.resident_slots_ += view.degree(v);
  }
  GRAPHPI_CHECK_MSG(owned_i == owned.size(),
                    "shard owned list is not a subset of its residents");
  GRAPHPI_CHECK_MSG(shard.resident_slots_ == view.directed_edge_count(),
                    "shard view stores rows outside its resident set");
  shard.view_ = std::move(view);
  shard.owned_ = std::move(owned);
  shard.residents_ = std::move(residents);
  return shard;
}

ShardedGraph ShardedGraph::from_parts(const ShardOptions& options,
                                      std::vector<int> owner,
                                      std::vector<Shard> shards) {
  GRAPHPI_CHECK_MSG(!shards.empty(), "sharding needs at least one shard");
  GRAPHPI_CHECK_MSG(shards.size() == static_cast<std::size_t>(options.nodes),
                    "shard count disagrees with options.nodes");

  ShardedGraph sharded;
  sharded.options_ = options;
  sharded.stats_.owned_per_node.assign(shards.size(), 0);
  sharded.stats_.ghosts_per_node.assign(shards.size(), 0);
  std::uint64_t stored_slots = 0;
  std::uint64_t owned_slots = 0;  // each row counted once, at its owner
  std::uint64_t owned_total = 0;
  for (std::size_t node = 0; node < shards.size(); ++node) {
    const Shard& shard = shards[node];
    GRAPHPI_CHECK_MSG(shard.node() == static_cast<int>(node),
                      "shards must arrive in node order");
    GRAPHPI_CHECK_MSG(shard.view().vertex_count() == owner.size(),
                      "shard view size disagrees with the owner map");
    for (VertexId v : shard.owned()) {
      GRAPHPI_CHECK_MSG(owner[v] == static_cast<int>(node),
                        "owner map disagrees with a shard's owned list");
      owned_slots += shard.view().degree(v);
    }
    sharded.stats_.owned_per_node[node] = shard.owned_count();
    sharded.stats_.ghosts_per_node[node] = shard.ghost_count();
    stored_slots += shard.resident_slots();
    owned_total += shard.owned_count();
  }
  GRAPHPI_CHECK_MSG(owned_total == owner.size(),
                    "shard owned sets do not partition the vertex space");
  sharded.stats_.replication_factor =
      owned_slots > 0 ? static_cast<double>(stored_slots) /
                            static_cast<double>(owned_slots)
                      : 1.0;
  sharded.owner_ = std::move(owner);
  sharded.shards_ = std::move(shards);
  return sharded;
}

ShardedGraph::ShardedGraph(const Graph& graph, const ShardOptions& options)
    : parent_(&graph), options_(options) {
  GRAPHPI_CHECK_MSG(options.nodes >= 1, "sharding needs at least one node");
  const VertexId n = graph.vertex_count();
  owner_ = partition_owners(graph, options.nodes, options.strategy);

  // The poison row: ascending, plausible-looking, wrong nearly everywhere.
  std::vector<VertexId> poison;
  if (options.poison_nonresident) {
    for (VertexId v = 0; v < std::min<VertexId>(n, 8); ++v) poison.push_back(v);
  }

  shards_.resize(static_cast<std::size_t>(options.nodes));
  stats_.owned_per_node.assign(static_cast<std::size_t>(options.nodes), 0);
  stats_.ghosts_per_node.assign(static_cast<std::size_t>(options.nodes), 0);
  std::uint64_t stored_slots = 0;

  std::vector<bool> resident(n);
  for (int node = 0; node < options.nodes; ++node) {
    Shard& shard = shards_[static_cast<std::size_t>(node)];
    shard.node_ = node;

    // Residents = owned + 1-hop halo around them.
    std::fill(resident.begin(), resident.end(), false);
    for (VertexId v = 0; v < n; ++v) {
      if (owner_[v] != node) continue;
      shard.owned_.push_back(v);
      resident[v] = true;
      for (VertexId w : graph.neighbors(v)) resident[w] = true;
    }

    shard.local_of_.assign(n, Shard::kNotResident);
    for (VertexId v = 0; v < n; ++v) {
      if (!resident[v]) continue;
      shard.local_of_[v] = static_cast<std::uint32_t>(shard.residents_.size());
      shard.residents_.push_back(v);
      shard.owned_mask_.push_back(owner_[v] == node);
      shard.resident_slots_ += graph.degree(v);
    }
    shard.view_ = csr_row_slice(graph, resident, poison);

    stats_.owned_per_node[static_cast<std::size_t>(node)] =
        shard.owned_count();
    stats_.ghosts_per_node[static_cast<std::size_t>(node)] =
        shard.ghost_count();
    stored_slots += shard.resident_slots_;
  }
  stats_.replication_factor =
      graph.directed_edge_count() > 0
          ? static_cast<double>(stored_slots) /
                static_cast<double>(graph.directed_edge_count())
          : 1.0;
}

void ShardedGraph::ensure_hub_indexes() const {
  for (const Shard& shard : shards_) shard.view().ensure_hub_index();
}

}  // namespace graphpi::dist
