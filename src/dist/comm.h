// In-process typed message channel for the sharded distributed runtime.
//
// Every cross-node interaction of the sharded executor travels through a
// Channel as a SERIALIZED byte payload — continuations carrying partial
// embeddings and in-flight candidate sets, and per-plan partial counts.
// Serializing (instead of passing pointers between logical nodes of the
// same process) keeps the simulation honest: the byte counters measure
// exactly what a wire would carry, so the paper's "counts travel,
// embeddings never do" economy becomes a number instead of a slogan, and
// the comm-cost model in dist/simulator.h has real inputs.
//
// The channel is single-threaded by design (the runtime services logical
// nodes round-robin); it is a measurement device, not a transport.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "graph/types.h"

namespace graphpi::dist {

enum class MessageKind : std::uint8_t {
  /// A walk continuation: partial embedding + set-build progress shipped
  /// to the owner of an adjacency the sender does not hold.
  kContinuation = 0,
  /// A node's per-plan partial sums reported to the master.
  kPartialCounts = 1,
};
inline constexpr std::size_t kMessageKindCount = 2;

struct Message {
  MessageKind kind = MessageKind::kContinuation;
  int from = -1;
  int to = -1;
  std::vector<std::uint8_t> payload;
};

/// Aggregate traffic counters, by kind and by sending node.
struct CommStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;  ///< payload bytes (headers excluded)
  std::uint64_t messages_by_kind[kMessageKindCount] = {};
  std::uint64_t bytes_by_kind[kMessageKindCount] = {};
  std::vector<std::uint64_t> sent_messages_per_node;
  std::vector<std::uint64_t> sent_bytes_per_node;
};

/// All-to-all mailboxes between `nodes` logical nodes.
class Channel {
 public:
  explicit Channel(int nodes);

  void send(int from, int to, MessageKind kind,
            std::vector<std::uint8_t> payload);

  /// Pops the oldest message addressed to `node`; false when its inbox is
  /// empty.
  [[nodiscard]] bool receive(int node, Message& out);

  /// True when every inbox is empty.
  [[nodiscard]] bool idle() const noexcept { return in_flight_ == 0; }

  [[nodiscard]] const CommStats& stats() const noexcept { return stats_; }

 private:
  std::vector<std::deque<Message>> inboxes_;
  std::size_t in_flight_ = 0;
  CommStats stats_;
};

// ---------------------------------------------------------------------------
// Wire codec: little-endian, length-prefixed vectors. Small on purpose —
// payload layouts live with the typed message structs below.
// ---------------------------------------------------------------------------

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void vertex_span(std::span<const VertexId> vs);
  void count_span(std::span<const Count> cs);

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data)
      : p_(data.data()), end_(data.data() + data.size()) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  void vertex_vec(std::vector<VertexId>& out);
  void count_vec(std::vector<Count>& out);
  [[nodiscard]] bool done() const noexcept { return p_ == end_; }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

// ---------------------------------------------------------------------------
// Typed payloads.
// ---------------------------------------------------------------------------

/// A shipped walk continuation (MessageKind::kContinuation). The receiver
/// re-derives restriction windows and branch masks from `mapped`, so only
/// identity (which trie node, which item), progress (which predecessors
/// are already folded into `partial`), and the actual candidate data
/// travel.
struct ContinuationMsg {
  enum class Target : std::uint8_t {
    kExtension = 0,  ///< building extension `item`'s candidate set
    kCountLeaf = 1,  ///< building counting leaf `item`'s intersection
    kIepChain = 2,   ///< building suffix set `item`; done_sets carries the
                     ///< node's already-completed suffix sets
  };
  static constexpr std::uint8_t kNoDepthLimit = 0xff;

  std::uint32_t trie_node = 0;
  Target target = Target::kExtension;
  std::uint16_t item = 0;
  /// Task-granularity cutoff still in force for the descent (see
  /// ClusterOptions::task_depth); kNoDepthLimit once past generation.
  std::uint8_t depth_limit = kNoDepthLimit;
  std::uint64_t mask = 0;  ///< active-plan bitmask at the trie node
  /// Bit i set = predecessor_depths[i] already folded into `partial`.
  std::uint8_t folded = 0;
  bool has_partial = false;
  std::vector<VertexId> mapped;   ///< schedule depths [0, trie depth)
  std::vector<VertexId> partial;  ///< in-flight candidate intersection
  std::vector<std::vector<VertexId>> done_sets;  ///< kIepChain only

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static ContinuationMsg decode(
      std::span<const std::uint8_t> payload);

  /// Candidate-set vertices this continuation carries (partial + completed
  /// suffix sets) — the "shipped candidates" half of the byte economy.
  [[nodiscard]] std::uint64_t shipped_set_vertices() const noexcept;
};

/// A node's end-of-run report (MessageKind::kPartialCounts): undivided
/// per-plan sums plus how many tasks it executed.
struct PartialCountsMsg {
  std::vector<Count> sums;
  std::uint64_t tasks = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static PartialCountsMsg decode(
      std::span<const std::uint8_t> payload);
};

}  // namespace graphpi::dist
