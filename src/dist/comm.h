// In-process typed message channel for the sharded distributed runtime.
//
// Every cross-node interaction of the sharded executor travels through a
// Channel as a SERIALIZED byte payload — continuations carrying partial
// embeddings and in-flight candidate sets, and per-plan partial counts.
// Serializing (instead of passing pointers between logical nodes of the
// same process) keeps the simulation honest: the byte counters measure
// exactly what a wire would carry, so the paper's "counts travel,
// embeddings never do" economy becomes a number instead of a slogan, and
// the comm-cost model in dist/simulator.h has real inputs.
//
// The channel is thread-safe: the lockstep executor drives all logical
// nodes from one thread (deterministic round-robin), while the async
// executor runs one worker pool per node with the channel as the only
// shared medium — inboxes are bounded MPMC queues, traffic counters are
// atomic, and the reliability bookkeeping (sequence numbers, unacked
// frames, dedup sets) is guarded per node. It can also MISBEHAVE like a
// transport: a seeded, deterministic FaultPlan injects drops, duplicates,
// reorders, and byte corruption per message kind, and the ReliableChannel
// layered on top restores exactly-once delivery with CRC32-framed
// payloads, sequence numbers, send-side retransmit with capped backoff,
// and receive-side dedup — the same protocol shape a real MPI/socket
// backend will need. Batch frames amortize one header + CRC + ack over
// many coalesced continuation payloads (see send_many).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <random>
#include <span>
#include <unordered_set>
#include <vector>

#include "graph/types.h"
#include "support/metrics.h"
#include "support/mpmc_queue.h"

namespace graphpi::dist {

enum class MessageKind : std::uint8_t {
  /// A walk continuation: partial embedding + set-build progress shipped
  /// to the owner of an adjacency the sender does not hold.
  kContinuation = 0,
  /// A node's per-plan partial sums reported to the master.
  kPartialCounts = 1,
  /// Reliability-layer acknowledgement of a received data frame.
  kAck = 2,
};
inline constexpr std::size_t kMessageKindCount = 3;

struct Message {
  MessageKind kind = MessageKind::kContinuation;
  int from = -1;
  int to = -1;
  std::vector<std::uint8_t> payload;
};

/// Deterministic fault injection: per-kind probabilities, seeded RNG.
/// The same plan + the same send sequence produces the same faults, so
/// failing runs reproduce exactly (in lockstep mode; async mode shares
/// the engine across sender threads, so which send draws which roll
/// depends on scheduling — the reliability layer keeps counts
/// bit-identical either way).
struct FaultPlan {
  struct Rates {
    double drop = 0.0;       ///< message silently lost
    double duplicate = 0.0;  ///< message delivered twice
    double reorder = 0.0;    ///< message jumps the queue at the receiver
    double corrupt = 0.0;    ///< 1–3 payload bytes flipped
  };

  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  Rates kind[kMessageKindCount] = {};

  [[nodiscard]] bool active() const noexcept {
    for (const Rates& r : kind)
      if (r.drop > 0 || r.duplicate > 0 || r.reorder > 0 || r.corrupt > 0)
        return true;
    return false;
  }

  /// Same rates for every kind — acks misbehave too.
  [[nodiscard]] static FaultPlan uniform(std::uint64_t seed, double drop,
                                         double duplicate, double reorder,
                                         double corrupt) {
    FaultPlan plan;
    plan.seed = seed;
    for (Rates& r : plan.kind) r = Rates{drop, duplicate, reorder, corrupt};
    return plan;
  }
};

/// Aggregate traffic counters, by kind and by sending node. The
/// injected_* counters record what the fault plan actually did. Snapshot
/// struct — Channel::stats() materializes it from atomic counters, so a
/// copy taken mid-run is internally consistent enough for monitoring and
/// exact once the channel has quiesced.
struct CommStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;  ///< payload bytes (headers excluded)
  std::uint64_t messages_by_kind[kMessageKindCount] = {};
  std::uint64_t bytes_by_kind[kMessageKindCount] = {};
  std::vector<std::uint64_t> sent_messages_per_node;
  std::vector<std::uint64_t> sent_bytes_per_node;
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_duplicates = 0;
  std::uint64_t injected_reorders = 0;
  std::uint64_t injected_corruptions = 0;
};

/// All-to-all mailboxes between `nodes` logical nodes, with optional
/// fault injection at the send side. Inboxes are bounded MPMC queues
/// (`mailbox_capacity` frames each; 0 = unbounded). The channel itself
/// never refuses a send — protocol traffic (acks, retransmits) must
/// always land — so the bound is enforced cooperatively: senders of NEW
/// data consult inbox_size() and stall while a peer is at capacity (see
/// the async runtime's flush loop), and inbox_high_water() records how
/// deep mailboxes actually got.
class Channel {
 public:
  explicit Channel(int nodes, FaultPlan faults = {},
                   std::size_t mailbox_capacity = 0);

  void send(int from, int to, MessageKind kind,
            std::vector<std::uint8_t> payload);

  /// Pops the oldest message addressed to `node`; false when its inbox is
  /// empty.
  [[nodiscard]] bool receive(int node, Message& out);

  /// Blocks up to `timeout` for traffic addressed to `node` (without
  /// consuming it). False on timeout, close, or a fired `control`.
  [[nodiscard]] bool wait_for_traffic(int node, std::chrono::nanoseconds timeout,
                                      const support::ExecControl* control);

  /// True when every inbox is empty.
  [[nodiscard]] bool idle() const noexcept;

  /// True when `node`'s inbox is empty (the reliability layer's
  /// congestion signal: frames queued there are in flight, not lost).
  [[nodiscard]] bool inbox_empty(int node) const noexcept {
    return inboxes_[static_cast<std::size_t>(node)].empty();
  }
  [[nodiscard]] std::size_t inbox_size(int node) const noexcept {
    return inboxes_[static_cast<std::size_t>(node)].size();
  }
  [[nodiscard]] std::size_t inbox_high_water(int node) const noexcept {
    return inboxes_[static_cast<std::size_t>(node)].high_water();
  }
  [[nodiscard]] std::size_t mailbox_capacity() const noexcept {
    return inboxes_.empty() ? 0 : inboxes_[0].capacity();
  }

  /// Wakes every blocked receiver and drops subsequent sends — called
  /// once the async run has terminated so straggling protocol traffic
  /// cannot wedge an exiting worker.
  void close_all();

  [[nodiscard]] int nodes() const noexcept {
    return static_cast<int>(inboxes_.size());
  }

  /// Snapshot of the atomic traffic counters.
  [[nodiscard]] CommStats stats() const;

 private:
  /// Traffic counters as metrics::Counter value types — the same
  /// relaxed-increment primitive the process registry stores, embedded
  /// per channel (vectors are sized at construction and never resized;
  /// Counter, like std::atomic, cannot move).
  struct AtomicStats {
    explicit AtomicStats(std::size_t nodes)
        : sent_messages_per_node(nodes), sent_bytes_per_node(nodes) {}
    support::metrics::Counter messages;
    support::metrics::Counter bytes;
    support::metrics::Counter messages_by_kind[kMessageKindCount];
    support::metrics::Counter bytes_by_kind[kMessageKindCount];
    std::vector<support::metrics::Counter> sent_messages_per_node;
    std::vector<support::metrics::Counter> sent_bytes_per_node;
    support::metrics::Counter injected_drops;
    support::metrics::Counter injected_duplicates;
    support::metrics::Counter injected_reorders;
    support::metrics::Counter injected_corruptions;
  };

  std::deque<support::BoundedMpmcQueue<Message>> inboxes_;
  FaultPlan faults_;
  bool faults_active_ = false;
  std::mutex rng_mu_;  ///< guards rng_ (shared across sender threads)
  std::mt19937_64 rng_;
  AtomicStats stats_;
};

// ---------------------------------------------------------------------------
// Reliability layer: CRC32 frames + sequence numbers + retransmit/dedup.
// ---------------------------------------------------------------------------

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept;

/// Protocol-level counters of the reliability layer. Snapshot struct
/// (see CommStats).
struct ReliabilityStats {
  std::uint64_t data_frames_sent = 0;  ///< first transmissions only
  std::uint64_t retransmits = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t corrupt_frames_detected = 0;  ///< CRC mismatches discarded
  std::uint64_t duplicates_suppressed = 0;    ///< dedup hits (frame re-acked)
  /// Coalesced batch frames (one header + CRC + ack amortized over many
  /// payloads) and the payloads they carried.
  std::uint64_t batch_frames_sent = 0;
  std::uint64_t batch_payloads = 0;
};

/// Exactly-once delivery over a lossy, duplicating, reordering,
/// corrupting Channel. Frame layout:
///
///   data:  [u8 frame=0][u32 seq][payload...][u32 crc]
///   ack:   [u8 frame=1][u32 seq][u32 crc]
///   batch: [u8 frame=2][u32 seq][u32 count]{[u32 len][bytes]}*count[u32 crc]
///
/// with the CRC covering every preceding byte. Sequence numbers are per
/// directed (from → to) link and shared across data and batch frames.
/// The receiver CRC-checks each frame, discards corrupt ones (the
/// sender's retransmit timer recovers them), acks every intact data or
/// batch frame — including duplicates, whose payloads are then
/// suppressed by a per-link seen-set — and delivers the inner payloads
/// exactly once (a batch frame's payloads are staged and handed out one
/// receive() at a time). The sender keeps unacked frames and resends
/// them on a tick-driven timer with exponential backoff capped at
/// kRtoMaxTicks. Any fault probability < 1 converges; a retry cap guards
/// against livelock if a plan eats every copy.
///
/// Thread safety: every per-node structure (sequence rows, unacked
/// frames, dedup set, staged batch payloads) is guarded by that node's
/// mutex; a node's operations take only its own lock plus (inside
/// Channel) the destination inbox lock, so lock order is always
/// node → inbox and cross-node sends never deadlock.
class ReliableChannel {
 public:
  static constexpr std::uint32_t kRtoInitialTicks = 4;
  static constexpr std::uint32_t kRtoMaxTicks = 64;
  static constexpr std::uint32_t kMaxRetries = 4096;

  explicit ReliableChannel(int nodes, const FaultPlan& faults = {},
                           std::size_t mailbox_capacity = 0);

  void send(int from, int to, MessageKind kind,
            std::vector<std::uint8_t> payload);

  /// Coalesced flush: ships every payload in one batch frame — one
  /// header, one CRC, one sequence number, one ack for the lot. The
  /// receiver delivers them as individual kContinuation messages.
  void send_many(int from, int to, MessageKind kind,
                 std::vector<std::vector<std::uint8_t>>& payloads);

  /// Delivers the next new intact payload addressed to `node`, consuming
  /// (and acking / deduping / discarding) raw frames as needed. False
  /// when nothing deliverable is queued right now — more may appear
  /// after retransmits.
  [[nodiscard]] bool receive(int node, Message& out);

  /// Blocking receive for async workers: waits up to `timeout` for a
  /// deliverable payload. False on timeout, channel close, or a fired
  /// `control`.
  [[nodiscard]] bool receive_wait(int node, Message& out,
                                  std::chrono::nanoseconds timeout,
                                  const support::ExecControl* control);

  /// Resends `node`'s due unacked frames — but only those whose
  /// destination inbox AND own inbox are empty (queued frames are in
  /// flight, not lost; a pending ack may be queued back here). True if
  /// anything was resent.
  bool service_retransmits(int node);

  /// Advances the retransmit clock one round.
  void tick() noexcept { now_.fetch_add(1, std::memory_order_relaxed); }

  /// True when no raw frames are queued, no batch payloads are staged,
  /// and every data frame is acked.
  [[nodiscard]] bool idle() const noexcept;

  /// See Channel: the cooperative backpressure signal and close.
  [[nodiscard]] std::size_t inbox_size(int node) const noexcept {
    return channel_.inbox_size(node);
  }
  [[nodiscard]] std::size_t inbox_high_water(int node) const noexcept {
    return channel_.inbox_high_water(node);
  }
  [[nodiscard]] std::size_t mailbox_capacity() const noexcept {
    return channel_.mailbox_capacity();
  }
  void close_all() { channel_.close_all(); }

  [[nodiscard]] int nodes() const noexcept { return channel_.nodes(); }
  [[nodiscard]] CommStats transport_stats() const { return channel_.stats(); }
  [[nodiscard]] ReliabilityStats reliability_stats() const {
    ReliabilityStats s;
    s.data_frames_sent = rstats_.data_frames_sent.value();
    s.retransmits = rstats_.retransmits.value();
    s.acks_sent = rstats_.acks_sent.value();
    s.corrupt_frames_detected = rstats_.corrupt_frames_detected.value();
    s.duplicates_suppressed = rstats_.duplicates_suppressed.value();
    s.batch_frames_sent = rstats_.batch_frames_sent.value();
    s.batch_payloads = rstats_.batch_payloads.value();
    return s;
  }

 private:
  struct Unacked {
    int to = -1;
    std::uint32_t seq = 0;
    MessageKind kind = MessageKind::kContinuation;
    std::vector<std::uint8_t> frame;  ///< full framed bytes, ready to resend
    std::uint64_t due = 0;
    std::uint32_t rto = kRtoInitialTicks;
    std::uint32_t retries = 0;
  };

  /// Everything one node mutates concurrently, under one lock.
  struct NodeRt {
    mutable std::mutex mu;  ///< mutable: idle() is a const observer
    std::vector<Unacked> unacked;            ///< frames this node sent
    std::unordered_set<std::uint64_t> seen;  ///< (from<<32)|seq delivered here
    std::deque<Message> staged;  ///< unpacked batch payloads awaiting receive
  };

  /// Protocol counters on the same metrics::Counter primitive (see
  /// Channel::AtomicStats).
  struct AtomicReliabilityStats {
    support::metrics::Counter data_frames_sent;
    support::metrics::Counter retransmits;
    support::metrics::Counter acks_sent;
    support::metrics::Counter corrupt_frames_detected;
    support::metrics::Counter duplicates_suppressed;
    support::metrics::Counter batch_frames_sent;
    support::metrics::Counter batch_payloads;
  };

  void send_ack(int from, int to, std::uint32_t seq);
  /// Receive body with `node`'s lock already held.
  [[nodiscard]] bool receive_locked(int node, NodeRt& rt, Message& out);
  [[nodiscard]] std::size_t link(int from, int to) const noexcept {
    return static_cast<std::size_t>(from) *
               static_cast<std::size_t>(channel_.nodes()) +
           static_cast<std::size_t>(to);
  }

  Channel channel_;
  std::atomic<std::uint64_t> now_{0};
  std::vector<std::uint32_t> next_seq_;  ///< per directed link; row `from`
                                         ///< guarded by rt_[from].mu
  std::deque<NodeRt> rt_;                ///< per node (deque: mutex not movable)
  AtomicReliabilityStats rstats_;
};

// ---------------------------------------------------------------------------
// Wire codec: little-endian, length-prefixed vectors. Small on purpose —
// payload layouts live with the typed message structs below.
// ---------------------------------------------------------------------------

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void vertex_span(std::span<const VertexId> vs);
  void count_span(std::span<const Count> cs);

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader: an underrun (or an over-long length prefix)
/// latches `failed` and every subsequent read returns 0 — no read ever
/// touches bytes past the buffer. Callers check ok()/done() once at the
/// end instead of guarding every field.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data)
      : p_(data.data()), end_(data.data() + data.size()) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  void vertex_vec(std::vector<VertexId>& out);
  void count_vec(std::vector<Count>& out);

  /// No read ran past the buffer so far.
  [[nodiscard]] bool ok() const noexcept { return !failed_; }
  /// Fully and cleanly consumed: ok() and no trailing bytes.
  [[nodiscard]] bool done() const noexcept { return !failed_ && p_ == end_; }

 private:
  template <typename T>
  [[nodiscard]] T read_le() noexcept;

  const std::uint8_t* p_;
  const std::uint8_t* end_;
  bool failed_ = false;
};

// ---------------------------------------------------------------------------
// Typed payloads.
// ---------------------------------------------------------------------------

/// A shipped walk continuation (MessageKind::kContinuation). The receiver
/// re-derives restriction windows and branch masks from `mapped`, so only
/// identity (which trie node, which item), progress (which predecessors
/// are already folded into `partial`), and the actual candidate data
/// travel.
struct ContinuationMsg {
  enum class Target : std::uint8_t {
    kExtension = 0,  ///< building extension `item`'s candidate set
    kCountLeaf = 1,  ///< building counting leaf `item`'s intersection
    kIepChain = 2,   ///< building suffix set `item`; done_sets carries the
                     ///< node's already-completed suffix sets
  };
  static constexpr std::uint8_t kNoDepthLimit = 0xff;

  std::uint32_t trie_node = 0;
  Target target = Target::kExtension;
  std::uint16_t item = 0;
  /// Task-granularity cutoff still in force for the descent (see
  /// ClusterOptions::task_depth); kNoDepthLimit once past generation.
  std::uint8_t depth_limit = kNoDepthLimit;
  std::uint64_t mask = 0;  ///< active-plan bitmask at the trie node
  /// Bit i set = predecessor_depths[i] already folded into `partial`.
  std::uint8_t folded = 0;
  bool has_partial = false;
  std::vector<VertexId> mapped;   ///< schedule depths [0, trie depth)
  std::vector<VertexId> partial;  ///< in-flight candidate intersection
  std::vector<std::vector<VertexId>> done_sets;  ///< kIepChain only

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  /// Bounds- and range-checked decode; false on any malformed payload
  /// (never reads out of bounds, never throws).
  [[nodiscard]] static bool try_decode(std::span<const std::uint8_t> payload,
                                       ContinuationMsg& out);
  /// Throwing wrapper for contexts where a decode failure is a logic bug.
  [[nodiscard]] static ContinuationMsg decode(
      std::span<const std::uint8_t> payload);

  /// Candidate-set vertices this continuation carries (partial + completed
  /// suffix sets) — the "shipped candidates" half of the byte economy.
  [[nodiscard]] std::uint64_t shipped_set_vertices() const noexcept;
};

/// A node's end-of-run report (MessageKind::kPartialCounts): undivided
/// per-plan sums plus how many tasks it executed.
struct PartialCountsMsg {
  std::vector<Count> sums;
  std::uint64_t tasks = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static bool try_decode(std::span<const std::uint8_t> payload,
                                       PartialCountsMsg& out);
  [[nodiscard]] static PartialCountsMsg decode(
      std::span<const std::uint8_t> payload);
};

}  // namespace graphpi::dist
