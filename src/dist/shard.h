// Partitioned CSR shards for the distributed runtime (Section IV-E at
// production shape: no node holds the whole graph).
//
// A ShardedGraph splits the data graph's vertices across `nodes` logical
// owners (hash or degree-balanced range partitioning) and builds one
// Shard per node. A shard stores the full adjacency rows of
//
//   * its OWNED vertices, and
//   * its GHOST layer: every neighbor of an owned vertex (the 1-hop halo),
//     whose adjacency is replicated so a walk anchored at an owned vertex
//     can always take its first boundary-crossing step locally.
//
// Rows are kept in the GLOBAL vertex-id space (restriction windows and
// sorted-set intersections compare global ids, so shard-local results are
// bit-compatible with the shared-memory engines); the compact local id
// space — residents only — is exposed through local_id()/global_id() for
// per-resident bookkeeping. Adjacency of any vertex that is neither owned
// nor ghost is NOT stored: the sharded executor (dist/runtime.h) must
// ship the walk to that vertex's owner instead of reading it, and the
// `poison_nonresident` option fills exactly those rows with garbage so a
// test can prove it never cheats.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace graphpi::dist {

enum class PartitionStrategy {
  kHash,   ///< multiplicative hash of the vertex id, modulo nodes
  kRange,  ///< contiguous id ranges balanced by adjacency-slot count
};

[[nodiscard]] const char* to_string(PartitionStrategy strategy) noexcept;

/// Parses "hash" / "range" (CLI flag form). Returns false on anything else.
[[nodiscard]] bool parse_partition(std::string_view name,
                                   PartitionStrategy& out) noexcept;

struct ShardOptions {
  int nodes = 2;
  PartitionStrategy strategy = PartitionStrategy::kHash;
  /// Testing hook: fill the adjacency rows of non-resident vertices with
  /// a deliberately wrong list instead of leaving them empty, so any
  /// executor that reads outside its shard produces loudly wrong counts
  /// (the shard-isolation test's whole point).
  bool poison_nonresident = false;
};

/// One node's slice of the data graph: owned rows + the ghost halo.
class Shard {
 public:
  static constexpr std::uint32_t kNotResident = 0xffffffffu;

  [[nodiscard]] int node() const noexcept { return node_; }

  /// Global-id-space CSR holding rows only for residents (see csr_row_slice).
  /// Intersections and restriction windows on this view produce exactly
  /// the same sorted global-id sets as the full graph would.
  [[nodiscard]] const Graph& view() const noexcept { return view_; }

  /// True when this shard stores v's adjacency (owned or ghost).
  [[nodiscard]] bool is_resident(VertexId v) const noexcept {
    return local_of_[v] != kNotResident;
  }

  [[nodiscard]] bool owns(VertexId v) const noexcept {
    return is_resident(v) && owned_mask_[local_of_[v]];
  }

  /// Sorted global ids of the vertices this node owns (its root domain).
  [[nodiscard]] std::span<const VertexId> owned() const noexcept {
    return owned_;
  }

  [[nodiscard]] std::uint32_t owned_count() const noexcept {
    return static_cast<std::uint32_t>(owned_.size());
  }
  [[nodiscard]] std::uint32_t ghost_count() const noexcept {
    return static_cast<std::uint32_t>(residents_.size() - owned_.size());
  }
  [[nodiscard]] std::uint32_t resident_count() const noexcept {
    return static_cast<std::uint32_t>(residents_.size());
  }

  /// Directed adjacency slots this shard stores (owned + replicated ghost
  /// rows) — the memory-footprint side of the replication factor.
  [[nodiscard]] std::uint64_t resident_slots() const noexcept {
    return resident_slots_;
  }

  /// Compact local id of a resident vertex (kNotResident otherwise).
  [[nodiscard]] std::uint32_t local_id(VertexId global) const noexcept {
    return local_of_[global];
  }
  /// Inverse of local_id for local < resident_count().
  [[nodiscard]] VertexId global_id(std::uint32_t local) const noexcept {
    return residents_[local];
  }

  /// Checked adjacency access: the executor-facing funnel that asserts the
  /// row is actually resident before returning it.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const;

  /// Rebuilds a shard from its serialized parts (io/shard_snapshot.h):
  /// the resident-row view in global id space plus the sorted owned and
  /// resident id lists. Derives the local-id map, owned mask, and slot
  /// tally; GRAPHPI_CHECKs the lists are sorted, owned ⊆ residents, and
  /// non-residents have empty rows in `view`.
  [[nodiscard]] static Shard from_parts(int node, Graph view,
                                        std::vector<VertexId> owned,
                                        std::vector<VertexId> residents);

 private:
  friend class ShardedGraph;

  int node_ = 0;
  Graph view_;
  std::vector<VertexId> owned_;      ///< sorted global ids
  std::vector<VertexId> residents_;  ///< sorted global ids; index = local id
  std::vector<bool> owned_mask_;     ///< indexed by local id
  std::vector<std::uint32_t> local_of_;  ///< global -> local (kNotResident)
  std::uint64_t resident_slots_ = 0;
};

/// The partitioned graph: owner map + one Shard per node.
class ShardedGraph {
 public:
  struct Stats {
    std::vector<std::uint32_t> owned_per_node;
    std::vector<std::uint32_t> ghosts_per_node;
    /// Sum over shards of stored adjacency slots, divided by the parent
    /// graph's slots — 1.0 means no replication at all (nodes == 1).
    double replication_factor = 0.0;
  };

  /// Partitions `graph` (which must outlive the sharding). O(nodes * m).
  explicit ShardedGraph(const Graph& graph, const ShardOptions& options = {});

  /// Reassembles a sharding from per-node parts (the shard-snapshot
  /// loader's path: each node's shard was mmap-ed from its own file, so
  /// no parent Graph ever exists in memory). `owner[v]` must be a total
  /// ownership map consistent with the shards' owned sets; stats are
  /// recomputed. The result has_parent() == false.
  [[nodiscard]] static ShardedGraph from_parts(const ShardOptions& options,
                                               std::vector<int> owner,
                                               std::vector<Shard> shards);

  [[nodiscard]] int nodes() const noexcept {
    return static_cast<int>(shards_.size());
  }
  [[nodiscard]] int owner(VertexId v) const noexcept { return owner_[v]; }
  [[nodiscard]] const Shard& shard(int node) const {
    return shards_[static_cast<std::size_t>(node)];
  }

  /// Vertices in the (possibly never-materialized) whole graph.
  [[nodiscard]] VertexId vertex_count() const noexcept {
    return static_cast<VertexId>(owner_.size());
  }

  /// Whether a parent Graph is attached. Snapshot-reassembled shardings
  /// have none — every consumer that can should go through
  /// vertex_count()/shard() instead of parent().
  [[nodiscard]] bool has_parent() const noexcept { return parent_ != nullptr; }
  [[nodiscard]] const Graph& parent() const noexcept { return *parent_; }
  [[nodiscard]] const ShardOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Sum of owned() sizes across all shards — always the parent's vertex
  /// count (ownership is a partition). The async runtime seeds its
  /// termination counter with this: one in-flight unit per owned root.
  [[nodiscard]] std::uint64_t total_owned() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.owned().size();
    return total;
  }

  /// Builds every shard view's hub bitmap index (auto threshold) unless
  /// already built — call before sharing across threads, mirroring
  /// Graph::ensure_hub_index. After construction (plus this call, when
  /// hub indexes are wanted) a ShardedGraph is immutable, so concurrent
  /// reads from many worker threads are safe without locks.
  void ensure_hub_indexes() const;

 private:
  ShardedGraph() = default;  // from_parts fills the members directly

  const Graph* parent_ = nullptr;
  ShardOptions options_;
  std::vector<int> owner_;
  std::vector<Shard> shards_;
  Stats stats_;
};

/// The owner map alone: owner_of(v) for every vertex under `strategy`.
/// Exposed so tests and tools can inspect partitions without building
/// shard views.
[[nodiscard]] std::vector<int> partition_owners(const Graph& graph, int nodes,
                                                PartitionStrategy strategy);

}  // namespace graphpi::dist
