#include "dist/comm.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "core/pattern.h"
#include "support/check.h"

namespace graphpi::dist {

Channel::Channel(int nodes, FaultPlan faults)
    : faults_(faults), faults_active_(faults.active()), rng_(faults.seed) {
  GRAPHPI_CHECK_MSG(nodes >= 1, "channel needs at least one node");
  inboxes_.resize(static_cast<std::size_t>(nodes));
  stats_.sent_messages_per_node.assign(static_cast<std::size_t>(nodes), 0);
  stats_.sent_bytes_per_node.assign(static_cast<std::size_t>(nodes), 0);
}

void Channel::send(int from, int to, MessageKind kind,
                   std::vector<std::uint8_t> payload) {
  GRAPHPI_CHECK(from >= 0 && from < static_cast<int>(inboxes_.size()));
  GRAPHPI_CHECK(to >= 0 && to < static_cast<int>(inboxes_.size()));
  const auto k = static_cast<std::size_t>(kind);
  ++stats_.messages;
  ++stats_.messages_by_kind[k];
  stats_.bytes += payload.size();
  stats_.bytes_by_kind[k] += payload.size();
  ++stats_.sent_messages_per_node[static_cast<std::size_t>(from)];
  stats_.sent_bytes_per_node[static_cast<std::size_t>(from)] += payload.size();

  auto& inbox = inboxes_[static_cast<std::size_t>(to)];
  if (!faults_active_) {
    inbox.push_back(Message{kind, from, to, std::move(payload)});
    return;
  }

  // Fault rolls are drawn in a fixed order from the seeded engine, so a
  // given send sequence always misbehaves the same way.
  const FaultPlan::Rates& rates = faults_.kind[k];
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  if (coin(rng_) < rates.drop) {
    ++stats_.injected_drops;
    return;
  }
  Message msg{kind, from, to, std::move(payload)};
  if (!msg.payload.empty() && coin(rng_) < rates.corrupt) {
    ++stats_.injected_corruptions;
    std::uniform_int_distribution<std::size_t> pos(0, msg.payload.size() - 1);
    std::uniform_int_distribution<int> flips(1, 3);
    std::uniform_int_distribution<int> bits(1, 255);  // nonzero XOR: real flip
    const int n = flips(rng_);
    for (int i = 0; i < n; ++i)
      msg.payload[pos(rng_)] ^= static_cast<std::uint8_t>(bits(rng_));
  }
  const bool duplicate = coin(rng_) < rates.duplicate;
  const bool reorder = coin(rng_) < rates.reorder;
  if (duplicate) {
    ++stats_.injected_duplicates;
    inbox.push_back(msg);
  }
  if (reorder && !inbox.empty()) {
    ++stats_.injected_reorders;
    inbox.push_front(std::move(msg));
  } else {
    inbox.push_back(std::move(msg));
  }
}

bool Channel::receive(int node, Message& out) {
  auto& inbox = inboxes_[static_cast<std::size_t>(node)];
  if (inbox.empty()) return false;
  out = std::move(inbox.front());
  inbox.pop_front();
  return true;
}

bool Channel::idle() const noexcept {
  for (const auto& inbox : inboxes_)
    if (!inbox.empty()) return false;
  return true;
}

// --------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected 0xEDB88320).
// --------------------------------------------------------------------------

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// --------------------------------------------------------------------------
// ReliableChannel.
// --------------------------------------------------------------------------

namespace {

constexpr std::uint8_t kFrameData = 0;
constexpr std::uint8_t kFrameAck = 1;
constexpr std::size_t kFrameHeader = 1 + 4;  // type + seq
constexpr std::size_t kFrameTrailer = 4;     // crc

void append_u32_le(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t load_u32_le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

/// Returns true and the seq if the frame is intact (CRC over everything
/// before the trailer matches the trailer).
bool frame_intact(const std::vector<std::uint8_t>& frame, std::uint8_t& type,
                  std::uint32_t& seq) noexcept {
  if (frame.size() < kFrameHeader + kFrameTrailer) return false;
  const std::span<const std::uint8_t> body(frame.data(),
                                           frame.size() - kFrameTrailer);
  if (crc32(body) != load_u32_le(frame.data() + frame.size() - kFrameTrailer))
    return false;
  type = frame[0];
  seq = load_u32_le(frame.data() + 1);
  return type == kFrameData || type == kFrameAck;
}

}  // namespace

ReliableChannel::ReliableChannel(int nodes, const FaultPlan& faults)
    : channel_(nodes, faults),
      next_seq_(static_cast<std::size_t>(nodes) *
                    static_cast<std::size_t>(nodes),
                0),
      unacked_(static_cast<std::size_t>(nodes)),
      seen_(static_cast<std::size_t>(nodes)) {}

void ReliableChannel::send(int from, int to, MessageKind kind,
                           std::vector<std::uint8_t> payload) {
  const std::uint32_t seq = next_seq_[link(from, to)]++;
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeader + payload.size() + kFrameTrailer);
  frame.push_back(kFrameData);
  append_u32_le(frame, seq);
  frame.insert(frame.end(), payload.begin(), payload.end());
  append_u32_le(frame, crc32(frame));
  ++rstats_.data_frames_sent;
  unacked_[static_cast<std::size_t>(from)].push_back(Unacked{
      to, seq, kind, frame, now_ + kRtoInitialTicks, kRtoInitialTicks, 0});
  channel_.send(from, to, kind, std::move(frame));
}

void ReliableChannel::send_ack(int from, int to, std::uint32_t seq) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeader + kFrameTrailer);
  frame.push_back(kFrameAck);
  append_u32_le(frame, seq);
  append_u32_le(frame, crc32(frame));
  ++rstats_.acks_sent;
  // Fire-and-forget: a lost ack is recovered by the sender's retransmit,
  // which the dedup set turns into a fresh ack.
  channel_.send(from, to, MessageKind::kAck, std::move(frame));
}

bool ReliableChannel::receive(int node, Message& out) {
  Message raw;
  while (channel_.receive(node, raw)) {
    std::uint8_t type = 0;
    std::uint32_t seq = 0;
    if (!frame_intact(raw.payload, type, seq)) {
      ++rstats_.corrupt_frames_detected;  // sender's timer will resend
      continue;
    }
    if (type == kFrameAck) {
      auto& pending = unacked_[static_cast<std::size_t>(node)];
      for (auto it = pending.begin(); it != pending.end(); ++it) {
        if (it->to == raw.from && it->seq == seq) {
          pending.erase(it);
          break;
        }
      }
      continue;
    }
    // Intact data frame: ack it even if it is a duplicate (the original
    // ack may have been lost), then dedup before delivering.
    send_ack(node, raw.from, seq);
    const std::uint64_t key =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(raw.from))
            << 32 |
        seq;
    if (!seen_[static_cast<std::size_t>(node)].insert(key).second) {
      ++rstats_.duplicates_suppressed;
      continue;
    }
    out.kind = raw.kind;
    out.from = raw.from;
    out.to = node;
    out.payload.assign(
        raw.payload.begin() + static_cast<std::ptrdiff_t>(kFrameHeader),
        raw.payload.end() - static_cast<std::ptrdiff_t>(kFrameTrailer));
    return true;
  }
  return false;
}

bool ReliableChannel::service_retransmits(int node) {
  // Queue-aware RTO: a frame is only presumed lost once its due time has
  // passed AND neither endpoint has traffic in flight — the data frame
  // could still be queued at `to`, or its ack queued back here, when a
  // receiver drains more slowly than senders produce. (A real transport
  // gets the same effect from an adaptive RTO; in this in-process
  // simulation queue depth is the honest congestion signal, and it keeps
  // a fault-free channel retransmit-free no matter the backlog.)
  // Pending acks land in this node's own inbox, so while it is non-empty
  // every frame would be skipped below — skip the whole scan.
  if (!channel_.inbox_empty(node)) return false;
  bool resent = false;
  for (Unacked& u : unacked_[static_cast<std::size_t>(node)]) {
    if (u.due > now_) continue;
    if (!channel_.inbox_empty(u.to)) continue;
    ++u.retries;
    GRAPHPI_CHECK_MSG(u.retries < kMaxRetries,
                      "reliable channel livelocked: frame never acked");
    ++rstats_.retransmits;
    u.rto = std::min(u.rto * 2, kRtoMaxTicks);
    u.due = now_ + u.rto;
    channel_.send(node, u.to, u.kind, u.frame);
    resent = true;
  }
  return resent;
}

bool ReliableChannel::idle() const noexcept {
  if (!channel_.idle()) return false;
  for (const auto& pending : unacked_)
    if (!pending.empty()) return false;
  return true;
}

// --------------------------------------------------------------------------
// Wire codec.
// --------------------------------------------------------------------------

namespace {

template <typename T>
void append_le(std::vector<std::uint8_t>& buf, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i)
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

}  // namespace

void WireWriter::u16(std::uint16_t v) { append_le(buf_, v); }
void WireWriter::u32(std::uint32_t v) { append_le(buf_, v); }
void WireWriter::u64(std::uint64_t v) { append_le(buf_, v); }

void WireWriter::vertex_span(std::span<const VertexId> vs) {
  u32(static_cast<std::uint32_t>(vs.size()));
  for (VertexId v : vs) u32(v);
}

void WireWriter::count_span(std::span<const Count> cs) {
  u32(static_cast<std::uint32_t>(cs.size()));
  for (Count c : cs) u64(c);
}

template <typename T>
T WireReader::read_le() noexcept {
  if (failed_ || static_cast<std::size_t>(end_ - p_) < sizeof(T)) {
    failed_ = true;
    return T{};
  }
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i)
    v |= static_cast<T>(static_cast<T>(p_[i]) << (8 * i));
  p_ += sizeof(T);
  return v;
}

std::uint8_t WireReader::u8() { return read_le<std::uint8_t>(); }
std::uint16_t WireReader::u16() { return read_le<std::uint16_t>(); }
std::uint32_t WireReader::u32() { return read_le<std::uint32_t>(); }
std::uint64_t WireReader::u64() { return read_le<std::uint64_t>(); }

void WireReader::vertex_vec(std::vector<VertexId>& out) {
  const std::uint32_t n = u32();
  out.clear();
  // Validate the length prefix against the bytes actually remaining
  // BEFORE reserving — a corrupt prefix must not drive allocation.
  if (failed_ ||
      static_cast<std::size_t>(end_ - p_) < static_cast<std::size_t>(n) * 4) {
    failed_ = true;
    return;
  }
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(u32());
}

void WireReader::count_vec(std::vector<Count>& out) {
  const std::uint32_t n = u32();
  out.clear();
  if (failed_ ||
      static_cast<std::size_t>(end_ - p_) < static_cast<std::size_t>(n) * 8) {
    failed_ = true;
    return;
  }
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(u64());
}

// --------------------------------------------------------------------------
// Typed payloads.
// --------------------------------------------------------------------------

std::vector<std::uint8_t> ContinuationMsg::encode() const {
  WireWriter w;
  w.u32(trie_node);
  w.u8(static_cast<std::uint8_t>(target));
  w.u16(item);
  w.u8(depth_limit);
  w.u64(mask);
  w.u8(folded);
  w.u8(has_partial ? 1 : 0);
  w.vertex_span(mapped);
  w.vertex_span(has_partial ? std::span<const VertexId>{partial}
                            : std::span<const VertexId>{});
  w.u16(static_cast<std::uint16_t>(done_sets.size()));
  for (const auto& set : done_sets) w.vertex_span(set);
  return w.take();
}

bool ContinuationMsg::try_decode(std::span<const std::uint8_t> payload,
                                 ContinuationMsg& out) {
  WireReader r(payload);
  ContinuationMsg m;
  m.trie_node = r.u32();
  const std::uint8_t target_raw = r.u8();
  m.item = r.u16();
  m.depth_limit = r.u8();
  m.mask = r.u64();
  m.folded = r.u8();
  m.has_partial = r.u8() != 0;
  r.vertex_vec(m.mapped);
  r.vertex_vec(m.partial);
  const std::uint16_t sets = r.u16();
  if (!r.ok()) return false;
  m.done_sets.resize(sets);
  for (auto& set : m.done_sets) r.vertex_vec(set);
  if (!r.done()) return false;
  // Range checks beyond raw bounds: enum and structural invariants the
  // executor would otherwise trip over.
  if (target_raw > static_cast<std::uint8_t>(Target::kIepChain)) return false;
  if (m.mapped.size() > Pattern::kMaxVertices) return false;
  m.target = static_cast<Target>(target_raw);
  out = std::move(m);
  return true;
}

ContinuationMsg ContinuationMsg::decode(std::span<const std::uint8_t> payload) {
  ContinuationMsg m;
  GRAPHPI_CHECK_MSG(try_decode(payload, m), "malformed continuation payload");
  return m;
}

std::uint64_t ContinuationMsg::shipped_set_vertices() const noexcept {
  std::uint64_t total = has_partial ? partial.size() : 0;
  for (const auto& set : done_sets) total += set.size();
  return total;
}

std::vector<std::uint8_t> PartialCountsMsg::encode() const {
  WireWriter w;
  w.count_span(sums);
  w.u64(tasks);
  return w.take();
}

bool PartialCountsMsg::try_decode(std::span<const std::uint8_t> payload,
                                  PartialCountsMsg& out) {
  WireReader r(payload);
  PartialCountsMsg m;
  r.count_vec(m.sums);
  m.tasks = r.u64();
  if (!r.done()) return false;
  out = std::move(m);
  return true;
}

PartialCountsMsg PartialCountsMsg::decode(
    std::span<const std::uint8_t> payload) {
  PartialCountsMsg m;
  GRAPHPI_CHECK_MSG(try_decode(payload, m), "malformed partial-counts payload");
  return m;
}

}  // namespace graphpi::dist
