#include "dist/comm.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "core/pattern.h"
#include "support/check.h"

namespace graphpi::dist {

Channel::Channel(int nodes, FaultPlan faults, std::size_t mailbox_capacity)
    : faults_(faults),
      faults_active_(faults.active()),
      rng_(faults.seed),
      stats_(static_cast<std::size_t>(nodes)) {
  GRAPHPI_CHECK_MSG(nodes >= 1, "channel needs at least one node");
  for (int n = 0; n < nodes; ++n) inboxes_.emplace_back(mailbox_capacity);
}

void Channel::send(int from, int to, MessageKind kind,
                   std::vector<std::uint8_t> payload) {
  GRAPHPI_CHECK(from >= 0 && from < static_cast<int>(inboxes_.size()));
  GRAPHPI_CHECK(to >= 0 && to < static_cast<int>(inboxes_.size()));
  const auto k = static_cast<std::size_t>(kind);
  stats_.messages.inc();
  stats_.messages_by_kind[k].inc();
  stats_.bytes.inc(payload.size());
  stats_.bytes_by_kind[k].inc(payload.size());
  stats_.sent_messages_per_node[static_cast<std::size_t>(from)].inc();
  stats_.sent_bytes_per_node[static_cast<std::size_t>(from)].inc(
      payload.size());

  auto& inbox = inboxes_[static_cast<std::size_t>(to)];
  if (!faults_active_) {
    inbox.force_push(Message{kind, from, to, std::move(payload)});
    return;
  }

  // Fault rolls are drawn in a fixed order from the seeded engine, so a
  // given send sequence always misbehaves the same way (exactly
  // reproducible in lockstep mode, where one thread does all sending).
  Message msg{kind, from, to, std::move(payload)};
  bool duplicate = false;
  bool reorder = false;
  {
    std::lock_guard<std::mutex> rng_lock(rng_mu_);
    const FaultPlan::Rates& rates = faults_.kind[k];
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    if (coin(rng_) < rates.drop) {
      stats_.injected_drops.inc();
      return;
    }
    if (!msg.payload.empty() && coin(rng_) < rates.corrupt) {
      stats_.injected_corruptions.inc();
      std::uniform_int_distribution<std::size_t> pos(0, msg.payload.size() - 1);
      std::uniform_int_distribution<int> flips(1, 3);
      std::uniform_int_distribution<int> bits(1, 255);  // nonzero XOR: real flip
      const int n = flips(rng_);
      for (int i = 0; i < n; ++i)
        msg.payload[pos(rng_)] ^= static_cast<std::uint8_t>(bits(rng_));
    }
    duplicate = coin(rng_) < rates.duplicate;
    reorder = coin(rng_) < rates.reorder;
  }
  if (duplicate) {
    stats_.injected_duplicates.inc();
    inbox.force_push(Message{msg});
  }
  if (reorder && !inbox.empty()) {
    stats_.injected_reorders.inc();
    inbox.force_push_front(std::move(msg));
  } else {
    inbox.force_push(std::move(msg));
  }
}

bool Channel::receive(int node, Message& out) {
  return inboxes_[static_cast<std::size_t>(node)].try_pop(out);
}

bool Channel::wait_for_traffic(int node, std::chrono::nanoseconds timeout,
                               const support::ExecControl* control) {
  return inboxes_[static_cast<std::size_t>(node)].wait_nonempty(timeout,
                                                                control);
}

bool Channel::idle() const noexcept {
  for (const auto& inbox : inboxes_)
    if (!inbox.empty()) return false;
  return true;
}

void Channel::close_all() {
  for (auto& inbox : inboxes_) inbox.close();
}

CommStats Channel::stats() const {
  CommStats out;
  out.messages = stats_.messages.value();
  out.bytes = stats_.bytes.value();
  for (std::size_t k = 0; k < kMessageKindCount; ++k) {
    out.messages_by_kind[k] = stats_.messages_by_kind[k].value();
    out.bytes_by_kind[k] = stats_.bytes_by_kind[k].value();
  }
  out.sent_messages_per_node.reserve(stats_.sent_messages_per_node.size());
  out.sent_bytes_per_node.reserve(stats_.sent_bytes_per_node.size());
  for (const auto& c : stats_.sent_messages_per_node)
    out.sent_messages_per_node.push_back(c.value());
  for (const auto& c : stats_.sent_bytes_per_node)
    out.sent_bytes_per_node.push_back(c.value());
  out.injected_drops = stats_.injected_drops.value();
  out.injected_duplicates = stats_.injected_duplicates.value();
  out.injected_reorders = stats_.injected_reorders.value();
  out.injected_corruptions = stats_.injected_corruptions.value();
  return out;
}

// --------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected 0xEDB88320).
// --------------------------------------------------------------------------

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// --------------------------------------------------------------------------
// ReliableChannel.
// --------------------------------------------------------------------------

namespace {

constexpr std::uint8_t kFrameData = 0;
constexpr std::uint8_t kFrameAck = 1;
constexpr std::uint8_t kFrameBatch = 2;
constexpr std::size_t kFrameHeader = 1 + 4;  // type + seq
constexpr std::size_t kFrameTrailer = 4;     // crc

void append_u32_le(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t load_u32_le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

/// Returns true and the seq if the frame is intact (CRC over everything
/// before the trailer matches the trailer).
bool frame_intact(const std::vector<std::uint8_t>& frame, std::uint8_t& type,
                  std::uint32_t& seq) noexcept {
  if (frame.size() < kFrameHeader + kFrameTrailer) return false;
  const std::span<const std::uint8_t> body(frame.data(),
                                           frame.size() - kFrameTrailer);
  if (crc32(body) != load_u32_le(frame.data() + frame.size() - kFrameTrailer))
    return false;
  type = frame[0];
  seq = load_u32_le(frame.data() + 1);
  return type == kFrameData || type == kFrameAck || type == kFrameBatch;
}

/// Splits an intact batch frame's body into its payloads. False on a
/// malformed container (CRC-passing corruption is ~2^-32; treated like a
/// corrupt frame — unacked, so the retransmit timer redelivers).
bool unpack_batch(const std::vector<std::uint8_t>& frame,
                  std::vector<std::vector<std::uint8_t>>& out) {
  const std::uint8_t* p = frame.data() + kFrameHeader;
  const std::uint8_t* end = frame.data() + frame.size() - kFrameTrailer;
  if (end - p < 4) return false;
  const std::uint32_t count = load_u32_le(p);
  p += 4;
  out.clear();
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (end - p < 4) return false;
    const std::uint32_t len = load_u32_le(p);
    p += 4;
    if (static_cast<std::size_t>(end - p) < len) return false;
    out.emplace_back(p, p + len);
    p += len;
  }
  return p == end;
}

}  // namespace

ReliableChannel::ReliableChannel(int nodes, const FaultPlan& faults,
                                 std::size_t mailbox_capacity)
    : channel_(nodes, faults, mailbox_capacity),
      next_seq_(static_cast<std::size_t>(nodes) *
                    static_cast<std::size_t>(nodes),
                0),
      rt_(static_cast<std::size_t>(nodes)) {}

void ReliableChannel::send(int from, int to, MessageKind kind,
                           std::vector<std::uint8_t> payload) {
  NodeRt& rt = rt_[static_cast<std::size_t>(from)];
  std::lock_guard<std::mutex> lock(rt.mu);
  const std::uint32_t seq = next_seq_[link(from, to)]++;
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeader + payload.size() + kFrameTrailer);
  frame.push_back(kFrameData);
  append_u32_le(frame, seq);
  frame.insert(frame.end(), payload.begin(), payload.end());
  append_u32_le(frame, crc32(frame));
  rstats_.data_frames_sent.inc();
  const std::uint64_t now = now_.load(std::memory_order_relaxed);
  rt.unacked.push_back(Unacked{to, seq, kind, frame, now + kRtoInitialTicks,
                               kRtoInitialTicks, 0});
  channel_.send(from, to, kind, std::move(frame));
}

void ReliableChannel::send_many(int from, int to, MessageKind kind,
                                std::vector<std::vector<std::uint8_t>>& payloads) {
  if (payloads.empty()) return;
  if (payloads.size() == 1) {
    // A batch of one gains nothing from the container: ship it as a plain
    // data frame (4 header bytes cheaper, same ack economy).
    send(from, to, kind, std::move(payloads.front()));
    payloads.clear();
    return;
  }
  NodeRt& rt = rt_[static_cast<std::size_t>(from)];
  std::lock_guard<std::mutex> lock(rt.mu);
  const std::uint32_t seq = next_seq_[link(from, to)]++;
  std::size_t total = kFrameHeader + 4 + kFrameTrailer;
  for (const auto& p : payloads) total += 4 + p.size();
  std::vector<std::uint8_t> frame;
  frame.reserve(total);
  frame.push_back(kFrameBatch);
  append_u32_le(frame, seq);
  append_u32_le(frame, static_cast<std::uint32_t>(payloads.size()));
  for (const auto& p : payloads) {
    append_u32_le(frame, static_cast<std::uint32_t>(p.size()));
    frame.insert(frame.end(), p.begin(), p.end());
  }
  append_u32_le(frame, crc32(frame));
  const auto relaxed = std::memory_order_relaxed;
  rstats_.data_frames_sent.inc();
  rstats_.batch_frames_sent.inc();
  rstats_.batch_payloads.inc(payloads.size());
  const std::uint64_t now = now_.load(relaxed);
  rt.unacked.push_back(Unacked{to, seq, kind, frame, now + kRtoInitialTicks,
                               kRtoInitialTicks, 0});
  channel_.send(from, to, kind, std::move(frame));
  payloads.clear();
}

void ReliableChannel::send_ack(int from, int to, std::uint32_t seq) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeader + kFrameTrailer);
  frame.push_back(kFrameAck);
  append_u32_le(frame, seq);
  append_u32_le(frame, crc32(frame));
  rstats_.acks_sent.inc();
  // Fire-and-forget: a lost ack is recovered by the sender's retransmit,
  // which the dedup set turns into a fresh ack.
  channel_.send(from, to, MessageKind::kAck, std::move(frame));
}

bool ReliableChannel::receive(int node, Message& out) {
  NodeRt& rt = rt_[static_cast<std::size_t>(node)];
  std::lock_guard<std::mutex> lock(rt.mu);
  return receive_locked(node, rt, out);
}

bool ReliableChannel::receive_locked(int node, NodeRt& rt, Message& out) {
  if (!rt.staged.empty()) {
    out = std::move(rt.staged.front());
    rt.staged.pop_front();
    return true;
  }
  const auto relaxed = std::memory_order_relaxed;
  Message raw;
  while (channel_.receive(node, raw)) {
    std::uint8_t type = 0;
    std::uint32_t seq = 0;
    if (!frame_intact(raw.payload, type, seq)) {
      rstats_.corrupt_frames_detected.inc();
      continue;  // sender's timer will resend
    }
    if (type == kFrameAck) {
      for (auto it = rt.unacked.begin(); it != rt.unacked.end(); ++it) {
        if (it->to == raw.from && it->seq == seq) {
          rt.unacked.erase(it);
          break;
        }
      }
      continue;
    }
    const std::uint64_t key =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(raw.from))
            << 32 |
        seq;
    if (type == kFrameBatch) {
      std::vector<std::vector<std::uint8_t>> payloads;
      if (!unpack_batch(raw.payload, payloads)) {
        // Malformed container despite an intact CRC: treat as corrupt and
        // do NOT ack, so the sender redelivers the whole batch.
        rstats_.corrupt_frames_detected.inc();
        continue;
      }
      send_ack(node, raw.from, seq);
      if (!rt.seen.insert(key).second) {
        rstats_.duplicates_suppressed.inc();
        continue;
      }
      for (auto& p : payloads)
        rt.staged.push_back(Message{raw.kind, raw.from, node, std::move(p)});
      out = std::move(rt.staged.front());
      rt.staged.pop_front();
      return true;
    }
    // Intact data frame: ack it even if it is a duplicate (the original
    // ack may have been lost), then dedup before delivering.
    send_ack(node, raw.from, seq);
    if (!rt.seen.insert(key).second) {
      rstats_.duplicates_suppressed.inc();
      continue;
    }
    out.kind = raw.kind;
    out.from = raw.from;
    out.to = node;
    out.payload.assign(
        raw.payload.begin() + static_cast<std::ptrdiff_t>(kFrameHeader),
        raw.payload.end() - static_cast<std::ptrdiff_t>(kFrameTrailer));
    return true;
  }
  return false;
}

bool ReliableChannel::receive_wait(int node, Message& out,
                                   std::chrono::nanoseconds timeout,
                                   const support::ExecControl* control) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (receive(node, out)) return true;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    if (!channel_.wait_for_traffic(node, deadline - now, control))
      return false;
  }
}

bool ReliableChannel::service_retransmits(int node) {
  // Queue-aware RTO: a frame is only presumed lost once its due time has
  // passed AND neither endpoint has traffic in flight — the data frame
  // could still be queued at `to`, or its ack queued back here, when a
  // receiver drains more slowly than senders produce. (A real transport
  // gets the same effect from an adaptive RTO; in this in-process
  // simulation queue depth is the honest congestion signal, and it keeps
  // a fault-free channel retransmit-free no matter the backlog.)
  // Pending acks land in this node's own inbox, so while it is non-empty
  // every frame would be skipped below — skip the whole scan. The inbox
  // reads are racy in async mode, which is benign: a stale "non-empty"
  // delays the resend one idle loop, a stale "empty" resends a frame the
  // receiver dedups.
  if (!channel_.inbox_empty(node)) return false;
  NodeRt& rt = rt_[static_cast<std::size_t>(node)];
  std::lock_guard<std::mutex> lock(rt.mu);
  const std::uint64_t now = now_.load(std::memory_order_relaxed);
  bool resent = false;
  for (Unacked& u : rt.unacked) {
    if (u.due > now) continue;
    if (!channel_.inbox_empty(u.to)) continue;
    ++u.retries;
    GRAPHPI_CHECK_MSG(u.retries < kMaxRetries,
                      "reliable channel livelocked: frame never acked");
    rstats_.retransmits.inc();
    u.rto = std::min(u.rto * 2, kRtoMaxTicks);
    u.due = now + u.rto;
    channel_.send(node, u.to, u.kind, u.frame);
    resent = true;
  }
  return resent;
}

bool ReliableChannel::idle() const noexcept {
  if (!channel_.idle()) return false;
  for (const NodeRt& rt : rt_) {
    std::lock_guard<std::mutex> lock(rt.mu);
    if (!rt.unacked.empty() || !rt.staged.empty()) return false;
  }
  return true;
}

// --------------------------------------------------------------------------
// Wire codec.
// --------------------------------------------------------------------------

namespace {

template <typename T>
void append_le(std::vector<std::uint8_t>& buf, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i)
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

}  // namespace

void WireWriter::u16(std::uint16_t v) { append_le(buf_, v); }
void WireWriter::u32(std::uint32_t v) { append_le(buf_, v); }
void WireWriter::u64(std::uint64_t v) { append_le(buf_, v); }

void WireWriter::vertex_span(std::span<const VertexId> vs) {
  u32(static_cast<std::uint32_t>(vs.size()));
  for (VertexId v : vs) u32(v);
}

void WireWriter::count_span(std::span<const Count> cs) {
  u32(static_cast<std::uint32_t>(cs.size()));
  for (Count c : cs) u64(c);
}

template <typename T>
T WireReader::read_le() noexcept {
  if (failed_ || static_cast<std::size_t>(end_ - p_) < sizeof(T)) {
    failed_ = true;
    return T{};
  }
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i)
    v |= static_cast<T>(static_cast<T>(p_[i]) << (8 * i));
  p_ += sizeof(T);
  return v;
}

std::uint8_t WireReader::u8() { return read_le<std::uint8_t>(); }
std::uint16_t WireReader::u16() { return read_le<std::uint16_t>(); }
std::uint32_t WireReader::u32() { return read_le<std::uint32_t>(); }
std::uint64_t WireReader::u64() { return read_le<std::uint64_t>(); }

void WireReader::vertex_vec(std::vector<VertexId>& out) {
  const std::uint32_t n = u32();
  out.clear();
  // Validate the length prefix against the bytes actually remaining
  // BEFORE reserving — a corrupt prefix must not drive allocation.
  if (failed_ ||
      static_cast<std::size_t>(end_ - p_) < static_cast<std::size_t>(n) * 4) {
    failed_ = true;
    return;
  }
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(u32());
}

void WireReader::count_vec(std::vector<Count>& out) {
  const std::uint32_t n = u32();
  out.clear();
  if (failed_ ||
      static_cast<std::size_t>(end_ - p_) < static_cast<std::size_t>(n) * 8) {
    failed_ = true;
    return;
  }
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(u64());
}

// --------------------------------------------------------------------------
// Typed payloads.
// --------------------------------------------------------------------------

std::vector<std::uint8_t> ContinuationMsg::encode() const {
  WireWriter w;
  w.u32(trie_node);
  w.u8(static_cast<std::uint8_t>(target));
  w.u16(item);
  w.u8(depth_limit);
  w.u64(mask);
  w.u8(folded);
  w.u8(has_partial ? 1 : 0);
  w.vertex_span(mapped);
  w.vertex_span(has_partial ? std::span<const VertexId>{partial}
                            : std::span<const VertexId>{});
  w.u16(static_cast<std::uint16_t>(done_sets.size()));
  for (const auto& set : done_sets) w.vertex_span(set);
  return w.take();
}

bool ContinuationMsg::try_decode(std::span<const std::uint8_t> payload,
                                 ContinuationMsg& out) {
  WireReader r(payload);
  ContinuationMsg m;
  m.trie_node = r.u32();
  const std::uint8_t target_raw = r.u8();
  m.item = r.u16();
  m.depth_limit = r.u8();
  m.mask = r.u64();
  m.folded = r.u8();
  m.has_partial = r.u8() != 0;
  r.vertex_vec(m.mapped);
  r.vertex_vec(m.partial);
  const std::uint16_t sets = r.u16();
  if (!r.ok()) return false;
  m.done_sets.resize(sets);
  for (auto& set : m.done_sets) r.vertex_vec(set);
  if (!r.done()) return false;
  // Range checks beyond raw bounds: enum and structural invariants the
  // executor would otherwise trip over.
  if (target_raw > static_cast<std::uint8_t>(Target::kIepChain)) return false;
  if (m.mapped.size() > Pattern::kMaxVertices) return false;
  m.target = static_cast<Target>(target_raw);
  out = std::move(m);
  return true;
}

ContinuationMsg ContinuationMsg::decode(std::span<const std::uint8_t> payload) {
  ContinuationMsg m;
  GRAPHPI_CHECK_MSG(try_decode(payload, m), "malformed continuation payload");
  return m;
}

std::uint64_t ContinuationMsg::shipped_set_vertices() const noexcept {
  std::uint64_t total = has_partial ? partial.size() : 0;
  for (const auto& set : done_sets) total += set.size();
  return total;
}

std::vector<std::uint8_t> PartialCountsMsg::encode() const {
  WireWriter w;
  w.count_span(sums);
  w.u64(tasks);
  return w.take();
}

bool PartialCountsMsg::try_decode(std::span<const std::uint8_t> payload,
                                  PartialCountsMsg& out) {
  WireReader r(payload);
  PartialCountsMsg m;
  r.count_vec(m.sums);
  m.tasks = r.u64();
  if (!r.done()) return false;
  out = std::move(m);
  return true;
}

PartialCountsMsg PartialCountsMsg::decode(
    std::span<const std::uint8_t> payload) {
  PartialCountsMsg m;
  GRAPHPI_CHECK_MSG(try_decode(payload, m), "malformed partial-counts payload");
  return m;
}

}  // namespace graphpi::dist
