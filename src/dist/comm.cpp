#include "dist/comm.h"

#include <cstring>

#include "support/check.h"

namespace graphpi::dist {

Channel::Channel(int nodes) {
  GRAPHPI_CHECK_MSG(nodes >= 1, "channel needs at least one node");
  inboxes_.resize(static_cast<std::size_t>(nodes));
  stats_.sent_messages_per_node.assign(static_cast<std::size_t>(nodes), 0);
  stats_.sent_bytes_per_node.assign(static_cast<std::size_t>(nodes), 0);
}

void Channel::send(int from, int to, MessageKind kind,
                   std::vector<std::uint8_t> payload) {
  GRAPHPI_CHECK(from >= 0 && from < static_cast<int>(inboxes_.size()));
  GRAPHPI_CHECK(to >= 0 && to < static_cast<int>(inboxes_.size()));
  const auto k = static_cast<std::size_t>(kind);
  ++stats_.messages;
  ++stats_.messages_by_kind[k];
  stats_.bytes += payload.size();
  stats_.bytes_by_kind[k] += payload.size();
  ++stats_.sent_messages_per_node[static_cast<std::size_t>(from)];
  stats_.sent_bytes_per_node[static_cast<std::size_t>(from)] += payload.size();
  inboxes_[static_cast<std::size_t>(to)].push_back(
      Message{kind, from, to, std::move(payload)});
  ++in_flight_;
}

bool Channel::receive(int node, Message& out) {
  auto& inbox = inboxes_[static_cast<std::size_t>(node)];
  if (inbox.empty()) return false;
  out = std::move(inbox.front());
  inbox.pop_front();
  --in_flight_;
  return true;
}

// --------------------------------------------------------------------------
// Wire codec.
// --------------------------------------------------------------------------

namespace {

template <typename T>
void append_le(std::vector<std::uint8_t>& buf, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i)
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

}  // namespace

void WireWriter::u16(std::uint16_t v) { append_le(buf_, v); }
void WireWriter::u32(std::uint32_t v) { append_le(buf_, v); }
void WireWriter::u64(std::uint64_t v) { append_le(buf_, v); }

void WireWriter::vertex_span(std::span<const VertexId> vs) {
  u32(static_cast<std::uint32_t>(vs.size()));
  for (VertexId v : vs) u32(v);
}

void WireWriter::count_span(std::span<const Count> cs) {
  u32(static_cast<std::uint32_t>(cs.size()));
  for (Count c : cs) u64(c);
}

namespace {

template <typename T>
T read_le(const std::uint8_t*& p, const std::uint8_t* end) {
  GRAPHPI_CHECK_MSG(static_cast<std::size_t>(end - p) >= sizeof(T),
                    "wire payload truncated");
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i)
    v |= static_cast<T>(static_cast<T>(p[i]) << (8 * i));
  p += sizeof(T);
  return v;
}

}  // namespace

std::uint8_t WireReader::u8() { return read_le<std::uint8_t>(p_, end_); }
std::uint16_t WireReader::u16() { return read_le<std::uint16_t>(p_, end_); }
std::uint32_t WireReader::u32() { return read_le<std::uint32_t>(p_, end_); }
std::uint64_t WireReader::u64() { return read_le<std::uint64_t>(p_, end_); }

void WireReader::vertex_vec(std::vector<VertexId>& out) {
  const std::uint32_t n = u32();
  out.clear();
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(u32());
}

void WireReader::count_vec(std::vector<Count>& out) {
  const std::uint32_t n = u32();
  out.clear();
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(u64());
}

// --------------------------------------------------------------------------
// Typed payloads.
// --------------------------------------------------------------------------

std::vector<std::uint8_t> ContinuationMsg::encode() const {
  WireWriter w;
  w.u32(trie_node);
  w.u8(static_cast<std::uint8_t>(target));
  w.u16(item);
  w.u8(depth_limit);
  w.u64(mask);
  w.u8(folded);
  w.u8(has_partial ? 1 : 0);
  w.vertex_span(mapped);
  w.vertex_span(has_partial ? std::span<const VertexId>{partial}
                            : std::span<const VertexId>{});
  w.u16(static_cast<std::uint16_t>(done_sets.size()));
  for (const auto& set : done_sets) w.vertex_span(set);
  return w.take();
}

ContinuationMsg ContinuationMsg::decode(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  ContinuationMsg m;
  m.trie_node = r.u32();
  m.target = static_cast<Target>(r.u8());
  m.item = r.u16();
  m.depth_limit = r.u8();
  m.mask = r.u64();
  m.folded = r.u8();
  m.has_partial = r.u8() != 0;
  r.vertex_vec(m.mapped);
  r.vertex_vec(m.partial);
  const std::uint16_t sets = r.u16();
  m.done_sets.resize(sets);
  for (auto& set : m.done_sets) r.vertex_vec(set);
  GRAPHPI_CHECK_MSG(r.done(), "continuation payload has trailing bytes");
  return m;
}

std::uint64_t ContinuationMsg::shipped_set_vertices() const noexcept {
  std::uint64_t total = has_partial ? partial.size() : 0;
  for (const auto& set : done_sets) total += set.size();
  return total;
}

std::vector<std::uint8_t> PartialCountsMsg::encode() const {
  WireWriter w;
  w.count_span(sums);
  w.u64(tasks);
  return w.take();
}

PartialCountsMsg PartialCountsMsg::decode(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  PartialCountsMsg m;
  r.count_vec(m.sums);
  m.tasks = r.u64();
  GRAPHPI_CHECK_MSG(r.done(), "partial-counts payload has trailing bytes");
  return m;
}

}  // namespace graphpi::dist
