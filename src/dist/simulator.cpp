#include "dist/simulator.h"

#include <algorithm>
#include <deque>

namespace graphpi::dist {

SimResult simulate_cluster(const std::vector<double>& task_costs, int nodes) {
  SimResult result;
  for (double c : task_costs) result.serial_seconds += c;
  if (nodes <= 1 || task_costs.empty()) {
    result.makespan_seconds = result.serial_seconds;
    return result;
  }

  const auto n = static_cast<std::size_t>(nodes);
  std::vector<std::deque<std::size_t>> queues(n);
  for (std::size_t t = 0; t < task_costs.size(); ++t)
    queues[t % n].push_back(t);

  // Event-driven: repeatedly advance the node that would finish its next
  // task earliest; an idle node steals half of the longest queue.
  std::vector<double> clock(n, 0.0);
  std::size_t remaining = task_costs.size();
  while (remaining > 0) {
    // Pick the node with work whose clock is smallest.
    std::size_t node = n;
    for (std::size_t i = 0; i < n; ++i)
      if (!queues[i].empty() && (node == n || clock[i] < clock[node]))
        node = i;
    if (node == n) break;  // unreachable: remaining > 0 implies work exists

    const std::size_t t = queues[node].front();
    queues[node].pop_front();
    clock[node] += task_costs[t];
    --remaining;

    if (queues[node].empty() && remaining > 0) {
      std::size_t victim = n;
      std::size_t best = 0;
      for (std::size_t i = 0; i < n; ++i)
        if (queues[i].size() > best) {
          best = queues[i].size();
          victim = i;
        }
      if (victim != n && best > 1) {
        ++result.steals;
        // The steal happens when the idle node's clock catches up with
        // "now"; the victim keeps the front half it is already working on.
        clock[node] = std::max(clock[node], clock[victim]);
        const std::size_t grab = best / 2;
        for (std::size_t i = 0; i < grab; ++i) {
          queues[node].push_back(queues[victim].back());
          queues[victim].pop_back();
        }
      }
    }
  }
  result.makespan_seconds = *std::max_element(clock.begin(), clock.end());
  return result;
}

ShardSimResult simulate_sharded_cluster(
    const std::vector<double>& busy_seconds_per_node,
    const std::vector<std::uint64_t>& sent_messages_per_node,
    const std::vector<std::uint64_t>& sent_bytes_per_node,
    const CommCostModel& model) {
  ShardSimResult result;
  const std::size_t nodes = busy_seconds_per_node.size();
  for (std::size_t n = 0; n < nodes; ++n) {
    const double busy = busy_seconds_per_node[n];
    result.serial_seconds += busy;
    const double msgs =
        n < sent_messages_per_node.size()
            ? static_cast<double>(sent_messages_per_node[n])
            : 0.0;
    const double bytes = n < sent_bytes_per_node.size()
                             ? static_cast<double>(sent_bytes_per_node[n])
                             : 0.0;
    const double comm =
        msgs * model.latency_seconds +
        (model.bytes_per_second > 0.0 ? bytes / model.bytes_per_second : 0.0);
    if (busy + comm > result.makespan_seconds) {
      result.makespan_seconds = busy + comm;
      result.comm_seconds = comm;
    }
  }
  return result;
}

}  // namespace graphpi::dist
