// Cluster scheduling simulator: replays measured per-task costs through
// the distributed runtime's scheduling policy (round-robin deal + steal
// half of the longest queue when idle) to predict strong-scaling behavior
// at node counts far beyond the physical machine (Figure 12).
#pragma once

#include <cstdint>
#include <vector>

namespace graphpi::dist {

struct SimResult {
  /// Sum of all task costs — the one-node execution time.
  double serial_seconds = 0.0;
  /// Simulated completion time of the last node.
  double makespan_seconds = 0.0;
  /// Successful steals during the simulated run.
  std::uint64_t steals = 0;

  [[nodiscard]] double speedup_vs_serial() const {
    return makespan_seconds > 0.0 ? serial_seconds / makespan_seconds : 1.0;
  }
  [[nodiscard]] double efficiency(int nodes) const {
    return nodes > 0 ? speedup_vs_serial() / static_cast<double>(nodes) : 0.0;
  }
};

/// Simulates executing tasks with the given costs (seconds) on `nodes`
/// logical nodes. Deterministic.
[[nodiscard]] SimResult simulate_cluster(const std::vector<double>& task_costs,
                                         int nodes);

// ---------------------------------------------------------------------------
// Comm-cost model for the SHARDED runtime.
//
// The sharded executor (dist/runtime.h) measures per-node busy seconds and
// per-node sent message/byte counters on one physical machine; this model
// projects what the same run would cost on a real interconnect by charging
// each node a per-message latency and a bandwidth-proportional transfer
// time on top of its measured compute. Feed it ClusterStats directly.
// ---------------------------------------------------------------------------

struct CommCostModel {
  /// One-way software + switch latency charged per message.
  double latency_seconds = 2e-6;
  /// Effective per-node bandwidth (default ~100 Gb/s full duplex).
  double bytes_per_second = 12.5e9;
};

struct ShardSimResult {
  double serial_seconds = 0.0;    ///< sum of per-node busy time
  double makespan_seconds = 0.0;  ///< slowest node, compute + comm
  double comm_seconds = 0.0;      ///< comm share of the critical node

  [[nodiscard]] double speedup_vs_serial() const {
    return makespan_seconds > 0.0 ? serial_seconds / makespan_seconds : 1.0;
  }
  [[nodiscard]] double efficiency(int nodes) const {
    return nodes > 0 ? speedup_vs_serial() / static_cast<double>(nodes) : 0.0;
  }
};

/// Projects the makespan of a measured sharded run under `model`. The
/// three vectors are indexed by node and must have equal sizes (they are
/// ClusterStats::seconds_per_node / sent_messages_per_node /
/// sent_bytes_per_node).
[[nodiscard]] ShardSimResult simulate_sharded_cluster(
    const std::vector<double>& busy_seconds_per_node,
    const std::vector<std::uint64_t>& sent_messages_per_node,
    const std::vector<std::uint64_t>& sent_bytes_per_node,
    const CommCostModel& model = {});

}  // namespace graphpi::dist
