// Cluster scheduling simulator: replays measured per-task costs through
// the distributed runtime's scheduling policy (round-robin deal + steal
// half of the longest queue when idle) to predict strong-scaling behavior
// at node counts far beyond the physical machine (Figure 12).
#pragma once

#include <cstdint>
#include <vector>

namespace graphpi::dist {

struct SimResult {
  /// Sum of all task costs — the one-node execution time.
  double serial_seconds = 0.0;
  /// Simulated completion time of the last node.
  double makespan_seconds = 0.0;
  /// Successful steals during the simulated run.
  std::uint64_t steals = 0;

  [[nodiscard]] double speedup_vs_serial() const {
    return makespan_seconds > 0.0 ? serial_seconds / makespan_seconds : 1.0;
  }
  [[nodiscard]] double efficiency(int nodes) const {
    return nodes > 0 ? speedup_vs_serial() / static_cast<double>(nodes) : 0.0;
  }
};

/// Simulates executing tasks with the given costs (seconds) on `nodes`
/// logical nodes. Deterministic.
[[nodiscard]] SimResult simulate_cluster(const std::vector<double>& task_costs,
                                         int nodes);

}  // namespace graphpi::dist
