// Sharded multi-node distributed runtime (Section IV-E, grown past the
// paper's whole-graph-per-node assumption).
//
// Every logical node holds ONLY its shard of the data graph — owned CSR
// rows plus the 1-hop ghost halo (dist/shard.h) — and executes the
// compiled plan forest against that shard with its own workspace and its
// own per-shard hub index. The walk over the trie proceeds exactly like
// engine/forest.h, except that every candidate-set build first folds in
// the adjacencies resident on the current node and, when a predecessor's
// adjacency is not resident, serializes the continuation — partial
// embedding, set-build progress, and the in-flight candidate set — and
// ships it to that predecessor's owner over the typed channel
// (dist/comm.h). Partial counts flow back to the master at the end; full
// embeddings never travel. Message and byte counters make that economy
// measurable, and feed the comm-cost model in dist/simulator.h.
//
// Two executors share one trie-walk implementation:
//
//   * ExecMode::kLockstep — the original single-threaded round-robin
//     service loop: one unit of work per node per turn, compute strictly
//     alternating with channel drains. Fully deterministic (fault
//     injection replays exactly), the reference for the scheduling
//     simulator and the differential tests.
//   * ExecMode::kAsync — real compute/comm overlap: each node runs a
//     small pool of worker threads (workers_per_node) draining a bounded
//     MPMC mailbox; continuations are coalesced per destination and
//     flushed as batch frames (one header + CRC + ack per batch), with
//     cooperative backpressure when a peer's mailbox is full. Counts are
//     bit-identical to lockstep/serial — integer partial sums are
//     order-independent — while wall clock drops because nothing round-
//     robins: workers walk roots while frames move.
//
// A single pattern is executed as a one-plan forest, so the same sharded
// executor serves Matcher-equivalent counting (distributed_count) and
// whole-batch motif censuses (distributed_count_batch) — results are
// bit-identical to Matcher::count() / ForestExecutor::count(), asserted
// by tests that also poison non-resident adjacency to prove no node ever
// reads outside its shard.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/configuration.h"
#include "core/plan_forest.h"
#include "dist/comm.h"
#include "dist/shard.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "support/exec_control.h"

namespace graphpi::dist {

/// How the logical nodes are driven (see file header).
enum class ExecMode : std::uint8_t {
  kLockstep = 0,  ///< deterministic single-threaded round-robin service
  kAsync = 1,     ///< one worker pool per node, mailboxes + coalesced flushes
};

[[nodiscard]] const char* to_string(ExecMode mode) noexcept;

/// Parses "lockstep" / "async" (CLI flag form). False on anything else.
[[nodiscard]] bool parse_exec_mode(std::string_view name,
                                   ExecMode& out) noexcept;

struct ClusterOptions {
  /// Number of logical nodes (>= 1). 1 runs the whole forest locally
  /// (no sharding, no messages).
  int nodes = 2;
  /// Schedule depth at which the descent from a root is cut into
  /// node-local tasks (clamped to [1, shallowest plan leaf]). Finer tasks
  /// produce the fine-grained load profile the scheduling simulator
  /// replays; they never travel between nodes by themselves — only
  /// boundary-crossing continuations do.
  int task_depth = 1;
  PartitionStrategy partition = PartitionStrategy::kHash;
  /// Seeded fault injection applied to the transport; the reliability
  /// layer (dist/comm.h) keeps counts bit-identical under any plan with
  /// all probabilities < 1 in both exec modes.
  FaultPlan faults{};
  /// Optional deadline/cancel/budget handle (not owned). Lockstep checks
  /// it once per round-robin service round; async workers poll it at
  /// their own root stride and the master merges the per-worker
  /// RunReports. On a stop the run returns partial counts; pass a
  /// RunReport to the counting entry points to observe the status.
  const support::ExecControl* control = nullptr;

  ExecMode exec = ExecMode::kLockstep;
  /// Async only: worker threads per logical node (>= 1). The pool shares
  /// the node's mailbox and claims owned roots from a shared cursor, so
  /// intra-node parallelism composes with the inter-node kind.
  int workers_per_node = 1;
  /// Async only: frames a node's mailbox holds before senders of new
  /// data stall (cooperative backpressure; protocol traffic — acks,
  /// retransmits — is never refused). 0 = unbounded.
  int mailbox_capacity = 1024;
  /// Async only: continuation payloads buffered per destination before a
  /// coalesced batch-frame flush (1 disables coalescing).
  int flush_payloads = 32;
  /// Async only: buffered payload bytes per destination that force a
  /// flush even below flush_payloads.
  int flush_bytes = 1 << 16;
};

/// Observability counters for one distributed run. Byte counters measure
/// serialized payloads (see dist/comm.h).
struct ClusterStats {
  /// Node-local task units executed (valid depth-`task_depth` subtree
  /// roots; 0 when every plan's leaf is shallower than the cutoff).
  std::uint64_t total_tasks = 0;
  std::uint64_t messages = 0;  ///< all channel messages
  std::uint64_t bytes = 0;     ///< all channel payload bytes
  /// Continuation-kind channel messages (lockstep: one per shipped
  /// continuation; async: one per FRAME, many continuations per batch
  /// frame — see coalesced_payloads).
  std::uint64_t continuation_messages = 0;
  std::uint64_t continuation_bytes = 0;
  /// Walk continuations shipped (payloads, not frames — mode-independent:
  /// identical across lockstep and async for the same run).
  std::uint64_t shipped_continuations = 0;
  /// Candidate-set vertices carried inside continuations (in-flight
  /// intersections + completed IEP suffix sets).
  std::uint64_t shipped_set_vertices = 0;
  /// Partial-count reports to the master.
  std::uint64_t count_messages = 0;
  std::uint64_t count_bytes = 0;
  std::vector<std::uint64_t> tasks_per_node;
  std::vector<double> seconds_per_node;  ///< busy time per node
  std::vector<std::uint64_t> sent_messages_per_node;
  std::vector<std::uint64_t> sent_bytes_per_node;
  /// Shard shape of the run.
  std::vector<std::uint32_t> owned_per_node;
  std::vector<std::uint32_t> ghosts_per_node;
  double replication_factor = 0.0;
  // Reliability-protocol counters (see dist/comm.h ReliableChannel).
  std::uint64_t ack_messages = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t corrupt_frames_detected = 0;
  std::uint64_t duplicates_suppressed = 0;
  /// Intact frames whose payload still failed structural decode — counted
  /// and skipped (the sender's retransmit timer re-requests) instead of UB.
  std::uint64_t decode_failures = 0;
  // What the fault plan actually injected at the transport.
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_duplicates = 0;
  std::uint64_t injected_reorders = 0;
  std::uint64_t injected_corruptions = 0;
  // Async-executor counters (zero in lockstep mode).
  std::uint64_t flushes = 0;            ///< coalescer flush operations
  std::uint64_t coalesced_frames = 0;   ///< batch frames on the wire
  std::uint64_t coalesced_payloads = 0; ///< continuations inside batch frames
  std::uint64_t mailbox_stalls = 0;     ///< flushes that found a full peer
  std::uint64_t mailbox_high_water = 0; ///< deepest any mailbox got (frames)

  /// Element-wise merge (chunked batches accumulate across forests).
  void accumulate(const ClusterStats& other);
};

/// Counts embeddings of `config` on `graph` with the sharded cluster.
/// Exactly equal to Matcher::count() (asserted by tests). A non-null
/// `report` receives the stop status and completed root count when
/// `options.control` is armed (partial counts skip the IEP divisibility
/// check — they are best-effort, not exact).
[[nodiscard]] Count distributed_count(const Graph& graph,
                                      const Configuration& config,
                                      const ClusterOptions& options = {},
                                      ClusterStats* stats = nullptr,
                                      support::RunReport* report = nullptr);

/// Counts every plan of a prefix-sharing forest in one sharded batch
/// traversal — the distributed twin of ForestExecutor::count(), returning
/// finalized per-plan counts indexed like forest.plans(). Every plan must
/// have >= 2 vertices.
[[nodiscard]] std::vector<Count> distributed_count_batch(
    const Graph& graph, const PlanForest& forest,
    const ClusterOptions& options = {}, ClusterStats* stats = nullptr,
    support::RunReport* report = nullptr);

/// Same, on a prebuilt sharding (`options.nodes`/`options.partition` are
/// ignored in favor of the sharding's own). This is the entry point the
/// shard-isolation tests use with poisoned non-resident rows.
[[nodiscard]] std::vector<Count> distributed_count_batch(
    const ShardedGraph& sharded, const PlanForest& forest,
    const ClusterOptions& options = {}, ClusterStats* stats = nullptr,
    support::RunReport* report = nullptr);

}  // namespace graphpi::dist
