// Simulated multi-node distributed runtime (Section IV-E).
//
// The paper's cluster design: the master executes the outer loops of the
// schedule and packs each valid partial embedding into a fine-grained
// task; workers pull tasks, run the continuation locally, and send back
// partial counts; idle workers steal from loaded ones. This module
// reproduces that control flow faithfully on one physical machine — every
// "node" is a logical worker with its own task queue and its own
// Matcher::Workspace (created once per node, reused across all its tasks),
// processed round-robin so stealing dynamics are observable — while the
// actual counting runs in-process through the same Matcher the real
// engines use. Results are therefore bit-identical to Matcher::count().
#pragma once

#include <cstdint>
#include <vector>

#include "core/configuration.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace graphpi::dist {

struct ClusterOptions {
  /// Number of simulated nodes (>= 1).
  int nodes = 2;
  /// Schedule depth of one task (clamped to the outer loops under IEP).
  int task_depth = 1;
};

/// Observability counters for one distributed run.
struct ClusterStats {
  std::uint64_t total_tasks = 0;
  /// Task sends + per-node result sends (the paper's message economy:
  /// counts travel, embeddings never do).
  std::uint64_t messages = 0;
  std::uint64_t steals_attempted = 0;
  std::uint64_t steals_successful = 0;
  std::vector<std::uint64_t> tasks_per_node;
  std::vector<double> seconds_per_node;
};

/// Counts embeddings of `config` on `graph` with the simulated cluster.
/// Exactly equal to Matcher::count() (asserted by tests).
[[nodiscard]] Count distributed_count(const Graph& graph,
                                      const Configuration& config,
                                      const ClusterOptions& options = {},
                                      ClusterStats* stats = nullptr);

}  // namespace graphpi::dist
