#include "graph/graph.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "graph/triangle.h"
#include "support/check.h"

namespace graphpi {

Graph::Graph(std::vector<EdgeIndex> offsets, std::vector<VertexId> neighbors)
    : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {
  GRAPHPI_CHECK_MSG(!offsets_.empty(), "CSR offsets must have n+1 entries");
  GRAPHPI_CHECK_MSG(offsets_.back() == neighbors_.size(),
                    "CSR offsets must end at the neighbor array size");
}

Graph Graph::reorder_by_degree(std::vector<VertexId>* old_to_new) const {
  const VertexId n = vertex_count();
  std::vector<VertexId> order(n);
  for (VertexId v = 0; v < n; ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [this](VertexId a, VertexId b) {
    return degree(a) > degree(b);
  });
  std::vector<VertexId> rank(n);
  for (VertexId new_id = 0; new_id < n; ++new_id) rank[order[new_id]] = new_id;

  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId new_id = 0; new_id < n; ++new_id)
    offsets[new_id + 1] = offsets[new_id] + degree(order[new_id]);
  std::vector<VertexId> adj(neighbors_.size());
  for (VertexId new_id = 0; new_id < n; ++new_id) {
    VertexId* row = adj.data() + offsets[new_id];
    std::size_t k = 0;
    for (VertexId w : neighbors(order[new_id])) row[k++] = rank[w];
    std::sort(row, row + k);  // the rank map scrambles the sorted order
  }

  Graph out(std::move(offsets), std::move(adj));
  if (has_cached_triangle_count()) out.set_triangle_count(cached_triangles_);
  if (old_to_new != nullptr) *old_to_new = std::move(rank);
  return out;
}

bool Graph::has_edge(VertexId u, VertexId v) const noexcept {
  if (const std::uint64_t* bits = hub_bits(u); bits != nullptr)
    return ((bits[v >> 6] >> (v & 63)) & 1u) != 0;
  const auto adj = neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

void Graph::ensure_hub_index() const {
  if (has_hub_index()) return;  // lock-free acquire fast path
  // Builds are rare (once per graph) — one process-wide lock is enough,
  // and keeps Graph itself trivially copyable/movable.
  static std::mutex build_mutex;
  const std::lock_guard<std::mutex> lock(build_mutex);
  if (!has_hub_index()) build_hub_index(0);
}

void Graph::build_hub_index(std::uint32_t min_degree) const {
  const VertexId n = vertex_count();
  hub_words_ = (static_cast<std::size_t>(n) + 63) / 64;
  hub_slot_.assign(n, kNotAHub);
  hub_bits_.clear();
  hub_count_ = 0;
  if (min_degree == 0) {
    // A bitmap probe only beats a binary search on a large adjacency, and
    // every row costs |V|/8 bytes — restrict rows to genuinely hub-like
    // degrees.
    min_degree = std::max<std::uint32_t>(128, n / 64);
  }
  hub_min_degree_ = min_degree;
  if (n == 0) {
    std::atomic_ref<bool>(hub_index_built_)
        .store(true, std::memory_order_release);
    return;
  }

  std::vector<VertexId> hubs;
  for (VertexId v = 0; v < n; ++v)
    if (degree(v) >= min_degree) hubs.push_back(v);

  // Cap total row storage at roughly the CSR footprint (min 8 MiB) so the
  // index never dominates memory; keep the highest-degree vertices.
  const std::size_t budget_bytes =
      std::max<std::size_t>(std::size_t{8} << 20, neighbors_.size() * 4);
  const std::size_t max_rows =
      std::max<std::size_t>(1, budget_bytes / std::max<std::size_t>(
                                                  1, hub_words_ * 8));
  if (hubs.size() > max_rows) {
    std::nth_element(hubs.begin(),
                     hubs.begin() + static_cast<std::ptrdiff_t>(max_rows),
                     hubs.end(), [this](VertexId a, VertexId b) {
                       return degree(a) > degree(b);
                     });
    hubs.resize(max_rows);
    std::sort(hubs.begin(), hubs.end());
  }

  hub_bits_.assign(hubs.size() * hub_words_, 0);
  for (std::size_t slot = 0; slot < hubs.size(); ++slot) {
    const VertexId v = hubs[slot];
    hub_slot_[v] = static_cast<std::uint32_t>(slot);
    std::uint64_t* row = hub_bits_.data() + slot * hub_words_;
    for (VertexId w : neighbors(v)) row[w >> 6] |= std::uint64_t{1} << (w & 63);
  }
  hub_count_ = static_cast<std::uint32_t>(hubs.size());
  // Publish last: a reader that observes the flag (acquire) must see the
  // completed arrays.
  std::atomic_ref<bool>(hub_index_built_)
      .store(true, std::memory_order_release);
}

std::uint32_t Graph::max_degree() const noexcept {
  std::uint32_t best = 0;
  for (VertexId v = 0; v < vertex_count(); ++v)
    best = std::max(best, degree(v));
  return best;
}

std::uint64_t Graph::triangle_count() const {
  // Lazy fill under a lock: concurrent first calls (e.g. two service
  // queries planning against the same graph) must not race on the
  // mutable cache. Same shape as ensure_hub_index — double-checked
  // against the release-published flag, process-wide lock because
  // fills are rare and Graph stays trivially movable.
  if (!has_cached_triangle_count()) {
    static std::mutex fill_mutex;
    const std::lock_guard<std::mutex> lock(fill_mutex);
    if (!has_cached_triangle_count())
      set_triangle_count(count_triangles(*this));
  }
  return cached_triangles_;
}

bool Graph::validate() const {
  const VertexId n = vertex_count();
  for (VertexId v = 0; v < n; ++v) {
    const auto adj = neighbors(v);
    for (std::size_t i = 0; i < adj.size(); ++i) {
      if (adj[i] >= n) return false;            // out-of-range endpoint
      if (adj[i] == v) return false;            // self loop
      if (i > 0 && adj[i] <= adj[i - 1]) return false;  // unsorted/duplicate
      if (!has_edge(adj[i], v)) return false;   // asymmetric
    }
  }
  return true;
}

}  // namespace graphpi
