#include "graph/graph.h"

#include <algorithm>

#include "graph/triangle.h"
#include "support/check.h"

namespace graphpi {

Graph::Graph(std::vector<EdgeIndex> offsets, std::vector<VertexId> neighbors)
    : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {
  GRAPHPI_CHECK_MSG(!offsets_.empty(), "CSR offsets must have n+1 entries");
  GRAPHPI_CHECK_MSG(offsets_.back() == neighbors_.size(),
                    "CSR offsets must end at the neighbor array size");
}

bool Graph::has_edge(VertexId u, VertexId v) const noexcept {
  const auto adj = neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

std::uint32_t Graph::max_degree() const noexcept {
  std::uint32_t best = 0;
  for (VertexId v = 0; v < vertex_count(); ++v)
    best = std::max(best, degree(v));
  return best;
}

std::uint64_t Graph::triangle_count() const {
  if (!triangles_valid_) {
    cached_triangles_ = count_triangles(*this);
    triangles_valid_ = true;
  }
  return cached_triangles_;
}

bool Graph::validate() const {
  const VertexId n = vertex_count();
  for (VertexId v = 0; v < n; ++v) {
    const auto adj = neighbors(v);
    for (std::size_t i = 0; i < adj.size(); ++i) {
      if (adj[i] >= n) return false;            // out-of-range endpoint
      if (adj[i] == v) return false;            // self loop
      if (i > 0 && adj[i] <= adj[i - 1]) return false;  // unsorted/duplicate
      if (!has_edge(adj[i], v)) return false;   // asymmetric
    }
  }
  return true;
}

}  // namespace graphpi
