// Compressed-sparse-row (CSR) storage for undirected, unlabeled data graphs.
//
// This is the substrate Section IV-E of the GraphPi paper describes: the
// neighborhood of every vertex is sorted and contiguous in memory, so the
// intersection of two neighborhoods runs in O(n + m) and yields a sorted
// result "for free".
//
// Invariants (established by GraphBuilder, relied upon everywhere):
//   * adjacency lists are strictly ascending (no duplicate edges),
//   * no self loops,
//   * the graph is symmetric: (u,v) present implies (v,u) present.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace graphpi {

/// Immutable undirected graph in CSR form.
class Graph {
 public:
  Graph() = default;

  /// Takes ownership of prebuilt CSR arrays. `offsets` has n_vertices + 1
  /// entries; `neighbors[offsets[v] .. offsets[v+1])` is the sorted
  /// adjacency of v. Use GraphBuilder instead of calling this directly.
  Graph(std::vector<EdgeIndex> offsets, std::vector<VertexId> neighbors);

  [[nodiscard]] VertexId vertex_count() const noexcept {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Number of undirected edges (half the CSR slot count).
  [[nodiscard]] std::uint64_t edge_count() const noexcept {
    return neighbors_.size() / 2;
  }

  /// Number of directed adjacency slots (2 * edge_count()).
  [[nodiscard]] std::uint64_t directed_edge_count() const noexcept {
    return neighbors_.size();
  }

  [[nodiscard]] std::uint32_t degree(VertexId v) const noexcept {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighborhood of v as a non-owning view.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const noexcept {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  /// Binary-search adjacency test: O(log deg(u)).
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const noexcept;

  [[nodiscard]] std::uint32_t max_degree() const noexcept;

  /// Number of triangles (each counted once). Computed lazily on first call
  /// and cached; the performance model (Section IV-C) consumes this.
  [[nodiscard]] std::uint64_t triangle_count() const;

  /// Overrides the cached triangle count (used when a loader already knows
  /// it, or by tests exercising the perf model with synthetic statistics).
  void set_triangle_count(std::uint64_t t) const noexcept {
    cached_triangles_ = t;
    triangles_valid_ = true;
  }

  /// Raw CSR access for kernels that want the arrays directly.
  [[nodiscard]] const std::vector<EdgeIndex>& raw_offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] const std::vector<VertexId>& raw_neighbors() const noexcept {
    return neighbors_;
  }

  /// Structural sanity check of all CSR invariants (sortedness, symmetry,
  /// no loops). O(m log d); used by tests and loaders.
  [[nodiscard]] bool validate() const;

 private:
  std::vector<EdgeIndex> offsets_;
  std::vector<VertexId> neighbors_;
  // Lazily computed statistic; logically const.
  mutable std::uint64_t cached_triangles_ = 0;
  mutable bool triangles_valid_ = false;
};

}  // namespace graphpi
