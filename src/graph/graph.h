// Compressed-sparse-row (CSR) storage for undirected, unlabeled data graphs.
//
// This is the substrate Section IV-E of the GraphPi paper describes: the
// neighborhood of every vertex is sorted and contiguous in memory, so the
// intersection of two neighborhoods runs in O(n + m) and yields a sorted
// result "for free".
//
// Invariants (established by GraphBuilder, relied upon everywhere):
//   * adjacency lists are strictly ascending (no duplicate edges),
//   * no self loops,
//   * the graph is symmetric: (u,v) present implies (v,u) present.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/types.h"

namespace graphpi {

/// Immutable undirected graph in CSR form.
class Graph {
 public:
  Graph() = default;

  /// Takes ownership of prebuilt CSR arrays. `offsets` has n_vertices + 1
  /// entries; `neighbors[offsets[v] .. offsets[v+1])` is the sorted
  /// adjacency of v. Use GraphBuilder instead of calling this directly.
  Graph(std::vector<EdgeIndex> offsets, std::vector<VertexId> neighbors);

  [[nodiscard]] VertexId vertex_count() const noexcept {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Number of undirected edges (half the CSR slot count).
  [[nodiscard]] std::uint64_t edge_count() const noexcept {
    return neighbors_.size() / 2;
  }

  /// Number of directed adjacency slots (2 * edge_count()).
  [[nodiscard]] std::uint64_t directed_edge_count() const noexcept {
    return neighbors_.size();
  }

  [[nodiscard]] std::uint32_t degree(VertexId v) const noexcept {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighborhood of v as a non-owning view.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const noexcept {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  /// Binary-search adjacency test: O(log deg(u)).
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const noexcept;

  [[nodiscard]] std::uint32_t max_degree() const noexcept;

  /// Number of triangles (each counted once). Computed lazily on first call
  /// and cached; the performance model (Section IV-C) consumes this.
  [[nodiscard]] std::uint64_t triangle_count() const;

  /// Overrides the cached triangle count (used when a loader already knows
  /// it, or by tests exercising the perf model with synthetic statistics).
  void set_triangle_count(std::uint64_t t) const noexcept {
    cached_triangles_ = t;
    // Publish after the value: pairs with the acquire load in
    // has_cached_triangle_count(), so a thread that observes the flag
    // sees the count (same protocol as the hub index).
    std::atomic_ref<bool>(triangles_valid_)
        .store(true, std::memory_order_release);
  }

  /// Whether triangle_count() would return a cached value without
  /// computing (snapshot saving persists the count only when cached).
  [[nodiscard]] bool has_cached_triangle_count() const noexcept {
    return std::atomic_ref<bool>(triangles_valid_)
        .load(std::memory_order_acquire);
  }

  /// Raw CSR access for kernels that want the arrays directly.
  [[nodiscard]] const std::vector<EdgeIndex>& raw_offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] const std::vector<VertexId>& raw_neighbors() const noexcept {
    return neighbors_;
  }

  /// Structural sanity check of all CSR invariants (sortedness, symmetry,
  /// no loops). O(m log d); used by tests and loaders.
  [[nodiscard]] bool validate() const;

  /// Isomorphic copy with vertices relabeled in descending degree order
  /// (ties by old id, so the relabeling is deterministic). Embedding
  /// counts of every pattern are invariant — a relabeling is a graph
  /// isomorphism, and the engines count label-independent embeddings —
  /// while set-kernel locality and snapshot delta compression improve:
  /// hubs cluster at small ids, so adjacency deltas shrink and candidate
  /// sets concentrate in the hot cache lines. When `old_to_new` is
  /// non-null it receives the permutation (new id = (*old_to_new)[old]).
  /// The cached triangle count carries over (it is relabel-invariant).
  [[nodiscard]] Graph reorder_by_degree(
      std::vector<VertexId>* old_to_new = nullptr) const;

  /// Writes this graph as a compressed, mmap-able snapshot — seekable
  /// blocks of delta-varint adjacency with per-block CRC framing
  /// (io/snapshot.h; format spec in docs/FORMAT.md). The labeling is
  /// saved as-is: pair with reorder_by_degree() for the best compression.
  /// Implemented in src/io/snapshot.cpp.
  void save_snapshot(const std::string& path) const;

  /// Loads a snapshot written by save_snapshot: the file is mmap-ed and
  /// every block is CRC-checked and decoded through the runtime-dispatched
  /// SIMD varint kernels (graph/vertex_set.h). Throws io::SnapshotError
  /// on truncated, corrupted, or version-mismatched input.
  [[nodiscard]] static Graph load_snapshot(const std::string& path);

  // -------------------------------------------------------------------------
  // Hub bitmap index.
  //
  // High-degree "hub" vertices additionally store their adjacency as a
  // bitmap row over the whole vertex space (one bit per vertex). A row
  // turns membership tests into O(1) probes and lets the set kernels
  // intersect a hub adjacency with any sorted set in O(|set|) — or two hub
  // rows word-parallel, 64 vertices per AND+popcount. Rows cost |V|/8
  // bytes each, so only vertices whose degree clears a threshold get one,
  // and the total row storage is capped at roughly the CSR size itself.
  //
  // Building mutates lazily-initialized state. ensure_hub_index() is
  // safe to call from concurrent threads (double-checked under a
  // process-wide build lock with acquire/release publication) — racing
  // first-compiles of generated kernels and concurrent Matcher /
  // ForestExecutor constructions all funnel through it. build_hub_index()
  // with an explicit threshold rebuilds unconditionally and must not run
  // while other threads use the graph.
  // -------------------------------------------------------------------------

  /// Slot marker for "not a hub".
  static constexpr std::uint32_t kNotAHub = 0xffffffffu;

  /// Builds the index with an explicit degree threshold. `min_degree == 0`
  /// selects the automatic threshold max(128, |V|/64); pass a value larger
  /// than max_degree() (e.g. UINT32_MAX) to build an empty index, which
  /// disables hub acceleration. Rebuilds if already built.
  void build_hub_index(std::uint32_t min_degree = 0) const;

  /// Builds the index with the automatic threshold unless already built.
  /// Thread-safe (see the section comment above).
  void ensure_hub_index() const;

  [[nodiscard]] bool has_hub_index() const noexcept {
    // Pairs with the release publication at the end of build_hub_index():
    // observing true guarantees the hub arrays are fully visible.
    return std::atomic_ref<bool>(hub_index_built_)
        .load(std::memory_order_acquire);
  }

  /// Number of vertices that received a bitmap row.
  [[nodiscard]] std::uint32_t hub_count() const noexcept { return hub_count_; }

  /// Degree threshold the built index used (0 when not built).
  [[nodiscard]] std::uint32_t hub_min_degree() const noexcept {
    return hub_min_degree_;
  }

  /// Words per bitmap row: ceil(|V| / 64).
  [[nodiscard]] std::size_t hub_words() const noexcept { return hub_words_; }

  /// Bitmap row of v, or nullptr when v has no row (not a hub, or index
  /// not built). Bit x of the row is set iff (v, x) is an edge.
  [[nodiscard]] const std::uint64_t* hub_bits(VertexId v) const noexcept {
    if (hub_slot_.empty()) return nullptr;
    const std::uint32_t slot = hub_slot_[v];
    if (slot == kNotAHub) return nullptr;
    return hub_bits_.data() + static_cast<std::size_t>(slot) * hub_words_;
  }

  /// Raw index arrays for kernels that take the whole structure (generated
  /// code; see codegen/kernel_abi.h). Empty spans when the index is not
  /// built. hub_slots()[v] is the row number of v or kNotAHub; row r
  /// occupies hub_rows()[r * hub_words() .. (r + 1) * hub_words()).
  [[nodiscard]] std::span<const std::uint32_t> hub_slots() const noexcept {
    return hub_slot_;
  }
  [[nodiscard]] std::span<const std::uint64_t> hub_rows() const noexcept {
    return hub_bits_;
  }

 private:
  std::vector<EdgeIndex> offsets_;
  std::vector<VertexId> neighbors_;
  // Lazily computed statistic; logically const.
  mutable std::uint64_t cached_triangles_ = 0;
  mutable bool triangles_valid_ = false;
  // Hub bitmap index (lazily built; logically const).
  mutable std::vector<std::uint32_t> hub_slot_;
  mutable std::vector<std::uint64_t> hub_bits_;
  mutable std::size_t hub_words_ = 0;
  mutable std::uint32_t hub_count_ = 0;
  mutable std::uint32_t hub_min_degree_ = 0;
  mutable bool hub_index_built_ = false;
};

}  // namespace graphpi
