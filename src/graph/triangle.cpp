#include "graph/triangle.h"

#include <algorithm>
#include <cstdint>

#include "graph/vertex_set.h"

namespace graphpi {

std::uint64_t count_triangles(const Graph& g) {
  const VertexId n = g.vertex_count();
  std::uint64_t total = 0;

#pragma omp parallel for schedule(dynamic, 64) reduction(+ : total)
  for (VertexId u = 0; u < n; ++u) {
    const auto adj_u = g.neighbors(u);
    // Tail of u's adjacency holding only ids greater than u.
    const auto first_gt =
        std::upper_bound(adj_u.begin(), adj_u.end(), u) - adj_u.begin();
    const std::span<const VertexId> tail_u =
        adj_u.subspan(static_cast<std::size_t>(first_gt));
    for (VertexId v : tail_u) {
      const auto adj_v = g.neighbors(v);
      const auto first_gt_v =
          std::upper_bound(adj_v.begin(), adj_v.end(), v) - adj_v.begin();
      total += intersect_size(
          tail_u, adj_v.subspan(static_cast<std::size_t>(first_gt_v)));
    }
  }
  return total;
}

}  // namespace graphpi
