#include "graph/dynamic_graph.h"

#include <algorithm>

#include "support/check.h"

namespace graphpi {

DynamicGraph::DynamicGraph(VertexId n_vertices)
    : adjacency_(n_vertices) {}

DynamicGraph::DynamicGraph(const Graph& g) : adjacency_(g.vertex_count()) {
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    adjacency_[v].insert(g.neighbors(v).begin(), g.neighbors(v).end());
  edges_ = g.edge_count();
  triangles_ = g.triangle_count();
}

void DynamicGraph::ensure_vertex(VertexId v) {
  if (v >= adjacency_.size())
    adjacency_.resize(static_cast<std::size_t>(v) + 1);
}

std::uint64_t DynamicGraph::common_neighbors(VertexId u, VertexId v) const {
  const auto& a = adjacency_[u];
  const auto& b = adjacency_[v];
  // Iterate the smaller set, probe the larger: O(d_min log d_max).
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  std::uint64_t n = 0;
  for (VertexId w : small)
    if (large.contains(w)) ++n;
  return n;
}

bool DynamicGraph::add_edge(VertexId u, VertexId v) {
  if (u == v) return false;
  ensure_vertex(std::max(u, v));
  if (adjacency_[u].contains(v)) return false;
  // Every common neighbor closes one new triangle.
  triangles_ += common_neighbors(u, v);
  adjacency_[u].insert(v);
  adjacency_[v].insert(u);
  ++edges_;
  return true;
}

bool DynamicGraph::remove_edge(VertexId u, VertexId v) {
  if (u == v || std::max(u, v) >= adjacency_.size()) return false;
  if (!adjacency_[u].contains(v)) return false;
  adjacency_[u].erase(v);
  adjacency_[v].erase(u);
  // With the edge gone, each remaining common neighbor was a triangle.
  triangles_ -= common_neighbors(u, v);
  --edges_;
  return true;
}

bool DynamicGraph::has_edge(VertexId u, VertexId v) const {
  if (std::max(u, v) >= adjacency_.size()) return false;
  return adjacency_[u].contains(v);
}

Graph DynamicGraph::snapshot() const {
  std::vector<EdgeIndex> offsets;
  offsets.reserve(adjacency_.size() + 1);
  offsets.push_back(0);
  std::vector<VertexId> neighbors;
  neighbors.reserve(edges_ * 2);
  for (const auto& adj : adjacency_) {
    neighbors.insert(neighbors.end(), adj.begin(), adj.end());
    offsets.push_back(neighbors.size());
  }
  Graph g(std::move(offsets), std::move(neighbors));
  g.set_triangle_count(triangles_);
  return g;
}

}  // namespace graphpi
