#include "graph/datasets.h"

#include <algorithm>
#include <stdexcept>

#include "graph/generators.h"
#include "support/check.h"
#include "support/rng.h"

namespace graphpi::datasets {

const std::vector<DatasetSpec>& specs() {
  // Stand-in sizes target the one-core benchmark budget. Shrinking |V|
  // while keeping the published |E|/|V| ratio would inflate edge density
  // p1 = 2|E|/|V|^2 quadratically and blow up subgraph counts, so average
  // degrees are reduced alongside vertex counts; the *ordering* of the
  // datasets by size, density and clustering matches Table I.
  static const std::vector<DatasetSpec> kSpecs = {
      // name, description, paper |V|, paper |E|, stand-in |V|, |E|, alpha, closure
      {"wiki_vote", "Wiki Editor Voting", 7'100, 100'800,  //
       3'000, 24'000, 2.2, 0.35},
      {"mico", "Co-authorship", 96'600, 1'100'000,  //
       4'000, 24'000, 2.3, 0.45},
      {"patents", "US Patents", 3'800'000, 16'500'000,  //
       12'000, 60'000, 2.6, 0.20},
      {"livejournal", "Social network", 4'000'000, 34'700'000,  //
       8'000, 56'000, 2.35, 0.30},
      {"orkut", "Social network", 3'100'000, 117'200'000,  //
       4'000, 48'000, 2.25, 0.30},
      {"twitter", "Social network", 41'700'000, 1'200'000'000,  //
       12'000, 144'000, 2.1, 0.25},
  };
  return kSpecs;
}

const DatasetSpec& spec(const std::string& name) {
  for (const auto& s : specs())
    if (s.name == name) return s;
  throw std::out_of_range("unknown dataset: " + name);
}

Graph load(const DatasetSpec& s, double scale) {
  GRAPHPI_CHECK_MSG(scale > 0.0, "dataset scale must be positive");
  const auto n = std::max<VertexId>(
      16, static_cast<VertexId>(static_cast<double>(s.standin_vertices) *
                                scale));
  const auto m = std::max<std::uint64_t>(
      32, static_cast<std::uint64_t>(static_cast<double>(s.standin_edges) *
                                     scale));
  // Seed derived from the dataset name so each stand-in is stable across
  // runs but distinct across datasets.
  support::SplitMix64 hasher(0x5bd1e995u);
  std::uint64_t seed = 0xcbf29ce484222325ULL;
  for (char c : s.name) seed = (seed ^ static_cast<std::uint64_t>(c)) * hasher();
  return clustered_power_law(n, m, s.alpha, s.closure_p, seed);
}

Graph load(const std::string& name, double scale) {
  return load(spec(name), scale);
}

}  // namespace graphpi::datasets
